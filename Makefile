.PHONY: all build test lint bench bench-json sim-bench serve-bench fleet-bench load-bench graph-bench reliab-bench tune-bench serve-tune-db clean

all: build

build:
	dune build

test:
	dune runtest

# Lint CI gate: PolyBench + workload sources against the
# expected-warnings manifest (bin/lintsweep.ml), compiled IR clean
# under the IR-mode rules, and the crafted W008/W009/W010 examples
# firing under --Wall --Werror. Also part of `dune runtest`.
lint:
	dune build @lint

bench:
	dune exec bench/main.exe -- bench

# Regenerate BENCH_sim.json at the repo root: Fig. 5 / Fig. 6 / ablation
# sections timed with the domain pool and forced-sequential, plus the
# speedup against the recorded pre-rework baseline.
bench-json:
	dune build bin/experiments.exe
	./_build/default/bin/experiments.exe bench-json --out BENCH_sim.json

# Regression gate: re-run the Fig. 5 / Fig. 6 / ablation sections and
# compare wall-clock and minor-heap allocation against the committed
# BENCH_sim.json (exit 1 on regression). A fast --smoke variant of the
# same gate also runs under `dune runtest`.
sim-bench:
	dune build bin/experiments.exe
	./_build/default/bin/experiments.exe sim-bench --baseline BENCH_sim.json

# 1k-request replay of the synthetic-medium trace on a homogeneous
# 4-crossbar pool, golden-checked against the sequential single-device
# oracle.
serve-bench:
	dune build bin/serve.exe
	./_build/default/bin/serve.exe --trace synthetic-medium --devices 4 --out BENCH_serve.homogeneous.json

# Regenerate BENCH_serve.json at the repo root: the same 1k-request
# trace on a mixed fleet (2 analog crossbars, 2 digital tiles, 2
# dual-mode tiles) with cost-based placement, per-class telemetry
# sections and one golden sequential check per compute class.
# Wall-clock is regression-compared against the committed report
# before it is overwritten. A --fleet smoke variant of the same check
# also runs under `dune runtest`.
fleet-bench: tune.serve.db.json
	dune build bin/serve.exe
	./_build/default/bin/serve.exe --trace synthetic-medium --fleet pcm:2,digital:2,dual:2 --tune-db tune.serve.db.json --baseline BENCH_serve.json --out BENCH_serve.json

# Tuning database covering the serving mix: every (kernel, n) the
# synthetic traces and the loadgen tenants draw from, tuned for both
# the analog-crossbar and digital-tile classes, merged into one file
# (tdo-tune extends an existing --db rather than clobbering it). This
# is what makes served_tuned non-zero in the fleet and load benches.
serve-tune-db tune.serve.db.json:
	dune build bin/tune.exe
	./_build/default/bin/tune.exe -n 16 --kernels gemm,2mm --db tune.serve.db.json --out BENCH_tune.serve.json
	./_build/default/bin/tune.exe -n 24 --kernels gemm,gesummv,bicg,mvt --db tune.serve.db.json --out BENCH_tune.serve.json
	./_build/default/bin/tune.exe -n 12 --kernels 3mm,conv --db tune.serve.db.json --out BENCH_tune.serve.json
	./_build/default/bin/tune.exe -n 16 --kernels gemm,2mm --device-class digital --db tune.serve.db.json --out BENCH_tune.serve.json
	./_build/default/bin/tune.exe -n 24 --kernels gemm,gesummv,bicg,mvt --device-class digital --db tune.serve.db.json --out BENCH_tune.serve.json
	./_build/default/bin/tune.exe -n 12 --kernels 3mm,conv --device-class digital --db tune.serve.db.json --out BENCH_tune.serve.json

# Regenerate BENCH_serve.json with the open-loop load sections on top
# of the classic fleet replay: 100k requests per arrival pattern
# (sustained Poisson, 6x overload, bursty recovery) from the
# three-tenant loadgen workload, driven through the mixed fleet under
# per-tenant token buckets + SLO-class load shedding, with online
# cost-model calibration, live windowed telemetry on stderr and one
# golden sequential check per compute class per pattern. A --smoke
# variant of the same invocation runs under `dune runtest`.
load-bench: tune.serve.db.json
	dune build bin/serve.exe
	./_build/default/bin/serve.exe --load --fleet pcm:2,digital:2,dual:2 --tune-db tune.serve.db.json --baseline BENCH_serve.json --out BENCH_serve.json

# Regenerate BENCH_serve.json in full, graph-serving sections
# included: the classic fleet replay and all four open-loop load
# patterns (sustained, overload, burst-recovery, diurnal) ride along,
# then 100k multi-kernel requests (MLP-4 and attention blocks from
# lib/graph) run through the mixed fleet with cross-request weight
# residency on ("graph-pinned") and off ("graph-unpinned"),
# golden-checked per compute class. Reports weight-write bytes per
# 1000 requests for both runs and fails below a 5x pinned-vs-unpinned
# reduction. --tiles 4 so a whole model's weights fit pinned on one
# device. Wall-clock is regression-compared against the committed
# report before it is overwritten; a --smoke variant of the graph run
# runs under `dune runtest`.
graph-bench: tune.serve.db.json
	dune build bin/serve.exe
	./_build/default/bin/serve.exe --load --graph --fleet pcm:2,digital:2,dual:2 --tiles 4 --tune-db tune.serve.db.json --baseline BENCH_serve.json --out BENCH_serve.json

# Regenerate BENCH_reliab.json at the repo root: stuck-cell fault
# campaigns over the gemm/gesummv/mvt mix with the ABFT guard armed,
# scored for detection rate, SDC rate and recovery overhead against a
# fault-free replay of the same trace. --strict fails on any silent
# corruption.
reliab-bench:
	dune build bin/reliab.exe
	./_build/default/bin/reliab.exe --sweep 0,1,2,4 --requests 80 --devices 3 --strict --out BENCH_reliab.json

# Regenerate BENCH_tune.json at the repo root: the full autotuning sweep
# over the PolyBench suite (small dataset) — per-kernel design-space
# search with cost-model calibration and exact re-ranking, persisted to
# tune.db.json for tdoc --tune-db and serve --tune-db. --strict fails
# if any kernel tunes worse than the compiler default.
tune-bench:
	dune build bin/tune.exe
	./_build/default/bin/tune.exe --dataset small --strict --db tune.db.json --out BENCH_tune.json

clean:
	dune clean
