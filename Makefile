.PHONY: all build test bench bench-json clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe -- bench

# Regenerate BENCH_sim.json at the repo root: Fig. 5 / Fig. 6 / ablation
# sections timed with the domain pool and forced-sequential, plus the
# speedup against the recorded pre-rework baseline.
bench-json:
	dune build bin/experiments.exe
	./_build/default/bin/experiments.exe bench-json --out BENCH_sim.json

clean:
	dune clean
