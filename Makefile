.PHONY: all build test bench bench-json serve-bench clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe -- bench

# Regenerate BENCH_sim.json at the repo root: Fig. 5 / Fig. 6 / ablation
# sections timed with the domain pool and forced-sequential, plus the
# speedup against the recorded pre-rework baseline.
bench-json:
	dune build bin/experiments.exe
	./_build/default/bin/experiments.exe bench-json --out BENCH_sim.json

# Regenerate BENCH_serve.json at the repo root: a 1k-request replay of
# the synthetic-medium trace on a 4-device pool, golden-checked against
# the sequential single-device oracle.
serve-bench:
	dune build bin/serve.exe
	./_build/default/bin/serve.exe --trace synthetic-medium --devices 4 --out BENCH_serve.json

clean:
	dune clean
