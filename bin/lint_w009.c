/* W009: the copy loop reads C on the host while C's freshest value is
   the offloaded kernel's device-side result; a cim_d2h copy-back must
   separate them. */
void w009(float C[16][16], float S[16][16], float A[16][16], float B[16][16]) {
  for (int i = 0; i < 16; i++)
    for (int j = 0; j < 16; j++)
      for (int k = 0; k < 16; k++)
        C[i][j] += A[i][k] * B[k][j];
  for (int i = 0; i < 16; i++)
    for (int j = 0; j < 16; j++)
      S[i][j] = C[i][j];
}
