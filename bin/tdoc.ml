(* tdoc: the TDO-CIM compiler driver.

   Mirrors the paper's compile strings:
     tdoc -O3 file.c                        (host only)
     tdoc -O3 -enable-loop-tactics file.c   (detect + offload to CIM)
   with -emit-ir to inspect the generated (Listing-1 style) IR. *)

open Cmdliner
module Flow = Tdo_cim.Flow
module Offload = Tdo_tactics.Offload
module Pipeline = Tdo_tactics.Pipeline
module Diag = Tdo_analysis.Diag
module Lint = Tdo_analysis.Lint
module Platform = Tdo_runtime.Platform
module Search = Tdo_tune.Search
module Tune_db = Tdo_tune.Db

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Mini-C source file.")

let o3_flag =
  Arg.(value & flag & info [ "O3" ] ~doc:"Accepted for compatibility; optimisation is always on.")

let tactics_flag =
  Arg.(
    value & flag
    & info [ "enable-loop-tactics" ]
        ~doc:"Run Loop Tactics: detect GEMM/GEMV/conv kernels and offload them to the CIM device.")

let emit_ir_flag =
  Arg.(value & flag & info [ "emit-ir" ] ~doc:"Print the final IR to stdout.")

let report_flag =
  Arg.(value & flag & info [ "report" ] ~doc:"Print what the tactics pipeline did.")

let naive_pin_flag =
  Arg.(
    value & flag
    & info [ "naive-mapping" ]
        ~doc:"Ablation: stream the shared operand instead of pinning it (Fig. 5 naive mapping).")

let selective_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "min-intensity" ] ~docv:"MACS_PER_WRITE"
        ~doc:"Selective offload: keep kernels below this MACs-per-crossbar-write on the host.")

let run_flag =
  Arg.(
    value & flag
    & info [ "run" ]
        ~doc:
          "Execute the compiled function on the emulated platform with synthesised arguments \
           (random float arrays; alpha=1.5, beta=1.2) and print the measurement.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed for --run data.")

let lint_flag =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:
          "Run the offload lint rules over the input IR: profitability (W001), crossbar overflow \
           (W002), endurance budget (W003), dead stores and unused arrays (W004/W005).")

let wall_flag =
  Arg.(
    value & flag
    & info [ "Wall" ] ~doc:"With $(b,--lint): also print the informational notes (N0xx).")

let werror_flag =
  Arg.(
    value & flag
    & info [ "Werror" ]
        ~doc:
          "Promote warnings to errors: if any lint warning is emitted, tdoc exits with code 2. \
           Implies $(b,--lint).")

let depgraph_flag =
  Arg.(
    value & flag
    & info [ "depgraph" ]
        ~doc:
          "Print the kernel dependence graph of the detected SCoP (RAW/WAR/WAW edges between \
           top-level events, from region-footprint overlap) as GraphViz DOT and exit.")

let verify_flag =
  Arg.(
    value & flag
    & info [ "verify-each" ]
        ~doc:
          "Verify the IR and schedule tree before the pipeline, validate every rewrite the \
           tactics pipeline commits to, and re-verify the generated IR. On a verification error \
           the host path is kept and tdoc exits non-zero.")

let explain_flag =
  Arg.(
    value & flag
    & info [ "explain-no-offload" ]
        ~doc:"When nothing was offloaded, explain why (SCoP obstruction or kernel shape).")

let tune_flag =
  Arg.(
    value & flag
    & info [ "tune" ]
        ~doc:
          "Autotune the offload configuration for this kernel before compiling: search the \
           design space with the cost model, re-rank by exact simulation and compile with the \
           measured winner. With $(b,--tune-db) the result is also saved to the database.")

let tune_db_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tune-db" ] ~docv:"FILE"
        ~doc:
          "Tuning database (written by tdo-tune or $(b,--tune)); when this kernel's \
           structural digest has an entry, compile with its configuration — clamped to the \
           platform's crossbar geometry.")

(* Synthesised arguments: deterministic random arrays, conventional
   scalar values for the usual BLAS parameter names. *)
let synthesise_args ~seed (params : Tdo_lang.Ast.param list) =
  let module Interp = Tdo_lang.Interp in
  let module Ast = Tdo_lang.Ast in
  let g = Tdo_util.Prng.create ~seed in
  List.map
    (fun (p : Ast.param) ->
      let value =
        match (p.Ast.dims, p.Ast.ptyp) with
        | [], Ast.Tfloat ->
            Interp.Vfloat
              (match p.Ast.pname with "alpha" -> 1.5 | "beta" -> 1.2 | _ -> 1.0)
        | [], (Ast.Tint | Ast.Tvoid) -> Interp.Vint 1
        | dims, _ ->
            let arr = Interp.make_array ~dims in
            Array.iteri
              (fun i _ ->
                let v = Tdo_util.Prng.float_range g ~lo:(-1.0) ~hi:1.0 in
                arr.Interp.data.(i) <- Int32.float_of_bits (Int32.bits_of_float v))
              arr.Interp.data;
            Interp.Varray arr
      in
      (p.Ast.pname, value))
    params

let execute ~seed f =
  let m, _platform = Flow.run f ~args:(synthesise_args ~seed f.Tdo_ir.Ir.params) in
  Printf.printf "ROI: %d instructions, %d cycles, %.3f ms\n" m.Flow.roi_instructions
    m.Flow.roi_cycles (m.Flow.time_s *. 1e3);
  Printf.printf "energy: %s (EDP %sJs)\n"
    (Tdo_util.Pretty.si_float m.Flow.energy_j ^ "J")
    (Tdo_util.Pretty.si_float m.Flow.edp_js);
  if m.Flow.used_cim then
    Printf.printf "CIM: %d launch(es), %d MACs, %d crossbar writes (%.1f MACs/write)\n"
      m.Flow.launches m.Flow.cim_macs m.Flow.cim_write_bytes m.Flow.macs_per_cim_write
  else print_endline "CIM: not used (host only)"

let run file o3 tactics emit_ir report naive_pin min_intensity do_run seed lint wall werror
    depgraph verify explain tune tune_db =
  ignore o3;
  let lint = lint || werror in
  let source = In_channel.with_open_text file In_channel.input_all in
  let tcfg = { Offload.default_config with Offload.naive_pin; min_intensity } in
  (* --tune / --tune-db only make sense with the tactics pipeline on *)
  let tactics = tactics || tune || tune_db <> None in
  let options = { Flow.enable_loop_tactics = tactics; tactics = tcfg } in
  let device_rows, device_cols =
    let xbar = Platform.default_config.Platform.engine.Tdo_cimacc.Micro_engine.xbar in
    (xbar.Tdo_pcm.Crossbar.rows, xbar.Tdo_pcm.Crossbar.cols)
  in
  let db =
    match tune_db with
    | None -> None
    | Some path -> (
        match Tune_db.load path with
        | Ok db -> Some db
        | Error msg ->
            Printf.eprintf "%s: %s\n" path msg;
            exit 1)
  in
  (* the configuration the compile actually used, for the lint pass *)
  let resolved = ref None in
  let resolve_config =
    if tune then
      Some
        (fun (ast : Tdo_lang.Ast.func) ->
          match
            Search.tune ~source
              ~args:(fun () -> synthesise_args ~seed ast.Tdo_lang.Ast.params)
              ()
          with
          | Error msg ->
              Printf.eprintf "%s: autotuning failed: %s\n" file msg;
              None
          | Ok r ->
              let cfg = r.Search.best.Search.point in
              resolved := Some cfg;
              Printf.printf "tuned: %s (x%.2f vs default, %d exact simulations)\n"
                (Tdo_tune.Space.describe cfg)
                (Search.improvement r) r.Search.simulated;
              (match (db, tune_db) with
              | Some d, Some path ->
                  Tune_db.save
                    (Tune_db.add d
                       (Tune_db.entry_of_result ~n:(Tdo_tune.Space.max_extent ast) r))
                    path;
                  Printf.printf "tuning database updated: %s\n" path
              | _ -> ());
              Some cfg)
    else
      Option.map
        (fun d (ast : Tdo_lang.Ast.func) ->
          match Tune_db.config_for ~device:(device_rows, device_cols) d ast with
          | Some cfg ->
              resolved := Some cfg;
              Printf.printf "tune-db: compiling with %s\n" (Tdo_tune.Space.describe cfg);
              Some cfg
          | None -> None)
        db
  in
  match Flow.compile_checked ~options ?resolve_config ~verify source with
  | exception Tdo_lang.Lexer.Lex_error { line; message } ->
      Printf.eprintf "%s:%d: lexical error: %s\n" file line message;
      exit 1
  | exception Tdo_lang.Parser.Parse_error { line; message } ->
      Printf.eprintf "%s:%d: syntax error: %s\n" file line message;
      exit 1
  | exception Tdo_lang.Typecheck.Type_error message ->
      Printf.eprintf "%s: type error: %s\n" file message;
      exit 1
  | compiled ->
      let f = compiled.Flow.func in
      if depgraph then begin
        let f0 = Tdo_ir.Lower.func (Tdo_lang.Parser.parse_func source) in
        match Tdo_poly.Scop_detect.detect_func f0 with
        | Ok t ->
            print_string (Tdo_analysis.Depgraph.to_dot (Tdo_analysis.Depgraph.of_tree t));
            exit 0
        | Error msg ->
            Printf.eprintf "%s: no dependence graph: SCoP detection failed: %s\n" file msg;
            exit 1
      end;
      let rejected =
        match compiled.Flow.outcome with Some (Pipeline.Rejected _) -> true | _ -> false
      in
      if verify && compiled.Flow.diagnostics <> [] then
        Format.printf "%a@." Diag.pp_list
          (Diag.by_severity (Diag.canonical compiled.Flow.diagnostics));
      if rejected then
        Printf.eprintf "%s: verification rejected the rewrite; keeping the host path\n" file;
      let tactics_report =
        match compiled.Flow.outcome with Some (Pipeline.Offloaded r) -> Some r | _ -> None
      in
      let offloaded =
        match tactics_report with Some r -> r.Offload.kernels_offloaded > 0 | None -> false
      in
      let saw_warning = ref false in
      if lint || wall || (explain && not offloaded) then begin
        let f0 = Tdo_ir.Lower.func (Tdo_lang.Parser.parse_func source) in
        let etcfg = match !resolved with Some c -> c | None -> tcfg in
        let lcfg =
          {
            Lint.default_config with
            Lint.xbar_rows = etcfg.Offload.xbar_rows;
            xbar_cols = etcfg.Offload.xbar_cols;
            enable_tiling = etcfg.Offload.enable_tiling;
            min_intensity =
              (match etcfg.Offload.min_intensity with
              | Some t -> t
              | None -> Lint.default_config.Lint.min_intensity);
            device_rows = Some device_rows;
            device_cols = Some device_cols;
          }
        in
        let ds =
          Lint.run ~config:lcfg f0
          @ if Tdo_ir.Ir.contains_cim_calls f then Lint.offload_ir ~config:lcfg f else []
        in
        let shown =
          List.filter
            (fun (d : Diag.t) ->
              match d.Diag.severity with
              | Diag.Error | Diag.Warning -> lint || wall || explain
              | Diag.Note -> wall || explain)
            (Diag.canonical ds)
        in
        if List.exists (fun (d : Diag.t) -> d.Diag.severity = Diag.Warning) shown then
          saw_warning := true;
        if shown <> [] then Format.printf "%a@." Diag.pp_list (Diag.by_severity shown)
        else if lint || wall then Printf.printf "lint: clean\n"
      end;
      if explain && offloaded then print_endline "loop-tactics: kernels were offloaded";
      if report then begin
        match tactics_report with
        | None ->
            if rejected then print_endline "loop-tactics: rewrite rejected by verification"
            else if tactics then
              print_endline "loop-tactics: function body is not a SCoP; host path"
            else print_endline "loop-tactics: disabled"
        | Some r ->
            Printf.printf
              "loop-tactics: %d kernels detected, %d offloaded, %d batched groups, %d tiled, %d kept on host\n"
              r.Offload.kernels_detected r.Offload.kernels_offloaded r.Offload.fused_groups
              r.Offload.tiled_kernels r.Offload.skipped_low_intensity
      end;
      if emit_ir then Format.printf "%a@." Tdo_ir.Ir.pp_func f;
      if do_run then execute ~seed f;
      if (not emit_ir) && (not report) && (not do_run) && not (lint || wall || verify || explain)
      then
        Printf.printf "compiled %s (%s)\n" file
          (if Tdo_ir.Ir.contains_cim_calls f then "with CIM offload" else "host only");
      if rejected || (verify && Diag.errors compiled.Flow.diagnostics <> []) then exit 1;
      if werror && !saw_warning then exit 2

let cmd =
  let exits =
    Cmd.Exit.info 1
      ~doc:
        "on errors: lexical, syntax or type errors in the source; verification rejecting the \
         rewrite; SCoP detection failing under $(b,--depgraph); or an unreadable tuning \
         database."
    :: Cmd.Exit.info 2 ~doc:"when $(b,--Werror) is set and at least one lint warning was emitted."
    :: Cmd.Exit.defaults
  in
  let info = Cmd.info "tdoc" ~doc:"TDO-CIM compiler driver." ~exits in
  Cmd.v info
    Term.(
      const run $ file_arg $ o3_flag $ tactics_flag $ emit_ir_flag $ report_flag
      $ naive_pin_flag $ selective_arg $ run_flag $ seed_arg $ lint_flag $ wall_flag
      $ werror_flag $ depgraph_flag $ verify_flag $ explain_flag $ tune_flag $ tune_db_arg)

let () = exit (Cmd.eval cmd)
