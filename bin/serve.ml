(* tdo-serve: replay a synthetic workload trace against the multi-tenant
   CIM offload service (kernel cache + device pool + batching scheduler)
   and report request telemetry as BENCH_serve.json.

   By default every replay is followed by its golden run — the same
   trace on one device, unbatched, forced sequential — and the
   per-request output checksums are compared; any divergence is a bug
   in the serving layer and fails the invocation. *)

open Cmdliner
module Serve = Tdo_serve
module Scheduler = Tdo_serve.Scheduler
module Telemetry = Tdo_serve.Telemetry
module Trace = Tdo_serve.Trace
module Device = Tdo_serve.Device
module Platform = Tdo_runtime.Platform
module Micro_engine = Tdo_cimacc.Micro_engine
module Report = Tdo_util.Bench_report
module Time_base = Tdo_sim.Time_base

let us_of_ps ps = float_of_int ps /. float_of_int Time_base.ps_per_us

let summarise label (r : Scheduler.report) =
  let t = r.Scheduler.telemetry in
  let pct p = match Telemetry.latency_percentile t ~p with Some v -> v | None -> 0.0 in
  Printf.printf "%s: %d requests over %s\n" label
    (List.length r.Scheduler.trace.Trace.requests)
    r.Scheduler.trace.Trace.name;
  let s = Telemetry.summary t in
  Printf.printf
    "  completed %d (%d after retry, %d tuned), recovered-host %d, cpu-fallback %d, \
     rejected %d, failed %d | cache hit rate %.1f%% (%d compiles)\n"
    (Scheduler.completed r) s.Telemetry.completed_after_retry s.Telemetry.served_tuned
    s.Telemetry.recovered_host
    (Scheduler.fallbacks r) (Scheduler.rejections r) (Scheduler.failures r)
    (100.0 *. Scheduler.cache_hit_rate r)
    r.Scheduler.cache.Serve.Kernel_cache.misses;
  if s.Telemetry.detected_corruptions > 0 then
    Printf.printf "  abft: %d corrupt offloads detected, %d devices quarantined\n"
      s.Telemetry.detected_corruptions
      (List.length r.Scheduler.quarantined);
  Printf.printf "  latency us: p50 %.1f  p99 %.1f  mean %.1f | max queue depth %d\n"
    (pct 50.0) (pct 99.0)
    (match Telemetry.mean_latency_us t with Some v -> v | None -> 0.0)
    (Telemetry.max_queue_depth t);
  Printf.printf "  makespan %.2f ms (simulated), replay wall %.2f s\n"
    (us_of_ps r.Scheduler.makespan_ps /. 1000.0)
    r.Scheduler.wall_s;
  List.iter
    (fun (id, (w : Device.wear), served) ->
      Printf.printf
        "  device %d: %d reqs, %d cell writes (max/cell %d), levelled max/line %d, %d \
         remaps, budget %.2e\n"
        id served w.Device.total_cell_writes w.Device.max_per_cell
        w.Device.leveling.Tdo_pcm.Wear_leveling.max_per_cell
        w.Device.leveling.Tdo_pcm.Wear_leveling.remaps w.Device.budget_consumed)
    r.Scheduler.devices

let extras (r : Scheduler.report) ~golden_divergence =
  let t = r.Scheduler.telemetry in
  let pct p = match Telemetry.latency_percentile t ~p with Some v -> v | None -> 0.0 in
  let base =
    [
      ("requests", float_of_int (List.length r.Scheduler.trace.Trace.requests));
      ("completed", float_of_int (Scheduler.completed r));
      ("cpu_fallbacks", float_of_int (Scheduler.fallbacks r));
      ("rejected_overloaded", float_of_int (Scheduler.rejections r));
      ("failed", float_of_int (Scheduler.failures r));
      ( "completed_after_retry",
        float_of_int (Telemetry.summary t).Telemetry.completed_after_retry );
      ("served_tuned", float_of_int (Telemetry.summary t).Telemetry.served_tuned);
      ("recovered_host", float_of_int (Scheduler.recovered r));
      ("detected_corruptions", float_of_int (Scheduler.detected_corruptions r));
      ("quarantined_devices", float_of_int (List.length r.Scheduler.quarantined));
      ("devices", float_of_int r.Scheduler.config.Scheduler.devices);
      ("cache_hits", float_of_int r.Scheduler.cache.Serve.Kernel_cache.hits);
      ("cache_misses", float_of_int r.Scheduler.cache.Serve.Kernel_cache.misses);
      ("cache_hit_rate", Scheduler.cache_hit_rate r);
      ( "distinct_kernels",
        float_of_int (List.length (Trace.distinct_kernels r.Scheduler.trace)) );
      ("latency_p50_us", pct 50.0);
      ("latency_p99_us", pct 99.0);
      ( "latency_mean_us",
        match Telemetry.mean_latency_us t with Some v -> v | None -> 0.0 );
      ("max_queue_depth", float_of_int (Telemetry.max_queue_depth t));
      ("makespan_ms", us_of_ps r.Scheduler.makespan_ps /. 1000.0);
    ]
  in
  let per_device =
    List.concat_map
      (fun (id, (w : Device.wear), served) ->
        let dev fmt = Printf.sprintf ("dev%d_" ^^ fmt) id in
        [
          (dev "requests", float_of_int served);
          (dev "cell_writes", float_of_int w.Device.total_cell_writes);
          (dev "max_per_cell", float_of_int w.Device.max_per_cell);
          ( dev "levelled_max_per_line",
            float_of_int w.Device.leveling.Tdo_pcm.Wear_leveling.max_per_cell );
          (dev "remaps", float_of_int w.Device.leveling.Tdo_pcm.Wear_leveling.remaps);
          (dev "budget_consumed", w.Device.budget_consumed);
        ]
        @ List.concat
            (Array.to_list
               (Array.mapi
                  (fun tile cw ->
                    [
                      (Printf.sprintf "dev%d_tile%d_cell_writes" id tile, float_of_int cw);
                      ( Printf.sprintf "dev%d_tile%d_write_bytes" id tile,
                        float_of_int w.Device.per_tile_write_bytes.(tile) );
                    ])
                  w.Device.per_tile_cell_writes)))
      r.Scheduler.devices
  in
  let golden =
    match golden_divergence with
    | Some d -> [ ("golden_divergence", float_of_int d) ]
    | None -> []
  in
  base @ per_device @ golden

let run trace_name devices seed queue_capacity max_batch no_batching sequential deadline_us
    tiles cache_capacity tune_db chrome_trace out no_golden strict =
  match Trace.synthetic ?deadline_us ~seed trace_name with
  | Error msg ->
      prerr_endline msg;
      1
  | Ok trace ->
      let tuning =
        match tune_db with
        | None -> None
        | Some path -> (
            match Tdo_tune.Db.load path with
            | Ok db ->
                Printf.printf "tuning database: %d entries from %s\n" (Tdo_tune.Db.size db)
                  path;
                Some db
            | Error msg ->
                prerr_endline msg;
                exit 1)
      in
      let platform_config =
        let d = Platform.default_config in
        {
          d with
          Platform.engine = { d.Platform.engine with Micro_engine.tiles = max 1 tiles };
        }
      in
      let config =
        {
          Scheduler.default_config with
          Scheduler.devices;
          platform_config;
          queue_capacity;
          max_batch;
          batching = not no_batching;
          parallel = not sequential;
          cache_capacity;
          tuning;
        }
      in
      let report, main_section =
        Report.section ~name:("replay-" ^ trace_name) (fun () ->
            Scheduler.replay ~config trace)
      in
      summarise "replay" report;
      (match chrome_trace with
      | Some path ->
          Telemetry.write_chrome_trace report.Scheduler.telemetry ~path;
          Printf.printf "chrome trace written to %s\n" path
      | None -> ());
      let golden_divergence, sections =
        if no_golden then (None, [ main_section ])
        else begin
          let golden, golden_section =
            Report.section ~name:"golden-sequential" (fun () ->
                Tdo_util.Pool.set_sequential (Some true);
                Fun.protect
                  ~finally:(fun () -> Tdo_util.Pool.set_sequential None)
                  (fun () ->
                    Scheduler.replay ~config:(Scheduler.golden_config config) trace))
          in
          let d = Scheduler.divergence report golden in
          Printf.printf "golden check: %d divergent of %d comparable requests\n" d
            (min (Scheduler.completed report) (Scheduler.completed golden));
          (Some d, [ main_section; golden_section ])
        end
      in
      Report.write ~path:out
        ~extra:(extras report ~golden_divergence)
        ~notes:
          (Printf.sprintf
             "tdo-serve replay of %s: %d devices, %d tiles/device, batching %b, queue \
              capacity %d"
             trace_name devices tiles (not no_batching) queue_capacity)
        ~sections ();
      Printf.printf "report written to %s\n" out;
      let divergent = match golden_divergence with Some d when d > 0 -> true | _ -> false in
      let strict_failure = strict && Scheduler.failures report > 0 in
      if divergent then prerr_endline "FAIL: golden divergence detected";
      if strict_failure then prerr_endline "FAIL: request failures under --strict";
      if divergent || strict_failure then 1 else 0

let cmd =
  let trace_arg =
    Arg.(
      value & opt string "synthetic-medium"
      & info [ "t"; "trace" ] ~docv:"NAME"
          ~doc:
            "Workload trace to replay: synthetic-smoke, synthetic-small, synthetic-medium, \
             synthetic-large or synthetic-tight.")
  in
  let devices_arg =
    Arg.(value & opt int 4 & info [ "devices" ] ~docv:"N" ~doc:"Devices in the pool.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Trace generator seed.") in
  let queue_arg =
    Arg.(
      value & opt int 256
      & info [ "queue-capacity" ] ~docv:"N"
          ~doc:"Submission-queue bound; overflow is rejected. 0 means unbounded.")
  in
  let max_batch_arg =
    Arg.(
      value & opt int 8
      & info [ "max-batch" ] ~docv:"N" ~doc:"Requests coalesced per dispatch.")
  in
  let no_batching_arg =
    Arg.(value & flag & info [ "no-batching" ] ~doc:"Dispatch one request at a time.")
  in
  let sequential_arg =
    Arg.(
      value & flag
      & info [ "sequential" ] ~doc:"Execute dispatch waves on the calling domain only.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-us" ] ~docv:"US"
          ~doc:"Per-request deadline; late requests degrade to the CPU interpreter.")
  in
  let tiles_arg =
    Arg.(value & opt int 1 & info [ "tiles" ] ~docv:"N" ~doc:"CIM tiles per device.")
  in
  let cache_arg =
    Arg.(
      value & opt int 64
      & info [ "cache-capacity" ] ~docv:"N" ~doc:"Compiled-kernel cache entries.")
  in
  let tune_db_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "tune-db" ] ~docv:"FILE"
          ~doc:
            "Tuning database (written by tdo-tune): kernels whose structural digest has an \
             entry are compiled with the tuned configuration, clamped to the pool's crossbar \
             geometry. The golden check keeps the database, so tuned replays stay \
             divergence-checked.")
  in
  let chrome_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome-trace" ] ~docv:"FILE"
          ~doc:"Dump the replay as Chrome trace events (chrome://tracing, Perfetto).")
  in
  let out_arg =
    Arg.(
      value & opt string "BENCH_serve.json"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Benchmark report path.")
  in
  let no_golden_arg =
    Arg.(
      value & flag
      & info [ "no-golden" ] ~doc:"Skip the sequential single-device golden check.")
  in
  let strict_arg =
    Arg.(value & flag & info [ "strict" ] ~doc:"Also fail on any per-request failure.")
  in
  Cmd.v
    (Cmd.info "tdo-serve" ~doc:"Multi-tenant CIM offload service: trace replay driver.")
    Term.(
      const run $ trace_arg $ devices_arg $ seed_arg $ queue_arg $ max_batch_arg
      $ no_batching_arg $ sequential_arg $ deadline_arg $ tiles_arg $ cache_arg
      $ tune_db_arg $ chrome_arg $ out_arg $ no_golden_arg $ strict_arg)

let () = exit (Cmd.eval' cmd)
