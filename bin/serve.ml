(* tdo-serve: replay a synthetic workload trace against the multi-tenant
   CIM offload service (kernel cache + heterogeneous device fleet +
   batching scheduler) and report request telemetry as BENCH_serve.json.

   The pool is a mixed fleet when --fleet is given (e.g.
   "pcm:2,digital:2,dual:2"): analog PCM crossbars, digital SRAM CIM
   tiles, the host BLAS path and dual-mode tiles that serve as plain
   memory until queue pressure drafts them. Placement is cost-based per
   class; telemetry and the report break outcomes down per class.

   By default every replay is followed by its golden runs — the same
   trace on one always-compute device per compute class present in the
   fleet, unbatched, forced sequential — and the per-request output
   checksums are compared within each class; any divergence is a bug in
   the serving layer and fails the invocation. *)

open Cmdliner
module Serve = Tdo_serve
module Scheduler = Tdo_serve.Scheduler
module Telemetry = Tdo_serve.Telemetry
module Trace = Tdo_serve.Trace
module Device = Tdo_serve.Device
module Backend = Tdo_backend.Backend
module Platform = Tdo_runtime.Platform
module Micro_engine = Tdo_cimacc.Micro_engine
module Report = Tdo_util.Bench_report
module Time_base = Tdo_sim.Time_base

let us_of_ps ps = float_of_int ps /. float_of_int Time_base.ps_per_us

let summarise label (r : Scheduler.report) =
  let t = r.Scheduler.telemetry in
  let pct p = match Telemetry.latency_percentile t ~p with Some v -> v | None -> 0.0 in
  Printf.printf "%s: %d requests over %s\n" label
    (List.length r.Scheduler.trace.Trace.requests)
    r.Scheduler.trace.Trace.name;
  let s = Telemetry.summary t in
  Printf.printf
    "  completed %d (%d after retry, %d tuned), recovered-host %d, cpu-fallback %d, \
     rejected %d, failed %d | cache hit rate %.1f%% (%d compiles)\n"
    (Scheduler.completed r) s.Telemetry.completed_after_retry s.Telemetry.served_tuned
    s.Telemetry.recovered_host
    (Scheduler.fallbacks r) (Scheduler.rejections r) (Scheduler.failures r)
    (100.0 *. Scheduler.cache_hit_rate r)
    r.Scheduler.cache.Serve.Kernel_cache.misses;
  if s.Telemetry.detected_corruptions > 0 then
    Printf.printf "  abft: %d corrupt offloads detected, %d devices quarantined\n"
      s.Telemetry.detected_corruptions
      (List.length r.Scheduler.quarantined);
  if s.Telemetry.conversions_to_compute + s.Telemetry.conversions_to_memory > 0 then
    Printf.printf "  dual-mode: %d conversions to compute, %d back to memory\n"
      s.Telemetry.conversions_to_compute s.Telemetry.conversions_to_memory;
  Printf.printf "  latency us: p50 %.1f  p99 %.1f  mean %.1f | max queue depth %d\n"
    (pct 50.0) (pct 99.0)
    (match Telemetry.mean_latency_us t with Some v -> v | None -> 0.0)
    (Telemetry.max_queue_depth t);
  Printf.printf "  makespan %.2f ms (simulated), replay wall %.2f s\n"
    (us_of_ps r.Scheduler.makespan_ps /. 1000.0)
    r.Scheduler.wall_s;
  List.iter
    (fun (profile, (c : Telemetry.class_counts)) ->
      Printf.printf
        "  class %-8s served %d, recovered %d, cpu-fallback %d, rejected %d, failed %d%s\n"
        profile c.Telemetry.served c.Telemetry.recovered c.Telemetry.fallbacks
        c.Telemetry.rejected c.Telemetry.failed
        (if c.Telemetry.to_compute + c.Telemetry.to_memory > 0 then
           Printf.sprintf " | conversions %d/%d" c.Telemetry.to_compute c.Telemetry.to_memory
         else ""))
    (Telemetry.class_summary t);
  List.iter
    (fun (d : Scheduler.device_report) ->
      let w = d.Scheduler.dev_wear in
      Printf.printf
        "  device %d (%s): %d reqs, %.2e J, %d cell writes (max/cell %d), levelled \
         max/line %d, %d remaps, budget %.2e\n"
        d.Scheduler.dev_id d.Scheduler.dev_profile d.Scheduler.dev_served
        d.Scheduler.dev_energy_j w.Device.total_cell_writes w.Device.max_per_cell
        w.Device.leveling.Tdo_pcm.Wear_leveling.max_per_cell
        w.Device.leveling.Tdo_pcm.Wear_leveling.remaps w.Device.budget_consumed)
    r.Scheduler.devices

let extras (r : Scheduler.report) ~golden_divergence =
  let t = r.Scheduler.telemetry in
  let pct p = match Telemetry.latency_percentile t ~p with Some v -> v | None -> 0.0 in
  let s = Telemetry.summary t in
  let base =
    [
      ("requests", float_of_int (List.length r.Scheduler.trace.Trace.requests));
      ("completed", float_of_int (Scheduler.completed r));
      ("cpu_fallbacks", float_of_int (Scheduler.fallbacks r));
      ("rejected_overloaded", float_of_int (Scheduler.rejections r));
      ("failed", float_of_int (Scheduler.failures r));
      ( "completed_after_retry",
        float_of_int (Telemetry.summary t).Telemetry.completed_after_retry );
      ("served_tuned", float_of_int (Telemetry.summary t).Telemetry.served_tuned);
      ("recovered_host", float_of_int (Scheduler.recovered r));
      ("detected_corruptions", float_of_int (Scheduler.detected_corruptions r));
      ("quarantined_devices", float_of_int (List.length r.Scheduler.quarantined));
      ("devices", float_of_int (List.length r.Scheduler.devices));
      ("conversions_to_compute", float_of_int s.Telemetry.conversions_to_compute);
      ("conversions_to_memory", float_of_int s.Telemetry.conversions_to_memory);
      ("cache_hits", float_of_int r.Scheduler.cache.Serve.Kernel_cache.hits);
      ("cache_misses", float_of_int r.Scheduler.cache.Serve.Kernel_cache.misses);
      ("cache_hit_rate", Scheduler.cache_hit_rate r);
      ( "distinct_kernels",
        float_of_int (List.length (Trace.distinct_kernels r.Scheduler.trace)) );
      ("latency_p50_us", pct 50.0);
      ("latency_p99_us", pct 99.0);
      ( "latency_mean_us",
        match Telemetry.mean_latency_us t with Some v -> v | None -> 0.0 );
      ("max_queue_depth", float_of_int (Telemetry.max_queue_depth t));
      ("makespan_ms", us_of_ps r.Scheduler.makespan_ps /. 1000.0);
    ]
  in
  (* per-class breakdown: served/latency/energy per device class, the
     mixed-fleet sections of BENCH_serve.json *)
  let per_class =
    List.concat_map
      (fun (profile, (c : Telemetry.class_counts)) ->
        let k fmt = Printf.sprintf ("class_%s_" ^^ fmt) profile in
        let energy =
          List.fold_left
            (fun acc (d : Scheduler.device_report) ->
              if d.Scheduler.dev_profile = profile then acc +. d.Scheduler.dev_energy_j
              else acc)
            0.0 r.Scheduler.devices
        in
        [
          (k "served", float_of_int c.Telemetry.served);
          (k "recovered", float_of_int c.Telemetry.recovered);
          (k "cpu_fallbacks", float_of_int c.Telemetry.fallbacks);
          (k "rejected", float_of_int c.Telemetry.rejected);
          (k "failed", float_of_int c.Telemetry.failed);
          (k "retries_against", float_of_int c.Telemetry.retries_against);
          (k "conversions_to_compute", float_of_int c.Telemetry.to_compute);
          (k "conversions_to_memory", float_of_int c.Telemetry.to_memory);
          (k "energy_j", energy);
          ( k "latency_p50_us",
            match Telemetry.latency_percentile ~profile t ~p:50.0 with
            | Some v -> v
            | None -> 0.0 );
          ( k "latency_mean_us",
            match Telemetry.mean_latency_us ~profile t with Some v -> v | None -> 0.0 );
        ])
      (Telemetry.class_summary t)
  in
  let per_device =
    List.concat_map
      (fun (d : Scheduler.device_report) ->
        let id = d.Scheduler.dev_id in
        let w = d.Scheduler.dev_wear in
        let to_compute, to_memory = d.Scheduler.dev_conversions in
        let dev fmt = Printf.sprintf ("dev%d_" ^^ fmt) id in
        [
          (dev "requests", float_of_int d.Scheduler.dev_served);
          (dev "energy_j", d.Scheduler.dev_energy_j);
          (dev "conversions_to_compute", float_of_int to_compute);
          (dev "conversions_to_memory", float_of_int to_memory);
          (dev "cell_writes", float_of_int w.Device.total_cell_writes);
          (dev "max_per_cell", float_of_int w.Device.max_per_cell);
          ( dev "levelled_max_per_line",
            float_of_int w.Device.leveling.Tdo_pcm.Wear_leveling.max_per_cell );
          (dev "remaps", float_of_int w.Device.leveling.Tdo_pcm.Wear_leveling.remaps);
          (dev "budget_consumed", w.Device.budget_consumed);
        ]
        @ List.concat
            (Array.to_list
               (Array.mapi
                  (fun tile cw ->
                    [
                      (Printf.sprintf "dev%d_tile%d_cell_writes" id tile, float_of_int cw);
                      ( Printf.sprintf "dev%d_tile%d_write_bytes" id tile,
                        float_of_int w.Device.per_tile_write_bytes.(tile) );
                    ])
                  w.Device.per_tile_cell_writes)))
      r.Scheduler.devices
  in
  let golden =
    match golden_divergence with
    | Some d -> [ ("golden_divergence", float_of_int d) ]
    | None -> []
  in
  base @ per_class @ per_device @ golden

let run trace_name devices fleet_spec seed queue_capacity max_batch no_batching sequential
    deadline_us tiles cache_capacity tune_db chrome_trace out baseline no_golden strict =
  match Trace.synthetic ?deadline_us ~seed trace_name with
  | Error msg ->
      prerr_endline msg;
      1
  | Ok trace -> (
      let fleet =
        match fleet_spec with
        | None -> None
        | Some spec -> (
            match Backend.parse_fleet spec with
            | Ok profiles -> Some profiles
            | Error msg ->
                prerr_endline msg;
                exit 1)
      in
      let tuning =
        match tune_db with
        | None -> None
        | Some path -> (
            match Tdo_tune.Db.load path with
            | Ok db ->
                Printf.printf "tuning database: %d entries from %s\n" (Tdo_tune.Db.size db)
                  path;
                Some db
            | Error msg ->
                prerr_endline msg;
                exit 1)
      in
      let platform_config =
        let d = Platform.default_config in
        {
          d with
          Platform.engine = { d.Platform.engine with Micro_engine.tiles = max 1 tiles };
        }
      in
      let config =
        {
          Scheduler.default_config with
          Scheduler.devices;
          fleet;
          platform_config;
          queue_capacity;
          max_batch;
          batching = not no_batching;
          parallel = not sequential;
          cache_capacity;
          tuning;
        }
      in
      let fleet_desc =
        match fleet with
        | Some profiles -> Backend.describe_fleet profiles
        | None -> Printf.sprintf "pcm:%d" devices
      in
      let report, main_section =
        Report.section ~name:("replay-" ^ trace_name) (fun () ->
            Scheduler.replay ~config trace)
      in
      summarise "replay" report;
      (match chrome_trace with
      | Some path ->
          Telemetry.write_chrome_trace report.Scheduler.telemetry ~path;
          Printf.printf "chrome trace written to %s\n" path
      | None -> ());
      (* one golden oracle per compute class present in the fleet:
         checksums are only comparable within a class, so each class
         gets its own sequential single-device reference *)
      let golden_profiles =
        match fleet with
        | None -> [ Backend.pcm ]
        | Some profiles ->
            List.rev
              (List.fold_left
                 (fun acc (p : Backend.profile) ->
                   if
                     List.exists
                       (fun (q : Backend.profile) -> q.Backend.cls = p.Backend.cls)
                       acc
                   then acc
                   else p :: acc)
                 [] profiles)
      in
      let golden_divergence, sections =
        if no_golden then (None, [ main_section ])
        else
          let total, golden_sections =
            List.fold_left
              (fun (total, secs) (profile : Backend.profile) ->
                let section_name =
                  if fleet = None then "golden-sequential"
                  else "golden-" ^ Backend.class_name profile.Backend.cls
                in
                let golden, golden_section =
                  Report.section ~name:section_name (fun () ->
                      Tdo_util.Pool.set_sequential (Some true);
                      Fun.protect
                        ~finally:(fun () -> Tdo_util.Pool.set_sequential None)
                        (fun () ->
                          Scheduler.replay
                            ~config:(Scheduler.golden_config ~profile config)
                            trace))
                in
                let d = Scheduler.divergence report golden in
                Printf.printf "golden check (%s): %d divergent of %d comparable requests\n"
                  (Backend.class_name profile.Backend.cls)
                  d
                  (min (Scheduler.completed report) (Scheduler.completed golden));
                (total + d, secs @ [ golden_section ]))
              (0, []) golden_profiles
          in
          (Some total, main_section :: golden_sections)
      in
      let extra = extras report ~golden_divergence in
      let extra =
        match baseline with
        | None -> extra
        | Some path -> (
            match Report.compare ~baseline:path sections with
            | Ok deltas ->
                List.iter
                  (fun (d : Report.delta) ->
                    Printf.printf "vs baseline %-18s %.3f s -> %.3f s (x%.2f%s)\n"
                      d.Report.name d.Report.baseline_wall_s d.Report.wall_s
                      d.Report.speedup_vs_baseline
                      (if d.Report.regression then ", REGRESSION" else ""))
                  deltas;
                extra @ Report.delta_fields deltas
            | Error msg ->
                Printf.eprintf "serve: baseline %s: %s\n%!" path msg;
                extra)
      in
      Report.write ~path:out ~extra
        ~notes:
          (Printf.sprintf
             "tdo-serve replay of %s: fleet %s, %d tiles/device, batching %b, queue \
              capacity %d"
             trace_name fleet_desc tiles (not no_batching) queue_capacity)
        ~sections ();
      Printf.printf "report written to %s\n" out;
      let divergent = match golden_divergence with Some d when d > 0 -> true | _ -> false in
      let strict_failure = strict && Scheduler.failures report > 0 in
      if divergent then prerr_endline "FAIL: golden divergence detected";
      if strict_failure then prerr_endline "FAIL: request failures under --strict";
      if divergent || strict_failure then 1 else 0)

let cmd =
  let trace_arg =
    Arg.(
      value & opt string "synthetic-medium"
      & info [ "t"; "trace" ] ~docv:"NAME"
          ~doc:
            "Workload trace to replay: synthetic-smoke, synthetic-small, synthetic-medium, \
             synthetic-large or synthetic-tight.")
  in
  let devices_arg =
    Arg.(
      value & opt int 4
      & info [ "devices" ] ~docv:"N"
          ~doc:"Devices in the pool (all analog crossbars); superseded by --fleet.")
  in
  let fleet_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "fleet" ] ~docv:"SPEC"
          ~doc:
            "Heterogeneous fleet spec, e.g. pcm:2,digital:2,dual:2. Classes: pcm (analog \
             PCM crossbar), digital (SRAM CIM tile: slower GEMV, near-free writes, no \
             wear), host (the host BLAS path as a placement target), dual (an analog tile \
             that serves as plain memory until queue pressure converts it, paying the \
             conversion latency). Placement across the fleet is cost-based per class.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Trace generator seed.") in
  let queue_arg =
    Arg.(
      value & opt int 256
      & info [ "queue-capacity" ] ~docv:"N"
          ~doc:"Submission-queue bound; overflow is rejected. 0 means unbounded.")
  in
  let max_batch_arg =
    Arg.(
      value & opt int 8
      & info [ "max-batch" ] ~docv:"N" ~doc:"Requests coalesced per dispatch.")
  in
  let no_batching_arg =
    Arg.(value & flag & info [ "no-batching" ] ~doc:"Dispatch one request at a time.")
  in
  let sequential_arg =
    Arg.(
      value & flag
      & info [ "sequential" ] ~doc:"Execute dispatch waves on the calling domain only.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-us" ] ~docv:"US"
          ~doc:"Per-request deadline; late requests degrade to the CPU interpreter.")
  in
  let tiles_arg =
    Arg.(value & opt int 1 & info [ "tiles" ] ~docv:"N" ~doc:"CIM tiles per device.")
  in
  let cache_arg =
    Arg.(
      value & opt int 64
      & info [ "cache-capacity" ] ~docv:"N" ~doc:"Compiled-kernel cache entries.")
  in
  let tune_db_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "tune-db" ] ~docv:"FILE"
          ~doc:
            "Tuning database (written by tdo-tune): kernels whose structural digest has an \
             entry for a device class are compiled with the tuned configuration on that \
             class, clamped to the pool's crossbar geometry; cross-class entries are \
             refused. The golden checks keep the database, so tuned replays stay \
             divergence-checked.")
  in
  let chrome_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome-trace" ] ~docv:"FILE"
          ~doc:"Dump the replay as Chrome trace events (chrome://tracing, Perfetto).")
  in
  let out_arg =
    Arg.(
      value & opt string "BENCH_serve.json"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Benchmark report path.")
  in
  let baseline_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Previous BENCH_serve.json to compare against; per-section wall-clock deltas \
             are added to the report.")
  in
  let no_golden_arg =
    Arg.(
      value & flag
      & info [ "no-golden" ] ~doc:"Skip the sequential single-device golden checks.")
  in
  let strict_arg =
    Arg.(value & flag & info [ "strict" ] ~doc:"Also fail on any per-request failure.")
  in
  Cmd.v
    (Cmd.info "tdo-serve" ~doc:"Multi-tenant CIM offload service: trace replay driver.")
    Term.(
      const run $ trace_arg $ devices_arg $ fleet_arg $ seed_arg $ queue_arg
      $ max_batch_arg $ no_batching_arg $ sequential_arg $ deadline_arg $ tiles_arg
      $ cache_arg $ tune_db_arg $ chrome_arg $ out_arg $ baseline_arg $ no_golden_arg
      $ strict_arg)

let () = exit (Cmd.eval' cmd)
