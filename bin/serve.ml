(* tdo-serve: the serving-layer driver, in three modes.

   Replay (default): drive a synthetic workload trace through the
   multi-tenant CIM offload service (kernel cache + heterogeneous
   device fleet + batching scheduler) in virtual time and report
   request telemetry as BENCH_serve.json.

   Load (--load): generate open-loop multi-tenant arrival streams
   (Poisson sustained, Poisson overload, bursty MMPP recovery) with
   tdo_loadgen, push them through the same scheduler under an
   admission policy (per-tenant token buckets + SLO-class load
   shedding) with live windowed telemetry, and write one report
   section per arrival pattern next to the classic fleet-replay
   sections.

   Frontend (--listen / --socket PATH): serve live requests in wall
   clock over stdin/stdout or a Unix socket, speaking the line/JSON
   protocol documented in Serve.Frontend.

   The pool is a mixed fleet when --fleet is given (e.g.
   "pcm:2,digital:2,dual:2"): analog PCM crossbars, digital SRAM CIM
   tiles, the host BLAS path and dual-mode tiles that serve as plain
   memory until queue pressure drafts them. Placement is cost-based
   per class, and --calibrate refits the per-class cost coefficients
   online from measured service cycles.

   By default every replay is followed by its golden runs — the same
   trace on one always-compute device per compute class present in the
   fleet, unbatched, forced sequential — and the per-request output
   checksums are compared within each class; any divergence is a bug in
   the serving layer and fails the invocation. *)

open Cmdliner
module Serve = Tdo_serve
module Scheduler = Tdo_serve.Scheduler
module Telemetry = Tdo_serve.Telemetry
module Trace = Tdo_serve.Trace
module Device = Tdo_serve.Device
module Admission = Tdo_serve.Admission
module Frontend = Tdo_serve.Frontend
module Arrival = Tdo_loadgen.Arrival
module Workload = Tdo_loadgen.Workload
module Codec = Tdo_loadgen.Codec
module Graph = Tdo_graph.Graph
module Backend = Tdo_backend.Backend
module Platform = Tdo_runtime.Platform
module Micro_engine = Tdo_cimacc.Micro_engine
module Report = Tdo_util.Bench_report
module Time_base = Tdo_sim.Time_base

let us_of_ps ps = float_of_int ps /. float_of_int Time_base.ps_per_us

let summarise label (r : Scheduler.report) =
  let t = r.Scheduler.telemetry in
  let pct p = match Telemetry.latency_percentile t ~p with Some v -> v | None -> 0.0 in
  Printf.printf "%s: %d requests over %s\n" label
    (List.length r.Scheduler.trace.Trace.requests)
    r.Scheduler.trace.Trace.name;
  let s = Telemetry.summary t in
  Printf.printf
    "  completed %d (%d after retry, %d tuned), recovered-host %d, cpu-fallback %d, \
     rejected %d, failed %d | cache hit rate %.1f%% (%d compiles)\n"
    (Scheduler.completed r) s.Telemetry.completed_after_retry s.Telemetry.served_tuned
    s.Telemetry.recovered_host
    (Scheduler.fallbacks r) (Scheduler.rejections r) (Scheduler.failures r)
    (100.0 *. Scheduler.cache_hit_rate r)
    r.Scheduler.cache.Serve.Kernel_cache.misses;
  if s.Telemetry.shed_rate_limited + s.Telemetry.shed_load > 0 then
    Printf.printf "  admission: shed %d rate-limited, %d load-shed\n"
      s.Telemetry.shed_rate_limited s.Telemetry.shed_load;
  if s.Telemetry.detected_corruptions > 0 then
    Printf.printf "  abft: %d corrupt offloads detected, %d devices quarantined\n"
      s.Telemetry.detected_corruptions
      (List.length r.Scheduler.quarantined);
  if s.Telemetry.conversions_to_compute + s.Telemetry.conversions_to_memory > 0 then
    Printf.printf "  dual-mode: %d conversions to compute, %d back to memory\n"
      s.Telemetry.conversions_to_compute s.Telemetry.conversions_to_memory;
  Printf.printf "  latency us: p50 %.1f  p99 %.1f  mean %.1f | max queue depth %d\n"
    (pct 50.0) (pct 99.0)
    (match Telemetry.mean_latency_us t with Some v -> v | None -> 0.0)
    (Telemetry.max_queue_depth t);
  Printf.printf "  makespan %.2f ms (simulated), replay wall %.2f s\n"
    (us_of_ps r.Scheduler.makespan_ps /. 1000.0)
    r.Scheduler.wall_s;
  List.iter
    (fun (cls, samples, mre) ->
      Printf.printf "  calibrated %s cost model from %d samples (mre %.3f)\n" cls samples
        mre)
    r.Scheduler.calibrations;
  List.iter
    (fun (slo, (c : Telemetry.slo_counts)) ->
      if c.Telemetry.slo_requests > 0 then
        Printf.printf
          "  slo %-11s %d requests: served %d, shed %d, failed %d | p50 %.1f us p99 %.1f \
           us\n"
          (Trace.slo_name slo) c.Telemetry.slo_requests c.Telemetry.slo_served
          c.Telemetry.slo_shed c.Telemetry.slo_failed c.Telemetry.slo_p50_us
          c.Telemetry.slo_p99_us)
    (Telemetry.slo_summary t);
  List.iter
    (fun (profile, (c : Telemetry.class_counts)) ->
      Printf.printf
        "  class %-8s served %d, recovered %d, cpu-fallback %d, rejected %d, failed %d, \
         %d write bytes%s%s\n"
        profile c.Telemetry.served c.Telemetry.recovered c.Telemetry.fallbacks
        c.Telemetry.rejected c.Telemetry.failed c.Telemetry.class_write_bytes
        (if c.Telemetry.to_compute + c.Telemetry.to_memory > 0 then
           Printf.sprintf " | conversions %d/%d" c.Telemetry.to_compute c.Telemetry.to_memory
         else "")
        (if c.Telemetry.class_displaced_bytes > 0.0 then
           Printf.sprintf " | displaced mem %.0f B" c.Telemetry.class_displaced_bytes
         else ""))
    (Telemetry.class_summary t);
  List.iter
    (fun (d : Scheduler.device_report) ->
      let w = d.Scheduler.dev_wear in
      Printf.printf
        "  device %d (%s): %d reqs, %.2e J, %d cell writes (max/cell %d), levelled \
         max/line %d, %d remaps, budget %.2e\n"
        d.Scheduler.dev_id d.Scheduler.dev_profile d.Scheduler.dev_served
        d.Scheduler.dev_energy_j w.Device.total_cell_writes w.Device.max_per_cell
        w.Device.leveling.Tdo_pcm.Wear_leveling.max_per_cell
        w.Device.leveling.Tdo_pcm.Wear_leveling.remaps w.Device.budget_consumed)
    r.Scheduler.devices

let extras (r : Scheduler.report) ~golden_divergence =
  let t = r.Scheduler.telemetry in
  let pct p = match Telemetry.latency_percentile t ~p with Some v -> v | None -> 0.0 in
  let s = Telemetry.summary t in
  let base =
    [
      ("requests", float_of_int (List.length r.Scheduler.trace.Trace.requests));
      ("completed", float_of_int (Scheduler.completed r));
      ("cpu_fallbacks", float_of_int (Scheduler.fallbacks r));
      ("rejected_overloaded", float_of_int (Scheduler.rejections r));
      ("shed_rate_limited", float_of_int s.Telemetry.shed_rate_limited);
      ("shed_load", float_of_int s.Telemetry.shed_load);
      ("failed", float_of_int (Scheduler.failures r));
      ( "completed_after_retry",
        float_of_int (Telemetry.summary t).Telemetry.completed_after_retry );
      ("served_tuned", float_of_int (Telemetry.summary t).Telemetry.served_tuned);
      ("recovered_host", float_of_int (Scheduler.recovered r));
      ("detected_corruptions", float_of_int (Scheduler.detected_corruptions r));
      ("quarantined_devices", float_of_int (List.length r.Scheduler.quarantined));
      ("devices", float_of_int (List.length r.Scheduler.devices));
      ("conversions_to_compute", float_of_int s.Telemetry.conversions_to_compute);
      ("conversions_to_memory", float_of_int s.Telemetry.conversions_to_memory);
      ("cache_hits", float_of_int r.Scheduler.cache.Serve.Kernel_cache.hits);
      ("cache_misses", float_of_int r.Scheduler.cache.Serve.Kernel_cache.misses);
      ("cache_hit_rate", Scheduler.cache_hit_rate r);
      ( "distinct_kernels",
        float_of_int (List.length (Trace.distinct_kernels r.Scheduler.trace)) );
      ("latency_p50_us", pct 50.0);
      ("latency_p99_us", pct 99.0);
      ( "latency_mean_us",
        match Telemetry.mean_latency_us t with Some v -> v | None -> 0.0 );
      ("max_queue_depth", float_of_int (Telemetry.max_queue_depth t));
      ("makespan_ms", us_of_ps r.Scheduler.makespan_ps /. 1000.0);
    ]
  in
  (* per-class breakdown: served/latency/energy per device class, the
     mixed-fleet sections of BENCH_serve.json *)
  let per_class =
    List.concat_map
      (fun (profile, (c : Telemetry.class_counts)) ->
        let k fmt = Printf.sprintf ("class_%s_" ^^ fmt) profile in
        let energy =
          List.fold_left
            (fun acc (d : Scheduler.device_report) ->
              if d.Scheduler.dev_profile = profile then acc +. d.Scheduler.dev_energy_j
              else acc)
            0.0 r.Scheduler.devices
        in
        [
          (k "served", float_of_int c.Telemetry.served);
          (k "recovered", float_of_int c.Telemetry.recovered);
          (k "cpu_fallbacks", float_of_int c.Telemetry.fallbacks);
          (k "rejected", float_of_int c.Telemetry.rejected);
          (k "failed", float_of_int c.Telemetry.failed);
          (k "retries_against", float_of_int c.Telemetry.retries_against);
          (k "conversions_to_compute", float_of_int c.Telemetry.to_compute);
          (k "conversions_to_memory", float_of_int c.Telemetry.to_memory);
          (k "write_bytes", float_of_int c.Telemetry.class_write_bytes);
          (k "displaced_mem_bytes", c.Telemetry.class_displaced_bytes);
          (k "energy_j", energy);
          ( k "latency_p50_us",
            match Telemetry.latency_percentile ~profile t ~p:50.0 with
            | Some v -> v
            | None -> 0.0 );
          ( k "latency_mean_us",
            match Telemetry.mean_latency_us ~profile t with Some v -> v | None -> 0.0 );
        ])
      (Telemetry.class_summary t)
  in
  let per_device =
    List.concat_map
      (fun (d : Scheduler.device_report) ->
        let id = d.Scheduler.dev_id in
        let w = d.Scheduler.dev_wear in
        let to_compute, to_memory = d.Scheduler.dev_conversions in
        let dev fmt = Printf.sprintf ("dev%d_" ^^ fmt) id in
        [
          (dev "requests", float_of_int d.Scheduler.dev_served);
          (dev "energy_j", d.Scheduler.dev_energy_j);
          (dev "conversions_to_compute", float_of_int to_compute);
          (dev "conversions_to_memory", float_of_int to_memory);
          (dev "displaced_mem_bytes", d.Scheduler.dev_displaced_bytes);
          (dev "cell_writes", float_of_int w.Device.total_cell_writes);
          (dev "max_per_cell", float_of_int w.Device.max_per_cell);
          ( dev "levelled_max_per_line",
            float_of_int w.Device.leveling.Tdo_pcm.Wear_leveling.max_per_cell );
          (dev "remaps", float_of_int w.Device.leveling.Tdo_pcm.Wear_leveling.remaps);
          (dev "budget_consumed", w.Device.budget_consumed);
        ]
        @ List.concat
            (Array.to_list
               (Array.mapi
                  (fun tile cw ->
                    [
                      (Printf.sprintf "dev%d_tile%d_cell_writes" id tile, float_of_int cw);
                      ( Printf.sprintf "dev%d_tile%d_write_bytes" id tile,
                        float_of_int w.Device.per_tile_write_bytes.(tile) );
                    ])
                  w.Device.per_tile_cell_writes)))
      r.Scheduler.devices
  in
  let golden =
    match golden_divergence with
    | Some d -> [ ("golden_divergence", float_of_int d) ]
    | None -> []
  in
  base @ per_class @ per_device @ golden

(* One golden oracle per compute class present in the fleet: checksums
   are only comparable within a class, so each class gets its own
   sequential single-device reference. Returns the summed divergence
   and one report section per class. *)
let golden_checks ~fleet ~config ~trace ~(report : Scheduler.report) ~section_prefix =
  let golden_profiles =
    match fleet with
    | None -> [ Backend.pcm ]
    | Some profiles ->
        List.rev
          (List.fold_left
             (fun acc (p : Backend.profile) ->
               if
                 List.exists
                   (fun (q : Backend.profile) -> q.Backend.cls = p.Backend.cls)
                   acc
               then acc
               else p :: acc)
             [] profiles)
  in
  List.fold_left
    (fun (total, secs) (profile : Backend.profile) ->
      let section_name =
        if fleet = None && section_prefix = "" then "golden-sequential"
        else section_prefix ^ "golden-" ^ Backend.class_name profile.Backend.cls
      in
      let golden, golden_section =
        Report.section ~name:section_name (fun () ->
            Tdo_util.Pool.set_sequential (Some true);
            Fun.protect
              ~finally:(fun () -> Tdo_util.Pool.set_sequential None)
              (fun () ->
                Scheduler.replay ~config:(Scheduler.golden_config ~profile config) trace))
      in
      let d = Scheduler.divergence report golden in
      Printf.printf "golden check (%s%s): %d divergent of %d comparable requests\n"
        (if section_prefix = "" then "" else section_prefix)
        (Backend.class_name profile.Backend.cls)
        d
        (min (Scheduler.completed report) (Scheduler.completed golden));
      (total + d, secs @ [ golden_section ]))
    (0, []) golden_profiles

(* ---------- load mode ---------- *)

(* Per-tenant token buckets sized at 1.5x each tenant's share of the
   sustained rate: the sustained pattern passes nearly untouched while
   the 6x overload pattern runs every bucket dry, on top of the
   0.5/0.8 SLO-class queue-fill shedding. *)
let load_policy ~rate =
  {
    Admission.per_tenant =
      [
        (1, { Admission.rate_per_s = 1.5 *. 0.5 *. rate; burst = 200.0 });
        (2, { Admission.rate_per_s = 1.5 *. 0.3 *. rate; burst = 200.0 });
        (3, { Admission.rate_per_s = 1.5 *. 0.2 *. rate; burst = 200.0 });
      ];
    default_bucket = None;
    batch_above = 0.8;
    best_effort_above = 0.5;
  }

let load_patterns ~rate ~requests ~seed =
  [
    ( "sustained",
      lazy
        (Workload.generate ~seed ~count:requests
           (Workload.standard_tenants ~total_rate_rps:rate ())) );
    ( "overload",
      lazy
        (Workload.generate ~seed:(seed + 1) ~count:requests
           (Workload.standard_tenants ~total_rate_rps:(6.0 *. rate) ())) );
    ( "burst-recovery",
      lazy
        (let process _slo share_rate =
           (* quiet at the tenant's share of 0.8x the sustained rate,
              ~50 ms bursts at 8x that share every ~250 ms: each burst
              overruns the fleet, the quiet phase lets it drain *)
           Arrival.Bursty
             {
               base_rps = share_rate;
               burst_rps = 8.0 *. share_rate;
               mean_burst_s = 0.05;
               mean_quiet_s = 0.2;
             }
         in
         Workload.generate ~seed:(seed + 2) ~count:requests
           (Workload.standard_tenants ~process ~total_rate_rps:(0.8 *. rate) ())) );
    ( "diurnal",
      lazy
        (let process _slo share_rate =
           (* a day's traffic curve compressed to half a simulated
              second: the trough runs at half the tenant's share, the
              peak at 1.5x, so the fleet sees both slack and pressure
              within one run *)
           Arrival.Diurnal
             {
               base_rps = 0.5 *. share_rate;
               peak_rps = 1.5 *. share_rate;
               period_s = 0.5;
             }
         in
         Workload.generate ~seed:(seed + 3) ~count:requests
           (Workload.standard_tenants ~process ~total_rate_rps:rate ())) );
  ]

(* Pattern-prefixed report fields: the windowed view, per-SLO-class
   served/shed counts and the admission/calibration story per arrival
   pattern — the sections ISSUE 9's acceptance reads. *)
let load_extras prefix (r : Scheduler.report) ~window_us ~golden_divergence =
  let t = r.Scheduler.telemetry in
  let s = Telemetry.summary t in
  let pct p = match Telemetry.latency_percentile t ~p with Some v -> v | None -> 0.0 in
  let k name = prefix ^ "_" ^ name in
  let served = s.Telemetry.completed + s.Telemetry.cpu_fallbacks + s.Telemetry.recovered_host in
  let makespan_s = us_of_ps r.Scheduler.makespan_ps /. 1e6 in
  let windows = Telemetry.windows ~window_us t in
  let wmax f = List.fold_left (fun acc w -> Float.max acc (f w)) 0.0 windows in
  let base =
    [
      (k "requests", float_of_int s.Telemetry.requests);
      (k "served", float_of_int served);
      (k "completed", float_of_int s.Telemetry.completed);
      (k "served_tuned", float_of_int s.Telemetry.served_tuned);
      (k "shed_rate_limited", float_of_int s.Telemetry.shed_rate_limited);
      (k "shed_load", float_of_int s.Telemetry.shed_load);
      (k "rejected", float_of_int s.Telemetry.rejected);
      (k "failed", float_of_int s.Telemetry.failed);
      (k "p50_us", pct 50.0);
      (k "p99_us", pct 99.0);
      (k "max_queue_depth", float_of_int (Telemetry.max_queue_depth t));
      (k "makespan_ms", us_of_ps r.Scheduler.makespan_ps /. 1000.0);
      ( k "throughput_rps",
        if makespan_s > 0.0 then float_of_int served /. makespan_s else 0.0 );
      (k "windows", float_of_int (List.length windows));
      (k "window_us", window_us);
      (k "window_p99_max_us", wmax (fun w -> w.Telemetry.w_p99_us));
      (k "window_throughput_max_rps", wmax (fun w -> w.Telemetry.w_throughput_rps));
      ( k "window_max_depth",
        float_of_int
          (List.fold_left (fun acc w -> max acc w.Telemetry.w_max_depth) 0 windows) );
    ]
  in
  let per_slo =
    List.concat_map
      (fun (slo, (c : Telemetry.slo_counts)) ->
        let sk name = k ("slo_" ^ Trace.slo_name slo ^ "_" ^ name) in
        [
          (sk "requests", float_of_int c.Telemetry.slo_requests);
          (sk "served", float_of_int c.Telemetry.slo_served);
          (sk "shed", float_of_int c.Telemetry.slo_shed);
          (sk "p50_us", c.Telemetry.slo_p50_us);
          (sk "p99_us", c.Telemetry.slo_p99_us);
        ])
      (Telemetry.slo_summary t)
  in
  let calib =
    List.concat_map
      (fun (cls, samples, mre) ->
        [
          (k ("calib_" ^ cls ^ "_samples"), float_of_int samples);
          (k ("calib_" ^ cls ^ "_mre"), mre);
        ])
      r.Scheduler.calibrations
  in
  let golden =
    match golden_divergence with
    | Some d -> [ (k "golden_divergence", float_of_int d) ]
    | None -> []
  in
  base @ per_slo @ calib @ golden

type common = {
  fleet : Backend.profile list option;
  tuning : Tdo_tune.Db.t option;
  platform_config : Platform.config;
  devices : int;
  queue_capacity : int;
  max_batch : int;
  no_batching : bool;
  sequential : bool;
  cache_capacity : int;
  seed : int;
}

let scheduler_config c =
  {
    Scheduler.default_config with
    Scheduler.devices = c.devices;
    fleet = c.fleet;
    platform_config = c.platform_config;
    queue_capacity = c.queue_capacity;
    max_batch = c.max_batch;
    batching = not c.no_batching;
    parallel = not c.sequential;
    cache_capacity = c.cache_capacity;
    tuning = c.tuning;
  }

let fleet_desc c =
  match c.fleet with
  | Some profiles -> Backend.describe_fleet profiles
  | None -> Printf.sprintf "pcm:%d" c.devices

(* The classic virtual-time replay: one trace, its golden checks, the
   flat extras. Returns sections newest-last plus the divergence. *)
let run_replay c ~trace_name ~deadline_us ~chrome_trace ~no_golden =
  match Trace.synthetic ?deadline_us ~seed:c.seed trace_name with
  | Error msg ->
      prerr_endline msg;
      Error 1
  | Ok trace ->
      let config = scheduler_config c in
      let report, main_section =
        Report.section ~name:("replay-" ^ trace_name) (fun () ->
            Scheduler.replay ~config trace)
      in
      summarise "replay" report;
      (match chrome_trace with
      | Some path ->
          Telemetry.write_chrome_trace report.Scheduler.telemetry ~path;
          Printf.printf "chrome trace written to %s\n" path
      | None -> ());
      let golden_divergence, sections =
        if no_golden then (None, [ main_section ])
        else
          let total, golden_sections =
            golden_checks ~fleet:c.fleet ~config ~trace ~report ~section_prefix:""
          in
          (Some total, main_section :: golden_sections)
      in
      Ok (report, sections, extras report ~golden_divergence, golden_divergence)

(* One open-loop load pattern: replay under admission + calibration +
   live windows, then the per-class goldens. *)
let run_load_pattern c ~pattern ~trace ~rate ~window_us ~calibrate ~no_golden ~dump_traces =
  if dump_traces then begin
    let path = Printf.sprintf "load-%s.trace" pattern in
    Codec.write trace ~path;
    Printf.printf "trace dumped to %s (%d requests)\n" path
      (List.length trace.Trace.requests)
  end;
  let live = Telemetry.live_view ~window_us ~emit:prerr_endline () in
  let config =
    {
      (scheduler_config c) with
      Scheduler.admission = Some (load_policy ~rate);
      calibrate_after = (if calibrate > 0 then Some calibrate else None);
      on_record = Some live;
    }
  in
  let report, main_section =
    Report.section ~name:("load-" ^ pattern) (fun () -> Scheduler.replay ~config trace)
  in
  summarise ("load-" ^ pattern) report;
  let golden_divergence, sections =
    if no_golden then (None, [ main_section ])
    else
      let total, golden_sections =
        golden_checks ~fleet:c.fleet ~config ~trace ~report
          ~section_prefix:("load-" ^ pattern ^ "-")
      in
      (Some total, main_section :: golden_sections)
  in
  (report, sections, load_extras pattern report ~window_us ~golden_divergence, golden_divergence)

let run_load c ~requests ~rate ~window_us ~calibrate ~no_golden ~dump_traces ~load_trace
    ~chrome_trace ~deadline_us =
  (* the classic fleet replay rides along so the report keeps the
     sections the committed baseline gates on *)
  match run_replay c ~trace_name:"synthetic-medium" ~deadline_us ~chrome_trace ~no_golden with
  | Error code -> Error code
  | Ok (replay_report, replay_sections, replay_extras, replay_div) ->
      let replay_failures = Scheduler.failures replay_report in
      let patterns =
        match load_trace with
        | Some path -> (
            match Codec.read ~path with
            | Ok trace -> [ ("custom", lazy trace) ]
            | Error msg ->
                prerr_endline msg;
                exit 1)
        | None -> load_patterns ~rate ~requests ~seed:c.seed
      in
      let sections, extra, divergence, failures =
        List.fold_left
          (fun (secs, extra, div, failures) (pattern, trace) ->
            let report, psecs, pextra, pdiv =
              run_load_pattern c ~pattern ~trace:(Lazy.force trace) ~rate ~window_us
                ~calibrate ~no_golden ~dump_traces
            in
            ( secs @ psecs,
              extra @ pextra,
              (match (div, pdiv) with
              | Some a, Some b -> Some (a + b)
              | a, None -> a
              | None, b -> b),
              failures + Scheduler.failures report ))
          (replay_sections, replay_extras, replay_div, replay_failures)
          patterns
      in
      Ok (sections, extra, divergence, failures)

(* ---------- graph mode ---------- *)

let completed_write_bytes (r : Scheduler.report) =
  List.fold_left
    (fun acc (rc : Telemetry.record) ->
      match rc.Telemetry.outcome with
      | Telemetry.Completed -> acc + rc.Telemetry.write_bytes
      | _ -> acc)
    0
    (Telemetry.records r.Scheduler.telemetry)

let graph_benches =
  List.map (fun g -> (Graph.kernel_name g, Graph.benchmark g)) Graph.standard

(* Graph serving: the three-tenant multi-kernel workload replayed twice
   — weight residency on (tiles stay pinned across same-tenant repeat
   requests) and off (reprogram every request) — plus the per-class
   goldens on the pinned run. The headline figure is weight-write-bytes
   amortised per 1000 requests, pinned vs unpinned. *)
let run_graph c ~requests ~rate ~no_golden =
  let trace =
    Workload.generate ~seed:c.seed ~count:requests
      (Workload.graph_tenants ~total_rate_rps:rate ())
  in
  let config =
    { (scheduler_config c) with Scheduler.graphs = graph_benches; graph_residency = true }
  in
  let pinned, pinned_section =
    Report.section ~name:"graph-pinned" (fun () -> Scheduler.replay ~config trace)
  in
  summarise "graph-pinned" pinned;
  let unpinned, unpinned_section =
    Report.section ~name:"graph-unpinned" (fun () ->
        Scheduler.replay ~config:{ config with Scheduler.graph_residency = false } trace)
  in
  summarise "graph-unpinned" unpinned;
  let golden_divergence, sections =
    if no_golden then (None, [ pinned_section; unpinned_section ])
    else
      let total, golden_sections =
        golden_checks ~fleet:c.fleet ~config ~trace ~report:pinned ~section_prefix:"graph-"
      in
      (Some total, pinned_section :: unpinned_section :: golden_sections)
  in
  let wp = completed_write_bytes pinned and wu = completed_write_bytes unpinned in
  let per_1000 w (r : Scheduler.report) =
    let n = Scheduler.completed r in
    if n = 0 then 0.0 else 1000.0 *. float_of_int w /. float_of_int n
  in
  let reduction =
    if wp > 0 then float_of_int wu /. float_of_int wp
    else if wu > 0 then float_of_int wu
    else 1.0
  in
  Printf.printf
    "graph residency: weight-write bytes per 1000 requests %.0f pinned vs %.0f unpinned \
     (x%.1f reduction)\n"
    (per_1000 wp pinned) (per_1000 wu unpinned) reduction;
  let pct r p =
    match Telemetry.latency_percentile r.Scheduler.telemetry ~p with
    | Some v -> v
    | None -> 0.0
  in
  let extra =
    [
      ("graph_requests", float_of_int requests);
      ("graph_pinned_completed", float_of_int (Scheduler.completed pinned));
      ("graph_unpinned_completed", float_of_int (Scheduler.completed unpinned));
      ("graph_pinned_write_bytes", float_of_int wp);
      ("graph_unpinned_write_bytes", float_of_int wu);
      ("graph_pinned_write_bytes_per_1000", per_1000 wp pinned);
      ("graph_unpinned_write_bytes_per_1000", per_1000 wu unpinned);
      ("graph_write_reduction_factor", reduction);
      ("graph_pinned_p50_us", pct pinned 50.0);
      ("graph_pinned_p99_us", pct pinned 99.0);
      ("graph_unpinned_p50_us", pct unpinned 50.0);
      ("graph_unpinned_p99_us", pct unpinned 99.0);
      ("graph_pinned_makespan_ms", us_of_ps pinned.Scheduler.makespan_ps /. 1000.0);
      ("graph_unpinned_makespan_ms", us_of_ps unpinned.Scheduler.makespan_ps /. 1000.0);
    ]
    @
    match golden_divergence with
    | Some d -> [ ("graph_golden_divergence", float_of_int d) ]
    | None -> []
  in
  Ok
    ( sections,
      extra,
      golden_divergence,
      Scheduler.failures pinned + Scheduler.failures unpinned )

(* ---------- frontend mode ---------- *)

let run_frontend c ~window_us ~socket =
  let config =
    {
      Frontend.default_config with
      Frontend.fleet = Option.value ~default:Frontend.default_config.Frontend.fleet c.fleet;
      platform_config = c.platform_config;
      cache_capacity = c.cache_capacity;
      queue_capacity = c.queue_capacity;
      tuning = c.tuning;
      device_seed = c.seed;
      window_us = Some window_us;
    }
  in
  let summarise_session t =
    let s = Telemetry.summary t in
    let pct p = match Telemetry.latency_percentile t ~p with Some v -> v | None -> 0.0 in
    Printf.eprintf
      "session: %d requests, %d completed (%d tuned), shed %d rate-limited + %d load, %d \
       rejected, %d failed | p50 %.1f us p99 %.1f us\n%!"
      s.Telemetry.requests s.Telemetry.completed s.Telemetry.served_tuned
      s.Telemetry.shed_rate_limited s.Telemetry.shed_load s.Telemetry.rejected
      s.Telemetry.failed (pct 50.0) (pct 99.0)
  in
  match socket with
  | Some path ->
      Printf.eprintf "tdo-serve: listening on %s (fleet %s)\n%!" path (fleet_desc c);
      let sessions = Frontend.serve_unix_socket ~config ~path () in
      List.iter summarise_session sessions;
      0
  | None ->
      Printf.eprintf "tdo-serve: serving on stdin/stdout (fleet %s)\n%!" (fleet_desc c);
      let telemetry, _stop =
        Frontend.serve ~config ~input:Unix.stdin ~output:Unix.stdout ()
      in
      summarise_session telemetry;
      0

(* ---------- main ---------- *)

let run trace_name devices fleet_spec seed queue_capacity max_batch no_batching sequential
    deadline_us tiles cache_capacity tune_db chrome_trace out baseline no_golden strict load
    graph requests rate window_us smoke wall_budget_s calibrate dump_traces load_trace
    listen socket =
  let t0 = Unix.gettimeofday () in
  let fleet =
    match fleet_spec with
    | None -> None
    | Some spec -> (
        match Backend.parse_fleet spec with
        | Ok profiles -> Some profiles
        | Error msg ->
            prerr_endline msg;
            exit 1)
  in
  let tuning =
    match tune_db with
    | None -> None
    | Some path -> (
        match Tdo_tune.Db.load path with
        | Ok db ->
            Printf.printf "tuning database: %d entries from %s\n" (Tdo_tune.Db.size db) path;
            Some db
        | Error msg ->
            prerr_endline msg;
            exit 1)
  in
  let platform_config =
    let d = Platform.default_config in
    { d with Platform.engine = { d.Platform.engine with Micro_engine.tiles = max 1 tiles } }
  in
  let c =
    {
      fleet;
      tuning;
      platform_config;
      devices;
      queue_capacity;
      max_batch;
      no_batching;
      sequential;
      cache_capacity;
      seed;
    }
  in
  if listen || socket <> None then run_frontend c ~window_us ~socket
  else begin
    (* --smoke shrinks the open-loop patterns to a few hundred requests
       and arms the wall-clock budget: the CI shape of --load *)
    let requests = if smoke then min requests 300 else requests in
    let calibrate = if calibrate >= 0 then calibrate else if load then 200 else 0 in
    let replay_base () =
      Result.map
        (fun (report, sections, extra, div) ->
          (sections, extra, div, Scheduler.failures report))
        (run_replay c ~trace_name ~deadline_us ~chrome_trace ~no_golden)
    in
    let outcome =
      if graph then
        (* the classic fleet replay (or the full --load patterns when
           both flags are given) rides along so the report keeps the
           sections the committed baseline gates on *)
        let base =
          if load then
            run_load c ~requests ~rate ~window_us ~calibrate ~no_golden ~dump_traces
              ~load_trace ~chrome_trace ~deadline_us
          else replay_base ()
        in
        Result.bind base (fun (bsecs, bextra, bdiv, bfail) ->
            Result.map
              (fun (gsecs, gextra, gdiv, gfail) ->
                let div =
                  match (bdiv, gdiv) with
                  | Some a, Some b -> Some (a + b)
                  | d, None | None, d -> d
                in
                (bsecs @ gsecs, bextra @ gextra, div, bfail + gfail))
              (run_graph c ~requests ~rate ~no_golden))
      else if load then
        run_load c ~requests ~rate ~window_us ~calibrate ~no_golden ~dump_traces
          ~load_trace ~chrome_trace ~deadline_us
      else replay_base ()
    in
    match outcome with
    | Error code -> code
    | Ok (sections, extra, golden_divergence, failures) ->
        let extra =
          match baseline with
          | None -> extra
          | Some path -> (
              match Report.compare ~baseline:path sections with
              | Ok deltas ->
                  List.iter
                    (fun (d : Report.delta) ->
                      Printf.printf "vs baseline %-24s %.3f s -> %.3f s (x%.2f%s)\n"
                        d.Report.name d.Report.baseline_wall_s d.Report.wall_s
                        d.Report.speedup_vs_baseline
                        (if d.Report.regression then ", REGRESSION" else ""))
                    deltas;
                  extra @ Report.delta_fields deltas
              | Error msg ->
                  Printf.eprintf "serve: baseline %s: %s\n%!" path msg;
                  extra)
        in
        let notes =
          if graph then
            Printf.sprintf
              "tdo-serve graph serving: %d multi-kernel requests at %g rps over %s, %d \
               tiles/device; weight residency pinned vs unpinned, per-class goldens on \
               the pinned run"
              requests rate (fleet_desc c) tiles
          else if load then
            Printf.sprintf
              "tdo-serve open-loop load: %d requests/pattern at %g rps sustained, fleet \
               %s, %d tiles/device, queue capacity %d, calibrate-after %d"
              requests rate (fleet_desc c) tiles queue_capacity calibrate
          else
            Printf.sprintf
              "tdo-serve replay of %s: fleet %s, %d tiles/device, batching %b, queue \
               capacity %d"
              trace_name (fleet_desc c) tiles (not no_batching) queue_capacity
        in
        Report.write ~path:out ~extra ~notes ~sections ();
        Printf.printf "report written to %s\n" out;
        let wall = Unix.gettimeofday () -. t0 in
        let divergent =
          match golden_divergence with Some d when d > 0 -> true | _ -> false
        in
        let over_budget = wall_budget_s > 0.0 && wall > wall_budget_s in
        (* shed requests are an admission outcome, not failures, so
           --strict composes with the overload pattern *)
        let strict_failure = strict && failures > 0 in
        (* the graph bench exists to show residency pays: fail if
           pinning stops reducing weight-write bytes by at least 5x *)
        let residency_regression =
          graph
          &&
          match List.assoc_opt "graph_write_reduction_factor" extra with
          | Some r -> r < 5.0
          | None -> false
        in
        if divergent then prerr_endline "FAIL: golden divergence detected";
        if strict_failure then prerr_endline "FAIL: request failures under --strict";
        if over_budget then
          Printf.eprintf "FAIL: wall clock %.1f s over budget %.1f s\n" wall wall_budget_s;
        if residency_regression then
          prerr_endline "FAIL: weight residency below the x5 write-reduction gate";
        if divergent || strict_failure || over_budget || residency_regression then 1
        else 0
  end

let cmd =
  let trace_arg =
    Arg.(
      value & opt string "synthetic-medium"
      & info [ "t"; "trace" ] ~docv:"NAME"
          ~doc:
            "Workload trace to replay: synthetic-smoke, synthetic-small, synthetic-medium, \
             synthetic-large or synthetic-tight.")
  in
  let devices_arg =
    Arg.(
      value & opt int 4
      & info [ "devices" ] ~docv:"N"
          ~doc:"Devices in the pool (all analog crossbars); superseded by --fleet.")
  in
  let fleet_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "fleet" ] ~docv:"SPEC"
          ~doc:
            "Heterogeneous fleet spec, e.g. pcm:2,digital:2,dual:2. Classes: pcm (analog \
             PCM crossbar), digital (SRAM CIM tile: slower GEMV, near-free writes, no \
             wear), host (the host BLAS path as a placement target), dual (an analog tile \
             that serves as plain memory until queue pressure converts it, paying the \
             conversion latency). Placement across the fleet is cost-based per class.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Trace generator seed.") in
  let queue_arg =
    Arg.(
      value & opt int 256
      & info [ "queue-capacity" ] ~docv:"N"
          ~doc:"Submission-queue bound; overflow is rejected. 0 means unbounded.")
  in
  let max_batch_arg =
    Arg.(
      value & opt int 8
      & info [ "max-batch" ] ~docv:"N" ~doc:"Requests coalesced per dispatch.")
  in
  let no_batching_arg =
    Arg.(value & flag & info [ "no-batching" ] ~doc:"Dispatch one request at a time.")
  in
  let sequential_arg =
    Arg.(
      value & flag
      & info [ "sequential" ] ~doc:"Execute dispatch waves on the calling domain only.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-us" ] ~docv:"US"
          ~doc:"Per-request deadline; late requests degrade to the CPU interpreter.")
  in
  let tiles_arg =
    Arg.(value & opt int 1 & info [ "tiles" ] ~docv:"N" ~doc:"CIM tiles per device.")
  in
  let cache_arg =
    Arg.(
      value & opt int 64
      & info [ "cache-capacity" ] ~docv:"N" ~doc:"Compiled-kernel cache entries.")
  in
  let tune_db_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "tune-db" ] ~docv:"FILE"
          ~doc:
            "Tuning database (written by tdo-tune): kernels whose structural digest has an \
             entry for a device class are compiled with the tuned configuration on that \
             class, clamped to the pool's crossbar geometry; cross-class entries are \
             refused. The golden checks keep the database, so tuned replays stay \
             divergence-checked.")
  in
  let chrome_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome-trace" ] ~docv:"FILE"
          ~doc:"Dump the replay as Chrome trace events (chrome://tracing, Perfetto).")
  in
  let out_arg =
    Arg.(
      value & opt string "BENCH_serve.json"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Benchmark report path.")
  in
  let baseline_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Previous BENCH_serve.json to compare against; per-section wall-clock deltas \
             are added to the report.")
  in
  let no_golden_arg =
    Arg.(
      value & flag
      & info [ "no-golden" ] ~doc:"Skip the sequential single-device golden checks.")
  in
  let strict_arg =
    Arg.(value & flag & info [ "strict" ] ~doc:"Also fail on any per-request failure.")
  in
  let load_arg =
    Arg.(
      value & flag
      & info [ "load" ]
          ~doc:
            "Open-loop load mode: generate sustained, overload, burst-recovery and \
             diurnal multi-tenant arrival patterns, drive each through the fleet under \
             the admission policy with live windowed telemetry, and append one report \
             section per pattern (plus per-class goldens) to the classic fleet-replay \
             sections.")
  in
  let graph_arg =
    Arg.(
      value & flag
      & info [ "graph" ]
          ~doc:
            "Graph serving mode: generate the three-tenant multi-kernel workload \
             (graph:mlp4, graph:attn) and replay it twice — with graph-scope weight \
             residency pinning weight tiles across same-tenant repeat requests, and \
             without — plus per-class goldens on the pinned run. Reports \
             weight-write-bytes per 1000 requests for both and the reduction factor. \
             Use --tiles 4 so a whole model's weights fit pinned.")
  in
  let requests_arg =
    Arg.(
      value & opt int 100_000
      & info [ "requests" ] ~docv:"N" ~doc:"Open-loop requests per arrival pattern.")
  in
  let rate_arg =
    Arg.(
      value & opt float 20_000.0
      & info [ "rate" ] ~docv:"RPS"
          ~doc:
            "Sustained total arrival rate (requests per second of simulated time) across \
             the three tenants; the overload pattern offers 6x this, bursts peak at ~6.4x.")
  in
  let window_arg =
    Arg.(
      value & opt float 100_000.0
      & info [ "window-us" ] ~docv:"US"
          ~doc:
            "Telemetry roll-up window in (simulated or wall) microseconds: live roll-up \
             lines go to stderr once per elapsed window, and the report's windowed \
             p50/p99/throughput fields use the same width.")
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"Shrink --load to a few hundred requests per pattern (the CI shape).")
  in
  let wall_budget_arg =
    Arg.(
      value & opt float 0.0
      & info [ "wall-budget-s" ] ~docv:"S"
          ~doc:"Fail if the whole invocation takes longer than this many wall seconds; 0 \
                disables the budget.")
  in
  let calibrate_arg =
    Arg.(
      value & opt int (-1)
      & info [ "calibrate" ] ~docv:"N"
          ~doc:
            "Refit each device class's cost-model coefficients online after N completed \
             requests on that class (adopted only when the fit beats the hand-priced prior \
             on its own samples). 0 disables; default: 200 in --load mode, off otherwise.")
  in
  let dump_traces_arg =
    Arg.(
      value & flag
      & info [ "dump-traces" ]
          ~doc:"Write each generated load pattern to load-<pattern>.trace (replayable via \
                --load-trace).")
  in
  let load_trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "load-trace" ] ~docv:"FILE"
          ~doc:"Replay a dumped trace file as the single load pattern instead of \
                generating the standard three.")
  in
  let listen_arg =
    Arg.(
      value & flag
      & info [ "listen" ]
          ~doc:
            "Wall-clock front-end on stdin/stdout: read req/JSON lines, answer ok/shed/err \
             lines, live telemetry on stderr. See also --socket.")
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Wall-clock front-end on a Unix-domain socket: serve clients one at a time \
             until one sends quit.")
  in
  Cmd.v
    (Cmd.info "tdo-serve"
       ~doc:"Multi-tenant CIM offload service: trace replay, open-loop load and wall-clock \
             front-end driver.")
    Term.(
      const run $ trace_arg $ devices_arg $ fleet_arg $ seed_arg $ queue_arg
      $ max_batch_arg $ no_batching_arg $ sequential_arg $ deadline_arg $ tiles_arg
      $ cache_arg $ tune_db_arg $ chrome_arg $ out_arg $ baseline_arg $ no_golden_arg
      $ strict_arg $ load_arg $ graph_arg $ requests_arg $ rate_arg $ window_arg
      $ smoke_arg $ wall_budget_arg $ calibrate_arg $ dump_traces_arg $ load_trace_arg
      $ listen_arg $ socket_arg)

let () = exit (Cmd.eval' cmd)
