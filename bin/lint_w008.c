/* W008: the third kernel re-pins A, unchanged since the first kernel
   programmed it, after the middle kernel evicted the pin. Reordering
   the second kernel last (or first) removes the re-program. */
void w008(float C1[8][8], float C2[8][12], float C3[8][8],
          float A[8][8], float B[8][8], float D[8][12], float E[12][12], float B2[8][8]) {
  for (int i = 0; i < 8; i++)
    for (int j = 0; j < 8; j++)
      for (int k = 0; k < 8; k++)
        C1[i][j] += A[i][k] * B[k][j];
  for (int i = 0; i < 8; i++)
    for (int j = 0; j < 12; j++)
      for (int k = 0; k < 12; k++)
        C2[i][j] += D[i][k] * E[k][j];
  for (int i = 0; i < 8; i++)
    for (int j = 0; j < 8; j++)
      for (int k = 0; k < 8; k++)
        C3[i][j] += A[i][k] * B2[k][j];
}
