(* lintsweep: the lint CI gate.

   Runs the whole lint pass over the PolyBench suite and the paper's
   workload sources against an expected-warnings manifest, then runs
   the IR-mode rules (Lint.offload_ir) over each kernel's compiled
   output, which must be clean: the compiler's own emission respects
   the pin-reuse and coherence discipline the lints check. Exits
   non-zero on any deviation, so a lint regression (false positive or
   lost warning) fails `dune runtest` / `make lint`. *)

module Diag = Tdo_analysis.Diag
module Lint = Tdo_analysis.Lint
module Kernels = Tdo_polybench.Kernels

(* (name, source, expected warning codes). GEMV-class kernels carry
   exactly their selective-offload W001; gemm at n=512 programs enough
   cells per invocation to trip the endurance budget (W003); everything
   else — including Listing 2's two GEMMs sharing A, which the engine
   serves with adjacent pin reuse — is warning-free. *)
let manifest =
  List.map
    (fun (b : Kernels.benchmark) ->
      let expected = match b.Kernels.kind with Kernels.Gemv_like -> [ "W001" ] | Kernels.Gemm_like -> [] in
      (b.Kernels.name, b.Kernels.source ~n:16, expected))
    Kernels.all
  @ [
      ("listing1-gemm", Tdo_cim.Workloads.gemm_source ~n:16, []);
      ("listing1-gemm-512", Tdo_cim.Workloads.gemm_source ~n:512, [ "W003" ]);
      ("listing2", Tdo_cim.Workloads.listing2_source ~n:16, []);
    ]

let warning_codes ds =
  List.sort_uniq compare
    (List.filter_map
       (fun (d : Diag.t) ->
         if d.Diag.severity = Diag.Warning then Some d.Diag.code else None)
       ds)

let () =
  let failures = ref 0 in
  let fail fmt = Printf.ksprintf (fun s -> incr failures; Printf.printf "FAIL %s\n" s) fmt in
  List.iter
    (fun (name, source, expected) ->
      let f0 = Tdo_ir.Lower.func (Tdo_lang.Parser.parse_func source) in
      let got = warning_codes (Lint.run f0) in
      if got <> List.sort_uniq compare expected then
        fail "%s: warnings [%s], manifest says [%s]" name (String.concat "," got)
          (String.concat "," expected)
      else Printf.printf "ok   %-17s src [%s]\n" name (String.concat "," got);
      let options =
        { Tdo_cim.Flow.enable_loop_tactics = true; tactics = Tdo_tactics.Offload.default_config }
      in
      let compiled, _ = Tdo_cim.Flow.compile ~options source in
      match Lint.offload_ir compiled with
      | [] -> Printf.printf "ok   %-17s compiled IR clean\n" name
      | ds ->
          fail "%s: compiled IR not clean: [%s]" name
            (String.concat ","
               (List.map (fun (d : Diag.t) -> d.Diag.code ^ " " ^ d.Diag.message) ds)))
    manifest;
  if !failures > 0 then begin
    Printf.printf "lintsweep: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "lintsweep: corpus matches the manifest"
