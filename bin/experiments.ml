(* Regenerates every table and figure of the paper. *)

open Cmdliner
module E = Tdo_cim.Experiments
module Dataset = Tdo_polybench.Dataset

let dataset_arg =
  let parse s = Result.map_error (fun e -> `Msg e) (Dataset.of_string s) in
  let print ppf d = Format.fprintf ppf "%s" (Dataset.to_string d) in
  Arg.(
    value
    & opt (conv (parse, print)) Dataset.Medium
    & info [ "d"; "dataset" ] ~docv:"SIZE" ~doc:"Problem size: mini, small, medium or large.")

let n_arg default =
  Arg.(value & opt int default & info [ "n" ] ~docv:"N" ~doc:"Square-matrix extent.")

let table1_cmd =
  Cmd.v (Cmd.info "table1" ~doc:"Print Table I (system configuration).")
    Term.(const E.print_table1 $ const ())

let fig1_cmd =
  Cmd.v (Cmd.info "fig1" ~doc:"Print Fig. 1 (PCM programming pulses).")
    Term.(const E.print_fig1 $ const ())

let fig2d_cmd =
  let run n = E.print_fig2d ~n () in
  Cmd.v (Cmd.info "fig2d" ~doc:"Print Fig. 2(d) (offload timeline).")
    Term.(const run $ n_arg 16)

let fig5_cmd =
  let run n = E.print_fig5 ~n () in
  Cmd.v
    (Cmd.info "fig5" ~doc:"Print Fig. 5 (lifetime vs endurance, naive vs smart mapping).")
    Term.(const run $ n_arg 64)

let breakdown_flag =
  Arg.(
    value & flag
    & info [ "breakdown" ] ~doc:"Also print the per-kernel energy split by Table-I component.")

let fig6_cmd =
  let run dataset breakdown = E.print_fig6 ~dataset ~breakdown () in
  Cmd.v (Cmd.info "fig6" ~doc:"Print Fig. 6 (energy and EDP across PolyBench).")
    Term.(const run $ dataset_arg $ breakdown_flag)

let ablations_cmd =
  Cmd.v
    (Cmd.info "ablations"
       ~doc:
         "Run the ablation studies: operand pinning, fusion, double buffering, selective \
          offload, crossbar geometry, analog noise.")
    Term.(const Tdo_cim.Ablations.print_all $ const ())

(* ---------- machine-readable benchmark report ---------- *)

let run_ablations () =
  let module A = Tdo_cim.Ablations in
  ignore (A.pinning ());
  ignore (A.fusion ());
  ignore (A.double_buffering ());
  ignore (A.selective ());
  ignore (A.geometry ());
  ignore (A.noise ());
  ignore (A.wear_leveling ());
  ignore (A.tiles ())

let bench_json dataset out baseline report_baseline =
  let module Pool = Tdo_util.Pool in
  let module Report = Tdo_util.Bench_report in
  let section name f =
    (* the fan-out first, then the same work forced sequential *)
    Pool.set_sequential (Some false);
    let _, m = Report.timed f in
    Pool.set_sequential (Some true);
    let _, (ms : Report.measure) = Report.timed f in
    Pool.set_sequential None;
    Printf.printf "%-18s %8.3f s parallel, %8.3f s sequential\n%!" name m.Report.elapsed_s
      ms.Report.elapsed_s;
    Report.of_measure ~name ~seq_wall_s:ms.Report.elapsed_s m
  in
  let fig6_name = Printf.sprintf "fig6-%s" (Dataset.to_string dataset) in
  let fig6 = section fig6_name (fun () -> ignore (E.fig6 ~dataset ())) in
  let fig5 = section "fig5" (fun () -> ignore (E.fig5 ())) in
  let ablations = section "ablations" run_ablations in
  let sections = [ fig6; fig5; ablations ] in
  let extra =
    if baseline > 0.0 then
      [
        (fig6_name ^ "_seed_baseline_wall_s", baseline);
        (fig6_name ^ "_speedup_vs_seed_baseline", baseline /. fig6.Report.wall_s);
      ]
    else []
  in
  (* section-by-section comparison against a previously written report *)
  let extra =
    match report_baseline with
    | None -> extra
    | Some path -> (
        match Report.compare ~baseline:path sections with
        | Ok deltas ->
            List.iter
              (fun (d : Report.delta) ->
                Printf.printf "vs baseline %-18s %.3f s -> %.3f s (x%.2f%s)\n" d.Report.name
                  d.Report.baseline_wall_s d.Report.wall_s d.Report.speedup_vs_baseline
                  (if d.Report.regression then ", REGRESSION" else ""))
              deltas;
            extra @ Report.delta_fields deltas
        | Error msg ->
            Printf.eprintf "baseline %s: %s\n%!" path msg;
            extra)
  in
  Report.write ~path:out
    ~notes:
      "seed_baseline is the wall-clock of the same Fig. 6 sweep before the fast-engine \
       rework (functional Map event queue, assoc-list interpreter, sequential runner), \
       measured on the same machine; speedup_vs_sequential compares against this build \
       with the domain pool forced sequential. Built with the release profile \
       (dune-workspace) so cross-module inlining is on; before the scratch-arena rework \
       this machine measured fig6-medium at 76.3e6 minor words / 0.64 s, fig5 at 4.7e6 \
       and ablations at 214.2e6 / 1.72 s. The container exposes a single CPU, so \
       parallel speedup is bounded at 1.0 regardless of TDO_DOMAINS; the allocation \
       columns are the load-bearing figures here."
    ~extra ~sections ();
  Printf.printf "wrote %s\n" out

let bench_json_cmd =
  let out_arg =
    Arg.(
      value & opt string "BENCH_sim.json"
      & info [ "o"; "out" ] ~docv:"PATH" ~doc:"Output path for the JSON report.")
  in
  let baseline_arg =
    Arg.(
      value & opt float 3.1
      & info [ "seed-baseline" ] ~docv:"SECONDS"
          ~doc:
            "Recorded wall-clock of the Fig. 6 sweep before the fast-engine rework, used \
             for the speedup-vs-seed figure; pass 0 to omit.")
  in
  let report_baseline_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Previous BENCH_sim.json to compare against: sections are matched by name and \
             per-section delta/speedup/regression fields are added to the report.")
  in
  Cmd.v
    (Cmd.info "bench-json"
       ~doc:
         "Time the Fig. 5 / Fig. 6 / ablation sections (parallel and forced-sequential) \
          and write BENCH_sim.json.")
    Term.(const bench_json $ dataset_arg $ out_arg $ baseline_arg $ report_baseline_arg)

(* ---------- regression gate against a committed report ---------- *)

let sim_bench dataset baseline smoke tolerance alloc_tolerance =
  let module Report = Tdo_util.Bench_report in
  (* wall-clock drifts with the host; allocation is deterministic for a
     fixed domain count, so it gets the tight default tolerance *)
  let wall_tol =
    match tolerance with Some t -> t | None -> if smoke then 5.0 else 1.0
  in
  let alloc_tol =
    match alloc_tolerance with Some t -> t | None -> if smoke then 0.5 else 0.25
  in
  let sections =
    if smoke then [ snd (Report.section ~name:"fig5" (fun () -> ignore (E.fig5 ()))) ]
    else begin
      let fig6_name = Printf.sprintf "fig6-%s" (Dataset.to_string dataset) in
      let _, fig6 =
        Report.section ~name:fig6_name (fun () -> ignore (E.fig6 ~dataset ()))
      in
      let _, fig5 = Report.section ~name:"fig5" (fun () -> ignore (E.fig5 ())) in
      let _, ablations = Report.section ~name:"ablations" run_ablations in
      [ fig6; fig5; ablations ]
    end
  in
  match Report.compare ~tolerance:wall_tol ~alloc_tolerance:alloc_tol ~baseline sections with
  | Error msg ->
      Printf.eprintf "sim-bench: baseline %s: %s\n%!" baseline msg;
      exit 2
  | Ok [] ->
      Printf.eprintf "sim-bench: no section of this run matches the baseline %s\n%!"
        baseline;
      exit 2
  | Ok deltas ->
      List.iter
        (fun (d : Report.delta) ->
          Printf.printf
            "%-18s wall %8.3f s vs %8.3f s%s   minor %14.0f w vs %14.0f w%s\n" d.Report.name
            d.Report.wall_s d.Report.baseline_wall_s
            (if d.Report.regression then "  WALL-REGRESSION" else "")
            d.Report.minor_words d.Report.baseline_minor_words
            (if d.Report.alloc_regression then "  ALLOC-REGRESSION" else ""))
        deltas;
      let bad =
        List.filter
          (fun (d : Report.delta) -> d.Report.regression || d.Report.alloc_regression)
          deltas
      in
      if bad <> [] then begin
        Printf.eprintf "sim-bench: %d section(s) regressed against %s\n%!"
          (List.length bad) baseline;
        exit 1
      end;
      Printf.printf "sim-bench: ok (%d section(s) within tolerance)\n"
        (List.length deltas)

let sim_bench_cmd =
  let baseline_arg =
    Arg.(
      value & opt string "BENCH_sim.json"
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:"Committed report to gate against (sections matched by name).")
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Fast variant for `dune runtest`: only the Fig. 5 section, with loose \
             default tolerances.")
  in
  let tolerance_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "tolerance" ] ~docv:"FRACTION"
          ~doc:
            "Relative wall-clock slowdown that counts as a regression (default 1.0, or \
             5.0 with $(b,--smoke) — wall-clock is noisy across hosts).")
  in
  let alloc_tolerance_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "alloc-tolerance" ] ~docv:"FRACTION"
          ~doc:
            "Relative minor-heap allocation growth that counts as a regression (default \
             0.25, or 0.5 with $(b,--smoke)). Allocation is deterministic for a fixed \
             TDO_DOMAINS, so this is the reliable half of the gate.")
  in
  Cmd.v
    (Cmd.info "sim-bench"
       ~doc:
         "Regression gate: re-run the benchmark sections and compare wall-clock and \
          allocation against a committed BENCH_sim.json. Exits 1 on regression, 2 on a \
          missing or disjoint baseline.")
    Term.(
      const sim_bench $ dataset_arg $ baseline_arg $ smoke_arg $ tolerance_arg
      $ alloc_tolerance_arg)

let all_cmd =
  let run dataset =
    E.print_table1 ();
    print_newline ();
    E.print_fig1 ();
    print_newline ();
    E.print_fig2d ();
    print_newline ();
    E.print_fig5 ();
    print_newline ();
    E.print_fig6 ~dataset ~breakdown:true ();
    print_newline ();
    Tdo_cim.Ablations.print_all ()
  in
  Cmd.v (Cmd.info "all" ~doc:"Regenerate every table and figure, plus the ablation studies.")
    Term.(const run $ dataset_arg)

let () =
  let info = Cmd.info "experiments" ~doc:"TDO-CIM paper experiment driver." in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            table1_cmd;
            fig1_cmd;
            fig2d_cmd;
            fig5_cmd;
            fig6_cmd;
            ablations_cmd;
            bench_json_cmd;
            sim_bench_cmd;
            all_cmd;
          ]))
