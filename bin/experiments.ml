(* Regenerates every table and figure of the paper. *)

open Cmdliner
module E = Tdo_cim.Experiments
module Dataset = Tdo_polybench.Dataset

let dataset_arg =
  let parse s = Result.map_error (fun e -> `Msg e) (Dataset.of_string s) in
  let print ppf d = Format.fprintf ppf "%s" (Dataset.to_string d) in
  Arg.(
    value
    & opt (conv (parse, print)) Dataset.Medium
    & info [ "d"; "dataset" ] ~docv:"SIZE" ~doc:"Problem size: mini, small, medium or large.")

let n_arg default =
  Arg.(value & opt int default & info [ "n" ] ~docv:"N" ~doc:"Square-matrix extent.")

let table1_cmd =
  Cmd.v (Cmd.info "table1" ~doc:"Print Table I (system configuration).")
    Term.(const E.print_table1 $ const ())

let fig1_cmd =
  Cmd.v (Cmd.info "fig1" ~doc:"Print Fig. 1 (PCM programming pulses).")
    Term.(const E.print_fig1 $ const ())

let fig2d_cmd =
  let run n = E.print_fig2d ~n () in
  Cmd.v (Cmd.info "fig2d" ~doc:"Print Fig. 2(d) (offload timeline).")
    Term.(const run $ n_arg 16)

let fig5_cmd =
  let run n = E.print_fig5 ~n () in
  Cmd.v
    (Cmd.info "fig5" ~doc:"Print Fig. 5 (lifetime vs endurance, naive vs smart mapping).")
    Term.(const run $ n_arg 64)

let breakdown_flag =
  Arg.(
    value & flag
    & info [ "breakdown" ] ~doc:"Also print the per-kernel energy split by Table-I component.")

let fig6_cmd =
  let run dataset breakdown = E.print_fig6 ~dataset ~breakdown () in
  Cmd.v (Cmd.info "fig6" ~doc:"Print Fig. 6 (energy and EDP across PolyBench).")
    Term.(const run $ dataset_arg $ breakdown_flag)

let ablations_cmd =
  Cmd.v
    (Cmd.info "ablations"
       ~doc:
         "Run the ablation studies: operand pinning, fusion, double buffering, selective \
          offload, crossbar geometry, analog noise.")
    Term.(const Tdo_cim.Ablations.print_all $ const ())

(* ---------- machine-readable benchmark report ---------- *)

let bench_json dataset out baseline report_baseline =
  let module Pool = Tdo_util.Pool in
  let module Report = Tdo_util.Bench_report in
  let section name f =
    (* the fan-out first, then the same work forced sequential *)
    Pool.set_sequential (Some false);
    let _, wall_s, minor_words = Report.timed f in
    Pool.set_sequential (Some true);
    let _, seq_wall_s, _ = Report.timed f in
    Pool.set_sequential None;
    Printf.printf "%-18s %8.3f s parallel, %8.3f s sequential\n%!" name wall_s seq_wall_s;
    { Report.name; wall_s; minor_words; seq_wall_s = Some seq_wall_s }
  in
  let fig6_name = Printf.sprintf "fig6-%s" (Dataset.to_string dataset) in
  let fig6 = section fig6_name (fun () -> ignore (E.fig6 ~dataset ())) in
  let fig5 = section "fig5" (fun () -> ignore (E.fig5 ())) in
  let ablations =
    let module A = Tdo_cim.Ablations in
    section "ablations" (fun () ->
        ignore (A.pinning ());
        ignore (A.fusion ());
        ignore (A.double_buffering ());
        ignore (A.selective ());
        ignore (A.geometry ());
        ignore (A.noise ());
        ignore (A.wear_leveling ());
        ignore (A.tiles ()))
  in
  let sections = [ fig6; fig5; ablations ] in
  let extra =
    if baseline > 0.0 then
      [
        (fig6_name ^ "_seed_baseline_wall_s", baseline);
        (fig6_name ^ "_speedup_vs_seed_baseline", baseline /. fig6.Report.wall_s);
      ]
    else []
  in
  (* section-by-section comparison against a previously written report *)
  let extra =
    match report_baseline with
    | None -> extra
    | Some path -> (
        match Report.compare ~baseline:path sections with
        | Ok deltas ->
            List.iter
              (fun (d : Report.delta) ->
                Printf.printf "vs baseline %-18s %.3f s -> %.3f s (x%.2f%s)\n" d.Report.name
                  d.Report.baseline_wall_s d.Report.wall_s d.Report.speedup_vs_baseline
                  (if d.Report.regression then ", REGRESSION" else ""))
              deltas;
            extra @ Report.delta_fields deltas
        | Error msg ->
            Printf.eprintf "baseline %s: %s\n%!" path msg;
            extra)
  in
  Report.write ~path:out
    ~notes:
      "seed_baseline is the wall-clock of the same Fig. 6 sweep before the fast-engine \
       rework (functional Map event queue, assoc-list interpreter, sequential runner), \
       measured on the same machine; speedup_vs_sequential compares against this build \
       with the domain pool forced sequential."
    ~extra ~sections ();
  Printf.printf "wrote %s\n" out

let bench_json_cmd =
  let out_arg =
    Arg.(
      value & opt string "BENCH_sim.json"
      & info [ "o"; "out" ] ~docv:"PATH" ~doc:"Output path for the JSON report.")
  in
  let baseline_arg =
    Arg.(
      value & opt float 3.1
      & info [ "seed-baseline" ] ~docv:"SECONDS"
          ~doc:
            "Recorded wall-clock of the Fig. 6 sweep before the fast-engine rework, used \
             for the speedup-vs-seed figure; pass 0 to omit.")
  in
  let report_baseline_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Previous BENCH_sim.json to compare against: sections are matched by name and \
             per-section delta/speedup/regression fields are added to the report.")
  in
  Cmd.v
    (Cmd.info "bench-json"
       ~doc:
         "Time the Fig. 5 / Fig. 6 / ablation sections (parallel and forced-sequential) \
          and write BENCH_sim.json.")
    Term.(const bench_json $ dataset_arg $ out_arg $ baseline_arg $ report_baseline_arg)

let all_cmd =
  let run dataset =
    E.print_table1 ();
    print_newline ();
    E.print_fig1 ();
    print_newline ();
    E.print_fig2d ();
    print_newline ();
    E.print_fig5 ();
    print_newline ();
    E.print_fig6 ~dataset ~breakdown:true ();
    print_newline ();
    Tdo_cim.Ablations.print_all ()
  in
  Cmd.v (Cmd.info "all" ~doc:"Regenerate every table and figure, plus the ablation studies.")
    Term.(const run $ dataset_arg)

let () =
  let info = Cmd.info "experiments" ~doc:"TDO-CIM paper experiment driver." in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            table1_cmd;
            fig1_cmd;
            fig2d_cmd;
            fig5_cmd;
            fig6_cmd;
            ablations_cmd;
            bench_json_cmd;
            all_cmd;
          ]))
