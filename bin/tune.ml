(* tdo-tune: cost-model-driven autotuning sweep over the PolyBench
   kernels.

   For every kernel the driver enumerates the offload design space
   (crossbar geometry, fusion, tiling, pin strategy, selective-offload
   threshold), fits the analytic cost model against a handful of
   cycle-accurate calibration runs, re-ranks the model's beam by exact
   simulation and records the measured winner in a persisted tuning
   database (consumed by `tdoc --tune-db` and the serving scheduler).
   Wall-clock per kernel and tuned-vs-default evidence land in
   BENCH_tune.json; --baseline compares against a previous report. *)

open Cmdliner
module Kernels = Tdo_polybench.Kernels
module Dataset = Tdo_polybench.Dataset
module Graph = Tdo_graph.Graph
module Space = Tdo_tune.Space
module Search = Tdo_tune.Search
module Db = Tdo_tune.Db
module Report = Tdo_util.Bench_report

type outcome = { bench : Kernels.benchmark; entry : Db.entry; result : Search.result }

let tune_kernel ~axes ~beam ~calibration_points ~objective ~cls ~reuse ~n ~seed
    (b : Kernels.benchmark) =
  let source = b.Kernels.source ~n in
  let args () = fst (b.Kernels.make_args ~n ~seed) in
  match
    Search.tune ~axes ~beam ~calibration_points ~objective ~cls ~reuse ~source ~args ()
  with
  | Error msg -> Error (Printf.sprintf "%s: %s" b.Kernels.name msg)
  | Ok r -> Ok { bench = b; entry = Db.entry_of_result ~n r; result = r }

let print_outcome (o : outcome) =
  let e = o.entry in
  Printf.printf
    "%-8s n=%-3d default %8d cy / %8d wr  ->  tuned %8d cy / %8d wr  x%.3f  [%s]  cal err \
     %.1f%% (%d/%d points simulated)\n\
     %!"
    e.Db.kernel e.Db.n e.Db.default_cycles e.Db.default_write_bytes e.Db.tuned_cycles
    e.Db.tuned_write_bytes
    (Search.improvement o.result)
    (Space.describe e.Db.config)
    (100.0 *. e.Db.calibration_error)
    o.result.Search.simulated o.result.Search.space_size

let kernel_extras (o : outcome) =
  let e = o.entry in
  let k fmt = Printf.sprintf ("%s_" ^^ fmt) e.Db.kernel in
  [
    (k "tuned_cycles", float_of_int e.Db.tuned_cycles);
    (k "default_cycles", float_of_int e.Db.default_cycles);
    (k "tuned_write_bytes", float_of_int e.Db.tuned_write_bytes);
    (k "default_write_bytes", float_of_int e.Db.default_write_bytes);
    (k "calibration_error", e.Db.calibration_error);
    (k "improvement", Search.improvement o.result);
    (k "space_size", float_of_int o.result.Search.space_size);
    (k "simulated", float_of_int o.result.Search.simulated);
  ]

(* Tuned strictly better than default on either axis the paper cares
   about: ROI cycles or crossbar programming traffic. *)
let strictly_better (o : outcome) =
  let e = o.entry in
  e.Db.tuned_cycles < e.Db.default_cycles
  || e.Db.tuned_write_bytes < e.Db.default_write_bytes

let never_worse (o : outcome) =
  let e = o.entry in
  e.Db.tuned_cycles <= e.Db.default_cycles
  && e.Db.tuned_write_bytes <= e.Db.default_write_bytes

let run dataset n_override kernels objective device_class beam calibration_points reuse
    seed db_path out baseline smoke strict =
  let objective =
    match Search.objective_of_string objective with
    | Ok o -> o
    | Error msg ->
        prerr_endline msg;
        exit 2
  in
  let cls =
    match Tdo_backend.Backend.class_of_name device_class with
    | Ok c -> c
    | Error msg ->
        prerr_endline msg;
        exit 2
  in
  let axes = if smoke then Space.smoke_axes else Space.axes_for cls in
  let n =
    match n_override with
    | Some n -> n
    | None -> if smoke then Dataset.n Dataset.Mini else Dataset.n dataset
  in
  let beam = if smoke then min beam 2 else beam in
  let calibration_points = if smoke then min calibration_points 3 else calibration_points in
  let selected =
    match kernels with
    | [] ->
        if smoke then
          List.filter (fun (b : Kernels.benchmark) -> List.mem b.Kernels.name [ "gemm"; "mvt" ])
            Kernels.all
        else Kernels.all
    | names ->
        List.map
          (fun name ->
            (* graph workloads tune like any kernel: the whole
               multi-layer program is one function, so the database
               entry is keyed by the graph's composed digest *)
            match Graph.find_bench name with
            | Ok b -> b
            | Error msg ->
                prerr_endline msg;
                exit 2)
          names
  in
  let errors = ref [] in
  let outcomes, sections =
    List.fold_left
      (fun (os, secs) (b : Kernels.benchmark) ->
        let r, sec =
          Report.section ~name:b.Kernels.name (fun () ->
              tune_kernel ~axes ~beam ~calibration_points ~objective ~cls ~reuse ~n ~seed b)
        in
        match r with
        | Error msg ->
            Printf.eprintf "tune: %s\n%!" msg;
            errors := msg :: !errors;
            (os, secs @ [ sec ])
        | Ok o ->
            print_outcome o;
            (os @ [ o ], secs @ [ sec ]))
      ([], []) selected
  in
  (* extend the database at --db rather than clobbering it: successive
     runs over different sizes/classes accumulate (entries are keyed by
     (digest, class), so re-tuning a kernel replaces its entry) *)
  let db =
    let base =
      match db_path with
      | None -> Db.empty
      | Some path -> (
          match Db.load path with
          | Ok existing ->
              if Db.size existing > 0 then
                Printf.printf "tuning database: extending %d entries from %s\n"
                  (Db.size existing) path;
              existing
          | Error msg ->
              Printf.eprintf "tune: %s: %s (starting a fresh database)\n%!" path msg;
              Db.empty)
    in
    List.fold_left (fun db (o : outcome) -> Db.add db o.entry) base outcomes
  in
  (match db_path with
  | Some path ->
      Db.save db path;
      Printf.printf "tuning database: %d entries -> %s\n" (Db.size db) path
  | None -> ());
  let improved = List.filter strictly_better outcomes in
  let mean_cal_err =
    match outcomes with
    | [] -> 0.0
    | os ->
        List.fold_left (fun acc (o : outcome) -> acc +. o.entry.Db.calibration_error) 0.0 os
        /. float_of_int (List.length os)
  in
  let extra =
    [
      ("kernels_tuned", float_of_int (List.length outcomes));
      ("kernels_never_worse", float_of_int (List.length (List.filter never_worse outcomes)));
      ("kernels_strictly_better", float_of_int (List.length improved));
      ("mean_calibration_error", mean_cal_err);
      ("problem_n", float_of_int n);
      ("objective_cycles", if objective = Search.Cycles then 1.0 else 0.0);
      ("reuse", float_of_int (max 1 reuse));
    ]
    @ List.concat_map kernel_extras outcomes
  in
  let extra =
    match baseline with
    | None -> extra
    | Some path -> (
        match Report.compare ~baseline:path sections with
        | Ok deltas ->
            List.iter
              (fun (d : Report.delta) ->
                Printf.printf "vs baseline %-8s %.3f s -> %.3f s (x%.2f%s)\n" d.Report.name
                  d.Report.baseline_wall_s d.Report.wall_s d.Report.speedup_vs_baseline
                  (if d.Report.regression then ", REGRESSION" else ""))
              deltas;
            extra @ Report.delta_fields deltas
        | Error msg ->
            Printf.eprintf "tune: baseline %s: %s\n%!" path msg;
            extra)
  in
  Report.write ~path:out ~extra
    ~notes:
      (Printf.sprintf
         "tdo-tune sweep: objective %s, n=%d, beam %d, %d calibration points per kernel; \
          per-kernel sections time the full search (enumerate, compile, calibrate, re-rank)"
         (Search.objective_to_string objective)
         n beam calibration_points)
    ~sections ();
  Printf.printf "report written to %s\n" out;
  let strict_failures =
    if not strict then []
    else
      !errors
      @ List.filter_map
          (fun (o : outcome) ->
            if never_worse o then None
            else
              Some
                (Printf.sprintf "%s: tuned configuration measured worse than the default"
                   o.entry.Db.kernel))
          outcomes
  in
  List.iter (fun m -> Printf.eprintf "FAIL: %s\n" m) strict_failures;
  if strict_failures <> [] then 1 else 0

let cmd =
  let dataset_arg =
    let parse s = Result.map_error (fun e -> `Msg e) (Dataset.of_string s) in
    let print ppf d = Format.fprintf ppf "%s" (Dataset.to_string d) in
    Arg.(
      value
      & opt (conv (parse, print)) Dataset.Small
      & info [ "d"; "dataset" ] ~docv:"SIZE" ~doc:"Problem size: mini, small, medium or large.")
  in
  let n_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "n" ] ~docv:"N"
          ~doc:"Tune at this exact extent instead of the dataset preset (digests are \
                size-specific, so match the workload's sizes).")
  in
  let kernels_arg =
    Arg.(
      value
      & opt (list string) []
      & info [ "kernels" ] ~docv:"NAMES"
          ~doc:"Comma-separated kernel subset (default: the full Fig. 6 set).")
  in
  let objective_arg =
    Arg.(
      value & opt string "cycles"
      & info [ "objective" ] ~docv:"OBJ" ~doc:"Tuning objective: cycles, writes or edp.")
  in
  let device_class_arg =
    Arg.(
      value & opt string "pcm"
      & info [ "device-class" ] ~docv:"CLASS"
          ~doc:
            "Device class to tune for: pcm (analog crossbar, the default), digital (SRAM \
             CIM tile — simulated under its timing model, swept with lower offload \
             thresholds) or host. Entries are stamped with the class, and the serving \
             scheduler only replays a configuration on devices of the same class.")
  in
  let beam_arg =
    Arg.(
      value & opt int 4
      & info [ "beam" ] ~docv:"K" ~doc:"Model-ranked points re-ranked by exact simulation.")
  in
  let calib_arg =
    Arg.(
      value & opt int 5
      & info [ "calibration-points" ] ~docv:"N"
          ~doc:"Exact simulations spent fitting the cost model per kernel.")
  in
  let reuse_arg =
    Arg.(
      value & opt int 1
      & info [ "reuse" ] ~docv:"R"
          ~doc:
            "Expected executions per weight programming (inter-kernel reuse). Graph \
             serving with weight residency pays the crossbar write once per R requests, \
             so the search amortises programming cost over R runs when ranking and \
             choosing the winner. 1 (the default) is the classic per-request model.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Argument-synthesis seed.")
  in
  let db_arg =
    Arg.(
      value
      & opt (some string) (Some "tune.db.json")
      & info [ "db" ] ~docv:"FILE"
          ~doc:"Tuning-database output path; pass an empty value via --no-db to skip.")
  in
  let no_db_arg =
    Arg.(value & flag & info [ "no-db" ] ~doc:"Do not write a tuning database.")
  in
  let out_arg =
    Arg.(
      value & opt string "BENCH_tune.json"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Benchmark report path.")
  in
  let baseline_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Previous BENCH_tune.json to compare against; per-kernel wall-clock deltas are \
             added to the report.")
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Tiny sweep for CI: two kernels at the mini size over the smoke axes, small beam.")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Exit non-zero if any kernel fails to tune or tunes worse than the default.")
  in
  let run' dataset n kernels objective device_class beam calib reuse seed db no_db out
      baseline smoke strict =
    run dataset n kernels objective device_class beam calib reuse seed
      (if no_db then None else db)
      out baseline smoke strict
  in
  Cmd.v
    (Cmd.info "tdo-tune"
       ~doc:"Cost-model-driven autotuning sweep over PolyBench and graph workloads.")
    Term.(
      const run' $ dataset_arg $ n_arg $ kernels_arg $ objective_arg $ device_class_arg
      $ beam_arg $ calib_arg $ reuse_arg $ seed_arg $ db_arg $ no_db_arg $ out_arg
      $ baseline_arg $ smoke_arg $ strict_arg)

let () = exit (Cmd.eval' cmd)
