(* tdo-reliab: fault-injection campaigns against the CIM serving stack.

   Sweeps a fault intensity (stuck cells per faulty device) over a
   PolyBench request trace. Each sweep point replays the trace twice —
   once on a pool with seed-derived faults planted, once pristine — and
   scores ABFT detection rate, silent-data-corruption rate and the
   virtual-time overhead of recovery (retry, quarantine, host
   degradation). Results land in BENCH_reliab.json. *)

open Cmdliner
module Campaign = Tdo_reliab.Campaign
module Inject = Tdo_reliab.Inject
module Report = Tdo_util.Bench_report

let summarise stuck (r : Campaign.run) =
  let m = r.Campaign.metrics in
  Printf.printf
    "stuck=%d: %d requests, %d faults on %d of %d devices | detected %d, SDC %d, detection \
     rate %.1f%%\n"
    stuck m.Campaign.requests m.Campaign.injected_faults m.Campaign.faulty_devices
    r.Campaign.config.Campaign.devices m.Campaign.detected m.Campaign.sdc
    (100.0 *. m.Campaign.detection_rate);
  Printf.printf
    "  completed %d (%d after retry), recovered-host %d, cpu-fallback %d, rejected %d, \
     failed %d, quarantined [%s]\n"
    m.Campaign.completed m.Campaign.completed_after_retry m.Campaign.recovered_host
    m.Campaign.cpu_fallbacks m.Campaign.rejected m.Campaign.failed
    (String.concat "," (List.map string_of_int m.Campaign.quarantined));
  Printf.printf "  latency overhead x%.3f, makespan overhead x%.3f\n"
    m.Campaign.latency_overhead m.Campaign.makespan_overhead

let extras_of (stuck, (r : Campaign.run)) =
  let m = r.Campaign.metrics in
  let p fmt = Printf.sprintf ("s%d_" ^^ fmt) stuck in
  [
    (p "injected_faults", float_of_int m.Campaign.injected_faults);
    (p "faulty_devices", float_of_int m.Campaign.faulty_devices);
    (p "detected", float_of_int m.Campaign.detected);
    (p "sdc", float_of_int m.Campaign.sdc);
    (p "detection_rate", m.Campaign.detection_rate);
    (p "sdc_rate", m.Campaign.sdc_rate);
    (p "completed", float_of_int m.Campaign.completed);
    (p "completed_after_retry", float_of_int m.Campaign.completed_after_retry);
    (p "recovered_host", float_of_int m.Campaign.recovered_host);
    (p "cpu_fallbacks", float_of_int m.Campaign.cpu_fallbacks);
    (p "quarantined_devices", float_of_int (List.length m.Campaign.quarantined));
    (p "latency_overhead", m.Campaign.latency_overhead);
    (p "makespan_overhead", m.Campaign.makespan_overhead);
  ]

let parse_int_list s =
  match
    String.split_on_char ',' s
    |> List.filter (fun x -> String.trim x <> "")
    |> List.map (fun x -> int_of_string (String.trim x))
  with
  | [] -> Error (Printf.sprintf "empty sweep '%s'" s)
  | xs -> Ok xs
  | exception Failure _ -> Error (Printf.sprintf "bad sweep '%s' (expected e.g. 0,1,2)" s)

let run kernels n requests mean_gap_us devices seed sweep worn flips flip_ops drift
    faulty_fraction no_abft out strict =
  let kernel_list =
    String.split_on_char ',' kernels
    |> List.filter (fun k -> String.trim k <> "")
    |> List.map (fun k -> (String.trim k, n))
  in
  match parse_int_list sweep with
  | Error msg ->
      prerr_endline msg;
      1
  | Ok points ->
      let runs =
        List.map
          (fun stuck ->
            let spec =
              {
                Inject.seed;
                faulty_fraction;
                region_rows = n;
                region_cols = n;
                stuck_cells = stuck;
                worn_cells = worn;
                column_flips = flips;
                flip_ops;
                drift_offset = drift;
              }
            in
            let config =
              {
                Campaign.default_config with
                Campaign.kernels = kernel_list;
                requests;
                mean_gap_us;
                devices;
                seed;
                spec;
                abft = not no_abft;
              }
            in
            let r, section =
              Report.section
                ~name:(Printf.sprintf "campaign-stuck-%d" stuck)
                (fun () -> Campaign.run ~config ())
            in
            summarise stuck r;
            ((stuck, r), section))
          points
      in
      let results = List.map fst runs in
      let sections = List.map snd runs in
      let total f = List.fold_left (fun acc (_, r) -> acc + f r.Campaign.metrics) 0 results in
      let detected = total (fun m -> m.Campaign.detected) in
      let sdc = total (fun m -> m.Campaign.sdc) in
      let aggregate =
        [
          ("sweep_points", float_of_int (List.length results));
          ("total_detected", float_of_int detected);
          ("total_sdc", float_of_int sdc);
          ( "overall_detection_rate",
            if detected + sdc = 0 then 1.0
            else float_of_int detected /. float_of_int (detected + sdc) );
        ]
      in
      Report.write ~path:out
        ~extra:(aggregate @ List.concat_map extras_of results)
        ~notes:
          (Printf.sprintf
             "tdo-reliab campaign: kernels %s at n=%d, %d requests on %d devices, abft %b, \
              faulty fraction %g, sweep stuck=%s"
             kernels n requests devices (not no_abft) faulty_fraction sweep)
        ~sections ();
      Printf.printf "report written to %s\n" out;
      Printf.printf "total: detected %d, SDC %d\n" detected sdc;
      if strict && (not no_abft) && sdc > 0 then begin
        prerr_endline "FAIL: silent data corruption with the ABFT guard enabled";
        1
      end
      else 0

let cmd =
  let kernels_arg =
    Arg.(
      value
      & opt string "gemm,gesummv,mvt"
      & info [ "k"; "kernels" ] ~docv:"LIST"
          ~doc:"Comma-separated PolyBench kernels to mix into the trace.")
  in
  let n_arg =
    Arg.(
      value & opt int 16
      & info [ "n" ] ~docv:"N" ~doc:"Problem size (also bounds the fault region).")
  in
  let requests_arg =
    Arg.(value & opt int 60 & info [ "requests" ] ~docv:"N" ~doc:"Requests in the trace.")
  in
  let gap_arg =
    Arg.(
      value & opt float 60.0
      & info [ "mean-gap-us" ] ~docv:"US" ~doc:"Mean exponential inter-arrival gap.")
  in
  let devices_arg =
    Arg.(value & opt int 2 & info [ "devices" ] ~docv:"N" ~doc:"Devices in the pool.")
  in
  let seed_arg =
    Arg.(
      value & opt int 11
      & info [ "seed" ] ~doc:"Campaign seed: trace, device streams and fault placement.")
  in
  let sweep_arg =
    Arg.(
      value & opt string "0,1,2"
      & info [ "sweep" ] ~docv:"LIST"
          ~doc:"Comma-separated stuck-cell counts per faulty device, one campaign each.")
  in
  let worn_arg =
    Arg.(
      value & opt int 0
      & info [ "worn-cells" ] ~docv:"N" ~doc:"Wear-induced stuck cells per faulty device.")
  in
  let flips_arg =
    Arg.(
      value & opt int 0
      & info [ "column-flips" ] ~docv:"N"
          ~doc:"Transient column bit-flips armed per faulty device.")
  in
  let flip_ops_arg =
    Arg.(
      value & opt int 4
      & info [ "flip-ops" ] ~docv:"N" ~doc:"GEMV passes each transient affects.")
  in
  let drift_arg =
    Arg.(
      value & opt int 0
      & info [ "drift" ] ~docv:"LSB"
          ~doc:"Conductance-drift offset per column output on faulty devices.")
  in
  let fraction_arg =
    Arg.(
      value & opt float 0.5
      & info [ "faulty-fraction" ] ~docv:"P" ~doc:"Probability a device carries faults.")
  in
  let no_abft_arg =
    Arg.(
      value & flag
      & info [ "no-abft" ]
          ~doc:"Disable the checksum guard (measures the undefended SDC rate).")
  in
  let out_arg =
    Arg.(
      value & opt string "BENCH_reliab.json"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Benchmark report path.")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ] ~doc:"Fail if any SDC slips through while the guard is enabled.")
  in
  Cmd.v
    (Cmd.info "tdo-reliab" ~doc:"Fault-injection and recovery campaigns for the CIM service.")
    Term.(
      const run $ kernels_arg $ n_arg $ requests_arg $ gap_arg $ devices_arg $ seed_arg
      $ sweep_arg $ worn_arg $ flips_arg $ flip_ops_arg $ drift_arg $ fraction_arg
      $ no_abft_arg $ out_arg $ strict_arg)

let () = exit (Cmd.eval' cmd)
