/* W010: iterator t appears in no subscript — every trip re-launches
   (and may re-program) the identical kernel; hoist it, or scale the
   accumulation by the trip count. */
void w010(float C[8][8], float A[8][8], float B[8][8]) {
  for (int t = 0; t < 4; t++)
    for (int i = 0; i < 8; i++)
      for (int j = 0; j < 8; j++)
        for (int k = 0; k < 8; k++)
          C[i][j] += A[i][k] * B[k][j];
}
