void gemm(float alpha, float beta, float C[16][16], float A[16][16], float B[16][16]) {
  for (int i = 0; i < 16; i++)
    for (int j = 0; j < 16; j++) {
      C[i][j] *= beta;
      for (int k = 0; k < 16; k++)
        C[i][j] += alpha * A[i][k] * B[k][j];
    }
}
