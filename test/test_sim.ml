open Tdo_sim

(* ---------- Time ---------- *)

let test_time_conversions () =
  Alcotest.(check int) "1 GHz period" 1000 (Time_base.period_ps ~freq_hz:1e9);
  Alcotest.(check int) "1.2 GHz period" 833 (Time_base.period_ps ~freq_hz:1.2e9);
  Alcotest.(check int) "cycles to ps" 10_000 (Time_base.cycles_to_ps ~freq_hz:1e9 10);
  Alcotest.(check int) "partial period rounds up" 2 (Time_base.ps_to_cycles ~freq_hz:1e9 1001);
  Alcotest.(check (float 1e-15)) "seconds" 1e-6 (Time_base.seconds_of_ps Time_base.ps_per_us)

(* ---------- Event queue ---------- *)

let test_event_order () =
  let q = Event_queue.create () in
  let log = ref [] in
  Event_queue.schedule q ~delay:30 ~name:"c" (fun () -> log := "c" :: !log);
  Event_queue.schedule q ~delay:10 ~name:"a" (fun () -> log := "a" :: !log);
  Event_queue.schedule q ~delay:20 ~name:"b" (fun () -> log := "b" :: !log);
  Event_queue.run_all q;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check int) "clock at last event" 30 (Event_queue.now q)

let test_event_same_time_fifo () =
  let q = Event_queue.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Event_queue.schedule q ~delay:7 ~name:"e" (fun () -> log := i :: !log)
  done;
  Event_queue.run_all q;
  Alcotest.(check (list int)) "FIFO at equal times" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_event_cascade () =
  let q = Event_queue.create () in
  let log = ref [] in
  Event_queue.schedule q ~delay:5 ~name:"outer" (fun () ->
      log := ("outer", Event_queue.now q) :: !log;
      Event_queue.schedule q ~delay:5 ~name:"inner" (fun () ->
          log := ("inner", Event_queue.now q) :: !log));
  Event_queue.run_all q;
  Alcotest.(check (list (pair string int)))
    "events can schedule events"
    [ ("outer", 5); ("inner", 10) ]
    (List.rev !log)

let test_event_run_until () =
  let q = Event_queue.create () in
  let count = ref 0 in
  List.iter
    (fun d -> Event_queue.schedule q ~delay:d ~name:"e" (fun () -> incr count))
    [ 10; 20; 30 ];
  Event_queue.run_until q ~time:20;
  Alcotest.(check int) "only due events ran" 2 !count;
  Alcotest.(check int) "clock advanced to target" 20 (Event_queue.now q);
  Alcotest.(check int) "one pending" 1 (Event_queue.pending q)

let test_event_past_rejected () =
  let q = Event_queue.create () in
  Event_queue.schedule q ~delay:10 ~name:"e" (fun () -> ());
  Event_queue.run_all q;
  Alcotest.(check bool) "scheduling in the past raises" true
    (try
       Event_queue.schedule_at q ~time:5 ~name:"late" (fun () -> ());
       false
     with Invalid_argument _ -> true)

(* ---------- Memory ---------- *)

let test_memory_rw () =
  let m = Memory.create () in
  Memory.write_u8 m 100 0xAB;
  Alcotest.(check int) "byte roundtrip" 0xAB (Memory.read_u8 m 100);
  Alcotest.(check int) "untouched memory is zero" 0 (Memory.read_u8 m 101);
  Memory.write_i32 m 200 0xDEADBEEFl;
  Alcotest.(check int32) "i32 roundtrip" 0xDEADBEEFl (Memory.read_i32 m 200)

let test_memory_f32 () =
  let m = Memory.create () in
  Memory.write_f32 m 0 3.14159265358979;
  let v = Memory.read_f32 m 0 in
  (* binary32 rounding: exact float64 is not recoverable *)
  Alcotest.(check bool) "f32 rounding applied" true (Float.abs (v -. 3.14159265358979) > 0.0);
  Alcotest.(check bool) "f32 close" true (Float.abs (v -. 3.14159265358979) < 1e-6);
  Memory.write_f32 m 4 1.5;
  Alcotest.(check (float 0.0)) "dyadic value exact" 1.5 (Memory.read_f32 m 4)

let test_memory_chunk_boundary () =
  let m = Memory.create () in
  (* 64 KB chunks: write across the boundary *)
  let addr = (64 * 1024) - 2 in
  Memory.write_bytes m addr (Bytes.of_string "wxyz");
  Alcotest.(check string) "crosses chunk boundary" "wxyz"
    (Bytes.to_string (Memory.read_bytes m addr 4))

let test_memory_bounds () =
  let m = Memory.create ~config:{ Memory.default_config with Memory.size_bytes = 1024 } () in
  Alcotest.(check bool) "out of range raises" true
    (try
       ignore (Memory.read_u8 m 1024);
       false
     with Invalid_argument _ -> true)

let test_memory_burst_latency () =
  let m = Memory.create () in
  let l0 = Memory.burst_latency m ~bytes:0 in
  Alcotest.(check int) "fixed cost" (50 * Time_base.ps_per_ns) l0;
  let l64 = Memory.burst_latency m ~bytes:64 in
  Alcotest.(check bool) "bandwidth term" true (l64 > l0)

(* ---------- Cache ---------- *)

let flat_next latency = fun _ ~addr:_ ~bytes:_ -> latency

let test_cache_hit_miss () =
  let c = Cache.create ~next:(flat_next 100_000) () in
  let lat_miss = Cache.access c Cache.Read ~addr:0 in
  let lat_hit = Cache.access c Cache.Read ~addr:4 in
  Alcotest.(check bool) "miss slower than hit" true (lat_miss > lat_hit);
  let s = Cache.stats c in
  Alcotest.(check int) "one miss" 1 s.Cache.misses;
  Alcotest.(check int) "one hit" 1 s.Cache.hits;
  Alcotest.(check int) "hit latency" (Cache.config c).Cache.hit_latency_ps lat_hit

let test_cache_line_granularity () =
  let c = Cache.create ~next:(flat_next 100_000) () in
  ignore (Cache.access c Cache.Read ~addr:128);
  (* all bytes of the same 64-byte line hit *)
  for offset = 0 to 63 do
    ignore (Cache.access c Cache.Read ~addr:(128 + offset))
  done;
  Alcotest.(check int) "line-granular hits" 64 (Cache.stats c).Cache.hits

let test_cache_lru_eviction () =
  (* Tiny cache: 2 sets x 2 ways x 16-byte lines = 64 bytes. *)
  let config =
    { Cache.name = "tiny"; size_bytes = 64; line_bytes = 16; ways = 2; hit_latency_ps = 1 }
  in
  let c = Cache.create ~config ~next:(flat_next 100) () in
  (* Three lines mapping to set 0 (line addresses 0, 2, 4 mod 2 = 0). *)
  ignore (Cache.access c Cache.Read ~addr:0);
  ignore (Cache.access c Cache.Read ~addr:32);
  ignore (Cache.access c Cache.Read ~addr:0);
  (* touch 0 so 32 is LRU *)
  ignore (Cache.access c Cache.Read ~addr:64);
  (* evicts 32 *)
  ignore (Cache.access c Cache.Read ~addr:0);
  Alcotest.(check int) "0 still resident" 2 (Cache.stats c).Cache.hits;
  ignore (Cache.access c Cache.Read ~addr:32);
  Alcotest.(check int) "32 was evicted" 4 (Cache.stats c).Cache.misses

let test_cache_writeback_on_eviction () =
  let writes_below = ref 0 in
  let next op ~addr:_ ~bytes:_ =
    if op = Cache.Write then incr writes_below;
    100
  in
  let config =
    { Cache.name = "tiny"; size_bytes = 32; line_bytes = 16; ways = 2; hit_latency_ps = 1 }
  in
  let c = Cache.create ~config ~next () in
  ignore (Cache.access c Cache.Write ~addr:0);
  Alcotest.(check int) "no writeback yet (write-back policy)" 0 !writes_below;
  ignore (Cache.access c Cache.Read ~addr:16);
  ignore (Cache.access c Cache.Read ~addr:32);
  (* evicts dirty line 0 *)
  Alcotest.(check int) "dirty eviction wrote back" 1 !writes_below

let test_cache_flush () =
  let writes_below = ref 0 in
  let next op ~addr:_ ~bytes:_ =
    if op = Cache.Write then incr writes_below;
    100
  in
  let c = Cache.create ~next () in
  ignore (Cache.access c Cache.Write ~addr:0);
  ignore (Cache.access c Cache.Write ~addr:64);
  ignore (Cache.access c Cache.Read ~addr:128);
  Alcotest.(check int) "two dirty lines" 2 (Cache.dirty_lines c);
  let lat = Cache.flush c in
  Alcotest.(check int) "flushed both" 2 !writes_below;
  Alcotest.(check bool) "flush has cost" true (lat > 0);
  Alcotest.(check int) "cache empty" 0 (Cache.dirty_lines c);
  ignore (Cache.access c Cache.Read ~addr:0);
  Alcotest.(check int) "everything invalidated" 4 (Cache.stats c).Cache.misses;
  Alcotest.(check int) "flushed bytes tracked" 128 (Cache.stats c).Cache.flushed_bytes

let qcheck_cache_latency_positive =
  QCheck.Test.make ~name:"cache access latency is always positive" ~count:200
    QCheck.(pair (int_bound 100_000) bool)
    (fun (addr, write) ->
      let c = Cache.create ~next:(flat_next 1000) () in
      let op = if write then Cache.Write else Cache.Read in
      Cache.access c op ~addr > 0)

(* ---------- Bus / DMA / MMIO ---------- *)

let test_bus_latency_and_traffic () =
  let b = Bus.create () in
  let l1 = Bus.transfer b ~master:"cpu" ~bytes:64 in
  let l2 = Bus.transfer b ~master:"cim-dma" ~bytes:4096 in
  Alcotest.(check bool) "bigger transfer slower" true (l2 > l1);
  Alcotest.(check (list (pair string int)))
    "per-master traffic"
    [ ("cim-dma", 4096); ("cpu", 64) ]
    (Bus.traffic b);
  Alcotest.(check int) "total" 4160 (Bus.total_bytes b)

let test_dma_roundtrip () =
  let bus = Bus.create () in
  let memory = Memory.create () in
  let dma = Dma.create ~bus ~memory () in
  let lat_w = Dma.write dma ~addr:4096 (Bytes.of_string "hello-cim") in
  let data, lat_r = Dma.read dma ~addr:4096 ~bytes:9 in
  Alcotest.(check string) "data through DMA" "hello-cim" (Bytes.to_string data);
  Alcotest.(check bool) "latencies positive" true (lat_w > 0 && lat_r > 0);
  Alcotest.(check int) "bytes read" 9 (Dma.bytes_read dma);
  Alcotest.(check int) "bytes written" 9 (Dma.bytes_written dma);
  Alcotest.(check int) "dma traffic visible on bus" 18 (Bus.total_bytes bus)

(* One descriptor moving [bytes], on a fresh system — the unit the
   engine's transfer accounting is built from. *)
let dma_read_latency ~bytes =
  let bus = Bus.create () in
  let memory = Memory.create () in
  let dma = Dma.create ~bus ~memory () in
  snd (Dma.read dma ~addr:0 ~bytes)

let test_dma_strided_full_charge () =
  let bus = Bus.create () in
  let memory = Memory.create () in
  let dma = Dma.create ~bus ~memory () in
  for i = 0 to 255 do
    Memory.write_bytes memory (4096 + i) (Bytes.make 1 (Char.chr (i land 0xff)))
  done;
  let data, lat = Dma.read_strided dma ~addr:4096 ~row_bytes:16 ~rows:4 ~stride_bytes:64 in
  Alcotest.(check int) "packed result" 64 (Bytes.length data);
  (* a strided gather is one descriptor over the total payload: it must
     be charged exactly like a contiguous burst of the same size *)
  Alcotest.(check int) "charged as one full-size burst" (dma_read_latency ~bytes:64) lat;
  Alcotest.(check int) "all gathered bytes counted" 64 (Dma.bytes_read dma);
  Alcotest.(check int) "one descriptor" 1 (Dma.transfers dma)

let test_dma_charge_matches_read () =
  let bus = Bus.create () in
  let memory = Memory.create () in
  let dma = Dma.create ~bus ~memory () in
  let lat = Dma.charge dma ~bytes:256 in
  Alcotest.(check int) "charge = real transfer cost" (dma_read_latency ~bytes:256) lat;
  Alcotest.(check int) "charged bytes counted" 256 (Dma.bytes_read dma);
  Alcotest.(check int) "charge counts a descriptor" 1 (Dma.transfers dma);
  Alcotest.(check bool) "negative charge rejected" true
    (try
       ignore (Dma.charge dma ~bytes:(-1));
       false
     with Invalid_argument _ -> true)

(* The law that keeps double buffering honest: splitting a transfer
   into more descriptors can never cost less than one descriptor over
   the whole payload, so overlapping split transfers with compute never
   undercharges total DMA cycles. *)
let qcheck_dma_split_never_undercharges =
  QCheck.Test.make ~name:"split transfers cost at least the merged burst" ~count:100
    QCheck.(pair (int_range 1 4096) (int_range 1 4096))
    (fun (b1, b2) ->
      dma_read_latency ~bytes:b1 + dma_read_latency ~bytes:b2
      >= dma_read_latency ~bytes:(b1 + b2))

let test_mmio_dispatch () =
  let io = Mmio.create () in
  let reg = ref 0l in
  let handler =
    {
      Mmio.read = (fun ~offset -> if offset = 0 then !reg else Int32.of_int offset);
      write = (fun ~offset v -> if offset = 0 then reg := v);
    }
  in
  Mmio.map io ~base:0x4000 ~size:64 handler;
  Mmio.write io ~addr:0x4000 42l;
  Alcotest.(check int32) "register write visible" 42l (Mmio.read io ~addr:0x4000);
  Alcotest.(check int32) "offset dispatch" 8l (Mmio.read io ~addr:0x4008);
  Alcotest.(check int) "read count" 2 (Mmio.reads io)

let test_mmio_overlap_rejected () =
  let io = Mmio.create () in
  let handler = { Mmio.read = (fun ~offset:_ -> 0l); write = (fun ~offset:_ _ -> ()) } in
  Mmio.map io ~base:0x1000 ~size:0x100 handler;
  Alcotest.(check bool) "overlap raises" true
    (try
       Mmio.map io ~base:0x10F0 ~size:0x20 handler;
       false
     with Invalid_argument _ -> true)

let test_mmio_unmapped () =
  let io = Mmio.create () in
  Alcotest.check_raises "unmapped read" (Failure "Mmio: unmapped address 0x99") (fun () ->
      ignore (Mmio.read io ~addr:0x99))

(* ---------- CPU ---------- *)

let make_hierarchy () =
  let memory = Memory.create () in
  let next_mem op ~addr:_ ~bytes =
    ignore op;
    Memory.burst_latency memory ~bytes
  in
  let l2 = Cache.create ~config:Cache.l2_arm_a7 ~next:next_mem () in
  let l1d = Cache.create ~config:Cache.l1d_arm_a7 ~next:(fun op ~addr ~bytes:_ -> Cache.access l2 op ~addr) () in
  (memory, l1d, l2)

let test_cpu_counts_and_cycles () =
  let _, l1d, _ = make_hierarchy () in
  let cpu = Cpu.create ~l1d () in
  Cpu.issue cpu Cpu.Int_alu;
  Cpu.issue cpu Cpu.Fp_mac;
  Cpu.issue cpu ~addr:64 Cpu.Load;
  Alcotest.(check int) "instructions" 3 (Cpu.instructions cpu);
  Alcotest.(check int) "class count" 1 (Cpu.class_count cpu Cpu.Fp_mac);
  Alcotest.(check bool) "cycles include memory latency" true (Cpu.cycles cpu > 1 + 8 + 1)

let test_cpu_load_requires_addr () =
  let _, l1d, _ = make_hierarchy () in
  let cpu = Cpu.create ~l1d () in
  Alcotest.(check bool) "load without addr raises" true
    (try
       Cpu.issue cpu Cpu.Load;
       false
     with Invalid_argument _ -> true)

let test_cpu_locality_speedup () =
  (* Streaming the same line must be much faster than striding lines. *)
  let _, l1d_a, _ = make_hierarchy () in
  let cpu_hit = Cpu.create ~l1d:l1d_a () in
  for _ = 1 to 1000 do
    Cpu.issue cpu_hit ~addr:0 Cpu.Load
  done;
  let _, l1d_b, _ = make_hierarchy () in
  let cpu_miss = Cpu.create ~l1d:l1d_b () in
  for i = 0 to 999 do
    Cpu.issue cpu_miss ~addr:(i * 4096 * 64) Cpu.Load
  done;
  Alcotest.(check bool) "cache locality visible in cycles" true
    (Cpu.cycles cpu_miss > 10 * Cpu.cycles cpu_hit)

let test_cpu_roi () =
  let _, l1d, _ = make_hierarchy () in
  let cpu = Cpu.create ~l1d () in
  Cpu.issue cpu Cpu.Int_alu;
  Cpu.roi_begin cpu;
  Cpu.issue cpu Cpu.Int_alu;
  Cpu.issue cpu Cpu.Int_alu;
  Cpu.roi_end cpu;
  Cpu.issue cpu Cpu.Int_alu;
  Cpu.roi_begin cpu;
  Cpu.issue cpu Cpu.Int_alu;
  Cpu.roi_end cpu;
  let r = Cpu.roi cpu in
  Alcotest.(check int) "roi instructions accumulate" 3 r.Cpu.roi_instructions;
  Alcotest.(check int) "roi cycles" 3 r.Cpu.roi_cycles

let test_cpu_roi_misuse () =
  let _, l1d, _ = make_hierarchy () in
  let cpu = Cpu.create ~l1d () in
  Alcotest.check_raises "end without begin" (Failure "Cpu.roi_end: no ROI window open")
    (fun () -> Cpu.roi_end cpu);
  Cpu.roi_begin cpu;
  Alcotest.check_raises "double begin" (Failure "Cpu.roi_begin: ROI window already open")
    (fun () -> Cpu.roi_begin cpu)

let test_cpu_stall () =
  let _, l1d, _ = make_hierarchy () in
  let cpu = Cpu.create ~l1d () in
  let t0 = Cpu.time_ps cpu in
  Cpu.stall_ps cpu 5000;
  Alcotest.(check int) "stall advances time" (t0 + 5000) (Cpu.time_ps cpu);
  Alcotest.(check int) "stall retires nothing" 0 (Cpu.instructions cpu)

let suites =
  [
    ( "sim.time",
      [ Alcotest.test_case "conversions" `Quick test_time_conversions ] );
    ( "sim.events",
      [
        Alcotest.test_case "time order" `Quick test_event_order;
        Alcotest.test_case "FIFO ties" `Quick test_event_same_time_fifo;
        Alcotest.test_case "cascade" `Quick test_event_cascade;
        Alcotest.test_case "run_until" `Quick test_event_run_until;
        Alcotest.test_case "no past scheduling" `Quick test_event_past_rejected;
      ] );
    ( "sim.memory",
      [
        Alcotest.test_case "byte/i32 roundtrip" `Quick test_memory_rw;
        Alcotest.test_case "f32 semantics" `Quick test_memory_f32;
        Alcotest.test_case "chunk boundary" `Quick test_memory_chunk_boundary;
        Alcotest.test_case "bounds" `Quick test_memory_bounds;
        Alcotest.test_case "burst latency" `Quick test_memory_burst_latency;
      ] );
    ( "sim.cache",
      [
        Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
        Alcotest.test_case "line granularity" `Quick test_cache_line_granularity;
        Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
        Alcotest.test_case "writeback on eviction" `Quick test_cache_writeback_on_eviction;
        Alcotest.test_case "flush (coherence)" `Quick test_cache_flush;
        QCheck_alcotest.to_alcotest qcheck_cache_latency_positive;
      ] );
    ( "sim.interconnect",
      [
        Alcotest.test_case "bus latency/traffic" `Quick test_bus_latency_and_traffic;
        Alcotest.test_case "dma roundtrip" `Quick test_dma_roundtrip;
        Alcotest.test_case "dma strided full charge" `Quick test_dma_strided_full_charge;
        Alcotest.test_case "dma charge matches read" `Quick test_dma_charge_matches_read;
        QCheck_alcotest.to_alcotest qcheck_dma_split_never_undercharges;
        Alcotest.test_case "mmio dispatch" `Quick test_mmio_dispatch;
        Alcotest.test_case "mmio overlap" `Quick test_mmio_overlap_rejected;
        Alcotest.test_case "mmio unmapped" `Quick test_mmio_unmapped;
      ] );
    ( "sim.cpu",
      [
        Alcotest.test_case "counts/cycles" `Quick test_cpu_counts_and_cycles;
        Alcotest.test_case "load needs addr" `Quick test_cpu_load_requires_addr;
        Alcotest.test_case "locality speedup" `Quick test_cpu_locality_speedup;
        Alcotest.test_case "roi windows" `Quick test_cpu_roi;
        Alcotest.test_case "roi misuse" `Quick test_cpu_roi_misuse;
        Alcotest.test_case "stall" `Quick test_cpu_stall;
      ] );
  ]

(* ---------- additional edge cases ---------- *)

let test_event_advance_to () =
  let q = Event_queue.create () in
  Event_queue.advance_to q ~time:500;
  Alcotest.(check int) "clock moved" 500 (Event_queue.now q);
  Event_queue.advance_to q ~time:100;
  Alcotest.(check int) "never backwards" 500 (Event_queue.now q);
  Alcotest.(check int) "nothing executed" 0 (Event_queue.executed q)

let test_event_executed_count () =
  let q = Event_queue.create () in
  for i = 1 to 5 do
    Event_queue.schedule q ~delay:i ~name:"e" (fun () -> ())
  done;
  Event_queue.run_all q;
  Alcotest.(check int) "five executed" 5 (Event_queue.executed q);
  Alcotest.(check bool) "empty queue run_next" false (Event_queue.run_next q)

let test_memory_access_counters () =
  let m = Memory.create () in
  Memory.write_f32 m 0 1.0;
  ignore (Memory.read_f32 m 0);
  ignore (Memory.read_bytes m 0 16);
  Alcotest.(check int) "write bytes counted" 4 (Memory.writes m);
  Alcotest.(check int) "read bytes counted" 20 (Memory.reads m)

let test_bus_transfer_count () =
  let b = Bus.create () in
  ignore (Bus.transfer b ~master:"cpu" ~bytes:64);
  ignore (Bus.transfer b ~master:"cpu" ~bytes:0);
  Alcotest.(check int) "transfers counted" 2 (Bus.transfers b);
  Alcotest.(check bool) "zero-byte transfer still arbitrates" true
    (Bus.transfer b ~master:"cpu" ~bytes:0 > 0)

let test_cache_dirty_then_reset () =
  let c = Cache.create ~next:(fun _ ~addr:_ ~bytes:_ -> 10) () in
  ignore (Cache.access c Cache.Write ~addr:0);
  ignore (Cache.access c Cache.Write ~addr:4);
  Alcotest.(check int) "same line stays one dirty line" 1 (Cache.dirty_lines c);
  Cache.reset_stats c;
  Alcotest.(check int) "stats cleared" 0 (Cache.stats c).Cache.hits;
  Alcotest.(check int) "state survives stats reset" 1 (Cache.dirty_lines c)

let test_time_roundtrip () =
  Alcotest.(check int) "ps_of_seconds inverse" 1_500_000
    (Time_base.ps_of_seconds (Time_base.seconds_of_ps 1_500_000))

let edge_suite =
  ( "sim.edges",
    [
      Alcotest.test_case "advance_to" `Quick test_event_advance_to;
      Alcotest.test_case "executed count" `Quick test_event_executed_count;
      Alcotest.test_case "memory counters" `Quick test_memory_access_counters;
      Alcotest.test_case "bus transfer count" `Quick test_bus_transfer_count;
      Alcotest.test_case "cache dirty/reset" `Quick test_cache_dirty_then_reset;
      Alcotest.test_case "time roundtrip" `Quick test_time_roundtrip;
    ] )

let suites = suites @ [ edge_suite ]
