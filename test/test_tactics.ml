open Tdo_tactics
module St = Tdo_poly.Schedule_tree
module Scop_detect = Tdo_poly.Scop_detect
module Ast = Tdo_lang.Ast
module Parser = Tdo_lang.Parser
module Interp = Tdo_lang.Interp
module Lower = Tdo_ir.Lower
module Exec = Tdo_ir.Exec
module Ir = Tdo_ir.Ir
module Platform = Tdo_runtime.Platform
module Api = Tdo_runtime.Api
module Prng = Tdo_util.Prng
module Mat = Tdo_linalg.Mat
module Blas_ref = Tdo_linalg.Blas_ref

let detect_src src = Scop_detect.detect_func (Lower.func (Parser.parse_func src))

let tree_of src =
  match detect_src src with Ok t -> t | Error e -> Alcotest.failf "detect: %s" e

let gemm_src ?(alpha = true) ?(beta = true) m n k =
  Printf.sprintf
    {|
void gemm(float alpha, float beta, float C[%d][%d], float A[%d][%d], float B[%d][%d]) {
  for (int i = 0; i < %d; i++)
    for (int j = 0; j < %d; j++) {
      %s
      for (int k = 0; k < %d; k++)
        C[i][j] += %sA[i][k] * B[k][j];
    }
}
|}
    m n m k k n m n
    (if beta then "C[i][j] *= beta;" else "C[i][j] = 0.0;")
    k
    (if alpha then "alpha * " else "")

(* ---------- matchers ---------- *)

let test_matchers_gemm_shape () =
  let tree = tree_of (gemm_src 8 6 4) in
  let pattern =
    Matchers.band ~capture:"i"
      (Matchers.band ~capture:"j"
         (Matchers.sequence
            [ Matchers.stmt ~capture:"init" (); Matchers.band ~capture:"k" (Matchers.stmt ()) ]))
  in
  match Matchers.matches pattern tree with
  | None -> Alcotest.fail "pattern should match"
  | Some capture ->
      Alcotest.(check string) "band i" "i" (Matchers.find capture "i").St.iter;
      Alcotest.(check string) "band k" "k" (Matchers.find capture "k").St.iter;
      Alcotest.(check string) "init writes C" "C"
        (Matchers.find_stmt capture "init").St.write.Tdo_poly.Access.array

let test_matchers_reject_wrong_shape () =
  let tree = tree_of (gemm_src 8 6 4) in
  let pattern = Matchers.band (Matchers.stmt ()) in
  Alcotest.(check bool) "too shallow" true (Matchers.matches pattern tree = None);
  Alcotest.(check bool) "any matches" true (Matchers.matches Matchers.any tree <> None)

(* ---------- pattern detectors ---------- *)

let test_pattern_gemm () =
  match Patterns.match_gemm (tree_of (gemm_src 8 6 4)) with
  | None -> Alcotest.fail "gemm not detected"
  | Some g ->
      Alcotest.(check string) "C" "C" g.Patterns.c_array;
      Alcotest.(check string) "A" "A" g.Patterns.a.Patterns.array;
      Alcotest.(check string) "B" "B" g.Patterns.b.Patterns.array;
      Alcotest.(check bool) "no transposes" false
        (g.Patterns.a.Patterns.trans || g.Patterns.b.Patterns.trans);
      Alcotest.(check (list int)) "dims" [ 8; 6; 4 ] [ g.Patterns.m; g.Patterns.n; g.Patterns.k ];
      Alcotest.(check bool) "alpha captured" true (g.Patterns.alpha = Ast.Var "alpha");
      Alcotest.(check bool) "beta captured" true (g.Patterns.beta = Ast.Var "beta")

let test_pattern_gemm_zero_beta () =
  match Patterns.match_gemm (tree_of (gemm_src ~alpha:false ~beta:false 4 4 4)) with
  | None -> Alcotest.fail "gemm not detected"
  | Some g ->
      Alcotest.(check bool) "beta is zero" true (g.Patterns.beta = Ast.Float_lit 0.0);
      Alcotest.(check bool) "alpha is one" true (g.Patterns.alpha = Ast.Float_lit 1.0)

let test_pattern_gemm_transposed () =
  let src =
    {|
void f(float C[6][5], float A[7][6], float B[5][7]) {
  for (int i = 0; i < 6; i++)
    for (int j = 0; j < 5; j++)
      for (int k = 0; k < 7; k++)
        C[i][j] += A[k][i] * B[j][k];
}
|}
  in
  match Patterns.match_gemm (tree_of src) with
  | None -> Alcotest.fail "transposed gemm not detected"
  | Some g ->
      Alcotest.(check bool) "A transposed" true g.Patterns.a.Patterns.trans;
      Alcotest.(check bool) "B transposed" true g.Patterns.b.Patterns.trans

let test_pattern_gemv () =
  let src =
    {|
void mv(float y[12], float A[12][9], float x[9]) {
  for (int i = 0; i < 12; i++) {
    y[i] = 0.0;
    for (int j = 0; j < 9; j++)
      y[i] += A[i][j] * x[j];
  }
}
|}
  in
  match Patterns.match_gemv (tree_of src) with
  | None -> Alcotest.fail "gemv not detected"
  | Some g ->
      Alcotest.(check string) "matrix" "A" g.Patterns.a.Patterns.array;
      Alcotest.(check string) "x" "x" g.Patterns.x_array;
      Alcotest.(check string) "y" "y" g.Patterns.y_array;
      Alcotest.(check (list int)) "dims" [ 12; 9 ] [ g.Patterns.m; g.Patterns.k ]

let test_pattern_gemv_transposed () =
  let src =
    {|
void mtv(float y[9], float A[12][9], float x[12]) {
  for (int i = 0; i < 9; i++)
    for (int j = 0; j < 12; j++)
      y[i] += A[j][i] * x[j];
}
|}
  in
  match Patterns.match_gemv (tree_of src) with
  | None -> Alcotest.fail "A^T x not detected"
  | Some g ->
      Alcotest.(check bool) "transposed" true g.Patterns.a.Patterns.trans;
      Alcotest.(check bool) "beta defaults to 1" true (g.Patterns.beta = Ast.Float_lit 1.0)

let test_pattern_conv () =
  let src =
    {|
void conv(float out[6][6], float in[8][8], float w[3][3]) {
  for (int i = 0; i < 6; i++)
    for (int j = 0; j < 6; j++) {
      out[i][j] = 0.0;
      for (int p = 0; p < 3; p++)
        for (int q = 0; q < 3; q++)
          out[i][j] += w[p][q] * in[i + p][j + q];
    }
}
|}
  in
  match Patterns.match_conv (tree_of src) with
  | None -> Alcotest.fail "conv not detected"
  | Some c ->
      Alcotest.(check string) "input" "in" c.Patterns.input;
      Alcotest.(check string) "weights" "w" c.Patterns.weights;
      Alcotest.(check (list int)) "geometry" [ 6; 6; 3; 3 ]
        [ c.Patterns.out_h; c.Patterns.out_w; c.Patterns.ker_h; c.Patterns.ker_w ];
      Alcotest.(check bool) "zero-init" false c.Patterns.accumulate

let test_pattern_rejects_stencil () =
  let src =
    {|
void blur(float out[14], float in[16]) {
  for (int i = 0; i < 14; i++)
    out[i] = in[i] + in[i + 1] + in[i + 2];
}
|}
  in
  Alcotest.(check bool) "stencil is not a CIM kernel" true
    (Patterns.classify (tree_of src) = None)

(* ---------- end-to-end pipeline ---------- *)

let small_xbar_config rows cols =
  { Offload.default_config with Offload.xbar_rows = rows; xbar_cols = cols }

let platform_with_xbar rows cols =
  let engine =
    {
      Tdo_cimacc.Micro_engine.default_config with
      Tdo_cimacc.Micro_engine.xbar =
        { Tdo_pcm.Crossbar.default_config with Tdo_pcm.Crossbar.rows; cols };
    }
  in
  Platform.create ~config:{ Platform.default_config with Platform.engine } ()

let run_both ?(config = Offload.default_config) ~xbar_rows ~xbar_cols src args_of =
  let ast = Parser.parse_func src in
  let host_f = Lower.func ast in
  let cim_f, report =
    Pipeline.run ~config:{ config with Offload.xbar_rows; xbar_cols } host_f
  in
  let run f =
    let platform = platform_with_xbar xbar_rows xbar_cols in
    let args, readback = args_of () in
    let metrics = Exec.run f ~platform ~args in
    (readback (), metrics, platform)
  in
  let host_result, host_metrics, _ = run host_f in
  let cim_result, cim_metrics, cim_platform = run cim_f in
  (host_result, cim_result, host_metrics, cim_metrics, report, cim_platform, cim_f)

let gemm_args m n k seed =
  let g = Prng.create ~seed in
  let a = Mat.random g ~rows:m ~cols:k ~lo:(-1.0) ~hi:1.0 in
  let b = Mat.random g ~rows:k ~cols:n ~lo:(-1.0) ~hi:1.0 in
  let c = Mat.random g ~rows:m ~cols:n ~lo:(-1.0) ~hi:1.0 in
  fun () ->
    let arr = Interp.arr_of_mat c in
    ( [
        ("alpha", Interp.Vfloat 1.0);
        ("beta", Interp.Vfloat 0.5);
        ("C", Interp.Varray arr);
        ("A", Interp.Varray (Interp.arr_of_mat a));
        ("B", Interp.Varray (Interp.arr_of_mat b));
      ],
      fun () -> Interp.mat_of_arr arr )

let test_pipeline_gemm_offloaded () =
  let host, cim, _, cim_metrics, report, _, cim_f =
    run_both ~xbar_rows:64 ~xbar_cols:64 (gemm_src 16 12 16) (gemm_args 16 12 16 91)
  in
  (match report with
  | None -> Alcotest.fail "scop not detected"
  | Some r ->
      Alcotest.(check int) "one kernel" 1 r.Offload.kernels_detected;
      Alcotest.(check int) "offloaded" 1 r.Offload.kernels_offloaded);
  Alcotest.(check bool) "cim calls in the IR" true (Ir.contains_cim_calls cim_f);
  Alcotest.(check bool) "device used" true cim_metrics.Exec.used_cim;
  Alcotest.(check bool) "result close to host" true (Mat.max_abs_diff host cim < 0.5)

let test_pipeline_host_unchanged_when_no_pattern () =
  let src =
    {|
void axpy(float y[32], float x[32], float a) {
  for (int i = 0; i < 32; i++)
    y[i] += a * x[i];
}
|}
  in
  let f = Lower.func (Parser.parse_func src) in
  let f', report = Pipeline.run f in
  Alcotest.(check bool) "scop detected" true (report <> None);
  Alcotest.(check int) "nothing offloaded" 0 (Option.get report).Offload.kernels_offloaded;
  Alcotest.(check bool) "no cim calls" false (Ir.contains_cim_calls f')

(* Listing 2: two GEMMs sharing A *)
let listing2_src =
  {|
void listing2(float C[16][12], float D[16][12], float A[16][16], float B[16][12], float E[16][12]) {
  for (int i = 0; i < 16; i++)
    for (int j = 0; j < 12; j++)
      for (int k = 0; k < 16; k++)
        C[i][j] += A[i][k] * B[k][j];
  for (int i = 0; i < 16; i++)
    for (int j = 0; j < 12; j++)
      for (int k = 0; k < 16; k++)
        D[i][j] += A[i][k] * E[k][j];
}
|}

let listing2_args seed =
  let g = Prng.create ~seed in
  let a = Mat.random g ~rows:16 ~cols:16 ~lo:(-1.0) ~hi:1.0 in
  let b = Mat.random g ~rows:16 ~cols:12 ~lo:(-1.0) ~hi:1.0 in
  let e = Mat.random g ~rows:16 ~cols:12 ~lo:(-1.0) ~hi:1.0 in
  fun () ->
    let c = Interp.make_array ~dims:[ 16; 12 ] in
    let d = Interp.make_array ~dims:[ 16; 12 ] in
    ( [
        ("C", Interp.Varray c);
        ("D", Interp.Varray d);
        ("A", Interp.Varray (Interp.arr_of_mat a));
        ("B", Interp.Varray (Interp.arr_of_mat b));
        ("E", Interp.Varray (Interp.arr_of_mat e));
      ],
      fun () ->
        Mat.of_arrays
          (Array.append
             (Mat.to_arrays (Interp.mat_of_arr c))
             (Mat.to_arrays (Interp.mat_of_arr d))) )

let crossbar_writes platform =
  (Tdo_pcm.Crossbar.counters
     (Tdo_cimacc.Micro_engine.crossbar (Tdo_cimacc.Accel.engine platform.Platform.accel)))
    .Tdo_pcm.Crossbar.logical_writes

let test_pipeline_fusion_listing2 () =
  let host, cim, _, _, report, cim_platform, _ =
    run_both ~xbar_rows:64 ~xbar_cols:64 listing2_src (listing2_args 92)
  in
  (match report with
  | None -> Alcotest.fail "scop not detected"
  | Some r ->
      Alcotest.(check int) "two kernels detected" 2 r.Offload.kernels_detected;
      Alcotest.(check int) "one fused group" 1 r.Offload.fused_groups);
  Alcotest.(check bool) "results match host" true (Mat.max_abs_diff host cim < 0.5);
  (* smart mapping: A (16x16) written once; B and E streamed *)
  Alcotest.(check int) "A written exactly once" (16 * 16) (crossbar_writes cim_platform)

let test_pipeline_fusion_naive_ablation () =
  let _, _, _, _, _, naive_platform, _ =
    run_both
      ~config:{ Offload.default_config with Offload.naive_pin = true }
      ~xbar_rows:64 ~xbar_cols:64 listing2_src (listing2_args 92)
  in
  (* naive mapping: B and E each written once *)
  Alcotest.(check int) "naive writes B and E" (2 * 16 * 12) (crossbar_writes naive_platform)

let test_pipeline_fusion_respects_dependences () =
  let src =
    {|
void chained(float C[8][8], float D[8][8], float A[8][8], float B[8][8]) {
  for (int i = 0; i < 8; i++)
    for (int j = 0; j < 8; j++)
      for (int k = 0; k < 8; k++)
        C[i][j] += A[i][k] * B[k][j];
  for (int i = 0; i < 8; i++)
    for (int j = 0; j < 8; j++)
      for (int k = 0; k < 8; k++)
        D[i][j] += C[i][k] * B[k][j];
}
|}
  in
  let f = Lower.func (Parser.parse_func src) in
  let _, report = Pipeline.run f in
  match report with
  | None -> Alcotest.fail "scop not detected"
  | Some r ->
      Alcotest.(check int) "both offloaded" 2 r.Offload.kernels_offloaded;
      Alcotest.(check int) "no fusion across the dependence" 0 r.Offload.fused_groups

(* Listing 3: tiling for an oversized GEMM *)
let test_pipeline_tiling_listing3 () =
  let m = 32 and n = 8 and k = 32 in
  let host, cim, _, cim_metrics, report, _, _ =
    run_both ~xbar_rows:16 ~xbar_cols:16
      (gemm_src ~alpha:false ~beta:false m n k)
      (gemm_args m n k 93)
  in
  (match report with
  | None -> Alcotest.fail "scop not detected"
  | Some r -> Alcotest.(check int) "tiled" 1 r.Offload.tiled_kernels);
  Alcotest.(check bool) "tiled result matches host" true (Mat.max_abs_diff host cim < 1.0);
  (* 2 ii-tiles x 2 k-tiles = 4 launches *)
  Alcotest.(check int) "one launch per tile" 4 cim_metrics.Exec.cim_launches

let test_pipeline_selective_skips_gemv () =
  let src =
    {|
void mv(float y[24], float A[24][24], float x[24]) {
  for (int i = 0; i < 24; i++) {
    y[i] = 0.0;
    for (int j = 0; j < 24; j++)
      y[i] += A[i][j] * x[j];
  }
}
|}
  in
  let f = Lower.func (Parser.parse_func src) in
  let config = { Offload.default_config with Offload.min_intensity = Some 100.0 } in
  let f', report = Pipeline.run ~config f in
  (match report with
  | None -> Alcotest.fail "scop not detected"
  | Some r -> Alcotest.(check int) "skipped" 1 r.Offload.skipped_low_intensity);
  Alcotest.(check bool) "stays on the host" false (Ir.contains_cim_calls f')

let test_pipeline_fused_group_intensity () =
  (* two GEMMs sharing A: fused intensity = 2*16^3 / (16*16) = 32
     MACs/write (A programmed once for the batch); each member alone
     only reaches 16. A threshold between the two must keep the fused
     batch on the device and, with fusion disabled, skip both. *)
  let src =
    {|
void pair(float C[16][16], float D[16][16], float A[16][16], float B[16][16], float E[16][16]) {
  for (int i = 0; i < 16; i++)
    for (int j = 0; j < 16; j++)
      for (int k = 0; k < 16; k++)
        C[i][j] += A[i][k] * B[k][j];
  for (int i = 0; i < 16; i++)
    for (int j = 0; j < 16; j++)
      for (int k = 0; k < 16; k++)
        D[i][j] += A[i][k] * E[k][j];
}
|}
  in
  let f = Lower.func (Parser.parse_func src) in
  let threshold = Some 20.0 in
  let fused_cfg = { Offload.default_config with Offload.min_intensity = threshold } in
  let f_fused, report_fused = Pipeline.run ~config:fused_cfg f in
  (match report_fused with
  | None -> Alcotest.fail "scop not detected"
  | Some r ->
      Alcotest.(check int) "batch clears the threshold" 0 r.Offload.skipped_low_intensity;
      Alcotest.(check int) "both offloaded" 2 r.Offload.kernels_offloaded;
      Alcotest.(check int) "as one batch" 1 r.Offload.fused_groups);
  Alcotest.(check bool) "device used when fused" true (Ir.contains_cim_calls f_fused);
  let solo_cfg = { fused_cfg with Offload.enable_fusion = false } in
  let f_solo, report_solo = Pipeline.run ~config:solo_cfg f in
  (match report_solo with
  | None -> Alcotest.fail "scop not detected"
  | Some r ->
      Alcotest.(check int) "members alone are skipped" 2 r.Offload.skipped_low_intensity;
      Alcotest.(check int) "nothing offloaded" 0 r.Offload.kernels_offloaded);
  Alcotest.(check bool) "stays on the host unfused" false (Ir.contains_cim_calls f_solo)

let test_pipeline_2mm_dataflow () =
  (* tmp = A*B; D = tmp*C: dependent kernels, both offloaded, tmp must
     stay consistent between them *)
  let src =
    {|
void two_mm(float tmp[12][12], float D[12][12], float A[12][12], float B[12][12], float C[12][12]) {
  for (int i = 0; i < 12; i++)
    for (int j = 0; j < 12; j++) {
      tmp[i][j] = 0.0;
      for (int k = 0; k < 12; k++)
        tmp[i][j] += A[i][k] * B[k][j];
    }
  for (int i = 0; i < 12; i++)
    for (int j = 0; j < 12; j++) {
      D[i][j] = 0.0;
      for (int k = 0; k < 12; k++)
        D[i][j] += tmp[i][k] * C[k][j];
    }
}
|}
  in
  let g = Prng.create ~seed:94 in
  let a = Mat.random g ~rows:12 ~cols:12 ~lo:(-1.0) ~hi:1.0 in
  let b = Mat.random g ~rows:12 ~cols:12 ~lo:(-1.0) ~hi:1.0 in
  let c = Mat.random g ~rows:12 ~cols:12 ~lo:(-1.0) ~hi:1.0 in
  let args () =
    let tmp = Interp.make_array ~dims:[ 12; 12 ] in
    let d = Interp.make_array ~dims:[ 12; 12 ] in
    ( [
        ("tmp", Interp.Varray tmp);
        ("D", Interp.Varray d);
        ("A", Interp.Varray (Interp.arr_of_mat a));
        ("B", Interp.Varray (Interp.arr_of_mat b));
        ("C", Interp.Varray (Interp.arr_of_mat c));
      ],
      fun () -> Interp.mat_of_arr d )
  in
  let host, cim, _, cim_metrics, report, _, _ =
    run_both ~xbar_rows:64 ~xbar_cols:64 src args
  in
  (match report with
  | None -> Alcotest.fail "scop not detected"
  | Some r -> Alcotest.(check int) "both kernels offloaded" 2 r.Offload.kernels_offloaded);
  Alcotest.(check int) "two launches" 2 cim_metrics.Exec.cim_launches;
  Alcotest.(check bool) "2mm result close" true (Mat.max_abs_diff host cim < 1.0)

let test_pipeline_conv_offloaded () =
  let src =
    {|
void conv(float out[14][14], float in[16][16], float w[3][3]) {
  for (int i = 0; i < 14; i++)
    for (int j = 0; j < 14; j++) {
      out[i][j] = 0.0;
      for (int p = 0; p < 3; p++)
        for (int q = 0; q < 3; q++)
          out[i][j] += w[p][q] * in[i + p][j + q];
    }
}
|}
  in
  let g = Prng.create ~seed:95 in
  let input = Mat.random g ~rows:16 ~cols:16 ~lo:(-1.0) ~hi:1.0 in
  let w = Mat.random g ~rows:3 ~cols:3 ~lo:(-1.0) ~hi:1.0 in
  let args () =
    let out = Interp.make_array ~dims:[ 14; 14 ] in
    ( [
        ("out", Interp.Varray out);
        ("in", Interp.Varray (Interp.arr_of_mat input));
        ("w", Interp.Varray (Interp.arr_of_mat w));
      ],
      fun () -> Interp.mat_of_arr out )
  in
  let host, cim, _, cim_metrics, report, _, _ =
    run_both ~xbar_rows:64 ~xbar_cols:64 src args
  in
  (match report with
  | None -> Alcotest.fail "scop not detected"
  | Some r -> Alcotest.(check int) "conv offloaded" 1 r.Offload.kernels_offloaded);
  Alcotest.(check bool) "device used" true cim_metrics.Exec.used_cim;
  Alcotest.(check bool) "conv result matches host" true (Mat.max_abs_diff host cim < 0.3);
  (* sanity against the direct reference too *)
  let expected = Blas_ref.conv2d ~input ~kernel:w in
  Alcotest.(check bool) "conv result matches reference" true
    (Mat.max_abs_diff expected cim < 0.3)

let qcheck_pipeline_preserves_semantics =
  QCheck.Test.make ~name:"pipeline preserves gemm semantics across shapes" ~count:10
    QCheck.small_int (fun seed ->
      let g = Prng.create ~seed:(seed + 4000) in
      let m = 4 + Prng.int g ~bound:12
      and n = 4 + Prng.int g ~bound:12
      and k = 4 + Prng.int g ~bound:12 in
      let host, cim, _, _, _, _, _ =
        run_both ~xbar_rows:32 ~xbar_cols:32 (gemm_src m n k) (gemm_args m n k (seed + 5000))
      in
      Mat.max_abs_diff host cim < 1.0)

let suites =
  [
    ( "tactics.matchers",
      [
        Alcotest.test_case "gemm shape" `Quick test_matchers_gemm_shape;
        Alcotest.test_case "rejects wrong shape" `Quick test_matchers_reject_wrong_shape;
      ] );
    ( "tactics.patterns",
      [
        Alcotest.test_case "gemm" `Quick test_pattern_gemm;
        Alcotest.test_case "gemm zero beta" `Quick test_pattern_gemm_zero_beta;
        Alcotest.test_case "gemm transposed" `Quick test_pattern_gemm_transposed;
        Alcotest.test_case "gemv" `Quick test_pattern_gemv;
        Alcotest.test_case "gemv transposed" `Quick test_pattern_gemv_transposed;
        Alcotest.test_case "conv" `Quick test_pattern_conv;
        Alcotest.test_case "rejects stencil" `Quick test_pattern_rejects_stencil;
      ] );
    ( "tactics.pipeline",
      [
        Alcotest.test_case "gemm offloaded" `Quick test_pipeline_gemm_offloaded;
        Alcotest.test_case "no pattern, no change" `Quick test_pipeline_host_unchanged_when_no_pattern;
        Alcotest.test_case "fusion (Listing 2)" `Quick test_pipeline_fusion_listing2;
        Alcotest.test_case "naive mapping ablation" `Quick test_pipeline_fusion_naive_ablation;
        Alcotest.test_case "fusion respects dependences" `Quick
          test_pipeline_fusion_respects_dependences;
        Alcotest.test_case "tiling (Listing 3)" `Quick test_pipeline_tiling_listing3;
        Alcotest.test_case "selective offload" `Quick test_pipeline_selective_skips_gemv;
        Alcotest.test_case "fused-group intensity" `Quick test_pipeline_fused_group_intensity;
        Alcotest.test_case "2mm dataflow" `Quick test_pipeline_2mm_dataflow;
        Alcotest.test_case "conv via im2col" `Quick test_pipeline_conv_offloaded;
        QCheck_alcotest.to_alcotest qcheck_pipeline_preserves_semantics;
      ] );
  ]

(* ---------- canonicalisation & interchange ---------- *)

let test_canonical_x_eq_x_plus_e () =
  (* PolyBench variants write the update as C = C + ... *)
  let src =
    {|
void gemm(float C[16][12], float A[16][16], float B[16][12]) {
  for (int i = 0; i < 16; i++)
    for (int j = 0; j < 12; j++)
      for (int k = 0; k < 16; k++)
        C[i][j] = C[i][j] + A[i][k] * B[k][j];
}
|}
  in
  let f = Lower.func (Parser.parse_func src) in
  let f', report = Pipeline.run f in
  (match report with
  | None -> Alcotest.fail "scop not detected"
  | Some r -> Alcotest.(check int) "offloaded" 1 r.Offload.kernels_offloaded);
  Alcotest.(check bool) "cim calls emitted" true (Ir.contains_cim_calls f')

let test_canonical_beta_form () =
  let src =
    {|
void gemm(float beta, float C[8][8], float A[8][8], float B[8][8]) {
  for (int i = 0; i < 8; i++)
    for (int j = 0; j < 8; j++) {
      C[i][j] = beta * C[i][j];
      for (int k = 0; k < 8; k++)
        C[i][j] = C[i][j] + A[i][k] * B[k][j];
    }
}
|}
  in
  match Patterns.match_gemm (tree_of src) with
  | None -> Alcotest.fail "canonicalised gemm not detected"
  | Some g -> Alcotest.(check bool) "beta captured" true (g.Patterns.beta = Ast.Var "beta")

let test_interchange_normalisation_kji () =
  (* the reduction loop outermost: only legal interchange exposes the
     GEMM pattern *)
  let src =
    {|
void gemm(float C[12][10], float A[12][8], float B[8][10]) {
  for (int k = 0; k < 8; k++)
    for (int j = 0; j < 10; j++)
      for (int i = 0; i < 12; i++)
        C[i][j] += A[i][k] * B[k][j];
}
|}
  in
  Alcotest.(check bool) "not matched as written" true
    (Patterns.match_gemm (tree_of src) = None);
  let f = Lower.func (Parser.parse_func src) in
  let f', report = Pipeline.run f in
  (match report with
  | None -> Alcotest.fail "scop not detected"
  | Some r -> Alcotest.(check int) "offloaded after interchange" 1 r.Offload.kernels_offloaded);
  Alcotest.(check bool) "cim calls emitted" true (Ir.contains_cim_calls f')

let test_interchange_kji_semantics () =
  let src =
    {|
void gemm(float C[12][10], float A[12][8], float B[8][10]) {
  for (int k = 0; k < 8; k++)
    for (int j = 0; j < 10; j++)
      for (int i = 0; i < 12; i++)
        C[i][j] += A[i][k] * B[k][j];
}
|}
  in
  let g = Prng.create ~seed:97 in
  let a = Mat.random g ~rows:12 ~cols:8 ~lo:(-1.0) ~hi:1.0 in
  let b = Mat.random g ~rows:8 ~cols:10 ~lo:(-1.0) ~hi:1.0 in
  let args () =
    let c = Interp.make_array ~dims:[ 12; 10 ] in
    ( [
        ("C", Interp.Varray c);
        ("A", Interp.Varray (Interp.arr_of_mat a));
        ("B", Interp.Varray (Interp.arr_of_mat b));
      ],
      fun () -> Interp.mat_of_arr c )
  in
  let host, cim, _, cim_metrics, _, _, _ = run_both ~xbar_rows:32 ~xbar_cols:32 src args in
  Alcotest.(check bool) "offloaded" true cim_metrics.Exec.used_cim;
  Alcotest.(check bool) "results agree" true (Mat.max_abs_diff host cim < 0.3)

let test_interchange_rejects_order_sensitive () =
  (* a Set-statement whose write does not cover all iterators: the last
     j wins, so permuting loops would change the result; the detector
     must not match it via interchange *)
  let src =
    {|
void last_wins(float y[8], float A[8][8]) {
  for (int j = 0; j < 8; j++)
    for (int i = 0; i < 8; i++)
      y[i] = A[i][j];
}
|}
  in
  let tree = tree_of src in
  Alcotest.(check int) "no permutation candidates" 1
    (List.length (Transform.interchange_candidates tree));
  let f = Lower.func (Parser.parse_func src) in
  let f', _ = Pipeline.run f in
  Alcotest.(check bool) "stays on host" false (Ir.contains_cim_calls f')

let test_transform_interchange_api () =
  let tree = tree_of
    {|
void f(float C[4][4], float A[4][4], float B[4][4]) {
  for (int i = 0; i < 4; i++)
    for (int j = 0; j < 4; j++)
      for (int k = 0; k < 4; k++)
        C[i][j] += A[i][k] * B[k][j];
}
|}
  in
  (match Transform.interchange tree ~outer:"j" ~inner:"k" with
  | None -> Alcotest.fail "legal swap refused"
  | Some (St.Band (b1, St.Band (b2, St.Band (b3, _)))) ->
      Alcotest.(check (list string)) "i k j order" [ "i"; "k"; "j" ]
        [ b1.St.iter; b2.St.iter; b3.St.iter ]
  | Some _ -> Alcotest.fail "unexpected shape");
  Alcotest.(check bool) "non-adjacent swap refused" true
    (Transform.interchange tree ~outer:"i" ~inner:"k" = None);
  (* 3 bands, accumulation: 3! = 6 candidates *)
  Alcotest.(check int) "all permutations enumerated" 6
    (List.length (Transform.interchange_candidates tree))

let canonical_suite =
  ( "tactics.canonical",
    [
      Alcotest.test_case "X = X + e form" `Quick test_canonical_x_eq_x_plus_e;
      Alcotest.test_case "X = beta*X form" `Quick test_canonical_beta_form;
      Alcotest.test_case "kji gemm detected" `Quick test_interchange_normalisation_kji;
      Alcotest.test_case "kji gemm semantics" `Quick test_interchange_kji_semantics;
      Alcotest.test_case "order-sensitive rejected" `Quick test_interchange_rejects_order_sensitive;
      Alcotest.test_case "interchange api" `Quick test_transform_interchange_api;
    ] )

let suites = suites @ [ canonical_suite ]

(* ---------- scalar factor forms ---------- *)

let test_pattern_alpha_product () =
  let src =
    {|
void f(float alpha, float C[8][8], float A[8][8], float B[8][8]) {
  for (int i = 0; i < 8; i++)
    for (int j = 0; j < 8; j++)
      for (int k = 0; k < 8; k++)
        C[i][j] += 2.0 * alpha * A[i][k] * B[k][j];
}
|}
  in
  match Patterns.match_gemm (tree_of src) with
  | None -> Alcotest.fail "gemm with composite scalar factor not detected"
  | Some g -> (
      (* alpha must be the product of both scalar factors *)
      match g.Patterns.alpha with
      | Ast.Binop (Ast.Mul, Ast.Float_lit 2.0, Ast.Var "alpha") -> ()
      | other -> Alcotest.failf "unexpected alpha: %s" (Format.asprintf "%a" Ast.pp_expr other))

let test_pattern_alpha_product_semantics () =
  let src =
    {|
void f(float alpha, float C[8][8], float A[8][8], float B[8][8]) {
  for (int i = 0; i < 8; i++)
    for (int j = 0; j < 8; j++)
      for (int k = 0; k < 8; k++)
        C[i][j] += 2.0 * alpha * A[i][k] * B[k][j];
}
|}
  in
  let g = Prng.create ~seed:98 in
  let a = Mat.random g ~rows:8 ~cols:8 ~lo:(-1.0) ~hi:1.0 in
  let b = Mat.random g ~rows:8 ~cols:8 ~lo:(-1.0) ~hi:1.0 in
  let args () =
    let c = Interp.make_array ~dims:[ 8; 8 ] in
    ( [
        ("alpha", Interp.Vfloat 0.75);
        ("C", Interp.Varray c);
        ("A", Interp.Varray (Interp.arr_of_mat a));
        ("B", Interp.Varray (Interp.arr_of_mat b));
      ],
      fun () -> Interp.mat_of_arr c )
  in
  let host, cim, _, cim_metrics, _, _, _ = run_both ~xbar_rows:32 ~xbar_cols:32 src args in
  Alcotest.(check bool) "offloaded" true cim_metrics.Exec.used_cim;
  Alcotest.(check bool) "scalar product applied on the device" true
    (Mat.max_abs_diff host cim < 0.3)

let scalar_suite =
  ( "tactics.scalars",
    [
      Alcotest.test_case "composite alpha detected" `Quick test_pattern_alpha_product;
      Alcotest.test_case "composite alpha semantics" `Quick test_pattern_alpha_product_semantics;
    ] )

let suites = suites @ [ scalar_suite ]
