open Tdo_analysis
module St = Tdo_poly.Schedule_tree
module Scop_detect = Tdo_poly.Scop_detect
module Affine = Tdo_poly.Affine
module Ast = Tdo_lang.Ast
module Parser = Tdo_lang.Parser
module Builder = Tdo_lang.Builder
module Lower = Tdo_ir.Lower
module Ir = Tdo_ir.Ir
module Pipeline = Tdo_tactics.Pipeline
module Offload = Tdo_tactics.Offload
module Flow = Tdo_cim.Flow
module Workloads = Tdo_cim.Workloads
module Kernels = Tdo_polybench.Kernels

let lower src = Lower.func (Parser.parse_func src)

let tree_of src =
  match Scop_detect.detect_func (lower src) with
  | Ok t -> t
  | Error e -> Alcotest.failf "detect: %s" e

let codes ds = List.sort_uniq compare (List.map (fun (d : Diag.t) -> d.Diag.code) ds)

let has_code c ds = List.exists (fun (d : Diag.t) -> String.equal d.Diag.code c) ds

let message_with c ds =
  match List.find_opt (fun (d : Diag.t) -> String.equal d.Diag.code c) ds with
  | Some d -> d.Diag.message
  | None -> Alcotest.failf "no %s diagnostic in [%s]" c (String.concat "; " (codes ds))

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let check_mentions what msg needles =
  List.iter
    (fun needle ->
      Alcotest.(check bool) (what ^ " mentions " ^ needle) true (contains msg needle))
    needles

let gemm_src n =
  Printf.sprintf
    {|
void gemm(float alpha, float beta, float C[%d][%d], float A[%d][%d], float B[%d][%d]) {
  for (int i = 0; i < %d; i++)
    for (int j = 0; j < %d; j++) {
      C[i][j] *= beta;
      for (int k = 0; k < %d; k++)
        C[i][j] += alpha * A[i][k] * B[k][j];
    }
}
|}
    n n n n n n n n n

(* ---------- Verify: IR well-formedness ---------- *)

let test_verify_clean_gemm () =
  Alcotest.(check (list string)) "no diagnostics" [] (codes (Verify.func (lower (gemm_src 8))))

let test_verify_undefined_names () =
  let f =
    {
      Ir.name = "bad";
      params = [];
      body =
        [
          Ir.Assign
            {
              lhs = { Ast.base = "A"; indices = [ Ast.Var "i" ] };
              op = Ast.Set;
              rhs = Ast.Binop (Ast.Add, Ast.Var "x", Ast.Index ("B", [ Ast.Int_lit 0 ]));
            };
        ];
    }
  in
  let ds = Verify.func f in
  Alcotest.(check bool) "undefined lhs array" true (has_code "E001" ds);
  Alcotest.(check bool) "undefined rhs array" true (has_code "E002" ds)

let test_verify_structure () =
  let f =
    {
      Ir.name = "bad";
      params = [ { Ast.pname = "A"; ptyp = Ast.Tfloat; dims = [ 4 ] } ];
      body =
        [
          Ir.For
            {
              var = "i";
              lo = Ast.Int_lit 0;
              hi = Ast.Int_lit 4;
              step = 0;
              body =
                [
                  Ir.Roi_begin;
                  Ir.Assign
                    {
                      lhs = { Ast.base = "A"; indices = [ Ast.Var "i"; Ast.Var "i" ] };
                      op = Ast.Set;
                      rhs = Ast.Float_lit 0.0;
                    };
                ];
            };
        ];
    }
  in
  let ds = Verify.func f in
  Alcotest.(check bool) "non-positive step" true (has_code "E006" ds);
  Alcotest.(check bool) "roi in loop" true (has_code "E008" ds);
  Alcotest.(check bool) "rank mismatch" true (has_code "E003" ds)

let dummy_ref array rows cols =
  { Ir.array; row_off = Ast.Int_lit 0; col_off = Ast.Int_lit 0; rows; cols; trans = false }

let test_verify_call_signature () =
  let params =
    List.map
      (fun name -> { Ast.pname = name; ptyp = Ast.Tfloat; dims = [ 4; 4 ] })
      [ "A"; "B"; "C" ]
  in
  let gemm ~m ~n ~k a b c =
    Ir.Call
      (Ir.Cim_gemm
         { m; n; k; alpha = Ast.Float_lit 1.0; beta = Ast.Float_lit 0.0; a; b; c; pin = Ir.Pin_a })
  in
  let alloc arr = Ir.Call (Ir.Cim_alloc { array = arr }) in
  (* shape of B inconsistent with k x n *)
  let bad_shape =
    {
      Ir.name = "bad";
      params;
      body =
        [
          Ir.Call Ir.Cim_init;
          alloc "A";
          alloc "B";
          alloc "C";
          gemm ~m:4 ~n:4 ~k:4 (dummy_ref "A" 4 4) (dummy_ref "B" 2 4) (dummy_ref "C" 4 4);
        ];
    }
  in
  let ds = Verify.func bad_shape in
  Alcotest.(check bool) "operand shape" true (has_code "E009" ds);
  check_mentions "E009" (message_with "E009" ds) [ "polly_cimBlasSGemm"; "'B'"; "2x4"; "4x4" ]

let test_verify_device_state () =
  let params = [ { Ast.pname = "A"; ptyp = Ast.Tfloat; dims = [ 4; 4 ] } ] in
  let use_before_init =
    { Ir.name = "f"; params; body = [ Ir.Call (Ir.Cim_alloc { array = "A" }) ] }
  in
  Alcotest.(check bool) "alloc before init" true (has_code "E010" (Verify.func use_before_init));
  let use_after_free =
    {
      Ir.name = "f";
      params;
      body =
        [
          Ir.Call Ir.Cim_init;
          Ir.Call (Ir.Cim_alloc { array = "A" });
          Ir.Call (Ir.Cim_free { array = "A" });
          Ir.Call (Ir.Cim_h2d { array = "A" });
        ];
    }
  in
  let ds = Verify.func use_after_free in
  Alcotest.(check bool) "use after free" true (has_code "E010" ds);
  check_mentions "E010" (message_with "E010" ds) [ "'A'"; "polly_cimFree" ];
  let no_malloc =
    { Ir.name = "f"; params; body = [ Ir.Call Ir.Cim_init; Ir.Call (Ir.Cim_h2d { array = "A" }) ] }
  in
  Alcotest.(check bool) "transfer without malloc" true (has_code "E010" (Verify.func no_malloc))

let test_verify_tree_invariants () =
  let tree = tree_of (gemm_src 6) in
  Alcotest.(check (list string)) "gemm tree clean" []
    (codes (Verify.tree ~free:[ "alpha"; "beta" ] tree));
  (* duplicate a statement id by self-appending the top sequence *)
  let dup = match tree with St.Seq _ -> St.Seq [ tree; tree ] | t -> St.Seq [ t; t ] in
  Alcotest.(check bool) "duplicate sids" true
    (has_code "E053" (Verify.tree ~free:[ "alpha"; "beta" ] dup));
  (* alpha/beta unbound when not declared free *)
  Alcotest.(check bool) "unbound rhs var" true (has_code "E056" (Verify.tree tree))

(* ---------- Legality: statement level ---------- *)

let swap_outer_two = function
  | St.Band (b1, St.Band (b2, child)) -> St.Band (b2, St.Band (b1, child))
  | t -> Alcotest.failf "not a 2-deep nest: %a" St.pp t

let test_legality_accumulation_interchange_ok () =
  (* pure accumulation tolerates instance reordering *)
  let src =
    {|
void acc(float C[6][6], float A[6][6], float B[6][6]) {
  for (int i = 0; i < 6; i++)
    for (int k = 0; k < 6; k++)
      C[i][0] += A[i][k] * B[k][0];
}
|}
  in
  let before = tree_of src in
  let after = swap_outer_two before in
  Alcotest.(check (list string)) "no errors" []
    (codes (Legality.check_stmt_level ~before ~after))

let test_legality_illegal_interchange () =
  (* distance vector (1, -1): legal as written, reversed by the swap *)
  let src =
    {|
void wave(float A[8][8]) {
  for (int i = 1; i < 8; i++)
    for (int j = 0; j < 7; j++)
      A[i][j] = A[i-1][j+1];
}
|}
  in
  let before = tree_of src in
  let after = swap_outer_two before in
  let ds = Legality.check_stmt_level ~before ~after in
  Alcotest.(check bool) "E101 raised" true (has_code "E101" ds);
  check_mentions "E101" (message_with "E101" ds) [ "'A'" ]

let test_legality_dropped_and_reordered () =
  let src =
    {|
void two(float A[6], float B[6]) {
  for (int i = 0; i < 6; i++)
    A[i] = 1.0;
  for (int i = 0; i < 6; i++)
    B[i] = A[i] + 1.0;
}
|}
  in
  let before = tree_of src in
  match before with
  | St.Seq ([ producer; _consumer ] as children) ->
      let ds = Legality.check_stmt_level ~before ~after:producer in
      Alcotest.(check bool) "dropped statement" true (has_code "E103" ds);
      (* the second loop reads what the first writes: swapping them
         breaks the flow dependence on A *)
      let ds = Legality.check_stmt_level ~before ~after:(St.Seq (List.rev children)) in
      Alcotest.(check bool) "reordered dependents" true (has_code "E101" ds);
      check_mentions "E101" (message_with "E101" ds) [ "'A'" ]
  | t -> Alcotest.failf "expected a two-segment sequence: %a" St.pp t

(* ---------- Legality: dataflow level ---------- *)

let test_legality_offload_rewrite_ok () =
  let before = tree_of (gemm_src 8) in
  let after, _report = Offload.apply Offload.default_config before in
  Alcotest.(check bool) "code emitted" true (St.contains_code after);
  Alcotest.(check (list string)) "dataflow preserved" []
    (codes (Diag.errors (Legality.check ~before ~after)))

let test_legality_lost_write () =
  let before = tree_of (gemm_src 8) in
  let ds = Legality.check ~before ~after:(St.Code [ Ir.Call Ir.Cim_init ]) in
  Alcotest.(check bool) "lost write to C" true (has_code "E106" ds);
  check_mentions "E106" (message_with "E106" ds) [ "'C'" ]

let test_legality_illegal_fusion () =
  (* D = C * E depends on C = A * B: batching both into one parallel
     launch is the paper's illegal-fusion case *)
  let src =
    {|
void chain(float C[8][8], float D[8][8], float A[8][8], float B[8][8], float E[8][8]) {
  for (int i = 0; i < 8; i++)
    for (int j = 0; j < 8; j++) {
      C[i][j] = 0.0;
      for (int k = 0; k < 8; k++)
        C[i][j] += A[i][k] * B[k][j];
    }
  for (int i = 0; i < 8; i++)
    for (int j = 0; j < 8; j++) {
      D[i][j] = 0.0;
      for (int k = 0; k < 8; k++)
        D[i][j] += C[i][k] * E[k][j];
    }
}
|}
  in
  let before = tree_of src in
  let whole a = Ir.mat_ref_whole ~array:a ~rows:8 ~cols:8 () in
  let after =
    St.Code
      [
        Ir.Call Ir.Cim_init;
        Ir.Call
          (Ir.Cim_gemm_batched
             {
               m = 8;
               n = 8;
               k = 8;
               alpha = Ast.Float_lit 1.0;
               beta = Ast.Float_lit 0.0;
               batch = [ (whole "A", whole "B", whole "C"); (whole "C", whole "E", whole "D") ];
               pin = Ir.Pin_a;
             });
      ]
  in
  let ds = Legality.check ~before ~after in
  Alcotest.(check bool) "E102 raised" true (has_code "E102" ds);
  check_mentions "E102" (message_with "E102" ds) [ "'C'" ];
  (* and the real pipeline never emits that batch: the two kernels are
     dependent, so fusion must keep them as separate launches *)
  let legal, _ = Offload.apply Offload.default_config before in
  Alcotest.(check (list string)) "pipeline stays legal" []
    (codes (Diag.errors (Legality.check ~before ~after:legal)))

(* ---------- Bounds ---------- *)

let test_bounds_overflow_witness () =
  let src =
    {|
void oob(float B[8][8], float A[8][8]) {
  for (int i = 0; i < 8; i++)
    for (int j = 0; j < 8; j++)
      B[i][j] = A[i+1][j];
}
|}
  in
  let ds = Bounds.func (lower src) in
  Alcotest.(check bool) "E201 raised" true (has_code "E201" ds);
  check_mentions "E201" (message_with "E201" ds) [ "'A'"; "i = 7"; "reaches 8" ]

let test_bounds_underflow_witness () =
  let src =
    {|
void oob(float B[8], float A[8]) {
  for (int i = 0; i < 8; i++)
    B[i] = A[i-2];
}
|}
  in
  let ds = Bounds.func (lower src) in
  Alcotest.(check bool) "E202 raised" true (has_code "E202" ds);
  check_mentions "E202" (message_with "E202" ds) [ "'A'"; "i = 0"; "-2" ]

let test_bounds_clean_kernels () =
  Alcotest.(check (list string)) "gemm in bounds" [] (codes (Bounds.func (lower (gemm_src 8))));
  let f, _ = Flow.compile ~options:Flow.o3_loop_tactics (gemm_src 8) in
  Alcotest.(check (list string)) "offloaded gemm in bounds" [] (codes (Bounds.func f))

(* ---------- Lint ---------- *)

let gemv_src =
  {|
void gemv(float alpha, float y[40], float A[40][40], float x[40]) {
  for (int i = 0; i < 40; i++) {
    y[i] = 0.0;
    for (int j = 0; j < 40; j++)
      y[i] += alpha * A[i][j] * x[j];
  }
}
|}

let test_lint_low_intensity () =
  let ds = Lint.run (lower gemv_src) in
  Alcotest.(check bool) "W001 raised" true (has_code "W001" ds);
  check_mentions "W001" (message_with "W001" ds) [ "'y'"; "'A'" ];
  Alcotest.(check bool) "gemm not flagged" false (has_code "W001" (Lint.run (lower (gemm_src 24))))

let test_lint_dead_and_unused () =
  let src =
    {|
void f(float A[4], float unused_param[4]) {
  float dead[4];
  float never[4];
  for (int i = 0; i < 4; i++) {
    A[i] = 1.0;
    dead[i] = 2.0;
  }
}
|}
  in
  let ds = Lint.func (lower src) in
  Alcotest.(check bool) "dead store" true (has_code "W004" ds);
  check_mentions "W004" (message_with "W004" ds) [ "'dead'" ];
  Alcotest.(check bool) "unused arrays" true (has_code "W005" ds);
  (* the output parameter A is written: neither dead (observable) nor unused *)
  List.iter
    (fun (d : Diag.t) ->
      Alcotest.(check bool) ("no diagnostic names A: " ^ d.Diag.message) false
        (contains d.Diag.message "'A'"))
    ds

let test_lint_explains_scop_failure () =
  let src =
    {|
void f(float A[4][4], float s) {
  for (int i = 0; i < 4; i++)
    for (int j = 0; j < 4; j++)
      s = A[i][j];
}
|}
  in
  let ds = Lint.run (lower src) in
  Alcotest.(check bool) "N001 raised" true (has_code "N001" ds);
  check_mentions "N001" (message_with "N001" ds) [ "scalar write" ]

let test_lint_endurance_budget () =
  (* a crossbar-sized pinned operand re-programmed once per execution
     at 1 Hz exhausts a 1e7-write endurance budget within a year *)
  let ds = Lint.run (lower (Workloads.gemm_source ~n:512)) in
  Alcotest.(check bool) "W003 raised" true (has_code "W003" ds);
  check_mentions "W003" (message_with "W003" ds) [ "Eq. 1" ]

let test_lint_unguarded_faulty_offload () =
  let faulty = { Lint.default_config with Lint.fault_rate = 1e-3 } in
  let ds = Lint.run ~config:faulty (lower (gemm_src 24)) in
  Alcotest.(check bool) "W006 raised" true (has_code "W006" ds);
  check_mentions "W006" (message_with "W006" ds) [ "ABFT" ];
  let guarded = { faulty with Lint.abft_guard = true } in
  Alcotest.(check bool) "guard silences W006" false
    (has_code "W006" (Lint.run ~config:guarded (lower (gemm_src 24))));
  Alcotest.(check bool) "pristine device not flagged" false
    (has_code "W006" (Lint.run (lower (gemm_src 24))));
  (* no offload candidates -> nothing to guard, even on a faulty device *)
  let copy_src =
    {|
void copy(float A[8], float B[8]) {
  for (int i = 0; i < 8; i++)
    A[i] = B[i];
}
|}
  in
  Alcotest.(check bool) "no candidates, no warning" false
    (has_code "W006" (Lint.run ~config:faulty (lower copy_src)))

let test_lint_tile_exceeds_device () =
  (* a tuned configuration compiled for a 256-wide crossbar produces
     128x128 tiles of gemm-128's pinned operand; on a 64x64 device the
     runtime library must re-tile every launch *)
  let small_device =
    { Lint.default_config with Lint.device_rows = Some 64; device_cols = Some 64 }
  in
  let ds = Lint.run ~config:small_device (lower (gemm_src 128)) in
  Alcotest.(check bool) "W007 raised" true (has_code "W007" ds);
  check_mentions "W007" (message_with "W007" ds) [ "64x64"; "128x128" ];
  (* same geometry on both sides: the tile always fits the device *)
  Alcotest.(check bool) "matching device not flagged" false
    (has_code "W007" (Lint.run (lower (gemm_src 128))));
  (* a kernel smaller than the device cannot overflow it either *)
  let tiny_device =
    { Lint.default_config with Lint.device_rows = Some 32; device_cols = Some 32 }
  in
  Alcotest.(check bool) "small kernel fits small device" false
    (has_code "W007" (Lint.run ~config:tiny_device (lower (gemm_src 24))))

(* ---------- pipeline integration: verify-each ---------- *)

let compile_checked ?(config = Offload.default_config) src =
  Pipeline.run_checked ~config ~verify:true (lower src)

let test_pipeline_verify_clean () =
  let checked = compile_checked (gemm_src 8) in
  (match checked.Pipeline.outcome with
  | Pipeline.Offloaded r -> Alcotest.(check int) "offloaded" 1 r.Offload.kernels_offloaded
  | Pipeline.Not_scop m -> Alcotest.failf "not a scop: %s" m
  | Pipeline.Rejected ds -> Alcotest.failf "rejected: %s" (String.concat "; " (codes ds)));
  Alcotest.(check (list string)) "no errors" []
    (codes (Diag.errors checked.Pipeline.diagnostics))

let test_pipeline_rejects_oob () =
  let src =
    {|
void oob(float B[8][8], float A[8][8]) {
  for (int i = 0; i < 8; i++)
    for (int j = 0; j < 8; j++)
      B[i][j] = A[i+1][j];
}
|}
  in
  let checked = compile_checked src in
  match checked.Pipeline.outcome with
  | Pipeline.Rejected ds ->
      Alcotest.(check bool) "bounds error surfaced" true (has_code "E201" ds);
      (* fail-safe: the returned function is the unmodified host path *)
      Alcotest.(check bool) "no cim calls" false (Ir.contains_cim_calls checked.Pipeline.func)
  | Pipeline.Offloaded _ | Pipeline.Not_scop _ -> Alcotest.fail "expected rejection"

let test_pipeline_verify_all_polybench () =
  List.iter
    (fun (b : Kernels.benchmark) ->
      let checked = compile_checked (b.Kernels.source ~n:16) in
      match checked.Pipeline.outcome with
      | Pipeline.Offloaded _ ->
          Alcotest.(check (list string))
            (b.Kernels.name ^ ": no verification errors")
            []
            (codes (Diag.errors checked.Pipeline.diagnostics))
      | Pipeline.Not_scop m -> Alcotest.failf "%s: not a scop: %s" b.Kernels.name m
      | Pipeline.Rejected ds ->
          Alcotest.failf "%s rejected: %s" b.Kernels.name (String.concat "; " (codes ds)))
    Kernels.all

let test_pipeline_verify_examples () =
  List.iter
    (fun (name, src) ->
      let checked = compile_checked src in
      match checked.Pipeline.outcome with
      | Pipeline.Offloaded _ ->
          Alcotest.(check (list string))
            (name ^ ": no verification errors")
            []
            (codes (Diag.errors checked.Pipeline.diagnostics))
      | Pipeline.Not_scop m -> Alcotest.failf "%s: not a scop: %s" name m
      | Pipeline.Rejected ds -> Alcotest.failf "%s rejected: %s" name (String.concat "; " (codes ds)))
    [
      ("gemm-listing1", Workloads.gemm_source ~n:24);
      ("fusion-listing2", Workloads.listing2_source ~n:24);
      ("tiling-listing3", Workloads.gemm_source ~n:512);
    ]

(* ---------- lint CI over the whole corpus ---------- *)

let test_lint_corpus_clean_and_selective () =
  let corpus =
    List.map (fun (b : Kernels.benchmark) -> (b.Kernels.name, b.Kernels.source ~n:16)) Kernels.all
    @ [
        ("gemm-listing1", Workloads.gemm_source ~n:24);
        ("fusion-listing2", Workloads.listing2_source ~n:24);
        ("tiling-listing3", Workloads.gemm_source ~n:512);
      ]
  in
  List.iter
    (fun (name, src) ->
      let f = lower src in
      let ds = Lint.run f @ Verify.func f @ Bounds.func f in
      Alcotest.(check (list string)) (name ^ ": no errors") [] (codes (Diag.errors ds)))
    corpus;
  (* the paper's selective-offload split: GEMV-class kernels are
     unprofitable, GEMM-class ones are not *)
  List.iter
    (fun (b : Kernels.benchmark) ->
      let flagged = has_code "W001" (Lint.run (lower (b.Kernels.source ~n:16))) in
      match b.Kernels.kind with
      | Kernels.Gemv_like ->
          Alcotest.(check bool) (b.Kernels.name ^ " flagged unprofitable") true flagged
      | Kernels.Gemm_like ->
          Alcotest.(check bool) (b.Kernels.name ^ " not flagged") false flagged)
    Kernels.all

(* ---------- dataflow solver ---------- *)

let mk_param name dims = { Ast.pname = name; ptyp = Ast.Tfloat; dims }
let whole name n = Ir.mat_ref_whole ~array:name ~rows:n ~cols:n ()

let loop var n body = Ir.For { var; lo = Ast.Int_lit 0; hi = Ast.Int_lit n; step = 1; body }

let gemm_call ?(pin = Ir.Pin_a) a b c n =
  Ir.Call
    (Ir.Cim_gemm
       {
         m = n;
         n;
         k = n;
         alpha = Ast.Float_lit 1.0;
         beta = Ast.Float_lit 1.0;
         a = whole a n;
         b = whole b n;
         c = whole c n;
         pin;
       })

let copy_stmt ~dst ~src =
  Ir.Assign
    {
      lhs = { Ast.base = dst; indices = [ Ast.Var "i"; Ast.Var "j" ] };
      op = Ast.Set;
      rhs = Ast.Index (src, [ Ast.Var "i"; Ast.Var "j" ]);
    }

(* C = A*B on the device, then S[i][j] = C[i][j] on the host; the d2h
   copy-back decides whether the host read sees a stale value *)
let device_then_host ~with_d2h =
  {
    Ir.name = "df";
    params = [ mk_param "C" [ 4; 4 ]; mk_param "S" [ 4; 4 ]; mk_param "A" [ 4; 4 ]; mk_param "B" [ 4; 4 ] ];
    body =
      [ gemm_call "A" "B" "C" 4 ]
      @ (if with_d2h then [ Ir.Call (Ir.Cim_d2h { array = "C" }) ] else [])
      @ [ loop "i" 4 [ loop "j" 4 [ copy_stmt ~dst:"S" ~src:"C" ] ] ];
  }

let stale_read_reaches f =
  let g, reach = Dataflow.reaching_definitions f in
  Array.exists
    (fun (nd : Dataflow.node) ->
      match nd.Dataflow.point with
      | Dataflow.Atom (Ir.Assign _) ->
          Dataflow.Defs.exists
            (fun (d : Dataflow.Def.t) -> d.Dataflow.Def.array = "C" && d.Dataflow.Def.on_device)
            reach.(nd.Dataflow.id)
      | _ -> false)
    (Dataflow.nodes g)

let test_dataflow_reaching_definitions () =
  Alcotest.(check bool) "device def reaches the host read" true
    (stale_read_reaches (device_then_host ~with_d2h:false));
  Alcotest.(check bool) "d2h retires the device def" false
    (stale_read_reaches (device_then_host ~with_d2h:true))

let test_dataflow_liveness () =
  let f = lower (gemm_src 8) in
  let _, live = Dataflow.live_arrays f in
  let ever_read = Array.fold_left Tdo_poly.Deps.Strings.union Tdo_poly.Deps.Strings.empty live in
  List.iter
    (fun a ->
      Alcotest.(check bool) (a ^ " live somewhere") true (Tdo_poly.Deps.Strings.mem a ever_read))
    [ "A"; "B"; "C" ]

(* ---------- regions ---------- *)

let test_regions_mat_ref () =
  let r =
    { Ir.array = "A"; row_off = Ast.Int_lit 0; col_off = Ast.Int_lit 2; rows = 4; cols = 6; trans = true }
  in
  (match Regions.mat_ref_region ~env:[] r with
  | Regions.Box box ->
      Alcotest.(check (list (pair int int)))
        "transposed window swaps extents"
        [ (0, 5); (2, 5) ]
        (Tdo_poly.Domain.box_bounds box)
  | Regions.Top -> Alcotest.fail "expected a box");
  Alcotest.(check int) "cells agree with the region cardinality" 24 (Regions.mat_ref_cells r)

let test_regions_overlap () =
  let window row_off rows =
    Regions.mat_ref_region ~env:[]
      { Ir.array = "A"; row_off = Ast.Int_lit row_off; col_off = Ast.Int_lit 0; rows; cols = 4; trans = false }
  in
  let top = Regions.mat_ref_region ~env:[ ("t", (0, 3)) ]
      { Ir.array = "A"; row_off = Ast.Binop (Ast.Mul, Ast.Var "u", Ast.Var "u"); col_off = Ast.Int_lit 0; rows = 4; cols = 4; trans = false }
  in
  Alcotest.(check bool) "disjoint tiles" false (Regions.overlap (window 0 4) (window 4 4));
  Alcotest.(check bool) "same tile" true (Regions.overlap (window 0 4) (window 0 4));
  Alcotest.(check bool) "top is conservative" true (Regions.overlap top (window 0 4))

(* ---------- dependence graph ---------- *)

let source_3mm n =
  match Kernels.find "3mm" with
  | Ok b -> b.Kernels.source ~n
  | Error e -> Alcotest.fail e

let test_depgraph_3mm () =
  let g = Depgraph.of_tree (tree_of (source_3mm 8)) in
  Alcotest.(check int) "three kernel events" 3 (List.length g.Depgraph.nodes);
  Alcotest.(check bool) "E and F kernels commute" true (Depgraph.independent g 0 1);
  let raw src dst array =
    List.exists
      (fun (e : Depgraph.edge) ->
        e.Depgraph.src = src && e.Depgraph.dst = dst && e.Depgraph.kind = Depgraph.Raw
        && e.Depgraph.array = array)
      g.Depgraph.edges
  in
  Alcotest.(check bool) "E flows into G" true (raw 0 2 "E");
  Alcotest.(check bool) "F flows into G" true (raw 1 2 "F");
  Alcotest.(check bool) "G depends on its producers" false (Depgraph.independent g 0 2);
  let dot = Depgraph.to_dot g in
  check_mentions "dot export" dot [ "digraph"; "RAW E"; "RAW F"; "->" ]

let test_depgraph_listing2_independent () =
  match tree_of (Workloads.listing2_source ~n:8) with
  | St.Seq [ k1; k2 ] ->
      Alcotest.(check bool) "listing 2 kernels commute" true (Depgraph.independent_trees k1 k2)
  | _ -> Alcotest.fail "expected two top-level events"

(* ---------- deterministic diagnostics ---------- *)

let test_diag_canonical () =
  let w1 = Diag.warningf "W001" "b" in
  let w1a = Diag.warningf "W001" "a" in
  let e1 = Diag.errorf "E101" ~hint:"h" "x" in
  let shuffled = [ w1; e1; w1a; w1; e1 ] in
  let golden = "error[E101]: x\n  hint: h\nwarning[W001]: a\nwarning[W001]: b" in
  let render ds = String.concat "\n" (List.map Diag.to_string (Diag.canonical ds)) in
  Alcotest.(check string) "sorted and deduplicated" golden (render shuffled);
  Alcotest.(check string) "byte-stable under input order" (render shuffled)
    (render (List.rev shuffled))

(* ---------- degenerate loop bounds (E204) ---------- *)

let degenerate_src =
  {|
void deg(float A[8][8]) {
  for (int i = 0; i < 8; i++)
    for (int j = 8; j < 8; j++)
      A[i][j] += 1.0;
}
|}

let test_bounds_degenerate_loop () =
  let ds = Bounds.func (lower degenerate_src) in
  Alcotest.(check (list string)) "one dedicated diagnostic" [ "E204" ] (codes ds);
  check_mentions "E204" (message_with "E204" ds) [ "for (j = 8; j < 8)"; "trip count 0" ];
  match (compile_checked degenerate_src).Pipeline.outcome with
  | Pipeline.Rejected ds -> Alcotest.(check bool) "pipeline rejects" true (has_code "E204" ds)
  | Pipeline.Offloaded _ | Pipeline.Not_scop _ -> Alcotest.fail "expected rejection"

(* ---------- W008 / W009 / W010 ---------- *)

let w008_src ~aba =
  (* three GEMM kernels; in ABA order the third re-pins A after the
     D-kernel evicted it, in ABA-reordered (A, A, D) adjacent kernels
     share the pin *)
  let k1 = ("C1", "A", "B", 8, 8) and k2 = ("C2", "D", "E", 12, 12) and k3 = ("C3", "A", "B2", 8, 8) in
  let order = if aba then [ k1; k2; k3 ] else [ k1; k3; k2 ] in
  let nest (c, a, b, nj, nk) =
    Printf.sprintf
      {|  for (int i = 0; i < 8; i++)
    for (int j = 0; j < %d; j++)
      for (int k = 0; k < %d; k++)
        %s[i][j] += %s[i][k] * %s[k][j];
|}
      nj nk c a b
  in
  Printf.sprintf
    {|
void w008(float C1[8][8], float C2[8][12], float C3[8][8],
          float A[8][8], float B[8][8], float D[8][12], float E[12][12], float B2[8][8]) {
%s}
|}
    (String.concat "" (List.map nest order))

let w009_src =
  {|
void w009(float C[16][16], float S[16][16], float A[16][16], float B[16][16]) {
  for (int i = 0; i < 16; i++)
    for (int j = 0; j < 16; j++)
      for (int k = 0; k < 16; k++)
        C[i][j] += A[i][k] * B[k][j];
  for (int i = 0; i < 16; i++)
    for (int j = 0; j < 16; j++)
      S[i][j] = C[i][j];
}
|}

let w010_src =
  {|
void w010(float C[8][8], float A[8][8], float B[8][8]) {
  for (int t = 0; t < 4; t++)
    for (int i = 0; i < 8; i++)
      for (int j = 0; j < 8; j++)
        for (int k = 0; k < 8; k++)
          C[i][j] += A[i][k] * B[k][j];
}
|}

let warning_codes ds =
  List.sort_uniq compare
    (List.filter_map
       (fun (d : Diag.t) -> if d.Diag.severity = Diag.Warning then Some d.Diag.code else None)
       ds)

let test_lint_redundant_reprogram () =
  let ds = Lint.run (lower (w008_src ~aba:true)) in
  Alcotest.(check bool) "ABA order flagged" true (has_code "W008" ds);
  check_mentions "W008" (message_with "W008" ds) [ "'A'"; "S0" ];
  Alcotest.(check (list string)) "reordered program is clean" []
    (warning_codes (Lint.run (lower (w008_src ~aba:false))))

let test_lint_stale_host_read () =
  let ds = Lint.run (lower w009_src) in
  Alcotest.(check bool) "host copy of the device result flagged" true (has_code "W009" ds);
  check_mentions "W009" (message_with "W009" ds) [ "'C'"; "S0" ]

let test_lint_loop_invariant_offload () =
  let ds = Lint.run (lower w010_src) in
  Alcotest.(check bool) "invariant iterator flagged" true (has_code "W010" ds);
  check_mentions "W010" (message_with "W010" ds) [ "'t'"; "'C'" ];
  List.iter
    (fun w ->
      Alcotest.(check bool) ("gemm has no " ^ w) false (has_code w (Lint.run (lower (gemm_src 16)))))
    [ "W008"; "W009"; "W010" ]

let test_lint_offload_ir () =
  (* explicit runtime calls: the IR-mode rules see the same hazards *)
  Alcotest.(check bool) "missing d2h flagged" true
    (has_code "W009" (Lint.offload_ir (device_then_host ~with_d2h:false)));
  (* the copy-back fixes the read, but C still lives... no: d2h retires
     the device def entirely, so the function is clean *)
  Alcotest.(check (list string)) "with d2h clean" []
    (codes (Lint.offload_ir (device_then_host ~with_d2h:true)));
  let aba_calls =
    {
      Ir.name = "aba";
      params =
        [ mk_param "C1" [ 4; 4 ]; mk_param "C2" [ 4; 4 ]; mk_param "C3" [ 4; 4 ];
          mk_param "A" [ 4; 4 ]; mk_param "D" [ 4; 4 ]; mk_param "B" [ 4; 4 ] ];
      body =
        [
          gemm_call "A" "B" "C1" 4;
          gemm_call "D" "B" "C2" 4;
          gemm_call "A" "B" "C3" 4;
          Ir.Call (Ir.Cim_d2h { array = "C1" });
          Ir.Call (Ir.Cim_d2h { array = "C2" });
          Ir.Call (Ir.Cim_d2h { array = "C3" });
        ];
    }
  in
  Alcotest.(check bool) "call-level ABA flagged" true
    (has_code "W008" (Lint.offload_ir aba_calls));
  let invariant_loop =
    {
      Ir.name = "inv";
      params = [ mk_param "C" [ 4; 4 ]; mk_param "A" [ 4; 4 ]; mk_param "B" [ 4; 4 ] ];
      body = [ loop "t" 4 [ gemm_call "A" "B" "C" 4 ]; Ir.Call (Ir.Cim_d2h { array = "C" }) ];
    }
  in
  let ds = Lint.offload_ir invariant_loop in
  Alcotest.(check bool) "loop-invariant call flagged" true (has_code "W010" ds);
  Alcotest.(check bool) "adjacent re-pin is reuse, not W008" false (has_code "W008" ds)

(* ---------- census / tuner agreement ---------- *)

let test_cost_model_write_bytes () =
  let compiled src = (compile_checked src).Pipeline.func in
  let wb src = Tdo_tune.Cost_model.write_bytes Offload.default_config (compiled src) in
  let aba = wb (w008_src ~aba:true) and reordered = wb (w008_src ~aba:false) in
  (* A (64) + D (96) + A again (64): the W008 re-program is priced *)
  Alcotest.(check int) "ABA order programs 224 cells" 224 aba;
  Alcotest.(check bool) "reordering is strictly cheaper" true (reordered < aba)

(* ---------- properties ---------- *)

let random_gemm_func seed =
  let m = 2 + (seed mod 7) and n = 2 + (seed / 7 mod 7) and k = 2 + (seed / 49 mod 7) in
  let open Builder in
  func "gen"
    [
      scalar Ast.Tfloat "alpha";
      array "C" [ m; n ];
      array "A" [ m; k ];
      array "B" [ k; n ];
    ]
    [
      for_ "i" (int m)
        [
          for_ "j" (int n)
            [
              assign "C" [ var "i"; var "j" ] (float 0.0);
              for_ "k" (int k)
                [
                  add_assign "C" [ var "i"; var "j" ]
                    (var "alpha" * idx "A" [ var "i"; var "k" ] * idx "B" [ var "k"; var "j" ]);
                ];
            ];
        ];
    ]

let qcheck_builder_programs_verify =
  QCheck.Test.make ~name:"random builder kernels verify and validate end to end" ~count:30
    QCheck.small_int (fun seed ->
      let f = Lower.func (random_gemm_func seed) in
      let checked = Pipeline.run_checked ~verify:true f in
      Verify.func f = []
      && Bounds.func f = []
      && (match checked.Pipeline.outcome with Pipeline.Offloaded _ -> true | _ -> false)
      && not (Diag.has_errors checked.Pipeline.diagnostics))

(* Random two-kernel programs over a small array pool: whenever the
   dependence graph proves the kernels independent, executing them in
   either order must produce bitwise-identical results. Also pins the
   precision floor: the graph is never coarser than Deps.independent. *)
let pool = [| "C"; "D"; "A"; "B"; "E" |]

let two_kernel_source (s1, s2) =
  let pick s i = pool.(s / int_of_float (5. ** float_of_int i) mod 5) in
  let nest s =
    Printf.sprintf
      {|  for (int i = 0; i < 4; i++)
    for (int j = 0; j < 4; j++)
      for (int k = 0; k < 4; k++)
        %s[i][j] += %s[i][k] * %s[k][j];
|}
      (pick s 0) (pick s 1) (pick s 2)
  in
  ( Printf.sprintf
      {|
void prog(float C[4][4], float D[4][4], float A[4][4], float B[4][4], float E[4][4]) {
%s%s}
|}
      (nest s1) (nest s2),
    Printf.sprintf
      {|
void prog(float C[4][4], float D[4][4], float A[4][4], float B[4][4], float E[4][4]) {
%s%s}
|}
      (nest s2) (nest s1) )

let interp_results src =
  let module Interp = Tdo_lang.Interp in
  let arrs =
    Array.to_list pool
    |> List.mapi
         (fun ai name ->
           let arr = Interp.make_array ~dims:[ 4; 4 ] in
           Array.iteri
             (fun i _ -> arr.Interp.data.(i) <- float_of_int (((ai * 31) + (i * 7)) mod 13) /. 8.0)
             arr.Interp.data;
           (name, arr))
  in
  Interp.run (Parser.parse_func src)
    ~args:(List.map (fun (n, a) -> (n, Interp.Varray a)) arrs);
  List.map (fun (_, (a : Interp.arr)) -> Array.to_list a.Interp.data) arrs

let qcheck_depgraph_independence =
  QCheck.Test.make ~name:"depgraph independence implies order-insensitive execution" ~count:80
    QCheck.(pair (int_bound 124) (int_bound 124))
    (fun seeds ->
      let src12, src21 = two_kernel_source seeds in
      match tree_of src12 with
      | St.Seq [ k1; k2 ] ->
          let precise = Tdo_poly.Deps.independent k1 k2 in
          let graph_independent = Depgraph.independent_trees k1 k2 in
          (* precision floor: never coarser than the pairwise check *)
          ((not precise) || graph_independent)
          && ((not graph_independent) || interp_results src12 = interp_results src21)
      | _ -> QCheck.assume_fail ())

let qcheck_mutated_trees_rejected =
  QCheck.Test.make ~name:"dropping any statement from a tree is caught by legality" ~count:20
    QCheck.small_int (fun seed ->
      let before = tree_of (gemm_src (4 + (seed mod 5))) in
      match before with
      | St.Seq children when List.length children > 1 ->
          let victim = seed mod List.length children in
          let after = St.Seq (List.filteri (fun i _ -> i <> victim) children) in
          has_code "E103" (Legality.check_stmt_level ~before ~after)
      | t ->
          (* single-segment tree: drop it entirely *)
          has_code "E103"
            (Legality.check_stmt_level ~before:t ~after:(St.Code [])))

let suites =
  [
    ( "analysis.verify",
      [
        Alcotest.test_case "clean gemm" `Quick test_verify_clean_gemm;
        Alcotest.test_case "undefined names" `Quick test_verify_undefined_names;
        Alcotest.test_case "structure" `Quick test_verify_structure;
        Alcotest.test_case "call signatures" `Quick test_verify_call_signature;
        Alcotest.test_case "device state" `Quick test_verify_device_state;
        Alcotest.test_case "tree invariants" `Quick test_verify_tree_invariants;
      ] );
    ( "analysis.legality",
      [
        Alcotest.test_case "accumulation interchange" `Quick
          test_legality_accumulation_interchange_ok;
        Alcotest.test_case "illegal interchange" `Quick test_legality_illegal_interchange;
        Alcotest.test_case "dropped / reordered" `Quick test_legality_dropped_and_reordered;
        Alcotest.test_case "offload rewrite ok" `Quick test_legality_offload_rewrite_ok;
        Alcotest.test_case "lost write" `Quick test_legality_lost_write;
        Alcotest.test_case "illegal fusion" `Quick test_legality_illegal_fusion;
        QCheck_alcotest.to_alcotest qcheck_mutated_trees_rejected;
      ] );
    ( "analysis.bounds",
      [
        Alcotest.test_case "overflow witness" `Quick test_bounds_overflow_witness;
        Alcotest.test_case "underflow witness" `Quick test_bounds_underflow_witness;
        Alcotest.test_case "clean kernels" `Quick test_bounds_clean_kernels;
        Alcotest.test_case "degenerate loop (E204)" `Quick test_bounds_degenerate_loop;
      ] );
    ( "analysis.dataflow",
      [
        Alcotest.test_case "reaching definitions" `Quick test_dataflow_reaching_definitions;
        Alcotest.test_case "array liveness" `Quick test_dataflow_liveness;
        Alcotest.test_case "diag canonical order" `Quick test_diag_canonical;
      ] );
    ( "analysis.regions",
      [
        Alcotest.test_case "mat_ref windows" `Quick test_regions_mat_ref;
        Alcotest.test_case "overlap" `Quick test_regions_overlap;
      ] );
    ( "analysis.depgraph",
      [
        Alcotest.test_case "3mm kernel graph" `Quick test_depgraph_3mm;
        Alcotest.test_case "listing 2 independence" `Quick test_depgraph_listing2_independent;
        QCheck_alcotest.to_alcotest qcheck_depgraph_independence;
      ] );
    ( "analysis.lint",
      [
        Alcotest.test_case "low intensity" `Quick test_lint_low_intensity;
        Alcotest.test_case "dead / unused arrays" `Quick test_lint_dead_and_unused;
        Alcotest.test_case "explain scop failure" `Quick test_lint_explains_scop_failure;
        Alcotest.test_case "endurance budget" `Quick test_lint_endurance_budget;
        Alcotest.test_case "unguarded faulty offload" `Quick test_lint_unguarded_faulty_offload;
        Alcotest.test_case "tile exceeds device crossbar" `Quick test_lint_tile_exceeds_device;
        Alcotest.test_case "redundant re-program (W008)" `Quick test_lint_redundant_reprogram;
        Alcotest.test_case "stale host read (W009)" `Quick test_lint_stale_host_read;
        Alcotest.test_case "loop-invariant offload (W010)" `Quick test_lint_loop_invariant_offload;
        Alcotest.test_case "IR-mode rules" `Quick test_lint_offload_ir;
        Alcotest.test_case "census / write-bytes agreement" `Quick test_cost_model_write_bytes;
      ] );
    ( "analysis.pipeline",
      [
        Alcotest.test_case "verify clean gemm" `Quick test_pipeline_verify_clean;
        Alcotest.test_case "rejects out-of-bounds" `Quick test_pipeline_rejects_oob;
        Alcotest.test_case "polybench corpus" `Quick test_pipeline_verify_all_polybench;
        Alcotest.test_case "paper examples" `Quick test_pipeline_verify_examples;
        Alcotest.test_case "lint CI corpus" `Quick test_lint_corpus_clean_and_selective;
        QCheck_alcotest.to_alcotest qcheck_builder_programs_verify;
      ] );
  ]
