open Tdo_analysis
module St = Tdo_poly.Schedule_tree
module Scop_detect = Tdo_poly.Scop_detect
module Affine = Tdo_poly.Affine
module Ast = Tdo_lang.Ast
module Parser = Tdo_lang.Parser
module Builder = Tdo_lang.Builder
module Lower = Tdo_ir.Lower
module Ir = Tdo_ir.Ir
module Pipeline = Tdo_tactics.Pipeline
module Offload = Tdo_tactics.Offload
module Flow = Tdo_cim.Flow
module Workloads = Tdo_cim.Workloads
module Kernels = Tdo_polybench.Kernels

let lower src = Lower.func (Parser.parse_func src)

let tree_of src =
  match Scop_detect.detect_func (lower src) with
  | Ok t -> t
  | Error e -> Alcotest.failf "detect: %s" e

let codes ds = List.sort_uniq compare (List.map (fun (d : Diag.t) -> d.Diag.code) ds)

let has_code c ds = List.exists (fun (d : Diag.t) -> String.equal d.Diag.code c) ds

let message_with c ds =
  match List.find_opt (fun (d : Diag.t) -> String.equal d.Diag.code c) ds with
  | Some d -> d.Diag.message
  | None -> Alcotest.failf "no %s diagnostic in [%s]" c (String.concat "; " (codes ds))

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let check_mentions what msg needles =
  List.iter
    (fun needle ->
      Alcotest.(check bool) (what ^ " mentions " ^ needle) true (contains msg needle))
    needles

let gemm_src n =
  Printf.sprintf
    {|
void gemm(float alpha, float beta, float C[%d][%d], float A[%d][%d], float B[%d][%d]) {
  for (int i = 0; i < %d; i++)
    for (int j = 0; j < %d; j++) {
      C[i][j] *= beta;
      for (int k = 0; k < %d; k++)
        C[i][j] += alpha * A[i][k] * B[k][j];
    }
}
|}
    n n n n n n n n n

(* ---------- Verify: IR well-formedness ---------- *)

let test_verify_clean_gemm () =
  Alcotest.(check (list string)) "no diagnostics" [] (codes (Verify.func (lower (gemm_src 8))))

let test_verify_undefined_names () =
  let f =
    {
      Ir.name = "bad";
      params = [];
      body =
        [
          Ir.Assign
            {
              lhs = { Ast.base = "A"; indices = [ Ast.Var "i" ] };
              op = Ast.Set;
              rhs = Ast.Binop (Ast.Add, Ast.Var "x", Ast.Index ("B", [ Ast.Int_lit 0 ]));
            };
        ];
    }
  in
  let ds = Verify.func f in
  Alcotest.(check bool) "undefined lhs array" true (has_code "E001" ds);
  Alcotest.(check bool) "undefined rhs array" true (has_code "E002" ds)

let test_verify_structure () =
  let f =
    {
      Ir.name = "bad";
      params = [ { Ast.pname = "A"; ptyp = Ast.Tfloat; dims = [ 4 ] } ];
      body =
        [
          Ir.For
            {
              var = "i";
              lo = Ast.Int_lit 0;
              hi = Ast.Int_lit 4;
              step = 0;
              body =
                [
                  Ir.Roi_begin;
                  Ir.Assign
                    {
                      lhs = { Ast.base = "A"; indices = [ Ast.Var "i"; Ast.Var "i" ] };
                      op = Ast.Set;
                      rhs = Ast.Float_lit 0.0;
                    };
                ];
            };
        ];
    }
  in
  let ds = Verify.func f in
  Alcotest.(check bool) "non-positive step" true (has_code "E006" ds);
  Alcotest.(check bool) "roi in loop" true (has_code "E008" ds);
  Alcotest.(check bool) "rank mismatch" true (has_code "E003" ds)

let dummy_ref array rows cols =
  { Ir.array; row_off = Ast.Int_lit 0; col_off = Ast.Int_lit 0; rows; cols; trans = false }

let test_verify_call_signature () =
  let params =
    List.map
      (fun name -> { Ast.pname = name; ptyp = Ast.Tfloat; dims = [ 4; 4 ] })
      [ "A"; "B"; "C" ]
  in
  let gemm ~m ~n ~k a b c =
    Ir.Call
      (Ir.Cim_gemm
         { m; n; k; alpha = Ast.Float_lit 1.0; beta = Ast.Float_lit 0.0; a; b; c; pin = Ir.Pin_a })
  in
  let alloc arr = Ir.Call (Ir.Cim_alloc { array = arr }) in
  (* shape of B inconsistent with k x n *)
  let bad_shape =
    {
      Ir.name = "bad";
      params;
      body =
        [
          Ir.Call Ir.Cim_init;
          alloc "A";
          alloc "B";
          alloc "C";
          gemm ~m:4 ~n:4 ~k:4 (dummy_ref "A" 4 4) (dummy_ref "B" 2 4) (dummy_ref "C" 4 4);
        ];
    }
  in
  let ds = Verify.func bad_shape in
  Alcotest.(check bool) "operand shape" true (has_code "E009" ds);
  check_mentions "E009" (message_with "E009" ds) [ "polly_cimBlasSGemm"; "'B'"; "2x4"; "4x4" ]

let test_verify_device_state () =
  let params = [ { Ast.pname = "A"; ptyp = Ast.Tfloat; dims = [ 4; 4 ] } ] in
  let use_before_init =
    { Ir.name = "f"; params; body = [ Ir.Call (Ir.Cim_alloc { array = "A" }) ] }
  in
  Alcotest.(check bool) "alloc before init" true (has_code "E010" (Verify.func use_before_init));
  let use_after_free =
    {
      Ir.name = "f";
      params;
      body =
        [
          Ir.Call Ir.Cim_init;
          Ir.Call (Ir.Cim_alloc { array = "A" });
          Ir.Call (Ir.Cim_free { array = "A" });
          Ir.Call (Ir.Cim_h2d { array = "A" });
        ];
    }
  in
  let ds = Verify.func use_after_free in
  Alcotest.(check bool) "use after free" true (has_code "E010" ds);
  check_mentions "E010" (message_with "E010" ds) [ "'A'"; "polly_cimFree" ];
  let no_malloc =
    { Ir.name = "f"; params; body = [ Ir.Call Ir.Cim_init; Ir.Call (Ir.Cim_h2d { array = "A" }) ] }
  in
  Alcotest.(check bool) "transfer without malloc" true (has_code "E010" (Verify.func no_malloc))

let test_verify_tree_invariants () =
  let tree = tree_of (gemm_src 6) in
  Alcotest.(check (list string)) "gemm tree clean" []
    (codes (Verify.tree ~free:[ "alpha"; "beta" ] tree));
  (* duplicate a statement id by self-appending the top sequence *)
  let dup = match tree with St.Seq _ -> St.Seq [ tree; tree ] | t -> St.Seq [ t; t ] in
  Alcotest.(check bool) "duplicate sids" true
    (has_code "E053" (Verify.tree ~free:[ "alpha"; "beta" ] dup));
  (* alpha/beta unbound when not declared free *)
  Alcotest.(check bool) "unbound rhs var" true (has_code "E056" (Verify.tree tree))

(* ---------- Legality: statement level ---------- *)

let swap_outer_two = function
  | St.Band (b1, St.Band (b2, child)) -> St.Band (b2, St.Band (b1, child))
  | t -> Alcotest.failf "not a 2-deep nest: %a" St.pp t

let test_legality_accumulation_interchange_ok () =
  (* pure accumulation tolerates instance reordering *)
  let src =
    {|
void acc(float C[6][6], float A[6][6], float B[6][6]) {
  for (int i = 0; i < 6; i++)
    for (int k = 0; k < 6; k++)
      C[i][0] += A[i][k] * B[k][0];
}
|}
  in
  let before = tree_of src in
  let after = swap_outer_two before in
  Alcotest.(check (list string)) "no errors" []
    (codes (Legality.check_stmt_level ~before ~after))

let test_legality_illegal_interchange () =
  (* distance vector (1, -1): legal as written, reversed by the swap *)
  let src =
    {|
void wave(float A[8][8]) {
  for (int i = 1; i < 8; i++)
    for (int j = 0; j < 7; j++)
      A[i][j] = A[i-1][j+1];
}
|}
  in
  let before = tree_of src in
  let after = swap_outer_two before in
  let ds = Legality.check_stmt_level ~before ~after in
  Alcotest.(check bool) "E101 raised" true (has_code "E101" ds);
  check_mentions "E101" (message_with "E101" ds) [ "'A'" ]

let test_legality_dropped_and_reordered () =
  let src =
    {|
void two(float A[6], float B[6]) {
  for (int i = 0; i < 6; i++)
    A[i] = 1.0;
  for (int i = 0; i < 6; i++)
    B[i] = A[i] + 1.0;
}
|}
  in
  let before = tree_of src in
  match before with
  | St.Seq ([ producer; _consumer ] as children) ->
      let ds = Legality.check_stmt_level ~before ~after:producer in
      Alcotest.(check bool) "dropped statement" true (has_code "E103" ds);
      (* the second loop reads what the first writes: swapping them
         breaks the flow dependence on A *)
      let ds = Legality.check_stmt_level ~before ~after:(St.Seq (List.rev children)) in
      Alcotest.(check bool) "reordered dependents" true (has_code "E101" ds);
      check_mentions "E101" (message_with "E101" ds) [ "'A'" ]
  | t -> Alcotest.failf "expected a two-segment sequence: %a" St.pp t

(* ---------- Legality: dataflow level ---------- *)

let test_legality_offload_rewrite_ok () =
  let before = tree_of (gemm_src 8) in
  let after, _report = Offload.apply Offload.default_config before in
  Alcotest.(check bool) "code emitted" true (St.contains_code after);
  Alcotest.(check (list string)) "dataflow preserved" []
    (codes (Diag.errors (Legality.check ~before ~after)))

let test_legality_lost_write () =
  let before = tree_of (gemm_src 8) in
  let ds = Legality.check ~before ~after:(St.Code [ Ir.Call Ir.Cim_init ]) in
  Alcotest.(check bool) "lost write to C" true (has_code "E106" ds);
  check_mentions "E106" (message_with "E106" ds) [ "'C'" ]

let test_legality_illegal_fusion () =
  (* D = C * E depends on C = A * B: batching both into one parallel
     launch is the paper's illegal-fusion case *)
  let src =
    {|
void chain(float C[8][8], float D[8][8], float A[8][8], float B[8][8], float E[8][8]) {
  for (int i = 0; i < 8; i++)
    for (int j = 0; j < 8; j++) {
      C[i][j] = 0.0;
      for (int k = 0; k < 8; k++)
        C[i][j] += A[i][k] * B[k][j];
    }
  for (int i = 0; i < 8; i++)
    for (int j = 0; j < 8; j++) {
      D[i][j] = 0.0;
      for (int k = 0; k < 8; k++)
        D[i][j] += C[i][k] * E[k][j];
    }
}
|}
  in
  let before = tree_of src in
  let whole a = Ir.mat_ref_whole ~array:a ~rows:8 ~cols:8 () in
  let after =
    St.Code
      [
        Ir.Call Ir.Cim_init;
        Ir.Call
          (Ir.Cim_gemm_batched
             {
               m = 8;
               n = 8;
               k = 8;
               alpha = Ast.Float_lit 1.0;
               beta = Ast.Float_lit 0.0;
               batch = [ (whole "A", whole "B", whole "C"); (whole "C", whole "E", whole "D") ];
               pin = Ir.Pin_a;
             });
      ]
  in
  let ds = Legality.check ~before ~after in
  Alcotest.(check bool) "E102 raised" true (has_code "E102" ds);
  check_mentions "E102" (message_with "E102" ds) [ "'C'" ];
  (* and the real pipeline never emits that batch: the two kernels are
     dependent, so fusion must keep them as separate launches *)
  let legal, _ = Offload.apply Offload.default_config before in
  Alcotest.(check (list string)) "pipeline stays legal" []
    (codes (Diag.errors (Legality.check ~before ~after:legal)))

(* ---------- Bounds ---------- *)

let test_bounds_overflow_witness () =
  let src =
    {|
void oob(float B[8][8], float A[8][8]) {
  for (int i = 0; i < 8; i++)
    for (int j = 0; j < 8; j++)
      B[i][j] = A[i+1][j];
}
|}
  in
  let ds = Bounds.func (lower src) in
  Alcotest.(check bool) "E201 raised" true (has_code "E201" ds);
  check_mentions "E201" (message_with "E201" ds) [ "'A'"; "i = 7"; "reaches 8" ]

let test_bounds_underflow_witness () =
  let src =
    {|
void oob(float B[8], float A[8]) {
  for (int i = 0; i < 8; i++)
    B[i] = A[i-2];
}
|}
  in
  let ds = Bounds.func (lower src) in
  Alcotest.(check bool) "E202 raised" true (has_code "E202" ds);
  check_mentions "E202" (message_with "E202" ds) [ "'A'"; "i = 0"; "-2" ]

let test_bounds_clean_kernels () =
  Alcotest.(check (list string)) "gemm in bounds" [] (codes (Bounds.func (lower (gemm_src 8))));
  let f, _ = Flow.compile ~options:Flow.o3_loop_tactics (gemm_src 8) in
  Alcotest.(check (list string)) "offloaded gemm in bounds" [] (codes (Bounds.func f))

(* ---------- Lint ---------- *)

let gemv_src =
  {|
void gemv(float alpha, float y[40], float A[40][40], float x[40]) {
  for (int i = 0; i < 40; i++) {
    y[i] = 0.0;
    for (int j = 0; j < 40; j++)
      y[i] += alpha * A[i][j] * x[j];
  }
}
|}

let test_lint_low_intensity () =
  let ds = Lint.run (lower gemv_src) in
  Alcotest.(check bool) "W001 raised" true (has_code "W001" ds);
  check_mentions "W001" (message_with "W001" ds) [ "'y'"; "'A'" ];
  Alcotest.(check bool) "gemm not flagged" false (has_code "W001" (Lint.run (lower (gemm_src 24))))

let test_lint_dead_and_unused () =
  let src =
    {|
void f(float A[4], float unused_param[4]) {
  float dead[4];
  float never[4];
  for (int i = 0; i < 4; i++) {
    A[i] = 1.0;
    dead[i] = 2.0;
  }
}
|}
  in
  let ds = Lint.func (lower src) in
  Alcotest.(check bool) "dead store" true (has_code "W004" ds);
  check_mentions "W004" (message_with "W004" ds) [ "'dead'" ];
  Alcotest.(check bool) "unused arrays" true (has_code "W005" ds);
  (* the output parameter A is written: neither dead (observable) nor unused *)
  List.iter
    (fun (d : Diag.t) ->
      Alcotest.(check bool) ("no diagnostic names A: " ^ d.Diag.message) false
        (contains d.Diag.message "'A'"))
    ds

let test_lint_explains_scop_failure () =
  let src =
    {|
void f(float A[4][4], float s) {
  for (int i = 0; i < 4; i++)
    for (int j = 0; j < 4; j++)
      s = A[i][j];
}
|}
  in
  let ds = Lint.run (lower src) in
  Alcotest.(check bool) "N001 raised" true (has_code "N001" ds);
  check_mentions "N001" (message_with "N001" ds) [ "scalar write" ]

let test_lint_endurance_budget () =
  (* a crossbar-sized pinned operand re-programmed once per execution
     at 1 Hz exhausts a 1e7-write endurance budget within a year *)
  let ds = Lint.run (lower (Workloads.gemm_source ~n:512)) in
  Alcotest.(check bool) "W003 raised" true (has_code "W003" ds);
  check_mentions "W003" (message_with "W003" ds) [ "Eq. 1" ]

let test_lint_unguarded_faulty_offload () =
  let faulty = { Lint.default_config with Lint.fault_rate = 1e-3 } in
  let ds = Lint.run ~config:faulty (lower (gemm_src 24)) in
  Alcotest.(check bool) "W006 raised" true (has_code "W006" ds);
  check_mentions "W006" (message_with "W006" ds) [ "ABFT" ];
  let guarded = { faulty with Lint.abft_guard = true } in
  Alcotest.(check bool) "guard silences W006" false
    (has_code "W006" (Lint.run ~config:guarded (lower (gemm_src 24))));
  Alcotest.(check bool) "pristine device not flagged" false
    (has_code "W006" (Lint.run (lower (gemm_src 24))));
  (* no offload candidates -> nothing to guard, even on a faulty device *)
  let copy_src =
    {|
void copy(float A[8], float B[8]) {
  for (int i = 0; i < 8; i++)
    A[i] = B[i];
}
|}
  in
  Alcotest.(check bool) "no candidates, no warning" false
    (has_code "W006" (Lint.run ~config:faulty (lower copy_src)))

let test_lint_tile_exceeds_device () =
  (* a tuned configuration compiled for a 256-wide crossbar produces
     128x128 tiles of gemm-128's pinned operand; on a 64x64 device the
     runtime library must re-tile every launch *)
  let small_device =
    { Lint.default_config with Lint.device_rows = Some 64; device_cols = Some 64 }
  in
  let ds = Lint.run ~config:small_device (lower (gemm_src 128)) in
  Alcotest.(check bool) "W007 raised" true (has_code "W007" ds);
  check_mentions "W007" (message_with "W007" ds) [ "64x64"; "128x128" ];
  (* same geometry on both sides: the tile always fits the device *)
  Alcotest.(check bool) "matching device not flagged" false
    (has_code "W007" (Lint.run (lower (gemm_src 128))));
  (* a kernel smaller than the device cannot overflow it either *)
  let tiny_device =
    { Lint.default_config with Lint.device_rows = Some 32; device_cols = Some 32 }
  in
  Alcotest.(check bool) "small kernel fits small device" false
    (has_code "W007" (Lint.run ~config:tiny_device (lower (gemm_src 24))))

(* ---------- pipeline integration: verify-each ---------- *)

let compile_checked ?(config = Offload.default_config) src =
  Pipeline.run_checked ~config ~verify:true (lower src)

let test_pipeline_verify_clean () =
  let checked = compile_checked (gemm_src 8) in
  (match checked.Pipeline.outcome with
  | Pipeline.Offloaded r -> Alcotest.(check int) "offloaded" 1 r.Offload.kernels_offloaded
  | Pipeline.Not_scop m -> Alcotest.failf "not a scop: %s" m
  | Pipeline.Rejected ds -> Alcotest.failf "rejected: %s" (String.concat "; " (codes ds)));
  Alcotest.(check (list string)) "no errors" []
    (codes (Diag.errors checked.Pipeline.diagnostics))

let test_pipeline_rejects_oob () =
  let src =
    {|
void oob(float B[8][8], float A[8][8]) {
  for (int i = 0; i < 8; i++)
    for (int j = 0; j < 8; j++)
      B[i][j] = A[i+1][j];
}
|}
  in
  let checked = compile_checked src in
  match checked.Pipeline.outcome with
  | Pipeline.Rejected ds ->
      Alcotest.(check bool) "bounds error surfaced" true (has_code "E201" ds);
      (* fail-safe: the returned function is the unmodified host path *)
      Alcotest.(check bool) "no cim calls" false (Ir.contains_cim_calls checked.Pipeline.func)
  | Pipeline.Offloaded _ | Pipeline.Not_scop _ -> Alcotest.fail "expected rejection"

let test_pipeline_verify_all_polybench () =
  List.iter
    (fun (b : Kernels.benchmark) ->
      let checked = compile_checked (b.Kernels.source ~n:16) in
      match checked.Pipeline.outcome with
      | Pipeline.Offloaded _ ->
          Alcotest.(check (list string))
            (b.Kernels.name ^ ": no verification errors")
            []
            (codes (Diag.errors checked.Pipeline.diagnostics))
      | Pipeline.Not_scop m -> Alcotest.failf "%s: not a scop: %s" b.Kernels.name m
      | Pipeline.Rejected ds ->
          Alcotest.failf "%s rejected: %s" b.Kernels.name (String.concat "; " (codes ds)))
    Kernels.all

let test_pipeline_verify_examples () =
  List.iter
    (fun (name, src) ->
      let checked = compile_checked src in
      match checked.Pipeline.outcome with
      | Pipeline.Offloaded _ ->
          Alcotest.(check (list string))
            (name ^ ": no verification errors")
            []
            (codes (Diag.errors checked.Pipeline.diagnostics))
      | Pipeline.Not_scop m -> Alcotest.failf "%s: not a scop: %s" name m
      | Pipeline.Rejected ds -> Alcotest.failf "%s rejected: %s" name (String.concat "; " (codes ds)))
    [
      ("gemm-listing1", Workloads.gemm_source ~n:24);
      ("fusion-listing2", Workloads.listing2_source ~n:24);
      ("tiling-listing3", Workloads.gemm_source ~n:512);
    ]

(* ---------- lint CI over the whole corpus ---------- *)

let test_lint_corpus_clean_and_selective () =
  let corpus =
    List.map (fun (b : Kernels.benchmark) -> (b.Kernels.name, b.Kernels.source ~n:16)) Kernels.all
    @ [
        ("gemm-listing1", Workloads.gemm_source ~n:24);
        ("fusion-listing2", Workloads.listing2_source ~n:24);
        ("tiling-listing3", Workloads.gemm_source ~n:512);
      ]
  in
  List.iter
    (fun (name, src) ->
      let f = lower src in
      let ds = Lint.run f @ Verify.func f @ Bounds.func f in
      Alcotest.(check (list string)) (name ^ ": no errors") [] (codes (Diag.errors ds)))
    corpus;
  (* the paper's selective-offload split: GEMV-class kernels are
     unprofitable, GEMM-class ones are not *)
  List.iter
    (fun (b : Kernels.benchmark) ->
      let flagged = has_code "W001" (Lint.run (lower (b.Kernels.source ~n:16))) in
      match b.Kernels.kind with
      | Kernels.Gemv_like ->
          Alcotest.(check bool) (b.Kernels.name ^ " flagged unprofitable") true flagged
      | Kernels.Gemm_like ->
          Alcotest.(check bool) (b.Kernels.name ^ " not flagged") false flagged)
    Kernels.all

(* ---------- properties ---------- *)

let random_gemm_func seed =
  let m = 2 + (seed mod 7) and n = 2 + (seed / 7 mod 7) and k = 2 + (seed / 49 mod 7) in
  let open Builder in
  func "gen"
    [
      scalar Ast.Tfloat "alpha";
      array "C" [ m; n ];
      array "A" [ m; k ];
      array "B" [ k; n ];
    ]
    [
      for_ "i" (int m)
        [
          for_ "j" (int n)
            [
              assign "C" [ var "i"; var "j" ] (float 0.0);
              for_ "k" (int k)
                [
                  add_assign "C" [ var "i"; var "j" ]
                    (var "alpha" * idx "A" [ var "i"; var "k" ] * idx "B" [ var "k"; var "j" ]);
                ];
            ];
        ];
    ]

let qcheck_builder_programs_verify =
  QCheck.Test.make ~name:"random builder kernels verify and validate end to end" ~count:30
    QCheck.small_int (fun seed ->
      let f = Lower.func (random_gemm_func seed) in
      let checked = Pipeline.run_checked ~verify:true f in
      Verify.func f = []
      && Bounds.func f = []
      && (match checked.Pipeline.outcome with Pipeline.Offloaded _ -> true | _ -> false)
      && not (Diag.has_errors checked.Pipeline.diagnostics))

let qcheck_mutated_trees_rejected =
  QCheck.Test.make ~name:"dropping any statement from a tree is caught by legality" ~count:20
    QCheck.small_int (fun seed ->
      let before = tree_of (gemm_src (4 + (seed mod 5))) in
      match before with
      | St.Seq children when List.length children > 1 ->
          let victim = seed mod List.length children in
          let after = St.Seq (List.filteri (fun i _ -> i <> victim) children) in
          has_code "E103" (Legality.check_stmt_level ~before ~after)
      | t ->
          (* single-segment tree: drop it entirely *)
          has_code "E103"
            (Legality.check_stmt_level ~before:t ~after:(St.Code [])))

let suites =
  [
    ( "analysis.verify",
      [
        Alcotest.test_case "clean gemm" `Quick test_verify_clean_gemm;
        Alcotest.test_case "undefined names" `Quick test_verify_undefined_names;
        Alcotest.test_case "structure" `Quick test_verify_structure;
        Alcotest.test_case "call signatures" `Quick test_verify_call_signature;
        Alcotest.test_case "device state" `Quick test_verify_device_state;
        Alcotest.test_case "tree invariants" `Quick test_verify_tree_invariants;
      ] );
    ( "analysis.legality",
      [
        Alcotest.test_case "accumulation interchange" `Quick
          test_legality_accumulation_interchange_ok;
        Alcotest.test_case "illegal interchange" `Quick test_legality_illegal_interchange;
        Alcotest.test_case "dropped / reordered" `Quick test_legality_dropped_and_reordered;
        Alcotest.test_case "offload rewrite ok" `Quick test_legality_offload_rewrite_ok;
        Alcotest.test_case "lost write" `Quick test_legality_lost_write;
        Alcotest.test_case "illegal fusion" `Quick test_legality_illegal_fusion;
        QCheck_alcotest.to_alcotest qcheck_mutated_trees_rejected;
      ] );
    ( "analysis.bounds",
      [
        Alcotest.test_case "overflow witness" `Quick test_bounds_overflow_witness;
        Alcotest.test_case "underflow witness" `Quick test_bounds_underflow_witness;
        Alcotest.test_case "clean kernels" `Quick test_bounds_clean_kernels;
      ] );
    ( "analysis.lint",
      [
        Alcotest.test_case "low intensity" `Quick test_lint_low_intensity;
        Alcotest.test_case "dead / unused arrays" `Quick test_lint_dead_and_unused;
        Alcotest.test_case "explain scop failure" `Quick test_lint_explains_scop_failure;
        Alcotest.test_case "endurance budget" `Quick test_lint_endurance_budget;
        Alcotest.test_case "unguarded faulty offload" `Quick test_lint_unguarded_faulty_offload;
        Alcotest.test_case "tile exceeds device crossbar" `Quick test_lint_tile_exceeds_device;
      ] );
    ( "analysis.pipeline",
      [
        Alcotest.test_case "verify clean gemm" `Quick test_pipeline_verify_clean;
        Alcotest.test_case "rejects out-of-bounds" `Quick test_pipeline_rejects_oob;
        Alcotest.test_case "polybench corpus" `Quick test_pipeline_verify_all_polybench;
        Alcotest.test_case "paper examples" `Quick test_pipeline_verify_examples;
        Alcotest.test_case "lint CI corpus" `Quick test_lint_corpus_clean_and_selective;
        QCheck_alcotest.to_alcotest qcheck_builder_programs_verify;
      ] );
  ]
