open Tdo_util

let test_prng_determinism () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_copy_independent () =
  let a = Prng.create ~seed:7 in
  let _ = Prng.next_int64 a in
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues stream" (Prng.next_int64 a) (Prng.next_int64 b);
  let _ = Prng.next_int64 a in
  (* advancing a must not advance b *)
  let va = Prng.next_int64 a and vb = Prng.next_int64 b in
  Alcotest.(check bool) "streams diverge after unequal draws" true (va <> vb)

let test_prng_int_bounds () =
  let g = Prng.create ~seed:1 in
  for _ = 1 to 1000 do
    let v = Prng.int g ~bound:17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_prng_float_bounds () =
  let g = Prng.create ~seed:2 in
  for _ = 1 to 1000 do
    let v = Prng.float g ~bound:3.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 3.5)
  done

let test_prng_float_range () =
  let g = Prng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Prng.float_range g ~lo:(-2.0) ~hi:5.0 in
    Alcotest.(check bool) "in range" true (v >= -2.0 && v < 5.0)
  done

let test_prng_shuffle_permutation () =
  let g = Prng.create ~seed:4 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_gaussian_moments () =
  let g = Prng.create ~seed:5 in
  let n = 20_000 in
  let xs = List.init n (fun _ -> Prng.gaussian g ~mu:3.0 ~sigma:2.0) in
  Alcotest.(check bool) "mean near mu" true (Float.abs (Stats.mean xs -. 3.0) < 0.1);
  Alcotest.(check bool) "stddev near sigma" true (Float.abs (Stats.stddev xs -. 2.0) < 0.1)

let check_float name expected actual =
  Alcotest.(check (float 1e-9)) name expected actual

let test_mean () = check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ])
let test_geomean () = check_float "geomean" 4.0 (Stats.geomean [ 2.0; 8.0 ])

let test_geomean_positive_only () =
  Alcotest.check_raises "rejects zero" (Invalid_argument "Stats.geomean: non-positive sample")
    (fun () -> ignore (Stats.geomean [ 1.0; 0.0 ]))

let test_mean_empty () =
  Alcotest.check_raises "rejects empty" (Invalid_argument "Stats.mean: empty list") (fun () ->
      ignore (Stats.mean []))

let test_stddev () = check_float "stddev" 2.0 (Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ])
let test_minmax () =
  check_float "min" (-1.0) (Stats.minimum [ 3.0; -1.0; 2.0 ]);
  check_float "max" 3.0 (Stats.maximum [ 3.0; -1.0; 2.0 ])

let test_percentile () =
  check_float "median" 2.5 (Stats.percentile [ 1.0; 2.0; 3.0; 4.0 ] ~p:50.0);
  check_float "p0" 1.0 (Stats.percentile [ 1.0; 2.0; 3.0; 4.0 ] ~p:0.0);
  check_float "p100" 4.0 (Stats.percentile [ 1.0; 2.0; 3.0; 4.0 ] ~p:100.0)

let test_ratio_zero () =
  Alcotest.check_raises "rejects zero denominator"
    (Invalid_argument "Stats.ratio: zero denominator") (fun () -> ignore (Stats.ratio 1.0 0.0))

let test_table_render () =
  let columns = [ Pretty.column "kernel"; Pretty.column ~align:Pretty.Right "energy" ] in
  let rows = [ [ "gemm"; "1.00" ]; [ "mvt"; "12.50" ] ] in
  let s = Pretty.render ~columns ~rows in
  Alcotest.(check bool) "contains header" true (String.length s > 0);
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "header + rule + 2 rows (+ trailing)" 5 (List.length lines)

let test_table_arity () =
  Alcotest.check_raises "rejects ragged rows"
    (Invalid_argument "Pretty.render: row arity mismatch") (fun () ->
      ignore (Pretty.render ~columns:[ Pretty.column "a" ] ~rows:[ [ "1"; "2" ] ]))

let test_si_float () =
  Alcotest.(check string) "nano" "3.20n" (Pretty.si_float 3.2e-9);
  Alcotest.(check string) "mega" "42.00M" (Pretty.si_float 42e6);
  Alcotest.(check string) "unit" "1.50" (Pretty.si_float 1.5);
  Alcotest.(check string) "pico" "200.00p" (Pretty.si_float 200e-12)

let qcheck_geomean_between_min_max =
  QCheck.Test.make ~name:"geomean lies between min and max" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 20) (float_range 0.001 1000.0))
    (fun xs ->
      QCheck.assume (xs <> []);
      let g = Tdo_util.Stats.geomean xs in
      g >= Tdo_util.Stats.minimum xs -. 1e-9 && g <= Tdo_util.Stats.maximum xs +. 1e-9)

let qcheck_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 20) (float_range (-100.) 100.)) (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun (xs, (p1, p2)) ->
      QCheck.assume (xs <> []);
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Tdo_util.Stats.percentile xs ~p:lo <= Tdo_util.Stats.percentile xs ~p:hi +. 1e-9)

let suites =
  [
    ( "util.prng",
      [
        Alcotest.test_case "determinism" `Quick test_prng_determinism;
        Alcotest.test_case "copy independence" `Quick test_prng_copy_independent;
        Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
        Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
        Alcotest.test_case "float range" `Quick test_prng_float_range;
        Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutation;
        Alcotest.test_case "gaussian moments" `Slow test_gaussian_moments;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "mean" `Quick test_mean;
        Alcotest.test_case "geomean" `Quick test_geomean;
        Alcotest.test_case "geomean rejects non-positive" `Quick test_geomean_positive_only;
        Alcotest.test_case "mean rejects empty" `Quick test_mean_empty;
        Alcotest.test_case "stddev" `Quick test_stddev;
        Alcotest.test_case "min/max" `Quick test_minmax;
        Alcotest.test_case "percentile" `Quick test_percentile;
        Alcotest.test_case "ratio zero" `Quick test_ratio_zero;
        QCheck_alcotest.to_alcotest qcheck_geomean_between_min_max;
        QCheck_alcotest.to_alcotest qcheck_percentile_monotone;
      ] );
    ( "util.pretty",
      [
        Alcotest.test_case "render" `Quick test_table_render;
        Alcotest.test_case "arity check" `Quick test_table_arity;
        Alcotest.test_case "si formatting" `Quick test_si_float;
      ] );
  ]

let test_pretty_alignment () =
  let s =
    Tdo_util.Pretty.render
      ~columns:
        [ Tdo_util.Pretty.column "name"; Tdo_util.Pretty.column ~align:Tdo_util.Pretty.Right "v" ]
      ~rows:[ [ "a"; "1" ]; [ "bb"; "22" ] ]
  in
  let lines = String.split_on_char '\n' s in
  let row1 = List.nth lines 2 and row2 = List.nth lines 3 in
  Alcotest.(check bool) "left column padded right" true (String.length row1 = String.length row2);
  Alcotest.(check bool) "right column right-aligned" true
    (String.get row1 (String.length row1 - 1) = '1'
    && String.get row2 (String.length row2 - 1) = '2')

let alignment_suite =
  ("util.alignment", [ Alcotest.test_case "column alignment" `Quick test_pretty_alignment ])

(* ---------- Json: the hand-rolled parser behind reports and the tuning db ---------- *)

let test_json_parse () =
  match Json.parse {| {"a": [1, 2.5, -3e2], "b": "x\n\"y\"", "c": null, "d": true} |} with
  | Error m -> Alcotest.fail m
  | Ok j ->
      let mem k = match Json.member k j with Some v -> v | None -> Alcotest.failf "missing %s" k in
      let num v = match Json.to_float v with Some f -> f | None -> Alcotest.fail "not a number" in
      let a = Json.to_list (mem "a") in
      Alcotest.(check (float 1e-9)) "int" 1.0 (num (List.nth a 0));
      Alcotest.(check (float 1e-9)) "float" 2.5 (num (List.nth a 1));
      Alcotest.(check (float 1e-6)) "exponent" (-300.0) (num (List.nth a 2));
      (match Json.to_string_opt (mem "b") with
      | Some s -> Alcotest.(check string) "escapes" "x\n\"y\"" s
      | None -> Alcotest.fail "b not a string");
      Alcotest.(check bool) "null" true (mem "c" = Json.Null);
      Alcotest.(check bool) "bool" true (mem "d" = Json.Bool true)

let test_json_rejects_malformed () =
  List.iter
    (fun src ->
      match Json.parse src with
      | Ok _ -> Alcotest.failf "accepted malformed %S" src
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\" 1}"; "tru"; "\"unterminated"; "{} trailing" ]

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("name", Json.Str "tune \"quoted\"\n");
        ("xs", Json.Arr [ Json.Num 1.0; Json.Num (-2.25); Json.Null; Json.Bool false ]);
        ("empty", Json.Arr []);
      ]
  in
  match Json.parse (Json.to_string j) with
  | Ok j' -> Alcotest.(check bool) "print/parse roundtrip" true (j = j')
  | Error m -> Alcotest.fail m

(* ---------- Bench_report.compare: report-vs-report deltas ---------- *)

let test_bench_report_compare () =
  let baseline_path = Filename.temp_file "tdo_bench_baseline" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove baseline_path with Sys_error _ -> ())
    (fun () ->
      let sec ?(minor_words = 10.0) name wall_s =
        {
          Bench_report.name;
          wall_s;
          minor_words;
          major_words = 5.0;
          promoted_words = 1.0;
          domains = 2;
          seq_wall_s = Some (2.0 *. wall_s);
        }
      in
      Bench_report.write ~path:baseline_path ~extra:[ ("k", 3.5) ]
        ~sections:[ sec "fig6" 2.0; sec "fig5" 1.0; sec "gone" 4.0 ] ();
      (match Bench_report.load_sections ~path:baseline_path with
      | Error m -> Alcotest.fail m
      | Ok secs ->
          Alcotest.(check int) "sections round-trip" 3 (List.length secs);
          let s = List.find (fun (s : Bench_report.section) -> s.name = "fig6") secs in
          Alcotest.(check (float 1e-9)) "wall_s round-trips" 2.0 s.Bench_report.wall_s;
          Alcotest.(check (float 1e-9)) "major_words round-trips" 5.0 s.major_words;
          Alcotest.(check (float 1e-9)) "promoted_words round-trips" 1.0 s.promoted_words;
          Alcotest.(check int) "domains round-trips" 2 s.domains;
          Alcotest.(check bool) "seq_wall_s round-trips" true (s.seq_wall_s = Some 4.0));
      (match Bench_report.load_extra ~path:baseline_path with
      | Error m -> Alcotest.fail m
      | Ok extra ->
          Alcotest.(check (float 1e-9)) "extra round-trips" 3.5 (List.assoc "k" extra));
      let current =
        [ sec "fig6" 1.0; sec ~minor_words:20.0 "fig5" 1.5; sec "new" 9.0 ]
      in
      match Bench_report.compare ~tolerance:0.10 ~baseline:baseline_path current with
      | Error m -> Alcotest.fail m
      | Ok deltas ->
          Alcotest.(check int) "only common sections compared" 2 (List.length deltas);
          let d name = List.find (fun (d : Bench_report.delta) -> d.name = name) deltas in
          let fig6 = d "fig6" in
          Alcotest.(check (float 1e-9)) "speedup" 2.0 fig6.Bench_report.speedup_vs_baseline;
          Alcotest.(check (float 1e-9)) "delta" (-1.0) fig6.Bench_report.delta_s;
          Alcotest.(check bool) "faster is not a regression" false fig6.Bench_report.regression;
          Alcotest.(check bool) "same allocation is not an alloc regression" false
            fig6.Bench_report.alloc_regression;
          let fig5 = d "fig5" in
          Alcotest.(check bool) "50% slower is a regression" true fig5.Bench_report.regression;
          Alcotest.(check bool) "2x allocation is an alloc regression" true
            fig5.Bench_report.alloc_regression;
          let fields = Bench_report.delta_fields deltas in
          Alcotest.(check (float 1e-9)) "flattened speedup" 2.0
            (List.assoc "fig6_speedup_vs_baseline" fields);
          Alcotest.(check (float 1e-9)) "flattened regression flag" 1.0
            (List.assoc "fig5_regression" fields))

let test_bench_report_compare_missing_baseline () =
  match Bench_report.compare ~baseline:"/nonexistent/bench.json" [] with
  | Ok _ -> Alcotest.fail "missing baseline accepted"
  | Error _ -> ()

let json_suite =
  ( "util.json",
    [
      Alcotest.test_case "parse" `Quick test_json_parse;
      Alcotest.test_case "rejects malformed" `Quick test_json_rejects_malformed;
      Alcotest.test_case "print/parse roundtrip" `Quick test_json_roundtrip;
    ] )

let bench_report_suite =
  ( "util.bench_report",
    [
      Alcotest.test_case "compare against baseline report" `Quick test_bench_report_compare;
      Alcotest.test_case "missing baseline is an error" `Quick
        test_bench_report_compare_missing_baseline;
    ] )

let suites = suites @ [ alignment_suite; json_suite; bench_report_suite ]
