(* The graph workload subsystem: multi-kernel DAG programs, their text
   codec, composed-source execution, dependence-edge inference against
   the region analysis, and cross-request weight residency (pinned
   tiles survive same-tenant/model requests, never cross tenants). *)

module Graph = Tdo_graph.Graph
module Kernels = Tdo_polybench.Kernels
module Interp = Tdo_lang.Interp
module Mat = Tdo_linalg.Mat
module Depgraph = Tdo_analysis.Depgraph
module Backend = Tdo_backend.Backend
module Scheduler = Tdo_serve.Scheduler
module Telemetry = Tdo_serve.Telemetry
module Trace = Tdo_serve.Trace
module Device = Tdo_serve.Device
module Kernel_cache = Tdo_serve.Kernel_cache
module Workload = Tdo_loadgen.Workload

let mlp4 = Graph.mlp ~layers:4 ()
let attn = Graph.attention ()

let checksum mats =
  let b = Buffer.create 256 in
  List.iter (Mat.iteri ~f:(fun _ _ v -> Buffer.add_int64_le b (Int64.bits_of_float v))) mats;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ---------- construction and validation ---------- *)

let test_make_rejects_invalid () =
  let layer lname op ins out = { Graph.lname; op; ins; out } in
  let expect_error what = function
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: expected rejection" what
  in
  expect_error "cycle"
    (Graph.make ~name:"cyc" ~inputs:[ "x" ]
       [ layer "a" Graph.Add [ "x"; "h2" ] "h1"; layer "b" Graph.Add [ "h1"; "x" ] "h2" ]);
  expect_error "undefined operand"
    (Graph.make ~name:"undef" ~inputs:[ "x" ] [ layer "a" Graph.Add [ "x"; "nope" ] "h" ]);
  expect_error "duplicate output"
    (Graph.make ~name:"dup" ~inputs:[ "x" ]
       [ layer "a" Graph.Dense [ "W"; "x" ] "h"; layer "b" Graph.Dense [ "V"; "x" ] "h" ]);
  expect_error "weight aliases activation"
    (Graph.make ~name:"alias" ~inputs:[ "x" ] [ layer "a" Graph.Dense [ "x"; "x" ] "h" ]);
  expect_error "bad identifier"
    (Graph.make ~name:"bad name" ~inputs:[ "x" ] [ layer "a" Graph.Dense [ "W"; "x" ] "h" ])

let test_standard_shapes () =
  Alcotest.(check (list string)) "mlp4 weights" [ "W1"; "W2"; "W3"; "W4" ] (Graph.weights mlp4);
  Alcotest.(check (list string)) "mlp4 outputs" [ "h4" ] (Graph.graph_outputs mlp4);
  Alcotest.(check (list string)) "attn weights" [ "Wq"; "Wk"; "Wv"; "Wo" ] (Graph.weights attn);
  Alcotest.(check (list string)) "attn outputs" [ "y" ] (Graph.graph_outputs attn);
  Alcotest.(check bool) "attn topo order valid" true
    (Graph.valid_order attn (Graph.topo_order attn));
  (* the block has real width: swapping the independent projections is
     still topological, reversing a dependence is not *)
  Alcotest.(check bool) "parallel projections commute" true
    (Graph.valid_order attn [ 2; 1; 0; 3; 4; 5 ]);
  Alcotest.(check bool) "score before projections rejected" false
    (Graph.valid_order attn [ 3; 0; 1; 2; 4; 5 ])

(* ---------- codec ---------- *)

let test_codec_roundtrip_standard () =
  List.iter
    (fun g ->
      match Graph.of_text (Graph.to_text g) with
      | Ok g' -> Alcotest.(check bool) (Graph.kernel_name g ^ " roundtrip") true (g = g')
      | Error m -> Alcotest.failf "%s: %s" (Graph.kernel_name g) m)
    Graph.standard

let test_codec_rejects_garbage () =
  (match Graph.of_text "layer a dense W,x -> h\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing graph line accepted");
  match Graph.of_text "#tdo-graph v1\ngraph g\ninput x\nlayer a spin W,x -> h\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown op accepted"

(* Random valid graphs by construction: each layer draws its operands
   from the arrays already defined, so the DAG property holds and the
   only thing under test is the codec. *)
let gen_graph =
  QCheck.Gen.(
    let ident i prefix = Printf.sprintf "%s%d" prefix i in
    let* nlayers = int_range 1 6 in
    let* ninputs = int_range 1 3 in
    let inputs = List.init ninputs (fun i -> ident i "x") in
    let rec build i defined acc =
      if i >= nlayers then return (List.rev acc)
      else
        let* op = oneofl [ Graph.Dense; Graph.Add; Graph.Mul ] in
        let* a = oneofl defined in
        let* b = oneofl defined in
        let out = ident i "h" in
        let ins = match op with Graph.Dense -> [ ident i "W"; a ] | _ -> [ a; b ] in
        build (i + 1) (out :: defined)
          ({ Graph.lname = ident i "l"; op; ins; out } :: acc)
    in
    let* layers = build 0 inputs [] in
    match Graph.make ~name:"rand" ~inputs layers with
    | Ok g -> return g
    | Error m -> failwith ("generator produced invalid graph: " ^ m))

let qcheck_codec_roundtrip =
  QCheck.Test.make ~count:100 ~name:"graph codec roundtrip"
    (QCheck.make ~print:Graph.to_text gen_graph)
    (fun g -> Graph.of_text (Graph.to_text g) = Ok g)

(* ---------- composed source and execution ---------- *)

let test_source_compiles_and_runs () =
  List.iter
    (fun g ->
      let n = 8 in
      let mats = Graph.run_host g ~n ~seed:3 in
      Alcotest.(check int)
        (Graph.kernel_name g ^ " readback arity")
        (List.length (Graph.graph_outputs g))
        (List.length mats);
      List.iter
        (fun m ->
          Alcotest.(check bool) "vector readback" true (Mat.rows m = n && Mat.cols m = 1))
        mats)
    Graph.standard

let test_weights_model_scoped () =
  (* two requests, different seeds: weight bindings bit-identical,
     input bindings different *)
  let n = 6 in
  let args_of seed = fst (Graph.make_args mlp4 ~n ~seed) in
  let a1 = args_of 1 and a2 = args_of 2 in
  let data name args =
    match List.assoc name args with
    | Interp.Varray arr -> Array.copy arr.Interp.data
    | _ -> Alcotest.fail "not an array"
  in
  Alcotest.(check bool) "weights shared across requests" true (data "W1" a1 = data "W1" a2);
  Alcotest.(check bool) "inputs are request-seeded" false (data "x" a1 = data "x" a2)

let test_topological_order_invariance () =
  (* every valid order of the attention block computes bit-identically
     to the canonical sequential oracle *)
  let n = 8 and seed = 11 in
  let golden = checksum (Graph.run_host attn ~n ~seed) in
  let orders =
    [ [ 2; 1; 0; 3; 4; 5 ]; [ 1; 0; 2; 3; 4; 5 ]; [ 0; 2; 1; 3; 4; 5 ] ]
  in
  List.iter
    (fun order ->
      Alcotest.(check bool) "order is topological" true (Graph.valid_order attn order);
      Alcotest.(check string) "order-invariant result" golden
        (checksum (Graph.run_host ~order attn ~n ~seed)))
    orders

let test_infer_edges_matches_structure () =
  (* region-analysis RAW edges = the name-implied producer→consumer
     edges, on the canonical emission order *)
  match Graph.infer_edges attn ~n:8 with
  | Error m -> Alcotest.fail m
  | Ok edges ->
      let raw =
        List.filter_map
          (fun (s, d, k, a) -> if k = Depgraph.Raw then Some (s, d, a) else None)
          edges
        |> List.sort compare
      in
      let expected =
        (* topo order of attn is declaration order: q k v s w y *)
        [ (0, 3, "q"); (1, 3, "k"); (2, 4, "v"); (3, 4, "s"); (4, 5, "w") ]
      in
      Alcotest.(check bool) "RAW edges match producer→consumer" true
        (raw = List.sort compare expected)

let test_find_bench () =
  (match Graph.find_bench "graph:mlp4" with
  | Ok b -> Alcotest.(check string) "graph bench name" "graph:mlp4" b.Kernels.name
  | Error m -> Alcotest.fail m);
  (match Graph.find_bench "gemm" with
  | Ok b -> Alcotest.(check string) "polybench passthrough" "gemm" b.Kernels.name
  | Error m -> Alcotest.fail m);
  match Graph.find_bench "graph:nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown graph accepted"

(* ---------- weight residency ---------- *)

let graph_benches = List.map (fun g -> (Graph.kernel_name g, Graph.benchmark g)) Graph.standard

let residency_platform =
  (* enough tiles that a model's whole weight set can stay latched *)
  let base = Tdo_runtime.Platform.default_config in
  let engine = { base.Tdo_runtime.Platform.engine with Tdo_cimacc.Micro_engine.tiles = 4 } in
  { base with Tdo_runtime.Platform.engine }

let run_on_device ~residency bench ~n ~seed dev cache =
  let entry = Kernel_cache.find_or_compile cache (bench.Kernels.source ~n) in
  let args, readback = bench.Kernels.make_args ~n ~seed in
  let residency =
    Option.map (fun tenant -> entry.Kernel_cache.key ^ "#t" ^ string_of_int tenant) residency
  in
  let stats = Device.run ?residency dev entry.Kernel_cache.compiled ~args in
  (stats, checksum (readback ()))

let test_device_residency_skips_reprogramming () =
  let bench = Graph.benchmark mlp4 in
  let n = 8 in
  let dev = Device.create ~platform_config:residency_platform ~id:0 () in
  let cache = Kernel_cache.create () in
  let cold, cs_cold = run_on_device ~residency:(Some 1) bench ~n ~seed:5 dev cache in
  Alcotest.(check bool) "cold run programs weights" true (cold.Device.write_bytes > 0);
  (* same tenant, same model, new activations: programming skipped,
     result identical to an unpinned device *)
  let warm, cs_warm = run_on_device ~residency:(Some 1) bench ~n ~seed:6 dev cache in
  Alcotest.(check int) "resident run programs nothing" 0 warm.Device.write_bytes;
  let oracle = Device.create ~platform_config:residency_platform ~id:1 ~seed:0 () in
  let _, cs_ref5 = run_on_device ~residency:None bench ~n ~seed:5 oracle cache in
  let _, cs_ref6 = run_on_device ~residency:None bench ~n ~seed:6 oracle cache in
  Alcotest.(check string) "cold result matches unpinned" cs_ref5 cs_cold;
  Alcotest.(check string) "resident result matches unpinned" cs_ref6 cs_warm

let test_residency_never_crosses_tenants () =
  let bench = Graph.benchmark mlp4 in
  let n = 8 in
  let dev = Device.create ~platform_config:residency_platform ~id:0 () in
  let cache = Kernel_cache.create () in
  let _ = run_on_device ~residency:(Some 1) bench ~n ~seed:5 dev cache in
  (* a different tenant's request must reprogram even though the model
     (and hence the weight bytes) coincide: pinned state is policy-
     scoped to the (model, tenant) residency key *)
  let other, _ = run_on_device ~residency:(Some 2) bench ~n ~seed:5 dev cache in
  Alcotest.(check bool) "cross-tenant run reprograms" true (other.Device.write_bytes > 0);
  (* and an unkeyed (non-graph) run always invalidates *)
  let _ = run_on_device ~residency:(Some 2) bench ~n ~seed:7 dev cache in
  let unkeyed, _ = run_on_device ~residency:None bench ~n ~seed:8 dev cache in
  Alcotest.(check bool) "unkeyed run reprograms" true (unkeyed.Device.write_bytes > 0)

let test_residency_cleared_on_convert_and_quarantine () =
  let bench = Graph.benchmark mlp4 in
  let n = 8 in
  let cache = Kernel_cache.create () in
  let dual = Device.create ~platform_config:residency_platform ~backend:Backend.dual ~id:0 () in
  let _ = Device.convert dual ~to_compute:true in
  let _ = run_on_device ~residency:(Some 1) bench ~n ~seed:5 dual cache in
  Alcotest.(check bool) "resident after clean run" true (Device.resident dual <> None);
  let _ = Device.convert dual ~to_compute:false in
  Alcotest.(check bool) "revert clears residency" true (Device.resident dual = None);
  let _ = Device.convert dual ~to_compute:true in
  let again, _ = run_on_device ~residency:(Some 1) bench ~n ~seed:6 dual cache in
  Alcotest.(check bool) "post-revert run reprograms" true (again.Device.write_bytes > 0);
  Device.quarantine dual ~rows:(0, 2);
  Alcotest.(check bool) "quarantine clears residency" true (Device.resident dual = None)

(* ---------- graph serving through the scheduler ---------- *)

let graph_trace ~requests ~tenants ~n ~seed =
  let req id tenant =
    {
      Trace.id;
      kernel = "graph:mlp4";
      n;
      seed = seed + id;
      arrival_ps = id * 1000;
      deadline_ps = None;
      tenant;
      slo = Trace.Interactive;
    }
  in
  {
    Trace.name = "graph-test";
    seed;
    requests = List.init requests (fun i -> req i (i mod tenants));
  }

let scheduler_config ~residency =
  {
    Scheduler.default_config with
    Scheduler.platform_config = residency_platform;
    graphs = graph_benches;
    graph_residency = residency;
    devices = 2;
    parallel = false;
  }

let completed_write_bytes report =
  List.fold_left
    (fun acc (r : Telemetry.record) ->
      match r.Telemetry.outcome with
      | Telemetry.Completed -> acc + r.Telemetry.write_bytes
      | _ -> acc)
    0
    (Telemetry.records report.Scheduler.telemetry)

let test_scheduler_residency_amortises_writes () =
  let trace = graph_trace ~requests:24 ~tenants:1 ~n:8 ~seed:100 in
  let pinned = Scheduler.replay ~config:(scheduler_config ~residency:true) trace in
  let unpinned = Scheduler.replay ~config:(scheduler_config ~residency:false) trace in
  Alcotest.(check int) "all served (pinned)" 24 (Scheduler.completed pinned);
  Alcotest.(check int) "all served (unpinned)" 24 (Scheduler.completed unpinned);
  let wp = completed_write_bytes pinned and wu = completed_write_bytes unpinned in
  Alcotest.(check bool)
    (Printf.sprintf "residency amortises weight writes (%d vs %d)" wp wu)
    true
    (wp * 5 <= wu);
  (* pinning must not change a single result *)
  Alcotest.(check int) "pinned == unpinned outputs" 0 (Scheduler.divergence pinned unpinned)

let test_scheduler_residency_multi_tenant_golden () =
  let trace = graph_trace ~requests:30 ~tenants:2 ~n:8 ~seed:200 in
  let report = Scheduler.replay ~config:(scheduler_config ~residency:true) trace in
  let golden_config = Scheduler.golden_config (scheduler_config ~residency:true) in
  Alcotest.(check bool) "golden config disables residency" false
    golden_config.Scheduler.graph_residency;
  let golden = Scheduler.replay ~config:golden_config trace in
  Alcotest.(check int) "0 divergence vs sequential oracle" 0
    (Scheduler.divergence report golden)

(* ---------- graph tenants in the load generator ---------- *)

let test_graph_tenants () =
  let tenants = Workload.graph_tenants ~n:8 ~total_rate_rps:5000.0 () in
  let trace = Workload.generate ~seed:9 ~count:60 tenants in
  Alcotest.(check int) "requested count" 60 (List.length trace.Trace.requests);
  List.iter
    (fun (r : Trace.request) ->
      match Graph.find_bench r.Trace.kernel with
      | Ok _ -> ()
      | Error m -> Alcotest.fail m)
    trace.Trace.requests;
  let kernels =
    List.sort_uniq compare (List.map (fun (r : Trace.request) -> r.Trace.kernel) trace.Trace.requests)
  in
  Alcotest.(check bool) "both models in the mix" true (List.length kernels >= 2)

let suites =
  [
    ( "graph",
      [
        Alcotest.test_case "make rejects invalid graphs" `Quick test_make_rejects_invalid;
        Alcotest.test_case "standard model shapes" `Quick test_standard_shapes;
        Alcotest.test_case "codec roundtrip (standard)" `Quick test_codec_roundtrip_standard;
        Alcotest.test_case "codec rejects garbage" `Quick test_codec_rejects_garbage;
        QCheck_alcotest.to_alcotest qcheck_codec_roundtrip;
        Alcotest.test_case "composed source runs" `Quick test_source_compiles_and_runs;
        Alcotest.test_case "weights are model-scoped" `Quick test_weights_model_scoped;
        Alcotest.test_case "topological-order invariance" `Quick
          test_topological_order_invariance;
        Alcotest.test_case "inferred edges match structure" `Quick
          test_infer_edges_matches_structure;
        Alcotest.test_case "find_bench resolves graphs and kernels" `Quick test_find_bench;
      ] );
    ( "graph-residency",
      [
        Alcotest.test_case "resident device skips reprogramming" `Quick
          test_device_residency_skips_reprogramming;
        Alcotest.test_case "residency never crosses tenants" `Quick
          test_residency_never_crosses_tenants;
        Alcotest.test_case "convert/quarantine clear residency" `Quick
          test_residency_cleared_on_convert_and_quarantine;
        Alcotest.test_case "scheduler amortises weight writes" `Quick
          test_scheduler_residency_amortises_writes;
        Alcotest.test_case "multi-tenant graph replay matches golden" `Quick
          test_scheduler_residency_multi_tenant_golden;
        Alcotest.test_case "graph tenants generate servable mixes" `Quick test_graph_tenants;
      ] );
  ]
