module Arrival = Tdo_loadgen.Arrival
module Workload = Tdo_loadgen.Workload
module Codec = Tdo_loadgen.Codec
module Trace = Tdo_serve.Trace
module Admission = Tdo_serve.Admission
module Prng = Tdo_util.Prng

let ps_per_s = 1e12

(* ---------- arrival processes ---------- *)

let process_gen =
  QCheck.Gen.(
    let rate = map (fun r -> 1000.0 *. float_of_int r) (2 -- 50) in
    oneof
      [
        map (fun rate_rps -> Arrival.Poisson { rate_rps }) rate;
        map2
          (fun base mult ->
            Arrival.Bursty
              {
                base_rps = base;
                burst_rps = float_of_int mult *. base;
                mean_burst_s = 0.02;
                mean_quiet_s = 0.05;
              })
          rate (2 -- 8);
        map2
          (fun base mult ->
            Arrival.Diurnal
              { base_rps = base; peak_rps = float_of_int mult *. base; period_s = 0.2 })
          rate (2 -- 8);
      ])

let process_arb = QCheck.make ~print:Arrival.describe process_gen

(* The long-run empirical rate of every process shape converges on
   mean_rate_rps. The averaging horizon has to cover the process's own
   time scale — many dwell cycles for the MMPP, whole periods for the
   diurnal sweep — or the dwell/phase randomness dominates the
   estimate. *)
let qcheck_inter_arrival_mean =
  QCheck.Test.make ~name:"empirical arrival rate matches mean_rate_rps" ~count:12
    process_arb (fun p ->
      let horizon_s =
        match p with
        | Arrival.Poisson _ -> 0.5
        | Arrival.Bursty b -> 60.0 *. (b.mean_burst_s +. b.mean_quiet_s)
        | Arrival.Diurnal d -> 10.0 *. d.period_s
      in
      let g = Prng.create ~seed:7 in
      let gap = Arrival.gaps_ps p g in
      let horizon_ps = int_of_float (horizon_s *. ps_per_s) in
      let elapsed = ref 0 and n = ref 0 in
      while !elapsed < horizon_ps do
        elapsed := !elapsed + gap ();
        incr n
      done;
      let observed_rps = float_of_int !n /. (float_of_int !elapsed /. ps_per_s) in
      let expected_rps = Arrival.mean_rate_rps p in
      abs_float (observed_rps -. expected_rps) <= 0.20 *. expected_rps)

let qcheck_gaps_deterministic =
  QCheck.Test.make ~name:"same seed, same gap sequence" ~count:20 process_arb (fun p ->
      let run () =
        let g = Prng.create ~seed:99 in
        let gap = Arrival.gaps_ps p g in
        List.init 500 (fun _ -> gap ())
      in
      let a = run () in
      a = run () && List.for_all (fun x -> x >= 1) a)

let test_parse_roundtrip () =
  List.iter
    (fun p ->
      match Arrival.parse (Arrival.describe p) with
      | Ok q -> Alcotest.(check string) "round-trip" (Arrival.describe p) (Arrival.describe q)
      | Error e -> Alcotest.fail e)
    [
      Arrival.Poisson { rate_rps = 25000.0 };
      Arrival.Bursty
        { base_rps = 1000.0; burst_rps = 9000.0; mean_burst_s = 0.05; mean_quiet_s = 0.2 };
      Arrival.Diurnal { base_rps = 500.0; peak_rps = 4000.0; period_s = 1.5 };
    ];
  (match Arrival.parse "poisson:not-a-rate" with
  | Ok _ -> Alcotest.fail "accepted a bogus rate"
  | Error _ -> ());
  match Arrival.parse "sawtooth:1:2" with
  | Ok _ -> Alcotest.fail "accepted an unknown shape"
  | Error _ -> ()

(* ---------- workload generation + trace codec ---------- *)

let test_generate_shape () =
  let tenants = Workload.standard_tenants ~total_rate_rps:30_000.0 () in
  let trace = Workload.generate ~seed:5 ~count:600 tenants in
  Alcotest.(check int) "exact count" 600 (List.length trace.Trace.requests);
  (* dense ids, non-decreasing arrivals, every tenant contributes *)
  let _ =
    List.fold_left
      (fun (expect_id, last_ps) (r : Trace.request) ->
        Alcotest.(check int) "dense ids" expect_id r.Trace.id;
        Alcotest.(check bool) "sorted by arrival" true (r.Trace.arrival_ps >= last_ps);
        (expect_id + 1, r.Trace.arrival_ps))
      (0, 0) trace.Trace.requests
  in
  List.iter
    (fun tenant ->
      Alcotest.(check bool)
        (Printf.sprintf "tenant %d present" tenant)
        true
        (List.exists (fun (r : Trace.request) -> r.Trace.tenant = tenant) trace.Trace.requests))
    [ 1; 2; 3 ];
  (* the interactive tenant owns half the rate, so roughly half the
     requests (generously bounded) *)
  let interactive =
    List.length
      (List.filter (fun (r : Trace.request) -> r.Trace.slo = Trace.Interactive) trace.Trace.requests)
  in
  Alcotest.(check bool) "rate shares show up in the mix" true
    (interactive > 600 * 3 / 10 && interactive < 600 * 7 / 10);
  (* request seeds are unique: replays must not correlate data *)
  let seeds = List.map (fun (r : Trace.request) -> r.Trace.seed) trace.Trace.requests in
  Alcotest.(check int) "unique request seeds" 600 (List.length (List.sort_uniq compare seeds))

let qcheck_generate_deterministic =
  QCheck.Test.make ~name:"same seed, byte-identical encoded trace" ~count:8
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1000))
    (fun seed ->
      let gen () =
        Codec.encode
          (Workload.generate ~seed ~count:300
             (Workload.standard_tenants ~total_rate_rps:20_000.0 ()))
      in
      String.equal (gen ()) (gen ()))

let test_codec_roundtrip () =
  let tenants =
    Workload.standard_tenants
      ~process:(fun _slo rate ->
        Arrival.Bursty
          { base_rps = rate; burst_rps = 6.0 *. rate; mean_burst_s = 0.03; mean_quiet_s = 0.1 })
      ~total_rate_rps:15_000.0 ()
  in
  let trace = Workload.generate ~seed:9 ~count:400 tenants in
  (match Codec.decode (Codec.encode trace) with
  | Error e -> Alcotest.fail e
  | Ok decoded ->
      Alcotest.(check string) "name survives" trace.Trace.name decoded.Trace.name;
      Alcotest.(check int) "seed survives" trace.Trace.seed decoded.Trace.seed;
      Alcotest.(check bool) "requests survive field-for-field" true
        (trace.Trace.requests = decoded.Trace.requests));
  let path = Filename.temp_file "tdo-loadgen" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Codec.write trace ~path;
      match Codec.read ~path with
      | Error e -> Alcotest.fail e
      | Ok decoded ->
          Alcotest.(check bool) "file round-trip" true (trace.Trace.requests = decoded.Trace.requests));
  match Codec.decode "no header here\nreq kernel=gemm n=8" with
  | Ok _ -> Alcotest.fail "accepted a headerless trace"
  | Error _ -> ()

(* ---------- admission against a generated stream ---------- *)

(* Feed a generated open-loop stream straight into a token bucket:
   whatever the arrival pattern, the admitted count can never exceed
   the token budget burst + rate * elapsed. *)
let qcheck_admission_never_exceeds_budget =
  QCheck.Test.make ~name:"admitted <= burst + rate * elapsed" ~count:10 process_arb
    (fun p ->
      let rate_per_s = 0.4 *. Arrival.mean_rate_rps p in
      let burst = 10.0 in
      let policy =
        {
          Admission.per_tenant = [ (1, { Admission.rate_per_s; burst }) ];
          default_bucket = None;
          batch_above = 1.0;
          best_effort_above = 1.0;
        }
      in
      let t = Admission.create policy in
      let g = Prng.create ~seed:3 in
      let gap = Arrival.gaps_ps p g in
      let admitted = ref 0 and clock_ps = ref 0 in
      for id = 0 to 1999 do
        clock_ps := !clock_ps + gap ();
        let r =
          {
            Trace.id;
            kernel = "gemm";
            n = 8;
            seed = id;
            arrival_ps = !clock_ps;
            deadline_ps = None;
            tenant = 1;
            slo = Trace.Interactive;
          }
        in
        match Admission.admit t ~now_ps:!clock_ps ~queue_len:0 ~capacity:0 r with
        | Admission.Admit -> incr admitted
        | Admission.Shed_rate | Admission.Shed_load -> ()
      done;
      let elapsed_s = float_of_int !clock_ps /. ps_per_s in
      float_of_int !admitted <= burst +. (rate_per_s *. elapsed_s) +. 1e-6)

let suites =
  [
    ( "loadgen.arrival",
      [
        Alcotest.test_case "spec parse round-trip" `Quick test_parse_roundtrip;
        QCheck_alcotest.to_alcotest ~long:false qcheck_inter_arrival_mean;
        QCheck_alcotest.to_alcotest ~long:false qcheck_gaps_deterministic;
      ] );
    ( "loadgen.workload",
      [
        Alcotest.test_case "merged multi-tenant trace shape" `Quick test_generate_shape;
        QCheck_alcotest.to_alcotest ~long:false qcheck_generate_deterministic;
        Alcotest.test_case "trace codec round-trip" `Quick test_codec_roundtrip;
      ] );
    ( "loadgen.admission",
      [ QCheck_alcotest.to_alcotest ~long:false qcheck_admission_never_exceeds_budget ] );
  ]
