(* The autotuner: design-space enumeration and pruning, the analytic
   cost model (monotonicity by construction, calibration accuracy
   against the cycle-accurate simulator), the persisted tuning database
   and its consumption by the serving scheduler. *)

module Space = Tdo_tune.Space
module Cost_model = Tdo_tune.Cost_model
module Search = Tdo_tune.Search
module Db = Tdo_tune.Db
module Backend = Tdo_backend.Backend
module Offload = Tdo_tactics.Offload
module Flow = Tdo_cim.Flow
module Kernels = Tdo_polybench.Kernels
module Scheduler = Tdo_serve.Scheduler
module Telemetry = Tdo_serve.Telemetry
module Trace = Tdo_serve.Trace
module Kernel_cache = Tdo_serve.Kernel_cache
module Ast = Tdo_lang.Ast

let bench name = match Kernels.find name with Ok b -> b | Error m -> Alcotest.fail m

let tune_bench ?(axes = Space.smoke_axes) ?(objective = Search.Cycles) ~n name =
  let b = bench name in
  let source = b.Kernels.source ~n in
  let args () = fst (b.Kernels.make_args ~n ~seed:42) in
  match Search.tune ~axes ~objective ~source ~args () with
  | Ok r -> r
  | Error m -> Alcotest.failf "tune %s: %s" name m

(* ---------- Space: enumeration and pruning ---------- *)

let test_space_enumerate () =
  let points = Space.enumerate Space.default_axes in
  Alcotest.(check bool) "non-trivial space" true (List.length points > 20);
  Alcotest.(check bool) "default configuration first" true
    (List.hd points = Offload.default_config);
  let sorted = List.sort_uniq compare points in
  Alcotest.(check int) "no duplicate points" (List.length sorted) (List.length points)

let test_space_prune () =
  let ast = Tdo_lang.Parser.parse_func ((bench "gemm").Kernels.source ~n:16) in
  let points = Space.enumerate Space.default_axes in
  let pruned = Space.prune ~kernel:ast points in
  Alcotest.(check bool) "pruning shrinks the space" true
    (List.length pruned < List.length points);
  Alcotest.(check bool) "pruned is a subset" true
    (List.for_all (fun p -> List.mem p points) pruned);
  Alcotest.(check bool) "default survives pruning" true
    (List.mem Offload.default_config pruned);
  (* every crossbar geometry covers a 16-extent kernel, so they collapse
     to the smallest representative — plus the never-pruned default *)
  let geometries =
    List.sort_uniq compare
      (List.map (fun (p : Space.point) -> (p.Offload.xbar_rows, p.Offload.xbar_cols)) pruned)
  in
  Alcotest.(check bool) "smallest covering geometry kept" true (List.mem (64, 64) geometries);
  Alcotest.(check bool) "intermediate geometry collapsed" false (List.mem (128, 128) geometries)

let test_space_json_roundtrip () =
  let points = Space.enumerate Space.default_axes in
  List.iter
    (fun p ->
      match Space.of_json (Space.to_json p) with
      | Ok p' -> Alcotest.(check bool) (Space.describe p) true (p = p')
      | Error m -> Alcotest.fail m)
    points

(* ---------- Cost model ---------- *)

let plan_for ~n =
  let source = (bench "gemm").Kernels.source ~n in
  let ir, _ = Flow.compile ~options:Flow.o3_loop_tactics source in
  Offload.plan Offload.default_config ir

(* Plans are expensive to rebuild per qcheck iteration; share them. *)
let plan_table = Hashtbl.create 16

let cached_plan n =
  match Hashtbl.find_opt plan_table n with
  | Some p -> p
  | None ->
      let p = plan_for ~n in
      Hashtbl.add plan_table n p;
      p

let qcheck_predicted_cycles_monotone =
  QCheck.Test.make ~count:40
    ~name:"predicted cycles are monotone in the problem size for any non-negative model"
    QCheck.(pair small_int (list_of_size (QCheck.Gen.return 8) (float_bound_inclusive 100.0)))
    (fun (seed, coeffs) ->
      let coeffs = Array.of_list coeffs in
      let model = { Cost_model.coeffs } in
      let n = 4 + (abs seed mod 8) in
      let m = n + 1 + (abs seed mod 6) in
      Cost_model.predict_cycles model (cached_plan n)
      <= Cost_model.predict_cycles model (cached_plan m))

let test_features_monotone () =
  (* the raw counters themselves grow with n — the property the qcheck
     monotonicity argument stands on *)
  List.iter
    (fun (n, m) ->
      let fn = Cost_model.features (cached_plan n) in
      let fm = Cost_model.features (cached_plan m) in
      Array.iteri
        (fun i v ->
          Alcotest.(check bool)
            (Printf.sprintf "feature %s at %d<=%d" Cost_model.feature_names.(i) n m)
            true (v <= fm.(i)))
        fn)
    [ (4, 8); (8, 16); (16, 24) ]

(* Calibration accuracy on the paper's evaluation sizes: fig5 runs gemm
   at n=64, fig6's medium dataset is n=64 across the suite. The fitted
   model must land within 15% mean relative error of the simulator. *)
let test_calibration_accuracy () =
  List.iter
    (fun (name, n) ->
      let r = tune_bench ~axes:Space.default_axes ~n name in
      Alcotest.(check bool)
        (Printf.sprintf "%s@%d calibration error %.1f%% <= 15%%" name n
           (100.0 *. r.Search.calibration_error))
        true
        (r.Search.calibration_error <= 0.15))
    [ ("gemm", 64); ("mvt", 64) ]

let test_search_never_worse () =
  List.iter
    (fun name ->
      let r = tune_bench ~n:16 name in
      Alcotest.(check bool) (name ^ " improvement >= 1") true (Search.improvement r >= 1.0);
      let best = match r.Search.best.Search.measurement with
        | Some m -> m
        | None -> Alcotest.fail "winner not measured"
      in
      let default = match r.Search.default.Search.measurement with
        | Some m -> m
        | None -> Alcotest.fail "default not measured"
      in
      Alcotest.(check bool) (name ^ " tuned cycles <= default") true
        (best.Flow.roi_cycles <= default.Flow.roi_cycles))
    [ "gemm"; "gesummv"; "mvt" ]

let test_gemv_selective_offload_rediscovered () =
  (* the search should rediscover the paper's selective-offload rule:
     GEMV-class kernels are kept on the host, eliminating crossbar
     writes entirely while also running faster *)
  let r = tune_bench ~n:16 "mvt" in
  let best = Option.get r.Search.best.Search.measurement in
  let default = Option.get r.Search.default.Search.measurement in
  Alcotest.(check bool) "default offloads mvt" true (default.Flow.cim_write_bytes > 0);
  Alcotest.(check int) "tuned mvt stays on host" 0 best.Flow.cim_write_bytes;
  Alcotest.(check bool) "and is strictly faster" true
    (best.Flow.roi_cycles < default.Flow.roi_cycles)

(* ---------- Tuning database ---------- *)

let test_db_roundtrip () =
  let r_gemm = tune_bench ~n:16 "gemm" in
  let r_mvt = tune_bench ~n:16 "mvt" in
  let db =
    Db.add (Db.add Db.empty (Db.entry_of_result ~n:16 r_gemm)) (Db.entry_of_result ~n:16 r_mvt)
  in
  let path = Filename.temp_file "tdo_tune_db" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Db.save db path;
      match Db.load path with
      | Error m -> Alcotest.fail m
      | Ok db' ->
          Alcotest.(check int) "size round-trips" (Db.size db) (Db.size db');
          Alcotest.(check bool) "entries round-trip" true (Db.entries db = Db.entries db'))

let test_db_missing_file_is_empty () =
  match Db.load "/nonexistent/path/tune.db.json" with
  | Ok db -> Alcotest.(check int) "missing file loads empty" 0 (Db.size db)
  | Error m -> Alcotest.fail m

let test_db_lookup_and_clamp () =
  let r = tune_bench ~n:16 "gemm" in
  let entry = Db.entry_of_result ~n:16 r in
  let entry = { entry with Db.config = { entry.Db.config with Offload.xbar_rows = 256; xbar_cols = 256 } } in
  let db = Db.add Db.empty entry in
  let ast = Tdo_lang.Parser.parse_func ((bench "gemm").Kernels.source ~n:16) in
  (match Db.lookup db ast with
  | None -> Alcotest.fail "structural lookup missed"
  | Some e -> Alcotest.(check string) "lookup hits the entry" entry.Db.digest e.Db.digest);
  (match Db.config_for ~device:(64, 64) db ast with
  | None -> Alcotest.fail "config_for missed"
  | Some c ->
      Alcotest.(check int) "rows clamped to device" 64 c.Offload.xbar_rows;
      Alcotest.(check int) "cols clamped to device" 64 c.Offload.xbar_cols);
  let other = Tdo_lang.Parser.parse_func ((bench "gemm").Kernels.source ~n:24) in
  Alcotest.(check bool) "different size misses" true (Db.config_for db other = None)

(* Entries are keyed by (digest, device class): a configuration tuned
   on the analog crossbar must be refused — not clamped — when the
   kernel is compiled for another class, and each class resolves only
   its own entry. *)
let test_db_class_refusal () =
  let r = tune_bench ~n:16 "gemm" in
  let pcm_entry = Db.entry_of_result ~n:16 r in
  let db = Db.add Db.empty pcm_entry in
  let ast = Tdo_lang.Parser.parse_func ((bench "gemm").Kernels.source ~n:16) in
  Alcotest.(check bool) "default class resolves its entry" true
    (Db.config_for db ast <> None);
  Alcotest.(check bool) "cross-class transfer refused for digital" true
    (Db.config_for ~cls:Backend.Digital_tile db ast = None);
  Alcotest.(check bool) "refusal even when a device geometry could clamp" true
    (Db.config_for ~device:(64, 64) ~cls:Backend.Digital_tile db ast = None);
  Alcotest.(check bool) "cross-class transfer refused for host" true
    (Db.config_for ~cls:Backend.Host_blas db ast = None);
  (* a digital entry under the same digest coexists and resolves per class *)
  let digital_entry = { pcm_entry with Db.device_class = Backend.Digital_tile } in
  let db = Db.add db digital_entry in
  Alcotest.(check int) "one entry per (digest, class)" 2 (Db.size db);
  Alcotest.(check bool) "digital now resolves its own entry" true
    (Db.config_for ~cls:Backend.Digital_tile db ast <> None);
  (match Db.find ~cls:Backend.Digital_tile db pcm_entry.Db.digest with
  | None -> Alcotest.fail "digital entry not found by digest"
  | Some e ->
      Alcotest.(check bool) "found entry carries its class" true
        (e.Db.device_class = Backend.Digital_tile));
  Alcotest.(check bool) "pcm still resolves independently" true
    (Db.config_for db ast <> None)

(* ---------- Serving with a tuning database ---------- *)

let smoke_trace () =
  match Trace.synthetic ~seed:7 "synthetic-smoke" with
  | Ok t -> t
  | Error m -> Alcotest.fail m

let test_scheduler_tuned_replay_matches_golden () =
  (* the smoke trace serves gesummv at n=16; tune exactly that kernel so
     the digests line up, then check the tuned replay still matches the
     golden oracle bit-for-bit *)
  let r = tune_bench ~n:16 "gesummv" in
  let db = Db.add Db.empty (Db.entry_of_result ~n:16 r) in
  let trace = smoke_trace () in
  let config =
    { Scheduler.default_config with Scheduler.devices = 2; tuning = Some db }
  in
  let report = Scheduler.replay ~config trace in
  let golden = Scheduler.replay ~config:(Scheduler.golden_config config) trace in
  let total = List.length trace.Trace.requests in
  Alcotest.(check int) "all requests completed" total (Scheduler.completed report);
  Alcotest.(check int) "no failures" 0 (Scheduler.failures report);
  Alcotest.(check int) "tuned replay matches golden" 0 (Scheduler.divergence report golden);
  let tuned = (Telemetry.summary report.Scheduler.telemetry).Telemetry.served_tuned in
  Alcotest.(check bool) "tuned requests were served" true (tuned > 0);
  let golden_tuned = (Telemetry.summary golden.Scheduler.telemetry).Telemetry.served_tuned in
  Alcotest.(check int) "oracle compiles with the same database" tuned golden_tuned

let test_scheduler_untuned_counts_zero () =
  let trace = smoke_trace () in
  let config = { Scheduler.default_config with Scheduler.devices = 2 } in
  let report = Scheduler.replay ~config trace in
  Alcotest.(check int) "no tuning database, no tuned requests" 0
    (Telemetry.summary report.Scheduler.telemetry).Telemetry.served_tuned

let test_cache_key_covers_tuned_config () =
  let source = (bench "gesummv").Kernels.source ~n:16 in
  let ast = Tdo_lang.Parser.parse_func source in
  let options = Flow.o3_loop_tactics in
  let tuned_options =
    {
      options with
      Flow.tactics = { options.Flow.tactics with Offload.min_intensity = Some 32.0 };
    }
  in
  Alcotest.(check bool) "tuned and default keys differ" true
    (Kernel_cache.structural_key ~options ast
    <> Kernel_cache.structural_key ~options:tuned_options ast)

let suites =
  [
    ( "tune.space",
      [
        Alcotest.test_case "enumerate" `Quick test_space_enumerate;
        Alcotest.test_case "prune" `Quick test_space_prune;
        Alcotest.test_case "point json roundtrip" `Quick test_space_json_roundtrip;
      ] );
    ( "tune.cost_model",
      [
        Alcotest.test_case "features monotone in n" `Quick test_features_monotone;
        QCheck_alcotest.to_alcotest qcheck_predicted_cycles_monotone;
        Alcotest.test_case "calibration within 15% on fig5/fig6 sizes" `Slow
          test_calibration_accuracy;
      ] );
    ( "tune.search",
      [
        Alcotest.test_case "never worse than default" `Quick test_search_never_worse;
        Alcotest.test_case "rediscovers selective offload" `Quick
          test_gemv_selective_offload_rediscovered;
      ] );
    ( "tune.db",
      [
        Alcotest.test_case "save/load roundtrip" `Quick test_db_roundtrip;
        Alcotest.test_case "missing file is empty" `Quick test_db_missing_file_is_empty;
        Alcotest.test_case "lookup and device clamping" `Quick test_db_lookup_and_clamp;
        Alcotest.test_case "cross-class configs refused" `Quick test_db_class_refusal;
      ] );
    ( "tune.serving",
      [
        Alcotest.test_case "tuned replay matches golden" `Quick
          test_scheduler_tuned_replay_matches_golden;
        Alcotest.test_case "no database means no tuned requests" `Quick
          test_scheduler_untuned_counts_zero;
        Alcotest.test_case "cache key covers tuned config" `Quick
          test_cache_key_covers_tuned_config;
      ] );
  ]
