open Tdo_cimacc
module Sim = Tdo_sim
module Mat = Tdo_linalg.Mat
module Blas_ref = Tdo_linalg.Blas_ref
module Prng = Tdo_util.Prng

(* ---------- helpers: a minimal system ---------- *)

type system = {
  queue : Sim.Event_queue.t;
  memory : Sim.Memory.t;
  bus : Sim.Bus.t;
  accel : Accel.t;
}

let small_xbar =
  { Tdo_pcm.Crossbar.default_config with Tdo_pcm.Crossbar.rows = 32; cols = 32 }

let make_system ?(engine_config = { Micro_engine.default_config with Micro_engine.xbar = small_xbar })
    () =
  let queue = Sim.Event_queue.create () in
  let memory = Sim.Memory.create () in
  let bus = Sim.Bus.create () in
  let accel = Accel.create ~engine_config ~queue ~bus ~memory () in
  { queue; memory; bus; accel }

let write_matrix memory ~addr ~ld m =
  Mat.iteri ~f:(fun i j v -> Sim.Memory.write_f32 memory (addr + (4 * ((i * ld) + j))) v) m

let read_matrix memory ~addr ~ld ~rows ~cols =
  Mat.init ~rows ~cols ~f:(fun i j -> Sim.Memory.read_f32 memory (addr + (4 * ((i * ld) + j))))

let a_addr = 0x1000
let b_addr = 0x8000
let c_addr = 0x10000
let desc_addr = 0x20000

let base_job ~m ~n ~k =
  {
    Context_regs.op = Context_regs.Gemm;
    m;
    n;
    k;
    trans_a = false;
    trans_b = false;
    alpha = 1.0;
    beta = 0.0;
    a_addr;
    b_addr;
    c_addr;
    lda = k;
    ldb = n;
    ldc = n;
    batch_count = 0;
    batch_desc_addr = 0;
    pin = Context_regs.Pin_a;
    generation = 0;
  }

(* Worst-case absolute error of the quantised GEMM against the float
   reference: k products, each with half-ulp error on both operands. *)
let gemm_tolerance ~k ~a ~b =
  let sa = Tdo_linalg.Quant.scheme_for ~bits:8 ~max_abs:(Mat.max_abs a) in
  let sb = Tdo_linalg.Quant.scheme_for ~bits:8 ~max_abs:(Mat.max_abs b) in
  let ea = sa.Tdo_linalg.Quant.scale /. 2.0 and eb = sb.Tdo_linalg.Quant.scale /. 2.0 in
  float_of_int k *. ((ea *. (Mat.max_abs b +. eb)) +. (eb *. Mat.max_abs a)) *. 1.5 +. 1e-4

let run_gemm ?(job_patch = fun j -> j) ~m ~n ~k ~alpha ~beta ~seed () =
  let sys = make_system () in
  let g = Prng.create ~seed in
  let a = Mat.random g ~rows:m ~cols:k ~lo:(-1.0) ~hi:1.0 in
  let b = Mat.random g ~rows:k ~cols:n ~lo:(-1.0) ~hi:1.0 in
  let c0 = Mat.random g ~rows:m ~cols:n ~lo:(-1.0) ~hi:1.0 in
  write_matrix sys.memory ~addr:a_addr ~ld:k a;
  write_matrix sys.memory ~addr:b_addr ~ld:n b;
  write_matrix sys.memory ~addr:c_addr ~ld:n c0;
  let job = job_patch { (base_job ~m ~n ~k) with Context_regs.alpha; beta } in
  let engine = Accel.engine sys.accel in
  let result = Micro_engine.run_job engine job ~start:0 in
  let expected = Mat.copy c0 in
  Blas_ref.gemm ~alpha ~beta ~a ~b ~c:expected ();
  (sys, a, b, expected, result)

let check_gemm_close ~what ~k ~a ~b ~expected sys =
  let actual =
    read_matrix sys.memory ~addr:c_addr ~ld:(Mat.cols expected) ~rows:(Mat.rows expected)
      ~cols:(Mat.cols expected)
  in
  let tol = gemm_tolerance ~k ~a ~b in
  let err = Mat.max_abs_diff expected actual in
  if err > tol then
    Alcotest.failf "%s: error %.6f exceeds tolerance %.6f" what err tol

(* ---------- Context registers ---------- *)

let test_regs_decode_roundtrip () =
  let regs = Context_regs.create () in
  let h = Context_regs.handler regs in
  let wr reg v = h.Sim.Mmio.write ~offset:(4 * reg) v in
  wr Context_regs.reg_op 1l;
  wr Context_regs.reg_m 8l;
  wr Context_regs.reg_n 4l;
  wr Context_regs.reg_k 6l;
  wr Context_regs.reg_alpha (Int32.bits_of_float 2.5);
  wr Context_regs.reg_beta (Int32.bits_of_float 0.5);
  wr Context_regs.reg_a_addr 0x100l;
  wr Context_regs.reg_b_addr 0x200l;
  wr Context_regs.reg_c_addr 0x300l;
  wr Context_regs.reg_lda 6l;
  wr Context_regs.reg_ldb 4l;
  wr Context_regs.reg_ldc 4l;
  wr Context_regs.reg_trans 2l;
  wr Context_regs.reg_pin 1l;
  wr Context_regs.reg_generation 7l;
  match Context_regs.decode_job regs with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok job ->
      Alcotest.(check bool) "op" true (job.Context_regs.op = Context_regs.Gemm);
      Alcotest.(check int) "m" 8 job.Context_regs.m;
      Alcotest.(check (float 1e-7)) "alpha (f32 bits)" 2.5 job.Context_regs.alpha;
      Alcotest.(check bool) "trans_b" true job.Context_regs.trans_b;
      Alcotest.(check bool) "trans_a" false job.Context_regs.trans_a;
      Alcotest.(check bool) "pin b" true (job.Context_regs.pin = Context_regs.Pin_b);
      Alcotest.(check int) "generation" 7 job.Context_regs.generation

let test_regs_trigger_and_status () =
  let regs = Context_regs.create () in
  let triggered = ref None in
  Context_regs.set_on_trigger regs (fun job -> triggered := Some job);
  let h = Context_regs.handler regs in
  let wr reg v = h.Sim.Mmio.write ~offset:(4 * reg) v in
  wr Context_regs.reg_op 1l;
  wr Context_regs.reg_m 2l;
  wr Context_regs.reg_n 2l;
  wr Context_regs.reg_k 2l;
  Alcotest.(check bool) "no trigger before command" true (!triggered = None);
  wr Context_regs.reg_command 1l;
  Alcotest.(check bool) "triggered" true (!triggered <> None);
  Alcotest.(check int) "trigger count" 1 (Context_regs.triggers regs);
  (* device-owned status: host writes must be ignored *)
  Context_regs.set_status regs Context_regs.Done;
  wr Context_regs.reg_status 0l;
  Alcotest.(check bool) "status write ignored" true
    (Context_regs.status regs = Context_regs.Done);
  Alcotest.(check int32) "status readable" 2l
    (h.Sim.Mmio.read ~offset:(4 * Context_regs.reg_status))

let test_regs_bad_job_sets_error () =
  let regs = Context_regs.create () in
  Context_regs.set_on_trigger regs (fun _ -> ());
  let h = Context_regs.handler regs in
  let wr reg v = h.Sim.Mmio.write ~offset:(4 * reg) v in
  wr Context_regs.reg_op 9l;
  wr Context_regs.reg_command 1l;
  Alcotest.(check bool) "error status" true (Context_regs.status regs = Context_regs.Error)

let test_regs_unaligned () =
  let regs = Context_regs.create () in
  let h = Context_regs.handler regs in
  Alcotest.(check bool) "unaligned raises" true
    (try
       ignore (h.Sim.Mmio.read ~offset:2);
       false
     with Invalid_argument _ -> true)

(* ---------- Digital logic ---------- *)

let test_digital_postprocess () =
  let d = Digital_logic.create () in
  let out =
    Digital_logic.postprocess d ~alpha:2.0 ~beta:0.5 ~scale:0.1 ~raw:[| 10; -20 |]
      ~c_old:(Some [| 1.0; 2.0 |])
  in
  Alcotest.(check (array (float 1e-9))) "epilogue" [| 2.5; -3.0 |] out;
  let c = Digital_logic.counters d in
  Alcotest.(check int) "one weighted sum" 1 c.Digital_logic.weighted_sums;
  Alcotest.(check int) "alu ops" 8 c.Digital_logic.alu_ops

let test_digital_beta_needs_c () =
  let d = Digital_logic.create () in
  Alcotest.(check bool) "beta without c_old raises" true
    (try
       ignore (Digital_logic.postprocess d ~alpha:1.0 ~beta:1.0 ~scale:1.0 ~raw:[| 1 |] ~c_old:None);
       false
     with Invalid_argument _ -> true)

(* ---------- Micro-engine ---------- *)

let test_engine_gemm_correct () =
  let sys, a, b, expected, result = run_gemm ~m:8 ~n:6 ~k:7 ~alpha:1.0 ~beta:0.0 ~seed:31 () in
  (match result with Error e -> Alcotest.failf "job rejected: %s" e | Ok _ -> ());
  check_gemm_close ~what:"plain gemm" ~k:7 ~a ~b ~expected sys

let test_engine_alpha_beta () =
  let sys, a, b, expected, result = run_gemm ~m:5 ~n:5 ~k:5 ~alpha:1.5 ~beta:0.75 ~seed:32 () in
  (match result with Error e -> Alcotest.failf "job rejected: %s" e | Ok _ -> ());
  check_gemm_close ~what:"alpha/beta gemm" ~k:5 ~a ~b ~expected sys

let test_engine_pin_b () =
  let patch j = { j with Context_regs.pin = Context_regs.Pin_b } in
  let sys, a, b, expected, result =
    run_gemm ~job_patch:patch ~m:6 ~n:9 ~k:4 ~alpha:1.0 ~beta:0.0 ~seed:33 ()
  in
  (match result with Error e -> Alcotest.failf "job rejected: %s" e | Ok _ -> ());
  check_gemm_close ~what:"pin-B gemm" ~k:4 ~a ~b ~expected sys

let test_engine_gemv () =
  let patch j = { j with Context_regs.op = Context_regs.Gemv } in
  let sys, a, b, expected, result =
    run_gemm ~job_patch:patch ~m:12 ~n:1 ~k:9 ~alpha:1.0 ~beta:0.0 ~seed:34 ()
  in
  (match result with Error e -> Alcotest.failf "job rejected: %s" e | Ok _ -> ());
  check_gemm_close ~what:"gemv" ~k:9 ~a ~b ~expected sys;
  let c = Micro_engine.counters (Accel.engine sys.accel) in
  Alcotest.(check int) "counted as gemv" 1 c.Micro_engine.gemv_jobs

let test_engine_transposes () =
  (* trans_a: physical A is k x m; trans_b: physical B is n x k. *)
  let sys = make_system () in
  let g = Prng.create ~seed:35 in
  let m = 5 and n = 4 and k = 6 in
  let a_phys = Mat.random g ~rows:k ~cols:m ~lo:(-1.0) ~hi:1.0 in
  let b_phys = Mat.random g ~rows:n ~cols:k ~lo:(-1.0) ~hi:1.0 in
  write_matrix sys.memory ~addr:a_addr ~ld:m a_phys;
  write_matrix sys.memory ~addr:b_addr ~ld:k b_phys;
  let job =
    {
      (base_job ~m ~n ~k) with
      Context_regs.trans_a = true;
      trans_b = true;
      lda = m;
      ldb = k;
    }
  in
  (match Micro_engine.run_job (Accel.engine sys.accel) job ~start:0 with
  | Error e -> Alcotest.failf "job rejected: %s" e
  | Ok _ -> ());
  let a = Mat.transpose a_phys and b = Mat.transpose b_phys in
  let expected = Mat.create ~rows:m ~cols:n in
  Blas_ref.gemm ~alpha:1.0 ~beta:0.0 ~a ~b ~c:expected ();
  check_gemm_close ~what:"transposed gemm" ~k ~a ~b ~expected sys

let test_engine_pinned_reuse () =
  let sys, a, b, expected, _ = run_gemm ~m:8 ~n:6 ~k:7 ~alpha:1.0 ~beta:0.0 ~seed:36 () in
  let engine = Accel.engine sys.accel in
  let writes_after_first =
    (Tdo_pcm.Crossbar.counters (Micro_engine.crossbar engine)).Tdo_pcm.Crossbar.logical_writes
  in
  let job = base_job ~m:8 ~n:6 ~k:7 in
  (match Micro_engine.run_job engine job ~start:1_000_000 with
  | Error e -> Alcotest.failf "second job rejected: %s" e
  | Ok _ -> ());
  let counters = Micro_engine.counters engine in
  Alcotest.(check int) "second job skipped programming" 1
    counters.Micro_engine.programming_skipped;
  let writes_after_second =
    (Tdo_pcm.Crossbar.counters (Micro_engine.crossbar engine)).Tdo_pcm.Crossbar.logical_writes
  in
  Alcotest.(check int) "no extra crossbar writes" writes_after_first writes_after_second;
  check_gemm_close ~what:"reused-pin gemm" ~k:7 ~a ~b ~expected sys

let test_engine_generation_forces_reprogram () =
  let sys, _, _, _, _ = run_gemm ~m:8 ~n:6 ~k:7 ~alpha:1.0 ~beta:0.0 ~seed:37 () in
  let engine = Accel.engine sys.accel in
  let job = { (base_job ~m:8 ~n:6 ~k:7) with Context_regs.generation = 1 } in
  (match Micro_engine.run_job engine job ~start:1_000_000 with
  | Error e -> Alcotest.failf "job rejected: %s" e
  | Ok _ -> ());
  Alcotest.(check int) "stale generation reprograms" 0
    (Micro_engine.counters engine).Micro_engine.programming_skipped

let test_engine_oversize_rejected () =
  let sys = make_system () in
  let job = base_job ~m:8 ~n:6 ~k:64 in
  (* k = 64 > 32 crossbar rows *)
  match Micro_engine.run_job (Accel.engine sys.accel) job ~start:0 with
  | Ok _ -> Alcotest.fail "oversized operand must be rejected"
  | Error reason ->
      Alcotest.(check string) "reason" "operand 64x8 exceeds the 32x32 crossbar" reason

let test_engine_double_buffering_faster () =
  let finish double_buffering =
    let engine_config =
      { Micro_engine.default_config with Micro_engine.xbar = small_xbar; double_buffering }
    in
    let sys = make_system ~engine_config () in
    let g = Prng.create ~seed:38 in
    let a = Mat.random g ~rows:16 ~cols:16 ~lo:(-1.0) ~hi:1.0 in
    let b = Mat.random g ~rows:16 ~cols:16 ~lo:(-1.0) ~hi:1.0 in
    write_matrix sys.memory ~addr:a_addr ~ld:16 a;
    write_matrix sys.memory ~addr:b_addr ~ld:16 b;
    match
      Micro_engine.run_job (Accel.engine sys.accel) (base_job ~m:16 ~n:16 ~k:16) ~start:0
    with
    | Error e -> Alcotest.failf "job rejected: %s" e
    | Ok finish -> finish
  in
  Alcotest.(check bool) "double buffering hides fill latency" true (finish true < finish false)

let test_engine_batched_shares_pinned () =
  let sys = make_system () in
  let g = Prng.create ~seed:39 in
  let m = 8 and n = 6 and k = 7 in
  let a = Mat.random g ~rows:m ~cols:k ~lo:(-1.0) ~hi:1.0 in
  let b1 = Mat.random g ~rows:k ~cols:n ~lo:(-1.0) ~hi:1.0 in
  let b2 = Mat.random g ~rows:k ~cols:n ~lo:(-1.0) ~hi:1.0 in
  let b2_addr = b_addr + 0x1000 and c2_addr = c_addr + 0x1000 in
  write_matrix sys.memory ~addr:a_addr ~ld:k a;
  write_matrix sys.memory ~addr:b_addr ~ld:n b1;
  write_matrix sys.memory ~addr:b2_addr ~ld:n b2;
  (* descriptor table: (a, b, c) per batch entry *)
  let write_desc i (a, b, c) =
    Sim.Memory.write_i32 sys.memory (desc_addr + (12 * i)) (Int32.of_int a);
    Sim.Memory.write_i32 sys.memory (desc_addr + (12 * i) + 4) (Int32.of_int b);
    Sim.Memory.write_i32 sys.memory (desc_addr + (12 * i) + 8) (Int32.of_int c)
  in
  write_desc 0 (a_addr, b_addr, c_addr);
  write_desc 1 (a_addr, b2_addr, c2_addr);
  let job =
    {
      (base_job ~m ~n ~k) with
      Context_regs.op = Context_regs.Gemm_batched;
      batch_count = 2;
      batch_desc_addr = desc_addr;
    }
  in
  let engine = Accel.engine sys.accel in
  (match Micro_engine.run_job engine job ~start:0 with
  | Error e -> Alcotest.failf "batched job rejected: %s" e
  | Ok _ -> ());
  (* shared A: programmed once, reused once *)
  Alcotest.(check int) "second batch entry reused the pin" 1
    (Micro_engine.counters engine).Micro_engine.programming_skipped;
  Alcotest.(check int) "crossbar written once" (m * k)
    (Tdo_pcm.Crossbar.counters (Micro_engine.crossbar engine)).Tdo_pcm.Crossbar.logical_writes;
  let tol = gemm_tolerance ~k ~a ~b:b1 in
  let expected1 = Mat.create ~rows:m ~cols:n in
  Blas_ref.gemm ~alpha:1.0 ~beta:0.0 ~a ~b:b1 ~c:expected1 ();
  let actual1 = read_matrix sys.memory ~addr:c_addr ~ld:n ~rows:m ~cols:n in
  Alcotest.(check bool) "batch 0 result" true (Mat.max_abs_diff expected1 actual1 <= tol);
  let expected2 = Mat.create ~rows:m ~cols:n in
  Blas_ref.gemm ~alpha:1.0 ~beta:0.0 ~a ~b:b2 ~c:expected2 ();
  let actual2 = read_matrix sys.memory ~addr:c2_addr ~ld:n ~rows:m ~cols:n in
  Alcotest.(check bool) "batch 1 result" true (Mat.max_abs_diff expected2 actual2 <= tol)

let test_engine_timeline_phases () =
  let sys, _, _, _, _ = run_gemm ~m:4 ~n:3 ~k:4 ~alpha:1.0 ~beta:0.0 ~seed:40 () in
  let events = Timeline.events (Micro_engine.timeline (Accel.engine sys.accel)) in
  let phases = List.map (fun e -> e.Timeline.phase) events in
  Alcotest.(check bool) "starts with trigger" true (List.hd phases = Timeline.Trigger);
  Alcotest.(check bool) "ends result-ready" true
    (List.nth phases (List.length phases - 1) = Timeline.Result_ready);
  let has p = List.mem p phases in
  Alcotest.(check bool) "has fill" true (has Timeline.Dma_fill);
  Alcotest.(check bool) "has program" true (has Timeline.Program_crossbar);
  Alcotest.(check bool) "has compute" true (has Timeline.Compute);
  Alcotest.(check bool) "has accumulate" true (has Timeline.Accumulate);
  Alcotest.(check bool) "has store" true (has Timeline.Store_result);
  (* result-ready time must not precede any other event *)
  let last = List.nth events (List.length events - 1) in
  List.iter
    (fun e -> Alcotest.(check bool) "monotone finish" true (e.Timeline.at <= last.Timeline.at))
    events

let qcheck_engine_matches_reference =
  QCheck.Test.make ~name:"engine gemm tracks float reference within quantisation bound"
    ~count:25 QCheck.small_int (fun seed ->
      let g = Prng.create ~seed:(seed + 1000) in
      let m = 1 + Prng.int g ~bound:12
      and n = 1 + Prng.int g ~bound:12
      and k = 1 + Prng.int g ~bound:12 in
      let pin = if Prng.bool g then Context_regs.Pin_a else Context_regs.Pin_b in
      let patch j = { j with Context_regs.pin } in
      let sys, a, b, expected, result =
        run_gemm ~job_patch:patch ~m ~n ~k ~alpha:1.0 ~beta:0.0 ~seed:(seed + 2000) ()
      in
      match result with
      | Error _ -> false
      | Ok _ ->
          let actual = read_matrix sys.memory ~addr:c_addr ~ld:n ~rows:m ~cols:n in
          Mat.max_abs_diff expected actual <= gemm_tolerance ~k ~a ~b)

(* ---------- Accelerator (register-level round trip) ---------- *)

let test_accel_register_roundtrip () =
  let sys = make_system () in
  let mmio = Sim.Mmio.create () in
  Accel.map_registers sys.accel mmio ~base:Accel.default_register_base;
  let g = Prng.create ~seed:41 in
  let m = 8 and n = 6 and k = 7 in
  let a = Mat.random g ~rows:m ~cols:k ~lo:(-1.0) ~hi:1.0 in
  let b = Mat.random g ~rows:k ~cols:n ~lo:(-1.0) ~hi:1.0 in
  write_matrix sys.memory ~addr:a_addr ~ld:k a;
  write_matrix sys.memory ~addr:b_addr ~ld:n b;
  let wr reg v =
    Sim.Mmio.write mmio ~addr:(Accel.default_register_base + (4 * reg)) (Int32.of_int v)
  in
  wr Context_regs.reg_op 1;
  wr Context_regs.reg_m m;
  wr Context_regs.reg_n n;
  wr Context_regs.reg_k k;
  Sim.Mmio.write mmio
    ~addr:(Accel.default_register_base + (4 * Context_regs.reg_alpha))
    (Int32.bits_of_float 1.0);
  Sim.Mmio.write mmio
    ~addr:(Accel.default_register_base + (4 * Context_regs.reg_beta))
    (Int32.bits_of_float 0.0);
  wr Context_regs.reg_a_addr a_addr;
  wr Context_regs.reg_b_addr b_addr;
  wr Context_regs.reg_c_addr c_addr;
  wr Context_regs.reg_lda k;
  wr Context_regs.reg_ldb n;
  wr Context_regs.reg_ldc n;
  wr Context_regs.reg_command 1;
  Alcotest.(check bool) "busy after trigger" true (Accel.status sys.accel = Context_regs.Busy);
  Sim.Event_queue.run_all sys.queue;
  Alcotest.(check bool) "done after events drain" true
    (Accel.status sys.accel = Context_regs.Done);
  (match Accel.completion_time sys.accel with
  | None -> Alcotest.fail "no completion time"
  | Some finish -> Alcotest.(check int) "clock advanced to completion" finish
      (Sim.Event_queue.now sys.queue));
  let expected = Mat.create ~rows:m ~cols:n in
  Blas_ref.gemm ~alpha:1.0 ~beta:0.0 ~a ~b ~c:expected ();
  check_gemm_close ~what:"register-driven gemm" ~k ~a ~b ~expected sys

let test_accel_error_reported () =
  let sys = make_system () in
  let mmio = Sim.Mmio.create () in
  Accel.map_registers sys.accel mmio ~base:0x4000 ;
  let wr reg v = Sim.Mmio.write mmio ~addr:(0x4000 + (4 * reg)) (Int32.of_int v) in
  wr Context_regs.reg_op 1;
  wr Context_regs.reg_m 8;
  wr Context_regs.reg_n 8;
  wr Context_regs.reg_k 64;
  (* exceeds the 32x32 crossbar *)
  wr Context_regs.reg_lda 64;
  wr Context_regs.reg_ldb 8;
  wr Context_regs.reg_ldc 8;
  wr Context_regs.reg_command 1;
  Alcotest.(check bool) "error status" true (Accel.status sys.accel = Context_regs.Error);
  Alcotest.(check bool) "reason recorded" true (Accel.last_error sys.accel <> None)

let suites =
  [
    ( "cimacc.regs",
      [
        Alcotest.test_case "decode roundtrip" `Quick test_regs_decode_roundtrip;
        Alcotest.test_case "trigger & status" `Quick test_regs_trigger_and_status;
        Alcotest.test_case "bad job -> error" `Quick test_regs_bad_job_sets_error;
        Alcotest.test_case "unaligned access" `Quick test_regs_unaligned;
      ] );
    ( "cimacc.digital",
      [
        Alcotest.test_case "postprocess" `Quick test_digital_postprocess;
        Alcotest.test_case "beta needs c_old" `Quick test_digital_beta_needs_c;
      ] );
    ( "cimacc.engine",
      [
        Alcotest.test_case "gemm correct" `Quick test_engine_gemm_correct;
        Alcotest.test_case "alpha/beta epilogue" `Quick test_engine_alpha_beta;
        Alcotest.test_case "pin-B streaming" `Quick test_engine_pin_b;
        Alcotest.test_case "gemv" `Quick test_engine_gemv;
        Alcotest.test_case "transposes" `Quick test_engine_transposes;
        Alcotest.test_case "pinned reuse" `Quick test_engine_pinned_reuse;
        Alcotest.test_case "generation reprogram" `Quick test_engine_generation_forces_reprogram;
        Alcotest.test_case "oversize rejected" `Quick test_engine_oversize_rejected;
        Alcotest.test_case "double buffering" `Quick test_engine_double_buffering_faster;
        Alcotest.test_case "batched shares pin" `Quick test_engine_batched_shares_pinned;
        Alcotest.test_case "timeline phases (Fig 2d)" `Quick test_engine_timeline_phases;
        QCheck_alcotest.to_alcotest qcheck_engine_matches_reference;
      ] );
    ( "cimacc.accel",
      [
        Alcotest.test_case "register roundtrip" `Quick test_accel_register_roundtrip;
        Alcotest.test_case "error reported" `Quick test_accel_error_reported;
      ] );
  ]

(* ---------- multi-tile accelerator ---------- *)

let make_tiled_system tiles =
  let engine_config =
    { Micro_engine.default_config with Micro_engine.xbar = small_xbar; tiles }
  in
  make_system ~engine_config ()

let batched_two_matrices sys =
  (* two GEMMs with different A operands: distinct pin groups *)
  let g = Prng.create ~seed:61 in
  let m = 16 and n = 12 and k = 16 in
  let a1 = Mat.random g ~rows:m ~cols:k ~lo:(-1.0) ~hi:1.0 in
  let a2 = Mat.random g ~rows:m ~cols:k ~lo:(-1.0) ~hi:1.0 in
  let b = Mat.random g ~rows:k ~cols:n ~lo:(-1.0) ~hi:1.0 in
  let a2_addr = a_addr + 0x2000 and c2_addr = c_addr + 0x2000 in
  write_matrix sys.memory ~addr:a_addr ~ld:k a1;
  write_matrix sys.memory ~addr:a2_addr ~ld:k a2;
  write_matrix sys.memory ~addr:b_addr ~ld:n b;
  let write_desc i (a, b, c) =
    Sim.Memory.write_i32 sys.memory (desc_addr + (12 * i)) (Int32.of_int a);
    Sim.Memory.write_i32 sys.memory (desc_addr + (12 * i) + 4) (Int32.of_int b);
    Sim.Memory.write_i32 sys.memory (desc_addr + (12 * i) + 8) (Int32.of_int c)
  in
  write_desc 0 (a_addr, b_addr, c_addr);
  write_desc 1 (a2_addr, b_addr, c2_addr);
  let job =
    {
      (base_job ~m ~n ~k) with
      Context_regs.op = Context_regs.Gemm_batched;
      batch_count = 2;
      batch_desc_addr = desc_addr;
    }
  in
  (job, a1, a2, b, c2_addr, m, n, k)

let test_multi_tile_parallel_batch () =
  let finish_with tiles =
    let sys = make_tiled_system tiles in
    let job, a1, a2, b, c2_addr, m, n, k = batched_two_matrices sys in
    match Micro_engine.run_job (Accel.engine sys.accel) job ~start:0 with
    | Error e -> Alcotest.failf "batched job rejected: %s" e
    | Ok finish ->
        (* both results must be correct regardless of tile count *)
        let tol = gemm_tolerance ~k ~a:a1 ~b in
        let expected1 = Mat.create ~rows:m ~cols:n in
        Blas_ref.gemm ~alpha:1.0 ~beta:0.0 ~a:a1 ~b ~c:expected1 ();
        let actual1 = read_matrix sys.memory ~addr:c_addr ~ld:n ~rows:m ~cols:n in
        Alcotest.(check bool) "entry 0 correct" true (Mat.max_abs_diff expected1 actual1 <= tol);
        let expected2 = Mat.create ~rows:m ~cols:n in
        Blas_ref.gemm ~alpha:1.0 ~beta:0.0 ~a:a2 ~b ~c:expected2 ();
        let actual2 = read_matrix sys.memory ~addr:c2_addr ~ld:n ~rows:m ~cols:n in
        Alcotest.(check bool) "entry 1 correct" true (Mat.max_abs_diff expected2 actual2 <= tol);
        finish
  in
  let one = finish_with 1 and two = finish_with 2 in
  Alcotest.(check bool) "two tiles run the batch in parallel" true (two < one)

let test_multi_tile_wear_distributed () =
  let sys = make_tiled_system 2 in
  let job, _, _, _, _, m, _, k = batched_two_matrices sys in
  (match Micro_engine.run_job (Accel.engine sys.accel) job ~start:0 with
  | Error e -> Alcotest.failf "batched job rejected: %s" e
  | Ok _ -> ());
  let engine = Accel.engine sys.accel in
  let tiles = Micro_engine.crossbars engine in
  Alcotest.(check int) "two tiles" 2 (Array.length tiles);
  Array.iter
    (fun xb ->
      Alcotest.(check int) "each tile programmed one operand" (m * k)
        (Tdo_pcm.Crossbar.counters xb).Tdo_pcm.Crossbar.logical_writes)
    tiles;
  Alcotest.(check int) "totals aggregate over tiles" (2 * m * k)
    (Micro_engine.total_crossbar_counters engine).Tdo_pcm.Crossbar.logical_writes

let test_multi_tile_affinity_across_jobs () =
  (* A then B then A again: with two tiles the third job must find A
     still resident on its tile *)
  let sys = make_tiled_system 2 in
  let g = Prng.create ~seed:62 in
  let m = 8 and n = 6 and k = 8 in
  let a1 = Mat.random g ~rows:m ~cols:k ~lo:(-1.0) ~hi:1.0 in
  let a2 = Mat.random g ~rows:m ~cols:k ~lo:(-1.0) ~hi:1.0 in
  let b = Mat.random g ~rows:k ~cols:n ~lo:(-1.0) ~hi:1.0 in
  let a2_addr = a_addr + 0x2000 in
  write_matrix sys.memory ~addr:a_addr ~ld:k a1;
  write_matrix sys.memory ~addr:a2_addr ~ld:k a2;
  write_matrix sys.memory ~addr:b_addr ~ld:n b;
  let engine = Accel.engine sys.accel in
  let run ?(a = a_addr) start =
    match
      Micro_engine.run_job engine { (base_job ~m ~n ~k) with Context_regs.a_addr = a } ~start
    with
    | Error e -> Alcotest.failf "job rejected: %s" e
    | Ok finish -> finish
  in
  let t1 = run 0 in
  let t2 = run ~a:a2_addr t1 in
  let _ = run (t2 + 1) in
  Alcotest.(check int) "third job reused a resident tile" 1
    (Micro_engine.counters engine).Micro_engine.programming_skipped

let test_timeline_gantt () =
  let sys, _, _, _, _ = run_gemm ~m:4 ~n:3 ~k:4 ~alpha:1.0 ~beta:0.0 ~seed:44 () in
  let events = Timeline.events (Micro_engine.timeline (Accel.engine sys.accel)) in
  let gantt = Timeline.render_gantt events in
  Alcotest.(check bool) "renders something" true (String.length gantt > 0);
  let lines = String.split_on_char '\n' gantt in
  Alcotest.(check bool) "one lane per active phase + footer" true (List.length lines >= 6);
  List.iter
    (fun line ->
      Alcotest.(check bool) "bounded width" true (String.length line <= 16 + 1 + 72 + 1))
    lines;
  Alcotest.(check string) "empty events render empty" "" (Timeline.render_gantt [])

let multi_tile_suite =
  ( "cimacc.multi_tile",
    [
      Alcotest.test_case "parallel batch" `Quick test_multi_tile_parallel_batch;
      Alcotest.test_case "wear distributed" `Quick test_multi_tile_wear_distributed;
      Alcotest.test_case "pin affinity across jobs" `Quick test_multi_tile_affinity_across_jobs;
      Alcotest.test_case "gantt rendering" `Quick test_timeline_gantt;
    ] )

(* ---------- double-buffering accounting ---------- *)

(* Run the same GEMM with and without double buffering on otherwise
   identical systems; returns the two finish times plus both systems
   for functional comparison. *)
let run_db_pair ~m ~n ~k ~seed =
  let mk db =
    let engine_config =
      { Micro_engine.default_config with Micro_engine.xbar = small_xbar; double_buffering = db }
    in
    let sys = make_system ~engine_config () in
    let g = Prng.create ~seed in
    let a = Mat.random g ~rows:m ~cols:k ~lo:(-1.0) ~hi:1.0 in
    let b = Mat.random g ~rows:k ~cols:n ~lo:(-1.0) ~hi:1.0 in
    write_matrix sys.memory ~addr:a_addr ~ld:k a;
    write_matrix sys.memory ~addr:b_addr ~ld:n b;
    let job = { (base_job ~m ~n ~k) with Context_regs.beta = 0.0 } in
    match Micro_engine.run_job (Accel.engine sys.accel) job ~start:0 with
    | Error e -> Alcotest.failf "job rejected: %s" e
    | Ok finish -> (sys, finish)
  in
  let sys_db, t_db = mk true in
  let sys_nodb, t_nodb = mk false in
  (sys_db, t_db, sys_nodb, t_nodb)

let test_double_buffering_no_undercharge () =
  let m = 12 and n = 10 and k = 12 in
  let sys_db, t_db, sys_nodb, t_nodb = run_db_pair ~m ~n ~k ~seed:91 in
  (* overlap changes timing only, never results *)
  let read sys = read_matrix sys.memory ~addr:c_addr ~ld:n ~rows:m ~cols:n in
  Alcotest.(check (float 0.0)) "identical results either way" 0.0
    (Mat.max_abs_diff (read sys_db) (read sys_nodb));
  Alcotest.(check bool) "overlap can only help" true (t_db <= t_nodb);
  (* the compute channel can never be hidden: decode, programming the k
     wordlines, then per streamed vector an analog GEMV plus the m-long
     digital epilogue. Double buffering overlaps DMA fills with compute
     but must still charge all of this serially. *)
  let cfg = Micro_engine.default_config in
  let gemv =
    max cfg.Micro_engine.min_compute_latency_ps
      (cfg.Micro_engine.compute_latency_ps * k / small_xbar.Tdo_pcm.Crossbar.rows)
  in
  let lower_bound =
    cfg.Micro_engine.decode_latency_ps
    + (k * cfg.Micro_engine.write_latency_per_row_ps)
    + (n * (gemv + (m * cfg.Micro_engine.alu_latency_ps)))
  in
  Alcotest.(check bool) "never undercharges the compute channel" true (t_db >= lower_bound);
  (* both runs streamed the same work *)
  let streams sys = (Micro_engine.counters (Accel.engine sys.accel)).Micro_engine.streamed_vectors in
  Alcotest.(check int) "same streamed vectors" (streams sys_nodb) (streams sys_db);
  Alcotest.(check int) "one vector per output column" n (streams sys_db)

let test_double_buffering_busy_accounting () =
  let m = 8 and n = 6 and k = 8 in
  let sys_db, t_db, sys_nodb, t_nodb = run_db_pair ~m ~n ~k ~seed:17 in
  (* busy time is wall time for a single job started at 0 — overlap must
     not double-count the hidden fills into engine occupancy *)
  let busy sys = (Micro_engine.counters (Accel.engine sys.accel)).Micro_engine.busy_ps in
  Alcotest.(check int) "db busy = finish" t_db (busy sys_db);
  Alcotest.(check int) "serial busy = finish" t_nodb (busy sys_nodb)

let double_buffering_suite =
  ( "cimacc.double_buffering",
    [
      Alcotest.test_case "overlap never undercharges" `Quick test_double_buffering_no_undercharge;
      Alcotest.test_case "busy-time accounting" `Quick test_double_buffering_busy_accounting;
    ] )

let suites = suites @ [ multi_tile_suite; double_buffering_suite ]
