open Tdo_reliab
module Prng = Tdo_util.Prng
module Crossbar = Tdo_pcm.Crossbar
module Telemetry = Tdo_serve.Telemetry
module Scheduler = Tdo_serve.Scheduler
module Device = Tdo_serve.Device

(* ---------- ABFT checksum math ---------- *)

let test_abft_known_values () =
  let w = [| [| 1; 2; 3 |]; [| 4; 5; 6 |] |] in
  let rs = Abft.row_sums w in
  Alcotest.(check (array int)) "row sums" [| 6; 15 |] rs;
  let input = [| 10; -1 |] in
  (* x^T W = [10*1-4; 10*2-5; 10*3-6] = [6; 15; 24], sum 45 = 10*6 - 15 *)
  let output = [| 6; 15; 24 |] in
  Alcotest.(check int) "predicted sum" 45 (Abft.predict ~row_sums:rs ~input);
  Alcotest.(check int) "observed sum" 45 (Abft.observe output);
  (match Abft.verify ~row_sums:rs ~input ~output with
  | Abft.Pass -> ()
  | Abft.Fail _ -> Alcotest.fail "clean product must pass");
  output.(1) <- output.(1) + 1;
  match Abft.verify ~row_sums:rs ~input ~output with
  | Abft.Fail { expected; observed } ->
      Alcotest.(check int) "expected" 45 expected;
      Alcotest.(check int) "observed" 46 observed
  | Abft.Pass -> Alcotest.fail "corrupted product must fail"

let test_abft_rejects_ragged () =
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Abft.row_sums [||]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "ragged rejected" true
    (try
       ignore (Abft.row_sums [| [| 1; 2 |]; [| 3 |] |]);
       false
     with Invalid_argument _ -> true)

let qcheck_abft_detects_any_single_fault =
  QCheck.Test.make
    ~name:"abft passes exact GEMV products and detects any single output perturbation"
    ~count:200 QCheck.small_int (fun seed ->
      let g = Prng.create ~seed in
      let m = 1 + Prng.int g ~bound:12 and n = 1 + Prng.int g ~bound:12 in
      let w = Array.init m (fun _ -> Array.init n (fun _ -> Prng.int g ~bound:256 - 128)) in
      let input = Array.init m (fun _ -> Prng.int g ~bound:256 - 128) in
      let output =
        Array.init n (fun j ->
            let acc = ref 0 in
            for i = 0 to m - 1 do
              acc := !acc + (input.(i) * w.(i).(j))
            done;
            !acc)
      in
      let rs = Abft.row_sums w in
      let clean = Abft.verify ~row_sums:rs ~input ~output = Abft.Pass in
      (* perturb one output element by any nonzero delta *)
      let j = Prng.int g ~bound:n in
      let delta = 1 + Prng.int g ~bound:1000 in
      let delta = if Prng.bool g then delta else -delta in
      output.(j) <- output.(j) + delta;
      let caught = Abft.verify ~row_sums:rs ~input ~output <> Abft.Pass in
      clean && caught)

(* ---------- fault taxonomy & injection ---------- *)

let test_fault_describe_and_apply () =
  let xb =
    Crossbar.create
      ~config:{ Crossbar.default_config with Crossbar.rows = 16; cols = 16; size_bytes = 256 }
      ()
  in
  let faults =
    [
      Fault.Stuck_at { plane = Crossbar.Msb; row = 1; col = 2; level = 3 };
      Fault.Worn_out { plane = Crossbar.Lsb; row = 4; col = 5; level = 6 };
      Fault.Column_flip { col = 7; bit = 2; ops = 3 };
      Fault.Drift { offset = -2 };
    ]
  in
  List.iter (Fault.apply xb) faults;
  Alcotest.(check bool) "stuck cells registered" true (Crossbar.stuck_fraction xb > 0.0);
  Alcotest.(check int) "flip armed" 3 (Crossbar.flips_remaining xb);
  Alcotest.(check int) "drift set" (-2) (Crossbar.drift xb);
  List.iter (fun f -> Alcotest.(check bool) "describable" true (Fault.describe f <> "")) faults

let test_inject_deterministic () =
  let spec = { Inject.default_spec with Inject.faulty_fraction = 1.0; stuck_cells = 3 } in
  for id = 0 to 3 do
    let a = Inject.sample spec ~device_id:id and b = Inject.sample spec ~device_id:id in
    Alcotest.(check bool) (Printf.sprintf "device %d replays identically" id) true (a = b);
    Alcotest.(check bool) "marked faulty" true (Inject.is_faulty spec ~device_id:id);
    Alcotest.(check int) "fault count" 3 (List.length a)
  done;
  (* distinct devices draw distinct fault placements from their streams *)
  Alcotest.(check bool) "per-device streams differ" true
    (Inject.sample spec ~device_id:0 <> Inject.sample spec ~device_id:1);
  let none = { spec with Inject.faulty_fraction = 0.0 } in
  Alcotest.(check (list string)) "fraction 0 plants nothing" []
    (List.map Fault.describe (Inject.sample none ~device_id:0))

let test_inject_into_device () =
  let spec =
    {
      Inject.default_spec with
      Inject.faulty_fraction = 1.0;
      stuck_cells = 2;
      column_flips = 1;
      drift_offset = 1;
    }
  in
  let dev = Device.create ~id:0 () in
  let planted = Inject.apply_to_device spec dev in
  Alcotest.(check int) "all fault kinds planted" 4 (List.length planted);
  Alcotest.(check bool) "sample agrees with plant" true
    (planted = Inject.sample spec ~device_id:0)

(* ---------- end-to-end campaigns ---------- *)

let small_campaign ?(abft = true) ?(seed = 11) ?(requests = 24) ?(spec = Inject.default_spec) ()
    =
  {
    Campaign.default_config with
    Campaign.requests;
    seed;
    abft;
    spec = { spec with Inject.seed = seed };
  }

let test_campaign_fault_free_baseline () =
  let spec = { Inject.default_spec with Inject.stuck_cells = 0 } in
  let r = Campaign.run ~config:(small_campaign ~spec ()) () in
  let m = r.Campaign.metrics in
  Alcotest.(check int) "no faults injected" 0 m.Campaign.injected_faults;
  Alcotest.(check int) "nothing detected" 0 m.Campaign.detected;
  Alcotest.(check int) "no SDC" 0 m.Campaign.sdc;
  Alcotest.(check (list int)) "nothing quarantined" [] m.Campaign.quarantined;
  Alcotest.(check (float 1e-9)) "no latency overhead" 1.0 m.Campaign.latency_overhead;
  Alcotest.(check (float 1e-9)) "no makespan overhead" 1.0 m.Campaign.makespan_overhead

let test_campaign_detects_and_recovers () =
  let r = Campaign.run ~config:(small_campaign ~seed:11 ~requests:40 ()) () in
  let m = r.Campaign.metrics in
  Alcotest.(check bool) "campaign planted faults" true (m.Campaign.injected_faults > 0);
  Alcotest.(check bool) "guard caught corruptions" true (m.Campaign.detected > 0);
  Alcotest.(check int) "zero silent corruptions" 0 m.Campaign.sdc;
  Alcotest.(check (float 1e-9)) "detection rate 1" 1.0 m.Campaign.detection_rate;
  Alcotest.(check bool) "faulty device quarantined" true (m.Campaign.quarantined <> []);
  Alcotest.(check bool) "requests retried to completion" true
    (m.Campaign.completed_after_retry > 0);
  (* every request is accounted for by exactly one outcome *)
  Alcotest.(check int) "outcome conservation" m.Campaign.requests
    (m.Campaign.completed + m.Campaign.recovered_host + m.Campaign.cpu_fallbacks
   + m.Campaign.rejected + m.Campaign.failed)

let test_campaign_unguarded_suffers_sdc () =
  (* negative control: same faults, guard off -> corruptions are served *)
  let r = Campaign.run ~config:(small_campaign ~abft:false ~seed:11 ~requests:40 ()) () in
  let m = r.Campaign.metrics in
  Alcotest.(check int) "nothing detected without the guard" 0 m.Campaign.detected;
  Alcotest.(check bool) "silent corruptions reach clients" true (m.Campaign.sdc > 0)

let test_campaign_degrades_to_host () =
  (* every device faulty: retries exhaust the pool and requests must
     degrade to the host interpreter, still with zero SDC *)
  let spec =
    { Inject.default_spec with Inject.faulty_fraction = 1.0; stuck_cells = 4 }
  in
  let r = Campaign.run ~config:(small_campaign ~spec ~requests:20 ()) () in
  let m = r.Campaign.metrics in
  Alcotest.(check bool) "host degradation used" true (m.Campaign.recovered_host > 0);
  Alcotest.(check int) "still zero SDC" 0 m.Campaign.sdc;
  (* host-served results match the interpreter oracle bit-for-bit *)
  List.iter
    (fun (rec_ : Telemetry.record) ->
      match (rec_.Telemetry.outcome, rec_.Telemetry.checksum) with
      | Telemetry.Recovered_host, Some cs ->
          let oracle = Campaign.interp_checksum rec_.Telemetry.request in
          Alcotest.(check (option string)) "recovered output = interpreter" (Some cs) oracle
      | _ -> ())
    (Telemetry.records r.Campaign.faulty.Scheduler.telemetry)

let test_campaign_telemetry_summary () =
  let r = Campaign.run ~config:(small_campaign ~seed:11 ~requests:40 ()) () in
  let s = Telemetry.summary r.Campaign.faulty.Scheduler.telemetry in
  Alcotest.(check int) "summary requests" 40 s.Telemetry.requests;
  Alcotest.(check int) "summary retries = campaign detected" r.Campaign.metrics.Campaign.detected
    s.Telemetry.detected_corruptions;
  let trace = Telemetry.chrome_trace r.Campaign.faulty.Scheduler.telemetry in
  Alcotest.(check bool) "chrome trace carries the outcome summary" true
    (let needle = "outcome-summary" in
     let n = String.length needle and m = String.length trace in
     let rec go i = i + n <= m && (String.sub trace i n = needle || go (i + 1)) in
     go 0)

(* The acceptance property: with the guard on, campaigns planting a
   single stuck-at fault per faulty device across the PolyBench
   GEMM/GEMV mix never serve a silent corruption — every corrupted
   offload is detected and the recovered result matches its oracle. *)
let qcheck_single_fault_zero_sdc =
  QCheck.Test.make ~name:"abft-guarded single-fault campaigns have zero SDC" ~count:6
    QCheck.(int_bound 1000)
    (fun seed ->
      let config = small_campaign ~seed ~requests:16 () in
      let r = Campaign.run ~config () in
      let m = r.Campaign.metrics in
      m.Campaign.sdc = 0
      && m.Campaign.detection_rate = 1.0
      && m.Campaign.requests
         = m.Campaign.completed + m.Campaign.recovered_host + m.Campaign.cpu_fallbacks
           + m.Campaign.rejected + m.Campaign.failed)

let suites =
  [
    ( "reliab.abft",
      [
        Alcotest.test_case "known values" `Quick test_abft_known_values;
        Alcotest.test_case "rejects ragged input" `Quick test_abft_rejects_ragged;
        QCheck_alcotest.to_alcotest qcheck_abft_detects_any_single_fault;
      ] );
    ( "reliab.inject",
      [
        Alcotest.test_case "taxonomy apply/describe" `Quick test_fault_describe_and_apply;
        Alcotest.test_case "deterministic sampling" `Quick test_inject_deterministic;
        Alcotest.test_case "plants into a device" `Quick test_inject_into_device;
      ] );
    ( "reliab.campaign",
      [
        Alcotest.test_case "fault-free baseline" `Quick test_campaign_fault_free_baseline;
        Alcotest.test_case "detects and recovers" `Quick test_campaign_detects_and_recovers;
        Alcotest.test_case "unguarded suffers SDC" `Quick test_campaign_unguarded_suffers_sdc;
        Alcotest.test_case "degrades to host oracle" `Quick test_campaign_degrades_to_host;
        Alcotest.test_case "telemetry summary" `Quick test_campaign_telemetry_summary;
        QCheck_alcotest.to_alcotest qcheck_single_fault_zero_sdc;
      ] );
  ]
