let () =
  Alcotest.run "tdo-cim"
    (Test_util.suites @ Test_linalg.suites @ Test_pcm.suites @ Test_sim.suites
   @ Test_cimacc.suites @ Test_runtime.suites @ Test_lang.suites @ Test_ir.suites
   @ Test_poly.suites @ Test_tactics.suites @ Test_energy.suites @ Test_core.suites
   @ Test_analysis.suites @ Test_ablations.suites @ Test_perf.suites
   @ Test_serve.suites @ Test_loadgen.suites @ Test_reliab.suites @ Test_tune.suites
   @ Test_graph.suites)
