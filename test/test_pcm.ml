open Tdo_pcm
module Prng = Tdo_util.Prng
module Mat = Tdo_linalg.Mat
module Blas_ref = Tdo_linalg.Blas_ref

(* ---------- Cell ---------- *)

let test_cell_program_read () =
  let c = Cell.create () in
  Alcotest.(check int) "starts amorphous" 0 (Cell.level c);
  Cell.program c ~level:9;
  Alcotest.(check int) "stores level" 9 (Cell.level c);
  Alcotest.(check int) "one write" 1 (Cell.writes c)

let test_cell_level_range () =
  let c = Cell.create () in
  Alcotest.check_raises "rejects level 16" (Invalid_argument "Cell.program: level 16 out of [0,16)")
    (fun () -> Cell.program c ~level:16);
  Alcotest.check_raises "rejects negative" (Invalid_argument "Cell.program: level -1 out of [0,16)")
    (fun () -> Cell.program c ~level:(-1))

let test_cell_wear_out_sticks () =
  let config = { Cell.default_config with Cell.endurance = 3 } in
  let c = Cell.create ~config () in
  Cell.program c ~level:5;
  Cell.program c ~level:6;
  Cell.program c ~level:7;
  Alcotest.(check bool) "worn after budget" true (Cell.is_worn_out c);
  Cell.program c ~level:1;
  Alcotest.(check int) "stuck at last good level" 7 (Cell.level c);
  Alcotest.(check int) "write attempts still counted" 4 (Cell.writes c)

let test_cell_conductance_monotone () =
  let c = Cell.create () in
  let prev = ref (-1.0) in
  for level = 0 to 15 do
    Cell.program c ~level;
    let g = Cell.conductance c in
    Alcotest.(check bool) "monotone in level" true (g > !prev);
    prev := g
  done;
  Cell.program c ~level:0;
  Alcotest.(check (float 1e-12)) "min conductance" Cell.default_config.Cell.g_min_siemens
    (Cell.conductance c)

let test_pulse_shapes () =
  let peak p = List.fold_left (fun acc (_, temp) -> Float.max acc temp) 0.0 (Cell.pulse_profile p) in
  let duration p = List.fold_left (fun acc (t, _) -> Float.max acc t) 0.0 (Cell.pulse_profile p) in
  Alcotest.(check bool) "reset exceeds melt" true (peak Cell.Reset > Cell.melt_temperature_k);
  Alcotest.(check bool) "set below melt" true (peak Cell.Set < Cell.melt_temperature_k);
  Alcotest.(check bool) "set above crystallisation" true
    (peak Cell.Set > Cell.crystallisation_temperature_k);
  Alcotest.(check bool) "read below crystallisation" true
    (peak Cell.Read < Cell.crystallisation_temperature_k);
  Alcotest.(check bool) "reset shorter than set" true (duration Cell.Reset < duration Cell.Set)

(* ---------- ADC ---------- *)

let test_adc_counts () =
  let a = Adc.create () in
  ignore (Adc.convert a ~full_scale:100.0 50.0);
  ignore (Adc.convert a ~full_scale:100.0 10.0);
  Alcotest.(check int) "conversions" 2 (Adc.conversions a);
  Alcotest.(check int) "samples" 2 (Adc.samples a)

let test_adc_quantisation () =
  let a = Adc.create ~config:{ Adc.bits = 8; columns_per_adc = 32 } () in
  Alcotest.(check int) "full scale maps to top code" 127 (Adc.convert a ~full_scale:1.0 1.0);
  Alcotest.(check int) "zero maps to zero" 0 (Adc.convert a ~full_scale:1.0 0.0);
  Alcotest.(check int) "saturates" 127 (Adc.convert a ~full_scale:1.0 50.0);
  Alcotest.(check int) "negative saturates" (-128) (Adc.convert a ~full_scale:1.0 (-50.0))

let test_adc_sharing () =
  let a = Adc.create ~config:{ Adc.bits = 8; columns_per_adc = 32 } () in
  Alcotest.(check int) "256 cols need 8 adcs" 8 (Adc.adc_count_for_columns a 256);
  Alcotest.(check int) "33 cols need 2 adcs" 2 (Adc.adc_count_for_columns a 33);
  Alcotest.(check int) "0 cols need 0" 0 (Adc.adc_count_for_columns a 0)

(* ---------- Crossbar ---------- *)

let small_config =
  { Crossbar.default_config with Crossbar.rows = 16; cols = 16; size_bytes = 256 }

let random_codes g ~rows ~cols =
  Array.init rows (fun _ -> Array.init cols (fun _ -> Prng.int g ~bound:256 - 128))

let test_crossbar_program_read_roundtrip () =
  let g = Prng.create ~seed:21 in
  let xb = Crossbar.create ~config:small_config () in
  let codes = random_codes g ~rows:10 ~cols:12 in
  Crossbar.program_codes xb codes;
  Alcotest.(check bool) "read back equals written" true (Crossbar.read_codes xb = codes)

let test_crossbar_gemv_exact () =
  let g = Prng.create ~seed:22 in
  let xb = Crossbar.create ~config:small_config () in
  let m = 9 and n = 11 in
  let codes = random_codes g ~rows:m ~cols:n in
  Crossbar.program_codes xb codes;
  let input = Array.init m (fun _ -> Prng.int g ~bound:256 - 128) in
  let out = Crossbar.gemv_codes xb input in
  let expected =
    Array.init n (fun j ->
        let acc = ref 0 in
        for i = 0 to m - 1 do
          acc := !acc + (input.(i) * codes.(i).(j))
        done;
        !acc)
  in
  Alcotest.(check (array int)) "exact integer GEMV" expected out

let test_crossbar_matches_float_reference () =
  let g = Prng.create ~seed:23 in
  let xb = Crossbar.create ~config:small_config () in
  let m = 8 and n = 8 in
  let codes = random_codes g ~rows:m ~cols:n in
  Crossbar.program_codes xb codes;
  let input = Array.init m (fun _ -> Prng.int g ~bound:21 - 10) in
  let out = Crossbar.gemv_codes xb input in
  (* Same computation through the float reference: x^T * A == (A^T x). *)
  let a = Mat.init ~rows:m ~cols:n ~f:(fun i j -> float_of_int codes.(i).(j)) in
  let x = Array.map float_of_int input in
  let y = Array.make n 0.0 in
  Blas_ref.gemv ~trans_a:Blas_ref.Transpose ~alpha:1.0 ~beta:0.0 ~a ~x ~y ();
  Array.iteri
    (fun j v -> Alcotest.(check (float 1e-9)) "agrees with Blas_ref" v (float_of_int out.(j)))
    y

let test_crossbar_counters () =
  let g = Prng.create ~seed:24 in
  let xb = Crossbar.create ~config:small_config () in
  Crossbar.program_codes xb (random_codes g ~rows:4 ~cols:5);
  let input = Array.make 4 1 in
  ignore (Crossbar.gemv_codes xb input);
  ignore (Crossbar.gemv_codes xb input);
  let c = Crossbar.counters xb in
  Alcotest.(check int) "cell writes = 2 per operand" 40 c.Crossbar.cell_writes;
  Alcotest.(check int) "logical writes" 20 c.Crossbar.logical_writes;
  Alcotest.(check int) "write bytes" 20 c.Crossbar.write_bytes;
  Alcotest.(check int) "gemv ops" 2 c.Crossbar.gemv_ops;
  Alcotest.(check int) "macs" 40 c.Crossbar.macs;
  Alcotest.(check int) "adc conversions = 2 planes x cols x gemvs" 20
    (Adc.conversions (Crossbar.adc xb));
  Crossbar.reset_counters xb;
  Alcotest.(check int) "reset clears" 0 (Crossbar.counters xb).Crossbar.gemv_ops

let test_crossbar_region_and_errors () =
  let g = Prng.create ~seed:25 in
  let xb = Crossbar.create ~config:small_config () in
  Alcotest.check_raises "gemv before program" (Failure "Crossbar: no matrix programmed")
    (fun () -> ignore (Crossbar.gemv_codes xb [| 1 |]));
  Crossbar.program_codes xb ~row_off:2 ~col_off:3 (random_codes g ~rows:4 ~cols:5);
  Alcotest.(check (option (list int))) "active region"
    (Some [ 2; 3; 4; 5 ])
    (Option.map (fun (a, b, c, d) -> [ a; b; c; d ]) (Crossbar.active_region xb));
  Alcotest.check_raises "input length mismatch"
    (Invalid_argument "Crossbar.gemv_codes: input length 3, active rows 4") (fun () ->
      ignore (Crossbar.gemv_codes xb [| 1; 2; 3 |]));
  Alcotest.check_raises "region overflow"
    (Invalid_argument "Crossbar.program_codes: region exceeds the array") (fun () ->
      Crossbar.program_codes xb ~row_off:14 (random_codes g ~rows:4 ~cols:4))

let test_crossbar_wear_accumulates () =
  let g = Prng.create ~seed:26 in
  let xb = Crossbar.create ~config:small_config () in
  Crossbar.program_codes xb (random_codes g ~rows:16 ~cols:16);
  Alcotest.(check int) "wear total after one full write" (2 * 16 * 16) (Crossbar.wear_total xb);
  Crossbar.program_codes xb (random_codes g ~rows:16 ~cols:16);
  Alcotest.(check int) "wear grows" (4 * 16 * 16) (Crossbar.wear_total xb);
  Alcotest.(check int) "max per-cell wear" 2 (Crossbar.wear_max xb);
  Crossbar.reset_counters xb;
  Alcotest.(check int) "wear survives counter reset" (4 * 16 * 16) (Crossbar.wear_total xb)

let test_crossbar_wear_out_visible_in_results () =
  let config =
    {
      small_config with
      Crossbar.rows = 1;
      cols = 1;
      cell = { Cell.default_config with Cell.endurance = 1 };
    }
  in
  let xb = Crossbar.create ~config () in
  let codes = [| [| 100 |] |] in
  Crossbar.program_codes xb codes;
  (* Endurance 1: the second programming no longer switches the cells. *)
  Crossbar.program_codes xb [| [| -50 |] |];
  Alcotest.(check bool) "stuck at first value" true (Crossbar.read_codes xb = codes);
  Alcotest.(check (float 1e-9)) "all cells worn" 1.0 (Crossbar.worn_out_fraction xb)

let test_crossbar_noise_bounded () =
  let config = { small_config with Crossbar.noise_sigma = Some 1.0 } in
  let xb = Crossbar.create ~config ~seed:3 () in
  let codes = Array.make_matrix 8 8 10 in
  Crossbar.program_codes xb codes;
  let input = Array.make 8 5 in
  let out = Crossbar.gemv_codes xb input in
  let exact = 8 * 5 * 10 in
  Array.iter
    (fun v ->
      (* result = 16*(hi + e1) + (lo + e2); 6-sigma bound on the combined noise *)
      Alcotest.(check bool) "noise within 6 sigma of both planes" true
        (abs (v - exact) <= 16 * 6 + 6))
    out

let qcheck_gemv_additive =
  QCheck.Test.make ~name:"crossbar gemv is additive in the input" ~count:50 QCheck.small_int
    (fun seed ->
      let g = Prng.create ~seed in
      let m = 1 + Prng.int g ~bound:12 and n = 1 + Prng.int g ~bound:12 in
      let xb = Crossbar.create ~config:small_config () in
      Crossbar.program_codes xb (random_codes g ~rows:m ~cols:n);
      let x = Array.init m (fun _ -> Prng.int g ~bound:101 - 50) in
      let y = Array.init m (fun _ -> Prng.int g ~bound:101 - 50) in
      let xy = Array.init m (fun i -> x.(i) + y.(i)) in
      let ox = Crossbar.gemv_codes xb x
      and oy = Crossbar.gemv_codes xb y
      and oxy = Crossbar.gemv_codes xb xy in
      Array.for_all2 (fun a b -> a = b) oxy (Array.init n (fun j -> ox.(j) + oy.(j))))

let qcheck_program_read_roundtrip =
  QCheck.Test.make ~name:"crossbar program/read roundtrip" ~count:50 QCheck.small_int
    (fun seed ->
      let g = Prng.create ~seed in
      let m = 1 + Prng.int g ~bound:16 and n = 1 + Prng.int g ~bound:16 in
      let xb = Crossbar.create ~config:small_config () in
      let codes = random_codes g ~rows:m ~cols:n in
      Crossbar.program_codes xb codes;
      Crossbar.read_codes xb = codes)

let qcheck_worn_cell_sticks =
  QCheck.Test.make ~name:"worn-out cell is stuck at its last level for any program sequence"
    ~count:200
    QCheck.(pair (int_bound 20) (list_of_size Gen.(1 -- 40) (int_bound 15)))
    (fun (endurance, levels) ->
      let endurance = 1 + endurance in
      let c = Cell.create ~config:{ Cell.default_config with Cell.endurance } () in
      let last_good = ref 0 in
      List.iteri
        (fun i level ->
          Cell.program c ~level;
          if i < endurance then last_good := level)
        levels;
      let writes_ok = Cell.writes c = List.length levels in
      if List.length levels >= endurance then
        (* the budget is spent: the cell froze at the last in-budget level *)
        writes_ok && Cell.is_worn_out c && Cell.is_stuck c && Cell.level c = !last_good
      else (not (Cell.is_worn_out c)) && writes_ok && Cell.level c = !last_good)

let test_crossbar_fault_hooks () =
  let g = Prng.create ~seed:31 in
  let xb = Crossbar.create ~config:small_config () in
  let codes = random_codes g ~rows:8 ~cols:8 in
  Crossbar.program_codes xb codes;
  let input = Array.init 8 (fun i -> i + 1) in
  let clean = Crossbar.gemv_codes xb input in
  Crossbar.set_drift xb ~offset:3;
  let drifted = Crossbar.gemv_codes xb input in
  Array.iteri
    (fun j v -> Alcotest.(check int) "drift offsets every column" (clean.(j) + 3) v)
    drifted;
  Crossbar.set_drift xb ~offset:0;
  Crossbar.arm_column_flip xb ~col:2 ~bit:0 ~ops:1;
  Alcotest.(check int) "flip armed" 1 (Crossbar.flips_remaining xb);
  let flipped = Crossbar.gemv_codes xb input in
  Alcotest.(check int) "armed flip toggles one output bit" (clean.(2) lxor 1) flipped.(2);
  Alcotest.(check int) "other columns untouched" clean.(5) flipped.(5);
  Alcotest.(check int) "flip budget spent" 0 (Crossbar.flips_remaining xb);
  let after = Crossbar.gemv_codes xb input in
  Alcotest.(check (array int)) "transient expires after its ops budget" clean after

let test_crossbar_inject_stuck () =
  let xb = Crossbar.create ~config:small_config () in
  Crossbar.inject_stuck_at xb ~plane:Crossbar.Msb ~row:0 ~col:0 ~level:0;
  let codes = Array.make_matrix 4 4 127 in
  Crossbar.program_codes xb codes;
  let out = Crossbar.read_codes xb in
  Alcotest.(check bool) "stuck cell corrupts its code" true (out.(0).(0) <> 127);
  Alcotest.(check int) "neighbours unaffected" 127 out.(0).(1);
  Alcotest.(check bool) "defective fraction visible" true (Crossbar.stuck_fraction xb > 0.0);
  Alcotest.check_raises "bounds checked"
    (Invalid_argument "Crossbar: cell (99,0) outside the 16x16 array") (fun () ->
      Crossbar.inject_stuck_at xb ~plane:Crossbar.Lsb ~row:99 ~col:0 ~level:0)

(* ---------- Endurance ---------- *)

let test_lifetime_equation () =
  (* endurance * S / B with easy numbers: 10 writes * 100 bytes / 1 B/s. *)
  Alcotest.(check (float 1e-9)) "seconds" 1000.0
    (Endurance.lifetime_seconds ~cell_endurance:10.0 ~crossbar_bytes:100
       ~write_bytes_per_second:1.0);
  let years =
    Endurance.lifetime_years ~cell_endurance:1.0 ~crossbar_bytes:1
      ~write_bytes_per_second:(1.0 /. Endurance.seconds_per_year)
  in
  Alcotest.(check (float 1e-9)) "one year" 1.0 years

let test_lifetime_linear_in_endurance () =
  let life e =
    Endurance.lifetime_years ~cell_endurance:e ~crossbar_bytes:(512 * 1024)
      ~write_bytes_per_second:1e6
  in
  Alcotest.(check (float 1e-9)) "doubling endurance doubles lifetime" (2.0 *. life 1e7) (life 2e7)

let test_lifetime_invalid () =
  Alcotest.check_raises "zero traffic" (Invalid_argument "Endurance: traffic must be positive")
    (fun () ->
      ignore
        (Endurance.lifetime_seconds ~cell_endurance:1.0 ~crossbar_bytes:1
           ~write_bytes_per_second:0.0))

let test_write_traffic () =
  Alcotest.(check (float 1e-9)) "bytes/s" 2000.0
    (Endurance.write_traffic_bytes_per_second ~bytes_written:1000 ~elapsed_seconds:0.5)

let suites =
  [
    ( "pcm.cell",
      [
        Alcotest.test_case "program/read" `Quick test_cell_program_read;
        Alcotest.test_case "level range" `Quick test_cell_level_range;
        Alcotest.test_case "wear-out sticks" `Quick test_cell_wear_out_sticks;
        QCheck_alcotest.to_alcotest qcheck_worn_cell_sticks;
        Alcotest.test_case "conductance monotone" `Quick test_cell_conductance_monotone;
        Alcotest.test_case "pulse shapes (Fig 1)" `Quick test_pulse_shapes;
      ] );
    ( "pcm.adc",
      [
        Alcotest.test_case "event counts" `Quick test_adc_counts;
        Alcotest.test_case "quantisation" `Quick test_adc_quantisation;
        Alcotest.test_case "column sharing" `Quick test_adc_sharing;
      ] );
    ( "pcm.crossbar",
      [
        Alcotest.test_case "program/read roundtrip" `Quick test_crossbar_program_read_roundtrip;
        Alcotest.test_case "gemv exact" `Quick test_crossbar_gemv_exact;
        Alcotest.test_case "matches float reference" `Quick test_crossbar_matches_float_reference;
        Alcotest.test_case "counters" `Quick test_crossbar_counters;
        Alcotest.test_case "active region & errors" `Quick test_crossbar_region_and_errors;
        Alcotest.test_case "wear accumulates" `Quick test_crossbar_wear_accumulates;
        Alcotest.test_case "wear-out visible" `Quick test_crossbar_wear_out_visible_in_results;
        Alcotest.test_case "noise bounded" `Quick test_crossbar_noise_bounded;
        Alcotest.test_case "fault hooks: drift & column flip" `Quick test_crossbar_fault_hooks;
        Alcotest.test_case "fault hooks: stuck-at" `Quick test_crossbar_inject_stuck;
        QCheck_alcotest.to_alcotest qcheck_gemv_additive;
        QCheck_alcotest.to_alcotest qcheck_program_read_roundtrip;
      ] );
    ( "pcm.endurance",
      [
        Alcotest.test_case "Eq. 1" `Quick test_lifetime_equation;
        Alcotest.test_case "linear in endurance" `Quick test_lifetime_linear_in_endurance;
        Alcotest.test_case "invalid inputs" `Quick test_lifetime_invalid;
        Alcotest.test_case "write traffic" `Quick test_write_traffic;
      ] );
  ]

(* ---------- Start-Gap wear leveling ---------- *)

let test_wl_mapping_bijective () =
  let wl = Wear_leveling.create ~lines:8 ~gap_interval:3 in
  let check_bijective () =
    let seen = Hashtbl.create 16 in
    for logical = 0 to 7 do
      let phys = Wear_leveling.physical_of_logical wl logical in
      Alcotest.(check bool) "in physical range" true (phys >= 0 && phys <= 8);
      Alcotest.(check bool) "no collision" false (Hashtbl.mem seen phys);
      Hashtbl.add seen phys ()
    done
  in
  check_bijective ();
  (* drive enough writes to move the gap through several full rotations *)
  for i = 0 to 999 do
    Wear_leveling.write wl (i mod 8);
    check_bijective ()
  done

let test_wl_rotation_progress () =
  let wl = Wear_leveling.create ~lines:4 ~gap_interval:1 in
  let initial = Wear_leveling.physical_of_logical wl 0 in
  (* 5 gap movements = one full rotation; mapping must have shifted *)
  for _ = 1 to 5 do
    Wear_leveling.write wl 0
  done;
  Alcotest.(check bool) "mapping rotated" true
    (Wear_leveling.physical_of_logical wl 0 <> initial);
  Alcotest.(check int) "gap movements counted" 5 (Wear_leveling.gap_movements wl)

let test_wl_levels_skewed_traffic () =
  (* hammer one logical line; without leveling max wear = all writes,
     with Start-Gap it must approach the ideal bound *)
  let lines = 16 in
  let writes = 20_000 in
  let wl = Wear_leveling.create ~lines ~gap_interval:4 in
  for _ = 1 to writes do
    Wear_leveling.write wl 3
  done;
  let max_wear = Wear_leveling.max_wear wl in
  let ideal = Wear_leveling.ideal_max_wear wl in
  Alcotest.(check bool) "far below the unlevelled worst case" true
    (max_wear < writes / 2);
  Alcotest.(check bool) "within 8x of the ideal bound" true (max_wear <= 8 * ideal);
  Alcotest.(check int) "writes counted" writes (Wear_leveling.total_writes wl)

let test_wl_wear_conservation () =
  let wl = Wear_leveling.create ~lines:8 ~gap_interval:2 in
  let g = Prng.create ~seed:77 in
  for _ = 1 to 5000 do
    Wear_leveling.write wl (Prng.int g ~bound:8)
  done;
  let total_wear = Array.fold_left ( + ) 0 (Wear_leveling.wear wl) in
  (* every logical write plus every gap-copy lands on some physical line *)
  Alcotest.(check bool) "wear accounts for writes and copies" true
    (total_wear >= Wear_leveling.total_writes wl
    && total_wear <= Wear_leveling.total_writes wl + Wear_leveling.gap_movements wl)

let test_wl_invalid () =
  let wl = Wear_leveling.create ~lines:4 ~gap_interval:1 in
  Alcotest.(check bool) "range checked" true
    (try
       ignore (Wear_leveling.physical_of_logical wl 4);
       false
     with Invalid_argument _ -> true)

let test_wl_quarantine_routes_away () =
  let lines = 8 in
  let wl = Wear_leveling.create ~lines ~gap_interval:2 in
  let phys = Wear_leveling.physical_of_logical wl 3 in
  Wear_leveling.quarantine wl phys;
  Alcotest.(check bool) "marked" true (Wear_leveling.is_quarantined wl phys);
  Alcotest.(check int) "counted once" 1 (Wear_leveling.quarantined_count wl);
  Wear_leveling.quarantine wl phys;
  Alcotest.(check int) "idempotent" 1 (Wear_leveling.quarantined_count wl);
  let wear_before = (Wear_leveling.wear wl).(phys) in
  for i = 0 to 999 do
    Wear_leveling.write wl (i mod lines);
    for logical = 0 to lines - 1 do
      if Wear_leveling.physical_of_logical wl logical = phys then
        Alcotest.failf "write %d: logical %d routed to quarantined line %d" i logical phys
    done
  done;
  Alcotest.(check int) "quarantined line takes no further wear" wear_before
    (Wear_leveling.wear wl).(phys);
  Alcotest.(check int) "stats expose the dead line" 1 (Wear_leveling.stats wl).Wear_leveling.quarantined

let test_wl_quarantine_keeps_one_line () =
  let wl = Wear_leveling.create ~lines:2 ~gap_interval:1 in
  Wear_leveling.quarantine wl 0;
  Wear_leveling.quarantine wl 1;
  (* two of three physical lines are dead; killing the last would leave
     the two logical lines nowhere to live *)
  Alcotest.(check bool) "refuses to kill the last healthy line" true
    (try
       Wear_leveling.quarantine wl 2;
       false
     with Invalid_argument _ -> true);
  let a = Wear_leveling.physical_of_logical wl 0 in
  Alcotest.(check int) "survivor takes everything" a (Wear_leveling.physical_of_logical wl 1)

let qcheck_wl_bijection =
  QCheck.Test.make ~name:"start-gap mapping stays a bijection under random traffic" ~count:50
    QCheck.small_int (fun seed ->
      let g = Prng.create ~seed in
      let lines = 2 + Prng.int g ~bound:30 in
      let wl = Wear_leveling.create ~lines ~gap_interval:(1 + Prng.int g ~bound:5) in
      let ok = ref true in
      for _ = 1 to 500 do
        Wear_leveling.write wl (Prng.int g ~bound:lines);
        let seen = Hashtbl.create 32 in
        for logical = 0 to lines - 1 do
          let phys = Wear_leveling.physical_of_logical wl logical in
          if phys < 0 || phys > lines || Hashtbl.mem seen phys then ok := false;
          Hashtbl.add seen phys ()
        done
      done;
      !ok)

let wear_leveling_suite =
  ( "pcm.wear_leveling",
    [
      Alcotest.test_case "bijective mapping" `Quick test_wl_mapping_bijective;
      Alcotest.test_case "rotation progress" `Quick test_wl_rotation_progress;
      Alcotest.test_case "levels skewed traffic" `Quick test_wl_levels_skewed_traffic;
      Alcotest.test_case "wear conservation" `Quick test_wl_wear_conservation;
      Alcotest.test_case "range checks" `Quick test_wl_invalid;
      Alcotest.test_case "quarantine routes writes away" `Quick test_wl_quarantine_routes_away;
      Alcotest.test_case "quarantine keeps one line" `Quick test_wl_quarantine_keeps_one_line;
      QCheck_alcotest.to_alcotest qcheck_wl_bijection;
    ] )

let suites = suites @ [ wear_leveling_suite ]
