(* Performance-engineering suites: the event-queue heap, the
   single-scan cache victim selection, the domain pool, and the golden
   determinism guarantee (parallel experiment fan-out bit-identical to
   a sequential run). *)

open Tdo_sim
module Pool = Tdo_util.Pool
module E = Tdo_cim.Experiments
module Dataset = Tdo_polybench.Dataset

(* ---------- event-queue heap ---------- *)

let test_run_until_drained_early () =
  let q = Event_queue.create () in
  let ran = ref 0 in
  Event_queue.schedule q ~delay:10 ~name:"only" (fun () -> incr ran);
  Event_queue.run_until q ~time:100;
  Alcotest.(check int) "event ran" 1 !ran;
  Alcotest.(check int) "clock lands on the target, not the last event" 100 (Event_queue.now q);
  (* an empty queue still advances *)
  Event_queue.run_until q ~time:250;
  Alcotest.(check int) "empty queue advances too" 250 (Event_queue.now q)

let test_run_until_past_rejected () =
  let q = Event_queue.create () in
  Event_queue.advance_to q ~time:100;
  Alcotest.(check bool) "past target raises" true
    (try
       Event_queue.run_until q ~time:50;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check int) "clock untouched on failure" 100 (Event_queue.now q)

let test_schedule_past_names_event () =
  let q = Event_queue.create () in
  Event_queue.advance_to q ~time:100;
  let msg =
    try
      Event_queue.schedule_at q ~time:5 ~name:"tardy-dma" (fun () -> ());
      ""
    with Invalid_argument m -> m
  in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "error names the event" true (contains msg "tardy-dma")

(* Heap order: execution order is exactly the (time, seq) sort — a
   stable sort of the schedule order by time. *)
let qcheck_heap_pop_order =
  QCheck.Test.make ~name:"heap pops in (time, seq) order" ~count:300
    QCheck.(list_of_size Gen.(0 -- 40) (int_bound 50))
    (fun times ->
      let q = Event_queue.create () in
      let order = ref [] in
      List.iteri
        (fun i t ->
          Event_queue.schedule_at q ~time:t ~name:(string_of_int i) (fun () ->
              order := (t, i) :: !order))
        times;
      Event_queue.run_all q;
      let got = List.rev !order in
      let expected =
        List.stable_sort
          (fun (t1, _) (t2, _) -> compare t1 t2)
          (List.mapi (fun i t -> (t, i)) times)
      in
      got = expected)

let qcheck_heap_invariants =
  QCheck.Test.make ~name:"pending + executed invariants" ~count:300
    QCheck.(list_of_size Gen.(0 -- 40) (int_bound 50))
    (fun times ->
      let q = Event_queue.create () in
      List.iteri
        (fun i t -> Event_queue.schedule_at q ~time:t ~name:(string_of_int i) ignore)
        times;
      let n = List.length times in
      let ok_before = Event_queue.pending q = n && Event_queue.executed q = 0 in
      (* drain halfway, then fully *)
      Event_queue.run_until q ~time:25;
      let ok_mid = Event_queue.pending q + Event_queue.executed q = n in
      Event_queue.run_all q;
      ok_before && ok_mid
      && Event_queue.pending q = 0
      && Event_queue.executed q = n
      && not (Event_queue.run_next q))

(* ---------- cache victim selection ---------- *)

let flat_next latency = fun _ ~addr:_ ~bytes:_ -> latency

(* 1 set x 4 ways x 16-byte lines: victim choice is fully observable *)
let quad_way_config =
  { Cache.name = "quad"; size_bytes = 64; line_bytes = 16; ways = 4; hit_latency_ps = 1 }

let test_cache_fills_invalid_ways_first () =
  let c = Cache.create ~config:quad_way_config ~next:(flat_next 100) () in
  (* four distinct lines: all misses, but no eviction — each miss must
     claim a still-invalid way instead of evicting a resident line *)
  List.iter (fun a -> ignore (Cache.access c Cache.Read ~addr:a)) [ 0; 16; 32; 48 ];
  Alcotest.(check int) "cold misses" 4 (Cache.stats c).Cache.misses;
  Alcotest.(check int) "no eviction while ways are free" 0 (Cache.stats c).Cache.evictions;
  (* all four still resident *)
  List.iter (fun a -> ignore (Cache.access c Cache.Read ~addr:a)) [ 0; 16; 32; 48 ];
  Alcotest.(check int) "all resident" 4 (Cache.stats c).Cache.hits

let test_cache_eviction_order_is_lru () =
  (* dirty victims write back on eviction, so the sequence of writeback
     addresses below the cache pins the eviction order exactly *)
  let victims = ref [] in
  let next op ~addr ~bytes:_ =
    if op = Cache.Write then victims := addr :: !victims;
    100
  in
  let c = Cache.create ~config:quad_way_config ~next () in
  List.iter (fun a -> ignore (Cache.access c Cache.Write ~addr:a)) [ 0; 16; 32; 48 ];
  (* touch 0 and 32 so the LRU order is 16, 48, 0, 32 *)
  ignore (Cache.access c Cache.Read ~addr:0);
  ignore (Cache.access c Cache.Read ~addr:32);
  (* four fresh lines must evict the residents in exactly LRU order *)
  List.iter (fun a -> ignore (Cache.access c Cache.Read ~addr:a)) [ 64; 80; 96; 112 ];
  Alcotest.(check (list int)) "victims in LRU order" [ 16; 48; 0; 32 ] (List.rev !victims);
  Alcotest.(check int) "four evictions" 4 (Cache.stats c).Cache.evictions;
  Alcotest.(check int) "four writebacks" 4 (Cache.stats c).Cache.writebacks

(* ---------- scratch arenas ---------- *)

module Arena = Tdo_util.Arena

(* A mixed acquisition sequence: every block has the exact requested
   length, no two blocks handed out between resets alias each other
   (the per-block fill pattern survives), and after a reset the same
   shapes come back from the pool instead of fresh allocations. *)
let qcheck_arena_roundtrip =
  QCheck.Test.make ~name:"arena round-trip: exact sizes, no aliasing, reuse after reset"
    ~count:100
    QCheck.(list_of_size Gen.(1 -- 30) (pair (int_bound 2) (int_bound 48)))
    (fun specs ->
      let a = Arena.create () in
      let acquire i (kind, n) =
        match kind with
        | 0 ->
            let b = Arena.int_array a n in
            if Array.length b <> n then QCheck.Test.fail_report "int size";
            Array.fill b 0 n i;
            `I (b, i)
        | 1 ->
            let b = Arena.float_array a n in
            if Array.length b <> n then QCheck.Test.fail_report "float size";
            Array.fill b 0 n (float_of_int i);
            `F (b, i)
        | _ ->
            let b = Arena.bytes a n in
            if Bytes.length b <> n then QCheck.Test.fail_report "bytes size";
            Bytes.fill b 0 n (Char.chr (i land 0xff));
            `B (b, i)
      in
      let blocks = List.mapi acquire specs in
      let survives =
        List.for_all
          (function
            | `I (b, i) -> Array.for_all (Int.equal i) b
            | `F (b, i) -> Array.for_all (Float.equal (float_of_int i)) b
            | `B (b, i) ->
                Bytes.for_all (fun c -> Char.code c = i land 0xff) b)
          blocks
      in
      let s1 = Arena.stats a in
      Arena.reset a;
      ignore (List.mapi acquire specs);
      let s2 = Arena.stats a in
      survives
      && s1.Arena.fresh = List.length specs
      && s2.Arena.fresh = s1.Arena.fresh
      && s2.Arena.reused - s1.Arena.reused = List.length specs)

let test_arena_reuse_is_physical () =
  let a = Arena.create () in
  let b1 = Arena.int_array a 16 in
  Alcotest.(check int) "first acquisition is fresh" 1 (Arena.stats a).Arena.fresh;
  Arena.reset a;
  let b2 = Arena.int_array a 16 in
  Alcotest.(check bool) "same block comes back" true (b1 == b2);
  Alcotest.(check int) "served from the pool" 1 (Arena.stats a).Arena.reused

let test_pool_scratch_is_per_domain_and_stable () =
  let a = Pool.scratch () and b = Pool.scratch () in
  Alcotest.(check bool) "same domain gets the same arena" true (a == b);
  (* workers acquire from their own arenas without interfering *)
  let r =
    Pool.parallel_map ~workers:2
      (fun i ->
        let s = Pool.scratch () in
        let buf = Tdo_util.Arena.int_array s 8 in
        Array.fill buf 0 8 i;
        Array.fold_left ( + ) 0 buf)
      [ 1; 2; 3; 4 ]
  in
  Alcotest.(check (list int)) "per-worker scratch stays coherent" [ 8; 16; 24; 32 ] r

(* ---------- domain pool ---------- *)

let qcheck_pool_order_preserved =
  QCheck.Test.make ~name:"parallel_map preserves order" ~count:100
    QCheck.(pair (int_range 1 4) (list_of_size Gen.(0 -- 50) small_int))
    (fun (workers, xs) ->
      Pool.parallel_map ~workers (fun x -> (2 * x) + 1) xs
      = List.map (fun x -> (2 * x) + 1) xs)

let qcheck_pool_deterministic_across_sizes =
  QCheck.Test.make ~name:"same results for pool sizes 1/2/N" ~count:50
    QCheck.(list_of_size Gen.(0 -- 30) small_int)
    (fun xs ->
      let f x = Printf.sprintf "%d->%d" x (x * x) in
      let r1 = Pool.parallel_map ~workers:1 f xs in
      let r2 = Pool.parallel_map ~workers:2 f xs in
      let rn = Pool.parallel_map f xs in
      r1 = r2 && r2 = rn)

exception Boom of int

let qcheck_pool_first_exception_wins =
  QCheck.Test.make ~name:"earliest failing element's exception propagates" ~count:50
    QCheck.(pair (int_range 1 4) (list_of_size Gen.(1 -- 30) (int_bound 20)))
    (fun (workers, xs) ->
      let f x = if x mod 3 = 0 then raise (Boom x) else x in
      let expected = List.find_opt (fun x -> x mod 3 = 0) xs in
      match (Pool.parallel_map ~workers f xs, expected) with
      | _, None -> true (* no element raises; the map must succeed *)
      | _, Some _ -> false (* an element raises; success is wrong *)
      | exception Boom b -> Some b = expected)

let test_pool_nested_runs_sequentially () =
  (* inner maps run on worker domains without spawning more domains —
     and without deadlock *)
  let result =
    Pool.parallel_map ~workers:2
      (fun i -> Pool.parallel_map ~workers:2 (fun j -> (10 * i) + j) [ 1; 2; 3 ])
      [ 1; 2 ]
  in
  Alcotest.(check (list (list int))) "nested maps" [ [ 11; 12; 13 ]; [ 21; 22; 23 ] ] result

let test_pool_sequential_override () =
  Pool.set_sequential (Some true);
  Alcotest.(check bool) "override on" true (Pool.sequential ());
  let r = Pool.parallel_map (fun x -> x + 1) [ 1; 2; 3 ] in
  Pool.set_sequential None;
  Alcotest.(check (list int)) "sequential map still correct" [ 2; 3; 4 ] r

let with_env var value f =
  let old = Sys.getenv_opt var in
  Unix.putenv var value;
  Fun.protect ~finally:(fun () -> Unix.putenv var (Option.value old ~default:"")) f

let test_pool_size_env_override () =
  with_env "TDO_DOMAINS" "3" (fun () ->
      Alcotest.(check int) "TDO_DOMAINS=3 pins the size" 3 (Pool.size ()));
  with_env "TDO_DOMAINS" "7" (fun () ->
      Alcotest.(check int) "the variable is re-read on every call" 7 (Pool.size ()));
  with_env "TDO_DOMAINS" "nope" (fun () ->
      Alcotest.(check bool) "unparsable falls back to >= 1" true (Pool.size () >= 1));
  with_env "TDO_DOMAINS" "0" (fun () ->
      Alcotest.(check bool) "degenerate is clamped to >= 1" true (Pool.size () >= 1))

let test_pool_large_map_chunked () =
  (* large enough that the chunked cursor hands out many chunks per
     worker; order and content must still be exact *)
  let n = 10_000 in
  let xs = List.init n Fun.id in
  let got = Pool.parallel_map ~workers:4 (fun x -> (x * 2) + 1) xs in
  Alcotest.(check bool) "10k-element map is order-exact" true
    (got = List.map (fun x -> (x * 2) + 1) xs)

(* ---------- golden determinism: parallel == sequential ---------- *)

let with_pool_mode seq f =
  Pool.set_sequential (Some seq);
  Fun.protect ~finally:(fun () -> Pool.set_sequential None) f

let check_measurement name (a : Tdo_cim.Flow.measurement) (b : Tdo_cim.Flow.measurement) =
  Alcotest.(check int) (name ^ " roi_instructions") a.roi_instructions b.roi_instructions;
  Alcotest.(check int) (name ^ " roi_cycles") a.roi_cycles b.roi_cycles;
  Alcotest.(check (float 0.0)) (name ^ " time_s") a.time_s b.time_s;
  Alcotest.(check (float 0.0)) (name ^ " energy_j") a.energy_j b.energy_j;
  Alcotest.(check (float 0.0)) (name ^ " edp_js") a.edp_js b.edp_js;
  Alcotest.(check int) (name ^ " launches") a.launches b.launches;
  Alcotest.(check int) (name ^ " cim_macs") a.cim_macs b.cim_macs;
  Alcotest.(check int) (name ^ " cim_write_bytes") a.cim_write_bytes b.cim_write_bytes;
  Alcotest.(check bool) (name ^ " full record") true (a = b)

let test_fig6_parallel_matches_sequential () =
  let dataset = Dataset.Small in
  let seq_rows, seq_summary = with_pool_mode true (fun () -> E.fig6 ~dataset ()) in
  let par_rows, par_summary = with_pool_mode false (fun () -> E.fig6 ~dataset ()) in
  Alcotest.(check int) "row count" (List.length seq_rows) (List.length par_rows);
  List.iter2
    (fun (s : E.fig6_row) (p : E.fig6_row) ->
      Alcotest.(check string) "kernel" s.kernel p.kernel;
      check_measurement (s.kernel ^ " host") s.host p.host;
      check_measurement (s.kernel ^ " cim") s.cim p.cim;
      Alcotest.(check (float 0.0)) (s.kernel ^ " energy gain") s.energy_improvement
        p.energy_improvement;
      Alcotest.(check (float 0.0)) (s.kernel ^ " edp gain") s.edp_improvement p.edp_improvement;
      Alcotest.(check (float 0.0)) (s.kernel ^ " perf gain") s.perf_improvement
        p.perf_improvement;
      Alcotest.(check (float 0.0)) (s.kernel ^ " max err") s.max_abs_error p.max_abs_error)
    seq_rows par_rows;
  Alcotest.(check (float 0.0)) "geomean energy" seq_summary.geomean_energy_improvement
    par_summary.geomean_energy_improvement;
  Alcotest.(check (float 0.0)) "selective geomean"
    seq_summary.selective_geomean_energy_improvement
    par_summary.selective_geomean_energy_improvement;
  Alcotest.(check (float 0.0)) "geomean edp" seq_summary.geomean_edp_improvement
    par_summary.geomean_edp_improvement;
  Alcotest.(check (float 0.0)) "max edp" seq_summary.max_edp_improvement
    par_summary.max_edp_improvement

let test_arena_reuse_identical_runs () =
  (* the second run lands on a warm arena (every buffer served from the
     pool) and must be bit-identical to the first *)
  let r1 = E.fig5 ~n:24 () in
  let r2 = E.fig5 ~n:24 () in
  Alcotest.(check bool) "warm-arena rerun is bit-identical" true (r1 = r2)

let test_fig5_arena_off_matches_on () =
  let off = with_env "TDO_ARENA" "0" (fun () -> E.fig5 ~n:24 ()) in
  let on_ = with_env "TDO_ARENA" "1" (fun () -> E.fig5 ~n:24 ()) in
  Alcotest.(check bool) "TDO_ARENA=0 output is bit-identical" true (off = on_)

let test_fig5_parallel_matches_sequential_arena_off () =
  with_env "TDO_ARENA" "0" (fun () ->
      let s = with_pool_mode true (fun () -> E.fig5 ~n:24 ()) in
      let p = with_pool_mode false (fun () -> E.fig5 ~n:24 ()) in
      Alcotest.(check bool) "parallel == sequential with arenas off" true (s = p))

let test_fig5_parallel_matches_sequential () =
  let n = 32 in
  let seq_rows, seq_meta = with_pool_mode true (fun () -> E.fig5 ~n ()) in
  let par_rows, par_meta = with_pool_mode false (fun () -> E.fig5 ~n ()) in
  List.iter2
    (fun (s : E.fig5_row) (p : E.fig5_row) ->
      Alcotest.(check (float 0.0)) "endurance" s.endurance_millions p.endurance_millions;
      Alcotest.(check (float 0.0)) "naive years" s.naive_years p.naive_years;
      Alcotest.(check (float 0.0)) "smart years" s.smart_years p.smart_years)
    seq_rows par_rows;
  Alcotest.(check int) "naive writes" seq_meta.naive_write_bytes par_meta.naive_write_bytes;
  Alcotest.(check int) "smart writes" seq_meta.smart_write_bytes par_meta.smart_write_bytes;
  Alcotest.(check (float 0.0)) "naive traffic" seq_meta.naive_traffic_bytes_per_s
    par_meta.naive_traffic_bytes_per_s;
  Alcotest.(check (float 0.0)) "smart traffic" seq_meta.smart_traffic_bytes_per_s
    par_meta.smart_traffic_bytes_per_s

let suites =
  [
    ( "perf.event_heap",
      [
        Alcotest.test_case "run_until drains early" `Quick test_run_until_drained_early;
        Alcotest.test_case "run_until rejects past" `Quick test_run_until_past_rejected;
        Alcotest.test_case "schedule error names event" `Quick test_schedule_past_names_event;
        QCheck_alcotest.to_alcotest qcheck_heap_pop_order;
        QCheck_alcotest.to_alcotest qcheck_heap_invariants;
      ] );
    ( "perf.cache_victim",
      [
        Alcotest.test_case "invalid ways first" `Quick test_cache_fills_invalid_ways_first;
        Alcotest.test_case "LRU eviction order" `Quick test_cache_eviction_order_is_lru;
      ] );
    ( "perf.arena",
      [
        QCheck_alcotest.to_alcotest qcheck_arena_roundtrip;
        Alcotest.test_case "reset recycles the same block" `Quick test_arena_reuse_is_physical;
        Alcotest.test_case "scratch is per-domain and stable" `Quick
          test_pool_scratch_is_per_domain_and_stable;
      ] );
    ( "perf.pool",
      [
        QCheck_alcotest.to_alcotest qcheck_pool_order_preserved;
        QCheck_alcotest.to_alcotest qcheck_pool_deterministic_across_sizes;
        QCheck_alcotest.to_alcotest qcheck_pool_first_exception_wins;
        Alcotest.test_case "nested maps" `Quick test_pool_nested_runs_sequentially;
        Alcotest.test_case "sequential override" `Quick test_pool_sequential_override;
        Alcotest.test_case "TDO_DOMAINS override" `Quick test_pool_size_env_override;
        Alcotest.test_case "10k-element chunked map" `Quick test_pool_large_map_chunked;
      ] );
    ( "perf.golden_determinism",
      [
        Alcotest.test_case "fig6 parallel == sequential" `Slow
          test_fig6_parallel_matches_sequential;
        Alcotest.test_case "fig5 parallel == sequential" `Quick
          test_fig5_parallel_matches_sequential;
        Alcotest.test_case "warm-arena rerun identical" `Quick test_arena_reuse_identical_runs;
        Alcotest.test_case "arenas off == arenas on" `Quick test_fig5_arena_off_matches_on;
        Alcotest.test_case "parallel == sequential, arenas off" `Quick
          test_fig5_parallel_matches_sequential_arena_off;
      ] );
  ]
