open Tdo_serve
module Backend = Tdo_backend.Backend
module Pool = Tdo_util.Pool
module Wear_leveling = Tdo_pcm.Wear_leveling
module Endurance = Tdo_pcm.Endurance
module Kernels = Tdo_polybench.Kernels
module Flow = Tdo_cim.Flow
module Parser = Tdo_lang.Parser
module Mat = Tdo_linalg.Mat

(* ---------- Pool sizing: TDO_DOMAINS override ---------- *)

(* The pool re-reads the environment on every [size] call, so these
   tests can flip the variable in-process. There is no unsetenv in the
   stdlib; the final state ("") parses as no override, which is the
   same behaviour as an absent variable. *)
let test_pool_domains_override () =
  Fun.protect
    ~finally:(fun () -> Unix.putenv "TDO_DOMAINS" "")
    (fun () ->
      Unix.putenv "TDO_DOMAINS" "3";
      Alcotest.(check int) "explicit override honoured" 3 (Pool.size ());
      Unix.putenv "TDO_DOMAINS" "1";
      Alcotest.(check int) "minimum accepted" 1 (Pool.size ());
      Unix.putenv "TDO_DOMAINS" "0";
      Alcotest.(check int) "zero clamps to 1" 1 (Pool.size ());
      Unix.putenv "TDO_DOMAINS" "-7";
      Alcotest.(check int) "negative clamps to 1" 1 (Pool.size ());
      Unix.putenv "TDO_DOMAINS" "not-a-number";
      Alcotest.(check bool) "garbage falls back to >= 1" true (Pool.size () >= 1);
      Unix.putenv "TDO_DOMAINS" "";
      Alcotest.(check bool) "empty falls back to >= 1" true (Pool.size () >= 1))

let test_pool_domains_map () =
  Fun.protect
    ~finally:(fun () -> Unix.putenv "TDO_DOMAINS" "")
    (fun () ->
      Unix.putenv "TDO_DOMAINS" "2";
      let xs = List.init 17 Fun.id in
      Alcotest.(check (list int))
        "map under pinned domain count preserves order"
        (List.map (fun x -> x * x) xs)
        (Pool.parallel_map (fun x -> x * x) xs))

(* ---------- Wear-leveling / endurance read-only stats ---------- *)

let test_wear_leveling_stats () =
  let wl = Wear_leveling.create ~lines:8 ~gap_interval:4 in
  for i = 0 to 99 do
    Wear_leveling.write wl (i mod 8)
  done;
  let s = Wear_leveling.stats wl in
  Alcotest.(check int) "writes mirrors total_writes" (Wear_leveling.total_writes wl) s.Wear_leveling.writes;
  Alcotest.(check int) "all writes recorded" 100 s.Wear_leveling.writes;
  Alcotest.(check int) "max mirrors max_wear" (Wear_leveling.max_wear wl) s.Wear_leveling.max_per_cell;
  Alcotest.(check int) "remaps mirrors gap_movements" (Wear_leveling.gap_movements wl) s.Wear_leveling.remaps;
  Alcotest.(check int) "gap moved every interval" 25 s.Wear_leveling.remaps

let test_endurance_tracker () =
  let tr = Endurance.Tracker.create ~cell_endurance:10.0 ~crossbar_bytes:100 in
  Alcotest.(check int) "starts empty" 0 (Endurance.Tracker.bytes_written tr);
  Alcotest.(check (float 1e-9)) "zero budget before writes" 0.0 (Endurance.Tracker.budget_consumed tr);
  Alcotest.(check bool) "no lifetime before first write" true
    (Endurance.Tracker.lifetime_years tr ~elapsed_seconds:1.0 = None);
  Endurance.Tracker.record tr ~bytes:300;
  Endurance.Tracker.record tr ~bytes:200;
  Alcotest.(check int) "bytes accumulate" 500 (Endurance.Tracker.bytes_written tr);
  Alcotest.(check int) "events counted" 2 (Endurance.Tracker.events tr);
  (* budget = bytes / (endurance * capacity) = 500 / 1000 *)
  Alcotest.(check (float 1e-9)) "budget fraction" 0.5 (Endurance.Tracker.budget_consumed tr);
  (match Endurance.Tracker.lifetime_years tr ~elapsed_seconds:2.0 with
  | None -> Alcotest.fail "lifetime expected after writes"
  | Some y ->
      let expected =
        Endurance.lifetime_years ~cell_endurance:10.0 ~crossbar_bytes:100
          ~write_bytes_per_second:(500.0 /. 2.0)
      in
      Alcotest.(check (float 1e-9)) "matches Eq. 1 directly" expected y);
  Alcotest.(check bool) "negative record rejected" true
    (try
       Endurance.Tracker.record tr ~bytes:(-1);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "degenerate tracker rejected" true
    (try
       ignore (Endurance.Tracker.create ~cell_endurance:0.0 ~crossbar_bytes:100);
       false
     with Invalid_argument _ -> true)

(* ---------- Kernel cache ---------- *)

let gemm_source ~n =
  match Kernels.find "gemm" with
  | Ok b -> b.Kernels.source ~n
  | Error e -> Alcotest.fail e

(* Same program, different formatting: extra blank lines, leading
   indentation, doubled interior spaces. The structural key digests the
   parsed AST, so these must collide. *)
let mangle_whitespace src =
  let doubled =
    String.concat "  " (String.split_on_char ' ' src)
  in
  "\n\n   " ^ String.concat "\n\n" (String.split_on_char '\n' doubled) ^ "\n\n"

let test_cache_structural_hits () =
  let cache = Kernel_cache.create ~capacity:8 () in
  let src = gemm_source ~n:8 in
  let e1 = Kernel_cache.find_or_compile cache src in
  let e2 = Kernel_cache.find_or_compile cache src in
  let e3 = Kernel_cache.find_or_compile cache (mangle_whitespace src) in
  Alcotest.(check string) "identical source, same key" e1.Kernel_cache.key e2.Kernel_cache.key;
  Alcotest.(check string) "reformatted source, same key" e1.Kernel_cache.key e3.Kernel_cache.key;
  let s = Kernel_cache.stats cache in
  Alcotest.(check int) "one compile" 1 s.Kernel_cache.misses;
  Alcotest.(check int) "two hits" 2 s.Kernel_cache.hits;
  Alcotest.(check int) "one resident entry" 1 s.Kernel_cache.entries;
  (* a semantic change (different problem size) must miss *)
  let e4 = Kernel_cache.find_or_compile cache (gemm_source ~n:12) in
  Alcotest.(check bool) "different size, different key" true
    (e4.Kernel_cache.key <> e1.Kernel_cache.key);
  Alcotest.(check int) "second compile" 2 (Kernel_cache.stats cache).Kernel_cache.misses

let test_cache_key_depends_on_options () =
  let ast = Parser.parse_func (gemm_source ~n:8) in
  let opts = Flow.o3_loop_tactics in
  let k1 = Kernel_cache.structural_key ~options:opts ast in
  let k2 =
    Kernel_cache.structural_key ~options:{ opts with Flow.enable_loop_tactics = false } ast
  in
  Alcotest.(check bool) "tactics config is part of the key" true (k1 <> k2);
  Alcotest.(check string) "key is stable" k1 (Kernel_cache.structural_key ~options:opts ast)

let test_cache_lru_eviction () =
  let cache = Kernel_cache.create ~capacity:1 () in
  ignore (Kernel_cache.find_or_compile cache (gemm_source ~n:8));
  ignore (Kernel_cache.find_or_compile cache (gemm_source ~n:12));
  let s = Kernel_cache.stats cache in
  Alcotest.(check int) "capacity enforced" 1 s.Kernel_cache.entries;
  Alcotest.(check int) "first entry evicted" 1 s.Kernel_cache.evictions;
  ignore (Kernel_cache.find_or_compile cache (gemm_source ~n:8));
  Alcotest.(check int) "evicted entry recompiles" 3
    (Kernel_cache.stats cache).Kernel_cache.misses

(* The device class is part of the cache key: the same source compiled
   for the analog crossbar, the digital tile and the host BLAS path
   must occupy three separate entries, because class-keyed tuned
   geometries can tile the quantisation differently. *)
let test_cache_class_in_key () =
  let cache = Kernel_cache.create ~capacity:8 () in
  let src = gemm_source ~n:8 in
  let p = Kernel_cache.find_or_compile cache ~cls:Backend.Pcm_crossbar src in
  let d = Kernel_cache.find_or_compile cache ~cls:Backend.Digital_tile src in
  let h = Kernel_cache.find_or_compile cache ~cls:Backend.Host_blas src in
  Alcotest.(check bool) "pcm and digital keys differ" true
    (p.Kernel_cache.key <> d.Kernel_cache.key);
  Alcotest.(check bool) "digital and host keys differ" true
    (d.Kernel_cache.key <> h.Kernel_cache.key);
  Alcotest.(check bool) "entry remembers its class" true
    (p.Kernel_cache.cls = Backend.Pcm_crossbar
    && d.Kernel_cache.cls = Backend.Digital_tile
    && h.Kernel_cache.cls = Backend.Host_blas);
  let s = Kernel_cache.stats cache in
  Alcotest.(check int) "one compile per class" 3 s.Kernel_cache.misses;
  Alcotest.(check int) "three resident entries" 3 s.Kernel_cache.entries;
  (* same (source, class) again is a hit, not a cross-class leak *)
  let p' = Kernel_cache.find_or_compile cache ~cls:Backend.Pcm_crossbar src in
  Alcotest.(check string) "same class hits its own entry" p.Kernel_cache.key p'.Kernel_cache.key;
  Alcotest.(check int) "no extra compile" 3 (Kernel_cache.stats cache).Kernel_cache.misses

(* Eviction order with mixed-class entries: LRU is over (source, class)
   entries uniformly — touching the pcm entry protects it while the
   digital and host entries of the very same source get cycled out. *)
let test_cache_mixed_class_eviction_order () =
  let cache = Kernel_cache.create ~capacity:2 () in
  let src = gemm_source ~n:8 in
  ignore (Kernel_cache.find_or_compile cache ~cls:Backend.Pcm_crossbar src);
  ignore (Kernel_cache.find_or_compile cache ~cls:Backend.Digital_tile src);
  (* touch pcm: digital becomes LRU *)
  ignore (Kernel_cache.find_or_compile cache ~cls:Backend.Pcm_crossbar src);
  ignore (Kernel_cache.find_or_compile cache ~cls:Backend.Host_blas src);
  let s = Kernel_cache.stats cache in
  Alcotest.(check int) "capacity holds two classes" 2 s.Kernel_cache.entries;
  Alcotest.(check int) "digital (LRU) evicted, not pcm" 1 s.Kernel_cache.evictions;
  (* touch pcm again so host becomes LRU, then recompile digital:
     the hit must have refreshed pcm's recency, so host is the victim *)
  ignore (Kernel_cache.find_or_compile cache ~cls:Backend.Pcm_crossbar src);
  ignore (Kernel_cache.find_or_compile cache ~cls:Backend.Digital_tile src);
  Alcotest.(check int) "evicted class recompiles" 4
    (Kernel_cache.stats cache).Kernel_cache.misses;
  Alcotest.(check int) "host cycled out in turn" 2
    (Kernel_cache.stats cache).Kernel_cache.evictions;
  (* pcm was most-recently-used through the whole dance: still resident *)
  ignore (Kernel_cache.find_or_compile cache ~cls:Backend.Pcm_crossbar src);
  let s = Kernel_cache.stats cache in
  Alcotest.(check int) "pcm survived as MRU" 4 s.Kernel_cache.misses;
  Alcotest.(check int) "three hits total" 3 s.Kernel_cache.hits

(* qcheck: whatever interleaving of classes and sizes hits the cache —
   including through evictions forced by a tiny capacity — an entry
   compiled for class A is never returned for a class-B lookup, and
   every returned key is exactly the structural key of (AST, options,
   class). *)
let qcheck_cache_never_crosses_class =
  let classes = [ Backend.Pcm_crossbar; Backend.Digital_tile; Backend.Host_blas ] in
  let lookup_gen =
    QCheck.Gen.(list_size (2 -- 12) (pair (oneofl classes) (oneofl [ 8; 12 ])))
  in
  let print lookups =
    String.concat ";"
      (List.map
         (fun (cls, n) -> Printf.sprintf "%s@%d" (Backend.class_name cls) n)
         lookups)
  in
  QCheck.Test.make ~name:"cache entry compiled for class A never serves class B" ~count:15
    (QCheck.make ~print lookup_gen)
    (fun lookups ->
      let options = Flow.o3_loop_tactics in
      let cache = Kernel_cache.create ~capacity:2 ~options () in
      List.for_all
        (fun (cls, n) ->
          let e = Kernel_cache.find_or_compile cache ~cls (gemm_source ~n) in
          e.Kernel_cache.cls = cls
          && e.Kernel_cache.key
             = Kernel_cache.structural_key ~cls ~options
                 (Parser.parse_func (gemm_source ~n)))
        lookups)

(* ---------- Device reuse ---------- *)

let run_on_device dev cache ~kernel ~n ~seed =
  let bench = match Kernels.find kernel with Ok b -> b | Error e -> Alcotest.fail e in
  let entry = Kernel_cache.find_or_compile cache (bench.Kernels.source ~n) in
  let args, readback = bench.Kernels.make_args ~n ~seed in
  let stats = Device.run dev entry.Kernel_cache.compiled ~args in
  (stats, readback ())

let check_mats_equal what expected actual =
  List.iteri
    (fun i (e, a) ->
      if Mat.max_abs_diff e a > 0.0 then
        Alcotest.failf "%s: output %d differs between devices" what i)
    (List.combine expected actual)

(* The property platform reuse rests on: running tenant B after tenant
   A on a warm device gives bit-for-bit the same outputs as running B
   alone on a fresh device. *)
let test_device_reuse_no_state_leak () =
  let cache = Kernel_cache.create () in
  let warm = Device.create ~id:0 () in
  let fresh = Device.create ~id:1 () in
  let s1, _ = run_on_device warm cache ~kernel:"gemm" ~n:12 ~seed:11 in
  let p1 = Device.write_pressure warm in
  let s2, warm_out = run_on_device warm cache ~kernel:"gesummv" ~n:16 ~seed:22 in
  let _, fresh_out = run_on_device fresh cache ~kernel:"gesummv" ~n:16 ~seed:22 in
  check_mats_equal "warm vs fresh" fresh_out warm_out;
  Alcotest.(check bool) "first run offloaded" true s1.Device.used_cim;
  Alcotest.(check bool) "service time positive" true (s2.Device.service_ps > 0);
  Alcotest.(check bool) "write pressure accumulates" true (Device.write_pressure warm > p1);
  Alcotest.(check int) "requests counted" 2 (Device.requests_served warm);
  let w = Device.wear warm in
  Alcotest.(check bool) "cell wear recorded" true (w.Device.total_cell_writes > 0);
  Alcotest.(check bool) "budget consumed" true (w.Device.budget_consumed > 0.0)

(* ---------- Scheduler ---------- *)

let smoke_trace ?(seed = 7) () =
  match Trace.synthetic ~seed "synthetic-smoke" with
  | Ok t -> t
  | Error e -> Alcotest.fail e

(* A hand-built trace: [count] identical requests arriving [gap_ps]
   apart, optionally with a per-request deadline. *)
let burst_trace ?deadline_ps ?(kernel = "gemm") ?(n = 8) ~count ~gap_ps () =
  {
    Trace.name = "burst";
    seed = 0;
    requests =
      List.init count (fun id ->
          {
            Trace.id;
            kernel;
            n;
            seed = 1000 + id;
            arrival_ps = (id + 1) * gap_ps;
            deadline_ps;
            tenant = 0;
            slo = Trace.Interactive;
          });
  }

let test_replay_smoke_and_golden () =
  let trace = smoke_trace () in
  let config = { Scheduler.default_config with Scheduler.devices = 2 } in
  let report = Scheduler.replay ~config trace in
  let golden = Scheduler.replay ~config:(Scheduler.golden_config config) trace in
  let total = List.length trace.Trace.requests in
  Alcotest.(check int) "all requests completed on CIM" total (Scheduler.completed report);
  Alcotest.(check int) "no rejections at this load" 0 (Scheduler.rejections report);
  Alcotest.(check int) "no failures" 0 (Scheduler.failures report);
  Alcotest.(check int) "golden serves everything" total (Scheduler.completed golden);
  Alcotest.(check int) "no cross-device divergence" 0 (Scheduler.divergence report golden);
  Alcotest.(check int) "one compile per distinct kernel"
    (List.length (Trace.distinct_kernels trace))
    report.Scheduler.cache.Kernel_cache.misses;
  Alcotest.(check bool) "skewed mix keeps the cache hot" true
    (Scheduler.cache_hit_rate report > 0.8);
  Alcotest.(check int) "two devices reported" 2 (List.length report.Scheduler.devices);
  Alcotest.(check bool) "makespan covers the trace" true
    (report.Scheduler.makespan_ps
    >= List.fold_left (fun acc r -> max acc r.Trace.arrival_ps) 0 trace.Trace.requests)

let test_backpressure_rejects_overload () =
  (* arrivals far faster than one device drains, bounded queue: the
     overflow must surface as Rejected_overloaded, never disappear *)
  let trace = burst_trace ~count:12 ~gap_ps:1000 () in
  let config =
    {
      Scheduler.default_config with
      Scheduler.devices = 1;
      queue_capacity = 2;
      batching = false;
      max_batch = 1;
      parallel = false;
    }
  in
  let report = Scheduler.replay ~config trace in
  Alcotest.(check bool) "queue bound produces rejections" true
    (Scheduler.rejections report > 0);
  Alcotest.(check bool) "some requests still served" true (Scheduler.completed report > 0);
  Alcotest.(check int) "every request accounted for" 12
    (Scheduler.completed report + Scheduler.fallbacks report + Scheduler.rejections report
    + Scheduler.failures report);
  List.iter
    (fun r ->
      if r.Telemetry.outcome = Telemetry.Rejected_overloaded then (
        Alcotest.(check bool) "rejection has no device" true (r.Telemetry.device = None);
        Alcotest.(check bool) "rejection has no checksum" true (r.Telemetry.checksum = None)))
    (Telemetry.records report.Scheduler.telemetry)

let test_deadline_degrades_to_cpu () =
  let deadline_ps = 2 * Tdo_sim.Time_base.ps_per_us in
  let trace = burst_trace ~deadline_ps ~count:6 ~gap_ps:1000 () in
  let config =
    {
      Scheduler.default_config with
      Scheduler.devices = 1;
      batching = false;
      max_batch = 1;
      parallel = false;
    }
  in
  let report = Scheduler.replay ~config trace in
  Alcotest.(check bool) "expired requests degrade" true (Scheduler.fallbacks report > 0);
  Alcotest.(check int) "nothing is dropped" 6
    (Scheduler.completed report + Scheduler.fallbacks report + Scheduler.rejections report
    + Scheduler.failures report);
  List.iter
    (fun r ->
      if r.Telemetry.outcome = Telemetry.Cpu_fallback then (
        Alcotest.(check bool) "fallback ran on the host" true (r.Telemetry.device = None);
        Alcotest.(check bool) "fallback produced a result" true (r.Telemetry.checksum <> None);
        Alcotest.(check bool) "fallback latency charged" true (r.Telemetry.service_ps > 0)))
    (Telemetry.records report.Scheduler.telemetry);
  (* golden mode ignores deadlines entirely *)
  let golden = Scheduler.replay ~config:(Scheduler.golden_config config) trace in
  Alcotest.(check int) "golden never degrades" 0 (Scheduler.fallbacks golden)

let test_chrome_trace_shape () =
  let trace = smoke_trace () in
  let report = Scheduler.replay ~config:{ Scheduler.default_config with Scheduler.devices = 2 } trace in
  let json = String.trim (Telemetry.chrome_trace report.Scheduler.telemetry) in
  Alcotest.(check bool) "JSON array" true
    (String.length json > 2 && json.[0] = '[' && json.[String.length json - 1] = ']');
  let contains needle =
    let n = String.length needle and h = String.length json in
    let rec go i = i + n <= h && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has duration events" true (contains "\"ph\":\"X\"");
  Alcotest.(check bool) "has queue-depth counter track" true (contains "\"ph\":\"C\"")

(* ---------- Heterogeneous fleet ---------- *)

let fleet_of spec =
  match Backend.parse_fleet spec with Ok f -> f | Error e -> Alcotest.fail e

let class_served summary profile =
  match List.assoc_opt profile summary with
  | Some c -> c.Telemetry.served
  | None -> 0

(* A mixed fleet over a trace heavy enough that cost-based placement
   exercises every class: the analog crossbar, the digital tile, the
   host BLAS path and a drafted dual-mode tile each serve work, and
   each compute class independently matches its own sequential golden
   oracle. *)
let test_mixed_fleet_places_on_every_class () =
  let trace =
    match Trace.synthetic ~seed:7 "synthetic-small" with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  let config =
    {
      Scheduler.default_config with
      Scheduler.fleet = Some (fleet_of "pcm:1,digital:1,host:1,dual:1");
    }
  in
  let report = Scheduler.replay ~config trace in
  let total = List.length trace.Trace.requests in
  Alcotest.(check int) "every request completed" total (Scheduler.completed report);
  Alcotest.(check int) "no rejections" 0 (Scheduler.rejections report);
  Alcotest.(check int) "no failures" 0 (Scheduler.failures report);
  let cs = Telemetry.class_summary report.Scheduler.telemetry in
  List.iter
    (fun profile ->
      Alcotest.(check bool) (profile ^ " serves at least one request") true
        (class_served cs profile > 0))
    [ "pcm"; "digital"; "host"; "dual" ];
  Alcotest.(check int) "per-class counts partition the trace" total
    (List.fold_left (fun acc (_, c) -> acc + c.Telemetry.served) 0 cs);
  let s = Telemetry.summary report.Scheduler.telemetry in
  Alcotest.(check bool) "the dual tile was drafted" true (s.Telemetry.conversions_to_compute > 0);
  (* device reports carry profile, class, energy and conversions *)
  Alcotest.(check int) "four devices reported" 4 (List.length report.Scheduler.devices);
  let dev profile =
    match
      List.find_opt (fun d -> d.Scheduler.dev_profile = profile) report.Scheduler.devices
    with
    | Some d -> d
    | None -> Alcotest.failf "no %s device in the report" profile
  in
  Alcotest.(check string) "a dual tile computes as a pcm crossbar" "pcm"
    (dev "dual").Scheduler.dev_class;
  Alcotest.(check bool) "dual conversions mirrored in its device report" true
    (fst (dev "dual").Scheduler.dev_conversions = s.Telemetry.conversions_to_compute);
  Alcotest.(check bool) "host consumes energy but no write budget" true
    ((dev "host").Scheduler.dev_energy_j > 0.0
    && ((dev "host").Scheduler.dev_wear).Device.budget_consumed = 0.0);
  Alcotest.(check bool) "digital tile does not wear" true
    (((dev "digital").Scheduler.dev_wear).Device.budget_consumed = 0.0);
  Alcotest.(check bool) "analog crossbar does wear" true
    (((dev "pcm").Scheduler.dev_wear).Device.budget_consumed > 0.0);
  (* one golden per compute class; same-class outputs are bit-identical *)
  List.iter
    (fun profile ->
      let golden =
        Scheduler.replay ~config:(Scheduler.golden_config ~profile config) trace
      in
      Alcotest.(check int)
        ("no divergence against the " ^ profile.Backend.name ^ " golden")
        0
        (Scheduler.divergence report golden))
    [ Backend.pcm; Backend.digital; Backend.host ]

(* Dual-mode lifecycle: a burst deep enough to exceed the draft
   threshold converts the tile to compute (latency charged, event
   recorded); once the queue drains and the hysteresis window passes,
   the straggler's arrival finds it reverted to plain memory, so the
   always-compute crossbar serves it. *)
let test_dual_mode_draft_and_revert () =
  let base = burst_trace ~count:10 ~gap_ps:1000 () in
  let straggler =
    {
      Trace.id = 10;
      kernel = "gemm";
      n = 8;
      seed = 4242;
      arrival_ps = 5_000 * Tdo_sim.Time_base.ps_per_us;
      deadline_ps = None;
      tenant = 0;
      slo = Trace.Interactive;
    }
  in
  let trace = { base with Trace.requests = base.Trace.requests @ [ straggler ] } in
  let config =
    {
      Scheduler.default_config with
      Scheduler.fleet = Some (fleet_of "pcm:1,dual:1");
      batching = false;
      max_batch = 1;
      parallel = false;
    }
  in
  let report = Scheduler.replay ~config trace in
  Alcotest.(check int) "burst and straggler all served" 11 (Scheduler.completed report);
  let s = Telemetry.summary report.Scheduler.telemetry in
  Alcotest.(check bool) "burst drafts the dual tile" true
    (s.Telemetry.conversions_to_compute >= 1);
  Alcotest.(check bool) "idle hysteresis reverts it" true
    (s.Telemetry.conversions_to_memory >= 1);
  (match Telemetry.conversions report.Scheduler.telemetry with
  | [] -> Alcotest.fail "no conversion events recorded"
  | first :: _ ->
      Alcotest.(check bool) "first event is the draft" true first.Telemetry.to_compute;
      Alcotest.(check string) "event names the dual profile" "dual"
        first.Telemetry.conv_profile);
  let cs = Telemetry.class_summary report.Scheduler.telemetry in
  Alcotest.(check bool) "the drafted tile served burst work" true
    (class_served cs "dual" > 0);
  (* the straggler arrives after the revert: only the crossbar computes *)
  (match
     List.find_opt
       (fun r -> r.Telemetry.request.Trace.id = 10)
       (Telemetry.records report.Scheduler.telemetry)
   with
  | None -> Alcotest.fail "straggler record missing"
  | Some r ->
      Alcotest.(check (option string)) "straggler served by the pcm crossbar"
        (Some "pcm") r.Telemetry.profile);
  (* conversion traffic shows up in the chrome trace *)
  let json = Telemetry.chrome_trace report.Scheduler.telemetry in
  let contains needle =
    let n = String.length needle and h = String.length json in
    let rec go i = i + n <= h && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "draft event in chrome trace" true
    (contains "convert to compute");
  Alcotest.(check bool) "revert event in chrome trace" true
    (contains "convert to memory");
  Alcotest.(check bool) "per-class summary event in chrome trace" true
    (contains "class-summary dual");
  (* dual-mode conversions never break the golden property *)
  let golden = Scheduler.replay ~config:(Scheduler.golden_config config) trace in
  Alcotest.(check int) "no divergence with conversions in play" 0
    (Scheduler.divergence report golden)

(* ---------- qcheck: batched multi-device == sequential single-device ---------- *)

let trace_gen =
  QCheck.Gen.(
    let mix = [ ("gemm", 8); ("gemm", 12); ("gesummv", 12); ("mvt", 12) ] in
    let* count = 3 -- 10 in
    let* picks = list_size (return count) (oneofl mix) in
    let* gaps = list_size (return count) (5_000 -- 2_000_000) in
    let* seed = 0 -- 10_000 in
    let clock = ref 0 in
    let requests =
      List.mapi
        (fun id ((kernel, n), gap) ->
          clock := !clock + gap;
          {
            Trace.id;
            kernel;
            n;
            seed = seed + (id * 7919);
            arrival_ps = !clock;
            deadline_ps = None;
            tenant = 0;
            slo = Trace.Interactive;
          })
        (List.combine picks gaps)
    in
    return { Trace.name = "qcheck"; seed; requests })

let qcheck_batched_matches_sequential =
  QCheck.Test.make ~name:"batched multi-device replay == sequential golden" ~count:6
    (QCheck.make ~print:(fun t -> Printf.sprintf "%d requests, seed %d" (List.length t.Trace.requests) t.Trace.seed)
       trace_gen)
    (fun trace ->
      let config =
        {
          Scheduler.default_config with
          Scheduler.devices = 3;
          max_batch = 4;
          queue_capacity = 0;
        }
      in
      let report = Scheduler.replay ~config trace in
      let golden = Scheduler.replay ~config:(Scheduler.golden_config config) trace in
      let total = List.length trace.Trace.requests in
      Scheduler.completed report = total
      && Scheduler.completed golden = total
      && Scheduler.divergence report golden = 0)

(* Determinism extends to heterogeneous fleets: every placement and
   conversion decision is taken on the scheduler thread before a wave
   executes, so running the waves on worker domains or inline yields
   record-for-record identical telemetry. *)
let qcheck_fleet_parallel_matches_sequential =
  QCheck.Test.make ~name:"mixed-fleet parallel waves == inline waves" ~count:4
    (QCheck.make
       ~print:(fun t ->
         Printf.sprintf "%d requests, seed %d" (List.length t.Trace.requests) t.Trace.seed)
       trace_gen)
    (fun trace ->
      let config =
        {
          Scheduler.default_config with
          Scheduler.fleet = Some (fleet_of "pcm:1,digital:1,host:1,dual:1");
          max_batch = 4;
          queue_capacity = 0;
        }
      in
      let par = Scheduler.replay ~config trace in
      let seq = Scheduler.replay ~config:{ config with Scheduler.parallel = false } trace in
      Telemetry.records par.Scheduler.telemetry = Telemetry.records seq.Scheduler.telemetry
      && Telemetry.conversions par.Scheduler.telemetry
         = Telemetry.conversions seq.Scheduler.telemetry)

(* ---------- Admission: token buckets + SLO-class load shedding ---------- *)

let mk_request ?(tenant = 1) ?(slo = Trace.Interactive) ~id ~arrival_ps () =
  {
    Trace.id;
    kernel = "gemm";
    n = 8;
    seed = id;
    arrival_ps;
    deadline_ps = None;
    tenant;
    slo;
  }

let test_admission_token_bucket () =
  (* 2 tokens/s with burst 3: the first 3 back-to-back requests pass,
     the 4th is rate-shed, and one refill interval later a token is
     back *)
  let policy =
    {
      Admission.per_tenant = [ (1, { Admission.rate_per_s = 2.0; burst = 3.0 }) ];
      default_bucket = None;
      batch_above = 1.0;
      best_effort_above = 1.0;
    }
  in
  let t = Admission.create policy in
  let admit ~now_ps id =
    Admission.admit t ~now_ps ~queue_len:0 ~capacity:16 (mk_request ~id ~arrival_ps:now_ps ())
  in
  let verdict = Alcotest.testable (Fmt.of_to_string (function
    | Admission.Admit -> "Admit"
    | Admission.Shed_rate -> "Shed_rate"
    | Admission.Shed_load -> "Shed_load")) ( = )
  in
  Alcotest.check verdict "1st admitted" Admission.Admit (admit ~now_ps:0 0);
  Alcotest.check verdict "2nd admitted" Admission.Admit (admit ~now_ps:0 1);
  Alcotest.check verdict "3rd admitted" Admission.Admit (admit ~now_ps:0 2);
  Alcotest.check verdict "burst exhausted" Admission.Shed_rate (admit ~now_ps:0 3);
  (* 0.5 s later the 2/s bucket has regained one token *)
  let half_s = 500_000 * Tdo_sim.Time_base.ps_per_us in
  Alcotest.check verdict "refill admits again" Admission.Admit (admit ~now_ps:half_s 4);
  Alcotest.check verdict "and only one" Admission.Shed_rate (admit ~now_ps:half_s 5)

let test_admission_sheds_best_effort_first () =
  (* same queue fill, three classes: below the best-effort threshold
     everyone passes; past it only best-effort is shed; past the batch
     threshold batch sheds too, and interactive still passes *)
  let t = Admission.create Admission.default_policy in
  let admit ~queue_len slo id =
    Admission.admit t ~now_ps:0 ~queue_len ~capacity:100 (mk_request ~slo ~id ~arrival_ps:0 ())
  in
  let is_admit = function Admission.Admit -> true | _ -> false in
  Alcotest.(check bool) "calm: best-effort passes" true (is_admit (admit ~queue_len:10 Trace.Best_effort 0));
  Alcotest.(check bool) "busy: best-effort shed" false (is_admit (admit ~queue_len:60 Trace.Best_effort 1));
  Alcotest.(check bool) "busy: batch passes" true (is_admit (admit ~queue_len:60 Trace.Batch 2));
  Alcotest.(check bool) "overloaded: batch shed" false (is_admit (admit ~queue_len:90 Trace.Batch 3));
  Alcotest.(check bool) "overloaded: interactive passes" true
    (is_admit (admit ~queue_len:90 Trace.Interactive 4))

(* An overloaded replay with the admission policy armed: shedding is
   ordered by SLO class (best-effort suffers most, interactive least)
   and shed requests never reach a device. *)
let test_replay_sheds_by_slo_class () =
  let count = 120 in
  let requests =
    List.init count (fun id ->
        let slo =
          match id mod 3 with 0 -> Trace.Interactive | 1 -> Trace.Batch | _ -> Trace.Best_effort
        in
        mk_request ~tenant:(1 + (id mod 3)) ~slo ~id ~arrival_ps:(id * 1000) ())
  in
  let trace = { Trace.name = "slo-overload"; seed = 1; requests } in
  let config =
    {
      Scheduler.default_config with
      Scheduler.devices = 1;
      queue_capacity = 10;
      batching = false;
      max_batch = 1;
      parallel = false;
      admission = Some Admission.default_policy;
    }
  in
  let report = Scheduler.replay ~config trace in
  let counts slo =
    match List.assoc_opt slo (Telemetry.slo_summary report.Scheduler.telemetry) with
    | Some c -> c
    | None -> Alcotest.fail "missing slo bucket"
  in
  let be = counts Trace.Best_effort and b = counts Trace.Batch and i = counts Trace.Interactive in
  Alcotest.(check bool) "best-effort shed under overload" true (be.Telemetry.slo_shed > 0);
  Alcotest.(check bool) "best-effort shed rate >= batch shed rate" true
    (be.Telemetry.slo_shed * b.Telemetry.slo_requests
    >= b.Telemetry.slo_shed * be.Telemetry.slo_requests);
  Alcotest.(check bool) "batch shed rate >= interactive shed rate" true
    (b.Telemetry.slo_shed * i.Telemetry.slo_requests
    >= i.Telemetry.slo_shed * b.Telemetry.slo_requests);
  List.iter
    (fun (r : Telemetry.record) ->
      match r.Telemetry.outcome with
      | Telemetry.Shed _ ->
          Alcotest.(check bool) "shed has no device" true (r.Telemetry.device = None);
          Alcotest.(check bool) "shed has no checksum" true (r.Telemetry.checksum = None)
      | _ -> ())
    (Telemetry.records report.Scheduler.telemetry);
  (* every request is accounted for across outcomes *)
  let s = Telemetry.summary report.Scheduler.telemetry in
  Alcotest.(check int) "conservation" count
    (s.Telemetry.completed + s.Telemetry.cpu_fallbacks + s.Telemetry.recovered_host
    + s.Telemetry.rejected + s.Telemetry.shed_rate_limited + s.Telemetry.shed_load
    + s.Telemetry.failed)

let test_telemetry_windows () =
  let t = Telemetry.create () in
  let us = Tdo_sim.Time_base.ps_per_us in
  let mk ~id ~arrival_us ~finish_us outcome =
    {
      Telemetry.request = mk_request ~id ~arrival_ps:(arrival_us * us) ();
      outcome;
      device = (match outcome with Telemetry.Completed -> Some 0 | _ -> None);
      profile = (match outcome with Telemetry.Completed -> Some "pcm" | _ -> None);
      batch = None;
      cache_hit = false;
      queue_depth = 1;
      start_ps = arrival_us * us;
      finish_ps = finish_us * us;
      service_ps = (finish_us - arrival_us) * us;
      retries = 0;
      tuned = false;
      write_bytes = 0;
      checksum = None;
    }
  in
  (* two 10ms windows: 2 arrivals + 2 served in the first; the third
     request arrives in w0 but finishes in w1, the fourth is shed *)
  Telemetry.record t (mk ~id:0 ~arrival_us:1_000 ~finish_us:2_000 Telemetry.Completed);
  Telemetry.record t (mk ~id:1 ~arrival_us:4_000 ~finish_us:6_000 Telemetry.Completed);
  Telemetry.record t (mk ~id:2 ~arrival_us:9_000 ~finish_us:12_000 Telemetry.Completed);
  Telemetry.record t
    (mk ~id:3 ~arrival_us:11_000 ~finish_us:11_000 (Telemetry.Shed Telemetry.Load_shed));
  let ws = Telemetry.windows ~window_us:10_000.0 t in
  Alcotest.(check int) "two windows" 2 (List.length ws);
  let w0 = List.nth ws 0 and w1 = List.nth ws 1 in
  Alcotest.(check int) "w0 arrivals" 3 w0.Telemetry.w_arrivals;
  Alcotest.(check int) "w0 served" 2 w0.Telemetry.w_served;
  Alcotest.(check int) "w1 arrivals" 1 w1.Telemetry.w_arrivals;
  Alcotest.(check int) "w1 served (straggler finish)" 1 w1.Telemetry.w_served;
  Alcotest.(check int) "w1 shed" 1 w1.Telemetry.w_shed;
  Alcotest.(check bool) "w0 p50 covers the 1-2ms latencies" true
    (w0.Telemetry.w_p50_us >= 1_000.0 && w0.Telemetry.w_p50_us <= 2_000.0);
  (* live view emits exactly the completed (non-final) windows *)
  let emitted = ref [] in
  let live = Telemetry.live_view ~window_us:10_000.0 ~emit:(fun l -> emitted := l :: !emitted) () in
  let t2 = Telemetry.create ~observer:live () in
  List.iter (Telemetry.record t2) (Telemetry.records t);
  Alcotest.(check int) "live view flushed the first window" 1 (List.length !emitted)

(* ---------- Frontend: wire protocol over a pipe ---------- *)

let test_frontend_pipe_roundtrip () =
  let in_r, in_w = Unix.pipe ~cloexec:false () in
  let out_r, out_w = Unix.pipe ~cloexec:false () in
  let input_lines =
    String.concat "\n"
      [
        "req id=1 tenant=1 class=interactive kernel=gemm n=8 seed=3 arrival_ps=0";
        {|{"id": 2, "kernel": "mvt", "n": 8, "class": "batch", "tenant": 2}|};
        "bogus line";
        "stats";
        "quit";
      ]
    ^ "\n"
  in
  let wrote = Unix.write_substring in_w input_lines 0 (String.length input_lines) in
  Alcotest.(check int) "request script written" (String.length input_lines) wrote;
  Unix.close in_w;
  let config =
    {
      Frontend.default_config with
      Frontend.fleet = [ Backend.pcm ];
      window_us = None;
      device_seed = 11;
    }
  in
  let telemetry, stop =
    Frontend.serve ~emit:ignore ~config ~input:in_r ~output:out_w ()
  in
  Unix.close out_w;
  Unix.close in_r;
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    match Unix.read out_r chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        drain ()
  in
  drain ();
  Unix.close out_r;
  let output = Buffer.contents buf in
  let has needle =
    let n = String.length needle and h = String.length output in
    let rec go i = i + n <= h && (String.sub output i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "stopped on quit" true (stop = Frontend.Quit);
  Alcotest.(check bool) "line request answered" true (has "ok id=1 ");
  Alcotest.(check bool) "json request answered" true (has "ok id=2 ");
  Alcotest.(check bool) "bogus line errored" true (has "err id=0 ");
  Alcotest.(check bool) "stats line answered" true (has "stats requests=");
  let s = Telemetry.summary telemetry in
  Alcotest.(check int) "both requests recorded" 2 s.Telemetry.requests;
  Alcotest.(check int) "both completed" 2 s.Telemetry.completed;
  List.iter
    (fun (r : Telemetry.record) ->
      Alcotest.(check bool) "wall latency is positive" true (Telemetry.latency_ps r > 0))
    (Telemetry.records telemetry)

let suites =
  [
    ( "serve.pool",
      [
        Alcotest.test_case "TDO_DOMAINS override and clamping" `Quick test_pool_domains_override;
        Alcotest.test_case "parallel_map under TDO_DOMAINS" `Quick test_pool_domains_map;
      ] );
    ( "serve.wear_stats",
      [
        Alcotest.test_case "wear-leveling stats snapshot" `Quick test_wear_leveling_stats;
        Alcotest.test_case "endurance tracker accounting" `Quick test_endurance_tracker;
      ] );
    ( "serve.kernel_cache",
      [
        Alcotest.test_case "structural key ignores formatting" `Quick test_cache_structural_hits;
        Alcotest.test_case "key covers compile options" `Quick test_cache_key_depends_on_options;
        Alcotest.test_case "LRU eviction at capacity" `Quick test_cache_lru_eviction;
        Alcotest.test_case "device class is part of the key" `Quick test_cache_class_in_key;
        Alcotest.test_case "LRU order with mixed-class entries" `Quick
          test_cache_mixed_class_eviction_order;
        QCheck_alcotest.to_alcotest ~long:false qcheck_cache_never_crosses_class;
      ] );
    ( "serve.device",
      [ Alcotest.test_case "platform reuse leaks no state" `Quick test_device_reuse_no_state_leak ] );
    ( "serve.scheduler",
      [
        Alcotest.test_case "smoke replay matches golden" `Quick test_replay_smoke_and_golden;
        Alcotest.test_case "bounded queue backpressure" `Quick test_backpressure_rejects_overload;
        Alcotest.test_case "deadline miss degrades to CPU" `Quick test_deadline_degrades_to_cpu;
        Alcotest.test_case "chrome trace shape" `Quick test_chrome_trace_shape;
      ] );
    ( "serve.fleet",
      [
        Alcotest.test_case "cost-based placement reaches every class" `Quick
          test_mixed_fleet_places_on_every_class;
        Alcotest.test_case "dual-mode draft and revert lifecycle" `Quick
          test_dual_mode_draft_and_revert;
      ] );
    ( "serve.determinism",
      [
        QCheck_alcotest.to_alcotest ~long:false qcheck_batched_matches_sequential;
        QCheck_alcotest.to_alcotest ~long:false qcheck_fleet_parallel_matches_sequential;
      ] );
    ( "serve.admission",
      [
        Alcotest.test_case "token bucket: burst, shed, refill" `Quick test_admission_token_bucket;
        Alcotest.test_case "queue fill sheds best-effort first" `Quick
          test_admission_sheds_best_effort_first;
        Alcotest.test_case "overloaded replay sheds by SLO class" `Quick
          test_replay_sheds_by_slo_class;
      ] );
    ( "serve.telemetry",
      [ Alcotest.test_case "windowed roll-ups and live view" `Quick test_telemetry_windows ] );
    ( "serve.frontend",
      [ Alcotest.test_case "wire protocol over a pipe" `Quick test_frontend_pipe_roundtrip ] );
  ]
