(* Benchmark harness: one Bechamel test per paper artefact, plus the
   paper-style tables regenerated after the micro-benchmarks.

     dune exec bench/main.exe              (benchmarks + all tables)
     dune exec bench/main.exe -- tables    (tables only)
     dune exec bench/main.exe -- bench     (benchmarks only)
     dune exec bench/main.exe -- json [P]  (micro-benchmarks + timed Fig. 6
                                            section as JSON, default
                                            BENCH_sim.json)
     dune exec bench/main.exe -- smoke     (fast JSON smoke for `dune runtest`) *)

open Bechamel
open Toolkit
module Prng = Tdo_util.Prng
module Mat = Tdo_linalg.Mat
module Crossbar = Tdo_pcm.Crossbar
module Cell = Tdo_pcm.Cell
module Platform = Tdo_runtime.Platform
module Api = Tdo_runtime.Api
module Flow = Tdo_cim.Flow
module Experiments = Tdo_cim.Experiments
module Interp = Tdo_lang.Interp

(* ---------- Table I: the crossbar GEMV primitive ---------- *)

let test_table1 =
  let xbar = Crossbar.create () in
  let g = Prng.create ~seed:1 in
  let codes =
    Array.init 256 (fun _ -> Array.init 256 (fun _ -> Prng.int g ~bound:256 - 128))
  in
  Crossbar.program_codes xbar codes;
  let input = Array.init 256 (fun _ -> Prng.int g ~bound:256 - 128) in
  Test.make ~name:"table1/crossbar-gemv-256x256"
    (Staged.stage (fun () -> ignore (Crossbar.gemv_codes xbar input)))

(* ---------- Fig. 1: PCM cell programming ---------- *)

let test_fig1 =
  let config = { Cell.default_config with Cell.endurance = max_int } in
  let cell = Cell.create ~config () in
  let level = ref 0 in
  Test.make ~name:"fig1/pcm-cell-program"
    (Staged.stage (fun () ->
         level := (!level + 1) land 15;
         Cell.program cell ~level:!level))

(* ---------- Fig. 2(d): one register-level offload round trip ---------- *)

let test_fig2d =
  let platform = Platform.create () in
  let api = Api.init platform in
  let n = 8 in
  let g = Prng.create ~seed:2 in
  let alloc () = Result.get_ok (Api.malloc api ~bytes:(4 * n * n)) in
  let buf_a = alloc () and buf_b = alloc () and buf_c = alloc () in
  let va = Api.view ~ld:n buf_a and vb = Api.view ~ld:n buf_b and vc = Api.view ~ld:n buf_c in
  Api.host_to_dev api ~src:(Mat.random g ~rows:n ~cols:n ~lo:(-1.0) ~hi:1.0) ~dst:va;
  Api.host_to_dev api ~src:(Mat.random g ~rows:n ~cols:n ~lo:(-1.0) ~hi:1.0) ~dst:vb;
  Test.make ~name:"fig2d/offload-roundtrip-8x8"
    (Staged.stage (fun () ->
         match Api.sgemm api ~m:n ~n ~k:n ~alpha:1.0 ~a:va ~b:vb ~beta:0.0 ~c:vc () with
         | Ok () -> ()
         | Error e -> failwith e))

(* ---------- Fig. 5: fusion compile + lifetime model ---------- *)

let test_fig5 =
  let n = 16 in
  let source =
    Printf.sprintf
      {|
void listing2(float C[%d][%d], float D[%d][%d], float A[%d][%d], float B[%d][%d], float E[%d][%d]) {
  for (int i = 0; i < %d; i++)
    for (int j = 0; j < %d; j++)
      for (int k = 0; k < %d; k++)
        C[i][j] += A[i][k] * B[k][j];
  for (int i = 0; i < %d; i++)
    for (int j = 0; j < %d; j++)
      for (int k = 0; k < %d; k++)
        D[i][j] += A[i][k] * E[k][j];
}
|}
      n n n n n n n n n n n n n n n n
  in
  Test.make ~name:"fig5/fusion-compile+lifetime"
    (Staged.stage (fun () ->
         let _f, _report = Flow.compile ~options:Flow.o3_loop_tactics source in
         ignore
           (Tdo_pcm.Endurance.lifetime_years ~cell_endurance:2.5e7
              ~crossbar_bytes:(512 * 1024) ~write_bytes_per_second:4.2e6)))

(* ---------- Fig. 6: full-system kernel runs, host vs CIM ---------- *)

let fig6_gemm_source n =
  Printf.sprintf
    {|
void gemm(float alpha, float beta, float C[%d][%d], float A[%d][%d], float B[%d][%d]) {
  for (int i = 0; i < %d; i++)
    for (int j = 0; j < %d; j++) {
      C[i][j] *= beta;
      for (int k = 0; k < %d; k++)
        C[i][j] += alpha * A[i][k] * B[k][j];
    }
}
|}
    n n n n n n n n n

let fig6_args n seed =
  let g = Prng.create ~seed in
  let random () =
    let arr = Interp.make_array ~dims:[ n; n ] in
    Array.iteri
      (fun i _ -> arr.Interp.data.(i) <- Prng.float_range g ~lo:(-1.0) ~hi:1.0)
      arr.Interp.data;
    arr
  in
  [
    ("alpha", Interp.Vfloat 1.0);
    ("beta", Interp.Vfloat 1.0);
    ("C", Interp.Varray (random ()));
    ("A", Interp.Varray (random ()));
    ("B", Interp.Varray (random ()));
  ]

let test_fig6_host =
  let n = 16 in
  let source = fig6_gemm_source n in
  Test.make ~name:"fig6/gemm16-host"
    (Staged.stage (fun () ->
         ignore (Flow.run_source ~options:Flow.o3 source ~args:(fig6_args n 3))))

let test_fig6_cim =
  let n = 16 in
  let source = fig6_gemm_source n in
  Test.make ~name:"fig6/gemm16-host+cim"
    (Staged.stage (fun () ->
         ignore (Flow.run_source ~options:Flow.o3_loop_tactics source ~args:(fig6_args n 3))))

let tests =
  Test.make_grouped ~name:"tdo-cim"
    [ test_table1; test_fig1; test_fig2d; test_fig5; test_fig6_host; test_fig6_cim ]

let bench_rows () =
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      let ns =
        match Analyze.OLS.estimates ols with Some (t :: _) -> t | Some [] | None -> nan
      in
      (name, ns) :: acc)
    results []
  |> List.sort compare

let run_benchmarks () =
  print_endline "=== micro-benchmarks (Bechamel, one per paper artefact) ===";
  let rows = bench_rows () in
  Tdo_util.Pretty.print
    ~columns:
      [
        Tdo_util.Pretty.column "benchmark";
        Tdo_util.Pretty.column ~align:Tdo_util.Pretty.Right "wall-clock / run";
      ]
    ~rows:
      (List.map
         (fun (name, ns) -> [ name; Tdo_util.Pretty.si_float (ns *. 1e-9) ^ "s" ])
         rows);
  print_newline ()

let print_tables () =
  print_endline "=== paper tables and figures (simulated platform) ===";
  print_newline ();
  Experiments.print_table1 ();
  print_newline ();
  Experiments.print_fig1 ();
  print_newline ();
  Experiments.print_fig2d ();
  print_newline ();
  Experiments.print_fig5 ();
  print_newline ();
  Experiments.print_fig6 ~dataset:Tdo_polybench.Dataset.Medium ()

(* ---------- JSON report (BENCH_sim.json) ---------- *)

module Pool = Tdo_util.Pool
module Report = Tdo_util.Bench_report

(* one timed section: the Pool fan-out, then the same work forced
   sequential for the speedup figure *)
let timed_section name f =
  Pool.set_sequential (Some false);
  let _, m = Report.timed f in
  Pool.set_sequential (Some true);
  let _, (ms : Report.measure) = Report.timed f in
  Pool.set_sequential None;
  Report.of_measure ~name ~seq_wall_s:ms.Report.elapsed_s m

let fig6_section dataset =
  timed_section
    (Printf.sprintf "fig6-%s" (Tdo_polybench.Dataset.to_string dataset))
    (fun () -> ignore (Experiments.fig6 ~dataset ()))

let write_json ?micro ~dataset path =
  Report.write ~path ?micro ~sections:[ fig6_section dataset ] ();
  Printf.printf "wrote %s\n" path

let smoke () =
  (* exercised by `dune runtest`: the smallest dataset, no Bechamel
     warm-up, and a sanity check that the report landed on disk *)
  let path = "BENCH_smoke.json" in
  write_json ~dataset:Tdo_polybench.Dataset.Mini path;
  let ic = open_in path in
  let len = in_channel_length ic in
  let head = really_input_string ic (min len 1) in
  close_in ic;
  if len = 0 || head <> "{" then failwith "bench smoke: malformed JSON report";
  Printf.printf "bench smoke ok (%d bytes)\n" len

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match mode with
  | "bench" -> run_benchmarks ()
  | "tables" -> print_tables ()
  | "json" ->
      let path = if Array.length Sys.argv > 2 then Sys.argv.(2) else "BENCH_sim.json" in
      write_json ~micro:(bench_rows ()) ~dataset:Tdo_polybench.Dataset.Small path
  | "smoke" -> smoke ()
  | "all" ->
      run_benchmarks ();
      print_tables ()
  | other ->
      Printf.eprintf "unknown mode %S (bench|tables|all|json|smoke)\n" other;
      exit 1
