(** A single phase-change-memory (PCM) device (paper Section II-A,
    Fig. 1).

    The cell stores one of [levels] conductance states. Programming
    (a reset pulse followed by a set pulse) moves the device to a new
    level and consumes one write out of its endurance budget; once the
    budget is exhausted the cell is worn out and is stuck at its last
    level, silently ignoring further programming — exactly the failure
    mode the paper's endurance-aware transformations try to delay. *)

type config = {
  levels : int;  (** distinct conductance states, 16 for a 4-bit cell *)
  endurance : int;  (** writes before wear-out; paper range 1e6..1e8 *)
  g_min_siemens : float;  (** conductance of the fully amorphous state *)
  g_max_siemens : float;  (** conductance of the fully crystalline state *)
}

val default_config : config
(** 4-bit IBM PCM cell: 16 levels, 2.5e7 writes, 0.1 uS .. 20 uS. *)

type t

val create : ?config:config -> unit -> t
(** Fresh cell at level 0 (amorphous) with zero writes. *)

val config : t -> config

val program : t -> level:int -> unit
(** One write. Raises [Invalid_argument] if [level] is outside
    [\[0, levels)]. A worn-out cell stays stuck but the write attempt is
    still counted (the pulse is applied; it just no longer switches the
    material). *)

val level : t -> int
(** Current stored level (a read pulse; does not wear the cell). *)

val conductance : t -> float
(** Conductance in siemens, linear in the level between
    [g_min_siemens] and [g_max_siemens]. *)

val writes : t -> int
(** Total write pulses applied so far. *)

val is_worn_out : t -> bool

val is_stuck : t -> bool
(** True when the cell no longer switches: either worn out (endurance
    budget exhausted) or carrying an injected manufacture defect. *)

val force_stuck_at : t -> level:int -> unit
(** Fault-injection hook: plant a manufacture-time stuck-at defect.
    The cell reads back [level] forever and silently ignores all
    further programming. Raises [Invalid_argument] on an out-of-range
    level. Does not count as a write (the defect is there from the
    fab, not from traffic). *)

val exhaust : t -> unit
(** Fault-injection hook: consume the remaining endurance budget, so
    the cell is worn out and stuck at its current level — the
    wear-induced variant of the same failure mode. Already-recorded
    writes are kept. *)

type pulse = Set | Reset | Read

val pulse_profile : pulse -> (float * float) list
(** Synthetic (time in ns, temperature in K) trace of a programming
    pulse, reproducing the qualitative shape of Fig. 1(b): the reset
    pulse is short and exceeds the melting temperature, the set pulse is
    longer and stays between crystallisation and melting, the read pulse
    stays below crystallisation. *)

val melt_temperature_k : float
val crystallisation_temperature_k : float
val room_temperature_k : float
