type t = {
  lines : int;
  gap_interval : int;
  mutable start : int;  (** rotation offset, in [0, lines] *)
  mutable gap : int;  (** physical index of the gap line, in [0, lines] *)
  mutable writes_since_move : int;
  mutable total_writes : int;
  mutable gap_movements : int;
  wear : int array;  (** per physical line *)
  quarantined : bool array;  (** per physical line; writes routed around *)
}

let create ~lines ~gap_interval =
  if lines <= 0 then invalid_arg "Wear_leveling.create: lines must be positive";
  if gap_interval <= 0 then invalid_arg "Wear_leveling.create: interval must be positive";
  {
    lines;
    gap_interval;
    start = 0;
    gap = lines;
    writes_since_move = 0;
    total_writes = 0;
    gap_movements = 0;
    wear = Array.make (lines + 1) 0;
    quarantined = Array.make (lines + 1) false;
  }

let lines t = t.lines

let check_physical t phys =
  if phys < 0 || phys > t.lines then
    invalid_arg (Printf.sprintf "Wear_leveling: physical line %d out of %d" phys (t.lines + 1))

let quarantined_count t =
  Array.fold_left (fun acc q -> if q then acc + 1 else acc) 0 t.quarantined

let quarantine t phys =
  check_physical t phys;
  if not t.quarantined.(phys) then begin
    if quarantined_count t >= t.lines then
      invalid_arg "Wear_leveling.quarantine: would leave no healthy line";
    t.quarantined.(phys) <- true
  end

let is_quarantined t phys =
  check_physical t phys;
  t.quarantined.(phys)

(* Start-Gap address computation (Qureshi et al., Eq. in Sec. 3.2):
   rotate by [start] over the logical lines, then skip the gap line. *)
let physical_of_logical t logical =
  if logical < 0 || logical >= t.lines then
    invalid_arg (Printf.sprintf "Wear_leveling: logical line %d out of %d" logical t.lines);
  let rotated = (logical + t.start) mod t.lines in
  let phys = if rotated >= t.gap then rotated + 1 else rotated in
  (* Quarantine probing: skip dead lines by walking forward (the remap
     analogue of Start-Gap's own skip over the gap). With nothing
     quarantined this is the identity, preserving the bijection. *)
  if not t.quarantined.(phys) then phys
  else begin
    let physical = t.lines + 1 in
    let p = ref ((phys + 1) mod physical) in
    while t.quarantined.(!p) do
      p := (!p + 1) mod physical
    done;
    !p
  end

let move_gap t =
  t.gap_movements <- t.gap_movements + 1;
  if t.gap = 0 then begin
    (* the gap wraps to the top; one full rotation completed, so the
       whole mapping advances by one line *)
    t.gap <- t.lines;
    t.start <- (t.start + 1) mod t.lines
  end
  else begin
    (* the line below the gap is copied into the gap: one write to the
       gap's physical position (unless that position is quarantined, in
       which case the copy is elided — dead lines take no traffic) *)
    if not t.quarantined.(t.gap) then t.wear.(t.gap) <- t.wear.(t.gap) + 1;
    t.gap <- t.gap - 1
  end

let write t logical =
  let phys = physical_of_logical t logical in
  t.wear.(phys) <- t.wear.(phys) + 1;
  t.total_writes <- t.total_writes + 1;
  t.writes_since_move <- t.writes_since_move + 1;
  if t.writes_since_move >= t.gap_interval then begin
    t.writes_since_move <- 0;
    move_gap t
  end

let wear t = Array.copy t.wear
let max_wear t = Array.fold_left max 0 t.wear
let total_writes t = t.total_writes
let gap_movements t = t.gap_movements

type stats = { writes : int; max_per_cell : int; remaps : int; quarantined : int }

let stats t =
  {
    writes = t.total_writes;
    max_per_cell = max_wear t;
    remaps = t.gap_movements;
    quarantined = quarantined_count t;
  }

let ideal_max_wear t =
  let physical = t.lines + 1 in
  (t.total_writes + t.gap_movements + physical - 1) / physical
