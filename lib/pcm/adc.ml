type config = { bits : int; columns_per_adc : int }

let default_config = { bits = 8; columns_per_adc = 32 }

type t = { config : config; mutable conversions : int; mutable samples : int }

let create ?(config = default_config) () =
  if config.bits < 1 then invalid_arg "Adc.create: bits must be positive";
  if config.columns_per_adc < 1 then invalid_arg "Adc.create: sharing factor must be positive";
  { config; conversions = 0; samples = 0 }

let config t = t.config

(* inlined so the float arguments stay unboxed in the crossbar's
   per-column conversion loop *)
let[@inline always] convert t ~full_scale value =
  if full_scale <= 0.0 then invalid_arg "Adc.convert: full_scale must be positive";
  t.samples <- t.samples + 1;
  t.conversions <- t.conversions + 1;
  let top = float_of_int ((1 lsl (t.config.bits - 1)) - 1) in
  let code = Float.round (value /. full_scale *. top) in
  let hi = top and lo = -.top -. 1.0 in
  int_of_float (Float.max lo (Float.min hi code))

let conversions t = t.conversions
let samples t = t.samples

let adc_count_for_columns t n =
  if n <= 0 then 0 else ((n - 1) / t.config.columns_per_adc) + 1
