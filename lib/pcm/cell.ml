type config = {
  levels : int;
  endurance : int;
  g_min_siemens : float;
  g_max_siemens : float;
}

let default_config =
  { levels = 16; endurance = 25_000_000; g_min_siemens = 1e-7; g_max_siemens = 2e-5 }

type t = {
  config : config;
  mutable level : int;
  mutable writes : int;
  mutable stuck : bool;  (** manufacture-time defect: never switches *)
}

let create ?(config = default_config) () =
  if config.levels < 2 then invalid_arg "Cell.create: need at least two levels";
  if config.endurance <= 0 then invalid_arg "Cell.create: endurance must be positive";
  { config; level = 0; writes = 0; stuck = false }

let config t = t.config
let is_worn_out t = t.writes >= t.config.endurance
let is_stuck t = t.stuck || is_worn_out t

let check_level t level =
  if level < 0 || level >= t.config.levels then
    invalid_arg (Printf.sprintf "Cell.program: level %d out of [0,%d)" level t.config.levels)

let program t ~level =
  check_level t level;
  let stuck = is_stuck t in
  t.writes <- t.writes + 1;
  if not stuck then t.level <- level

let force_stuck_at t ~level =
  check_level t level;
  t.level <- level;
  t.stuck <- true

let exhaust t = t.writes <- max t.writes t.config.endurance

let level t = t.level

let conductance t =
  let frac = float_of_int t.level /. float_of_int (t.config.levels - 1) in
  t.config.g_min_siemens +. (frac *. (t.config.g_max_siemens -. t.config.g_min_siemens))

let writes t = t.writes

type pulse = Set | Reset | Read

let melt_temperature_k = 900.0
let crystallisation_temperature_k = 450.0
let room_temperature_k = 300.0

(* Shapes follow Fig. 1(b): a sharp spike above T_melt for reset, a
   longer plateau between T_crys and T_melt for set, and a low bump for
   read. Times are in nanoseconds. *)
let pulse_profile = function
  | Reset ->
      [
        (0.0, room_temperature_k);
        (5.0, melt_temperature_k +. 100.0);
        (15.0, melt_temperature_k +. 100.0);
        (20.0, room_temperature_k);
      ]
  | Set ->
      [
        (0.0, room_temperature_k);
        (10.0, crystallisation_temperature_k +. 150.0);
        (80.0, crystallisation_temperature_k +. 150.0);
        (100.0, room_temperature_k);
      ]
  | Read ->
      [
        (0.0, room_temperature_k);
        (2.0, crystallisation_temperature_k -. 100.0);
        (8.0, crystallisation_temperature_k -. 100.0);
        (10.0, room_temperature_k);
      ]
