(** System lifetime model (paper Eq. 1, Fig. 5).

    [SystemLifetime = CellEndurance * S / B] where [S] is the crossbar
    capacity in bytes and [B] the write traffic in bytes per second,
    assuming writes are spread uniformly over the array (the paper's
    stated assumption). *)

val lifetime_seconds :
  cell_endurance:float -> crossbar_bytes:int -> write_bytes_per_second:float -> float
(** Raises [Invalid_argument] on non-positive traffic, capacity or
    endurance. *)

val lifetime_years :
  cell_endurance:float -> crossbar_bytes:int -> write_bytes_per_second:float -> float

val write_traffic_bytes_per_second : bytes_written:int -> elapsed_seconds:float -> float
(** [B] from a measured execution. Raises [Invalid_argument] when
    [elapsed_seconds <= 0]. *)

val seconds_per_year : float

(** Running write-traffic accumulator for one crossbar (or one pool
    device): feeds measured traffic into the Eq. 1 lifetime model
    without the caller keeping its own counters. Used by the serving
    layer's endurance-aware dispatch and observable read-only through
    the accessors below. *)
module Tracker : sig
  type t

  val create : cell_endurance:float -> crossbar_bytes:int -> t
  (** Raises [Invalid_argument] on a non-positive endurance or
      capacity. *)

  val record : t -> bytes:int -> unit
  (** Account [bytes] of matrix data written to the array. Raises
      [Invalid_argument] on a negative count. *)

  val bytes_written : t -> int
  val events : t -> int

  val budget_consumed : t -> float
  (** Fraction of the total write budget
      [cell_endurance * crossbar_bytes] already spent; 0 when nothing
      was written, 1.0 at end of life under the uniform-wear
      assumption. *)

  val lifetime_years : t -> elapsed_seconds:float -> float option
  (** Eq. 1 lifetime extrapolated from the traffic recorded so far over
      [elapsed_seconds]; [None] before the first write. Raises
      [Invalid_argument] when [elapsed_seconds <= 0]. *)
end
