(** A memristor crossbar computing analog matrix-vector products
    (paper Section II-B, Fig. 2(c)).

    The logical array stores [rows x cols] signed 8-bit operands. Each
    operand is realised by {e two} 4-bit PCM cells in adjacent physical
    planes — one for the 4 MSBs, one for the 4 LSBs — exactly the
    "2x(256x256 @4-bit)" organisation of Table I. A matrix is written as
    conductances; a GEMV drives the input vector as row voltages and
    senses per-column currents, which the shared ADCs digitise and the
    digital logic combines with a weighted MSB/LSB sum.

    The functional result is the exact integer dot product (the model is
    functional like CIM-SIM, with optional additive analog noise); the
    counters feed the Table-I energy model. *)

type config = {
  rows : int;
  cols : int;
  cell : Cell.config;
  adc : Adc.config;
  noise_sigma : float option;
      (** standard deviation of additive per-column analog noise, in
          LSB units of the integer result; [None] = ideal *)
  size_bytes : int;
      (** capacity used in the lifetime equation (Eq. 1); the paper
          uses 512 KB *)
}

val default_config : config
(** 256x256 logical 8-bit operands, IBM 4-bit cells, 512 KB. *)

type t

val create : ?config:config -> ?seed:int -> ?scratch:Tdo_util.Arena.t -> unit -> t
(** [scratch] backs the per-cell state (levels, wear counters, defect
    flags) with arena blocks, so short-lived crossbars inside per-run
    platforms recycle their planes instead of reallocating ~1M words
    each. A crossbar created with [scratch] is only valid until that
    arena's next reset — never pass one for a long-lived device. *)

val config : t -> config

val program_codes : t -> ?row_off:int -> ?col_off:int -> int array array -> unit
(** Write a (rectangular, non-empty) matrix of signed 8-bit codes at the
    given offset. Every element programs two physical cells (one write
    pulse each, counted even on worn-out cells). Also latches the
    written region as the active compute region — the row/column enable
    masks of the digital interface. Raises [Invalid_argument] if the
    region exceeds the array or a code is outside [-128, 127]. *)

val active_region : t -> (int * int * int * int) option
(** [(row_off, col_off, rows, cols)] of the last programmed region. *)

val gemv_codes : t -> int array -> int array
(** Analog GEMV over the active region: input length must equal the
    active row count; the result has one (exact, full-precision) integer
    per active column. Raises [Failure] if nothing was programmed. *)

val gemv_codes_into : t -> int array -> out:int array -> unit
(** Allocation-free {!gemv_codes}: writes the column results into [out],
    whose length must equal the active column count. The engine's
    streamed launch loop calls this with a reused buffer. *)

val read_codes : t -> int array array
(** Read back the active region (digital read path; reconstructs codes
    from the stored levels of worn and healthy cells alike). *)

type counters = {
  cell_writes : int;  (** physical write pulses (2 per logical write) *)
  logical_writes : int;  (** 8-bit operands programmed *)
  write_bytes : int;  (** bytes of matrix data written to the array *)
  gemv_ops : int;
  macs : int;  (** multiply-accumulates performed in the analog domain *)
  input_buffer_bytes : int;
  output_buffer_bytes : int;
}

val counters : t -> counters
val reset_counters : t -> unit

val adc : t -> Adc.t
(** The shared ADC bank (for conversion counts). *)

val wear_total : t -> int
(** Total physical write pulses over the array's lifetime (not reset by
    [reset_counters]). *)

val wear_max : t -> int
(** Largest per-cell write count. *)

val worn_out_fraction : t -> float
(** Fraction of physical cells past their endurance budget. *)

val stuck_fraction : t -> float
(** Fraction of physical cells that no longer switch (worn out or
    carrying an injected stuck-at defect). *)

(** {2 Fault-injection hooks}

    Deterministic handles for reliability campaigns ({!Tdo_reliab}):
    each hook plants one concrete device-level fault. The functional
    GEMV model then propagates the fault into column sums exactly, so
    campaigns are replayable bit-for-bit from a seed. *)

type plane = Msb | Lsb  (** which physical 4-bit plane of an operand *)

val inject_stuck_at : t -> plane:plane -> row:int -> col:int -> level:int -> unit
(** Plant a manufacture-time defect: the cell reads back [level]
    forever and ignores all future programming. Raises
    [Invalid_argument] outside the array or level range. *)

val inject_wear_out : t -> plane:plane -> row:int -> col:int -> level:int -> unit
(** Wear-induced variant: program the cell to [level], then exhaust its
    endurance budget so it is stuck there. *)

val arm_column_flip : t -> col:int -> bit:int -> ops:int -> unit
(** Arm a transient disturbance: the next [ops] GEMV passes that sense
    physical column [col] have bit [bit] of the combined column output
    flipped. Models read-disturb / sense-amp glitches. *)

val set_drift : t -> offset:int -> unit
(** Additive conductance-drift offset applied to every column output of
    every subsequent GEMV (in LSB units of the integer result). *)

val drift : t -> int

val flips_remaining : t -> int
(** Total armed-but-unconsumed column-flip events. *)
