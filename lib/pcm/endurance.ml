let seconds_per_year = 365.25 *. 24.0 *. 3600.0

let lifetime_seconds ~cell_endurance ~crossbar_bytes ~write_bytes_per_second =
  if cell_endurance <= 0.0 then invalid_arg "Endurance: endurance must be positive";
  if crossbar_bytes <= 0 then invalid_arg "Endurance: capacity must be positive";
  if write_bytes_per_second <= 0.0 then invalid_arg "Endurance: traffic must be positive";
  cell_endurance *. float_of_int crossbar_bytes /. write_bytes_per_second

let lifetime_years ~cell_endurance ~crossbar_bytes ~write_bytes_per_second =
  lifetime_seconds ~cell_endurance ~crossbar_bytes ~write_bytes_per_second /. seconds_per_year

let write_traffic_bytes_per_second ~bytes_written ~elapsed_seconds =
  if elapsed_seconds <= 0.0 then invalid_arg "Endurance: elapsed time must be positive";
  float_of_int bytes_written /. elapsed_seconds

module Tracker = struct
  type t = {
    cell_endurance : float;
    crossbar_bytes : int;
    mutable bytes_written : int;
    mutable events : int;
  }

  let create ~cell_endurance ~crossbar_bytes =
    if cell_endurance <= 0.0 then invalid_arg "Endurance.Tracker: endurance must be positive";
    if crossbar_bytes <= 0 then invalid_arg "Endurance.Tracker: capacity must be positive";
    { cell_endurance; crossbar_bytes; bytes_written = 0; events = 0 }

  let record t ~bytes =
    if bytes < 0 then invalid_arg "Endurance.Tracker.record: negative byte count";
    t.bytes_written <- t.bytes_written + bytes;
    t.events <- t.events + 1

  let bytes_written t = t.bytes_written
  let events t = t.events

  let budget_consumed t =
    float_of_int t.bytes_written /. (t.cell_endurance *. float_of_int t.crossbar_bytes)

  let lifetime_years t ~elapsed_seconds =
    if t.bytes_written = 0 then None
    else
      let b = write_traffic_bytes_per_second ~bytes_written:t.bytes_written ~elapsed_seconds in
      Some
        (lifetime_years ~cell_endurance:t.cell_endurance ~crossbar_bytes:t.crossbar_bytes
           ~write_bytes_per_second:b)
end
