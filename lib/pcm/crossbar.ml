module Prng = Tdo_util.Prng
module Quant = Tdo_linalg.Quant

type config = {
  rows : int;
  cols : int;
  cell : Cell.config;
  adc : Adc.config;
  noise_sigma : float option;
  size_bytes : int;
}

let default_config =
  {
    rows = 256;
    cols = 256;
    cell = Cell.default_config;
    adc = Adc.default_config;
    noise_sigma = None;
    size_bytes = 512 * 1024;
  }

type counters = {
  cell_writes : int;
  logical_writes : int;
  write_bytes : int;
  gemv_ops : int;
  macs : int;
  input_buffer_bytes : int;
  output_buffer_bytes : int;
}

let zero_counters =
  {
    cell_writes = 0;
    logical_writes = 0;
    write_bytes = 0;
    gemv_ops = 0;
    macs = 0;
    input_buffer_bytes = 0;
    output_buffer_bytes = 0;
  }

type plane = Msb | Lsb

type flip = {
  fcol : int;  (** physical column the disturbance is latched on *)
  fbit : int;
  mutable remaining : int;  (** gemv passes still affected *)
}

type t = {
  config : config;
  msb : Cell.t array array;  (** plane holding the signed high nibble, offset by +8 *)
  lsb : Cell.t array array;  (** plane holding the unsigned low nibble *)
  adc : Adc.t;
  prng : Prng.t;
  mutable active : (int * int * int * int) option;
  mutable counters : counters;
  mutable flips : flip list;  (** armed transient column disturbances *)
  mutable drift : int;  (** additive conductance-drift offset per column output *)
}

let create ?(config = default_config) ?(seed = 0) () =
  if config.rows <= 0 || config.cols <= 0 then
    invalid_arg "Crossbar.create: dimensions must be positive";
  if config.cell.Cell.levels <> 16 then
    invalid_arg "Crossbar.create: operand split assumes 4-bit (16-level) cells";
  let plane () =
    Array.init config.rows (fun _ ->
        Array.init config.cols (fun _ -> Cell.create ~config:config.cell ()))
  in
  {
    config;
    msb = plane ();
    lsb = plane ();
    adc = Adc.create ~config:config.adc ();
    prng = Prng.create ~seed;
    active = None;
    counters = zero_counters;
    flips = [];
    drift = 0;
  }

let config t = t.config
let counters t = t.counters
let reset_counters t = t.counters <- zero_counters
let adc t = t.adc
let active_region t = t.active

let program_codes t ?(row_off = 0) ?(col_off = 0) codes =
  let m = Array.length codes in
  if m = 0 then invalid_arg "Crossbar.program_codes: empty matrix";
  let n = Array.length codes.(0) in
  if n = 0 then invalid_arg "Crossbar.program_codes: empty row";
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Crossbar.program_codes: ragged matrix")
    codes;
  if row_off < 0 || col_off < 0 || row_off + m > t.config.rows || col_off + n > t.config.cols
  then invalid_arg "Crossbar.program_codes: region exceeds the array";
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let code = codes.(i).(j) in
      let hi, lo = Quant.split_nibbles code in
      (* The signed high nibble [-8,7] is stored with a +8 offset so it
         maps onto the unsigned conductance levels; the digital logic
         removes the offset after sensing. *)
      Cell.program t.msb.(row_off + i).(col_off + j) ~level:(hi + 8);
      Cell.program t.lsb.(row_off + i).(col_off + j) ~level:lo
    done
  done;
  t.active <- Some (row_off, col_off, m, n);
  t.counters <-
    {
      t.counters with
      cell_writes = t.counters.cell_writes + (2 * m * n);
      logical_writes = t.counters.logical_writes + (m * n);
      write_bytes = t.counters.write_bytes + (m * n);
    }

let require_active t =
  match t.active with
  | Some region -> region
  | None -> failwith "Crossbar: no matrix programmed"

let read_codes t =
  let row_off, col_off, m, n = require_active t in
  Array.init m (fun i ->
      Array.init n (fun j ->
          let hi = Cell.level t.msb.(row_off + i).(col_off + j) - 8 in
          let lo = Cell.level t.lsb.(row_off + i).(col_off + j) in
          Quant.combine_nibbles ~msb:hi ~lsb:lo))

let gemv_codes t input =
  let row_off, col_off, m, n = require_active t in
  if Array.length input <> m then
    invalid_arg
      (Printf.sprintf "Crossbar.gemv_codes: input length %d, active rows %d"
         (Array.length input) m);
  (* Analog currents: one Kirchhoff sum per plane per column. The model
     is functional — the integer column sums are what an ideal
     sense/convert chain recovers — with optional additive noise. *)
  let full_scale = float_of_int (m * 127 * 15) +. 1.0 in
  let out =
    Array.init n (fun j ->
        let sum_hi = ref 0 and sum_lo = ref 0 in
        for i = 0 to m - 1 do
          let x = input.(i) in
          sum_hi := !sum_hi + (x * (Cell.level t.msb.(row_off + i).(col_off + j) - 8));
          sum_lo := !sum_lo + (x * Cell.level t.lsb.(row_off + i).(col_off + j))
        done;
        let perturb v =
          match t.config.noise_sigma with
          | None -> v
          | Some sigma ->
              v + int_of_float (Float.round (Prng.gaussian t.prng ~mu:0.0 ~sigma))
        in
        (* Two conversions per column: one per physical plane. The ADC
           model is charged for the events; the code path keeps the
           integer value (ideal transfer function). *)
        let hi = perturb !sum_hi in
        let lo = perturb !sum_lo in
        ignore (Adc.convert t.adc ~full_scale (float_of_int hi));
        ignore (Adc.convert t.adc ~full_scale (float_of_int lo));
        (* Injected analog disturbances on the combined column output:
           conductance drift shifts every column; an armed transient
           flips one bit of one physical column for a bounded number of
           passes. *)
        let v = (16 * hi) + lo + t.drift in
        List.fold_left
          (fun v f ->
            if f.fcol = col_off + j && f.remaining > 0 then begin
              f.remaining <- f.remaining - 1;
              v lxor (1 lsl f.fbit)
            end
            else v)
          v t.flips)
  in
  t.counters <-
    {
      t.counters with
      gemv_ops = t.counters.gemv_ops + 1;
      macs = t.counters.macs + (m * n);
      input_buffer_bytes = t.counters.input_buffer_bytes + m;
      output_buffer_bytes = t.counters.output_buffer_bytes + (4 * n);
    };
  out

(* ---------- fault-injection hooks ---------- *)

let cell_of t ~plane ~row ~col =
  if row < 0 || col < 0 || row >= t.config.rows || col >= t.config.cols then
    invalid_arg
      (Printf.sprintf "Crossbar: cell (%d,%d) outside the %dx%d array" row col t.config.rows
         t.config.cols);
  match plane with Msb -> t.msb.(row).(col) | Lsb -> t.lsb.(row).(col)

let inject_stuck_at t ~plane ~row ~col ~level =
  Cell.force_stuck_at (cell_of t ~plane ~row ~col) ~level

let inject_wear_out t ~plane ~row ~col ~level =
  let c = cell_of t ~plane ~row ~col in
  Cell.program c ~level;
  Cell.exhaust c

let arm_column_flip t ~col ~bit ~ops =
  if col < 0 || col >= t.config.cols then
    invalid_arg (Printf.sprintf "Crossbar.arm_column_flip: column %d out of %d" col t.config.cols);
  if bit < 0 || bit > 40 then invalid_arg "Crossbar.arm_column_flip: bit out of range";
  if ops <= 0 then invalid_arg "Crossbar.arm_column_flip: ops must be positive";
  t.flips <- { fcol = col; fbit = bit; remaining = ops } :: t.flips

let set_drift t ~offset = t.drift <- offset
let drift t = t.drift
let flips_remaining t = List.fold_left (fun acc f -> acc + f.remaining) 0 t.flips

let fold_cells t f init =
  let acc = ref init in
  let visit plane = Array.iter (fun row -> Array.iter (fun c -> acc := f !acc c) row) plane in
  visit t.msb;
  visit t.lsb;
  !acc

let wear_total t = fold_cells t (fun acc c -> acc + Cell.writes c) 0
let wear_max t = fold_cells t (fun acc c -> max acc (Cell.writes c)) 0

let worn_out_fraction t =
  let worn = fold_cells t (fun acc c -> if Cell.is_worn_out c then acc + 1 else acc) 0 in
  let total = 2 * t.config.rows * t.config.cols in
  float_of_int worn /. float_of_int total

let stuck_fraction t =
  let stuck = fold_cells t (fun acc c -> if Cell.is_stuck c then acc + 1 else acc) 0 in
  let total = 2 * t.config.rows * t.config.cols in
  float_of_int stuck /. float_of_int total
