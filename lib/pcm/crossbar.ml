module Prng = Tdo_util.Prng
module Arena = Tdo_util.Arena
module Quant = Tdo_linalg.Quant

type config = {
  rows : int;
  cols : int;
  cell : Cell.config;
  adc : Adc.config;
  noise_sigma : float option;
  size_bytes : int;
}

let default_config =
  {
    rows = 256;
    cols = 256;
    cell = Cell.default_config;
    adc = Adc.default_config;
    noise_sigma = None;
    size_bytes = 512 * 1024;
  }

type counters = {
  cell_writes : int;
  logical_writes : int;
  write_bytes : int;
  gemv_ops : int;
  macs : int;
  input_buffer_bytes : int;
  output_buffer_bytes : int;
}

let zero_counters =
  {
    cell_writes = 0;
    logical_writes = 0;
    write_bytes = 0;
    gemv_ops = 0;
    macs = 0;
    input_buffer_bytes = 0;
    output_buffer_bytes = 0;
  }

type plane = Msb | Lsb

type flip = {
  fcol : int;  (** physical column the disturbance is latched on *)
  fbit : int;
  mutable remaining : int;  (** gemv passes still affected *)
}

(* Cell state lives in structure-of-arrays form — one byte of level,
   one byte of defect flag and one write counter per physical cell —
   instead of a [Cell.t] record per cell. A 2x(256x256) array held as
   records costs ~1M minor words per crossbar, paid on every fresh
   platform; the SoA planes are three flat blocks that a scratch arena
   can recycle across runs. The per-cell semantics mirror [Cell]
   exactly (see [program_cell]). *)
type plane_state = {
  levels : Bytes.t;  (** current conductance level per cell *)
  writes : int array;  (** lifetime write pulses per cell *)
  stuck : Bytes.t;  (** 1 = injected manufacture-time defect *)
}

type t = {
  config : config;
  cells : int;  (** rows * cols, the plane stride *)
  msb : plane_state;  (** plane holding the signed high nibble, offset by +8 *)
  lsb : plane_state;  (** plane holding the unsigned low nibble *)
  adc : Adc.t;
  prng : Prng.t;
  mutable active : (int * int * int * int) option;
  mutable counters : counters;
  mutable flips : flip list;  (** armed transient column disturbances *)
  mutable drift : int;  (** additive conductance-drift offset per column output *)
}

let make_plane ?scratch cells =
  match scratch with
  | None ->
      {
        levels = Bytes.make cells '\000';
        writes = Array.make cells 0;
        stuck = Bytes.make cells '\000';
      }
  | Some arena ->
      (* pooled blocks come back dirty: every plane starts erased *)
      let levels = Arena.bytes arena cells in
      Bytes.fill levels 0 cells '\000';
      let writes = Arena.int_array arena cells in
      Array.fill writes 0 cells 0;
      let stuck = Arena.bytes arena cells in
      Bytes.fill stuck 0 cells '\000';
      { levels; writes; stuck }

let create ?(config = default_config) ?(seed = 0) ?scratch () =
  if config.rows <= 0 || config.cols <= 0 then
    invalid_arg "Crossbar.create: dimensions must be positive";
  if config.cell.Cell.levels <> 16 then
    invalid_arg "Crossbar.create: operand split assumes 4-bit (16-level) cells";
  let cells = config.rows * config.cols in
  {
    config;
    cells;
    msb = make_plane ?scratch cells;
    lsb = make_plane ?scratch cells;
    adc = Adc.create ~config:config.adc ();
    prng = Prng.create ~seed;
    active = None;
    counters = zero_counters;
    flips = [];
    drift = 0;
  }

(* ---------- per-cell operations (the [Cell] semantics, on SoA) ---------- *)

let[@inline always] cell_level p i = Char.code (Bytes.unsafe_get p.levels i)

let[@inline always] cell_is_worn t p i =
  Array.unsafe_get p.writes i >= t.config.cell.Cell.endurance

let[@inline always] cell_is_stuck t p i =
  Bytes.unsafe_get p.stuck i <> '\000' || cell_is_worn t p i

let check_level t level =
  if level < 0 || level >= t.config.cell.Cell.levels then
    invalid_arg
      (Printf.sprintf "Cell.program: level %d out of [0,%d)" level t.config.cell.Cell.levels)

(* Mirrors [Cell.program]: the write pulse is charged (and wear
   accrues) even when the cell no longer switches, and stuckness is
   judged before this pulse's wear is added. *)
let program_cell t p i ~level =
  check_level t level;
  let stuck = cell_is_stuck t p i in
  Array.unsafe_set p.writes i (Array.unsafe_get p.writes i + 1);
  if not stuck then Bytes.unsafe_set p.levels i (Char.unsafe_chr level)

let config t = t.config
let counters t = t.counters
let reset_counters t = t.counters <- zero_counters
let adc t = t.adc
let active_region t = t.active

let program_codes t ?(row_off = 0) ?(col_off = 0) codes =
  let m = Array.length codes in
  if m = 0 then invalid_arg "Crossbar.program_codes: empty matrix";
  let n = Array.length codes.(0) in
  if n = 0 then invalid_arg "Crossbar.program_codes: empty row";
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Crossbar.program_codes: ragged matrix")
    codes;
  if row_off < 0 || col_off < 0 || row_off + m > t.config.rows || col_off + n > t.config.cols
  then invalid_arg "Crossbar.program_codes: region exceeds the array";
  let stride = t.config.cols in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let code = codes.(i).(j) in
      let hi, lo = Quant.split_nibbles code in
      let idx = ((row_off + i) * stride) + col_off + j in
      (* The signed high nibble [-8,7] is stored with a +8 offset so it
         maps onto the unsigned conductance levels; the digital logic
         removes the offset after sensing. *)
      program_cell t t.msb idx ~level:(hi + 8);
      program_cell t t.lsb idx ~level:lo
    done
  done;
  t.active <- Some (row_off, col_off, m, n);
  t.counters <-
    {
      t.counters with
      cell_writes = t.counters.cell_writes + (2 * m * n);
      logical_writes = t.counters.logical_writes + (m * n);
      write_bytes = t.counters.write_bytes + (m * n);
    }

let require_active t =
  match t.active with
  | Some region -> region
  | None -> failwith "Crossbar: no matrix programmed"

let read_codes t =
  let row_off, col_off, m, n = require_active t in
  let stride = t.config.cols in
  Array.init m (fun i ->
      Array.init n (fun j ->
          let idx = ((row_off + i) * stride) + col_off + j in
          let hi = cell_level t.msb idx - 8 in
          let lo = cell_level t.lsb idx in
          Quant.combine_nibbles ~msb:hi ~lsb:lo))

let perturb t v =
  match t.config.noise_sigma with
  | None -> v
  | Some sigma -> v + int_of_float (Float.round (Prng.gaussian t.prng ~mu:0.0 ~sigma))

(* Injected analog disturbances on the combined column output: an armed
   transient flips one bit of one physical column for a bounded number
   of passes. *)
let rec apply_flips flips ~col v =
  match flips with
  | [] -> v
  | f :: rest ->
      let v =
        if f.fcol = col && f.remaining > 0 then begin
          f.remaining <- f.remaining - 1;
          v lxor (1 lsl f.fbit)
        end
        else v
      in
      apply_flips rest ~col v

let gemv_codes_into t input ~out =
  let row_off, col_off, m, n = require_active t in
  if Array.length input <> m then
    invalid_arg
      (Printf.sprintf "Crossbar.gemv_codes: input length %d, active rows %d"
         (Array.length input) m);
  if Array.length out <> n then
    invalid_arg
      (Printf.sprintf "Crossbar.gemv_codes_into: output length %d, active columns %d"
         (Array.length out) n);
  (* Analog currents: one Kirchhoff sum per plane per column. The model
     is functional — the integer column sums are what an ideal
     sense/convert chain recovers — with optional additive noise. The
     loop writes into the caller's buffer and keeps its accumulators in
     locals, so a streamed launch performs the whole GEMV without
     allocating. *)
  let full_scale = float_of_int (m * 127 * 15) +. 1.0 in
  let stride = t.config.cols in
  for j = 0 to n - 1 do
    let sum_hi = ref 0 and sum_lo = ref 0 in
    for i = 0 to m - 1 do
      let x = input.(i) in
      let idx = ((row_off + i) * stride) + col_off + j in
      sum_hi := !sum_hi + (x * (cell_level t.msb idx - 8));
      sum_lo := !sum_lo + (x * cell_level t.lsb idx)
    done;
    (* Two conversions per column: one per physical plane. The ADC
       model is charged for the events; the code path keeps the
       integer value (ideal transfer function). *)
    let hi = perturb t !sum_hi in
    let lo = perturb t !sum_lo in
    ignore (Adc.convert t.adc ~full_scale (float_of_int hi));
    ignore (Adc.convert t.adc ~full_scale (float_of_int lo));
    (* Conductance drift shifts every column; see [apply_flips] for the
       transient disturbances. *)
    let v = (16 * hi) + lo + t.drift in
    out.(j) <- apply_flips t.flips ~col:(col_off + j) v
  done;
  t.counters <-
    {
      t.counters with
      gemv_ops = t.counters.gemv_ops + 1;
      macs = t.counters.macs + (m * n);
      input_buffer_bytes = t.counters.input_buffer_bytes + m;
      output_buffer_bytes = t.counters.output_buffer_bytes + (4 * n);
    }

let gemv_codes t input =
  let _, _, _, n = require_active t in
  let out = Array.make n 0 in
  gemv_codes_into t input ~out;
  out

(* ---------- fault-injection hooks ---------- *)

let cell_of t ~plane ~row ~col =
  if row < 0 || col < 0 || row >= t.config.rows || col >= t.config.cols then
    invalid_arg
      (Printf.sprintf "Crossbar: cell (%d,%d) outside the %dx%d array" row col t.config.rows
         t.config.cols);
  let idx = (row * t.config.cols) + col in
  match plane with Msb -> (t.msb, idx) | Lsb -> (t.lsb, idx)

let inject_stuck_at t ~plane ~row ~col ~level =
  let p, idx = cell_of t ~plane ~row ~col in
  check_level t level;
  Bytes.set p.levels idx (Char.chr level);
  Bytes.set p.stuck idx '\001'

let inject_wear_out t ~plane ~row ~col ~level =
  let p, idx = cell_of t ~plane ~row ~col in
  program_cell t p idx ~level;
  p.writes.(idx) <- max p.writes.(idx) t.config.cell.Cell.endurance

let arm_column_flip t ~col ~bit ~ops =
  if col < 0 || col >= t.config.cols then
    invalid_arg (Printf.sprintf "Crossbar.arm_column_flip: column %d out of %d" col t.config.cols);
  if bit < 0 || bit > 40 then invalid_arg "Crossbar.arm_column_flip: bit out of range";
  if ops <= 0 then invalid_arg "Crossbar.arm_column_flip: ops must be positive";
  t.flips <- { fcol = col; fbit = bit; remaining = ops } :: t.flips

let set_drift t ~offset = t.drift <- offset
let drift t = t.drift
let flips_remaining t = List.fold_left (fun acc f -> acc + f.remaining) 0 t.flips

let fold_cells t f init =
  let acc = ref init in
  let visit p =
    for i = 0 to t.cells - 1 do
      acc := f !acc p i
    done
  in
  visit t.msb;
  visit t.lsb;
  !acc

let wear_total t = fold_cells t (fun acc p i -> acc + p.writes.(i)) 0
let wear_max t = fold_cells t (fun acc p i -> max acc p.writes.(i)) 0

let worn_out_fraction t =
  let worn = fold_cells t (fun acc p i -> if cell_is_worn t p i then acc + 1 else acc) 0 in
  let total = 2 * t.cells in
  float_of_int worn /. float_of_int total

let stuck_fraction t =
  let stuck = fold_cells t (fun acc p i -> if cell_is_stuck t p i then acc + 1 else acc) 0 in
  let total = 2 * t.cells in
  float_of_int stuck /. float_of_int total
