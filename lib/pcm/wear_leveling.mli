(** Start-Gap wear-leveling (Qureshi et al., MICRO'09 — the paper's
    reference [9]).

    An architectural technique orthogonal to TDO-CIM's compile-time
    approach: [lines] logical lines are spread over [lines + 1]
    physical lines; one physical line is a {e gap}. Every
    [gap_interval] writes the gap moves one position (copying a line),
    and after [lines + 1] gap movements the whole mapping has rotated
    by one ([start] advances), so hot logical lines migrate across all
    physical lines over time.

    The module tracks per-physical-line wear and lets experiments
    compare max wear with and without leveling under skewed write
    traffic. *)

type t

val create : lines:int -> gap_interval:int -> t
(** [lines] logical lines over [lines + 1] physical lines; the gap
    moves every [gap_interval] logical writes. Both must be positive. *)

val lines : t -> int

val physical_of_logical : t -> int -> int
(** Current mapping. Raises [Invalid_argument] for an out-of-range
    logical line. *)

val write : t -> int -> unit
(** Record one write to a logical line: wear accrues on its current
    physical line (plus the copy traffic of any gap movement this write
    triggers). *)

val wear : t -> int array
(** Per-physical-line write counts, length [lines + 1]. *)

val max_wear : t -> int
val total_writes : t -> int
val gap_movements : t -> int

val quarantine : t -> int -> unit
(** Mark a {e physical} line as dead: {!physical_of_logical} probes past
    it, {!write} never lands on it, and gap copies into it are elided.
    Raises [Invalid_argument] if the line is out of range or if
    quarantining it would leave no healthy line. Idempotent. *)

val is_quarantined : t -> int -> bool
val quarantined_count : t -> int

type stats = {
  writes : int;  (** logical writes recorded, = {!total_writes} *)
  max_per_cell : int;  (** hottest physical line, = {!max_wear} *)
  remaps : int;  (** gap movements performed, = {!gap_movements} *)
  quarantined : int;  (** physical lines marked dead, = {!quarantined_count} *)
}

val stats : t -> stats
(** One read-only snapshot of the wear counters, so observers (the
    serving layer's device pool, tests) need not reach for the
    individual accessors or the raw wear array. *)

val ideal_max_wear : t -> int
(** [ceil (total line writes / physical lines)] — the perfectly
    levelled bound, for normalisation. *)
