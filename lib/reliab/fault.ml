module Crossbar = Tdo_pcm.Crossbar

type t =
  | Stuck_at of { plane : Crossbar.plane; row : int; col : int; level : int }
  | Worn_out of { plane : Crossbar.plane; row : int; col : int; level : int }
  | Column_flip of { col : int; bit : int; ops : int }
  | Drift of { offset : int }

let plane_name = function Crossbar.Msb -> "msb" | Crossbar.Lsb -> "lsb"

let describe = function
  | Stuck_at { plane; row; col; level } ->
      Printf.sprintf "stuck-at %s(%d,%d)=%d" (plane_name plane) row col level
  | Worn_out { plane; row; col; level } ->
      Printf.sprintf "worn-out %s(%d,%d)=%d" (plane_name plane) row col level
  | Column_flip { col; bit; ops } ->
      Printf.sprintf "column-flip col=%d bit=%d ops=%d" col bit ops
  | Drift { offset } -> Printf.sprintf "drift %+d" offset

let apply xbar = function
  | Stuck_at { plane; row; col; level } -> Crossbar.inject_stuck_at xbar ~plane ~row ~col ~level
  | Worn_out { plane; row; col; level } -> Crossbar.inject_wear_out xbar ~plane ~row ~col ~level
  | Column_flip { col; bit; ops } -> Crossbar.arm_column_flip xbar ~col ~bit ~ops
  | Drift { offset } -> Crossbar.set_drift xbar ~offset
