include Tdo_linalg.Abft
