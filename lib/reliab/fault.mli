(** The fault taxonomy of the reliability subsystem.

    Three device-level failure modes of a PCM crossbar, all planted
    through the deterministic {!Tdo_pcm.Crossbar} injection hooks:

    - {b stuck cells}: a cell that no longer switches, either a
      manufacture-time defect ([Stuck_at]) or the wear-induced variant
      the endurance model produces organically ([Worn_out] — the cell
      is programmed once, then its budget is exhausted). Permanent,
      data-dependent corruption: the GEMV is wrong whenever the stuck
      level differs from what the kernel programmed.
    - {b transient column flips}: a sense/convert glitch flipping one
      bit of one column output for a bounded number of GEMV passes.
    - {b conductance drift}: an additive offset on every column output,
      modelling uniform drift of the programmed conductances. *)

module Crossbar = Tdo_pcm.Crossbar

type t =
  | Stuck_at of { plane : Crossbar.plane; row : int; col : int; level : int }
  | Worn_out of { plane : Crossbar.plane; row : int; col : int; level : int }
  | Column_flip of { col : int; bit : int; ops : int }
  | Drift of { offset : int }

val describe : t -> string
(** One-line human-readable form, e.g. ["stuck-at msb(3,7)=12"]. *)

val apply : Crossbar.t -> t -> unit
(** Plant the fault. Raises [Invalid_argument] if it does not fit the
    array. *)
