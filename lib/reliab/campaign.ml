module Prng = Tdo_util.Prng
module Time_base = Tdo_sim.Time_base
module Platform = Tdo_runtime.Platform
module Cimacc = Tdo_cimacc
module Kernels = Tdo_polybench.Kernels
module Interp = Tdo_lang.Interp
module Trace = Tdo_serve.Trace
module Telemetry = Tdo_serve.Telemetry
module Scheduler = Tdo_serve.Scheduler

type config = {
  kernels : (string * int) list;
  requests : int;
  mean_gap_us : float;
  devices : int;
  seed : int;
  spec : Inject.spec;
  abft : bool;
  recovery : Scheduler.recovery;
}

let default_config =
  {
    kernels = [ ("gemm", 16); ("gesummv", 16); ("mvt", 16) ];
    requests = 60;
    mean_gap_us = 60.0;
    devices = 2;
    seed = 11;
    spec = Inject.default_spec;
    abft = true;
    recovery = Scheduler.default_recovery;
  }

type metrics = {
  requests : int;
  injected_faults : int;
  faulty_devices : int;
  detected : int;
  sdc : int;
  completed : int;
  completed_after_retry : int;
  recovered_host : int;
  cpu_fallbacks : int;
  rejected : int;
  failed : int;
  quarantined : int list;
  detection_rate : float;
  sdc_rate : float;
  latency_overhead : float;
  makespan_overhead : float;
}

type run = {
  config : config;
  trace : Trace.t;
  faulty : Scheduler.report;
  baseline : Scheduler.report;
  metrics : metrics;
}

(* Uniform mix over the configured (kernel, n) pairs with exponential
   inter-arrivals — same shape as {!Trace.synthetic}, but over the
   campaign's kernel set. *)
let trace_of config =
  if config.kernels = [] then invalid_arg "Campaign: no kernels configured";
  if config.requests <= 0 then invalid_arg "Campaign: need at least one request";
  let g = Prng.create ~seed:config.seed in
  let mix = Array.of_list config.kernels in
  let clock = ref 0 in
  let requests = ref [] in
  for id = 0 to config.requests - 1 do
    let kernel, n = mix.(Prng.int g ~bound:(Array.length mix)) in
    let u = Prng.float g ~bound:1.0 in
    let gap_us = config.mean_gap_us *. -.Float.log (1.0 -. u) in
    clock := !clock + int_of_float (gap_us *. float_of_int Time_base.ps_per_us);
    requests :=
      {
        Trace.id;
        kernel;
        n;
        seed = 1000 + id;
        arrival_ps = !clock;
        deadline_ps = None;
        tenant = 0;
        slo = Trace.Interactive;
      }
      :: !requests
  done;
  { Trace.name = "reliab-campaign"; seed = config.seed; requests = List.rev !requests }

let scheduler_config config ~faults =
  let pc = Platform.default_config in
  let engine = { pc.Platform.engine with Cimacc.Micro_engine.abft = config.abft } in
  {
    Scheduler.default_config with
    Scheduler.devices = config.devices;
    platform_config = { pc with Platform.engine };
    recovery = config.recovery;
    device_seed = config.seed;
    on_device_create = (if faults then Some (Inject.hook config.spec) else None);
  }

(* Host-interpreter oracle for one request — exact by construction. *)
let interp_checksum (r : Trace.request) =
  match Kernels.find r.Trace.kernel with
  | Error _ -> None
  | Ok bench ->
      let ast = Tdo_lang.Parser.parse_func (bench.Kernels.source ~n:r.Trace.n) in
      Tdo_lang.Typecheck.check_func ast;
      let args, readback = bench.Kernels.make_args ~n:r.Trace.n ~seed:r.Trace.seed in
      Interp.run ast ~args;
      Some (Scheduler.output_checksum (readback ()))

(* Silent corruptions: a served result that differs from its oracle.
   Device-served requests compare against the fault-free pool replay
   (offloaded results are deterministic across identical devices);
   host-served requests compare against a direct interpreter run. *)
let count_sdc ~(faulty : Scheduler.report) ~(baseline : Scheduler.report) =
  let device_sdc = Scheduler.divergence faulty baseline in
  let host_sdc =
    List.fold_left
      (fun acc (r : Telemetry.record) ->
        match (r.Telemetry.outcome, r.Telemetry.checksum) with
        | (Telemetry.Recovered_host | Telemetry.Cpu_fallback), Some cs -> (
            match interp_checksum r.Telemetry.request with
            | Some cs' when cs' <> cs -> acc + 1
            | Some _ | None -> acc)
        | _ -> acc)
      0
      (Telemetry.records faulty.Scheduler.telemetry)
  in
  device_sdc + host_sdc

let run ?(config = default_config) () =
  let trace = trace_of config in
  let faulty = Scheduler.replay ~config:(scheduler_config config ~faults:true) trace in
  let baseline = Scheduler.replay ~config:(scheduler_config config ~faults:false) trace in
  let injected = ref 0 and faulty_devices = ref 0 in
  for id = 0 to config.devices - 1 do
    let fs = Inject.sample config.spec ~device_id:id in
    injected := !injected + List.length fs;
    if fs <> [] then incr faulty_devices
  done;
  let s = Telemetry.summary faulty.Scheduler.telemetry in
  let detected = s.Telemetry.detected_corruptions in
  let sdc = count_sdc ~faulty ~baseline in
  let served = s.Telemetry.completed + s.Telemetry.cpu_fallbacks + s.Telemetry.recovered_host in
  let ratio a b = match (a, b) with Some a, Some b when b > 0.0 -> a /. b | _ -> 1.0 in
  let metrics =
    {
      requests = s.Telemetry.requests;
      injected_faults = !injected;
      faulty_devices = !faulty_devices;
      detected;
      sdc;
      completed = s.Telemetry.completed;
      completed_after_retry = s.Telemetry.completed_after_retry;
      recovered_host = s.Telemetry.recovered_host;
      cpu_fallbacks = s.Telemetry.cpu_fallbacks;
      rejected = s.Telemetry.rejected;
      failed = s.Telemetry.failed;
      quarantined = faulty.Scheduler.quarantined;
      detection_rate =
        (if detected + sdc = 0 then 1.0
         else float_of_int detected /. float_of_int (detected + sdc));
      sdc_rate = (if served = 0 then 0.0 else float_of_int sdc /. float_of_int served);
      latency_overhead =
        ratio
          (Telemetry.mean_latency_us faulty.Scheduler.telemetry)
          (Telemetry.mean_latency_us baseline.Scheduler.telemetry);
      makespan_overhead =
        (if baseline.Scheduler.makespan_ps > 0 then
           float_of_int faulty.Scheduler.makespan_ps
           /. float_of_int baseline.Scheduler.makespan_ps
         else 1.0);
    }
  in
  { config; trace; faulty; baseline; metrics }
