(** Seed-driven fault campaigns.

    A {!spec} describes the fault population statistically; {!sample}
    expands it into the concrete {!Fault.t} list of one device,
    deterministically in [(spec.seed, device_id)] — independent of pool
    size or injection order, so every campaign is replayable
    bit-for-bit and the same device always fails the same way. *)

type spec = {
  seed : int;  (** campaign seed; the replay key *)
  faulty_fraction : float;  (** probability a device carries faults at all *)
  region_rows : int;  (** faults land in the [region_rows x region_cols] window
                          at the array origin — keep it within the kernels'
                          active region or the faults are benign *)
  region_cols : int;
  stuck_cells : int;  (** manufacture-time stuck cells per faulty device *)
  worn_cells : int;  (** wear-induced stuck cells per faulty device *)
  column_flips : int;  (** armed transient disturbances per faulty device *)
  flip_ops : int;  (** GEMV passes each disturbance affects *)
  drift_offset : int;  (** conductance-drift offset; 0 = none *)
}

val default_spec : spec
(** Seed 1, half the devices faulty, one stuck cell each inside a
    16x16 window, no transients, no drift. *)

val sample : spec -> device_id:int -> Fault.t list
(** The concrete fault list of one device ([[]] for a healthy one).
    Pure: same spec and id, same list. *)

val is_faulty : spec -> device_id:int -> bool

val apply_to_device : spec -> Tdo_serve.Device.t -> Fault.t list
(** Sample for the device's id and plant every fault into each of its
    crossbar tiles. Returns what was planted. *)

val hook : spec -> Tdo_serve.Device.t -> unit
(** [apply_to_device] with the result dropped — shaped for
    {!Tdo_serve.Scheduler.config.on_device_create}. *)
