(** Re-export of {!Tdo_linalg.Abft}, the Huang–Abraham checksum math,
    so the reliability subsystem is self-contained for callers. (The
    implementation lives in [tdo_linalg] because the accelerator model
    [tdo_cimacc] — a lower layer than this library — verifies with it
    inside the micro-engine.) *)

include module type of struct
  include Tdo_linalg.Abft
end
