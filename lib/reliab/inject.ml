module Prng = Tdo_util.Prng
module Crossbar = Tdo_pcm.Crossbar
module Platform = Tdo_runtime.Platform
module Cimacc = Tdo_cimacc
module Device = Tdo_serve.Device

type spec = {
  seed : int;
  faulty_fraction : float;
  region_rows : int;
  region_cols : int;
  stuck_cells : int;
  worn_cells : int;
  column_flips : int;
  flip_ops : int;
  drift_offset : int;
}

let default_spec =
  {
    seed = 1;
    faulty_fraction = 0.5;
    region_rows = 16;
    region_cols = 16;
    stuck_cells = 1;
    worn_cells = 0;
    column_flips = 0;
    flip_ops = 4;
    drift_offset = 0;
  }

(* One generator per (campaign seed, device): the fault set of a device
   never depends on pool size or iteration order. *)
let device_rng spec ~device_id = Prng.create ~seed:((spec.seed * 1_000_003) + device_id)

let sample spec ~device_id =
  if spec.region_rows <= 0 || spec.region_cols <= 0 then
    invalid_arg "Inject.sample: region must be positive";
  let g = device_rng spec ~device_id in
  if Prng.float g ~bound:1.0 >= spec.faulty_fraction then []
  else begin
    let faults = ref [] in
    let add f = faults := f :: !faults in
    let plane () = if Prng.bool g then Crossbar.Msb else Crossbar.Lsb in
    let cell () =
      (Prng.int g ~bound:spec.region_rows, Prng.int g ~bound:spec.region_cols,
       Prng.int g ~bound:16)
    in
    for _ = 1 to spec.stuck_cells do
      let plane = plane () in
      let row, col, level = cell () in
      add (Fault.Stuck_at { plane; row; col; level })
    done;
    for _ = 1 to spec.worn_cells do
      let plane = plane () in
      let row, col, level = cell () in
      add (Fault.Worn_out { plane; row; col; level })
    done;
    for _ = 1 to spec.column_flips do
      add
        (Fault.Column_flip
           {
             col = Prng.int g ~bound:spec.region_cols;
             bit = Prng.int g ~bound:20;
             ops = max 1 spec.flip_ops;
           })
    done;
    if spec.drift_offset <> 0 then add (Fault.Drift { offset = spec.drift_offset });
    List.rev !faults
  end

let is_faulty spec ~device_id = sample spec ~device_id <> []

let apply_to_device spec dev =
  let faults = sample spec ~device_id:(Device.id dev) in
  let engine = Cimacc.Accel.engine (Device.platform dev).Platform.accel in
  let xbars = Cimacc.Micro_engine.crossbars engine in
  List.iter (fun f -> Array.iter (fun xb -> Fault.apply xb f) xbars) faults;
  faults

let hook spec dev = ignore (apply_to_device spec dev)
