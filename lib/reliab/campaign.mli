(** End-to-end reliability campaigns over the serving stack.

    One campaign builds a deterministic request trace over a set of
    PolyBench kernels, replays it twice through
    {!Tdo_serve.Scheduler.replay} — once on a pool with faults planted
    by {!Inject}, once on a pristine pool with identical seeds — and
    scores the difference:

    - {b detected}: corrupt device attempts the ABFT guard caught
      (each one triggered a recovery retry or host degradation);
    - {b SDC}: silent data corruptions — served results that differ
      from their oracle. Device-served results compare against the
      fault-free replay (offloads are deterministic across identical
      devices); host-served results compare against a direct
      interpreter run. With the guard on, single-fault campaigns must
      score zero;
    - {b overheads}: mean served latency and makespan of the faulty
      run relative to the fault-free baseline — the price of checksums,
      retries and quarantine-shrunk pools, in virtual time. *)

type config = {
  kernels : (string * int) list;  (** uniform (kernel, n) mix of the trace *)
  requests : int;
  mean_gap_us : float;  (** mean exponential inter-arrival gap *)
  devices : int;
  seed : int;  (** trace seed and device-seed base *)
  spec : Inject.spec;  (** the fault population *)
  abft : bool;  (** arm the per-GEMV checksum guard on every device *)
  recovery : Tdo_serve.Scheduler.recovery;
}

val default_config : config
(** gemm/gesummv/mvt at n=16, 60 requests on 2 devices, guard on,
    {!Inject.default_spec}, default recovery. *)

type metrics = {
  requests : int;
  injected_faults : int;
  faulty_devices : int;
  detected : int;  (** corrupt attempts caught by the ABFT guard *)
  sdc : int;  (** silent corruptions that reached a client *)
  completed : int;
  completed_after_retry : int;
  recovered_host : int;
  cpu_fallbacks : int;
  rejected : int;
  failed : int;
  quarantined : int list;  (** devices pulled from rotation *)
  detection_rate : float;  (** detected / (detected + sdc); 1.0 when clean *)
  sdc_rate : float;  (** sdc / served *)
  latency_overhead : float;  (** mean served latency vs fault-free baseline *)
  makespan_overhead : float;
}

type run = {
  config : config;
  trace : Tdo_serve.Trace.t;
  faulty : Tdo_serve.Scheduler.report;
  baseline : Tdo_serve.Scheduler.report;  (** same pool, no faults *)
  metrics : metrics;
}

val trace_of : config -> Tdo_serve.Trace.t
(** The campaign's request trace (deterministic in [config.seed]). *)

val scheduler_config : config -> faults:bool -> Tdo_serve.Scheduler.config
(** The serving configuration a campaign replays under; [faults]
    selects whether the {!Inject} hook is installed. *)

val interp_checksum : Tdo_serve.Trace.request -> string option
(** Host-interpreter oracle digest for one request ([None] for an
    unknown kernel). *)

val run : ?config:config -> unit -> run
