(** Energy and latency constants of the paper's Table I.

    Per-event costs are given at the reference crossbar geometry
    (256x256); the ledger scales events that only exercise part of the
    array (a GEMV reading [r] rows and sensing [c] columns pays
    proportionally for integration, conversion and engine control). *)

type t = {
  crossbar_compute_j_per_mac : float;  (** 200 fJ per 8-bit MAC *)
  crossbar_write_j_per_byte : float;  (** 200 pJ per 8-bit cell pair *)
  mixed_signal_j_per_full_gemv : float;
      (** 3.9 nJ for a full-width GEMV = all columns sensed through the
          shared S&H/ADC chain *)
  buffer_j_per_byte : float;  (** 5.4 pJ per input/output buffer byte *)
  weighted_sum_j_per_gemv : float;  (** 40 pJ digital MSB/LSB combine *)
  alu_j_per_op : float;  (** 2.11 pJ per extra digital ALU operation *)
  dma_engine_j_per_full_gemv : float;
      (** < 0.78 nJ DMA + micro-engine control per full-depth GEMV *)
  host_j_per_instruction : float;  (** 128 pJ/inst including caches *)
  reference_rows : int;
  reference_cols : int;
  compute_latency_s : float;  (** 1 us full-array GEMV *)
  write_latency_s : float;  (** 2.5 us per row write *)
}

val ibm_pcm_a7 : t
(** The configuration of Table I. *)

val digital_cim_tile : t
(** A digital SRAM-based CIM tile in the same envelope: ~10x the
    compute energy per MAC and 4x the GEMV latency of the analog
    crossbar, but SRAM-priced writes (10 pJ/byte, 20 ns/row) and no
    drift or wear. The device-class fleet prices digital tiles with
    this table. *)

val rows : t -> (string * string) list
(** Printable (parameter, value) pairs reproducing Table I. *)
