type t = {
  crossbar_compute_j_per_mac : float;
  crossbar_write_j_per_byte : float;
  mixed_signal_j_per_full_gemv : float;
  buffer_j_per_byte : float;
  weighted_sum_j_per_gemv : float;
  alu_j_per_op : float;
  dma_engine_j_per_full_gemv : float;
  host_j_per_instruction : float;
  reference_rows : int;
  reference_cols : int;
  compute_latency_s : float;
  write_latency_s : float;
}

let ibm_pcm_a7 =
  {
    crossbar_compute_j_per_mac = 200e-15;
    crossbar_write_j_per_byte = 200e-12;
    mixed_signal_j_per_full_gemv = 3.9e-9;
    buffer_j_per_byte = 5.4e-12;
    weighted_sum_j_per_gemv = 40e-12;
    alu_j_per_op = 2.11e-12;
    dma_engine_j_per_full_gemv = 0.78e-9;
    host_j_per_instruction = 128e-12;
    reference_rows = 256;
    reference_cols = 256;
    compute_latency_s = 1e-6;
    write_latency_s = 2.5e-6;
  }

(* A digital SRAM-based CIM tile in the same 256x256 envelope (CIMFlow
   style): exact integer MAC arrays clocked off the host PLL. Digital
   MACs burn ~10x the analog crossbar's energy and a full-array GEMV
   integrates ~4x slower (adder-tree reduction instead of Kirchhoff
   summation), but writes are ordinary SRAM stores — ~20x cheaper per
   byte and 125x faster per row — and the cells neither drift nor wear
   out. *)
let digital_cim_tile =
  {
    crossbar_compute_j_per_mac = 2e-12;
    crossbar_write_j_per_byte = 10e-12;
    (* no analog S&H/ADC chain; the digital read-out path is folded
       into the per-MAC figure, leaving a small sequencing cost *)
    mixed_signal_j_per_full_gemv = 0.4e-9;
    buffer_j_per_byte = 5.4e-12;
    weighted_sum_j_per_gemv = 40e-12;
    alu_j_per_op = 2.11e-12;
    dma_engine_j_per_full_gemv = 0.78e-9;
    host_j_per_instruction = 128e-12;
    reference_rows = 256;
    reference_cols = 256;
    compute_latency_s = 4e-6;
    write_latency_s = 20e-9;
  }

let rows t =
  let si = Tdo_util.Pretty.si_float ~digits:2 in
  [
    ( "PCM crossbar technology",
      Printf.sprintf "%dx%d @8-bit (2x %dx%d @4-bit IBM PCM)" t.reference_rows t.reference_cols
        t.reference_rows t.reference_cols );
    ("Compute latency / 8-bit GEMV", si t.compute_latency_s ^ "s");
    ("Write latency / row", si t.write_latency_s ^ "s");
    ("Compute energy / 8-bit MAC", si t.crossbar_compute_j_per_mac ^ "J");
    ("Write energy / 8-bit", si t.crossbar_write_j_per_byte ^ "J");
    ("Mixed-signal circuit / full GEMV", si t.mixed_signal_j_per_full_gemv ^ "J");
    ("Input/output buffer / byte access", si t.buffer_j_per_byte ^ "J");
    ("Digital weighted sum / GEMV", si t.weighted_sum_j_per_gemv ^ "J");
    ("Extra digital ALU op", si t.alu_j_per_op ^ "J");
    ("DMA + micro-engine / full GEMV", si t.dma_engine_j_per_full_gemv ^ "J");
    ("Host (2x Arm-A7 @1.2 GHz) / instruction", si t.host_j_per_instruction ^ "J");
    ("Host caches", "L1-I/D 32 KB, L2 2 MB shared");
    ("Main memory", "2 GB LPDDR3 @933 MHz");
  ]
