(* Per-call fan-out rather than a resident worker pool: experiment
   tasks are coarse (tens of milliseconds to seconds), so the ~50 us it
   costs to spawn a domain is noise, and joining the domains before
   returning keeps the failure and shutdown story trivial — no at_exit
   teardown, no orphaned workers, exceptions surface at the call
   site. *)

(* [Domain.recommended_domain_count] is allowed to report anything the
   OS hands it, including 0 on containers with broken cgroup limits —
   clamp so a degenerate report never disables the pool outright. An
   explicit [TDO_DOMAINS=<n>] wins over the runtime's guess; it is read
   on every call so tests can flip it with [Unix.putenv]. *)
let size () =
  match Sys.getenv_opt "TDO_DOMAINS" with
  | Some s ->
      (match int_of_string_opt (String.trim s) with
      | Some n -> max 1 n
      | None -> max 1 (Domain.recommended_domain_count ()))
  | None -> max 1 (Domain.recommended_domain_count ())

let sequential_override = ref None

let set_sequential o = sequential_override := o

let env_sequential = lazy (Sys.getenv_opt "TDO_SEQUENTIAL" = Some "1")

let sequential () =
  match !sequential_override with
  | Some b -> b
  | None -> Lazy.force env_sequential

(* set on worker domains so nested maps degrade to List.map instead of
   spawning domains recursively *)
let in_worker = Domain.DLS.new_key (fun () -> false)

let parallel_map ?workers f xs =
  let n = List.length xs in
  let w = min n (match workers with Some w -> max 1 w | None -> size ()) in
  if w <= 1 || n <= 1 || sequential () || Domain.DLS.get in_worker then List.map f xs
  else begin
    let input = Array.of_list xs in
    let results = Array.make n None in
    let errors = Array.make n None in
    (* the work queue: tasks are claimed by index, one atomic increment
       per task, no locks *)
    let next = Atomic.make 0 in
    let work () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          match f (Array.unsafe_get input i) with
          | v -> results.(i) <- Some v
          | exception e -> errors.(i) <- Some e
      done
    in
    let domains =
      List.init (w - 1) (fun _ ->
          Domain.spawn (fun () ->
              Domain.DLS.set in_worker true;
              work ()))
    in
    (* the caller is a worker too *)
    work ();
    List.iter Domain.join domains;
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.to_list (Array.map Option.get results)
  end
