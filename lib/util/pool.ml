(* Per-call fan-out rather than a resident worker pool: experiment
   tasks are coarse (tens of milliseconds to seconds), so the ~50 us it
   costs to spawn a domain is noise, and joining the domains before
   returning keeps the failure and shutdown story trivial — no at_exit
   teardown, no orphaned workers, exceptions surface at the call
   site. *)

(* [Domain.recommended_domain_count] is allowed to report anything the
   OS hands it, including 0 on containers with broken cgroup limits —
   clamp so a degenerate report never disables the pool outright. The
   recommendation probes the OS (cgroup files, sysconf), so it is
   computed once and cached; an explicit [TDO_DOMAINS=<n>] wins over
   the runtime's guess and is still read on every call so tests can
   flip it with [Unix.putenv]. *)
let recommended = lazy (max 1 (Domain.recommended_domain_count ()))

let size () =
  match Sys.getenv_opt "TDO_DOMAINS" with
  | Some s ->
      (match int_of_string_opt (String.trim s) with
      | Some n -> max 1 n
      | None -> Lazy.force recommended)
  | None -> Lazy.force recommended

let sequential_override = ref None

let set_sequential o = sequential_override := o

let env_sequential = lazy (Sys.getenv_opt "TDO_SEQUENTIAL" = Some "1")

let sequential () =
  match !sequential_override with
  | Some b -> b
  | None -> Lazy.force env_sequential

(* set on worker domains so nested maps degrade to List.map instead of
   spawning domains recursively *)
let in_worker = Domain.DLS.new_key (fun () -> false)

(* One scratch arena per domain, created on first use. The calling
   domain's arena persists across maps; worker domains are per-call, so
   they would lose their warmed buffer pools on every join — instead a
   spawned worker checks an arena out of the shared registry below for
   the duration of the map and returns it at the end, so the same
   arenas (and their pooled blocks) circulate across fan-outs. *)
let scratch_key = Domain.DLS.new_key (fun () -> Arena.create ())

let scratch () = Domain.DLS.get scratch_key

(* Checkout is mutually exclusive per arena: a busy flag flips under
   the registry lock, so even if two independent domains fan out
   concurrently, no arena is ever shared — a second fan-out simply
   grows the registry. *)
let worker_arenas : (Arena.t * bool ref) list ref = ref []
let worker_arenas_lock = Mutex.create ()

let checkout_arena () =
  Mutex.protect worker_arenas_lock (fun () ->
      match List.find_opt (fun (_, busy) -> not !busy) !worker_arenas with
      | Some (a, busy) ->
          busy := true;
          (a, busy)
      | None ->
          let entry = (Arena.create (), ref true) in
          worker_arenas := entry :: !worker_arenas;
          entry)

let return_arena (_, busy) = Mutex.protect worker_arenas_lock (fun () -> busy := false)

let parallel_map ?workers f xs =
  let n = List.length xs in
  let w = min n (match workers with Some w -> max 1 w | None -> size ()) in
  if w <= 1 || n <= 1 || sequential () || Domain.DLS.get in_worker then List.map f xs
  else begin
    let input = Array.of_list xs in
    (* Every index below [n] is written exactly once before the join,
       so the never-observed initial value can be a sentinel instead of
       [None] — no [Some] box per task. The array is built and read
       with generic (tag-dispatched) accesses because ['b] is
       polymorphic here, so the unit sentinel is safe even when ['b]
       turns out to be [float]. *)
    let results : 'b array = Array.make n (Obj.magic () : 'b) in
    let errors = Array.make n None in
    (* the work queue: indices are claimed in chunks, so a map over
       many small tasks pays one atomic operation per [chunk] tasks
       instead of one per task; the chunk stays small relative to n/w
       so the tail still balances *)
    let chunk = max 1 (n / (8 * w)) in
    let next = Atomic.make 0 in
    let work () =
      let continue = ref true in
      while !continue do
        let base = Atomic.fetch_and_add next chunk in
        if base >= n then continue := false
        else
          for i = base to min (base + chunk) n - 1 do
            match f (Array.unsafe_get input i) with
            | v -> results.(i) <- v
            | exception e -> errors.(i) <- Some e
          done
      done
    in
    let domains =
      List.init (w - 1) (fun _ ->
          Domain.spawn (fun () ->
              Domain.DLS.set in_worker true;
              let entry = checkout_arena () in
              Domain.DLS.set scratch_key (fst entry);
              Fun.protect ~finally:(fun () -> return_arena entry) work))
    in
    (* the caller is a worker too *)
    work ();
    List.iter Domain.join domains;
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.to_list results
  end
