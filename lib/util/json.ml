type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char b '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char b '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char b '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
          | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
          | Some 'b' -> Buffer.add_char b '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char b '\012'; advance (); go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              let code =
                try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
              in
              (* ASCII-plane escapes only: everything the writers emit *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else Buffer.add_char b '?';
              pos := !pos + 4;
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some v -> v
    | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (key, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or } in object"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ] in array"
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) -> Error (Printf.sprintf "json: at byte %d: %s" at msg)

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> parse contents
  | exception Sys_error msg -> Error msg

(* ---------- accessors ---------- *)

let member name = function Obj fields -> List.assoc_opt name fields | _ -> None

let to_float = function
  | Num v -> Some v
  | Bool b -> Some (if b then 1.0 else 0.0)
  | Null | Str _ | Arr _ | Obj _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
let to_list = function Arr xs -> xs | _ -> []

(* ---------- emission ---------- *)

let escape_string s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let number v =
  if Float.is_nan v || Float.abs v = Float.infinity then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let rec to_string = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Num v -> number v
  | Str s -> "\"" ^ escape_string s ^ "\""
  | Arr xs -> "[" ^ String.concat ", " (List.map to_string xs) ^ "]"
  | Obj fields ->
      "{"
      ^ String.concat ", "
          (List.map (fun (k, v) -> "\"" ^ escape_string k ^ "\": " ^ to_string v) fields)
      ^ "}"
