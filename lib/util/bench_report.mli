(** Machine-readable benchmark reports (BENCH_sim.json).

    The driver binaries time their experiment sections — once with the
    {!Pool} fan-out and once forced sequential — and serialise
    wall-clock, allocation and speedup numbers as JSON. The writer is
    hand-rolled: the schema is flat and the repo takes no JSON
    dependency for it. *)

type measure = {
  elapsed_s : float;  (** wall-clock seconds *)
  minor : float;  (** minor-heap words allocated *)
  major : float;  (** major-heap words allocated (incl. promotions) *)
  promoted : float;  (** words promoted minor -> major *)
}

type section = {
  name : string;
  wall_s : float;  (** wall-clock of the (possibly parallel) run *)
  minor_words : float;  (** minor-heap words allocated during the run *)
  major_words : float;  (** major-heap words allocated during the run *)
  promoted_words : float;  (** words promoted minor -> major during the run *)
  domains : int;  (** {!Pool.size} when the section was measured *)
  seq_wall_s : float option;  (** same work with {!Pool} forced sequential *)
}

val timed : (unit -> 'a) -> 'a * measure
(** [timed f] runs [f] and returns its result plus wall-clock and
    GC counters ([Gc.quick_stat] deltas) for the run. *)

val of_measure : name:string -> ?seq_wall_s:float -> measure -> section
(** Promote a {!timed} measurement to a report section, stamping the
    current {!Pool.size}. *)

val section : name:string -> ?seq_wall_s:float -> (unit -> 'a) -> 'a * section

val speedup_vs_sequential : section -> float option
(** [seq_wall_s / wall_s] when the sequential timing is present. *)

val write :
  path:string ->
  ?micro:(string * float) list ->
  ?extra:(string * float) list ->
  ?notes:string ->
  sections:section list ->
  unit ->
  unit
(** Write the report. [micro] holds micro-benchmark estimates as
    [(name, ns per run)]; [extra] holds free-form numeric facts (e.g. a
    recorded baseline). Always records the domain count ({!Pool.size})
    and whether the pool was forced sequential. *)

(** {1 Comparing against a previous report}

    The driver binaries historically computed speedups against recorded
    baselines with ad-hoc float arithmetic; [compare] centralises it:
    load the previous [BENCH_*.json], match sections by name, and emit
    per-entry delta/regression fields ready for [write]'s [~extra]. *)

type delta = {
  name : string;  (** section name present in both reports *)
  wall_s : float;  (** this run *)
  baseline_wall_s : float;  (** previous report *)
  delta_s : float;  (** [wall_s - baseline_wall_s] *)
  speedup_vs_baseline : float;  (** [baseline_wall_s / wall_s] *)
  regression : bool;  (** this run slower than baseline by more than the tolerance *)
  minor_words : float;  (** this run's minor-heap allocation *)
  baseline_minor_words : float;  (** previous report's; 0 when absent *)
  alloc_regression : bool;
      (** this run allocated more than the baseline by more than
          [alloc_tolerance] (only when the baseline recorded a non-zero
          figure — allocation is deterministic, so this catches perf
          regressions that wall-clock noise on small machines hides) *)
}

val load_sections : path:string -> (section list, string) result
(** Read the [sections] array of a previously written report.
    [seq_wall_s] round-trips; derived fields are ignored. *)

val load_extra : path:string -> ((string * float) list, string) result
(** Top-level numeric fields of a previously written report (the
    [~extra] values, plus [domains]). *)

val compare :
  ?tolerance:float ->
  ?alloc_tolerance:float ->
  baseline:string ->
  section list ->
  (delta list, string) result
(** Match [sections] by name against the report at [baseline] (a path).
    Sections missing from either side are skipped. [tolerance]
    (default 0.10) is the relative slowdown above which [regression]
    is set; [alloc_tolerance] (default 0.25) likewise for
    [alloc_regression]. [Error] reports an unreadable or malformed
    baseline. *)

val delta_fields : delta list -> (string * float) list
(** Flatten deltas for [write ~extra]: per section,
    [<name>_baseline_wall_s], [<name>_delta_s],
    [<name>_speedup_vs_baseline], [<name>_regression] (0/1),
    [<name>_baseline_minor_words] and [<name>_alloc_regression] (0/1). *)
