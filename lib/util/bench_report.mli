(** Machine-readable benchmark reports (BENCH_sim.json).

    The driver binaries time their experiment sections — once with the
    {!Pool} fan-out and once forced sequential — and serialise
    wall-clock, allocation and speedup numbers as JSON. The writer is
    hand-rolled: the schema is flat and the repo takes no JSON
    dependency for it. *)

type section = {
  name : string;
  wall_s : float;  (** wall-clock of the (possibly parallel) run *)
  minor_words : float;  (** minor-heap words allocated during the run *)
  seq_wall_s : float option;  (** same work with {!Pool} forced sequential *)
}

val timed : (unit -> 'a) -> 'a * float * float
(** [timed f] runs [f] and returns [(result, wall seconds,
    minor words allocated)]. *)

val section : name:string -> ?seq_wall_s:float -> (unit -> 'a) -> 'a * section

val speedup_vs_sequential : section -> float option
(** [seq_wall_s / wall_s] when the sequential timing is present. *)

val write :
  path:string ->
  ?micro:(string * float) list ->
  ?extra:(string * float) list ->
  ?notes:string ->
  sections:section list ->
  unit ->
  unit
(** Write the report. [micro] holds micro-benchmark estimates as
    [(name, ns per run)]; [extra] holds free-form numeric facts (e.g. a
    recorded baseline). Always records the domain count ({!Pool.size})
    and whether the pool was forced sequential. *)
