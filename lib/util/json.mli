(** A minimal JSON reader/writer.

    The repo takes no JSON dependency; the benchmark reports
    ({!Bench_report}) and the autotuner's configuration database
    ({!Tdo_tune.Db}) write hand-rolled JSON and read it back through
    this parser. The subset is complete for those schemas: objects,
    arrays, strings, numbers, booleans and null, with the usual string
    escapes ([\uXXXX] limited to the ASCII plane). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** [Error] carries the byte offset and a short description. *)

val of_file : string -> (t, string) result
(** {!parse} on a whole file; I/O errors become [Error]. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** First binding of the name in an [Obj]; [None] otherwise. *)

val to_float : t -> float option
(** [Num] and [Bool] (0/1); [None] otherwise. *)

val to_string_opt : t -> string option
val to_list : t -> t list
(** [Arr] elements; [[]] for any other constructor. *)

(** {1 Emission} *)

val escape_string : string -> string
(** Body of a JSON string literal (no surrounding quotes). *)

val number : float -> string
(** Integral floats print without a fraction; NaN/infinities, which
    JSON cannot represent, print as [null]. *)

val to_string : t -> string
(** Compact single-line rendering; [parse (to_string v)] round-trips
    modulo float formatting precision. *)
