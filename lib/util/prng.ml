type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* splitmix64: fast, good statistical quality, trivially seedable.
   Inlined into callers so the Int64 mixing chain and the float/int
   results stay unboxed there; only the state store itself boxes. *)
let[@inline always] next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let[@inline always] int t ~bound =
  assert (bound > 0);
  (* Reduce in Int64: a logical shift by 1 still exceeds the native-int
     range, so converting before the reduction would wrap negative. *)
  let r = Int64.shift_right_logical (next_int64 t) 1 in
  Int64.to_int (Int64.rem r (Int64.of_int bound))

let[@inline always] float t ~bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  (* 53 significant bits, as in the stdlib. *)
  r /. 9007199254740992.0 *. bound

let[@inline always] float_range t ~lo ~hi =
  assert (lo <= hi);
  lo +. float t ~bound:(hi -. lo)

let gaussian t ~mu ~sigma =
  let u1 = Float.max 1e-12 (float t ~bound:1.0) in
  let u2 = float t ~bound:1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
