(* Exact-size pooling rather than a bump pointer over raw bytes: the
   simulation's recurring scratch shapes (slot tables, 64 KB memory
   chunks, crossbar row buffers) are requested with the same handful of
   lengths run after run, so a per-length free list gives O(1) acquire
   and O(1) reuse without any pointer arithmetic or unsafe casts, and
   [reset] is a counter sweep over the few dozen live buckets. Blocks
   are handed out dirty; a consumer that needs zeroed storage (the
   sparse memory model) clears the block itself. *)

type 'a bucket = {
  mutable blocks : 'a array;  (** slots [0, live) hold allocated blocks *)
  mutable live : int;
  mutable handed : int;  (** blocks handed out since the last [reset] *)
}

type stats = { fresh : int; reused : int; live_words : int }

type t = {
  ints : (int, int array bucket) Hashtbl.t;
  floats : (int, float array bucket) Hashtbl.t;
  bytes : (int, Bytes.t bucket) Hashtbl.t;
  mutable fresh : int;
  mutable reused : int;
  mutable live_words : int;
}

let create () =
  {
    ints = Hashtbl.create 16;
    floats = Hashtbl.create 16;
    bytes = Hashtbl.create 16;
    fresh = 0;
    reused = 0;
    live_words = 0;
  }

let bucket table n =
  match Hashtbl.find_opt table n with
  | Some b -> b
  | None ->
      let b = { blocks = [||]; live = 0; handed = 0 } in
      Hashtbl.add table n b;
      b

(* The grown backing array is filled with the block being stored, so no
   dummy value of type ['a] is ever needed. *)
let store b x =
  if b.live = Array.length b.blocks then begin
    let blocks = Array.make (max 4 (2 * b.live)) x in
    Array.blit b.blocks 0 blocks 0 b.live;
    b.blocks <- blocks
  end;
  b.blocks.(b.live) <- x;
  b.live <- b.live + 1;
  b.handed <- b.handed + 1

let acquire t table n ~make ~words =
  if n < 0 then invalid_arg "Arena: negative length";
  let b = bucket table n in
  if b.handed < b.live then begin
    let x = b.blocks.(b.handed) in
    b.handed <- b.handed + 1;
    t.reused <- t.reused + 1;
    x
  end
  else begin
    let x = make n in
    store b x;
    t.fresh <- t.fresh + 1;
    t.live_words <- t.live_words + words;
    x
  end

let int_array t n = acquire t t.ints n ~make:(fun n -> Array.make n 0) ~words:(n + 1)
let float_array t n = acquire t t.floats n ~make:(fun n -> Array.make n 0.0) ~words:(n + 1)

let bytes t n =
  acquire t t.bytes n ~make:Bytes.create ~words:(((n + Sys.word_size / 8) / (Sys.word_size / 8)) + 1)

let reset t =
  let sweep : 'a. (int, 'a bucket) Hashtbl.t -> unit =
   fun table -> Hashtbl.iter (fun _ b -> b.handed <- 0) table
  in
  sweep t.ints;
  sweep t.floats;
  sweep t.bytes

let stats t = { fresh = t.fresh; reused = t.reused; live_words = t.live_words }
