(** Multicore work pool for embarrassingly parallel experiment sweeps.

    [parallel_map] fans a list of independent tasks out over OCaml 5
    domains and returns the results in input order, so a caller that
    seeds each task deterministically (explicit PRNG seeds, no shared
    mutable state) gets bit-identical output regardless of how many
    domains run or how the scheduler interleaves them.

    Escape hatches: setting [TDO_SEQUENTIAL=1] in the environment (or
    calling {!set_sequential}[ (Some true)]) forces every map to run on
    the calling domain — useful for debugging, timing baselines and
    the determinism tests that compare both modes — and
    [TDO_DOMAINS=<n>] pins the domain count regardless of what the
    runtime recommends. *)

val size : unit -> int
(** Number of domains a map may use: [TDO_DOMAINS] when set to an
    integer, otherwise [Domain.recommended_domain_count]. Always at
    least 1, even when either source is degenerate (0, negative, or
    unparsable). The environment variable is re-read on every call;
    the recommendation (an OS probe) is computed once and cached. *)

val sequential : unit -> bool
(** [true] when maps are forced sequential — by {!set_sequential} or,
    absent an override, by [TDO_SEQUENTIAL=1] in the environment. *)

val set_sequential : bool option -> unit
(** [Some true] forces sequential execution, [Some false] forces
    parallel, [None] restores the [TDO_SEQUENTIAL] environment
    default. *)

val scratch : unit -> Arena.t
(** The calling domain's scratch {!Arena}, created on first use
    (DLS-keyed, one per domain — inside a [parallel_map] worker this is
    an arena the worker checked out of a shared registry for the
    duration of the map, so worker arenas and their warmed buffer pools
    survive across fan-outs even though the domains themselves are
    per-call). The simulation drivers reset it at the start of each run
    so repeated simulations on one domain reuse the same buffers; see
    DESIGN.md "Memory discipline" for what may not outlive that
    reset. *)

val parallel_map : ?workers:int -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map f xs] is [List.map f xs] computed by up to
    [?workers] (default {!size}[ ()]) domains, the calling domain
    included. Results keep input order. If any [f x] raises, the whole
    map raises the exception of the earliest failing element — after
    every task has finished, so no task is abandoned mid-flight.

    Tasks are claimed from a shared atomic cursor in chunks of
    [max 1 (n / (8 * workers))] indices, so large maps of small tasks
    pay one atomic operation per chunk rather than per task.

    Nested calls from inside a worker run sequentially instead of
    spawning further domains, so the pool cannot explode or deadlock
    under composition. *)
