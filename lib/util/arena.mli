(** Reusable scratch regions for the simulation hot loops.

    An arena is a per-domain pool of preallocated blocks — int arrays,
    float arrays and byte buffers — keyed by exact length. [reset]
    returns every block to its pool in O(live buckets) without freeing
    anything, so a worker that simulates thousands of configuration
    points reuses the same slot tables, memory chunks and row buffers
    instead of churning the minor heap.

    Discipline (see DESIGN.md, "Memory discipline"):

    - Blocks are handed out {e dirty}: the previous user's data is
      still in them. Consumers that need zeroed storage clear the block
      on acquisition.
    - A block is valid from its acquisition until the next [reset] of
      the arena it came from. Nothing acquired from an arena may be
      reachable after that reset — results must be copied out first.
    - Arenas are single-domain. {!Pool.scratch} hands each domain its
      own; never share one across domains. *)

type t

val create : unit -> t

val reset : t -> unit
(** Return every outstanding block to its pool. Amortised O(1) per
    acquisition (a counter sweep over the live size classes); no memory
    is released. *)

val int_array : t -> int -> int array
(** [int_array t n] is an [int array] of length exactly [n], reused
    from the pool when one of that length was acquired before the last
    [reset]. Contents are unspecified. *)

val float_array : t -> int -> float array
(** Same, for unboxed float arrays. *)

val bytes : t -> int -> Bytes.t
(** Same, for byte buffers. *)

type stats = {
  fresh : int;  (** blocks allocated because no pooled one fit *)
  reused : int;  (** acquisitions served from the pool *)
  live_words : int;  (** approximate words held across all pools *)
}

val stats : t -> stats
