type measure = {
  elapsed_s : float;
  minor : float;
  major : float;
  promoted : float;
}

type section = {
  name : string;
  wall_s : float;
  minor_words : float;
  major_words : float;
  promoted_words : float;
  domains : int;
  seq_wall_s : float option;
}

let timed f =
  let s0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let s1 = Gc.quick_stat () in
  ( result,
    {
      elapsed_s;
      minor = s1.Gc.minor_words -. s0.Gc.minor_words;
      major = s1.Gc.major_words -. s0.Gc.major_words;
      promoted = s1.Gc.promoted_words -. s0.Gc.promoted_words;
    } )

let of_measure ~name ?seq_wall_s (m : measure) =
  {
    name;
    wall_s = m.elapsed_s;
    minor_words = m.minor;
    major_words = m.major;
    promoted_words = m.promoted;
    domains = Pool.size ();
    seq_wall_s;
  }

let section ~name ?seq_wall_s f =
  let result, m = timed f in
  (result, of_measure ~name ?seq_wall_s m)

let speedup_vs_sequential s =
  match s.seq_wall_s with
  | Some seq when s.wall_s > 0.0 -> Some (seq /. s.wall_s)
  | _ -> None

(* ---------- JSON emission ---------- *)

let escape = Json.escape_string
let number = Json.number

let field b ~last name value =
  Buffer.add_string b (Printf.sprintf "    \"%s\": %s%s\n" (escape name) value
                         (if last then "" else ","))

let write ~path ?(micro = []) ?(extra = []) ?notes ~sections () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"tdo-cim-bench/1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"domains\": %d,\n" (Pool.size ()));
  Buffer.add_string b
    (Printf.sprintf "  \"sequential\": %b,\n" (Pool.sequential ()));
  Option.iter
    (fun n -> Buffer.add_string b (Printf.sprintf "  \"notes\": \"%s\",\n" (escape n)))
    notes;
  List.iter
    (fun (name, v) ->
      Buffer.add_string b (Printf.sprintf "  \"%s\": %s,\n" (escape name) (number v)))
    extra;
  Buffer.add_string b "  \"sections\": [";
  List.iteri
    (fun i s ->
      Buffer.add_string b (if i = 0 then "\n" else ",\n");
      Buffer.add_string b "  {\n";
      field b ~last:false "name" (Printf.sprintf "\"%s\"" (escape s.name));
      field b ~last:false "wall_s" (number s.wall_s);
      (match s.seq_wall_s with
      | Some seq -> field b ~last:false "seq_wall_s" (number seq)
      | None -> ());
      (match speedup_vs_sequential s with
      | Some sp -> field b ~last:false "speedup_vs_sequential" (number sp)
      | None -> ());
      field b ~last:false "minor_words" (number s.minor_words);
      field b ~last:false "major_words" (number s.major_words);
      field b ~last:false "promoted_words" (number s.promoted_words);
      field b ~last:true "domains" (string_of_int s.domains);
      Buffer.add_string b "  }")
    sections;
  Buffer.add_string b "\n  ]";
  if micro <> [] then begin
    Buffer.add_string b ",\n  \"microbenchmarks\": [";
    List.iteri
      (fun i (name, ns) ->
        Buffer.add_string b (if i = 0 then "\n" else ",\n");
        Buffer.add_string b
          (Printf.sprintf "  { \"name\": \"%s\", \"ns_per_run\": %s }" (escape name)
             (number ns)))
      micro;
    Buffer.add_string b "\n  ]"
  end;
  Buffer.add_string b "\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc

(* ---------- comparison against a previous report ---------- *)

type delta = {
  name : string;
  wall_s : float;
  baseline_wall_s : float;
  delta_s : float;
  speedup_vs_baseline : float;
  regression : bool;
  minor_words : float;
  baseline_minor_words : float;
  alloc_regression : bool;
}

let load_sections ~path =
  Result.map
    (fun json ->
      Json.member "sections" json |> Option.value ~default:(Json.Arr []) |> Json.to_list
      |> List.filter_map (fun s ->
             match
               ( Option.bind (Json.member "name" s) Json.to_string_opt,
                 Option.bind (Json.member "wall_s" s) Json.to_float )
             with
             | Some name, Some wall_s ->
                 let num key =
                   Option.bind (Json.member key s) Json.to_float
                   |> Option.value ~default:0.0
                 in
                 Some
                   {
                     name;
                     wall_s;
                     minor_words = num "minor_words";
                     major_words = num "major_words";
                     promoted_words = num "promoted_words";
                     domains = int_of_float (num "domains");
                     seq_wall_s = Option.bind (Json.member "seq_wall_s" s) Json.to_float;
                   }
             | _ -> None))
    (Json.of_file path)

let load_extra ~path =
  Result.map
    (fun json ->
      match json with
      | Json.Obj fields ->
          List.filter_map
            (fun (k, v) -> Option.map (fun f -> (k, f)) (Json.to_float v))
            fields
      | _ -> [])
    (Json.of_file path)

let compare ?(tolerance = 0.10) ?(alloc_tolerance = 0.25) ~baseline sections =
  Result.map
    (fun old_sections ->
      List.filter_map
        (fun (s : section) ->
          List.find_opt (fun (o : section) -> String.equal o.name s.name) old_sections
          |> Option.map (fun (o : section) ->
                 {
                   name = s.name;
                   wall_s = s.wall_s;
                   baseline_wall_s = o.wall_s;
                   delta_s = s.wall_s -. o.wall_s;
                   speedup_vs_baseline =
                     (if s.wall_s > 0.0 then o.wall_s /. s.wall_s else Float.infinity);
                   regression = s.wall_s > o.wall_s *. (1.0 +. tolerance);
                   minor_words = s.minor_words;
                   baseline_minor_words = o.minor_words;
                   alloc_regression =
                     o.minor_words > 0.0
                     && s.minor_words > o.minor_words *. (1.0 +. alloc_tolerance);
                 }))
        sections)
    (load_sections ~path:baseline)

let delta_fields deltas =
  List.concat_map
    (fun d ->
      [
        (d.name ^ "_baseline_wall_s", d.baseline_wall_s);
        (d.name ^ "_delta_s", d.delta_s);
        (d.name ^ "_speedup_vs_baseline", d.speedup_vs_baseline);
        (d.name ^ "_regression", if d.regression then 1.0 else 0.0);
        (d.name ^ "_baseline_minor_words", d.baseline_minor_words);
        (d.name ^ "_alloc_regression", if d.alloc_regression then 1.0 else 0.0);
      ])
    deltas
