type section = {
  name : string;
  wall_s : float;
  minor_words : float;
  seq_wall_s : float option;
}

let timed f =
  let words0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let wall = Unix.gettimeofday () -. t0 in
  (result, wall, Gc.minor_words () -. words0)

let section ~name ?seq_wall_s f =
  let result, wall_s, minor_words = timed f in
  (result, { name; wall_s; minor_words; seq_wall_s })

let speedup_vs_sequential s =
  match s.seq_wall_s with
  | Some seq when s.wall_s > 0.0 -> Some (seq /. s.wall_s)
  | _ -> None

(* ---------- JSON emission ---------- *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let number v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let field b ~last name value =
  Buffer.add_string b (Printf.sprintf "    \"%s\": %s%s\n" (escape name) value
                         (if last then "" else ","))

let write ~path ?(micro = []) ?(extra = []) ?notes ~sections () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"tdo-cim-bench/1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"domains\": %d,\n" (Pool.size ()));
  Buffer.add_string b
    (Printf.sprintf "  \"sequential\": %b,\n" (Pool.sequential ()));
  Option.iter
    (fun n -> Buffer.add_string b (Printf.sprintf "  \"notes\": \"%s\",\n" (escape n)))
    notes;
  List.iter
    (fun (name, v) ->
      Buffer.add_string b (Printf.sprintf "  \"%s\": %s,\n" (escape name) (number v)))
    extra;
  Buffer.add_string b "  \"sections\": [";
  List.iteri
    (fun i s ->
      Buffer.add_string b (if i = 0 then "\n" else ",\n");
      Buffer.add_string b "  {\n";
      field b ~last:false "name" (Printf.sprintf "\"%s\"" (escape s.name));
      field b ~last:false "wall_s" (number s.wall_s);
      (match s.seq_wall_s with
      | Some seq -> field b ~last:false "seq_wall_s" (number seq)
      | None -> ());
      (match speedup_vs_sequential s with
      | Some sp -> field b ~last:false "speedup_vs_sequential" (number sp)
      | None -> ());
      field b ~last:true "minor_words" (number s.minor_words);
      Buffer.add_string b "  }")
    sections;
  Buffer.add_string b "\n  ]";
  if micro <> [] then begin
    Buffer.add_string b ",\n  \"microbenchmarks\": [";
    List.iteri
      (fun i (name, ns) ->
        Buffer.add_string b (if i = 0 then "\n" else ",\n");
        Buffer.add_string b
          (Printf.sprintf "  { \"name\": \"%s\", \"ns_per_run\": %s }" (escape name)
             (number ns)))
      micro;
    Buffer.add_string b "\n  ]"
  end;
  Buffer.add_string b "\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc
