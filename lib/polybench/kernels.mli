(** The PolyBench/C kernels of the paper's evaluation (Fig. 6): 2mm,
    3mm, gemm, conv, gesummv, bicg, mvt — as mini-C sources
    parameterised by the problem size.

    Porting notes (documented in DESIGN.md): kernels that PolyBench
    writes with two statements inside one loop nest (bicg, gesummv,
    mvt in some variants) are expressed as consecutive single-statement
    nests computing the same function — the form the paper's own
    kernel-granularity detection operates on. *)

module Interp = Tdo_lang.Interp
module Mat = Tdo_linalg.Mat

type kind = Gemm_like | Gemv_like
(** The paper's grouping: GEMM-like kernels profit from CIM, GEMV-like
    kernels lose to offload overhead. *)

type benchmark = {
  name : string;
  description : string;
  kind : kind;
  source : n:int -> string;
  macs : n:int -> int;  (** multiply-accumulate count of the kernel *)
  make_args : n:int -> seed:int -> (string * Interp.value) list * (unit -> Mat.t list);
      (** fresh argument bindings (deterministic in [seed]) and a
          readback closure returning the output arrays (vectors as
          n x 1 matrices) *)
}

val random_arr : Tdo_util.Prng.t -> dims:int list -> Interp.arr
(** Deterministic PolyBench-style data in [[-1, 1]], rounded to
    binary32 — the same generator every benchmark's [make_args] uses,
    exported so composed workloads (graph programs) produce
    bit-compatible arrays. *)

val zero_arr : dims:int list -> Interp.arr

val mat_of_vec : Interp.arr -> Mat.t
(** A 1-D array as an [n]x1 matrix (higher ranks fall back to
    {!Interp.mat_of_arr}) — the readback convention for vectors. *)

val all : benchmark list
(** In the paper's Fig. 6 order: 2mm, 3mm, gemm, conv, gesummv, bicg,
    mvt. *)

val names : string list

val find : string -> (benchmark, string) result
