(** The standalone CIM accelerator (Fig. 2(b)): context registers +
    micro-engine + DMA + crossbar, attached to the system bus and the
    IO space.

    Writing the command register triggers the engine; completion is
    signalled by flipping the status register to [Done] through the
    discrete-event queue at the simulated finish time, which is what
    the host's poll loop observes. *)

module Sim = Tdo_sim

val default_register_base : int
(** Suggested PMIO base address (0x4000_0000). *)

type t

val create :
  ?engine_config:Micro_engine.config ->
  ?seed:int ->
  ?scratch:Tdo_util.Arena.t ->
  queue:Sim.Event_queue.t ->
  bus:Sim.Bus.t ->
  memory:Sim.Memory.t ->
  unit ->
  t
(** [seed] (default 0) feeds {!Micro_engine.create} for per-tile PRNG
    streams; [scratch] likewise backs the engine's reusable launch
    buffers (see {!Micro_engine.create}). *)

val map_registers : t -> Sim.Mmio.t -> base:int -> unit
(** Expose the context registers on the IO space. *)

val regs : t -> Context_regs.t
val engine : t -> Micro_engine.t
val dma : t -> Sim.Dma.t
val status : t -> Context_regs.status

val last_error : t -> string option
(** Reason for the last rejected job, if any. *)

val completion_time : t -> Sim.Time_base.ps option
(** Simulated finish time of the most recent successful job. *)
