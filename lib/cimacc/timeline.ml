type phase =
  | Trigger
  | Dma_fill
  | Program_crossbar
  | Compute
  | Accumulate
  | Store_result
  | Result_ready

type event = { at : Tdo_sim.Time_base.ps; phase : phase; detail : string }

let phase_to_string = function
  | Trigger -> "trigger"
  | Dma_fill -> "dma-fill"
  | Program_crossbar -> "program-crossbar"
  | Compute -> "compute"
  | Accumulate -> "accumulate"
  | Store_result -> "store-result"
  | Result_ready -> "result-ready"

let pp_event ppf e =
  Format.fprintf ppf "%10d ps  %-16s %s" e.at (phase_to_string e.phase) e.detail

type t = { capacity : int; mutable events : event list; mutable count : int }

let create ?(capacity = 10_000) () =
  if capacity <= 0 then invalid_arg "Timeline.create: capacity must be positive";
  { capacity; events = []; count = 0 }

let record t ~at ~phase ~detail =
  t.count <- t.count + 1;
  if t.count <= t.capacity then t.events <- { at; phase; detail } :: t.events

let active t = t.count < t.capacity
let count_dropped t = t.count <- t.count + 1

let events t = List.rev t.events
let dropped t = max 0 (t.count - t.capacity)

let clear t =
  t.events <- [];
  t.count <- 0

let all_phases =
  [ Trigger; Dma_fill; Program_crossbar; Compute; Accumulate; Store_result; Result_ready ]

let render_gantt ?(width = 72) events =
  match events with
  | [] -> ""
  | first :: _ ->
      let t0 = List.fold_left (fun acc e -> min acc e.at) first.at events in
      let t1 = List.fold_left (fun acc e -> max acc e.at) first.at events in
      let span = max 1 (t1 - t0) in
      let column at = min (width - 1) ((at - t0) * (width - 1) / span) in
      (* sort by time to pair each event with its successor *)
      let ordered = List.stable_sort (fun a b -> compare a.at b.at) events in
      let buffer = Buffer.create 1024 in
      let label p = Printf.sprintf "%-16s" (phase_to_string p) in
      List.iter
        (fun phase ->
          let lane = Bytes.make width ' ' in
          let rec mark = function
            | e :: (next :: _ as rest) ->
                if e.phase = phase then begin
                  let from = column e.at and until = max (column e.at) (column next.at) in
                  for c = from to until do
                    Bytes.set lane c (if c = from then '#' else '=')
                  done
                end;
                mark rest
            | [ e ] -> if e.phase = phase then Bytes.set lane (column e.at) '#'
            | [] -> ()
          in
          mark ordered;
          if Bytes.exists (fun c -> c <> ' ') lane then begin
            Buffer.add_string buffer (label phase);
            Buffer.add_char buffer '|';
            Buffer.add_bytes buffer lane;
            Buffer.add_string buffer "|\n"
          end)
        all_phases;
      Buffer.add_string buffer
        (Printf.sprintf "%-16s %d ps .. %d ps (%d events)\n" "" t0 t1 (List.length events));
      Buffer.contents buffer
