(** Execution timeline of the accelerator (paper Fig. 2(d)).

    The micro-engine appends one entry per pipeline phase; the
    experiment driver renders the trace to reproduce the figure. *)

type phase =
  | Trigger  (** host wrote the command register *)
  | Dma_fill  (** operand fetched from shared memory into local buffers *)
  | Program_crossbar  (** conductances written *)
  | Compute  (** analog GEMV *)
  | Accumulate  (** digital post-processing (weighted sum, alpha/beta) *)
  | Store_result  (** result DMA-ed back to shared memory *)
  | Result_ready  (** status register flipped to done *)

type event = { at : Tdo_sim.Time_base.ps; phase : phase; detail : string }

val phase_to_string : phase -> string
val pp_event : Format.formatter -> event -> unit

type t

val create : ?capacity:int -> unit -> t
(** Ring-limited recorder: at most [capacity] events are kept (default
    10000); later events are dropped but counted. *)

val record : t -> at:Tdo_sim.Time_base.ps -> phase:phase -> detail:string -> unit

val active : t -> bool
(** [true] while the next {!record} would still be kept. Hot loops use
    this to skip building the [detail] string once the ring is full,
    calling {!count_dropped} instead so the drop statistics stay
    exact. *)

val count_dropped : t -> unit
(** Count one event without recording it — the fast-path companion of
    {!active}. *)

val events : t -> event list
(** In chronological (insertion) order. *)

val dropped : t -> int
val clear : t -> unit

val render_gantt : ?width:int -> event list -> string
(** ASCII Gantt chart of an event list (paper Fig. 2(d)): one lane per
    phase, time flowing left to right over [width] columns (default
    72). Each event marks the instant its phase begins; the mark
    extends until the next event so phase overlap (double buffering) is
    visible. Returns "" for an empty list. *)
