module Sim = Tdo_sim
module Arena = Tdo_util.Arena
module Quant = Tdo_linalg.Quant
module Abft = Tdo_linalg.Abft
module Crossbar = Tdo_pcm.Crossbar

type config = {
  xbar : Crossbar.config;
  tiles : int;
  decode_latency_ps : Sim.Time_base.ps;
  compute_latency_ps : Sim.Time_base.ps;
  min_compute_latency_ps : Sim.Time_base.ps;
  write_latency_per_row_ps : Sim.Time_base.ps;
  alu_latency_ps : Sim.Time_base.ps;
  double_buffering : bool;
  abft : bool;
}

let default_config =
  {
    xbar = Crossbar.default_config;
    tiles = 1;
    decode_latency_ps = 100 * Sim.Time_base.ps_per_ns;
    compute_latency_ps = Sim.Time_base.ps_per_us;
    min_compute_latency_ps = 100 * Sim.Time_base.ps_per_ns;
    write_latency_per_row_ps = 25 * Sim.Time_base.ps_per_us / 10;
    alu_latency_ps = 2 * Sim.Time_base.ps_per_ns;
    double_buffering = true;
    abft = false;
  }

type counters = {
  jobs : int;
  gemv_jobs : int;
  gemm_jobs : int;
  batched_jobs : int;
  streamed_vectors : int;
  programming_skipped : int;
  busy_ps : Sim.Time_base.ps;
  abft_checks : int;
  abft_mismatches : int;
}

(* Internal counter storage is a record of mutable fields: the streamed
   loop bumps [streamed_vectors] (and under ABFT [abft_checks]) once per
   vector, and a functional [{ c with ... }] update there would allocate
   a fresh ten-field record per vector. The public immutable view is
   built on demand. *)
type counters_mut = {
  mutable jobs_m : int;
  mutable gemv_jobs_m : int;
  mutable gemm_jobs_m : int;
  mutable batched_jobs_m : int;
  mutable streamed_vectors_m : int;
  mutable programming_skipped_m : int;
  mutable busy_ps_m : Sim.Time_base.ps;
  mutable abft_checks_m : int;
  mutable abft_mismatches_m : int;
}

type pinned = {
  pin_addr : int;
  pin_rows : int;
  pin_cols : int;
  pin_trans : bool;  (** orientation of the programmed operand *)
  pin_generation : int;
  pin_scale : float;
  pin_check : int array;  (** ABFT per-row checksums of the programmed codes *)
}

type t = {
  config : config;
  dma : Sim.Dma.t;
  scratch : Arena.t option;
  xbars : Crossbar.t array;
  digital : Digital_logic.t;
  timeline : Timeline.t;
  pinned : pinned option array;  (** per tile *)
  busy_until : Sim.Time_base.ps array;  (** per tile *)
  c : counters_mut;
  (* Local buffers of the streamed phase, sized on first use and reused
     across vectors, jobs and (via the arena) whole runs. [xbuf] holds
     the streamed input vector (k elements) and [codes] its quantised
     form; [raw]/[result]/[c_old] are output-sized. All are fully
     overwritten before every read, so handing out dirty arena blocks is
     fine. *)
  mutable xbuf : float array;
  mutable codes : int array;
  mutable raw : int array;
  mutable result : float array;
  mutable c_old : float array;
  mutable last_abft_fault : (int * (int * int * int * int)) option;
      (** (tile, active region) of the most recent checksum mismatch *)
}

let create ?(config = default_config) ?(seed = 0) ?scratch ~dma () =
  if config.tiles <= 0 then invalid_arg "Micro_engine.create: need at least one tile";
  {
    config;
    dma;
    scratch;
    xbars =
      (* distinct, reproducible noise stream per tile, derived from the
         engine seed *)
      Array.init config.tiles (fun tile ->
          Crossbar.create ~config:config.xbar ~seed:((seed * 1_000_003) + tile) ?scratch ());
    digital = Digital_logic.create ();
    timeline = Timeline.create ();
    pinned = Array.make config.tiles None;
    busy_until = Array.make config.tiles 0;
    c =
      {
        jobs_m = 0;
        gemv_jobs_m = 0;
        gemm_jobs_m = 0;
        batched_jobs_m = 0;
        streamed_vectors_m = 0;
        programming_skipped_m = 0;
        busy_ps_m = 0;
        abft_checks_m = 0;
        abft_mismatches_m = 0;
      };
    xbuf = [||];
    codes = [||];
    raw = [||];
    result = [||];
    c_old = [||];
    last_abft_fault = None;
  }

let crossbars t = t.xbars
let crossbar t = t.xbars.(0)

let total_crossbar_counters t =
  Array.fold_left
    (fun (acc : Crossbar.counters) xb ->
      let c = Crossbar.counters xb in
      {
        Crossbar.cell_writes = acc.Crossbar.cell_writes + c.Crossbar.cell_writes;
        logical_writes = acc.Crossbar.logical_writes + c.Crossbar.logical_writes;
        write_bytes = acc.Crossbar.write_bytes + c.Crossbar.write_bytes;
        gemv_ops = acc.Crossbar.gemv_ops + c.Crossbar.gemv_ops;
        macs = acc.Crossbar.macs + c.Crossbar.macs;
        input_buffer_bytes = acc.Crossbar.input_buffer_bytes + c.Crossbar.input_buffer_bytes;
        output_buffer_bytes = acc.Crossbar.output_buffer_bytes + c.Crossbar.output_buffer_bytes;
      })
    (Crossbar.counters t.xbars.(0))
    (Array.sub t.xbars 1 (Array.length t.xbars - 1))

let total_adc_conversions t =
  Array.fold_left (fun acc xb -> acc + Tdo_pcm.Adc.conversions (Crossbar.adc xb)) 0 t.xbars

let digital t = t.digital
let timeline t = t.timeline

let counters t =
  {
    jobs = t.c.jobs_m;
    gemv_jobs = t.c.gemv_jobs_m;
    gemm_jobs = t.c.gemm_jobs_m;
    batched_jobs = t.c.batched_jobs_m;
    streamed_vectors = t.c.streamed_vectors_m;
    programming_skipped = t.c.programming_skipped_m;
    busy_ps = t.c.busy_ps_m;
    abft_checks = t.c.abft_checks_m;
    abft_mismatches = t.c.abft_mismatches_m;
  }

let reset_counters t =
  t.c.jobs_m <- 0;
  t.c.gemv_jobs_m <- 0;
  t.c.gemm_jobs_m <- 0;
  t.c.batched_jobs_m <- 0;
  t.c.streamed_vectors_m <- 0;
  t.c.programming_skipped_m <- 0;
  t.c.busy_ps_m <- 0;
  t.c.abft_checks_m <- 0;
  t.c.abft_mismatches_m <- 0

let last_abft_fault t = t.last_abft_fault
let clear_abft_fault t = t.last_abft_fault <- None

let pinned t =
  Option.map
    (fun p -> (p.pin_addr, p.pin_rows, p.pin_cols, p.pin_generation))
    t.pinned.(0)

let invalidate_pinned t = Array.fill t.pinned 0 (Array.length t.pinned) None

(* Buffer management: keep the current buffer when the size matches,
   otherwise draw a replacement from the scratch arena (pooled per exact
   size, so alternating job shapes still reuse) or allocate fresh when
   the engine runs without one (a long-lived serving device). *)

let get_floats t n cur =
  if Array.length cur = n then cur
  else match t.scratch with Some a -> Arena.float_array a n | None -> Array.make n 0.0

let get_ints t n cur =
  if Array.length cur = n then cur
  else match t.scratch with Some a -> Arena.int_array a n | None -> Array.make n 0

(* DMA transfers whose functional side is performed element-wise through
   the memory's f32 fast path instead of materialising packed [Bytes.t]
   payloads; the timing and traffic side is identical to
   [Dma.read_strided]/[write_strided] — one descriptor, same byte
   counts, same burst latency. *)

let fetch_vector_into t ~addr ~len ~stride_elems out =
  let mem = Sim.Dma.memory t.dma in
  for i = 0 to len - 1 do
    Array.unsafe_set out i (Sim.Memory.read_f32 mem (addr + (4 * i * stride_elems)))
  done;
  Sim.Dma.charge t.dma ~bytes:(4 * len)

let store_vector_into t ~addr ~stride_elems ~len values =
  let mem = Sim.Dma.memory t.dma in
  for i = 0 to len - 1 do
    Sim.Memory.write_f32 mem (addr + (4 * i * stride_elems)) (Array.unsafe_get values i)
  done;
  Sim.Dma.charge_write t.dma ~bytes:(4 * len)

(* Fetch a [rows x cols] float matrix stored row-major with leading
   dimension [ld] (in elements). Runs once per crossbar (re)programming,
   so the result matrix is allocated normally. *)
let fetch_matrix t ~addr ~rows ~cols ~ld =
  let mem = Sim.Dma.memory t.dma in
  let out =
    Array.init rows (fun r ->
        Array.init cols (fun c -> Sim.Memory.read_f32 mem (addr + (4 * ((r * ld) + c)))))
  in
  (out, Sim.Dma.charge t.dma ~bytes:(4 * rows * cols))

let max_abs_2d m =
  Array.fold_left
    (fun acc row -> Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) acc row)
    0.0 m

let transpose_2d m =
  let rows = Array.length m and cols = Array.length m.(0) in
  Array.init cols (fun i -> Array.init rows (fun j -> m.(j).(i)))

let max_abs v =
  let m = ref 0.0 in
  for i = 0 to Array.length v - 1 do
    let a = Float.abs (Array.unsafe_get v i) in
    if a > !m then m := a
  done;
  !m

(* One GEMM (or GEMV, n = 1) with explicit operand addresses; the
   batched path calls this once per descriptor. Returns the finish
   time. *)
let run_single t (job : Context_regs.job) ~tile ~a_addr ~b_addr ~c_addr ~start =
  let xbar = t.xbars.(tile) in
  let { Context_regs.m; n; k; trans_a; trans_b; alpha; beta; lda; ldb; ldc; pin; generation; _ }
      =
    job
  in
  let cfg = t.config in
  let record at phase detail = Timeline.record t.timeline ~at ~phase ~detail in
  let cursor = ref start in
  (* -- decode ------------------------------------------------------ *)
  cursor := !cursor + cfg.decode_latency_ps;
  (* -- pinned operand: fetch, quantise, program -------------------- *)
  (* Physical layout of A is (m x k) unless transposed, of B (k x n). *)
  let fetch_op_a () =
    if trans_a then
      let raw, lat = fetch_matrix t ~addr:a_addr ~rows:k ~cols:m ~ld:lda in
      (transpose_2d raw, lat)
    else fetch_matrix t ~addr:a_addr ~rows:m ~cols:k ~ld:lda
  in
  let fetch_op_b () =
    if trans_b then
      let raw, lat = fetch_matrix t ~addr:b_addr ~rows:n ~cols:k ~ld:ldb in
      (transpose_2d raw, lat)
    else fetch_matrix t ~addr:b_addr ~rows:k ~cols:n ~ld:ldb
  in
  let pin_addr = match pin with Context_regs.Pin_a -> a_addr | Context_regs.Pin_b -> b_addr in
  (* W is what goes into the crossbar: op(A)^T (k x m) or op(B) (k x n). *)
  let w_rows = k in
  let w_cols = match pin with Context_regs.Pin_a -> m | Context_regs.Pin_b -> n in
  if w_rows > cfg.xbar.Crossbar.rows || w_cols > cfg.xbar.Crossbar.cols then
    Error
      (Printf.sprintf "operand %dx%d exceeds the %dx%d crossbar" w_rows w_cols
         cfg.xbar.Crossbar.rows cfg.xbar.Crossbar.cols)
  else begin
    let pin_trans = match pin with Context_regs.Pin_a -> trans_a | Context_regs.Pin_b -> trans_b in
    let reusable =
      match t.pinned.(tile) with
      | Some p ->
          p.pin_addr = pin_addr && p.pin_rows = w_rows && p.pin_cols = w_cols
          && p.pin_trans = pin_trans
          && p.pin_generation = generation
      | None -> false
    in
    let scale_w, pin_check =
      if reusable then begin
        t.c.programming_skipped_m <- t.c.programming_skipped_m + 1;
        let p = Option.get t.pinned.(tile) in
        (p.pin_scale, p.pin_check)
      end
      else begin
        let w, fill_lat =
          match pin with
          | Context_regs.Pin_a ->
              let op_a, lat = fetch_op_a () in
              (transpose_2d op_a, lat)
          | Context_regs.Pin_b -> fetch_op_b ()
        in
        record !cursor Timeline.Dma_fill (Printf.sprintf "pinned operand %dx%d" w_rows w_cols);
        cursor := !cursor + fill_lat;
        let scheme = Quant.scheme_for ~bits:8 ~max_abs:(max_abs_2d w) in
        let codes = Array.map (Array.map (Quant.quantize scheme)) w in
        record !cursor Timeline.Program_crossbar
          (Printf.sprintf "tile %d, %d rows" tile w_rows);
        Crossbar.program_codes xbar codes;
        cursor := !cursor + (w_rows * cfg.write_latency_per_row_ps);
        (* The checksums describe what the host {e asked} the crossbar to
           store; a stuck cell diverges from them, which is exactly what
           the per-GEMV verify catches. *)
        let pin_check = if cfg.abft then Abft.row_sums codes else [||] in
        t.pinned.(tile) <-
          Some
            {
              pin_addr;
              pin_rows = w_rows;
              pin_cols = w_cols;
              pin_trans;
              pin_generation = generation;
              pin_scale = scheme.Quant.scale;
              pin_check;
            };
        (scheme.Quant.scale, pin_check)
      end
    in
    (* -- streamed phase -------------------------------------------- *)
    (* Pin_a: stream the n columns of op(B), produce columns of C.
       Pin_b: stream the m rows of op(A), produce rows of C. *)
    let stream_count = match pin with Context_regs.Pin_a -> n | Context_regs.Pin_b -> m in
    let out_len = match pin with Context_regs.Pin_a -> m | Context_regs.Pin_b -> n in
    let x = get_floats t k t.xbuf in
    t.xbuf <- x;
    let x_codes = get_ints t k t.codes in
    t.codes <- x_codes;
    let raw = get_ints t out_len t.raw in
    t.raw <- raw;
    let result = get_floats t out_len t.result in
    t.result <- result;
    (* one [Some] for the whole launch, not one per vector *)
    let c_old =
      if beta = 0.0 then None
      else begin
        let c = get_floats t out_len t.c_old in
        t.c_old <- c;
        Some c
      end
    in
    let fetch_stream idx =
      match (pin, trans_b, trans_a) with
      | Context_regs.Pin_a, false, _ ->
          (* column idx of B (k x n, ld = ldb) *)
          fetch_vector_into t ~addr:(b_addr + (4 * idx)) ~len:k ~stride_elems:ldb x
      | Context_regs.Pin_a, true, _ ->
          (* column idx of op(B) = row idx of physical B (n x k) *)
          fetch_vector_into t ~addr:(b_addr + (4 * idx * ldb)) ~len:k ~stride_elems:1 x
      | Context_regs.Pin_b, _, false ->
          (* row idx of A (m x k) *)
          fetch_vector_into t ~addr:(a_addr + (4 * idx * lda)) ~len:k ~stride_elems:1 x
      | Context_regs.Pin_b, _, true ->
          (* row idx of op(A) = column idx of physical A (k x m) *)
          fetch_vector_into t ~addr:(a_addr + (4 * idx)) ~len:k ~stride_elems:lda x
    in
    let c_slice_addr idx =
      match pin with
      | Context_regs.Pin_a -> (c_addr + (4 * idx), ldc) (* column idx of C *)
      | Context_regs.Pin_b -> (c_addr + (4 * idx * ldc), 1) (* row idx of C *)
    in
    (* integration time scales with the number of active wordlines *)
    let gemv_latency =
      max cfg.min_compute_latency_ps (cfg.compute_latency_ps * k / cfg.xbar.Crossbar.rows)
    in
    (* Consecutive streamed vectors that are contiguous rows in memory
       (rows of A under Pin_b, rows of physical B under Pin_a+trans_b)
       are fetched in row-buffer-sized bursts: one DMA descriptor per
       burst instead of one per vector. *)
    let row_buffer_bytes = 1536 in
    let burst =
      let contiguous_rows =
        match (pin, trans_a, trans_b) with
        | Context_regs.Pin_b, false, _ | Context_regs.Pin_a, _, true -> true
        | Context_regs.Pin_b, true, _ | Context_regs.Pin_a, _, false -> false
      in
      if contiguous_rows then max 1 (row_buffer_bytes / (4 * k)) else 1
    in
    let fill_channel = ref !cursor in
    let compute_channel = ref !cursor in
    let tl = t.timeline in
    for idx = 0 to stream_count - 1 do
      if not cfg.double_buffering then fill_channel := max !fill_channel !compute_channel;
      (* Timeline entries past the ring capacity would be dropped anyway,
         so skip formatting their detail strings — the counts stay
         exact via [count_dropped]. *)
      if Timeline.active tl then
        record !fill_channel Timeline.Dma_fill (Printf.sprintf "vector %d" idx)
      else Timeline.count_dropped tl;
      let fill_lat = fetch_stream idx in
      (* burst accounting: the descriptor fetched at the head of a burst
         covers the next [burst-1] vectors; their payload time is part
         of that burst's latency *)
      let fill_lat =
        if burst = 1 then fill_lat
        else if idx mod burst = 0 then
          let vectors = min burst (stream_count - idx) in
          fill_lat + ((vectors - 1) * 4 * k * Sim.Time_base.ps_per_ns / 5)
          (* ~payload share at bus bandwidth for the rest of the burst *)
        else 0
      in
      let c_fill_lat =
        match c_old with
        | None -> 0
        | Some c ->
            let addr, stride = c_slice_addr idx in
            fetch_vector_into t ~addr ~len:out_len ~stride_elems:stride c
      in
      fill_channel := !fill_channel + fill_lat + c_fill_lat;
      compute_channel := max !compute_channel !fill_channel;
      if Timeline.active tl then
        record !compute_channel Timeline.Compute (Printf.sprintf "gemv %d" idx)
      else Timeline.count_dropped tl;
      let scheme_x = Quant.scheme_for ~bits:8 ~max_abs:(max_abs x) in
      for i = 0 to k - 1 do
        Array.unsafe_set x_codes i (Quant.quantize scheme_x (Array.unsafe_get x i))
      done;
      Crossbar.gemv_codes_into xbar x_codes ~out:raw;
      compute_channel := !compute_channel + gemv_latency;
      if cfg.abft then begin
        (* one extra dot product (k MACs) plus the output sum (out_len
           adds), on the digital ALU *)
        if Timeline.active tl then
          record !compute_channel Timeline.Accumulate (Printf.sprintf "abft verify %d" idx)
        else Timeline.count_dropped tl;
        compute_channel := !compute_channel + ((k + out_len) * cfg.alu_latency_ps);
        t.c.abft_checks_m <- t.c.abft_checks_m + 1;
        match Abft.verify ~row_sums:pin_check ~input:x_codes ~output:raw with
        | Abft.Pass -> ()
        | Abft.Fail _ ->
            t.c.abft_mismatches_m <- t.c.abft_mismatches_m + 1;
            let region =
              match Crossbar.active_region xbar with
              | Some r -> r
              | None -> (0, 0, 0, 0)
            in
            t.last_abft_fault <- Some (tile, region)
      end;
      if Timeline.active tl then
        record !compute_channel Timeline.Accumulate (Printf.sprintf "epilogue %d" idx)
      else Timeline.count_dropped tl;
      Digital_logic.postprocess_into t.digital ~alpha ~beta
        ~scale:(scale_w *. scheme_x.Quant.scale)
        ~raw ~c_old ~out:result;
      compute_channel := !compute_channel + (out_len * cfg.alu_latency_ps);
      if Timeline.active tl then
        record !compute_channel Timeline.Store_result (Printf.sprintf "slice %d" idx)
      else Timeline.count_dropped tl;
      let addr, stride = c_slice_addr idx in
      let store_lat = store_vector_into t ~addr ~stride_elems:stride ~len:out_len result in
      (* results collect in the output buffer and drain one DMA
         descriptor per buffer-full, mirroring the input bursting *)
      let store_burst = max 1 (row_buffer_bytes / (4 * out_len)) in
      let store_lat =
        if store_burst = 1 then store_lat
        else if idx mod store_burst = store_burst - 1 || idx = stream_count - 1 then
          store_lat + ((min store_burst (idx + 1) - 1) * 4 * out_len * Sim.Time_base.ps_per_ns / 5)
        else 0
      in
      compute_channel := !compute_channel + store_lat;
      t.c.streamed_vectors_m <- t.c.streamed_vectors_m + 1
    done;
    Ok (max !cursor !compute_channel)
  end

let read_batch_descriptors t ~addr ~count =
  let data, latency = Sim.Dma.read t.dma ~addr ~bytes:(12 * count) in
  let entry i =
    let word j = Int32.to_int (Bytes.get_int32_le data ((12 * i) + (4 * j))) land 0xFFFFFFFF in
    (word 0, word 1, word 2)
  in
  (List.init count entry, latency)

(* Identity of the operand a job would pin, for tile affinity. *)
let prospective_pin_key (job : Context_regs.job) ~a_addr ~b_addr =
  let pin_addr =
    match job.Context_regs.pin with
    | Context_regs.Pin_a -> a_addr
    | Context_regs.Pin_b -> b_addr
  in
  let pin_trans =
    match job.Context_regs.pin with
    | Context_regs.Pin_a -> job.Context_regs.trans_a
    | Context_regs.Pin_b -> job.Context_regs.trans_b
  in
  let pin_cols =
    match job.Context_regs.pin with
    | Context_regs.Pin_a -> job.Context_regs.m
    | Context_regs.Pin_b -> job.Context_regs.n
  in
  (pin_addr, job.Context_regs.k, pin_cols, pin_trans, job.Context_regs.generation)

let tile_holding t (addr, rows, cols, trans, generation) =
  let found = ref None in
  Array.iteri
    (fun i p ->
      match p with
      | Some p
        when !found = None && p.pin_addr = addr && p.pin_rows = rows && p.pin_cols = cols
             && p.pin_trans = trans
             && p.pin_generation = generation ->
          found := Some i
      | Some _ | None -> ())
    t.pinned;
  !found

let least_busy_tile busy =
  let best = ref 0 in
  Array.iteri (fun i u -> if u < busy.(!best) then best := i) busy;
  !best

let run_job t (job : Context_regs.job) ~start =
  let record at phase detail = Timeline.record t.timeline ~at ~phase ~detail in
  record start Timeline.Trigger (Printf.sprintf "job op=%d m=%d n=%d k=%d"
      (match job.Context_regs.op with
      | Context_regs.Gemv -> 0
      | Context_regs.Gemm -> 1
      | Context_regs.Gemm_batched -> 2)
      job.Context_regs.m job.Context_regs.n job.Context_regs.k);
  let result =
    match job.Context_regs.op with
    | Context_regs.Gemv | Context_regs.Gemm ->
        let a_addr = job.Context_regs.a_addr and b_addr = job.Context_regs.b_addr in
        let tile =
          match tile_holding t (prospective_pin_key job ~a_addr ~b_addr) with
          | Some tile -> tile
          | None -> least_busy_tile t.busy_until
        in
        let begin_time = max start t.busy_until.(tile) in
        let result =
          run_single t job ~tile ~a_addr ~b_addr ~c_addr:job.Context_regs.c_addr
            ~start:begin_time
        in
        Result.iter (fun finish -> t.busy_until.(tile) <- finish) result;
        result
    | Context_regs.Gemm_batched ->
        let descriptors, desc_lat =
          read_batch_descriptors t ~addr:job.Context_regs.batch_desc_addr
            ~count:job.Context_regs.batch_count
        in
        let t0 = start + desc_lat in
        (* Group the batch entries by the operand they would pin; groups
           with different pinned operands run on different tiles in
           parallel, entries within a group run back-to-back on their
           tile and reuse its programming. *)
        let groups = ref [] in
        List.iter
          (fun ((a_addr, b_addr, _) as entry) ->
            let key = prospective_pin_key job ~a_addr ~b_addr in
            match List.assoc_opt key !groups with
            | Some entries -> entries := entry :: !entries
            | None -> groups := !groups @ [ (key, ref [ entry ]) ])
          descriptors;
        let tile_free = Array.map (fun busy -> max busy t0) t.busy_until in
        let run_group acc (key, entries) =
          Result.bind acc (fun latest ->
              let tile =
                match tile_holding t key with
                | Some tile -> tile
                | None -> least_busy_tile tile_free
              in
              let group_result =
                List.fold_left
                  (fun acc (a_addr, b_addr, c_addr) ->
                    Result.bind acc (fun time ->
                        run_single t job ~tile ~a_addr ~b_addr ~c_addr ~start:time))
                  (Ok tile_free.(tile))
                  (List.rev !entries)
              in
              Result.map
                (fun finish ->
                  tile_free.(tile) <- finish;
                  t.busy_until.(tile) <- finish;
                  max latest finish)
                group_result)
        in
        List.fold_left run_group (Ok t0) !groups
  in
  (match result with
  | Ok finish ->
      record finish Timeline.Result_ready "status <- done";
      t.c.jobs_m <- t.c.jobs_m + 1;
      (match job.Context_regs.op with
      | Context_regs.Gemv -> t.c.gemv_jobs_m <- t.c.gemv_jobs_m + 1
      | Context_regs.Gemm -> t.c.gemm_jobs_m <- t.c.gemm_jobs_m + 1
      | Context_regs.Gemm_batched -> t.c.batched_jobs_m <- t.c.batched_jobs_m + 1);
      t.c.busy_ps_m <- t.c.busy_ps_m + (finish - start)
  | Error _ -> ());
  result
