module Sim = Tdo_sim

let default_register_base = 0x4000_0000

type t = {
  queue : Sim.Event_queue.t;
  regs : Context_regs.t;
  engine : Micro_engine.t;
  dma : Sim.Dma.t;
  mutable last_error : string option;
  mutable completion_time : Sim.Time_base.ps option;
}

let on_trigger t job =
  match Context_regs.status t.regs with
  | Context_regs.Busy ->
      (* The host must not re-trigger a running engine. *)
      t.last_error <- Some "trigger while busy";
      Context_regs.set_status t.regs Context_regs.Error
  | Context_regs.Idle | Context_regs.Done | Context_regs.Error -> (
      Context_regs.set_status t.regs Context_regs.Busy;
      match Micro_engine.run_job t.engine job ~start:(Sim.Event_queue.now t.queue) with
      | Error reason ->
          t.last_error <- Some reason;
          Context_regs.set_status t.regs Context_regs.Error
      | Ok finish ->
          t.completion_time <- Some finish;
          Sim.Event_queue.schedule_at t.queue ~time:finish ~name:"cim-done" (fun () ->
              Context_regs.set_status t.regs Context_regs.Done))

let create ?engine_config ?(seed = 0) ?scratch ~queue ~bus ~memory () =
  let dma = Sim.Dma.create ~bus ~memory () in
  let engine =
    match engine_config with
    | None -> Micro_engine.create ~seed ?scratch ~dma ()
    | Some config -> Micro_engine.create ~config ~seed ?scratch ~dma ()
  in
  let t =
    { queue; regs = Context_regs.create (); engine; dma; last_error = None; completion_time = None }
  in
  Context_regs.set_on_trigger t.regs (on_trigger t);
  t

let map_registers t mmio ~base =
  Sim.Mmio.map mmio ~base ~size:Context_regs.register_file_bytes (Context_regs.handler t.regs)

let regs t = t.regs
let engine t = t.engine
let dma t = t.dma
let status t = Context_regs.status t.regs
let last_error t = t.last_error
let completion_time t = t.completion_time
