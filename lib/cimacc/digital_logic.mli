(** Digital post-processing block of the CIM tile (Section II-B).

    Combines the per-plane crossbar outputs (the weighted MSB/LSB sum is
    already folded into {!Tdo_pcm.Crossbar.gemv_codes}; this block is
    charged for it), rescales the integer dot products back to floats,
    and applies the BLAS alpha/beta epilogue. Counters feed the Table-I
    energy terms: one weighted sum per GEMV plus "extra ALU
    operations". *)

type t

val create : unit -> t

type counters = { weighted_sums : int; alu_ops : int }

val counters : t -> counters
val reset_counters : t -> unit

val postprocess :
  t ->
  alpha:float ->
  beta:float ->
  scale:float ->
  raw:int array ->
  c_old:float array option ->
  float array
(** [postprocess ~alpha ~beta ~scale ~raw ~c_old] computes
    [alpha *. scale *. raw.(i) +. beta *. c_old.(i)] per element (with
    [c_old = None] meaning a zero epilogue, requiring [beta = 0]).
    Counts one weighted sum (for the GEMV that produced [raw]) and the
    per-element ALU work. Raises [Invalid_argument] when [beta <> 0]
    but no [c_old] is supplied, or on length mismatch. *)

val postprocess_into :
  t ->
  alpha:float ->
  beta:float ->
  scale:float ->
  raw:int array ->
  c_old:float array option ->
  out:float array ->
  unit
(** {!postprocess} into a caller-owned buffer of matching length — the
    engine's streamed launch loop reuses one buffer per launch. *)
