(** Micro-engine of the CIM accelerator (Section II-C).

    Translates a {!Context_regs.job} into circuit-level operations:
    fetching operands from shared memory over DMA, quantising and
    programming the crossbar, decomposing GEMM into a series of GEMVs,
    running the digital epilogue, and storing results back. Supports
    double buffering (fetch of the next streamed vector overlaps the
    current compute/store) and pinned-operand reuse (a job whose pinned
    operand is already programmed skips the crossbar writes — the
    mechanism behind the paper's endurance-oriented fusion and
    tiling). *)

module Sim = Tdo_sim

type config = {
  xbar : Tdo_pcm.Crossbar.config;
  tiles : int;
      (** CIM tiles in the accelerator (paper default: 1; Eq. 1's
          512 KB capacity corresponds to 8 tiles of 64 KB). Batched
          jobs whose entries pin different operands run on different
          tiles in parallel, and each tile retains its own pinned
          operand across jobs. *)
  decode_latency_ps : Sim.Time_base.ps;  (** context-register decode *)
  compute_latency_ps : Sim.Time_base.ps;
      (** full-array analog GEMV (all wordlines active); Table I: 1 us.
          A GEMV over fewer active rows integrates proportionally
          faster, down to [min_compute_latency_ps]. *)
  min_compute_latency_ps : Sim.Time_base.ps;  (** engine cycle floor per GEMV *)
  write_latency_per_row_ps : Sim.Time_base.ps;
      (** crossbar programming, row-parallel; Table I: 2.5 us per row *)
  alu_latency_ps : Sim.Time_base.ps;  (** per digital epilogue element *)
  double_buffering : bool;
  abft : bool;
      (** verify every GEMV pass against Huang–Abraham row checksums
          retained from programming time ({!Tdo_linalg.Abft}); costs
          [(k + out_len) * alu_latency_ps] per pass and feeds the
          [abft_checks] / [abft_mismatches] counters *)
}

val default_config : config

type t

val create :
  ?config:config -> ?seed:int -> ?scratch:Tdo_util.Arena.t -> dma:Sim.Dma.t -> unit -> t
(** [seed] derives a distinct, reproducible PRNG stream per crossbar
    tile (defaults to 0, matching the previous behaviour). [scratch]
    backs the engine's streamed-phase buffers (input vector, quantised
    codes, raw column sums, epilogue result) with pooled blocks; only
    pass it for an engine whose lifetime ends before the arena's next
    reset. *)

val run_job : t -> Context_regs.job -> start:Sim.Time_base.ps -> (Sim.Time_base.ps, string) result
(** Execute the job. Functional effects (result stores) happen
    immediately; the returned value is the simulated completion time.
    [Error] reports a rejected job (e.g. operands exceeding the
    crossbar) without side effects on memory. *)

type counters = {
  jobs : int;
  gemv_jobs : int;
  gemm_jobs : int;
  batched_jobs : int;
  streamed_vectors : int;
  programming_skipped : int;  (** jobs that reused the pinned operand *)
  busy_ps : Sim.Time_base.ps;  (** total engine-occupied time *)
  abft_checks : int;  (** GEMV passes verified (when [config.abft]) *)
  abft_mismatches : int;  (** checksum failures detected *)
}

val counters : t -> counters
val reset_counters : t -> unit

val last_abft_fault : t -> (int * (int * int * int * int)) option
(** [(tile, (row_off, col_off, rows, cols))] of the most recent
    checksum mismatch — the localisation handed to recovery policies.
    Not cleared by {!reset_counters}; use {!clear_abft_fault}. *)

val clear_abft_fault : t -> unit

val crossbar : t -> Tdo_pcm.Crossbar.t
(** Tile 0 (the only tile in the default configuration). *)

val crossbars : t -> Tdo_pcm.Crossbar.t array
(** All tiles. *)

val total_crossbar_counters : t -> Tdo_pcm.Crossbar.counters
(** Counters summed over every tile. *)

val total_adc_conversions : t -> int

val digital : t -> Digital_logic.t
val timeline : t -> Timeline.t

val pinned : t -> (int * int * int * int) option
(** [(addr, rows, cols, generation)] of the operand held in tile 0, if
    any. *)

val invalidate_pinned : t -> unit
(** Forget the pinned operand (e.g. after the host rewrites its
    buffer). *)
