type counters = { weighted_sums : int; alu_ops : int }

type t = { mutable sums : int; mutable ops : int }

let create () = { sums = 0; ops = 0 }
let counters t = { weighted_sums = t.sums; alu_ops = t.ops }

let reset_counters t =
  t.sums <- 0;
  t.ops <- 0

let postprocess_into t ~alpha ~beta ~scale ~raw ~c_old ~out =
  let n = Array.length raw in
  if Array.length out <> n then invalid_arg "Digital_logic.postprocess: out length mismatch";
  (match c_old with
  | Some c when Array.length c <> n ->
      invalid_arg "Digital_logic.postprocess: c_old length mismatch"
  | Some _ -> ()
  | None -> if beta <> 0.0 then invalid_arg "Digital_logic.postprocess: beta without c_old");
  t.sums <- t.sums + 1;
  let ab = alpha *. scale in
  (match c_old with
  | None -> for i = 0 to n - 1 do out.(i) <- ab *. float_of_int raw.(i) done
  | Some c -> for i = 0 to n - 1 do out.(i) <- (ab *. float_of_int raw.(i)) +. (beta *. c.(i)) done);
  (* Per element: one rescale multiply, one alpha multiply, and the
     beta multiply-accumulate when the epilogue reads C. *)
  let per_element = if c_old = None then 2 else 4 in
  t.ops <- t.ops + (per_element * n)

let postprocess t ~alpha ~beta ~scale ~raw ~c_old =
  let out = Array.make (Array.length raw) 0.0 in
  postprocess_into t ~alpha ~beta ~scale ~raw ~c_old ~out;
  out
