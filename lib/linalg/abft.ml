let row_sums codes =
  let m = Array.length codes in
  if m = 0 then invalid_arg "Abft.row_sums: empty matrix";
  let n = Array.length codes.(0) in
  Array.map
    (fun row ->
      if Array.length row <> n then invalid_arg "Abft.row_sums: ragged matrix";
      Array.fold_left ( + ) 0 row)
    codes

let predict ~row_sums ~input =
  let m = Array.length row_sums in
  if Array.length input <> m then
    invalid_arg
      (Printf.sprintf "Abft.predict: input length %d, checksum length %d" (Array.length input) m);
  let acc = ref 0 in
  for i = 0 to m - 1 do
    acc := !acc + (input.(i) * row_sums.(i))
  done;
  !acc

let observe output = Array.fold_left ( + ) 0 output

type verdict = Pass | Fail of { expected : int; observed : int }

let verify ~row_sums ~input ~output =
  let expected = predict ~row_sums ~input in
  let observed = observe output in
  if expected = observed then Pass else Fail { expected; observed }
