(** Algorithm-based fault tolerance for offloaded GEMV/GEMM
    (Huang & Abraham, IEEE ToC 1984).

    The crossbar computes [out_j = sum_i x_i * W(i,j)] over integer
    codes. Summing both sides over the output columns gives the
    invariant

    {[ sum_j out_j  =  sum_i x_i * (sum_j W(i,j)) ]}

    so a host that retains the per-row checksums [sum_j W(i,j)] —
    computed once when the matrix is programmed — can verify every GEMV
    pass with one extra dot product, without re-running the kernel.
    Because the functional crossbar model is exact integer arithmetic
    (when analog noise is off), any single stuck cell, column bit-flip
    or drift offset that changes the result breaks the equality: the
    check has no false positives and detects every single-fault
    corruption of the output sum. *)

val row_sums : int array array -> int array
(** Per-row checksums of a programmed code matrix: element [i] is
    [sum_j codes.(i).(j)]. Raises [Invalid_argument] on an empty or
    ragged matrix. *)

val predict : row_sums:int array -> input:int array -> int
(** The checksum-side of the invariant: [sum_i input.(i) * row_sums.(i)].
    Lengths must agree. *)

val observe : int array -> int
(** The output-side of the invariant: the sum of the raw column
    results. *)

type verdict = Pass | Fail of { expected : int; observed : int }

val verify : row_sums:int array -> input:int array -> output:int array -> verdict
(** Compare both sides for one GEMV pass. *)
