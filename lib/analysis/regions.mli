(** Symbolic array-region analysis.

    The shared region language of the analysis layer: a region is
    either an axis-aligned integer box of cells ({!Tdo_poly.Domain})
    or [Top], the sound fallback when a subscript or operand offset is
    not affine in iterators with known constant extents. Footprints —
    per-array region lists — are computed per statement, per runtime
    call operand and per schedule subtree, and are what the kernel
    dependence graph ({!Depgraph}), the fusion-legality proof
    ({!Legality}) and the coherence/pinning lints ({!Lint}) all share
    with the offload census ({!Tdo_tactics.Offload.plan}). *)

module St = Tdo_poly.Schedule_tree
module Domain = Tdo_poly.Domain
module Access = Tdo_poly.Access

type region =
  | Box of Domain.box  (** the access stays inside this box of cells *)
  | Top  (** may touch any cell of the array *)

val equal : region -> region -> bool

val overlap : region -> region -> bool
(** May the two regions share a cell?  [Top] overlaps everything;
    boxes of different rank are conservatively reported overlapping
    (well-formed programs access an array with one rank only). *)

val cells : region -> int option
(** Number of cells covered; [None] for [Top]. *)

val box_cells : Domain.box -> int
val box_shape : Domain.box -> int * int
(** [rows, cols] view of a box: rank-1 boxes are [n x 1] columns,
    ranks above 2 collapse to [cells x 1]. *)

val pp : Format.formatter -> region -> unit
(** ASCII, e.g. [[0..7][0..15]]; [Top] prints as [[*]]. *)

(** {1 Footprints} *)

type footprint = (string * region list) list
(** Per-array access regions, sorted by array name. One region per
    syntactic access — the list is kept (not hulled) so disjointness
    is decided pairwise, at the same precision as {!Tdo_poly.Deps}. *)

val overlapping : footprint -> footprint -> string list
(** Arrays on which some region of the first footprint may share a
    cell with some region of the second. *)

val pp_footprint : Format.formatter -> footprint -> unit

val region_of_access : env:(string * (int * int)) list -> Access.t -> region
(** Bounding region of an access when each iterator ranges over its
    inclusive interval in [env]; [Top] when a subscript involves a
    variable without an extent. *)

val mat_ref_region : env:(string * (int * int)) list -> Tdo_ir.Ir.mat_ref -> region
(** Physical cells a runtime-call operand window can touch: the
    (affine) element offsets ranged over [env], spanned by the operand
    extent with [trans] swapping which extent runs down the rows —
    the same window {!Bounds} checks against the declaration. *)

val mat_ref_cells : Tdo_ir.Ir.mat_ref -> int
(** [rows * cols]: the cardinality of {!mat_ref_region} whenever the
    offsets are constant (the region is a box of exactly that size).
    {!Tdo_tactics.Offload.plan} prices crossbar writes with this, so
    the tuner's write-bytes model and the analyzer agree. *)

val band_env : St.band list -> (string * (int * int)) list option
(** Inclusive iterator intervals of a band stack when every bound is
    constant; [None] otherwise (mirrors {!Tdo_poly.Deps}). *)

val tree_footprint : writes:bool -> St.t -> footprint
(** Read ([writes:false], including the accumulated-into cell) or
    write footprint of a schedule subtree. [Stmt] leaves contribute
    access regions over their band extents; [Code] subtrees are walked
    statement by statement — runtime-call operands get precise
    {!mat_ref_region} windows, whole-array transfers get [Top]. *)

val ir_footprint : writes:bool -> Tdo_ir.Ir.stmt list -> footprint
(** Footprint of straight IR (the [Code] walk of {!tree_footprint}). *)
