module St = Tdo_poly.Schedule_tree
module Deps = Tdo_poly.Deps
module Affine = Tdo_poly.Affine
module Access = Tdo_poly.Access
module Ir = Tdo_ir.Ir
module Ast = Tdo_lang.Ast
module Strings = Deps.Strings

let top_events = function St.Seq children -> children | t -> [ t ]

let wrap bands s = List.fold_right (fun b t -> St.Band (b, t)) bands (St.Stmt s)

(* ---------- statement-level validation ---------- *)

(* Per-band component of a dependence distance vector between two
   accesses of the same array. [Dist d]: the sink instance runs d
   iterations of that band after the source. [Any]: the band does not
   constrain the pair (every pair of iterations can touch the same
   cell). [Unknown]: subscripts too complex to solve — conservative. *)
type comp = Dist of int | Any | Unknown

let simple_index idx =
  match Affine.vars idx with
  | [] -> Some (None, Affine.constant idx)
  | [ v ] when Affine.coeff idx v = 1 -> Some (Some v, Affine.constant idx)
  | _ -> None

(* Distance vector (over [iters], outermost first) of the dependence
   from access [src] to access [dst] on the same array, or [None] when
   the subscripts can never reference the same cell. *)
let distance_vector ~iters (src : Access.t) (dst : Access.t) =
  if List.length src.Access.indices <> List.length dst.Access.indices then None
  else begin
    let exception Never in
    let deltas = Hashtbl.create 4 in
    let unknown = ref false in
    (try
       List.iter2
         (fun is id ->
           match (simple_index is, simple_index id) with
           | Some (None, cs), Some (None, cd) -> if cs <> cd then raise Never
           | Some (Some v, cs), Some (Some v', cd) when String.equal v v' -> (
               (* v_dst = v_src + (cs - cd) *)
               let d = cs - cd in
               match Hashtbl.find_opt deltas v with
               | Some d' when d' <> d -> raise Never
               | Some _ -> ()
               | None -> Hashtbl.add deltas v d)
           | _ -> unknown := true)
         src.Access.indices dst.Access.indices;
       Some
         (List.map
            (fun iter ->
              if !unknown then Unknown
              else
                match Hashtbl.find_opt deltas iter with
                | Some d -> Dist d
                | None -> Any)
            iters)
     with Never -> None)
  end

let rec lex_sign = function
  | [] -> 0
  | 0 :: rest -> lex_sign rest
  | d :: _ -> compare d 0

(* Does some assignment of the [Any] components make the vector
   lexicographically positive under [order_a] and negative under
   [order_b]?  Any in {-1, 0, 1} is exhaustive for lexicographic
   sign patterns. *)
let reorder_breaks ~before_order ~after_order vec =
  let comps = List.combine before_order vec in
  if List.exists (fun (_, c) -> c = Unknown) comps then true
  else begin
    let anys = List.filter (fun (_, c) -> c = Any) comps in
    let rec assignments = function
      | [] -> [ [] ]
      | (v, _) :: rest ->
          List.concat_map
            (fun tail -> List.map (fun d -> (v, d) :: tail) [ -1; 0; 1 ])
            (assignments rest)
    in
    List.exists
      (fun assignment ->
        let value iter =
          match List.assoc iter comps with
          | Dist d -> d
          | Any -> List.assoc iter assignment
          | Unknown -> 0
        in
        lex_sign (List.map value before_order) > 0
        && lex_sign (List.map value after_order) < 0)
      (assignments anys)
  end

let stmt_conflicts (s1 : St.stmt_info) (s2 : St.stmt_info) =
  let reads (s : St.stmt_info) =
    let r = List.map (fun (a : Access.t) -> a.Access.array) s.St.reads in
    if s.St.op = Ast.Set then r else s.St.write.Access.array :: r
  in
  let w1 = s1.St.write.Access.array and w2 = s2.St.write.Access.array in
  let conflicts =
    (if List.mem w1 (reads s2) || String.equal w1 w2 then [ w1 ] else [])
    @ if List.mem w2 (reads s1) then [ w2 ] else []
  in
  List.sort_uniq compare conflicts

let is_accumulation (s : St.stmt_info) =
  match s.St.op with Ast.Add_assign | Ast.Sub_assign -> true | Ast.Set | Ast.Mul_assign -> false

(* All (source access, sink access) pairs of a statement's self
   dependences on one array: write-after-write and the two orders of
   write/read on the written array. *)
let self_dep_pairs (s : St.stmt_info) =
  let w = s.St.write in
  let same_array (a : Access.t) = String.equal a.Access.array w.Access.array in
  let reads = List.filter same_array s.St.reads in
  let reads = if s.St.op = Ast.Set then reads else w :: reads in
  ((w, w) :: List.map (fun r -> (w, r)) reads)
  @ List.map (fun r -> (r, w)) reads

let check_permutation ~sid ~before_bands ~after_bands (s : St.stmt_info) =
  if is_accumulation s then []
  else begin
    let before_order = List.map (fun (b : St.band) -> b.St.iter) before_bands in
    let after_order = List.map (fun (b : St.band) -> b.St.iter) after_bands in
    let broken =
      List.exists
        (fun (src, dst) ->
          match distance_vector ~iters:before_order src dst with
          | None -> false
          | Some vec -> reorder_breaks ~before_order ~after_order vec)
        (self_dep_pairs s)
    in
    if broken then
      [
        Diag.errorf "E101"
          ~hint:"the permuted nest executes dependent instances in the wrong order"
          "S%d (writing '%s'): band permutation %s -> %s reverses a dependence on '%s'" sid
          s.St.write.Access.array
          (String.concat "," before_order)
          (String.concat "," after_order) s.St.write.Access.array;
      ]
    else []
  end

let check_stmt_level ~before ~after =
  let diags = ref [] in
  let emit d = diags := !diags @ [ d ] in
  let index tree =
    List.mapi (fun pos (bands, s) -> (s.St.sid, (pos, bands, s))) (St.stmts_with_context tree)
  in
  let b_idx = index before and a_idx = index after in
  List.iter
    (fun (sid, (_, _, s)) ->
      if not (List.mem_assoc sid a_idx) then
        emit
          (Diag.errorf "E103" "statement S%d (writing '%s') dropped by the rewrite" sid
             s.St.write.Access.array))
    b_idx;
  List.iter
    (fun (sid, (_, _, s)) ->
      if not (List.mem_assoc sid b_idx) then
        emit
          (Diag.errorf "E105" "statement S%d (writing '%s') introduced by the rewrite" sid
             s.St.write.Access.array))
    a_idx;
  (* per-statement band context *)
  List.iter
    (fun (sid, (_, bands_b, s)) ->
      match List.assoc_opt sid a_idx with
      | None -> ()
      | Some (_, bands_a, _) ->
          let names (bs : St.band list) = List.map (fun b -> b.St.iter) bs in
          let nb = names bands_b and na = names bands_a in
          let missing = List.filter (fun v -> not (List.mem v na)) nb in
          let added = List.filter (fun v -> not (List.mem v nb)) na in
          if missing <> [] || added <> [] then begin
            List.iter
              (fun v ->
                emit
                  (Diag.errorf "E104" "band '%s' around S%d (writing '%s') dropped by the rewrite"
                     v sid s.St.write.Access.array))
              missing;
            List.iter
              (fun v -> emit (Diag.errorf "E104" "band '%s' introduced around S%d" v sid))
              added
          end
          else if nb <> na then
            List.iter emit (check_permutation ~sid ~before_bands:bands_b ~after_bands:bands_a s))
    b_idx;
  (* relative order of dependent statements *)
  List.iter
    (fun (sid1, (pos1, bands1, s1)) ->
      List.iter
        (fun (sid2, (pos2, bands2, s2)) ->
          if pos1 < pos2 && sid1 <> sid2 then
            match (List.assoc_opt sid1 a_idx, List.assoc_opt sid2 a_idx) with
            | Some (apos1, _, _), Some (apos2, _, _) when apos1 > apos2 ->
                if not (Depgraph.independent_trees (wrap bands1 s1) (wrap bands2 s2)) then
                  let arrays = stmt_conflicts s1 s2 in
                  emit
                    (Diag.errorf "E101"
                       ~hint:"only independent statements may be reordered"
                       "dependent statements S%d and S%d (conflict on '%s') reordered by the rewrite"
                       sid1 sid2
                       (match arrays with a :: _ -> a | [] -> s1.St.write.Access.array))
            | _ -> ())
        b_idx)
    b_idx;
  !diags

(* ---------- dataflow-level validation ---------- *)

let rec ir_calls (stmt : Ir.stmt) =
  match stmt with
  | Ir.Call call -> [ call ]
  | Ir.For { body; _ } -> List.concat_map ir_calls body
  | Ir.Assign _ | Ir.Decl_scalar _ | Ir.Decl_array _ | Ir.Roi_begin | Ir.Roi_end -> []

let rec tree_calls = function
  | St.Code stmts -> List.concat_map ir_calls stmts
  | St.Band (_, child) | St.Mark (_, child) -> tree_calls child
  | St.Seq children -> List.concat_map tree_calls children
  | St.Stmt _ -> []

let check_batched after =
  let diags = ref [] in
  let region r = Regions.mat_ref_region ~env:[] r in
  let conflicts (x : Ir.mat_ref) (y : Ir.mat_ref) =
    String.equal x.Ir.array y.Ir.array && Regions.overlap (region x) (region y)
  in
  List.iter
    (fun call ->
      match call with
      | Ir.Cim_gemm_batched { batch; _ } ->
          let entries = List.mapi (fun i (a, b, c) -> (i, a, b, c)) batch in
          List.iter
            (fun (i, ai, bi, ci) ->
              List.iter
                (fun (j, aj, bj, cj) ->
                  if i < j then
                    (* entry j's inputs/output vs entry i's output, and
                       entry i's inputs vs entry j's output: overlapping
                       operand windows make the parallel launch
                       order-sensitive (disjoint tiles of one array are
                       fine, whole-window aliasing is not). *)
                    let conflict =
                      if List.exists (conflicts ci) [ aj; bj; cj ] then Some ci.Ir.array
                      else if List.exists (conflicts cj) [ ai; bi ] then Some cj.Ir.array
                      else None
                    in
                    match conflict with
                    | Some array ->
                        diags :=
                          !diags
                          @ [
                              Diag.errorf "E102"
                                ~hint:
                                  "batched kernels execute as one parallel launch; fused kernels \
                                   must be pairwise independent (paper Listing 2)"
                                "illegal fusion: batched GEMM entries %d and %d conflict on '%s'" i
                                j array;
                            ]
                    | None -> ())
                entries)
            entries
      | _ -> ())
    (tree_calls after);
  !diags

let describe_event tree =
  let sids = List.map (fun (s : St.stmt_info) -> s.St.sid) (St.stmts tree) in
  match sids with
  | [] -> "generated code"
  | sids -> "S" ^ String.concat ",S" (List.map string_of_int sids)

(* Can array [b]'s writes in [after] be fed (transitively, through any
   chain of intermediate arrays) by a value of [a] produced after [a]'s
   first write in [after]? *)
let flow_reproduced ~after_events ~a ~b =
  let activated = ref false in
  let tainted = ref (Strings.singleton a) in
  let reached = ref false in
  List.iter
    (fun (reads, writes) ->
      if (not !activated) && Strings.mem a writes then activated := true;
      if !activated && not (Strings.is_empty (Strings.inter reads !tainted)) then begin
        tainted := Strings.union !tainted writes;
        if Strings.mem b writes then reached := true
      end)
    after_events;
  !reached

let check_dataflow ~before ~after =
  let diags = ref [] in
  let emit d = diags := !diags @ [ d ] in
  let ev_b = top_events before and ev_a = top_events after in
  let rw t = (Deps.arrays_read t, Deps.arrays_written t) in
  let rwb = List.map rw ev_b and rwa = List.map rw ev_a in
  let union sel l = List.fold_left (fun acc x -> Strings.union acc (sel x)) Strings.empty l in
  let reads_b = union fst rwb
  and writes_b = union snd rwb
  and reads_a = union fst rwa
  and writes_a = union snd rwa in
  let touched_b = Strings.union reads_b writes_b in
  (* lost writes *)
  Strings.iter
    (fun arr ->
      if not (Strings.mem arr writes_a) then
        emit
          (Diag.errorf "E106" ~hint:"the rewrite must still compute every output array"
             "rewrite lost all writes to '%s'" arr))
    writes_b;
  (* dropped reads are suspicious but can be legal (e.g. beta = 0) *)
  Strings.iter
    (fun arr ->
      if not (Strings.mem arr reads_a) then
        emit (Diag.warningf "W108" "rewrite no longer reads '%s'" arr))
    reads_b;
  (* illegal fusion inside batched launches *)
  List.iter emit (check_batched after);
  (* array-granularity flow dependences must be reproducible *)
  let n = List.length ev_b in
  let evb = Array.of_list (List.combine ev_b rwb) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let ti, (_, wi) = evb.(i) and tj, (rj, wj) = evb.(j) in
      let carried = Strings.inter wi rj in
      if (not (Strings.is_empty carried)) && not (Depgraph.independent_trees ti tj) then
        Strings.iter
          (fun a ->
            Strings.iter
              (fun b ->
                if (not (String.equal a b)) && Strings.mem b touched_b then
                  if not (flow_reproduced ~after_events:rwa ~a ~b) then
                    emit
                      (Diag.errorf "E101"
                         ~hint:"the consumer must still run after the producer's new value is ready"
                         "flow dependence '%s' -> '%s' (%s before %s) not preserved by the rewrite"
                         a b (describe_event ti) (describe_event tj)))
              wj)
          carried
    done
  done;
  !diags

let check ~before ~after =
  if St.contains_code after || St.contains_code before then check_dataflow ~before ~after
  else check_stmt_level ~before ~after
