(** Structured diagnostics for the static-analysis layer.

    Every checker in [tdo_analysis] reports through this type: a stable
    code (["E102"], ["W001"], ...), a severity, a human message naming
    the offending array/statement, and an optional fix hint. Codes are
    grouped by family: [E0xx] IR well-formedness, [E05x]/[W05x]
    schedule-tree invariants, [E1xx] rewrite legality, [E2xx]/[W2xx]
    array bounds, [W0xx] lint warnings, [N0xx] explanatory notes. *)

type severity = Error | Warning | Note

type t = {
  code : string;
  severity : severity;
  message : string;
  fix_hint : string option;
}

val errorf : ?hint:string -> string -> ('a, unit, string, t) format4 -> 'a
(** [errorf ?hint code fmt ...] builds an [Error] diagnostic. *)

val warningf : ?hint:string -> string -> ('a, unit, string, t) format4 -> 'a
val notef : ?hint:string -> string -> ('a, unit, string, t) format4 -> 'a

val prefixed : string -> t -> t
(** [prefixed pass d] tags the message with the pass that produced it,
    e.g. [(interchange) dependent statements reordered ...]. *)

val is_error : t -> bool
val errors : t list -> t list
val has_errors : t list -> bool

val by_severity : t list -> t list
(** Stable sort, errors first. *)

val canonical : t list -> t list
(** Deterministic presentation order: sorted by (code, message) —
    messages embed the location (statement ids, array names) — then
    severity and hint, with exact duplicates removed. Printing a
    canonicalised list is byte-stable across runs. *)

val severity_label : severity -> string
val pp : Format.formatter -> t -> unit
val pp_list : Format.formatter -> t list -> unit
val to_string : t -> string
