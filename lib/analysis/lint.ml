module St = Tdo_poly.Schedule_tree
module Affine = Tdo_poly.Affine
module Access = Tdo_poly.Access
module Deps = Tdo_poly.Deps
module Scop_detect = Tdo_poly.Scop_detect
module Endurance = Tdo_pcm.Endurance
module Ir = Tdo_ir.Ir
module Ast = Tdo_lang.Ast
module Strings = Deps.Strings

type config = {
  xbar_rows : int;
  xbar_cols : int;
  enable_tiling : bool;
  min_intensity : float;
  cell_endurance : float;
  invocations_per_second : float;
  min_lifetime_years : float;
  fault_rate : float;
  abft_guard : bool;
  device_rows : int option;
  device_cols : int option;
}

let default_config =
  {
    xbar_rows = 256;
    xbar_cols = 256;
    enable_tiling = true;
    min_intensity = 4.0;
    cell_endurance = 1e7;
    invocations_per_second = 1.0;
    min_lifetime_years = 1.0;
    fault_rate = 0.0;
    abft_guard = false;
    device_rows = None;
    device_cols = None;
  }

(* ---------- W004 / W005: dead stores and unused arrays ---------- *)

let func ?(config = default_config) (f : Ir.func) =
  ignore config;
  (* reads from the liveness solver: the union of live-in sets over the
     whole graph is exactly the arrays the function ever reads *)
  let _, live = Dataflow.live_arrays f in
  let reads = Array.fold_left Strings.union Strings.empty live in
  let writes =
    List.fold_left
      (fun w stmt -> Strings.union w (snd (Deps.ir_arrays stmt)))
      Strings.empty f.Ir.body
  in
  let rec locals (stmt : Ir.stmt) =
    match stmt with
    | Ir.Decl_array { name; _ } -> [ name ]
    | Ir.For { body; _ } -> List.concat_map locals body
    | _ -> []
  in
  let local_arrays = List.concat_map locals f.Ir.body in
  let param_arrays =
    List.filter_map (fun (p : Ast.param) -> if p.Ast.dims = [] then None else Some p.Ast.pname) f.Ir.params
  in
  let unused name kind =
    if (not (Strings.mem name reads)) && not (Strings.mem name writes) then
      [ Diag.warningf "W005" "unused %s '%s'" kind name ]
    else []
  in
  List.concat_map
    (fun name ->
      if Strings.mem name writes && not (Strings.mem name reads) then
        [
          Diag.warningf "W004"
            ~hint:"a local array's final values are unobservable; delete the stores or return them"
            "dead stores: local array '%s' is written but never read" name;
        ]
      else unused name "local array")
    local_arrays
  @ List.concat_map (fun name -> unused name "array parameter") param_arrays

(* ---------- W001 / W002 / W003: offload profitability ---------- *)

type candidate = {
  sid : int;
  target : string;  (** written array *)
  pinned : string;  (** operand a crossbar mapping would pin *)
  macs : int;  (** statement instances = multiply-accumulates *)
  footprint : int;  (** cells of the pinned operand's region *)
  pinned_rows : int;
  pinned_cols : int;
  pinned_bounds : (int * int) list;
      (** box bounds of the pinned region — part of the W008 pin key *)
  pinned_red_axes : int list;
      (** subscript positions of the pinned access carrying a reduction
          iterator: [A\[j\]\[i\]] and [A\[i\]\[j\]] pin different layouts *)
  invariant_iters : string list;
      (** enclosing iterators appearing in no subscript (W010) *)
}

let box_cells = Regions.box_cells
let box_shape = Regions.box_shape

(* An offload candidate: an accumulation statement under a constant
   nest with at least one reduction iterator, reading at least one
   "matrix-like" operand (subscripts using both a reduction and an
   output iterator — the operand a crossbar mapping would pin). The
   profitability estimate pins the smallest such operand: the
   best-case MACs-per-crossbar-write. *)
let candidate_of (bands, (s : St.stmt_info)) =
  if s.St.op <> Ast.Add_assign then None
  else
    let extents =
      List.filter_map
        (fun (b : St.band) ->
          match (Affine.is_constant b.St.lo, Affine.is_constant b.St.hi) with
          | Some l, Some h when b.St.step > 0 && h > l ->
              Some (b.St.iter, (l, l + (b.St.step * ((h - 1 - l) / b.St.step))))
          | _ -> None)
        bands
    in
    if List.length extents <> List.length bands || bands = [] then None
    else
      let iters = List.map (fun (b : St.band) -> b.St.iter) bands in
      let write_vars = List.concat_map Affine.vars s.St.write.Access.indices in
      let out_iters = List.filter (fun v -> List.mem v write_vars) iters in
      let red_iters = List.filter (fun v -> not (List.mem v write_vars)) iters in
      if red_iters = [] then None
      else
        let matrix_like (a : Access.t) =
          let vs = List.concat_map Affine.vars a.Access.indices in
          List.exists (fun v -> List.mem v red_iters) vs
          && List.exists (fun v -> List.mem v out_iters) vs
        in
        let pinnable =
          List.filter_map
            (fun a ->
              if matrix_like a then
                match Access.region a ~extents with
                | Some box -> Some (a, box)
                | None -> None
              else None)
            s.St.reads
        in
        match
          List.stable_sort (fun (_, b1) (_, b2) -> compare (box_cells b1) (box_cells b2)) pinnable
        with
        | [] -> None
        | (pinned, box) :: _ ->
            let macs =
              List.fold_left
                (fun acc b ->
                  match St.band_extent b with Some n -> acc * n | None -> acc)
                1 bands
            in
            let rows, cols = box_shape box in
            let red_axes =
              List.concat
                (List.mapi
                   (fun i idx ->
                     if List.exists (fun v -> List.mem v red_iters) (Affine.vars idx) then [ i ]
                     else [])
                   pinned.Access.indices)
            in
            let used_vars =
              write_vars
              @ List.concat_map
                  (fun (a : Access.t) -> List.concat_map Affine.vars a.Access.indices)
                  s.St.reads
            in
            Some
              {
                sid = s.St.sid;
                target = s.St.write.Access.array;
                pinned = pinned.Access.array;
                macs;
                footprint = box_cells box;
                pinned_rows = rows;
                pinned_cols = cols;
                pinned_bounds = Tdo_poly.Domain.box_bounds box;
                pinned_red_axes = red_axes;
                invariant_iters = List.filter (fun v -> not (List.mem v used_vars)) iters;
              }

let candidates t = List.filter_map candidate_of (St.stmts_with_context t)

(* ---------- W008 / W009: cross-kernel pinning and coherence ---------- *)

let top_events = function St.Seq children -> children | t -> [ t ]

let event_label ev =
  match List.map (fun (s : St.stmt_info) -> s.St.sid) (St.stmts ev) with
  | [] -> "generated code"
  | sids -> "S" ^ String.concat ",S" (List.map string_of_int sids)

let intensity c = float_of_int c.macs /. float_of_int (max 1 c.footprint)

(* Replay the program's top-level events against the engine's
   single-slot pin-reuse check (the same generation-keyed model the
   offload census prices): a kernel that re-programs an operand window
   already programmed this generation — evicted by an unrelated pin in
   between — is a missed pin (W008). Alongside, track which arrays'
   freshest values a device kernel produced; a plain host statement
   reading one sits on the wrong side of the coherence boundary until a
   copy-back runs (W009). *)
let coherence ~config t =
  let diags = ref [] in
  let emit d = diags := !diags @ [ d ] in
  let gen = Hashtbl.create 8 in
  let generation a = Option.value ~default:0 (Hashtbl.find_opt gen a) in
  let bump a = Hashtbl.replace gen a (generation a + 1) in
  let device_fresh = Hashtbl.create 8 in
  let programmed = Hashtbl.create 8 in
  let current = ref None in
  List.iter
    (fun ev ->
      let cands =
        List.filter (fun c -> intensity c >= config.min_intensity) (candidates ev)
      in
      let reads = Deps.arrays_read ev and writes = Deps.arrays_written ev in
      if cands <> [] then
        List.iter
          (fun c ->
            let key = (c.pinned, c.pinned_red_axes, c.pinned_bounds, generation c.pinned) in
            (match !current with
            | Some k when k = key -> () (* adjacent kernels share the pin: no re-program *)
            | _ ->
                (match Hashtbl.find_opt programmed key with
                | Some prev ->
                    emit
                      (Diag.warningf "W008"
                         ~hint:
                           "reorder or fuse kernels sharing a pinned operand so they run \
                            adjacently; every avoided re-program saves the operand's full cell \
                            count in crossbar writes (the tuner's write-bytes model counts them)"
                         "redundant crossbar re-program: kernel S%d re-pins '%s' (%dx%d, \
                          unchanged since kernel S%d programmed it) after an eviction in between"
                         c.sid c.pinned c.pinned_rows c.pinned_cols prev)
                | None -> ());
                Hashtbl.replace programmed key c.sid;
                current := Some key);
            Hashtbl.replace device_fresh c.target c.sid)
          cands
      else if not (St.contains_code ev) then
        (* plain host statements; generated code is checked against the
           explicit runtime calls in its IR form (offload_ir) *)
        Strings.iter
          (fun a ->
            match Hashtbl.find_opt device_fresh a with
            | Some producer ->
                emit
                  (Diag.warningf "W009"
                     ~hint:
                       "the offloaded kernel's result lives in the crossbar until a cim_d2h \
                        copy-back; reading the host array before it runs observes stale data"
                     "stale host read: %s reads '%s' whose freshest value was produced by \
                      offloaded kernel S%d on the device"
                     (event_label ev) a producer)
            | None -> ())
          reads;
      Strings.iter
        (fun a ->
          bump a;
          if cands = [] then Hashtbl.remove device_fresh a)
        writes)
    (top_events t);
  !diags

let tree ?(config = default_config) t =
  let cands = candidates t in
  let diags = ref [] in
  let emit d = diags := !diags @ [ d ] in
  let programmed = ref 0 in
  List.iter
    (fun c ->
      let intensity = intensity c in
      if intensity < config.min_intensity then
        emit
          (Diag.warningf "W001"
             ~hint:
               "GEMV-class kernels re-program the crossbar as often as they use it; keep them on \
                the CPU (selective offload)"
             "kernel S%d writing '%s': compute intensity %.1f MACs per pinned cell of '%s' is \
              below the offload threshold %.1f"
             c.sid c.target intensity c.pinned config.min_intensity)
      else begin
        if c.invariant_iters <> [] then
          emit
            (Diag.warningf "W010"
               ~hint:
                 "hoist the kernel out of the invariant loop (for accumulations, scale by the \
                  trip count instead); each iteration re-launches — and may re-program — the \
                  identical kernel"
               "loop-invariant offload: kernel S%d writing '%s' sits under loop iterator%s %s \
                that appear%s in none of its subscripts"
               c.sid c.target
               (if List.length c.invariant_iters = 1 then "" else "s")
               (String.concat ", " (List.map (fun v -> "'" ^ v ^ "'") c.invariant_iters))
               (if List.length c.invariant_iters = 1 then "s" else ""));
        programmed := !programmed + c.footprint;
        if
          (c.pinned_rows > config.xbar_rows || c.pinned_cols > config.xbar_cols)
          && not config.enable_tiling
        then
          emit
            (Diag.warningf "W002"
               ~hint:"enable tiling (Listing 3) to decompose the operand into crossbar-sized tiles"
               "kernel S%d writing '%s': pinned operand '%s' (%dx%d) exceeds the %dx%d crossbar \
                and tiling is disabled"
               c.sid c.target c.pinned c.pinned_rows c.pinned_cols config.xbar_rows config.xbar_cols);
        let device_rows = Option.value ~default:config.xbar_rows config.device_rows in
        let device_cols = Option.value ~default:config.xbar_cols config.device_cols in
        let tile_rows = min c.pinned_rows config.xbar_rows in
        let tile_cols = min c.pinned_cols config.xbar_cols in
        if tile_rows > device_rows || tile_cols > device_cols then
          emit
            (Diag.warningf "W007"
               ~hint:
                 "the runtime library will re-tile every launch; tune with the device's real \
                  geometry (or clamp the tuned configuration to it)"
               "kernel S%d writing '%s': configured %dx%d tiles of pinned operand '%s' exceed \
                the device's %dx%d crossbar"
               c.sid c.target tile_rows tile_cols c.pinned device_rows device_cols)
      end)
    cands;
  (if !programmed > 0 then
     let traffic = float_of_int !programmed *. config.invocations_per_second in
     let years =
       Endurance.lifetime_years ~cell_endurance:config.cell_endurance
         ~crossbar_bytes:(config.xbar_rows * config.xbar_cols)
         ~write_bytes_per_second:traffic
     in
     if years < config.min_lifetime_years then
       emit
         (Diag.warningf "W003"
            ~hint:
              "reduce crossbar re-programming: fuse kernels sharing an operand, or pin the \
               operand that is written least"
            "endurance budget: %d crossbar cells programmed per region execution projects a \
             system lifetime of %.2f years (Eq. 1, floor %.1f)"
            !programmed years config.min_lifetime_years));
  if cands <> [] && config.fault_rate > 0.0 && not config.abft_guard then
    emit
      (Diag.warningf "W006"
         ~hint:
           "enable the ABFT checksum guard (Micro_engine.config.abft) so corrupted offloads are \
            detected instead of silently served"
         "offload configured without an ABFT guard on a device with fault rate %g: a stuck cell \
          corrupts results silently"
         config.fault_rate);
  !diags @ coherence ~config t

(* ---------- N001: why SCoP detection failed ---------- *)

let explain_scop_failure msg =
  let has sub =
    let n = String.length sub and m = String.length msg in
    let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
    go 0
  in
  let hint =
    if has "non-affine bound" then
      Some "loop bounds must be affine in outer iterators and parameters (Section III-A)"
    else if has "non-affine subscript" then
      Some "array subscripts must be affine for the polyhedral model to apply"
    else if has "scalar write" then
      Some
        "scalar assignments block SCoP modelling; accumulate into an array cell instead of a \
         scalar temporary"
    else if has "declaration" then Some "hoist declarations out of the region of interest"
    else if has "runtime call" then Some "the region already contains offloaded code"
    else if has "ROI marker" then Some "region-of-interest markers must not nest"
    else None
  in
  [ Diag.notef "N001" ?hint "no offload: SCoP detection failed: %s" msg ]

(* ---------- IR-mode coherence and pinning (explicit runtime calls) ---------- *)

let rec expr_mentions vars = function
  | Ast.Var v -> List.mem v vars
  | Ast.Int_lit _ | Ast.Float_lit _ -> false
  | Ast.Index (_, idx) -> List.exists (expr_mentions vars) idx
  | Ast.Binop (_, a, b) -> expr_mentions vars a || expr_mentions vars b
  | Ast.Neg e -> expr_mentions vars e

(* Stale host reads (W009) against the reaching-definitions solver: a
   device definition flowing into a host read means no [cim_d2h] ran in
   between on that path. *)
let stale_reads (f : Ir.func) =
  let g, reach = Dataflow.reaching_definitions f in
  let diags = ref [] in
  let emit d = diags := !diags @ [ d ] in
  Array.iter
    (fun (nd : Dataflow.node) ->
      match nd.Dataflow.point with
      | Dataflow.Atom ((Ir.Assign _ | Ir.Decl_scalar _) as s) ->
          let host_reads = fst (Deps.ir_arrays s) in
          Strings.iter
            (fun a ->
              if
                Dataflow.Defs.exists
                  (fun (d : Dataflow.Def.t) -> String.equal d.Dataflow.Def.array a && d.Dataflow.Def.on_device)
                  reach.(nd.Dataflow.id)
              then
                emit
                  (Diag.warningf "W009"
                     ~hint:"insert a cim_d2h copy-back between the kernel and the read"
                     "stale host read: '%s' is read on the host while its freshest value lives \
                      on the device"
                     a))
            host_reads
      | _ -> ())
    (Dataflow.nodes g);
  (* results still on the device when the function returns are stale for
     the caller *)
  Dataflow.Defs.iter
    (fun (d : Dataflow.Def.t) ->
      if
        d.Dataflow.Def.on_device
        && List.exists
             (fun (p : Ast.param) -> p.Ast.dims <> [] && String.equal p.Ast.pname d.Dataflow.Def.array)
             f.Ir.params
      then
        emit
          (Diag.warningf "W009"
             ~hint:"copy device results back before returning (cim_d2h)"
             "stale host read: '%s' still lives on the device at function exit; the caller \
              observes a stale host copy"
             d.Dataflow.Def.array))
    reach.(Dataflow.exit_id g);
  !diags

(* Redundant re-programs (W008) and loop-invariant launches (W010) over
   explicit [cim_gemm] calls: emulate the engine's generation-keyed
   single-slot reuse check exactly as the offload census does. Loop
   bodies containing calls are walked twice so a loop-carried eviction
   (pin A, overwrite the slot, come back to A next iteration) is
   observed; duplicate diagnostics from the second pass are merged. *)
let call_discipline (f : Ir.func) =
  let diags = ref [] in
  let emit d = if not (List.mem d !diags) then diags := !diags @ [ d ] in
  let gen = Hashtbl.create 8 in
  let generation a = Option.value ~default:0 (Hashtbl.find_opt gen a) in
  let bump a = Hashtbl.replace gen a (generation a + 1) in
  let pinned = ref None in
  let programmed = Hashtbl.create 8 in
  let rec has_call = function
    | Ir.Call _ -> true
    | Ir.For { body; _ } -> List.exists has_call body
    | _ -> false
  in
  let offsets (r : Ir.mat_ref) = [ r.Ir.row_off; r.Ir.col_off ] in
  let rec walk loop_vars (s : Ir.stmt) =
    match s with
    | Ir.For { var; body; _ } ->
        let times = if List.exists has_call body then 2 else 1 in
        for _ = 1 to times do
          List.iter (walk (var :: loop_vars)) body
        done
    | Ir.Assign { lhs; _ } -> if lhs.Ast.indices <> [] then bump lhs.Ast.base
    | Ir.Call (Ir.Cim_gemm { a; b; c; pin; _ }) ->
        let p = match pin with Ir.Pin_a -> a | Ir.Pin_b -> b in
        let loop_dependent r = List.exists (expr_mentions loop_vars) (offsets r) in
        if loop_vars <> [] && not (List.exists loop_dependent [ a; b; c ]) then
          emit
            (Diag.warningf "W010"
               ~hint:"hoist the call out of the loop: every iteration launches it unchanged"
               "loop-invariant offload: cim_gemm on '%s' under loop%s %s uses no loop-dependent \
                operand window"
               c.Ir.array
               (if List.length loop_vars = 1 then "" else "s")
               (String.concat ", "
                  (List.rev_map (fun v -> "'" ^ v ^ "'") loop_vars)));
        if loop_dependent p then pinned := None
        else begin
          let key =
            (p.Ir.array, p.Ir.row_off, p.Ir.col_off, p.Ir.rows, p.Ir.cols, p.Ir.trans,
             generation p.Ir.array)
          in
          (match !pinned with
          | Some k when k = key -> ()
          | _ ->
              (if Hashtbl.mem programmed key then
                 emit
                   (Diag.warningf "W008"
                      ~hint:
                        "group launches sharing a pinned operand adjacently; the engine reuses \
                         an unchanged pin and skips the re-program"
                      "redundant crossbar re-program: cim_gemm re-pins unchanged operand window \
                       '%s' (%d cells) after an eviction in between"
                      p.Ir.array (Regions.mat_ref_cells p)));
              Hashtbl.replace programmed key ();
              pinned := Some key)
        end;
        bump c.Ir.array
    | Ir.Call (Ir.Cim_gemm_batched { batch; _ }) ->
        (* a batched launch programs its entries as one fused unit *)
        pinned := None;
        List.iter (fun (_, _, (c : Ir.mat_ref)) -> bump c.Ir.array) batch
    | Ir.Call (Ir.Cim_im2col { dst; _ }) -> bump dst
    | Ir.Call _ | Ir.Decl_scalar _ | Ir.Decl_array _ | Ir.Roi_begin | Ir.Roi_end -> ()
  in
  List.iter (walk []) f.Ir.body;
  !diags

let offload_ir ?(config = default_config) (f : Ir.func) =
  ignore config;
  stale_reads f @ call_discipline f

let run ?(config = default_config) (f : Ir.func) =
  func ~config f
  @ (if Ir.contains_cim_calls f then offload_ir ~config f else [])
  @
  match Scop_detect.detect_func f with
  | Error msg -> explain_scop_failure msg
  | Ok t ->
      let ds = tree ~config t in
      if candidates t = [] then
        ds
        @ [
            Diag.notef "N002"
              ~hint:"offloadable kernels are accumulation loops with a matrix-shaped operand"
              "no offload: the region is a SCoP but contains no GEMM/GEMV/conv-shaped \
               accumulation";
          ]
      else ds
