module St = Tdo_poly.Schedule_tree
module Affine = Tdo_poly.Affine
module Access = Tdo_poly.Access
module Deps = Tdo_poly.Deps
module Scop_detect = Tdo_poly.Scop_detect
module Endurance = Tdo_pcm.Endurance
module Ir = Tdo_ir.Ir
module Ast = Tdo_lang.Ast
module Strings = Deps.Strings

type config = {
  xbar_rows : int;
  xbar_cols : int;
  enable_tiling : bool;
  min_intensity : float;
  cell_endurance : float;
  invocations_per_second : float;
  min_lifetime_years : float;
  fault_rate : float;
  abft_guard : bool;
  device_rows : int option;
  device_cols : int option;
}

let default_config =
  {
    xbar_rows = 256;
    xbar_cols = 256;
    enable_tiling = true;
    min_intensity = 4.0;
    cell_endurance = 1e7;
    invocations_per_second = 1.0;
    min_lifetime_years = 1.0;
    fault_rate = 0.0;
    abft_guard = false;
    device_rows = None;
    device_cols = None;
  }

(* ---------- W004 / W005: dead stores and unused arrays ---------- *)

let func ?(config = default_config) (f : Ir.func) =
  ignore config;
  let reads, writes =
    List.fold_left
      (fun (r, w) stmt ->
        let r', w' = Deps.ir_arrays stmt in
        (Strings.union r r', Strings.union w w'))
      (Strings.empty, Strings.empty) f.Ir.body
  in
  let rec locals (stmt : Ir.stmt) =
    match stmt with
    | Ir.Decl_array { name; _ } -> [ name ]
    | Ir.For { body; _ } -> List.concat_map locals body
    | _ -> []
  in
  let local_arrays = List.concat_map locals f.Ir.body in
  let param_arrays =
    List.filter_map (fun (p : Ast.param) -> if p.Ast.dims = [] then None else Some p.Ast.pname) f.Ir.params
  in
  let unused name kind =
    if (not (Strings.mem name reads)) && not (Strings.mem name writes) then
      [ Diag.warningf "W005" "unused %s '%s'" kind name ]
    else []
  in
  List.concat_map
    (fun name ->
      if Strings.mem name writes && not (Strings.mem name reads) then
        [
          Diag.warningf "W004"
            ~hint:"a local array's final values are unobservable; delete the stores or return them"
            "dead stores: local array '%s' is written but never read" name;
        ]
      else unused name "local array")
    local_arrays
  @ List.concat_map (fun name -> unused name "array parameter") param_arrays

(* ---------- W001 / W002 / W003: offload profitability ---------- *)

type candidate = {
  sid : int;
  target : string;  (** written array *)
  pinned : string;  (** operand a crossbar mapping would pin *)
  macs : int;  (** statement instances = multiply-accumulates *)
  footprint : int;  (** cells of the pinned operand's region *)
  pinned_rows : int;
  pinned_cols : int;
}

let box_cells box =
  List.fold_left (fun acc (lo, hi) -> acc * (hi - lo + 1)) 1 (Tdo_poly.Domain.box_bounds box)

let box_shape box =
  match Tdo_poly.Domain.box_bounds box with
  | [ (l0, h0) ] -> (h0 - l0 + 1, 1)
  | [ (l0, h0); (l1, h1) ] -> (h0 - l0 + 1, h1 - l1 + 1)
  | bounds ->
      (List.fold_left (fun acc (lo, hi) -> acc * (hi - lo + 1)) 1 bounds, 1)

(* An offload candidate: an accumulation statement under a constant
   nest with at least one reduction iterator, reading at least one
   "matrix-like" operand (subscripts using both a reduction and an
   output iterator — the operand a crossbar mapping would pin). The
   profitability estimate pins the smallest such operand: the
   best-case MACs-per-crossbar-write. *)
let candidate_of (bands, (s : St.stmt_info)) =
  if s.St.op <> Ast.Add_assign then None
  else
    let extents =
      List.filter_map
        (fun (b : St.band) ->
          match (Affine.is_constant b.St.lo, Affine.is_constant b.St.hi) with
          | Some l, Some h when b.St.step > 0 && h > l ->
              Some (b.St.iter, (l, l + (b.St.step * ((h - 1 - l) / b.St.step))))
          | _ -> None)
        bands
    in
    if List.length extents <> List.length bands || bands = [] then None
    else
      let iters = List.map (fun (b : St.band) -> b.St.iter) bands in
      let write_vars = List.concat_map Affine.vars s.St.write.Access.indices in
      let out_iters = List.filter (fun v -> List.mem v write_vars) iters in
      let red_iters = List.filter (fun v -> not (List.mem v write_vars)) iters in
      if red_iters = [] then None
      else
        let matrix_like (a : Access.t) =
          let vs = List.concat_map Affine.vars a.Access.indices in
          List.exists (fun v -> List.mem v red_iters) vs
          && List.exists (fun v -> List.mem v out_iters) vs
        in
        let pinnable =
          List.filter_map
            (fun a ->
              if matrix_like a then
                match Access.region a ~extents with
                | Some box -> Some (a.Access.array, box)
                | None -> None
              else None)
            s.St.reads
        in
        match
          List.sort (fun (_, b1) (_, b2) -> compare (box_cells b1) (box_cells b2)) pinnable
        with
        | [] -> None
        | (pinned, box) :: _ ->
            let macs =
              List.fold_left
                (fun acc b ->
                  match St.band_extent b with Some n -> acc * n | None -> acc)
                1 bands
            in
            let rows, cols = box_shape box in
            Some
              {
                sid = s.St.sid;
                target = s.St.write.Access.array;
                pinned;
                macs;
                footprint = box_cells box;
                pinned_rows = rows;
                pinned_cols = cols;
              }

let candidates t = List.filter_map candidate_of (St.stmts_with_context t)

let tree ?(config = default_config) t =
  let cands = candidates t in
  let diags = ref [] in
  let emit d = diags := !diags @ [ d ] in
  let programmed = ref 0 in
  List.iter
    (fun c ->
      let intensity = float_of_int c.macs /. float_of_int (max 1 c.footprint) in
      if intensity < config.min_intensity then
        emit
          (Diag.warningf "W001"
             ~hint:
               "GEMV-class kernels re-program the crossbar as often as they use it; keep them on \
                the CPU (selective offload)"
             "kernel S%d writing '%s': compute intensity %.1f MACs per pinned cell of '%s' is \
              below the offload threshold %.1f"
             c.sid c.target intensity c.pinned config.min_intensity)
      else begin
        programmed := !programmed + c.footprint;
        if
          (c.pinned_rows > config.xbar_rows || c.pinned_cols > config.xbar_cols)
          && not config.enable_tiling
        then
          emit
            (Diag.warningf "W002"
               ~hint:"enable tiling (Listing 3) to decompose the operand into crossbar-sized tiles"
               "kernel S%d writing '%s': pinned operand '%s' (%dx%d) exceeds the %dx%d crossbar \
                and tiling is disabled"
               c.sid c.target c.pinned c.pinned_rows c.pinned_cols config.xbar_rows config.xbar_cols);
        let device_rows = Option.value ~default:config.xbar_rows config.device_rows in
        let device_cols = Option.value ~default:config.xbar_cols config.device_cols in
        let tile_rows = min c.pinned_rows config.xbar_rows in
        let tile_cols = min c.pinned_cols config.xbar_cols in
        if tile_rows > device_rows || tile_cols > device_cols then
          emit
            (Diag.warningf "W007"
               ~hint:
                 "the runtime library will re-tile every launch; tune with the device's real \
                  geometry (or clamp the tuned configuration to it)"
               "kernel S%d writing '%s': configured %dx%d tiles of pinned operand '%s' exceed \
                the device's %dx%d crossbar"
               c.sid c.target tile_rows tile_cols c.pinned device_rows device_cols)
      end)
    cands;
  (if !programmed > 0 then
     let traffic = float_of_int !programmed *. config.invocations_per_second in
     let years =
       Endurance.lifetime_years ~cell_endurance:config.cell_endurance
         ~crossbar_bytes:(config.xbar_rows * config.xbar_cols)
         ~write_bytes_per_second:traffic
     in
     if years < config.min_lifetime_years then
       emit
         (Diag.warningf "W003"
            ~hint:
              "reduce crossbar re-programming: fuse kernels sharing an operand, or pin the \
               operand that is written least"
            "endurance budget: %d crossbar cells programmed per region execution projects a \
             system lifetime of %.2f years (Eq. 1, floor %.1f)"
            !programmed years config.min_lifetime_years));
  if cands <> [] && config.fault_rate > 0.0 && not config.abft_guard then
    emit
      (Diag.warningf "W006"
         ~hint:
           "enable the ABFT checksum guard (Micro_engine.config.abft) so corrupted offloads are \
            detected instead of silently served"
         "offload configured without an ABFT guard on a device with fault rate %g: a stuck cell \
          corrupts results silently"
         config.fault_rate);
  !diags

(* ---------- N001: why SCoP detection failed ---------- *)

let explain_scop_failure msg =
  let has sub =
    let n = String.length sub and m = String.length msg in
    let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
    go 0
  in
  let hint =
    if has "non-affine bound" then
      Some "loop bounds must be affine in outer iterators and parameters (Section III-A)"
    else if has "non-affine subscript" then
      Some "array subscripts must be affine for the polyhedral model to apply"
    else if has "scalar write" then
      Some
        "scalar assignments block SCoP modelling; accumulate into an array cell instead of a \
         scalar temporary"
    else if has "declaration" then Some "hoist declarations out of the region of interest"
    else if has "runtime call" then Some "the region already contains offloaded code"
    else if has "ROI marker" then Some "region-of-interest markers must not nest"
    else None
  in
  [ Diag.notef "N001" ?hint "no offload: SCoP detection failed: %s" msg ]

let run ?(config = default_config) (f : Ir.func) =
  func ~config f
  @
  match Scop_detect.detect_func f with
  | Error msg -> explain_scop_failure msg
  | Ok t ->
      let ds = tree ~config t in
      if candidates t = [] then
        ds
        @ [
            Diag.notef "N002"
              ~hint:"offloadable kernels are accumulation loops with a matrix-shaped operand"
              "no offload: the region is a SCoP but contains no GEMM/GEMV/conv-shaped \
               accumulation";
          ]
      else ds
