module St = Tdo_poly.Schedule_tree
module Affine = Tdo_poly.Affine
module Access = Tdo_poly.Access
module Domain = Tdo_poly.Domain
module Deps = Tdo_poly.Deps
module Ir = Tdo_ir.Ir
module Ast = Tdo_lang.Ast
module Strings = Deps.Strings

type region = Box of Domain.box | Top

(* 1-D boxes are widened to [n x 1] columns so statement accesses to a
   vector and the [n x 1] operand windows of runtime calls live in one
   rank and can be compared. *)
let normalise box =
  match Domain.box_bounds box with
  | [ b ] -> ( match Domain.box [ b; (0, 0) ] with Some b' -> b' | None -> box)
  | _ -> box

let box_cells box =
  List.fold_left (fun acc (lo, hi) -> acc * (hi - lo + 1)) 1 (Domain.box_bounds box)

let box_shape box =
  match Domain.box_bounds box with
  | [ (l0, h0) ] -> (h0 - l0 + 1, 1)
  | [ (l0, h0); (l1, h1) ] -> (h0 - l0 + 1, h1 - l1 + 1)
  | bounds -> (List.fold_left (fun acc (lo, hi) -> acc * (hi - lo + 1)) 1 bounds, 1)

let equal r1 r2 =
  match (r1, r2) with
  | Top, Top -> true
  | Box a, Box b -> Domain.box_bounds a = Domain.box_bounds b
  | Top, Box _ | Box _, Top -> false

let overlap r1 r2 =
  match (r1, r2) with
  | Top, _ | _, Top -> true
  | Box a, Box b -> Domain.box_rank a <> Domain.box_rank b || Domain.inter_box a b <> None

let cells = function Box b -> Some (box_cells b) | Top -> None

let pp ppf = function
  | Top -> Format.pp_print_string ppf "[*]"
  | Box b ->
      List.iter (fun (lo, hi) -> Format.fprintf ppf "[%d..%d]" lo hi) (Domain.box_bounds b)

(* ---------- footprints ---------- *)

type footprint = (string * region list) list

let overlap_any xs ys = List.exists (fun x -> List.exists (overlap x) ys) xs

let overlapping (xs : footprint) (ys : footprint) =
  List.filter_map
    (fun (arr, rx) ->
      match List.assoc_opt arr ys with
      | Some ry when overlap_any rx ry -> Some arr
      | _ -> None)
    xs

let pp_footprint ppf (fp : footprint) =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf (arr, regions) ->
      let printed = List.sort_uniq compare (List.map (Format.asprintf "%a" pp) regions) in
      Format.fprintf ppf "%s%s" arr (String.concat "+" printed))
    ppf fp

(* ---------- regions of single accesses and operands ---------- *)

let region_of_access ~env (a : Access.t) =
  match Access.region a ~extents:env with Some box -> Box (normalise box) | None -> Top

(* min/max of an affine form when each variable ranges over its
   inclusive interval; [None] when a variable has no extent *)
let affine_range ~env a =
  let rec go lo hi = function
    | [] -> Some (lo, hi)
    | v :: rest -> (
        match List.assoc_opt v env with
        | None -> None
        | Some (l, h) ->
            let c = Affine.coeff a v in
            go (lo + min (c * l) (c * h)) (hi + max (c * l) (c * h)) rest)
  in
  go (Affine.constant a) (Affine.constant a) (Affine.vars a)

let mat_ref_region ~env (r : Ir.mat_ref) =
  match (Affine.of_expr r.Ir.row_off, Affine.of_expr r.Ir.col_off) with
  | Some ro, Some co -> (
      match (affine_range ~env ro, affine_range ~env co) with
      | Some (rl, rh), Some (cl, ch) -> (
          (* op(M) = M^T swaps which extent runs down the physical rows *)
          let prows, pcols =
            if r.Ir.trans then (r.Ir.cols, r.Ir.rows) else (r.Ir.rows, r.Ir.cols)
          in
          match Domain.box [ (rl, rh + prows - 1); (cl, ch + pcols - 1) ] with
          | Some b -> Box b
          | None -> Top)
      | _ -> Top)
  | _ -> Top

let mat_ref_cells (r : Ir.mat_ref) = r.Ir.rows * r.Ir.cols

let band_env bands =
  List.fold_left
    (fun acc (b : St.band) ->
      match (acc, Affine.is_constant b.St.lo, Affine.is_constant b.St.hi) with
      | Some acc, Some lo, Some hi when hi > lo -> Some ((b.St.iter, (lo, hi - 1)) :: acc)
      | _ -> None)
    (Some []) bands

(* ---------- footprints of IR and schedule trees ---------- *)

let rec expr_arrays acc = function
  | Ast.Index (a, idx) -> List.fold_left expr_arrays (Strings.add a acc) idx
  | Ast.Binop (_, a, b) -> expr_arrays (expr_arrays acc a) b
  | Ast.Neg e -> expr_arrays acc e
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Var _ -> acc

let const_of_expr e =
  match Affine.of_expr e with Some a -> Affine.is_constant a | None -> None

(* walk straight IR with the current constant loop intervals; [read]
   and [write] receive each touched array with its region *)
let rec ir_stmt_regions ~env ~read ~write (s : Ir.stmt) =
  let reads_of_expr e =
    match Access.reads_of_expr e with
    | Some accs -> List.iter (fun (a : Access.t) -> read a.Access.array (region_of_access ~env a)) accs
    | None ->
        (* a non-affine subscript hides which cells are read *)
        Strings.iter (fun arr -> read arr Top) (expr_arrays Strings.empty e)
  in
  match s with
  | Ir.For { var; lo; hi; step; body } ->
      let env = List.remove_assoc var env in
      let env =
        match (const_of_expr lo, const_of_expr hi) with
        | Some l, Some h when step > 0 && h > l ->
            (var, (l, l + (step * ((h - 1 - l) / step)))) :: env
        | _ -> env
      in
      List.iter (ir_stmt_regions ~env ~read ~write) body
  | Ir.Assign { lhs; op; rhs } ->
      (if lhs.Ast.indices <> [] then
         let wregion =
           match Access.of_lvalue lhs with
           | Some a -> region_of_access ~env a
           | None -> Top
         in
         write lhs.Ast.base wregion;
         if op <> Ast.Set then read lhs.Ast.base wregion);
      List.iter reads_of_expr lhs.Ast.indices;
      reads_of_expr rhs
  | Ir.Decl_scalar { init = Some e; _ } -> reads_of_expr e
  | Ir.Decl_scalar _ | Ir.Decl_array _ | Ir.Roi_begin | Ir.Roi_end -> ()
  | Ir.Call c -> (
      let mat role (r : Ir.mat_ref) = role r.Ir.array (mat_ref_region ~env r) in
      match c with
      | Ir.Cim_init -> ()
      | Ir.Cim_alloc { array } | Ir.Cim_free { array } | Ir.Cim_h2d { array } -> read array Top
      | Ir.Cim_d2h { array } ->
          read array Top;
          write array Top
      | Ir.Cim_gemm { a; b; c = cref; _ } ->
          mat read a;
          mat read b;
          mat read cref;
          mat write cref
      | Ir.Cim_gemm_batched { batch; _ } ->
          List.iter
            (fun (a, b, cref) ->
              mat read a;
              mat read b;
              mat read cref;
              mat write cref)
            batch
      | Ir.Cim_im2col { src; dst; _ } ->
          read src Top;
          read dst Top;
          write dst Top)

let make_table () =
  let table : (string, region list ref) Hashtbl.t = Hashtbl.create 8 in
  let add arr region =
    match Hashtbl.find_opt table arr with
    | Some rs -> rs := region :: !rs
    | None -> Hashtbl.add table arr (ref [ region ])
  in
  let finish () =
    Hashtbl.fold (fun arr rs acc -> (arr, List.rev !rs) :: acc) table []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  (add, finish)

let ir_footprint ~writes stmts =
  let add, finish = make_table () in
  let read arr r = if not writes then add arr r in
  let write arr r = if writes then add arr r in
  List.iter (ir_stmt_regions ~env:[] ~read ~write) stmts;
  finish ()

let tree_footprint ~writes t =
  let add, finish = make_table () in
  (* statement leaves: one region per access over the band extents,
     Top for the whole statement when a band bound is not constant —
     the precision of Deps.access_regions *)
  List.iter
    (fun (bands, (s : St.stmt_info)) ->
      let env = band_env bands in
      let accesses =
        if writes then [ s.St.write ]
        else s.St.reads @ if s.St.op = Ast.Set then [] else [ s.St.write ]
      in
      List.iter
        (fun (a : Access.t) ->
          let region =
            match env with None -> Top | Some env -> region_of_access ~env a
          in
          add a.Access.array region)
        accesses)
    (St.stmts_with_context t);
  (* Code subtrees: walk the lowered IR under the enclosing bands *)
  let read arr r = if not writes then add arr r in
  let write arr r = if writes then add arr r in
  let rec walk env = function
    | St.Code stmts -> List.iter (ir_stmt_regions ~env ~read ~write) stmts
    | St.Band (b, child) ->
        let env = List.remove_assoc b.St.iter env in
        let env =
          match (Affine.is_constant b.St.lo, Affine.is_constant b.St.hi) with
          | Some lo, Some hi when hi > lo -> (b.St.iter, (lo, hi - 1)) :: env
          | _ -> env
        in
        walk env child
    | St.Mark (_, child) -> walk env child
    | St.Seq children -> List.iter (walk env) children
    | St.Stmt _ -> ()
  in
  walk [] t;
  finish ()
