(** Offload-oriented lint rules — the advisory layer of the analysis
    library. Nothing here rejects a program; every rule encodes a
    performance or endurance argument from the paper:

    - {b W001} low compute intensity: a matched accumulation kernel
      whose MACs-per-pinned-cell ratio falls below the selective-offload
      threshold (GEMV-class kernels such as gesummv/bicg/mvt, which the
      paper's evaluation keeps on the CPU).
    - {b W002} crossbar overflow with tiling disabled: the operand that
      would be pinned does not fit the crossbar, so the kernel cannot be
      offloaded at all.
    - {b W003} endurance-budget exhaustion: projected system lifetime
      under Eq. 1 for the region's crossbar programming traffic falls
      below the configured minimum.
    - {b W004}/{b W005} dead stores / unused arrays: local arrays
      written but never read, and arrays never referenced.
    - {b W006} unguarded offload on a faulty device: the target device
      has a nonzero fault rate but the ABFT checksum guard is off, so a
      stuck cell corrupts results silently.
    - {b W007} tile footprint exceeds the physical crossbar: the
      compile configuration's geometry (e.g. a tuned one) produces
      tiles larger than the device's array, so every launch is re-tiled
      by the runtime library instead of mapping 1:1.
    - {b W008} redundant crossbar re-program (missed pin): a kernel
      re-programs an operand window that an earlier kernel already
      programmed and that nothing overwrote in between — an unrelated
      pin evicted it. Replays the engine's generation-keyed single-slot
      reuse check, the same model {!Tdo_tactics.Offload.plan} prices,
      so a W008 program shows strictly larger
      {!Tdo_tune.Cost_model.write_bytes} than its reordered variant.
    - {b W009} stale host read: a host statement (or the caller, at
      function exit) reads an array whose freshest value a device
      kernel produced, with no [cim_d2h] copy-back in between. At
      source level this is an event-order walk; over explicit runtime
      calls it is the {!Dataflow.reaching_definitions} device-placement
      analysis.
    - {b W010} loop-invariant offload: an offloadable kernel (or an
      explicit [cim_gemm]) sits under a loop iterator that appears in
      none of its subscripts/operand windows — every iteration
      re-launches the identical kernel.
    - {b N001} why SCoP detection failed, translating the detector's
      obstruction into an actionable note ([--explain-no-offload]).
    - {b N002} SCoP detected but nothing looked offloadable. *)

type config = {
  xbar_rows : int;
  xbar_cols : int;
  enable_tiling : bool;
  min_intensity : float;  (** W001 threshold, MACs per pinned cell *)
  cell_endurance : float;  (** Eq. 1 parameters for W003 *)
  invocations_per_second : float;
  min_lifetime_years : float;
  fault_rate : float;  (** W006: expected device fault rate, 0 = pristine *)
  abft_guard : bool;  (** W006: is the checksum guard enabled? *)
  device_rows : int option;
  device_cols : int option;
      (** W007: the physical crossbar geometry when it differs from the
          compile configuration's [xbar_rows]/[xbar_cols]; [None] means
          they agree and W007 cannot fire *)
}

val default_config : config
(** 256x256 crossbar, tiling on, intensity threshold 4.0, endurance
    1e7 writes at one region execution per second, one-year lifetime
    floor, fault rate 0 with the ABFT guard off, device geometry equal
    to the compile geometry. *)

val func : ?config:config -> Tdo_ir.Ir.func -> Diag.t list
(** Dead-store / unused-array rules (W004, W005). *)

val tree : ?config:config -> Tdo_poly.Schedule_tree.t -> Diag.t list
(** Profitability, overflow and endurance rules (W001-W003, W010) over
    the accumulation kernels of a detected SCoP, then the cross-kernel
    pinning/coherence replay (W008, W009) over its top-level events. *)

val offload_ir : ?config:config -> Tdo_ir.Ir.func -> Diag.t list
(** IR-mode rules over explicit runtime calls (compiled or hand-written
    offload code): W009 via reaching definitions with host/device
    placement, W008/W010 by replaying the engine's pin-reuse discipline
    over [cim_gemm] launches (loop bodies containing calls are walked
    twice so loop-carried evictions are observed; duplicates merged). *)

val explain_scop_failure : string -> Diag.t list
(** Translate a {!Tdo_poly.Scop_detect} error message into N001 notes. *)

val run : ?config:config -> Tdo_ir.Ir.func -> Diag.t list
(** The whole lint pass: [func] rules, then SCoP detection feeding
    either [tree] rules or [explain_scop_failure]. *)
