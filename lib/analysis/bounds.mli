(** Polyhedral out-of-bounds proof.

    Every array access (statement subscripts and the operand windows of
    [cim_*] runtime calls alike) is bounded over the constant-extent
    loop nest enclosing it; an access whose region can escape the
    array's declared extents is reported with a {e concrete witness
    point} — the iterator assignment that realises the violation — so
    the diagnostic reads like a failing test case, not a may-alias
    shrug (E201 overflow, E202 underflow).

    Accesses under loops with non-constant (parametric) bounds cannot
    be decided by the box domain and are reported as N203 notes: the
    proof is honest about what it could not check. *)

val func : Tdo_ir.Ir.func -> Diag.t list
(** Empty list = every access provably in bounds. *)

val tree : ?dims:(string * int list) list -> Tdo_poly.Schedule_tree.t -> Diag.t list
(** Same proof over a schedule tree, with band ranges as the iteration
    space. [dims] supplies array extents (e.g. from the function
    parameters); arrays without an entry are skipped. *)
