(** Structural well-formedness verifier — the analysis-layer analogue
    of LLVM's IR verifier, run over [Ir.func] and [Schedule_tree.t].

    IR checks (E0xx): defs-before-use of scalars and arrays, array
    rank agreement, affine/constant-evaluable loop bounds with positive
    steps, properly nested ROI markers, and runtime-call checking
    against the [cim_*] signature table — operand shape consistency
    with the call's [m]/[n]/[k], and a device-state machine (init
    before use, malloc before transfer/compute, no use after free).

    Schedule-tree checks (E05x/W05x): positive band steps, no empty
    [Seq], unique statement ids, no iterator shadowing between nested
    bands, and every variable in an access subscript or statement
    right-hand side bound by an enclosing band or a declared free
    symbol (the domain invariant). *)

val signature_table : (string * string) list
(** [runtime entry point -> C signature] for the [polly_cim*] library,
    quoted in E009 diagnostics. *)

val func : Tdo_ir.Ir.func -> Diag.t list
(** Empty list = well-formed. *)

val tree : ?free:string list -> Tdo_poly.Schedule_tree.t -> Diag.t list
(** [free] lists symbols (function parameters) that may appear unbound
    in subscripts and right-hand sides. *)
