module Ir = Tdo_ir.Ir
module Ast = Tdo_lang.Ast
module Deps = Tdo_poly.Deps
module Strings = Deps.Strings

module type LATTICE = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
end

type direction = Forward | Backward

type point = Entry | Exit | Head of { var : string } | Atom of Ir.stmt

type node = { id : int; point : point; loops : string list }

type graph = {
  node_arr : node array;
  succ_arr : int list array;
  pred_arr : int list array;
  entry : int;
  exit_ : int;
}

let nodes g = g.node_arr
let succs g i = g.succ_arr.(i)
let preds g i = g.pred_arr.(i)
let entry_id g = g.entry
let exit_id g = g.exit_

let graph_of_func (f : Ir.func) =
  let rev_nodes = ref [] and count = ref 0 and edges = ref [] in
  let add point loops =
    let id = !count in
    incr count;
    rev_nodes := { id; point; loops } :: !rev_nodes;
    id
  in
  let edge a b = edges := (a, b) :: !edges in
  let entry = add Entry [] in
  let rec emit ~loops pred (s : Ir.stmt) =
    match s with
    | Ir.For { var; body; _ } ->
        let head = add (Head { var }) loops in
        edge pred head;
        let last = List.fold_left (fun p st -> emit ~loops:(var :: loops) p st) head body in
        edge last head;
        (* the loop's continuation hangs off the head: the zero-trip
           path and the post-iteration path join there *)
        head
    | s ->
        let id = add (Atom s) loops in
        edge pred id;
        id
  in
  let last = List.fold_left (fun p st -> emit ~loops:[] p st) entry f.Ir.body in
  let exit_ = add Exit [] in
  edge last exit_;
  let n = !count in
  let node_arr = Array.of_list (List.rev !rev_nodes) in
  let succ_arr = Array.make n [] and pred_arr = Array.make n [] in
  List.iter
    (fun (a, b) ->
      succ_arr.(a) <- b :: succ_arr.(a);
      pred_arr.(b) <- a :: pred_arr.(b))
    !edges;
  { node_arr; succ_arr; pred_arr; entry; exit_ }

module Solve (L : LATTICE) = struct
  type result = { input : L.t array; output : L.t array }

  let run ~direction g ~init ~transfer =
    let n = Array.length g.node_arr in
    let input = Array.make n L.bottom and output = Array.make n L.bottom in
    let sources, start, next =
      match direction with
      | Forward -> ((fun i -> g.pred_arr.(i)), g.entry, fun i -> g.succ_arr.(i))
      | Backward -> ((fun i -> g.succ_arr.(i)), g.exit_, fun i -> g.pred_arr.(i))
    in
    let queued = Array.make n false in
    let queue = Queue.create () in
    let push i =
      if not queued.(i) then begin
        queued.(i) <- true;
        Queue.add i queue
      end
    in
    Array.iter (fun (nd : node) -> push nd.id) g.node_arr;
    while not (Queue.is_empty queue) do
      let i = Queue.pop queue in
      queued.(i) <- false;
      let incoming =
        List.fold_left (fun acc s -> L.join acc output.(s)) L.bottom (sources i)
      in
      let incoming = if i = start then L.join incoming init else incoming in
      input.(i) <- incoming;
      let out = transfer g.node_arr.(i) incoming in
      if not (L.equal out output.(i)) then begin
        output.(i) <- out;
        List.iter push (next i)
      end
    done;
    { input; output }
end

(* ---------- reaching definitions with host/device placement ---------- *)

module Def = struct
  type t = { site : int; array : string; on_device : bool }

  let compare = compare
end

module Defs = Set.Make (Def)

module Reaching_solver = Solve (struct
  type t = Defs.t

  let bottom = Defs.empty
  let equal = Defs.equal
  let join = Defs.union
end)

let reaching_definitions (f : Ir.func) =
  let g = graph_of_func f in
  let kill arr defs = Defs.filter (fun (d : Def.t) -> not (String.equal d.array arr)) defs in
  let kill_device arr defs =
    Defs.filter (fun (d : Def.t) -> not (String.equal d.array arr && d.on_device)) defs
  in
  let define ~site ~on_device arr defs =
    Defs.add { Def.site; array = arr; on_device } (kill arr defs)
  in
  let transfer (nd : node) fact =
    match nd.point with
    | Entry | Exit | Head _ -> fact
    | Atom (Ir.Assign { lhs; _ }) when lhs.Ast.indices <> [] ->
        define ~site:nd.id ~on_device:false lhs.Ast.base fact
    | Atom (Ir.Call c) -> (
        match c with
        | Ir.Cim_d2h { array } -> define ~site:nd.id ~on_device:false array fact
        | Ir.Cim_h2d { array } ->
            (* the device copy now mirrors the host: nothing lives
               only on the device any more *)
            kill_device array fact
        | Ir.Cim_gemm { c = cref; _ } ->
            define ~site:nd.id ~on_device:true cref.Ir.array fact
        | Ir.Cim_gemm_batched { batch; _ } ->
            List.fold_left
              (fun acc (_, _, (cref : Ir.mat_ref)) ->
                define ~site:nd.id ~on_device:true cref.Ir.array acc)
              fact batch
        | Ir.Cim_im2col { dst; _ } -> define ~site:nd.id ~on_device:true dst fact
        | Ir.Cim_init | Ir.Cim_alloc _ | Ir.Cim_free _ -> fact)
    | Atom _ -> fact
  in
  let init =
    List.fold_left
      (fun acc (p : Ast.param) ->
        if p.Ast.dims = [] then acc
        else Defs.add { Def.site = g.entry; array = p.Ast.pname; on_device = false } acc)
      Defs.empty f.Ir.params
  in
  let r = Reaching_solver.run ~direction:Forward g ~init ~transfer in
  (g, r.Reaching_solver.input)

(* ---------- array liveness ---------- *)

module Live_solver = Solve (struct
  type t = Strings.t

  let bottom = Strings.empty
  let equal = Strings.equal
  let join = Strings.union
end)

let live_arrays (f : Ir.func) =
  let g = graph_of_func f in
  let transfer (nd : node) fact =
    match nd.point with
    | Atom s -> Strings.union (fst (Deps.ir_arrays s)) fact
    | Entry | Exit | Head _ -> fact
  in
  let r = Live_solver.run ~direction:Backward g ~init:Strings.empty ~transfer in
  (g, r.Live_solver.output)
