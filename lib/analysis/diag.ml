type severity = Error | Warning | Note

type t = {
  code : string;
  severity : severity;
  message : string;
  fix_hint : string option;
}

let make severity ?hint code message = { code; severity; message; fix_hint = hint }
let errorf ?hint code fmt = Printf.ksprintf (make Error ?hint code) fmt
let warningf ?hint code fmt = Printf.ksprintf (make Warning ?hint code) fmt
let notef ?hint code fmt = Printf.ksprintf (make Note ?hint code) fmt

let prefixed pass d = { d with message = Printf.sprintf "(%s) %s" pass d.message }

let is_error d = d.severity = Error
let errors ds = List.filter is_error ds
let has_errors ds = List.exists is_error ds

let rank = function Error -> 0 | Warning -> 1 | Note -> 2
let by_severity ds = List.stable_sort (fun a b -> compare (rank a.severity) (rank b.severity)) ds

let canonical ds =
  List.sort_uniq
    (fun a b ->
      let c = compare a.code b.code in
      if c <> 0 then c
      else
        let c = compare a.message b.message in
        if c <> 0 then c
        else
          let c = compare (rank a.severity) (rank b.severity) in
          if c <> 0 then c else compare a.fix_hint b.fix_hint)
    ds

let severity_label = function Error -> "error" | Warning -> "warning" | Note -> "note"

let pp ppf d =
  Format.fprintf ppf "%s[%s]: %s" (severity_label d.severity) d.code d.message;
  match d.fix_hint with
  | None -> ()
  | Some hint -> Format.fprintf ppf "@,  hint: %s" hint

let pp_list ppf ds =
  Format.pp_open_vbox ppf 0;
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp ppf ds;
  Format.pp_close_box ppf ()

let to_string d = Format.asprintf "@[<v>%a@]" pp d
