(** Generic worklist dataflow over the [Ir] statement graph.

    The IR keeps loops first-class, so the control-flow graph is
    recovered structurally: one node per atomic statement, one head
    node per loop (bound evaluation) with a back edge from the last
    body statement and an exit edge to the loop's continuation, plus
    distinguished entry/exit nodes. The solver is a classic worklist
    fixpoint over any join-semilattice, in either direction; the two
    instantiations the analysis layer uses — reaching definitions with
    host/device placement, and array liveness — are provided below. *)

module Ir = Tdo_ir.Ir
module Strings = Tdo_poly.Deps.Strings

module type LATTICE = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
end

type direction = Forward | Backward

type point =
  | Entry
  | Exit
  | Head of { var : string }  (** loop-bound evaluation of iterator [var] *)
  | Atom of Ir.stmt  (** any non-loop statement *)

type node = { id : int; point : point; loops : string list  (** enclosing iterators, innermost first *) }

type graph

val graph_of_func : Ir.func -> graph
val nodes : graph -> node array
(** In program order ([Entry] first, [Exit] last). *)

val succs : graph -> int -> int list
val preds : graph -> int -> int list
val entry_id : graph -> int
val exit_id : graph -> int

module Solve (L : LATTICE) : sig
  type result = {
    input : L.t array;
        (** fact flowing into each node along the analysis direction:
            join over predecessors' outputs (forward) or successors'
            outputs (backward) *)
    output : L.t array;  (** [transfer node input] at the fixpoint *)
  }

  val run : direction:direction -> graph -> init:L.t -> transfer:(node -> L.t -> L.t) -> result
  (** [init] seeds the entry node (forward) or the exit node
      (backward). Terminates for any finite-height lattice. *)
end

(** {1 Reaching definitions}

    Array-granularity last-definition analysis with placement: a
    definition records where the array's freshest value lives. Host
    assignments and [d2h] copies define on the host; [gemm]/[im2col]
    calls define on the device; any definition kills the previous ones
    of that array, and [h2d] retires device definitions (the device
    copy now mirrors the host). A device definition reaching a host
    read is exactly lint W009's stale-read hazard. *)

module Def : sig
  type t = { site : int; array : string; on_device : bool }

  val compare : t -> t -> int
end

module Defs : Set.S with type elt = Def.t

val reaching_definitions : Ir.func -> graph * Defs.t array
(** Per-node {e incoming} definition sets; array parameters are
    host-defined at entry. *)

(** {1 Array liveness} *)

val live_arrays : Ir.func -> graph * Strings.t array
(** Backward liveness at array granularity: the arrays read at or
    after each node (partial writes never kill). The per-node sets are
    live-in; their union over all nodes is exactly the arrays the
    function ever reads, which is how {!Lint} drives W004/W005. *)
