(** Translation validation for the offload pipeline — an independent
    re-derivation of the dependence relations before and after a
    rewrite, in the spirit of verify-after-each-pass.

    Two granularities, matching the two kinds of rewrite the tactics
    pipeline performs:

    - {b Statement level} ([check_stmt_level]) for rewrites that keep
      statement leaves (loop interchange, band restructuring, test
      mutations): statements are matched by [sid]; dropped or
      introduced statements, dropped bands, reordered dependent
      statements, and band permutations whose dependence distance
      vectors become lexicographically negative are all rejected.
      Accumulation statements ([+=]/[-=]) accept instance reordering,
      consistent with the reduction-reassociation semantics used
      throughout this flow.

    - {b Dataflow level} ([check_dataflow]) for the full offload
      rewrite, whose output contains opaque [Code] nodes full of
      runtime calls: array-granularity flow dependences of the source
      tree must be reproducible in the rewritten tree (transitively,
      through compiler-introduced temporaries), no writes may be lost,
      and every [polly_cimBlasGemmBatched] batch must be pairwise
      conflict-free — fusing dependent kernels into one parallel batch
      is the classic silent-corruption bug this catches.

    [check] dispatches on the presence of [Code] nodes. *)

module St = Tdo_poly.Schedule_tree

val check : before:St.t -> after:St.t -> Diag.t list
val check_stmt_level : before:St.t -> after:St.t -> Diag.t list
val check_dataflow : before:St.t -> after:St.t -> Diag.t list
