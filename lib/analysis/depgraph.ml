module St = Tdo_poly.Schedule_tree

type kind = Raw | War | Waw

let kind_label = function Raw -> "RAW" | War -> "WAR" | Waw -> "WAW"

type node = {
  index : int;
  label : string;
  reads : Regions.footprint;
  writes : Regions.footprint;
}

type edge = { src : int; dst : int; kind : kind; array : string }

type t = { nodes : node list; edges : edge list }

let top_events = function St.Seq children -> children | t -> [ t ]

let label_of tree =
  match List.map (fun (s : St.stmt_info) -> s.St.sid) (St.stmts tree) with
  | [] -> if St.contains_code tree then "code" else "empty"
  | sids -> "S" ^ String.concat ",S" (List.map string_of_int sids)

let node_of index tree =
  {
    index;
    label = label_of tree;
    reads = Regions.tree_footprint ~writes:false tree;
    writes = Regions.tree_footprint ~writes:true tree;
  }

(* dependences from [x] (earlier) to [y] (later) *)
let edges_between x y =
  let mk kind arrays =
    List.map (fun array -> { src = x.index; dst = y.index; kind; array }) arrays
  in
  mk Raw (Regions.overlapping x.writes y.reads)
  @ mk War (Regions.overlapping x.reads y.writes)
  @ mk Waw (Regions.overlapping x.writes y.writes)

let of_tree tree =
  let nodes = List.mapi node_of (top_events tree) in
  let rec pairs acc = function
    | [] -> acc
    | x :: rest -> pairs (acc @ List.concat_map (edges_between x) rest) rest
  in
  { nodes; edges = pairs [] nodes }

let independent g i j =
  not
    (List.exists
       (fun e -> (e.src = i && e.dst = j) || (e.src = j && e.dst = i))
       g.edges)

let independent_trees x y = edges_between (node_of 0 x) (node_of 1 y) = []

let to_dot g =
  let buf = Buffer.create 256 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph depgraph {\n";
  pr "  rankdir=LR;\n";
  pr "  node [shape=box, fontname=\"monospace\"];\n";
  List.iter
    (fun n ->
      pr "  n%d [label=\"%s\\nW: %s\\nR: %s\"];\n" n.index n.label
        (Format.asprintf "%a" Regions.pp_footprint n.writes)
        (Format.asprintf "%a" Regions.pp_footprint n.reads))
    g.nodes;
  let style = function Raw -> "solid" | War -> "dashed" | Waw -> "dotted" in
  List.iter
    (fun e ->
      pr "  n%d -> n%d [label=\"%s %s\", style=%s];\n" e.src e.dst (kind_label e.kind)
        e.array (style e.kind))
    g.edges;
  pr "}\n";
  Buffer.contents buf
