(** Program-level kernel dependence graph.

    Nodes are the top-level events of a schedule tree (the children of
    the root [Seq] — kernel nests, host statements, generated code);
    edges are RAW/WAR/WAW dependences between events derived from
    {!Regions} footprint overlap. Two events without an edge commute:
    this is the proof the fusion rewrite consults ([Legality],
    {!Tdo_tactics.Offload}), and [tdoc --depgraph] exports the graph
    as GraphViz DOT. *)

module St = Tdo_poly.Schedule_tree

type kind = Raw | War | Waw

val kind_label : kind -> string

type node = {
  index : int;  (** position in the top-level sequence *)
  label : string;  (** ["S1,S2"] from statement ids, or ["code"] *)
  reads : Regions.footprint;
  writes : Regions.footprint;
}

type edge = { src : int; dst : int; kind : kind; array : string }

type t = { nodes : node list; edges : edge list }

val of_tree : St.t -> t
(** A tree that is not a [Seq] yields a single-node graph. *)

val independent : t -> int -> int -> bool
(** No dependence edge in either direction between the two events:
    executing them in either order gives identical results (up to the
    floating-point reassociation this flow already accepts). *)

val independent_trees : St.t -> St.t -> bool
(** {!independent} over a two-event graph. At least as precise as
    {!Tdo_poly.Deps.independent}: identical on statement-only trees,
    sharper on [Code] events whose runtime-call operand windows get
    real regions instead of whole-array unknowns. *)

val to_dot : t -> string
(** GraphViz DOT, deterministic: nodes in sequence order annotated
    with their write/read footprints, edges labelled [RAW/WAR/WAW
    array] (solid/dashed/dotted). *)
