module Ir = Tdo_ir.Ir
module Ast = Tdo_lang.Ast
module Affine = Tdo_poly.Affine
module St = Tdo_poly.Schedule_tree
module Access = Tdo_poly.Access

let signature_table =
  [
    ("polly_cimInit", "polly_cimInit(int device)");
    ("polly_cimMalloc", "polly_cimMalloc(void **dev_ptr, size_t bytes)");
    ("polly_cimHostToDev", "polly_cimHostToDev(void *dev, const void *host, size_t bytes)");
    ("polly_cimDevToHost", "polly_cimDevToHost(void *host, const void *dev, size_t bytes)");
    ("polly_cimFree", "polly_cimFree(void *dev)");
    ( "polly_cimBlasSGemm",
      "polly_cimBlasSGemm(int m, int n, int k, float alpha, const float *A, int lda, const \
       float *B, int ldb, float beta, float *C, int ldc)" );
    ( "polly_cimBlasGemmBatched",
      "polly_cimBlasGemmBatched(int m, int n, int k, float alpha, float beta, int batch, \
       const float **A, const float **B, float **C)" );
    ("polly_cimIm2col", "polly_cimIm2col(float *dst, const float *src, int kh, int kw, int oh, int ow)");
  ]

let signature_of name =
  match List.assoc_opt name signature_table with Some s -> s | None -> name

(* ---------- IR verifier ---------- *)

type kind = Scalar | Array of int list | Iter

type dev_state = Live | Freed

let func (f : Ir.func) : Diag.t list =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let find env name = List.assoc_opt name env in
  let rec check_expr env (e : Ast.expr) =
    match e with
    | Ast.Int_lit _ | Ast.Float_lit _ -> ()
    | Ast.Var v -> (
        match find env v with
        | None ->
            emit
              (Diag.errorf "E001" ~hint:"declare it or pass it as a parameter"
                 "use of undefined variable '%s'" v)
        | Some (Array _) -> emit (Diag.errorf "E004" "array '%s' used as a scalar" v)
        | Some (Scalar | Iter) -> ())
    | Ast.Index (a, idx) ->
        (match find env a with
        | None ->
            emit
              (Diag.errorf "E002" ~hint:"declare it or pass it as a parameter"
                 "use of undefined array '%s'" a)
        | Some (Scalar | Iter) -> emit (Diag.errorf "E004" "scalar '%s' subscripted like an array" a)
        | Some (Array dims) ->
            if List.length idx <> List.length dims then
              emit
                (Diag.errorf "E003" "array '%s' has %d dimension(s) but is subscripted with %d"
                   a (List.length dims) (List.length idx)));
        List.iter (check_expr env) idx
    | Ast.Binop (_, a, b) ->
        check_expr env a;
        check_expr env b
    | Ast.Neg e -> check_expr env e
  in
  (* device-state machine shared by all runtime calls *)
  let init_seen = ref false in
  let dev : (string, dev_state) Hashtbl.t = Hashtbl.create 8 in
  let require_init name =
    if not !init_seen then
      emit
        (Diag.errorf "E010" ~hint:"emit polly_cimInit(0) before any other runtime call"
           "%s called before polly_cimInit" name)
  in
  let require_live name array =
    match Hashtbl.find_opt dev array with
    | Some Live -> ()
    | Some Freed ->
        emit (Diag.errorf "E010" "%s uses device buffer of '%s' after polly_cimFree" name array)
    | None ->
        emit
          (Diag.errorf "E010" ~hint:"allocate the device buffer with polly_cimMalloc first"
             "%s uses '%s' without a preceding polly_cimMalloc" name array)
  in
  let check_mat_ref env ~call ~operand ~rows ~cols (r : Ir.mat_ref) =
    check_expr env r.Ir.row_off;
    check_expr env r.Ir.col_off;
    let affine e = Affine.of_expr e <> None in
    if not (affine r.Ir.row_off && affine r.Ir.col_off) then
      emit (Diag.errorf "E009" "%s: non-affine tile offset for operand %s ('%s')" call operand r.Ir.array);
    if r.Ir.rows <> rows || r.Ir.cols <> cols then
      emit
        (Diag.errorf "E009"
           ~hint:(signature_of call)
           "%s: operand %s ('%s') has shape %dx%d, expected %dx%d" call operand r.Ir.array
           r.Ir.rows r.Ir.cols rows cols);
    (match find env r.Ir.array with
    | None -> emit (Diag.errorf "E002" "%s: unknown array '%s'" call r.Ir.array)
    | Some (Scalar | Iter) -> emit (Diag.errorf "E004" "%s: scalar '%s' used as a matrix" call r.Ir.array)
    | Some (Array dims) ->
        if List.length dims > 2 then
          emit (Diag.errorf "E009" "%s: operand '%s' has rank %d, expected 1 or 2" call r.Ir.array (List.length dims)));
    require_live call r.Ir.array
  in
  let check_gemm_dims ~call ~m ~n ~k =
    if m < 1 || n < 1 || k < 1 then
      emit
        (Diag.errorf "E009" ~hint:(signature_of call) "%s: non-positive problem size m=%d n=%d k=%d"
           call m n k)
  in
  let check_call env (call : Ir.call) =
    match call with
    | Ir.Cim_init ->
        if !init_seen then emit (Diag.warningf "W011" "repeated polly_cimInit");
        init_seen := true
    | Ir.Cim_alloc { array } -> (
        require_init "polly_cimMalloc";
        (match find env array with
        | None -> emit (Diag.errorf "E002" "polly_cimMalloc: unknown array '%s'" array)
        | Some (Scalar | Iter) ->
            emit (Diag.errorf "E004" "polly_cimMalloc: scalar '%s' allocated as an array" array)
        | Some (Array _) -> ());
        match Hashtbl.find_opt dev array with
        | Some Live -> emit (Diag.errorf "E010" "double polly_cimMalloc of '%s'" array)
        | Some Freed | None -> Hashtbl.replace dev array Live)
    | Ir.Cim_h2d { array } ->
        require_init "polly_cimHostToDev";
        require_live "polly_cimHostToDev" array
    | Ir.Cim_d2h { array } ->
        require_init "polly_cimDevToHost";
        require_live "polly_cimDevToHost" array
    | Ir.Cim_free { array } -> (
        require_init "polly_cimFree";
        match Hashtbl.find_opt dev array with
        | Some Live -> Hashtbl.replace dev array Freed
        | Some Freed -> emit (Diag.errorf "E010" "double polly_cimFree of '%s'" array)
        | None -> emit (Diag.errorf "E010" "polly_cimFree of never-allocated '%s'" array))
    | Ir.Cim_gemm { m; n; k; alpha; beta; a; b; c; pin = _ } ->
        let call = "polly_cimBlasSGemm" in
        require_init call;
        check_gemm_dims ~call ~m ~n ~k;
        check_expr env alpha;
        check_expr env beta;
        check_mat_ref env ~call ~operand:"A" ~rows:m ~cols:k a;
        check_mat_ref env ~call ~operand:"B" ~rows:k ~cols:n b;
        check_mat_ref env ~call ~operand:"C" ~rows:m ~cols:n c;
        if c.Ir.trans then emit (Diag.errorf "E009" "%s: output operand C cannot be transposed" call)
    | Ir.Cim_gemm_batched { m; n; k; alpha; beta; batch; pin = _ } ->
        let call = "polly_cimBlasGemmBatched" in
        require_init call;
        check_gemm_dims ~call ~m ~n ~k;
        check_expr env alpha;
        check_expr env beta;
        if batch = [] then
          emit (Diag.errorf "E009" ~hint:(signature_of call) "%s: empty batch" call);
        List.iter
          (fun (a, b, c) ->
            check_mat_ref env ~call ~operand:"A" ~rows:m ~cols:k a;
            check_mat_ref env ~call ~operand:"B" ~rows:k ~cols:n b;
            check_mat_ref env ~call ~operand:"C" ~rows:m ~cols:n c)
          batch
    | Ir.Cim_im2col { src; dst; kh; kw; oh; ow } ->
        let call = "polly_cimIm2col" in
        require_init call;
        if kh < 1 || kw < 1 || oh < 1 || ow < 1 then
          emit
            (Diag.errorf "E009" ~hint:(signature_of call)
               "%s: non-positive geometry kh=%d kw=%d oh=%d ow=%d" call kh kw oh ow);
        require_live call src;
        require_live call dst;
        (match find env dst with
        | Some (Array [ rows; cols ]) ->
            if rows <> oh * ow || cols <> kh * kw then
              emit
                (Diag.errorf "E009" "%s: patch matrix '%s' is %dx%d, expected %dx%d" call dst
                   rows cols (oh * ow) (kh * kw))
        | Some (Array _) | Some Scalar | Some Iter | None -> ());
        match find env src with
        | Some (Array [ rows; cols ]) ->
            if rows < oh + kh - 1 || cols < ow + kw - 1 then
              emit
                (Diag.errorf "E009" "%s: source image '%s' (%dx%d) smaller than %dx%d window sweep"
                   call src rows cols (oh + kh - 1) (ow + kw - 1))
        | Some (Array _) | Some Scalar | Some Iter | None -> ()
  in
  let roi_depth = ref 0 in
  let declare env ~what name kind =
    (match find env name with
    | Some _ -> emit (Diag.errorf "E005" "redeclaration of '%s' (%s)" name what)
    | None -> ());
    (name, kind) :: env
  in
  let rec check_stmt env ~in_loop (stmt : Ir.stmt) : (string * kind) list =
    match stmt with
    | Ir.For { var; lo; hi; step; body } ->
        if step < 1 then
          emit (Diag.errorf "E006" "loop '%s' has non-positive step %d" var step);
        check_expr env lo;
        check_expr env hi;
        if Affine.of_expr lo = None || Affine.of_expr hi = None then
          emit
            (Diag.errorf "E007"
               ~hint:"bounds must be linear in parameters and enclosing iterators"
               "non-affine bound of loop '%s'" var);
        if find env var <> None then
          emit (Diag.warningf "W012" "loop iterator '%s' shadows an outer definition" var);
        ignore
          (List.fold_left
             (fun env s -> check_stmt env ~in_loop:true s)
             ((var, Iter) :: env) body);
        env
    | Ir.Assign { lhs; op = _; rhs } ->
        (match (lhs.Ast.indices, find env lhs.Ast.base) with
        | _, None ->
            emit
              (Diag.errorf "E001" ~hint:"declare it or pass it as a parameter"
                 "assignment to undefined '%s'" lhs.Ast.base)
        | [], Some Iter -> emit (Diag.errorf "E012" "assignment to loop iterator '%s'" lhs.Ast.base)
        | [], Some (Array _) ->
            emit (Diag.errorf "E004" "array '%s' assigned without a subscript" lhs.Ast.base)
        | [], Some Scalar -> ()
        | _ :: _, Some (Scalar | Iter) ->
            emit (Diag.errorf "E004" "scalar '%s' subscripted like an array" lhs.Ast.base)
        | idx, Some (Array dims) ->
            if List.length idx <> List.length dims then
              emit
                (Diag.errorf "E003" "array '%s' has %d dimension(s) but is subscripted with %d"
                   lhs.Ast.base (List.length dims) (List.length idx)));
        List.iter (check_expr env) lhs.Ast.indices;
        check_expr env rhs;
        env
    | Ir.Decl_scalar { name; typ = _; init } ->
        Option.iter (check_expr env) init;
        declare env ~what:"scalar" name Scalar
    | Ir.Decl_array { name; dims } ->
        if List.exists (fun d -> d < 1) dims then
          emit (Diag.errorf "E013" "array '%s' declared with a non-positive dimension" name);
        declare env ~what:"array" name (Array dims)
    | Ir.Call call ->
        check_call env call;
        env
    | Ir.Roi_begin ->
        if in_loop then emit (Diag.errorf "E008" "__roi_begin inside a loop")
        else if !roi_depth > 0 then emit (Diag.errorf "E008" "nested __roi_begin")
        else incr roi_depth;
        env
    | Ir.Roi_end ->
        if in_loop then emit (Diag.errorf "E008" "__roi_end inside a loop")
        else if !roi_depth = 0 then emit (Diag.errorf "E008" "__roi_end without __roi_begin")
        else decr roi_depth;
        env
  in
  let env0 =
    List.fold_left
      (fun env (p : Ast.param) ->
        if List.exists (fun d -> d < 1) p.Ast.dims then
          emit (Diag.errorf "E013" "parameter '%s' declared with a non-positive dimension" p.Ast.pname);
        declare env ~what:"parameter" p.Ast.pname
          (if p.Ast.dims = [] then Scalar else Array p.Ast.dims))
      [] f.Ir.params
  in
  ignore (List.fold_left (fun env s -> check_stmt env ~in_loop:false s) env0 f.Ir.body);
  if !roi_depth <> 0 then
    emit (Diag.errorf "E008" "__roi_begin without matching __roi_end");
  List.rev !diags

(* ---------- schedule-tree verifier ---------- *)

let expr_vars e =
  let acc = ref [] in
  let rec visit = function
    | Ast.Int_lit _ | Ast.Float_lit _ -> ()
    | Ast.Var v -> acc := v :: !acc
    | Ast.Index (_, idx) -> List.iter visit idx
    | Ast.Binop (_, a, b) ->
        visit a;
        visit b
    | Ast.Neg e -> visit e
  in
  visit e;
  !acc

let tree ?(free = []) t : Diag.t list =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let seen_sids = Hashtbl.create 16 in
  let bound iters v = List.mem v iters || List.mem v free in
  let check_access iters ~what sid (a : Access.t) =
    List.iter
      (fun idx ->
        List.iter
          (fun v ->
            if not (bound iters v) then
              emit
                (Diag.errorf "E055"
                   ~hint:"every subscript variable must be an enclosing band iterator or a parameter"
                   "S%d: %s access %s uses unbound variable '%s'" sid what a.Access.array v))
          (Affine.vars idx))
      a.Access.indices
  in
  let rec walk iters t =
    match t with
    | St.Band (b, child) ->
        if b.St.step < 1 then
          emit (Diag.errorf "E051" "band '%s' has non-positive step %d" b.St.iter b.St.step);
        if List.mem b.St.iter iters then
          emit (Diag.errorf "E054" "band '%s' shadows an enclosing band iterator" b.St.iter);
        (match (Affine.is_constant b.St.lo, Affine.is_constant b.St.hi) with
        | Some lo, Some hi when hi <= lo ->
            emit (Diag.warningf "W057" "band '%s' has empty domain [%d, %d)" b.St.iter lo hi)
        | _ -> ());
        walk (b.St.iter :: iters) child
    | St.Seq [] -> emit (Diag.errorf "E052" "empty sequence node")
    | St.Seq children -> List.iter (walk iters) children
    | St.Mark (_, child) -> walk iters child
    | St.Code _ -> () (* opaque escape hatch: re-verified at the IR level after codegen *)
    | St.Stmt s ->
        let sid = s.St.sid in
        if Hashtbl.mem seen_sids sid then
          emit (Diag.errorf "E053" "duplicate statement id S%d" sid)
        else Hashtbl.add seen_sids sid ();
        check_access iters ~what:"write" sid s.St.write;
        List.iter (check_access iters ~what:"read" sid) s.St.reads;
        List.iter
          (fun v ->
            if not (bound iters v) then
              emit
                (Diag.errorf "E056" "S%d: right-hand side uses unbound variable '%s'" sid v))
          (expr_vars s.St.rhs)
  in
  walk [] t;
  List.rev !diags
