module St = Tdo_poly.Schedule_tree
module Affine = Tdo_poly.Affine
module Access = Tdo_poly.Access
module Ir = Tdo_ir.Ir
module Ast = Tdo_lang.Ast

let const_of_expr e =
  match Affine.of_expr e with Some a -> Affine.is_constant a | None -> None

(* Extreme value of an affine form when each variable ranges over its
   (inclusive) extent; [None] when some variable has no extent. *)
let corner ~extents ~maximise idx =
  let pick v c =
    match List.assoc_opt v extents with
    | None -> None
    | Some (lo, hi) -> Some (v, if (c > 0) = maximise then hi else lo)
  in
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | v :: rest -> (
        match pick v (Affine.coeff idx v) with
        | None -> None
        | Some binding -> go (binding :: acc) rest)
  in
  match go [] (Affine.vars idx) with
  | None -> None
  | Some assignment ->
      let value =
        List.fold_left
          (fun acc (v, x) -> acc + (Affine.coeff idx v * x))
          (Affine.constant idx) assignment
      in
      Some (value, assignment)

let witness_string = function
  | [] -> "the empty iteration point"
  | assignment ->
      String.concat ", " (List.map (fun (v, x) -> Printf.sprintf "%s = %d" v x) assignment)

let pp_affine a = Format.asprintf "%a" Affine.pp a

(* One subscript against one declared extent. *)
let check_axis ~extents ~array ~axis ~extent idx =
  match (corner ~extents ~maximise:true idx, corner ~extents ~maximise:false idx) with
  | Some (hi, hi_at), Some (lo, lo_at) ->
      (if hi >= extent then
         [
           Diag.errorf "E201"
             ~hint:"shrink the loop range or the subscript offset"
             "out-of-bounds access: '%s' dimension %d has extent %d but subscript %s reaches %d at %s"
             array axis extent (pp_affine idx) hi (witness_string hi_at);
         ]
       else [])
      @
      if lo < 0 then
        [
          Diag.errorf "E202"
            ~hint:"negative subscripts fall before the array"
            "out-of-bounds access: '%s' dimension %d subscript %s reaches %d at %s" array axis
            (pp_affine idx) lo (witness_string lo_at);
        ]
      else []
  | _ ->
      [
        Diag.notef "N203"
          "access to '%s' dimension %d not provable: subscript %s ranges over a non-constant \
           loop bound"
          array axis (pp_affine idx);
      ]

let check_access ~extents ~dims (a : Access.t) =
  match List.assoc_opt a.Access.array dims with
  | None -> []
  | Some ds when List.length ds <> List.length a.Access.indices -> []
  | Some ds ->
      List.concat
        (List.mapi
           (fun axis (extent, idx) -> check_axis ~extents ~array:a.Access.array ~axis ~extent idx)
           (List.combine ds a.Access.indices))

(* Operand window of a runtime call: rows x cols starting at the
   (affine) element offsets. A 1-D array is an n x 1 column. *)
let check_mat_ref ~extents ~dims (r : Ir.mat_ref) =
  match List.assoc_opt r.Ir.array dims with
  | None -> []
  | Some ds -> (
      let d0, d1 = match ds with [ n ] -> (n, 1) | [ a; b ] -> (a, b) | _ -> (0, 0) in
      if d0 = 0 then []
      else
        match (Affine.of_expr r.Ir.row_off, Affine.of_expr r.Ir.col_off) with
        | Some ro, Some co ->
            let span phys_rows = Affine.add ro (Affine.const (phys_rows - 1)) in
            (* op(M) = M^T swaps which extent runs down the rows *)
            let rows, cols = if r.Ir.trans then (r.Ir.cols, r.Ir.rows) else (r.Ir.rows, r.Ir.cols) in
            check_axis ~extents ~array:r.Ir.array ~axis:0 ~extent:d0 (span rows)
            @ check_axis ~extents ~array:r.Ir.array ~axis:1 ~extent:d1
                (Affine.add co (Affine.const (cols - 1)))
        | _ -> [])

let degenerate_loop ~var ~lo ~hi =
  Diag.errorf "E204"
    ~hint:
      "an empty loop makes every legality and bounds conclusion about its body vacuous; fix the \
       bounds or delete the loop"
    "degenerate loop: 'for (%s = %d; %s < %d)' has an empty iteration space (trip count %d)" var
    lo var hi
    (max 0 (hi - lo))

let call_mat_refs = function
  | Ir.Cim_gemm { a; b; c; _ } -> [ a; b; c ]
  | Ir.Cim_gemm_batched { batch; _ } -> List.concat_map (fun (a, b, c) -> [ a; b; c ]) batch
  | Ir.Cim_init | Ir.Cim_alloc _ | Ir.Cim_h2d _ | Ir.Cim_d2h _ | Ir.Cim_free _ | Ir.Cim_im2col _
    -> []

let accesses_of_assign (lhs : Ast.lvalue) rhs =
  let w = match Access.of_lvalue lhs with Some a when a.Access.indices <> [] -> [ a ] | _ -> [] in
  let r = match Access.reads_of_expr rhs with Some rs -> rs | None -> [] in
  w @ r

let func (f : Ir.func) =
  let diags = ref [] in
  let emit ds = diags := !diags @ ds in
  let dims =
    ref
      (List.filter_map
         (fun (p : Ast.param) -> if p.Ast.dims = [] then None else Some (p.Ast.pname, p.Ast.dims))
         f.Ir.params)
  in
  let rec walk extents (stmt : Ir.stmt) =
    match stmt with
    | Ir.For { var; lo; hi; step; body } -> (
        match (const_of_expr lo, const_of_expr hi) with
        | Some l, Some h when h <= l ->
            (* the body never executes: any legality or bounds claim
               about it would be vacuous, so reject instead of walking *)
            emit [ degenerate_loop ~var ~lo:l ~hi:h ]
        | Some l, Some h when step > 0 ->
            let last = l + (step * ((h - 1 - l) / step)) in
            List.iter (walk ((var, (l, last)) :: extents)) body
        | _ -> List.iter (walk extents) body)
    | Ir.Assign { lhs; rhs; _ } ->
        List.iter (fun a -> emit (check_access ~extents ~dims:!dims a)) (accesses_of_assign lhs rhs)
    | Ir.Decl_array { name; dims = ds } -> dims := (name, ds) :: !dims
    | Ir.Decl_scalar { init = Some e; _ } ->
        List.iter
          (fun a -> emit (check_access ~extents ~dims:!dims a))
          (match Access.reads_of_expr e with Some rs -> rs | None -> [])
    | Ir.Decl_scalar _ -> ()
    | Ir.Call call -> List.iter (fun r -> emit (check_mat_ref ~extents ~dims:!dims r)) (call_mat_refs call)
    | Ir.Roi_begin | Ir.Roi_end -> ()
  in
  List.iter (walk []) f.Ir.body;
  !diags

let tree ?(dims = []) t =
  let extents_of bands =
    List.filter_map
      (fun (b : St.band) ->
        match (Affine.is_constant b.St.lo, Affine.is_constant b.St.hi) with
        | Some l, Some h when b.St.step > 0 && h > l ->
            Some (b.St.iter, (l, l + (b.St.step * ((h - 1 - l) / b.St.step))))
        | _ -> None)
      bands
  in
  let of_stmt (bands, (s : St.stmt_info)) =
    let extents = extents_of bands in
    List.concat_map (check_access ~extents ~dims) (s.St.write :: s.St.reads)
  in
  let rec code_stmts = function
    | St.Code stmts -> stmts
    | St.Band (_, c) | St.Mark (_, c) -> code_stmts c
    | St.Seq cs -> List.concat_map code_stmts cs
    | St.Stmt _ -> []
  in
  let rec calls extents (s : Ir.stmt) =
    match s with
    | Ir.Call c -> List.concat_map (check_mat_ref ~extents ~dims) (call_mat_refs c)
    | Ir.For { var; lo; hi; step; body } ->
        let extents' =
          match (const_of_expr lo, const_of_expr hi) with
          | Some l, Some h when step > 0 && h > l ->
              (var, (l, l + (step * ((h - 1 - l) / step)))) :: extents
          | _ -> extents
        in
        List.concat_map (calls extents') body
    | _ -> []
  in
  let rec degenerate_bands = function
    | St.Band (b, c) ->
        (match (Affine.is_constant b.St.lo, Affine.is_constant b.St.hi) with
        | Some l, Some h when h <= l -> [ degenerate_loop ~var:b.St.iter ~lo:l ~hi:h ]
        | _ -> [])
        @ degenerate_bands c
    | St.Seq cs -> List.concat_map degenerate_bands cs
    | St.Mark (_, c) -> degenerate_bands c
    | St.Stmt _ | St.Code _ -> []
  in
  degenerate_bands t
  @ List.concat_map of_stmt (St.stmts_with_context t)
  @ List.concat_map (calls []) (code_stmts t)
