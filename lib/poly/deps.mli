(** Dependence summaries at array granularity.

    This is precisely the independence test of the paper's kernel
    fusion (Section III-B): two kernels X and Y (Y after X) can be
    fused when Y neither reads from nor writes to any output of X, and
    Y does not write to any input of X. Array-name granularity is exact
    for whole-kernel regions that write disjoint output arrays. *)

module Strings : Set.S with type elt = string

val ir_arrays : Tdo_ir.Ir.stmt -> Strings.t * Strings.t
(** [(reads, writes)] of one IR statement, loops and runtime calls
    included (the transfer summary used for [Code] subtrees). *)

val arrays_written : Schedule_tree.t -> Strings.t
val arrays_read : Schedule_tree.t -> Strings.t
(** Reads include the old value of [+=]/[-=]/[*=] targets. [Code]
    subtrees contribute the arrays referenced by their runtime calls. *)

val independent : Schedule_tree.t -> Schedule_tree.t -> bool
(** [independent x y] with [y] textually after [x]. Array-name overlap
    is refined with access regions ({!Access.region} over the enclosing
    bands): kernels that touch provably disjoint slices of a shared
    array remain independent. Unknown regions (non-constant bounds,
    [Code] subtrees) fall back to the conservative name-level answer. *)

val access_regions :
  Schedule_tree.t -> writes:bool -> (string * Domain.box option list) list
(** Per array, the bounding boxes of its accesses under the tree
    ([writes:true] for written cells, [writes:false] for read cells,
    the old value of [+=]-style targets included). A [None] entry means
    an access whose region could not be bounded. [Code] subtrees
    contribute [None] for every array they mention. *)

val may_interchange : Schedule_tree.band -> Schedule_tree.band -> Schedule_tree.t -> bool
(** Conservative legality of swapping two perfectly nested bands:
    holds when every statement under the nest either only accumulates
    into its target ([+=] with the same access on both sides) or writes
    an access indexed by neither of the two bands' iterators in a
    reordering-sensitive way. Sufficient for the GEMM-family nests this
    flow transforms. *)
