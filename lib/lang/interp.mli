(** Reference interpreter — the semantic golden model.

    Array stores round to IEEE binary32 exactly like the simulated
    memory does, so a correct compilation pipeline reproduces the
    interpreter's results bit-for-bit. *)

exception Runtime_error of string

type arr = { dims : int list; data : float array }

type value = Vint of int | Vfloat of float | Varray of arr

val make_array : dims:int list -> arr
(** Zero-initialised. *)

val arr_get : arr -> int list -> float
val arr_set : arr -> int list -> float -> unit
(** Bounds-checked; stores round to binary32. *)

val arr_of_mat : Tdo_linalg.Mat.t -> arr
val mat_of_arr : arr -> Tdo_linalg.Mat.t
(** 2-D conversions; raise {!Runtime_error} for other ranks. *)

val run : ?scratch:Tdo_util.Arena.t -> Ast.func -> args:(string * value) list -> unit
(** Execute a (type-checked) function. [Varray] arguments are mutated
    in place; scalars are read-only inputs. Raises {!Runtime_error} on
    argument mismatch or out-of-bounds access. [scratch] backs the
    scalar slot tables with pooled blocks valid for the duration of the
    run. *)
