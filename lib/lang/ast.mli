(** Abstract syntax of the mini-C input language.

    The subset covers exactly what the paper's flow consumes: affine
    [for] loop nests over multi-dimensional [float] arrays with scalar
    parameters — every PolyBench/C kernel of the evaluation is
    expressible verbatim (modulo the PolyBench macro boilerplate). *)

type typ = Tvoid | Tfloat | Tint

type binop = Add | Sub | Mul | Div

type expr =
  | Int_lit of int
  | Float_lit of float
  | Var of string
  | Index of string * expr list  (** [A\[i\]\[j\]] *)
  | Binop of binop * expr * expr
  | Neg of expr

type assign_op = Set  (** [=] *) | Add_assign  (** [+=] *) | Sub_assign | Mul_assign

type lvalue = { base : string; indices : expr list }

type stmt =
  | For of { var : string; lo : expr; hi : expr; step : int; body : stmt list }
      (** [for (int var = lo; var < hi; var += step) body] *)
  | Assign of { lhs : lvalue; op : assign_op; rhs : expr }
  | Decl_scalar of { name : string; typ : typ; init : expr option }
  | Decl_array of { name : string; dims : int list }
  | Block of stmt list

type param = { pname : string; ptyp : typ; dims : int list  (** [] for scalars *) }

type func = { fname : string; ret : typ; params : param list; body : stmt list }

type program = func list

val binop_to_string : binop -> string
val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_func : Format.formatter -> func -> unit

val expr_equal : expr -> expr -> bool
(** Structural equality. *)

val stmt_iter_exprs : (expr -> unit) -> stmt -> unit
(** Visit every expression in a statement (including nested loops),
    lvalue indices included. *)

val structural_digest : func -> string
(** Hex digest of the function's structure alone — identifiers, bounds,
    operators — with the concrete syntax already erased by the parser.
    Two sources that parse to the same AST share a digest; any semantic
    change (a bound, a loop body, an array shape) changes it. The key
    space shared by the serving layer's compiled-kernel cache
    ({!Tdo_serve.Kernel_cache}) and the autotuner's configuration
    database ({!Tdo_tune.Db}). *)
