open Ast

exception Runtime_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

type arr = { dims : int list; data : float array }
type value = Vint of int | Vfloat of float | Varray of arr

let[@inline always] f32 v = Int32.float_of_bits (Int32.bits_of_float v)

let make_array ~dims =
  if dims = [] || List.exists (fun d -> d <= 0) dims then
    fail "make_array: invalid dimensions";
  { dims; data = Array.make (List.fold_left ( * ) 1 dims) 0.0 }

let flat_index arr indices =
  if List.length indices <> List.length arr.dims then fail "rank mismatch";
  List.fold_left2
    (fun acc idx dim ->
      if idx < 0 || idx >= dim then fail "index %d out of bound %d" idx dim;
      (acc * dim) + idx)
    0 indices arr.dims

let arr_get arr indices = arr.data.(flat_index arr indices)
let arr_set arr indices v = arr.data.(flat_index arr indices) <- f32 v

let arr_of_mat m =
  let module Mat = Tdo_linalg.Mat in
  let arr = make_array ~dims:[ Mat.rows m; Mat.cols m ] in
  Mat.iteri ~f:(fun i j v -> arr_set arr [ i; j ] v) m;
  arr

let mat_of_arr arr =
  let module Mat = Tdo_linalg.Mat in
  match arr.dims with
  | [ rows; cols ] -> Mat.init ~rows ~cols ~f:(fun i j -> arr_get arr [ i; j ])
  | _ -> fail "mat_of_arr: not a 2-D array"

(* ---------- resolved (slot-table) program ----------

   [run] resolves every identifier to a typed slot index in one binding
   pass, then executes against flat unboxed arrays — no [List.assoc]
   lookups, boxed values or per-access index lists at run time. The
   interpreter is the golden model under qcheck equivalence tests, so
   it follows the same slot discipline as [Tdo_ir.Exec]. *)

type rexpr =
  | Ci of int
  | Cf of float
  | Vi of int  (** int scalar slot *)
  | Vf of int  (** float scalar slot *)
  | Load of { arr : int; dims : int array; idxs : rexpr array }
  | Ibin of binop * rexpr * rexpr
  | Fbin of binop * rexpr * rexpr
  | Ineg of rexpr
  | Fneg of rexpr

let is_int = function
  | Ci _ | Vi _ | Ibin _ | Ineg _ -> true
  | Cf _ | Vf _ | Load _ | Fbin _ | Fneg _ -> false

type rstmt =
  | Rfor of { slot : int; lo : rexpr; hi : rexpr; step : int; body : rstmt array }
  | Rstore of { arr : int; dims : int array; idxs : rexpr array; op : assign_op; rhs : rexpr }
  | Rset_f of { slot : int; op : assign_op; rhs : rexpr }
  | Rset_i of { slot : int; op : assign_op; rhs : rexpr }
  | Rdecl_i of { slot : int; init : rexpr option }
  | Rdecl_f of { slot : int; init : rexpr option }
  | Rdecl_arr of { slot : int; adims : int list }
  | Rblock of rstmt array

type bind = Bint of int | Bfloat of int | Barr of int * int list

type counters = { mutable n_int : int; mutable n_float : int; mutable n_arr : int }

let new_int c =
  let s = c.n_int in
  c.n_int <- s + 1;
  s

let new_float c =
  let s = c.n_float in
  c.n_float <- s + 1;
  s

let new_arr c =
  let s = c.n_arr in
  c.n_arr <- s + 1;
  s

let lookup env name =
  match List.assoc_opt name env with
  | Some b -> b
  | None -> fail "unbound identifier '%s'" name

let rec compile_expr env c = function
  | Int_lit n -> Ci n
  | Float_lit f -> Cf f
  | Var name -> (
      match lookup env name with
      | Bint s -> Vi s
      | Bfloat s -> Vf s
      | Barr _ -> fail "array '%s' used as a scalar" name)
  | Index (name, indices) -> (
      match lookup env name with
      | Barr (slot, dims) ->
          Load { arr = slot; dims = compile_indices env c name dims indices; idxs = idx_array env c indices }
      | Bint _ | Bfloat _ -> fail "scalar '%s' indexed" name)
  | Binop (op, a, b) ->
      let ra = compile_expr env c a in
      let rb = compile_expr env c b in
      if is_int ra && is_int rb then Ibin (op, ra, rb) else Fbin (op, ra, rb)
  | Neg e ->
      let r = compile_expr env c e in
      if is_int r then Ineg r else Fneg r

and compile_indices _env _c _name dims indices =
  if List.length indices <> List.length dims then fail "rank mismatch";
  Array.of_list dims

and idx_array env c indices =
  Array.of_list
    (List.map
       (fun e ->
         let r = compile_expr env c e in
         if not (is_int r) then fail "expected an integer expression";
         r)
       indices)

let compile_int_expr env c e =
  let r = compile_expr env c e in
  if not (is_int r) then fail "expected an integer expression";
  r

let rec compile_body env c = function
  | [] -> []
  | Decl_scalar { name; typ; init } :: rest -> (
      match typ with
      | Tint ->
          let init = Option.map (compile_int_expr env c) init in
          let slot = new_int c in
          Rdecl_i { slot; init } :: compile_body ((name, Bint slot) :: env) c rest
      | Tfloat ->
          let init = Option.map (compile_expr env c) init in
          let slot = new_float c in
          Rdecl_f { slot; init } :: compile_body ((name, Bfloat slot) :: env) c rest
      | Tvoid -> fail "void declaration")
  | Decl_array { name; dims } :: rest ->
      if dims = [] || List.exists (fun d -> d <= 0) dims then
        fail "make_array: invalid dimensions";
      let slot = new_arr c in
      Rdecl_arr { slot; adims = dims }
      :: compile_body ((name, Barr (slot, dims)) :: env) c rest
  | stmt :: rest -> compile_stmt env c stmt :: compile_body env c rest

and compile_stmt env c = function
  | For { var; lo; hi; step; body } ->
      let lo = compile_int_expr env c lo in
      let hi = compile_int_expr env c hi in
      let slot = new_int c in
      let body = compile_body ((var, Bint slot) :: env) c body in
      Rfor { slot; lo; hi; step; body = Array.of_list body }
  | Assign { lhs; op; rhs } -> (
      match (lookup env lhs.base, lhs.indices) with
      | Barr (slot, dims), indices ->
          if List.length indices <> List.length dims then fail "rank mismatch";
          Rstore
            {
              arr = slot;
              dims = Array.of_list dims;
              idxs = idx_array env c indices;
              op;
              rhs = compile_expr env c rhs;
            }
      | Bfloat slot, [] -> Rset_f { slot; op; rhs = compile_expr env c rhs }
      | Bint slot, [] ->
          let r = compile_expr env c rhs in
          if not (is_int r) then fail "integer '%s' assigned a non-integer" lhs.base;
          Rset_i { slot; op; rhs = r }
      | (Bint _ | Bfloat _), _ :: _ -> fail "scalar '%s' indexed" lhs.base)
  | Decl_scalar _ | Decl_array _ ->
      (* handled by compile_body so the binding covers the rest of the body *)
      assert false
  | Block body -> Rblock (Array.of_list (compile_body env c body))

(* ---------- execution ---------- *)

type state = {
  ints : int array;
  floats : float array;
  arrays : arr array;
  facc : floatarray;
      (** single-slot accumulator [eval_f] leaves its result in, so the
          recursive evaluator never boxes a returned float (same
          discipline as [Tdo_ir.Exec]) *)
}

let dummy_arr = { dims = []; data = [||] }

let[@inline always] getf st = Float.Array.unsafe_get st.facc 0
let[@inline always] setf st v = Float.Array.unsafe_set st.facc 0 v

let rec eval_i st = function
  | Ci n -> n
  | Vi s -> Array.unsafe_get st.ints s
  | Ibin (op, a, b) -> (
      let x = eval_i st a in
      let y = eval_i st b in
      match op with
      | Add -> x + y
      | Sub -> x - y
      | Mul -> x * y
      | Div ->
          if y = 0 then fail "integer division by zero";
          x / y)
  | Ineg e -> -eval_i st e
  | Cf _ | Vf _ | Load _ | Fbin _ | Fneg _ -> assert false

and eval_f st e =
  match e with
  | Cf f -> setf st f
  | Vf s -> setf st (Array.unsafe_get st.floats s)
  | Load { arr; dims; idxs } ->
      setf st (Array.unsafe_get (Array.unsafe_get st.arrays arr).data (flat_offset st dims idxs))
  | Fbin (op, a, b) ->
      eval_f st a;
      let x = getf st in
      eval_f st b;
      let y = getf st in
      setf st (match op with Add -> x +. y | Sub -> x -. y | Mul -> x *. y | Div -> x /. y)
  | Fneg e ->
      eval_f st e;
      setf st (-.getf st)
  | Ci n -> setf st (float_of_int n)
  | Vi s -> setf st (float_of_int (Array.unsafe_get st.ints s))
  | (Ibin _ | Ineg _) as e -> setf st (float_of_int (eval_i st e))

and flat_offset st (dims : int array) (idxs : rexpr array) =
  let flat = ref 0 in
  for i = 0 to Array.length dims - 1 do
    let idx = eval_i st (Array.unsafe_get idxs i) in
    let dim = Array.unsafe_get dims i in
    if idx < 0 || idx >= dim then fail "index %d out of bound %d" idx dim;
    flat := (!flat * dim) + idx
  done;
  !flat

let[@inline always] apply_op op old rhs =
  match op with
  | Set -> rhs
  | Add_assign -> old +. rhs
  | Sub_assign -> old -. rhs
  | Mul_assign -> old *. rhs

let rec exec_stmt st = function
  | Rfor { slot; lo; hi; step; body } ->
      let lo = eval_i st lo in
      let hi = eval_i st hi in
      let ints = st.ints in
      ints.(slot) <- lo;
      while ints.(slot) < hi do
        exec_body st body;
        ints.(slot) <- ints.(slot) + step
      done
  | Rstore { arr; dims; idxs; op; rhs } ->
      let off = flat_offset st dims idxs in
      eval_f st rhs;
      let rhs = getf st in
      let data = (Array.unsafe_get st.arrays arr).data in
      let old = Array.unsafe_get data off in
      Array.unsafe_set data off (f32 (apply_op op old rhs))
  | Rset_f { slot; op; rhs } ->
      eval_f st rhs;
      let rhs = getf st in
      st.floats.(slot) <- apply_op op st.floats.(slot) rhs
  | Rset_i { slot; op; rhs } -> (
      let rhs = eval_i st rhs in
      match op with
      | Set -> st.ints.(slot) <- rhs
      | Add_assign -> st.ints.(slot) <- st.ints.(slot) + rhs
      | Sub_assign -> st.ints.(slot) <- st.ints.(slot) - rhs
      | Mul_assign -> st.ints.(slot) <- st.ints.(slot) * rhs)
  | Rdecl_i { slot; init } ->
      st.ints.(slot) <- (match init with Some e -> eval_i st e | None -> 0)
  | Rdecl_f { slot; init } ->
      st.floats.(slot) <-
        (match init with
        | Some e ->
            eval_f st e;
            getf st
        | None -> 0.0)
  | Rdecl_arr { slot; adims } -> st.arrays.(slot) <- make_array ~dims:adims
  | Rblock body -> exec_body st body

and exec_body st (body : rstmt array) =
  for i = 0 to Array.length body - 1 do
    exec_stmt st (Array.unsafe_get body i)
  done

let run ?scratch f ~args =
  let c = { n_int = 0; n_float = 0; n_arr = 0 } in
  let bind_param p =
    match List.assoc_opt p.pname args with
    | None -> fail "missing argument '%s'" p.pname
    | Some value -> (
        match (p.dims, value) with
        | [], Vint n ->
            if p.ptyp <> Tint then fail "argument '%s' should be %s" p.pname "int";
            ((p.pname, Bint (new_int c)), `Int n)
        | [], Vfloat v ->
            if p.ptyp <> Tfloat then fail "argument '%s' should be float" p.pname;
            ((p.pname, Bfloat (new_float c)), `Float v)
        | [], Varray _ -> fail "argument '%s' is a scalar" p.pname
        | dims, Varray arr ->
            if arr.dims <> dims then fail "argument '%s' has mismatched dimensions" p.pname;
            ((p.pname, Barr (new_arr c, dims)), `Array arr)
        | _ :: _, (Vint _ | Vfloat _) -> fail "argument '%s' is an array" p.pname)
  in
  let bound = List.map bind_param f.params in
  let env = List.map fst bound in
  let program = compile_body env c f.body in
  (* Slot tables come from the per-domain arena when one is passed;
     zero-filled to match the fresh-allocation behaviour. *)
  let ints =
    match scratch with
    | None -> Array.make (max 1 c.n_int) 0
    | Some a ->
        let t = Tdo_util.Arena.int_array a (max 1 c.n_int) in
        Array.fill t 0 (Array.length t) 0;
        t
  in
  let floats =
    match scratch with
    | None -> Array.make (max 1 c.n_float) 0.0
    | Some a ->
        let t = Tdo_util.Arena.float_array a (max 1 c.n_float) in
        Array.fill t 0 (Array.length t) 0.0;
        t
  in
  let st =
    {
      ints;
      floats;
      arrays = Array.make (max 1 c.n_arr) dummy_arr;
      facc = Float.Array.create 1;
    }
  in
  List.iter
    (fun ((_, bind), value) ->
      match (bind, value) with
      | Bint slot, `Int n -> st.ints.(slot) <- n
      | Bfloat slot, `Float v -> st.floats.(slot) <- v
      | Barr (slot, _), `Array arr -> st.arrays.(slot) <- arr
      | _ -> assert false)
    bound;
  exec_body st (Array.of_list program)
