type typ = Tvoid | Tfloat | Tint

type binop = Add | Sub | Mul | Div

type expr =
  | Int_lit of int
  | Float_lit of float
  | Var of string
  | Index of string * expr list
  | Binop of binop * expr * expr
  | Neg of expr

type assign_op = Set | Add_assign | Sub_assign | Mul_assign

type lvalue = { base : string; indices : expr list }

type stmt =
  | For of { var : string; lo : expr; hi : expr; step : int; body : stmt list }
  | Assign of { lhs : lvalue; op : assign_op; rhs : expr }
  | Decl_scalar of { name : string; typ : typ; init : expr option }
  | Decl_array of { name : string; dims : int list }
  | Block of stmt list

type param = { pname : string; ptyp : typ; dims : int list }

type func = { fname : string; ret : typ; params : param list; body : stmt list }

type program = func list

let binop_to_string = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let rec pp_expr ppf = function
  | Int_lit n -> Format.fprintf ppf "%d" n
  | Float_lit f -> Format.fprintf ppf "%g" f
  | Var v -> Format.fprintf ppf "%s" v
  | Index (base, idx) ->
      Format.fprintf ppf "%s" base;
      List.iter (fun e -> Format.fprintf ppf "[%a]" pp_expr e) idx
  | Binop (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_to_string op) pp_expr b
  | Neg e -> Format.fprintf ppf "(-%a)" pp_expr e

let assign_op_to_string = function
  | Set -> "="
  | Add_assign -> "+="
  | Sub_assign -> "-="
  | Mul_assign -> "*="

let typ_to_string = function Tvoid -> "void" | Tfloat -> "float" | Tint -> "int"

let rec pp_stmt ppf = function
  | For { var; lo; hi; step; body } ->
      Format.fprintf ppf "@[<v 2>for (int %s = %a; %s < %a; %s += %d) {@,%a@]@,}" var pp_expr lo
        var pp_expr hi var step pp_stmts body
  | Assign { lhs; op; rhs } ->
      Format.fprintf ppf "%s%t %s %a;" lhs.base
        (fun ppf -> List.iter (fun e -> Format.fprintf ppf "[%a]" pp_expr e) lhs.indices)
        (assign_op_to_string op) pp_expr rhs
  | Decl_scalar { name; typ; init } -> (
      match init with
      | None -> Format.fprintf ppf "%s %s;" (typ_to_string typ) name
      | Some e -> Format.fprintf ppf "%s %s = %a;" (typ_to_string typ) name pp_expr e)
  | Decl_array { name; dims } ->
      Format.fprintf ppf "float %s" name;
      List.iter (fun d -> Format.fprintf ppf "[%d]" d) dims;
      Format.fprintf ppf ";"
  | Block body -> Format.fprintf ppf "@[<v 2>{@,%a@]@,}" pp_stmts body

and pp_stmts ppf body =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt ppf body

let pp_func ppf f =
  let pp_param ppf p =
    Format.fprintf ppf "%s %s" (typ_to_string p.ptyp) p.pname;
    List.iter (fun d -> Format.fprintf ppf "[%d]" d) p.dims
  in
  Format.fprintf ppf "@[<v 2>%s %s(%a) {@,%a@]@,}" (typ_to_string f.ret) f.fname
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_param)
    f.params pp_stmts f.body

let rec expr_equal a b =
  match (a, b) with
  | Int_lit x, Int_lit y -> x = y
  | Float_lit x, Float_lit y -> x = y
  | Var x, Var y -> String.equal x y
  | Index (x, xi), Index (y, yi) ->
      String.equal x y && List.length xi = List.length yi && List.for_all2 expr_equal xi yi
  | Binop (o1, a1, b1), Binop (o2, a2, b2) -> o1 = o2 && expr_equal a1 a2 && expr_equal b1 b2
  | Neg x, Neg y -> expr_equal x y
  | (Int_lit _ | Float_lit _ | Var _ | Index _ | Binop _ | Neg _), _ -> false

let rec stmt_iter_exprs f = function
  | For { lo; hi; body; _ } ->
      f lo;
      f hi;
      List.iter (stmt_iter_exprs f) body
  | Assign { lhs; rhs; _ } ->
      List.iter f lhs.indices;
      f rhs
  | Decl_scalar { init; _ } -> Option.iter f init
  | Decl_array _ -> ()
  | Block body -> List.iter (stmt_iter_exprs f) body

(* The AST is plain data, so marshalling yields a canonical byte string
   of the structure; digesting it gives a stable structural key. *)
let structural_digest (f : func) = Digest.to_hex (Digest.string (Marshal.to_string f []))
