module Interp = Tdo_lang.Interp
module Mat = Tdo_linalg.Mat
module Prng = Tdo_util.Prng
module Kernels = Tdo_polybench.Kernels
module Depgraph = Tdo_analysis.Depgraph

type op = Dense | Add | Mul

let op_name = function Dense -> "dense" | Add -> "add" | Mul -> "mul"

let op_of_name = function
  | "dense" -> Ok Dense
  | "add" -> Ok Add
  | "mul" -> Ok Mul
  | other -> Error (Printf.sprintf "unknown layer op %S (expected dense, add or mul)" other)

type layer = { lname : string; op : op; ins : string list; out : string }
type t = { gname : string; inputs : string list; layers : layer list }

let is_ident s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

(* The weight operand of every Dense layer, first-use order. A weight
   may be shared between layers; it appears once. *)
let weights t =
  List.fold_left
    (fun acc l ->
      match (l.op, l.ins) with
      | Dense, w :: _ when not (List.mem w acc) -> w :: acc
      | _ -> acc)
    [] t.layers
  |> List.rev

let graph_outputs t =
  let consumed = List.concat_map (fun l -> l.ins) t.layers in
  List.filter_map
    (fun l -> if List.mem l.out consumed then None else Some l.out)
    t.layers

(* Non-weight operands of a layer: the arrays that imply
   producer→consumer edges. *)
let activation_ins l =
  match (l.op, l.ins) with Dense, _ :: rest -> rest | _ -> l.ins

(* Declaration-order Kahn: deterministic, and doubles as the acyclicity
   check ([None] on a cycle). *)
let kahn layers inputs =
  let n = List.length layers in
  let arr = Array.of_list layers in
  let producer =
    List.concat (List.mapi (fun i l -> [ (l.out, i) ]) layers)
  in
  let deps i =
    activation_ins arr.(i)
    |> List.filter_map (fun a ->
           if List.mem a inputs then None else List.assoc_opt a producer)
  in
  let placed = Array.make n false in
  let order = ref [] in
  let progressed = ref true in
  while !progressed do
    progressed := false;
    for i = 0 to n - 1 do
      if (not placed.(i)) && List.for_all (fun d -> placed.(d)) (deps i) then begin
        placed.(i) <- true;
        order := i :: !order;
        progressed := true
      end
    done
  done;
  if List.length !order = n then Some (List.rev !order) else None

let make ~name ~inputs layers =
  let ( let* ) = Result.bind in
  let* () = if is_ident name then Ok () else Error (Printf.sprintf "bad graph name %S" name) in
  let* () =
    if layers = [] then Error "graph has no layers"
    else if inputs = [] then Error "graph has no inputs"
    else Ok ()
  in
  let check_names what names =
    List.fold_left
      (fun acc n ->
        let* () = acc in
        if is_ident n then Ok () else Error (Printf.sprintf "bad %s name %S" what n))
      (Ok ()) names
  in
  let* () = check_names "input" inputs in
  let* () = check_names "layer" (List.map (fun l -> l.lname) layers) in
  let* () = check_names "array" (List.concat_map (fun l -> l.out :: l.ins) layers) in
  let dup what names =
    let rec go = function
      | [] -> Ok ()
      | x :: rest ->
          if List.mem x rest then Error (Printf.sprintf "duplicate %s %S" what x)
          else go rest
    in
    go names
  in
  let* () = dup "input" inputs in
  let* () = dup "layer name" (List.map (fun l -> l.lname) layers) in
  let* () = dup "layer output" (List.map (fun l -> l.out) layers) in
  let produced = List.map (fun l -> l.out) layers in
  let g = { gname = name; inputs; layers } in
  let ws = weights g in
  let* () =
    List.fold_left
      (fun acc l ->
        let* () = acc in
        let arity_ok = match l.op with Dense | Add | Mul -> List.length l.ins = 2 in
        let* () =
          if arity_ok then Ok ()
          else Error (Printf.sprintf "layer %s: expected 2 operands" l.lname)
        in
        let* () =
          if List.mem l.out inputs then
            Error (Printf.sprintf "layer %s writes graph input %S" l.lname l.out)
          else Ok ()
        in
        let* () =
          match (l.op, l.ins) with
          | Dense, w :: _ when List.mem w inputs || List.mem w produced ->
              Error
                (Printf.sprintf "layer %s: weight %S collides with an activation" l.lname w)
          | _ -> Ok ()
        in
        List.fold_left
          (fun acc a ->
            let* () = acc in
            if List.mem a inputs || List.mem a produced then
              if List.mem a ws then
                Error (Printf.sprintf "layer %s: %S is both weight and activation" l.lname a)
              else Ok ()
            else Error (Printf.sprintf "layer %s reads undefined array %S" l.lname a))
          (Ok ()) (activation_ins l))
      (Ok ()) layers
  in
  match kahn layers inputs with
  | Some _ -> Ok g
  | None -> Error (Printf.sprintf "graph %s has a dependence cycle" name)

let topo_order t =
  match kahn t.layers t.inputs with
  | Some o -> o
  | None -> invalid_arg "Graph.topo_order: cyclic graph" (* impossible via [make] *)

let valid_order t order =
  let n = List.length t.layers in
  List.sort compare order = List.init n Fun.id
  &&
  let arr = Array.of_list t.layers in
  let producer = List.mapi (fun i l -> (l.out, i)) t.layers in
  let position = Array.make n 0 in
  List.iteri (fun pos i -> position.(i) <- pos) order;
  List.for_all
    (fun i ->
      List.for_all
        (fun a ->
          match List.assoc_opt a producer with
          | Some p -> position.(p) < position.(i)
          | None -> true)
        (activation_ins arr.(i)))
    (List.init n Fun.id)

(* ---------- text codec ---------- *)

let to_text t =
  let b = Buffer.create 256 in
  Buffer.add_string b "#tdo-graph v1\n";
  Buffer.add_string b (Printf.sprintf "graph %s\n" t.gname);
  List.iter (fun i -> Buffer.add_string b (Printf.sprintf "input %s\n" i)) t.inputs;
  List.iter
    (fun l ->
      Buffer.add_string b
        (Printf.sprintf "layer %s %s %s -> %s\n" l.lname (op_name l.op)
           (String.concat "," l.ins) l.out))
    t.layers;
  Buffer.contents b

let of_text text =
  let ( let* ) = Result.bind in
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  let parse_line acc line =
    let* name, inputs, layers = acc in
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | [ "graph"; g ] -> (
        match name with
        | None -> Ok (Some g, inputs, layers)
        | Some _ -> Error "duplicate graph line")
    | [ "input"; i ] -> Ok (name, i :: inputs, layers)
    | [ "layer"; lname; opname; ins; "->"; out ] ->
        let* op = op_of_name opname in
        let ins = String.split_on_char ',' ins in
        Ok (name, inputs, { lname; op; ins; out } :: layers)
    | _ -> Error (Printf.sprintf "cannot parse graph line %S" line)
  in
  let* name, inputs, layers = List.fold_left parse_line (Ok (None, [], [])) lines in
  match name with
  | None -> Error "missing graph line"
  | Some name -> make ~name ~inputs:(List.rev inputs) (List.rev layers)

(* ---------- composed source ---------- *)

(* Fixed parameter order regardless of the emission order: weights,
   then graph inputs, then produced arrays in declaration order — so
   one argument list serves every topological order. *)
let params t = weights t @ t.inputs @ List.map (fun l -> l.out) t.layers

let to_source ?order t ~n =
  let order = match order with Some o -> o | None -> topo_order t in
  if not (valid_order t order) then invalid_arg "Graph.to_source: not a topological order";
  let arr = Array.of_list t.layers in
  let ws = weights t in
  let param name =
    if List.mem name ws then Printf.sprintf "float %s[%d][%d]" name n n
    else Printf.sprintf "float %s[%d]" name n
  in
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "void kernel_%s(%s) {\n" t.gname
       (String.concat ", " (List.map param (params t))));
  List.iter
    (fun i ->
      let l = arr.(i) in
      match (l.op, l.ins) with
      | Dense, [ w; x ] ->
          Buffer.add_string b
            (Printf.sprintf
               "  for (int i = 0; i < %d; i++) {\n    %s[i] = 0.0;\n    for (int j = 0; \
                j < %d; j++)\n      %s[i] += %s[i][j] * %s[j];\n  }\n"
               n l.out n l.out w x)
      | (Add | Mul), [ a; c ] ->
          Buffer.add_string b
            (Printf.sprintf "  for (int i = 0; i < %d; i++)\n    %s[i] = %s[i] %s %s[i];\n"
               n l.out a
               (if l.op = Add then "+" else "*")
               c)
      | _ -> invalid_arg "Graph.to_source: malformed layer" (* impossible via [make] *))
    order;
  Buffer.add_string b "}\n";
  Buffer.contents b

let macs t ~n =
  List.fold_left
    (fun acc l -> acc + match l.op with Dense -> n * n | Add | Mul -> n)
    0 t.layers

(* ---------- request data ---------- *)

(* FNV-1a: a stable string hash (Hashtbl.hash is not guaranteed across
   versions) scoping weight data to the (graph, weight) pair. *)
let name_seed s =
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3fffffff) s;
  !h

let make_args t ~n ~seed =
  let ws = weights t in
  let bindings =
    List.map
      (fun name ->
        if List.mem name ws then
          (* model-scoped: every request of this graph carries the same
             weights — the invariant weight residency rests on *)
          let g = Prng.create ~seed:(name_seed (t.gname ^ "/" ^ name)) in
          (name, Interp.Varray (Kernels.random_arr g ~dims:[ n; n ]))
        else if List.mem name t.inputs then
          let g = Prng.create ~seed:(seed lxor name_seed name) in
          (name, Interp.Varray (Kernels.random_arr g ~dims:[ n ]))
        else (name, Interp.Varray (Kernels.zero_arr ~dims:[ n ])))
      (params t)
  in
  let outs = graph_outputs t in
  let readback () =
    List.map
      (fun o ->
        match List.assoc o bindings with
        | Interp.Varray arr -> Kernels.mat_of_vec arr
        | _ -> assert false)
      outs
  in
  (bindings, readback)

let kernel_name t = "graph:" ^ t.gname

let benchmark t =
  {
    Kernels.name = kernel_name t;
    description =
      Printf.sprintf "%d-layer graph program (%d dense, %d weights)"
        (List.length t.layers)
        (List.length (List.filter (fun l -> l.op = Dense) t.layers))
        (List.length (weights t));
    kind = Kernels.Gemv_like;
    source = (fun ~n -> to_source t ~n);
    macs = (fun ~n -> macs t ~n);
    make_args = (fun ~n ~seed -> make_args t ~n ~seed);
  }

let digest t ~n =
  Tdo_lang.Ast.structural_digest (Tdo_lang.Parser.parse_func (to_source t ~n))

(* ---------- dependence-edge inference ---------- *)

let infer_edges t ~n =
  let source = to_source t ~n in
  let f0 = Tdo_ir.Lower.func (Tdo_lang.Parser.parse_func source) in
  match Tdo_poly.Scop_detect.detect_func f0 with
  | Error msg -> Error ("graph dependence inference: " ^ msg)
  | Ok tree ->
      let dg = Depgraph.of_tree tree in
      let nlayers = List.length t.layers in
      if List.length dg.Depgraph.nodes <> nlayers then
        Error
          (Printf.sprintf
             "graph dependence inference: %d top-level events for %d layers"
             (List.length dg.Depgraph.nodes) nlayers)
      else
        Ok
          (List.map
             (fun (e : Depgraph.edge) ->
               (e.Depgraph.src, e.Depgraph.dst, e.Depgraph.kind, e.Depgraph.array))
             dg.Depgraph.edges)

let run_host ?order t ~n ~seed =
  let ast = Tdo_lang.Parser.parse_func (to_source ?order t ~n) in
  Tdo_lang.Typecheck.check_func ast;
  let args, readback = make_args t ~n ~seed in
  Interp.run ast ~args;
  readback ()

(* ---------- workload generators ---------- *)

let mlp ?(name = "mlp") ~layers () =
  if layers < 1 then invalid_arg "Graph.mlp: need at least one layer";
  let name = if name = "mlp" then Printf.sprintf "mlp%d" layers else name in
  let layer i =
    let src = if i = 0 then "x" else Printf.sprintf "h%d" i in
    {
      lname = Printf.sprintf "fc%d" (i + 1);
      op = Dense;
      ins = [ Printf.sprintf "W%d" (i + 1); src ];
      out = Printf.sprintf "h%d" (i + 1);
    }
  in
  match make ~name ~inputs:[ "x" ] (List.init layers layer) with
  | Ok g -> g
  | Error msg -> invalid_arg ("Graph.mlp: " ^ msg)

let attention ?(name = "attn") () =
  (* Single-head block at vector granularity: three parallel
     projections of x, an element-wise score and weighting in place of
     the softmax, and an output projection — enough width that the
     topological order is genuinely non-unique. *)
  let layers =
    [
      { lname = "proj_q"; op = Dense; ins = [ "Wq"; "x" ]; out = "q" };
      { lname = "proj_k"; op = Dense; ins = [ "Wk"; "x" ]; out = "k" };
      { lname = "proj_v"; op = Dense; ins = [ "Wv"; "x" ]; out = "v" };
      { lname = "score"; op = Mul; ins = [ "q"; "k" ]; out = "s" };
      { lname = "weighted"; op = Mul; ins = [ "s"; "v" ]; out = "w" };
      { lname = "proj_out"; op = Dense; ins = [ "Wo"; "w" ]; out = "y" };
    ]
  in
  match make ~name ~inputs:[ "x" ] layers with
  | Ok g -> g
  | Error msg -> invalid_arg ("Graph.attention: " ^ msg)

let standard = [ mlp ~layers:4 (); attention () ]

let find name =
  let bare =
    match String.index_opt name ':' with
    | Some i when String.sub name 0 i = "graph" ->
        String.sub name (i + 1) (String.length name - i - 1)
    | _ -> name
  in
  match List.find_opt (fun g -> g.gname = bare) standard with
  | Some g -> Ok g
  | None ->
      Error
        (Printf.sprintf "unknown graph %S (expected %s)" name
           (String.concat ", " (List.map (fun g -> g.gname) standard)))

let find_bench name =
  if String.length name >= 6 && String.sub name 0 6 = "graph:" then
    Result.map benchmark (find name)
  else Kernels.find name
