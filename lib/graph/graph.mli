(** Multi-kernel graph programs: the DNN-serving workload unit.

    TDO-CIM detects and offloads kernels one at a time, but real CIM
    traffic (per the DNN-compiler related work) is {e graphs} of
    batched GEMV layers whose weights are shared across requests. A
    {!t} is a DAG of layers over named arrays: [Dense] layers are
    weight-times-activation GEMVs (the tactics detector offloads
    them), [Add]/[Mul] layers are element-wise host combinators.
    Producer→consumer edges are implied by array names — a layer
    reading another layer's output depends on it.

    A graph compiles to {e one} mini-C function: its layers emitted as
    consecutive loop nests in topological order, so the whole multi-
    layer program flows through the existing parse → detect → offload
    → serve stack unchanged. Any topological order computes the same
    function (each layer writes only its own output array); the region
    dependence analysis can re-derive the edges from the composed
    source ({!infer_edges}), which is the proof the order-invariance
    test leans on.

    Weight arrays are seeded by {e (graph, weight) name} — not by the
    request — so every request of the same model carries bit-identical
    weights. That is what makes cross-request weight residency sound:
    replaying the same compiled entry re-programs the same bytes, so a
    device that kept the crossbar tiles pinned can skip programming
    entirely without changing any result. Activations remain seeded
    per request. *)

module Interp = Tdo_lang.Interp
module Mat = Tdo_linalg.Mat
module Kernels = Tdo_polybench.Kernels
module Depgraph = Tdo_analysis.Depgraph

type op =
  | Dense  (** [out = W · x]: the offloadable GEMV layer *)
  | Add  (** element-wise [out = a + b] (host code) *)
  | Mul  (** element-wise [out = a * b] (host code) *)

val op_name : op -> string
(** ["dense"], ["add"], ["mul"] — the codec spelling. *)

type layer = {
  lname : string;
  op : op;
  ins : string list;
      (** [Dense]: [[weight; activation]] — the weight name is an
          external array that exists only as this (or another Dense)
          layer's operand. [Add]/[Mul]: two activations (graph inputs
          or other layers' outputs). *)
  out : string;  (** array this layer produces; unique per layer *)
}

type t = private {
  gname : string;  (** model name; the serving kernel is ["graph:" ^ gname] *)
  inputs : string list;  (** request-seeded activation arrays *)
  layers : layer list;  (** declaration order; any topological order is valid *)
}

val make : name:string -> inputs:string list -> layer list -> (t, string) result
(** Validate and build: names must be C identifiers, layer names and
    outputs unique, every non-weight operand defined (a graph input or
    a produced array), weights distinct from both, and the implied
    producer→consumer graph acyclic. *)

val weights : t -> string list
(** Weight arrays in first-use order — the residency working set. *)

val graph_outputs : t -> string list
(** Arrays produced but never consumed, in production order: what a
    request reads back. *)

val topo_order : t -> int list
(** Deterministic (declaration-order Kahn) topological order of layer
    indices. *)

val valid_order : t -> int list -> bool
(** Is this permutation of layer indices a topological order? *)

val to_text : t -> string
(** [#tdo-graph v1] spec: one [graph]/[input]/[layer] line each, fixed
    field order — deterministic, diffable, {!of_text}'s inverse. *)

val of_text : string -> (t, string) result

val to_source : ?order:int list -> t -> n:int -> string
(** The composed mini-C function at problem size [n]: square [n]x[n]
    weights, length-[n] activations, one loop nest per layer in
    [order] (default {!topo_order}; must satisfy {!valid_order}). The
    parameter list is fixed (weights, inputs, produced arrays in
    declaration order) so every order compiles against the same
    argument bindings. *)

val macs : t -> n:int -> int
(** [n]² per Dense layer plus [n] per element-wise layer. *)

val make_args :
  t -> n:int -> seed:int -> (string * Interp.value) list * (unit -> Mat.t list)
(** Argument bindings for one request: weights seeded by (graph,
    weight) name — identical across requests of the model — inputs by
    [seed], produced arrays zeroed. The readback closure returns
    {!graph_outputs} as [n]x1 matrices. *)

val benchmark : t -> Kernels.benchmark
(** Package as a serving benchmark named ["graph:" ^ gname], ready for
    the scheduler, loadgen mixes and the tuner. *)

val kernel_name : t -> string

val digest : t -> n:int -> string
(** Structural AST digest of the composed source — the key space
    {!Tdo_tune.Db} stores graph-scope tuned configurations under. *)

val infer_edges : t -> n:int -> ((int * int * Depgraph.kind * string) list, string) result
(** Re-derive the layer dependence edges from the composed source via
    the schedule-tree region analysis ({!Tdo_analysis.Depgraph}):
    [(src, dst, kind, array)] with layer indices in [order]-less
    (declaration topological) emission order. Errors if the detector
    does not yield one top-level event per layer. *)

val run_host : ?order:int list -> t -> n:int -> seed:int -> Mat.t list
(** Reference execution: interpret {!to_source} under {!make_args} and
    return the readback — the sequential oracle the order-invariance
    test compares against. *)

val mlp : ?name:string -> layers:int -> unit -> t
(** [layers] Dense layers chained x → h1 → … — the MLP workload. *)

val attention : ?name:string -> unit -> t
(** An attention-style block: three parallel Dense projections (Wq,
    Wk, Wv) of one input, element-wise score/weighting combinators,
    and a Dense output projection — a DAG with real width, not a
    chain. *)

val standard : t list
(** The serving models: [mlp ~layers:4] ("mlp4") and [attention]
    ("attn"). *)

val find : string -> (t, string) result
(** Look a standard model up by graph name or serving kernel name
    (["mlp4"] or ["graph:mlp4"]). *)

val find_bench : string -> (Kernels.benchmark, string) result
(** {!find} composed with {!benchmark}; falls back to
    {!Kernels.find} for plain PolyBench kernel names, so call sites
    can resolve any serving kernel name through one function. *)
