module St = Tdo_poly.Schedule_tree
module Deps = Tdo_poly.Deps
module Ir = Tdo_ir.Ir
module Ast = Tdo_lang.Ast

type config = {
  xbar_rows : int;
  xbar_cols : int;
  enable_fusion : bool;
  enable_tiling : bool;
  naive_pin : bool;
  min_intensity : float option;
}

let default_config =
  {
    xbar_rows = 256;
    xbar_cols = 256;
    enable_fusion = true;
    enable_tiling = true;
    naive_pin = false;
    min_intensity = None;
  }

type report = {
  kernels_detected : int;
  kernels_offloaded : int;
  fused_groups : int;
  tiled_kernels : int;
  skipped_low_intensity : int;
}

(* Normalised BLAS-3 view of a matched kernel (GEMV is a GEMM with
   n = 1, so one emission path covers both). *)
type gemm_like = {
  c_array : string;
  a : Patterns.operand;
  b : Patterns.operand;
  m : int;
  n : int;
  k : int;
  alpha : Ast.expr;
  beta : Ast.expr;
  is_gemv : bool;
}

let gemm_like_of_kernel = function
  | Patterns.Kgemm g ->
      Some
        {
          c_array = g.Patterns.c_array;
          a = g.Patterns.a;
          b = g.Patterns.b;
          m = g.Patterns.m;
          n = g.Patterns.n;
          k = g.Patterns.k;
          alpha = g.Patterns.alpha;
          beta = g.Patterns.beta;
          is_gemv = false;
        }
  | Patterns.Kgemv g ->
      Some
        {
          c_array = g.Patterns.y_array;
          a = g.Patterns.a;
          b = { Patterns.array = g.Patterns.x_array; trans = false };
          m = g.Patterns.m;
          n = 1;
          k = g.Patterns.k;
          alpha = g.Patterns.alpha;
          beta = g.Patterns.beta;
          is_gemv = true;
        }
  | Patterns.Kconv _ -> None

(* ---------- segment classification ---------- *)

type seg =
  | Shost of St.t
  | Sgemm of gemm_like * St.t
  | Sconv of Patterns.conv * St.t

let classify_segment ?(on_rewrite = fun _ ~before:_ ~after:_ -> ()) tree =
  (* match the tree as written, then — Loop Tactics style — modulo
     legal loop interchange of a perfect nest *)
  let kernel =
    List.find_map
      (fun cand ->
        match Patterns.classify cand with
        | Some k ->
            if cand != tree then on_rewrite "interchange" ~before:tree ~after:cand;
            Some k
        | None -> None)
      (Transform.interchange_candidates tree)
  in
  match kernel with
  | None -> Shost tree
  | Some (Patterns.Kconv c) -> Sconv (c, tree)
  | Some kernel -> (
      match gemm_like_of_kernel kernel with
      | Some g -> Sgemm (g, tree)
      | None -> Shost tree)

(* ---------- pinning, fit, intensity ---------- *)

type pin = Pa | Pb

let ir_pin = function Pa -> Ir.Pin_a | Pb -> Ir.Pin_b

let fits config pin (g : gemm_like) =
  g.k <= config.xbar_rows
  && (match pin with Pa -> g.m <= config.xbar_cols | Pb -> g.n <= config.xbar_cols)

let same_operand (x : Patterns.operand) (y : Patterns.operand) =
  String.equal x.Patterns.array y.Patterns.array && x.Patterns.trans = y.Patterns.trans

let group_pin config kernels =
  if config.naive_pin then
    (* ablation: deliberately stream the potentially-shared operand *)
    let g = List.hd kernels in
    if fits config Pb g then Pb else Pa
  else if List.for_all (fun g -> g.is_gemv) kernels then
    (* GEMV keeps the matrix stationary in the crossbar — the physical
       CIM mapping (pinning the 1-column vector would waste the array) *)
    Pa
  else
    match kernels with
    | [ g ] -> if fits config Pa g then Pa else if fits config Pb g then Pb else Pa
    | g0 :: rest ->
        if List.for_all (fun g -> same_operand g.a g0.a) rest && fits config Pa g0 then Pa
        else if List.for_all (fun g -> same_operand g.b g0.b) rest && fits config Pb g0 then Pb
        else Pa
    | [] -> Pa

let shares_pinned pin kernels =
  match kernels with
  | [] | [ _ ] -> true
  | g0 :: rest -> (
      match pin with
      | Pa -> List.for_all (fun g -> same_operand g.a g0.a) rest
      | Pb -> List.for_all (fun g -> same_operand g.b g0.b) rest)

let estimated_intensity config pin kernels =
  let cells (g : gemm_like) = g.k * (match pin with Pa -> g.m | Pb -> g.n) in
  let macs = List.fold_left (fun acc g -> acc + (g.m * g.n * g.k)) 0 kernels in
  let programs = if shares_pinned pin kernels then 1 else List.length kernels in
  (* an over-size kernel is tiled: every element of the pinned operand
     is written exactly once either way *)
  let writes =
    if List.exists (fun g -> not (fits config pin g)) kernels then
      List.fold_left (fun acc g -> acc + (g.k * match pin with Pa -> g.m | Pb -> g.n)) 0 kernels
    else programs * cells (List.hd kernels)
  in
  ignore config;
  float_of_int macs /. float_of_int (max 1 writes)

(* ---------- fusion grouping (paper Listing 2) ---------- *)

let compatible (x : gemm_like) (y : gemm_like) =
  x.m = y.m && x.n = y.n && x.k = y.k
  && x.a.Patterns.trans = y.a.Patterns.trans
  && x.b.Patterns.trans = y.b.Patterns.trans
  && Ast.expr_equal x.alpha y.alpha
  && Ast.expr_equal x.beta y.beta

type unit_ =
  | Uhost of St.t
  | Ugroup of gemm_like list * St.t list
  | Uconv of Patterns.conv

let group_segments config segments =
  let rec loop acc = function
    | [] -> List.rev acc
    | Shost t :: rest -> loop (Uhost t :: acc) rest
    | Sconv (c, _) :: rest -> loop (Uconv c :: acc) rest
    | Sgemm (g, t) :: rest when config.enable_fusion ->
        (* absorb following kernels with the same access pattern that
           are pairwise independent of everything already absorbed *)
        let rec absorb kernels trees rest =
          match rest with
          | Sgemm (g', t') :: tail
            when compatible g g'
                 && List.for_all (fun prev -> Tdo_analysis.Depgraph.independent_trees prev t') trees
                 && fits config (group_pin config (kernels @ [ g' ])) g' ->
              absorb (kernels @ [ g' ]) (trees @ [ t' ]) tail
          | _ -> (kernels, trees, rest)
        in
        let kernels, trees, rest = absorb [ g ] [ t ] rest in
        loop (Ugroup (kernels, trees) :: acc) rest
    | Sgemm (g, t) :: rest -> loop (Ugroup ([ g ], [ t ]) :: acc) rest
  in
  loop [] segments

(* ---------- call emission ---------- *)

(* Fresh-name supply, created per [apply] so generated names depend
   only on the tree being compiled — never on how many compilations ran
   earlier in the process (or concurrently on other domains). *)
let make_gensym () =
  let counter = ref 0 in
  fun prefix ->
    incr counter;
    Printf.sprintf "__%s%d" prefix !counter

let i0 = Ast.Int_lit 0

(* physical offsets of a logical-operand tile at (row, col) *)
let phys_off (op : Patterns.operand) ~row ~col =
  if op.Patterns.trans then (col, row) else (row, col)

let a_ref (g : gemm_like) ~row ~col ~rows ~cols =
  let row_off, col_off = phys_off g.a ~row ~col in
  { Ir.array = g.a.Patterns.array; row_off; col_off; rows; cols; trans = g.a.Patterns.trans }

let b_ref (g : gemm_like) ~row ~col ~rows ~cols =
  let row_off, col_off = phys_off g.b ~row ~col in
  { Ir.array = g.b.Patterns.array; row_off; col_off; rows; cols; trans = g.b.Patterns.trans }

let c_ref (g : gemm_like) ~row ~col ~rows ~cols =
  { Ir.array = g.c_array; row_off = row; col_off = col; rows; cols; trans = false }

let whole_refs g =
  ( a_ref g ~row:i0 ~col:i0 ~rows:g.m ~cols:g.k,
    b_ref g ~row:i0 ~col:i0 ~rows:g.k ~cols:g.n,
    c_ref g ~row:i0 ~col:i0 ~rows:g.m ~cols:g.n )

let plain_call pin g =
  let a, b, c = whole_refs g in
  Ir.Call
    (Ir.Cim_gemm
       { m = g.m; n = g.n; k = g.k; alpha = g.alpha; beta = g.beta; a; b; c; pin = ir_pin pin })

let batched_call pin kernels =
  let g0 = List.hd kernels in
  let batch = List.map (fun g -> whole_refs g) kernels in
  Ir.Call
    (Ir.Cim_gemm_batched
       {
         m = g0.m;
         n = g0.n;
         k = g0.k;
         alpha = g0.alpha;
         beta = g0.beta;
         batch;
         pin = ir_pin pin;
       })

(* Revisited tiling (paper Listing 3): tile the pinned dimension and
   the reduction, peel the first k-tile so beta applies exactly once,
   and rely on the engine's streaming for the remaining dimension. *)
let tiled_calls gensym config pin (g : gemm_like) =
  let outer_total = match pin with Pa -> g.m | Pb -> g.n in
  let tile_outer = min outer_total config.xbar_cols in
  let tile_k = min g.k config.xbar_rows in
  if outer_total mod tile_outer <> 0 || g.k mod tile_k <> 0 then None
  else begin
    let ii = gensym "ii" and kk = gensym "kk" in
    let call ~outer ~kexpr ~beta =
      let tm, tn = match pin with Pa -> (tile_outer, g.n) | Pb -> (g.m, tile_outer) in
      let a, b, c =
        match pin with
        | Pa ->
            ( a_ref g ~row:outer ~col:kexpr ~rows:tm ~cols:tile_k,
              b_ref g ~row:kexpr ~col:i0 ~rows:tile_k ~cols:g.n,
              c_ref g ~row:outer ~col:i0 ~rows:tm ~cols:g.n )
        | Pb ->
            ( a_ref g ~row:i0 ~col:kexpr ~rows:g.m ~cols:tile_k,
              b_ref g ~row:kexpr ~col:outer ~rows:tile_k ~cols:tn,
              c_ref g ~row:i0 ~col:outer ~rows:g.m ~cols:tn )
      in
      Ir.Call
        (Ir.Cim_gemm
           { m = tm; n = tn; k = tile_k; alpha = g.alpha; beta; a; b; c; pin = ir_pin pin })
    in
    let inner_body outer =
      call ~outer ~kexpr:i0 ~beta:g.beta
      ::
      (if g.k > tile_k then
         [
           Ir.For
             {
               var = kk;
               lo = Ast.Int_lit tile_k;
               hi = Ast.Int_lit g.k;
               step = tile_k;
               body = [ call ~outer ~kexpr:(Ast.Var kk) ~beta:(Ast.Float_lit 1.0) ];
             };
         ]
       else [])
    in
    let stmts =
      if outer_total > tile_outer then
        [
          Ir.For
            {
              var = ii;
              lo = Ast.Int_lit 0;
              hi = Ast.Int_lit outer_total;
              step = tile_outer;
              body = inner_body (Ast.Var ii);
            };
        ]
      else
        (* only the reduction needs tiling *)
        inner_body i0
    in
    Some stmts
  end

(* ---------- conv lowering: im2col + GEMM with pinned weights ---------- *)

let conv_code gensym (c : Patterns.conv) =
  let patches = gensym "conv_patches"
  and wflat = gensym "conv_w"
  and outflat = gensym "conv_out" in
  let i = gensym "i" and j = gensym "j" and p = gensym "p" and q = gensym "q" in
  let open Ast in
  let mul a b = Binop (Mul, a, b) in
  let add a b = Binop (Add, a, b) in
  let m = c.Patterns.out_h * c.Patterns.out_w in
  let kk = c.Patterns.ker_h * c.Patterns.ker_w in
  let for_ var hi body = Ir.For { var; lo = Int_lit 0; hi = Int_lit hi; step = 1; body } in
  let patch_row = add (mul (Var i) (Int_lit c.Patterns.out_w)) (Var j) in
  let patch_col = add (mul (Var p) (Int_lit c.Patterns.ker_w)) (Var q) in
  (* patch gathering happens on the device's DMA, not in a host loop *)
  let im2col =
    Ir.Call
      (Ir.Cim_im2col
         {
           src = c.Patterns.input;
           dst = patches;
           kh = c.Patterns.ker_h;
           kw = c.Patterns.ker_w;
           oh = c.Patterns.out_h;
           ow = c.Patterns.out_w;
         })
  in
  let flatten_w =
    for_ p c.Patterns.ker_h
      [
        for_ q c.Patterns.ker_w
          [
            Ir.Assign
              {
                lhs = { base = wflat; indices = [ patch_col ] };
                op = Set;
                rhs = Index (c.Patterns.weights, [ Var p; Var q ]);
              };
          ];
      ]
  in
  let gather_out =
    for_ i c.Patterns.out_h
      [
        for_ j c.Patterns.out_w
          [
            Ir.Assign
              {
                lhs = { base = outflat; indices = [ patch_row ] };
                op = Set;
                rhs = Index (c.Patterns.output, [ Var i; Var j ]);
              };
          ];
      ]
  in
  let scatter_out =
    for_ i c.Patterns.out_h
      [
        for_ j c.Patterns.out_w
          [
            Ir.Assign
              {
                lhs = { base = c.Patterns.output; indices = [ Var i; Var j ] };
                op = Set;
                rhs = Index (outflat, [ patch_row ]);
              };
          ];
      ]
  in
  let beta = if c.Patterns.accumulate then Float_lit 1.0 else Float_lit 0.0 in
  let gemm =
    Ir.Call
      (Ir.Cim_gemm
         {
           m;
           n = 1;
           k = kk;
           alpha = c.Patterns.alpha;
           beta;
           a =
             { Ir.array = patches; row_off = i0; col_off = i0; rows = m; cols = kk; trans = false };
           b = { Ir.array = wflat; row_off = i0; col_off = i0; rows = kk; cols = 1; trans = false };
           c =
             { Ir.array = outflat; row_off = i0; col_off = i0; rows = m; cols = 1; trans = false };
           pin = Ir.Pin_b;
         })
  in
  [ Ir.Decl_array { name = patches; dims = [ m; kk ] };
    Ir.Decl_array { name = wflat; dims = [ kk ] };
    Ir.Decl_array { name = outflat; dims = [ m ] };
    flatten_w ]
  @ (if c.Patterns.accumulate then [ gather_out ] else [])
  @ [ Ir.Call (Ir.Cim_alloc { array = patches });
      Ir.Call (Ir.Cim_alloc { array = wflat });
      Ir.Call (Ir.Cim_alloc { array = outflat });
      Ir.Call (Ir.Cim_h2d { array = wflat }) ]
  @ (if c.Patterns.accumulate then [ Ir.Call (Ir.Cim_h2d { array = outflat }) ] else [])
  @ [ im2col;
      gemm;
      Ir.Call (Ir.Cim_d2h { array = outflat });
      scatter_out;
      Ir.Call (Ir.Cim_free { array = patches });
      Ir.Call (Ir.Cim_free { array = wflat });
      Ir.Call (Ir.Cim_free { array = outflat }) ]

(* ---------- data placement ---------- *)

type residency = { mutable dev_alloc : bool; mutable host_fresh : bool; mutable dev_fresh : bool }

let apply ?on_rewrite config tree =
  let gensym = make_gensym () in
  let residency_table = Hashtbl.create 16 in
  let state arr =
    match Hashtbl.find_opt residency_table arr with
    | Some s -> s
    | None ->
        let s = { dev_alloc = false; host_fresh = true; dev_fresh = false } in
        Hashtbl.add residency_table arr s;
        s
  in
  let children = match tree with St.Seq children -> children | t -> [ t ] in
  let segments = List.map (classify_segment ?on_rewrite) children in
  let detected =
    List.length (List.filter (function Shost _ -> false | Sgemm _ | Sconv _ -> true) segments)
  in
  let units = group_segments config segments in
  let offloaded = ref 0
  and fused = ref 0
  and tiled = ref 0
  and skipped = ref 0
  and needs_init = ref false in
  let out = ref [] in
  let emit tree = out := tree :: !out in
  let emit_code stmts = if stmts <> [] then emit (St.Code stmts) in
  let ensure_host arrays =
    let moves =
      List.filter_map
        (fun arr ->
          let s = state arr in
          if s.dev_alloc && not s.host_fresh then begin
            s.host_fresh <- true;
            Some (Ir.Call (Ir.Cim_d2h { array = arr }))
          end
          else None)
        arrays
    in
    emit_code moves
  in
  let host_writes arrays =
    List.iter
      (fun arr ->
        let s = state arr in
        s.host_fresh <- true;
        s.dev_fresh <- false)
      arrays
  in
  let ensure_device ~inputs ~outputs =
    needs_init := true;
    let moves = ref [] in
    List.iter
      (fun arr ->
        let s = state arr in
        if not s.dev_alloc then begin
          s.dev_alloc <- true;
          moves := Ir.Call (Ir.Cim_alloc { array = arr }) :: !moves
        end)
      (inputs @ outputs);
    List.iter
      (fun arr ->
        let s = state arr in
        if not s.dev_fresh then begin
          s.dev_fresh <- true;
          moves := Ir.Call (Ir.Cim_h2d { array = arr }) :: !moves
        end)
      inputs;
    emit_code (List.rev !moves);
    List.iter
      (fun arr ->
        let s = state arr in
        s.dev_fresh <- true;
        s.host_fresh <- false)
      outputs
  in
  let strings_to_list s = Deps.Strings.elements s in
  let process = function
    | Uhost t ->
        ensure_host (strings_to_list (Deps.arrays_read t));
        host_writes (strings_to_list (Deps.arrays_written t));
        emit t
    | Uconv c ->
        (* weight flattening and output scatter run on the host; the
           image goes to the device once and patches are gathered by
           the device DMA inside the generated block *)
        needs_init := true;
        incr offloaded;
        let host_reads =
          c.Patterns.weights :: (if c.Patterns.accumulate then [ c.Patterns.output ] else [])
        in
        ensure_host host_reads;
        ensure_device ~inputs:[ c.Patterns.input ] ~outputs:[];
        host_writes [ c.Patterns.output ];
        emit_code (conv_code gensym c)
    | Ugroup (kernels, trees) -> (
        let pin = group_pin config kernels in
        let intensity = estimated_intensity config pin kernels in
        let below_threshold =
          match config.min_intensity with Some t -> intensity < t | None -> false
        in
        if below_threshold then begin
          skipped := !skipped + List.length kernels;
          List.iter
            (fun t ->
              ensure_host (strings_to_list (Deps.arrays_read t));
              host_writes (strings_to_list (Deps.arrays_written t));
              emit t)
            trees
        end
        else
          let beta_statically_zero g =
            match g.beta with Ast.Float_lit 0.0 -> true | _ -> false
          in
          let inputs =
            List.concat_map
              (fun g ->
                [ g.a.Patterns.array; g.b.Patterns.array ]
                @ if beta_statically_zero g then [] else [ g.c_array ])
              kernels
            |> List.sort_uniq compare
          in
          let outputs = List.map (fun g -> g.c_array) kernels |> List.sort_uniq compare in
          match kernels with
          | [ g ] when fits config pin g ->
              ensure_device ~inputs ~outputs;
              incr offloaded;
              emit_code [ plain_call pin g ]
          | [ g ] -> (
              match (config.enable_tiling, tiled_calls gensym config pin g) with
              | true, Some stmts ->
                  ensure_device ~inputs ~outputs;
                  incr offloaded;
                  incr tiled;
                  emit_code stmts
              | _ ->
                  (* not expressible as exact compiler tiles: emit the
                     plain call and let the runtime library tile *)
                  ensure_device ~inputs ~outputs;
                  incr offloaded;
                  emit_code [ plain_call pin g ])
          | kernels ->
              ensure_device ~inputs ~outputs;
              offloaded := !offloaded + List.length kernels;
              incr fused;
              emit_code [ batched_call pin kernels ])
  in
  List.iter process units;
  (* copy every device-fresh array back and release the buffers *)
  let resident =
    Hashtbl.fold (fun arr s acc -> (arr, s) :: acc) residency_table []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let copy_backs =
    List.filter_map
      (fun (arr, s) ->
        if s.dev_alloc && not s.host_fresh then Some (Ir.Call (Ir.Cim_d2h { array = arr }))
        else None)
      resident
  in
  let frees =
    List.filter_map
      (fun (arr, s) -> if s.dev_alloc then Some (Ir.Call (Ir.Cim_free { array = arr })) else None)
      resident
  in
  emit_code (copy_backs @ frees);
  let body = List.rev !out in
  let body = if !needs_init then St.Code [ Ir.Call Ir.Cim_init ] :: body else body in
  let result = match body with [ single ] -> single | children -> St.Seq children in
  ( result,
    {
      kernels_detected = detected;
      kernels_offloaded = !offloaded;
      fused_groups = !fused;
      tiled_kernels = !tiled;
      skipped_low_intensity = !skipped;
    } )

(* ---------- analytic execution plan ---------- *)

type plan = {
  launches : int;
  rows_programmed : int;
  cells_programmed : int;
  gemv_passes : int;
  gemv_row_passes : int;
  device_macs : int;
  dma_bytes : int;
  host_ops : int;
}

let empty_plan =
  {
    launches = 0;
    rows_programmed = 0;
    cells_programmed = 0;
    gemv_passes = 0;
    gemv_row_passes = 0;
    device_macs = 0;
    dma_bytes = 0;
    host_ops = 0;
  }

let rec expr_ops = function
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Var _ -> 1
  | Ast.Index (_, idx) -> 1 + List.fold_left (fun acc e -> acc + expr_ops e) 0 idx
  | Ast.Binop (_, a, b) -> 1 + expr_ops a + expr_ops b
  | Ast.Neg e -> 1 + expr_ops e

let rec expr_mentions vars = function
  | Ast.Var v -> List.mem v vars
  | Ast.Int_lit _ | Ast.Float_lit _ -> false
  | Ast.Index (_, idx) -> List.exists (expr_mentions vars) idx
  | Ast.Binop (_, a, b) -> expr_mentions vars a || expr_mentions vars b
  | Ast.Neg e -> expr_mentions vars e

let plan config (f : Ir.func) =
  let ceil_div a b = (a + b - 1) / b in
  let dims = Hashtbl.create 16 in
  List.iter
    (fun (p : Ast.param) -> if p.Ast.dims <> [] then Hashtbl.replace dims p.Ast.pname p.Ast.dims)
    f.Ir.params;
  let elems arr =
    match Hashtbl.find_opt dims arr with
    | Some ds -> List.fold_left ( * ) 1 ds
    | None -> 0
  in
  (* host-write generations: a bumped generation invalidates any pinned
     operand living in that array, as the engine's reuse check does *)
  let gen = Hashtbl.create 16 in
  let generation arr = Option.value ~default:0 (Hashtbl.find_opt gen arr) in
  let bump arr = Hashtbl.replace gen arr (generation arr + 1) in
  let pinned = ref None in
  let totals = ref empty_plan in
  let add f = totals := f !totals in
  let gemm_job ~mult ~loop_vars ~m ~n ~k ~(a : Ir.mat_ref) ~(b : Ir.mat_ref) ~pin =
    let outer = match pin with Ir.Pin_a -> m | Ir.Pin_b -> n in
    let streamed = match pin with Ir.Pin_a -> n | Ir.Pin_b -> m in
    let col_chunks = max 1 (ceil_div outer config.xbar_cols) in
    let k_chunks = max 1 (ceil_div k config.xbar_rows) in
    let k_active = min k config.xbar_rows in
    let p = match pin with Ir.Pin_a -> a | Ir.Pin_b -> b in
    let key =
      (p.Ir.array, p.Ir.row_off, p.Ir.col_off, p.Ir.rows, p.Ir.cols, p.Ir.trans,
       generation p.Ir.array)
    in
    let variant =
      expr_mentions loop_vars p.Ir.row_off || expr_mentions loop_vars p.Ir.col_off
    in
    let programs =
      if variant then mult else if !pinned = Some key then 0 else 1
    in
    pinned := (if variant then None else Some key);
    let passes = mult * streamed * col_chunks * k_chunks in
    add (fun t ->
        {
          t with
          launches = t.launches + (mult * col_chunks * k_chunks);
          (* every pinned element is written once per program: k rows per
             column chunk, k x outer cells in total *)
          rows_programmed = t.rows_programmed + (programs * col_chunks * k);
          (* the pinned operand window is exactly [k x outer] cells, so
             price it off the region the analyzer sees: the tuner's
             write-bytes model and the W008 lint stay in agreement *)
          cells_programmed =
            t.cells_programmed + (programs * Tdo_analysis.Regions.mat_ref_cells p);
          gemv_passes = t.gemv_passes + passes;
          gemv_row_passes = t.gemv_row_passes + (passes * k_active);
          device_macs = t.device_macs + (mult * m * n * k);
        })
  in
  let rec stmt ~mult ~loop_vars = function
    | Ir.For { var; lo; hi; step; body } ->
        let trip =
          match (lo, hi) with
          | Ast.Int_lit a, Ast.Int_lit b -> max 0 (ceil_div (b - a) (max 1 step))
          | _ -> 1
        in
        if trip > 0 then
          List.iter (stmt ~mult:(mult * trip) ~loop_vars:(var :: loop_vars)) body
    | Ir.Assign { lhs; op = _; rhs } ->
        if Hashtbl.mem dims lhs.Ast.base then bump lhs.Ast.base;
        let idx_ops =
          List.fold_left (fun acc e -> acc + expr_ops e) 0 lhs.Ast.indices
        in
        add (fun t -> { t with host_ops = t.host_ops + (mult * (1 + idx_ops + expr_ops rhs)) })
    | Ir.Decl_scalar { init; _ } ->
        let ops = match init with Some e -> 1 + expr_ops e | None -> 1 in
        add (fun t -> { t with host_ops = t.host_ops + (mult * ops) })
    | Ir.Decl_array { name; dims = ds } ->
        Hashtbl.replace dims name ds
    | Ir.Roi_begin | Ir.Roi_end -> ()
    | Ir.Call c -> (
        match c with
        | Ir.Cim_init | Ir.Cim_alloc _ | Ir.Cim_free _ -> ()
        | Ir.Cim_h2d { array } ->
            bump array;
            add (fun t -> { t with dma_bytes = t.dma_bytes + (mult * elems array * 4) })
        | Ir.Cim_d2h { array } ->
            add (fun t -> { t with dma_bytes = t.dma_bytes + (mult * elems array * 4) })
        | Ir.Cim_im2col { kh; kw; oh; ow; _ } ->
            add (fun t ->
                { t with dma_bytes = t.dma_bytes + (mult * oh * ow * kh * kw * 4) })
        | Ir.Cim_gemm { m; n; k; a; b; c = cref; pin; _ } ->
            bump cref.Ir.array;
            gemm_job ~mult ~loop_vars ~m ~n ~k ~a ~b ~pin
        | Ir.Cim_gemm_batched { m; n; k; batch; pin; _ } ->
            List.iter
              (fun (a, b, cref) ->
                bump cref.Ir.array;
                gemm_job ~mult ~loop_vars ~m ~n ~k ~a ~b ~pin)
              batch)
  in
  List.iter (stmt ~mult:1 ~loop_vars:[]) f.Ir.body;
  !totals
