(** The Loop Tactics pass pipeline, as it sits inside Polly in Fig. 4:
    SCoP detection -> schedule-tree matching and rewriting -> AST/IR
    regeneration — with an optional LLVM-style verify-after-each-pass
    mode backed by {!Tdo_analysis}. *)

module Diag = Tdo_analysis.Diag

type outcome =
  | Offloaded of Offload.report  (** the pipeline ran (it may still have offloaded nothing) *)
  | Not_scop of string  (** detection obstruction; the host path is used *)
  | Rejected of Diag.t list
      (** verification found errors; the {e original} function is
          returned — a miscompiled region never reaches execution *)

type checked = {
  func : Tdo_ir.Ir.func;
  outcome : outcome;
  diagnostics : Diag.t list;
      (** every diagnostic the checkers produced, warnings and notes
          included; empty when [verify] was off *)
}

val run_checked : ?config:Offload.config -> ?verify:bool -> Tdo_ir.Ir.func -> checked
(** [verify] (default off) checks the input IR and the detected
    schedule tree with {!Tdo_analysis.Verify}, validates every
    intermediate rewrite and the final offload rewrite with
    {!Tdo_analysis.Legality}, proves accesses in bounds with
    {!Tdo_analysis.Bounds}, and re-verifies the regenerated IR. Each
    diagnostic is prefixed with the pipeline stage that produced it. *)

val run :
  ?config:Offload.config -> Tdo_ir.Ir.func -> Tdo_ir.Ir.func * Offload.report option
(** [run f] returns the CIM-optimised function. When the function body
    is not a SCoP the input is returned unchanged with [None] (the
    flow silently falls back to the host path, as Polly does).
    Equivalent to [run_checked] with verification off. *)
