module Scop_detect = Tdo_poly.Scop_detect
module Codegen = Tdo_poly.Codegen
module Ir = Tdo_ir.Ir
module Ast = Tdo_lang.Ast
module Diag = Tdo_analysis.Diag
module Verify = Tdo_analysis.Verify
module Legality = Tdo_analysis.Legality
module Bounds = Tdo_analysis.Bounds

type outcome =
  | Offloaded of Offload.report
  | Not_scop of string
  | Rejected of Diag.t list

type checked = { func : Ir.func; outcome : outcome; diagnostics : Diag.t list }

let run_checked ?(config = Offload.default_config) ?(verify = false) (f : Ir.func) =
  let diags = ref [] in
  let collect stage ds = diags := !diags @ List.map (Diag.prefixed stage) ds in
  if verify then begin
    collect "input-ir" (Verify.func f);
    collect "input-ir" (Bounds.func f)
  end;
  if verify && Diag.has_errors !diags then
    { func = f; outcome = Rejected (Diag.errors !diags); diagnostics = !diags }
  else
    match Scop_detect.detect_func f with
    | Error msg -> { func = f; outcome = Not_scop msg; diagnostics = !diags }
    | Ok tree ->
        let free = List.map (fun (p : Ast.param) -> p.Ast.pname) f.Ir.params in
        if verify then collect "scop" (Verify.tree ~free tree);
        let on_rewrite pass ~before ~after =
          if verify then begin
            collect pass (Verify.tree ~free after);
            collect pass (Legality.check_stmt_level ~before ~after)
          end
        in
        let tree', report = Offload.apply ~on_rewrite config tree in
        if verify then begin
          collect "offload" (Verify.tree ~free tree');
          collect "offload" (Legality.check ~before:tree ~after:tree')
        end;
        let f' = Codegen.func_with_body f tree' in
        if verify then begin
          collect "output-ir" (Verify.func f');
          collect "output-ir" (Bounds.func f')
        end;
        if verify && Diag.has_errors !diags then
          (* fail safe: keep the host path rather than run a rewrite
             that did not validate *)
          { func = f; outcome = Rejected (Diag.errors !diags); diagnostics = !diags }
        else { func = f'; outcome = Offloaded report; diagnostics = !diags }

let run ?config f =
  let { func; outcome; _ } = run_checked ?config f in
  match outcome with
  | Offloaded report -> (func, Some report)
  | Not_scop _ | Rejected _ -> (func, None)
