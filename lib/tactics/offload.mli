(** The TDO-CIM offload pass.

    Walks the top-level sequence of a schedule tree, classifies each
    subtree with the {!Patterns} detectors, and rewrites offloadable
    kernels into runtime-library calls, applying the paper's two
    endurance-oriented transformations:

    - {b Revisited loop fusion} (Section III-B, Listing 2): adjacent,
      independent kernels with the same access pattern become one
      [polly_cimBlasGemmBatched] call, and a shared input picks the
      crossbar-pinned operand so it is written once ("smart mapping").
    - {b Revisited tiling} (Section III-B, Listing 3): a GEMM whose
      operands exceed the crossbar is decomposed into crossbar-sized
      tiles with the k-loop peeled so every tile of the pinned operand
      is programmed exactly once; the streamed dimension needs no
      tiling because the micro-engine streams it through the row
      buffers.

    Data movement ([polly_cimMalloc/HostToDev/DevToHost/Free]) is
    placed by a host/device validity analysis so host code between
    kernels always reads fresh data, and every device-written array is
    copied back before the region ends (Listing 1's shape). *)

module St = Tdo_poly.Schedule_tree

type config = {
  xbar_rows : int;
  xbar_cols : int;
  enable_fusion : bool;
  enable_tiling : bool;
  naive_pin : bool;
      (** ablation: always stream the shared operand (Fig. 5's "naive
          mapping") instead of pinning it *)
  min_intensity : float option;
      (** selective offload: skip kernels whose estimated
          MACs-per-crossbar-write falls below this threshold *)
}

val default_config : config
(** 256x256 crossbar, fusion and tiling on, smart pinning, offload
    everything. *)

type report = {
  kernels_detected : int;
  kernels_offloaded : int;
  fused_groups : int;  (** batched calls emitted *)
  tiled_kernels : int;
  skipped_low_intensity : int;
}

val apply :
  ?on_rewrite:(string -> before:St.t -> after:St.t -> unit) -> config -> St.t -> St.t * report
(** Rewrite the tree. When nothing matches (or everything is skipped)
    the tree is returned unchanged up to structure. [on_rewrite] is
    invoked once per intermediate schedule-tree rewrite the pass
    commits to (currently: the loop interchange that made a kernel
    match), with a pass name and the subtree before/after — the hook
    translation validation hangs off ([--verify-each]).

    With [min_intensity] set, the skip decision is taken {e per fused
    group}: the MACs of every member are pooled and the pinned operand
    counts once when shared, so a batch can clear a threshold its
    members would individually miss. With fusion disabled each kernel
    is its own group and is judged alone. *)

(** {1 Analytic execution plan}

    A static census of the work a compiled function will put on the
    device and leave on the host — the feature vector behind the
    autotuner's cost model ({!Tdo_tune.Cost_model}). Computed by
    walking the IR, multiplying through constant trip counts and
    emulating the micro-engine's pinned-operand reuse: a launch whose
    pinned operand matches the previous one (same reference, no
    intervening host write or [h2d]) programs no crossbar rows. *)

type plan = {
  launches : int;  (** device triggers, including library-side tiling *)
  rows_programmed : int;  (** crossbar wordlines written (2.5 us each) *)
  cells_programmed : int;
      (** logical 8-bit operands written — the crossbar's [write_bytes]
          counter, i.e. the endurance-relevant write pressure *)
  gemv_passes : int;  (** analog GEMV operations issued *)
  gemv_row_passes : int;  (** active wordlines summed over passes *)
  device_macs : int;  (** MACs computed in the crossbar *)
  dma_bytes : int;  (** [h2d] + [d2h] traffic, 4 bytes per element *)
  host_ops : int;  (** expression nodes evaluated by host statements *)
}

val empty_plan : plan
(** All-zero census (a function with no work). *)

val plan : config -> Tdo_ir.Ir.func -> plan
(** Census of [func] as compiled — i.e. run the pipeline first and
    plan its output. Loops with non-constant bounds count as one
    iteration (none are produced by this compiler). *)
