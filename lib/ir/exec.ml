module Ast = Tdo_lang.Ast
module Interp = Tdo_lang.Interp
module Sim = Tdo_sim
module Platform = Tdo_runtime.Platform
module Api = Tdo_runtime.Api
module Regs = Tdo_cimacc.Context_regs

type metrics = {
  roi_instructions : int;
  roi_cycles : int;
  roi_time_ps : int;
  used_cim : bool;
  cim_launches : int;
}

exception Exec_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Exec_error s)) fmt

type array_info = { base : int; dims : int list }

(* ---------- resolved (slot-table) program ----------

   [run] first resolves every identifier to a typed slot index in one
   binding pass over the IR, then executes the resolved program against
   flat unboxed arrays. The interpreter previously paid a [List.assoc]
   string search plus a boxed [Vi]/[Vf] allocation for every operand of
   every dynamic instruction; on the PolyBench nests that was the
   hottest path of the whole evaluation. Instruction charging is
   unchanged: the same classes are issued for the same source
   constructs, with the same addresses. *)

type rexpr =
  | Ci of int  (** int literal *)
  | Cf of float  (** float literal *)
  | Vi of int  (** int scalar slot *)
  | Vf of int  (** float scalar slot *)
  | Load of { arr : int; dims : int array; idxs : rexpr array }
  | Ibin of Ast.binop * rexpr * rexpr  (** both operands int-typed *)
  | Fbin of Ast.binop * rexpr * rexpr  (** float result, operands coerced *)
  | Ineg of rexpr
  | Fneg of rexpr

let is_int = function
  | Ci _ | Vi _ | Ibin _ | Ineg _ -> true
  | Cf _ | Vf _ | Load _ | Fbin _ | Fneg _ -> false

(* right-hand side of [lhs op= rhs]: a top-level multiply under [+=]
   retires as one fused multiply-accumulate on the A7's VFP *)
type rrhs =
  | Rmac of rexpr * rexpr * bool  (** factors; [true] = integer multiply *)
  | Rplain of rexpr

type rmat = {
  mslot : int;
  mname : string;
  mrow_off : rexpr;
  mcol_off : rexpr;
  mtrans : bool;
}

type rcall =
  | Rinit
  | Ralloc of int * string
  | Rh2d of int * string
  | Rd2h of int * string
  | Rfree of int * string
  | Rgemm of {
      gm : int;
      gn : int;
      gk : int;
      galpha : rexpr;
      gbeta : rexpr;
      ga : rmat;
      gb : rmat;
      gc : rmat;
      gpin : Ir.pin;
    }
  | Rgemm_batched of {
      bm : int;
      bn : int;
      bk : int;
      balpha : rexpr;
      bbeta : rexpr;
      bbatch : (rmat * rmat * rmat) list;
      bpin : Ir.pin;
    }
  | Rim2col of {
      isrc : int;
      isrc_name : string;
      idst : int;
      idst_name : string;
      ikh : int;
      ikw : int;
      ioh : int;
      iow : int;
    }

type rstmt =
  | Rfor of { slot : int; lo : rexpr; hi : rexpr; step : int; body : rstmt array }
  | Rstore of { arr : int; dims : int array; idxs : rexpr array; op : Ast.assign_op; rhs : rrhs }
  | Rset_f of { slot : int; op : Ast.assign_op; rhs : rexpr }
  | Rset_i of { slot : int; op : Ast.assign_op; rhs : rexpr }
  | Rdecl_i of { slot : int; init : rexpr option }
  | Rdecl_f of { slot : int; init : rexpr option }
  | Rdecl_arr of { slot : int; adims : int list }
  | Rcall of rcall
  | Rroi_begin
  | Rroi_end

(* ---------- binding pass ---------- *)

type bind = Bint of int | Bfloat of int | Barr of int * int list

type counters = { mutable n_int : int; mutable n_float : int; mutable n_arr : int }

let new_int c =
  let s = c.n_int in
  c.n_int <- s + 1;
  s

let new_float c =
  let s = c.n_float in
  c.n_float <- s + 1;
  s

let new_arr c =
  let s = c.n_arr in
  c.n_arr <- s + 1;
  s

let lookup env name =
  match List.assoc_opt name env with
  | Some b -> b
  | None -> fail "unbound identifier '%s'" name

let rec compile_expr env c (e : Ast.expr) : rexpr =
  match e with
  | Ast.Int_lit n -> Ci n
  | Ast.Float_lit f -> Cf f
  | Ast.Var name -> (
      match lookup env name with
      | Bint s -> Vi s
      | Bfloat s -> Vf s
      | Barr _ -> fail "array '%s' used as a scalar" name)
  | Ast.Index (name, indices) -> (
      match lookup env name with
      | Barr (slot, dims) ->
          if List.length indices <> List.length dims then
            fail "array '%s': rank mismatch" name;
          let idxs =
            List.map
              (fun e ->
                let r = compile_expr env c e in
                if not (is_int r) then fail "non-integer subscript";
                r)
              indices
          in
          Load { arr = slot; dims = Array.of_list dims; idxs = Array.of_list idxs }
      | Bint _ | Bfloat _ -> fail "scalar '%s' indexed" name)
  | Ast.Binop (op, a, b) ->
      let ra = compile_expr env c a in
      let rb = compile_expr env c b in
      if is_int ra && is_int rb then Ibin (op, ra, rb) else Fbin (op, ra, rb)
  | Ast.Neg e ->
      let r = compile_expr env c e in
      if is_int r then Ineg r else Fneg r

let compile_int_expr env c what e =
  let r = compile_expr env c e in
  if not (is_int r) then fail "%s: expected an integer value" what;
  r

let compile_mat_ref env c (r : Ir.mat_ref) =
  match lookup env r.Ir.array with
  | Barr (slot, _) ->
      {
        mslot = slot;
        mname = r.Ir.array;
        mrow_off = compile_int_expr env c "mat_ref row offset" r.Ir.row_off;
        mcol_off = compile_int_expr env c "mat_ref col offset" r.Ir.col_off;
        mtrans = r.Ir.trans;
      }
  | Bint _ | Bfloat _ -> fail "'%s' is not an array" r.Ir.array

let array_slot env name =
  match lookup env name with
  | Barr (slot, _) -> (slot, name)
  | Bint _ | Bfloat _ -> fail "'%s' is not an array" name

let compile_call env c (call : Ir.call) : rcall =
  match call with
  | Ir.Cim_init -> Rinit
  | Ir.Cim_alloc { array } ->
      let s, n = array_slot env array in
      Ralloc (s, n)
  | Ir.Cim_h2d { array } ->
      let s, n = array_slot env array in
      Rh2d (s, n)
  | Ir.Cim_d2h { array } ->
      let s, n = array_slot env array in
      Rd2h (s, n)
  | Ir.Cim_free { array } ->
      let s, n = array_slot env array in
      Rfree (s, n)
  | Ir.Cim_gemm { m; n; k; alpha; beta; a; b; c = cm; pin } ->
      if cm.Ir.trans then fail "polly_cimBlasSGemm: transposed C is not supported";
      Rgemm
        {
          gm = m;
          gn = n;
          gk = k;
          galpha = compile_expr env c alpha;
          gbeta = compile_expr env c beta;
          ga = compile_mat_ref env c a;
          gb = compile_mat_ref env c b;
          gc = compile_mat_ref env c cm;
          gpin = pin;
        }
  | Ir.Cim_gemm_batched { m; n; k; alpha; beta; batch; pin } ->
      Rgemm_batched
        {
          bm = m;
          bn = n;
          bk = k;
          balpha = compile_expr env c alpha;
          bbeta = compile_expr env c beta;
          bbatch =
            List.map
              (fun (a, b, cm) ->
                ( compile_mat_ref env c a,
                  compile_mat_ref env c b,
                  compile_mat_ref env c cm ))
              batch;
          bpin = pin;
        }
  | Ir.Cim_im2col { src; dst; kh; kw; oh; ow } ->
      let isrc, isrc_name = array_slot env src in
      let idst, idst_name = array_slot env dst in
      Rim2col { isrc; isrc_name; idst; idst_name; ikh = kh; ikw = kw; ioh = oh; iow = ow }

let rec compile_body env c (body : Ir.stmt list) : rstmt list =
  match body with
  | [] -> []
  | Ir.Decl_scalar { name; typ; init } :: rest -> (
      match typ with
      | Ast.Tint ->
          let init =
            Option.map (fun e -> compile_int_expr env c "initialiser" e) init
          in
          let slot = new_int c in
          Rdecl_i { slot; init } :: compile_body ((name, Bint slot) :: env) c rest
      | Ast.Tfloat ->
          let init = Option.map (compile_expr env c) init in
          let slot = new_float c in
          Rdecl_f { slot; init } :: compile_body ((name, Bfloat slot) :: env) c rest
      | Ast.Tvoid -> fail "void declaration")
  | Ir.Decl_array { name; dims } :: rest ->
      let slot = new_arr c in
      Rdecl_arr { slot; adims = dims }
      :: compile_body ((name, Barr (slot, dims)) :: env) c rest
  | stmt :: rest -> compile_stmt env c stmt :: compile_body env c rest

and compile_stmt env c (stmt : Ir.stmt) : rstmt =
  match stmt with
  | Ir.For { var; lo; hi; step; body } ->
      let lo = compile_int_expr env c "loop bound" lo in
      let hi = compile_int_expr env c "loop bound" hi in
      let slot = new_int c in
      let body = compile_body ((var, Bint slot) :: env) c body in
      Rfor { slot; lo; hi; step; body = Array.of_list body }
  | Ir.Assign { lhs; op; rhs } -> (
      match (lookup env lhs.Ast.base, lhs.Ast.indices) with
      | Barr (slot, dims), indices ->
          if List.length indices <> List.length dims then
            fail "array '%s': rank mismatch" lhs.Ast.base;
          let idxs =
            List.map
              (fun e ->
                let r = compile_expr env c e in
                if not (is_int r) then fail "non-integer subscript";
                r)
              indices
          in
          let rhs =
            match (op, rhs) with
            | Ast.Add_assign, Ast.Binop (Ast.Mul, a, b) ->
                let ra = compile_expr env c a in
                let rb = compile_expr env c b in
                Rmac (ra, rb, is_int ra && is_int rb)
            | _ -> Rplain (compile_expr env c rhs)
          in
          Rstore
            { arr = slot; dims = Array.of_list dims; idxs = Array.of_list idxs; op; rhs }
      | Bfloat slot, [] -> Rset_f { slot; op; rhs = compile_expr env c rhs }
      | Bint slot, [] ->
          let r = compile_expr env c rhs in
          if not (is_int r) then fail "integer assignment: expected an integer value";
          Rset_i { slot; op; rhs = r }
      | (Bint _ | Bfloat _), _ :: _ -> fail "scalar '%s' indexed" lhs.Ast.base)
  | Ir.Decl_scalar _ | Ir.Decl_array _ ->
      (* handled by compile_body so the binding covers the rest of the body *)
      assert false
  | Ir.Call call -> Rcall (compile_call env c call)
  | Ir.Roi_begin -> Rroi_begin
  | Ir.Roi_end -> Rroi_end

(* ---------- runtime state ---------- *)

type state = {
  platform : Platform.t;
  cpu : Sim.Cpu.t;
  memory : Sim.Memory.t;
  ints : int array;
  floats : float array;
  arrays : array_info array;
  facc : floatarray;
      (** single-slot accumulator [eval_f] leaves its result in: a
          [float]-returning recursive evaluator boxes its result at
          every call, and the evaluator runs once per operand of every
          dynamic instruction *)
  mutable heap : int;
  mutable api : Api.t option;
  dev : (int, Api.buffer) Hashtbl.t;  (** keyed by array slot *)
}

let heap_base = 0x0100_0000

let no_array = { base = -1; dims = [] }

let alloc_array st dims =
  let bytes = 4 * List.fold_left ( * ) 1 dims in
  let base = st.heap in
  st.heap <- (st.heap + bytes + 63) / 64 * 64;
  { base; dims }

let issue st cls = Sim.Cpu.issue st.cpu cls
let[@inline always] issue_at st addr cls = Sim.Cpu.issue_at st.cpu ~addr cls

(* ---------- expression evaluation with instruction charging ----------

   [eval_f] communicates through [st.facc] instead of returning the
   float: the accumulator store and load compile to raw [floatarray]
   accesses, so evaluating an expression tree allocates nothing —
   intermediate values live in registers (or are spilled unboxed). *)

let[@inline always] getf st = Float.Array.unsafe_get st.facc 0
let[@inline always] setf st v = Float.Array.unsafe_set st.facc 0 v

let rec element_address st base (dims : int array) (idxs : rexpr array) =
  let flat = ref 0 in
  for i = 0 to Array.length dims - 1 do
    let idx = eval_i st (Array.unsafe_get idxs i) in
    let dim = Array.unsafe_get dims i in
    if idx < 0 || idx >= dim then fail "index %d out of bound %d" idx dim;
    (* mul + add of the row-major address computation *)
    issue st Sim.Cpu.Int_alu;
    flat := (!flat * dim) + idx
  done;
  base + (4 * !flat)

and eval_i st (e : rexpr) : int =
  match e with
  | Ci n -> n
  | Vi s -> Array.unsafe_get st.ints s
  | Ibin (op, a, b) ->
      let x = eval_i st a in
      let y = eval_i st b in
      issue st Sim.Cpu.Int_alu;
      (match op with
      | Ast.Add -> x + y
      | Ast.Sub -> x - y
      | Ast.Mul -> x * y
      | Ast.Div ->
          if y = 0 then fail "integer division by zero";
          x / y)
  | Ineg e ->
      let v = eval_i st e in
      issue st Sim.Cpu.Int_alu;
      -v
  | Cf _ | Vf _ | Load _ | Fbin _ | Fneg _ -> assert false

and eval_f st (e : rexpr) : unit =
  match e with
  | Cf f -> setf st f
  | Vf s -> setf st (Array.unsafe_get st.floats s)
  | Load { arr; dims; idxs } ->
      let info = Array.unsafe_get st.arrays arr in
      let addr = element_address st info.base dims idxs in
      issue_at st addr Sim.Cpu.Load;
      setf st (Sim.Memory.read_f32 st.memory addr)
  | Fbin (op, a, b) ->
      eval_f st a;
      let x = getf st in
      eval_f st b;
      let y = getf st in
      let cls =
        match op with
        | Ast.Add | Ast.Sub -> Sim.Cpu.Fp_add
        | Ast.Mul -> Sim.Cpu.Fp_mul
        | Ast.Div -> Sim.Cpu.Fp_div
      in
      issue st cls;
      setf st
        (match op with
        | Ast.Add -> x +. y
        | Ast.Sub -> x -. y
        | Ast.Mul -> x *. y
        | Ast.Div -> x /. y)
  | Fneg e ->
      eval_f st e;
      let v = getf st in
      issue st Sim.Cpu.Fp_add;
      setf st (-.v)
  | Ci n -> setf st (float_of_int n)
  | Vi s -> setf st (float_of_int (Array.unsafe_get st.ints s))
  | (Ibin _ | Ineg _) as e -> setf st (float_of_int (eval_i st e))

(* ---------- runtime-call support ---------- *)

let require_api st =
  match st.api with
  | Some api -> api
  | None -> fail "CIM runtime used before polly_cimInit"

let array_info st slot name =
  let info = st.arrays.(slot) in
  if info.base < 0 then fail "array '%s' used before its declaration" name;
  info

let array_shape_2d info =
  match info.dims with
  | [ rows; cols ] -> (rows, cols)
  | [ n ] -> (n, 1)
  | _ -> fail "device arrays must have rank 1 or 2"

let dev_buffer st slot name =
  match Hashtbl.find_opt st.dev slot with
  | Some buf -> buf
  | None -> fail "array '%s' is not on the device (missing polly_cimMalloc)" name

let host_matrix st info =
  (* charged element loads: the copy loop runs on the host *)
  let rows, cols = array_shape_2d info in
  Tdo_linalg.Mat.init ~rows ~cols ~f:(fun i j ->
      let addr = info.base + (4 * ((i * cols) + j)) in
      issue st Sim.Cpu.Int_alu;
      issue_at st addr Sim.Cpu.Load;
      Sim.Memory.read_f32 st.memory addr)

let store_host_matrix st info name m =
  let rows, cols = array_shape_2d info in
  if Tdo_linalg.Mat.rows m <> rows || Tdo_linalg.Mat.cols m <> cols then
    fail "polly_cimDevToHost: shape mismatch for '%s'" name;
  Tdo_linalg.Mat.iteri
    ~f:(fun i j v ->
      let addr = info.base + (4 * ((i * cols) + j)) in
      issue st Sim.Cpu.Int_alu;
      issue_at st addr Sim.Cpu.Store;
      Sim.Memory.write_f32 st.memory addr v)
    m

let view_of_ref st (r : rmat) =
  let info = array_info st r.mslot r.mname in
  let _, ld = array_shape_2d info in
  let buf = dev_buffer st r.mslot r.mname in
  let row_off = eval_i st r.mrow_off in
  let col_off = eval_i st r.mcol_off in
  issue st Sim.Cpu.Int_alu;
  Api.view ~offset_elems:((row_off * ld) + col_off) ~ld buf

let pin_of = function Ir.Pin_a -> Regs.Pin_a | Ir.Pin_b -> Regs.Pin_b

let exec_call st (call : rcall) =
  match call with
  | Rinit -> if st.api = None then st.api <- Some (Api.init st.platform)
  | Ralloc (slot, name) ->
      let api = require_api st in
      let info = array_info st slot name in
      let rows, cols = array_shape_2d info in
      if Hashtbl.mem st.dev slot then fail "polly_cimMalloc: '%s' already allocated" name;
      (match Api.malloc api ~bytes:(4 * rows * cols) with
      | Error reason -> fail "polly_cimMalloc(%s): %s" name reason
      | Ok buf -> Hashtbl.add st.dev slot buf)
  | Rh2d (slot, name) ->
      let api = require_api st in
      let info = array_info st slot name in
      let _, ld = array_shape_2d info in
      let buf = dev_buffer st slot name in
      Api.host_to_dev api ~src:(host_matrix st info) ~dst:(Api.view ~ld buf)
  | Rd2h (slot, name) ->
      let api = require_api st in
      let info = array_info st slot name in
      let rows, cols = array_shape_2d info in
      let buf = dev_buffer st slot name in
      let m = Api.dev_to_host api ~src:(Api.view ~ld:cols buf) ~rows ~cols in
      store_host_matrix st info name m
  | Rfree (slot, name) ->
      let api = require_api st in
      Api.free api (dev_buffer st slot name);
      Hashtbl.remove st.dev slot
  | Rgemm { gm; gn; gk; galpha; gbeta; ga; gb; gc; gpin } ->
      let api = require_api st in
      eval_f st galpha;
      let alpha = getf st in
      eval_f st gbeta;
      let beta = getf st in
      let va = view_of_ref st ga in
      let vb = view_of_ref st gb in
      let vc = view_of_ref st gc in
      (match
         Api.sgemm api ~trans_a:ga.mtrans ~trans_b:gb.mtrans ~pin:(pin_of gpin) ~m:gm ~n:gn
           ~k:gk ~alpha ~a:va ~b:vb ~beta ~c:vc ()
       with
      | Ok () -> ()
      | Error reason -> fail "polly_cimBlasSGemm: %s" reason)
  | Rgemm_batched { bm; bn; bk; balpha; bbeta; bbatch; bpin } ->
      let api = require_api st in
      eval_f st balpha;
      let alpha = getf st in
      eval_f st bbeta;
      let beta = getf st in
      let trans_a, trans_b =
        match bbatch with
        | (a, b, _) :: _ -> (a.mtrans, b.mtrans)
        | [] -> fail "polly_cimBlasGemmBatched: empty batch"
      in
      let batch =
        List.map
          (fun (a, b, c) -> (view_of_ref st a, view_of_ref st b, view_of_ref st c))
          bbatch
      in
      (match
         Api.gemm_batched api ~trans_a ~trans_b ~pin:(pin_of bpin) ~m:bm ~n:bn ~k:bk ~alpha
           ~beta ~batch ()
       with
      | Ok () -> ()
      | Error reason -> fail "polly_cimBlasGemmBatched: %s" reason)
  | Rim2col { isrc; isrc_name; idst; idst_name; ikh; ikw; ioh; iow } ->
      let api = require_api st in
      let src_info = array_info st isrc isrc_name in
      let src_rows, src_cols = array_shape_2d src_info in
      let dst_info = array_info st idst idst_name in
      let _, dst_ld = array_shape_2d dst_info in
      let src_buf = dev_buffer st isrc isrc_name in
      let dst_buf = dev_buffer st idst idst_name in
      Api.dev_im2col api
        ~src:(Api.view ~ld:src_cols src_buf)
        ~src_rows ~src_cols
        ~dst:(Api.view ~ld:dst_ld dst_buf)
        ~kh:ikh ~kw:ikw ~oh:ioh ~ow:iow

(* ---------- statements ---------- *)

let[@inline always] apply_op op old rhs =
  match op with
  | Ast.Set -> rhs
  | Ast.Add_assign -> old +. rhs
  | Ast.Sub_assign -> old -. rhs
  | Ast.Mul_assign -> old *. rhs

let rec exec_stmt st (stmt : rstmt) =
  match stmt with
  | Rfor { slot; lo; hi; step; body } ->
      let lo = eval_i st lo in
      let hi = eval_i st hi in
      let ints = st.ints in
      ints.(slot) <- lo;
      while ints.(slot) < hi do
        exec_body st body;
        (* increment + back-edge test *)
        issue st Sim.Cpu.Int_alu;
        issue st Sim.Cpu.Branch;
        ints.(slot) <- ints.(slot) + step
      done
  | Rstore { arr; dims; idxs; op; rhs } ->
      let info = Array.unsafe_get st.arrays arr in
      let addr = element_address st info.base dims idxs in
      let rhs_value =
        match rhs with
        | Rmac (a, b, int_mul) ->
            eval_f st a;
            let x = getf st in
            eval_f st b;
            let y = getf st in
            issue st (if int_mul then Sim.Cpu.Int_alu else Sim.Cpu.Fp_mac);
            x *. y
        | Rplain e ->
            eval_f st e;
            getf st
      in
      let old =
        match op with
        | Ast.Set -> 0.0
        | Ast.Add_assign | Ast.Sub_assign | Ast.Mul_assign ->
            issue_at st addr Sim.Cpu.Load;
            Sim.Memory.read_f32 st.memory addr
      in
      (match op with
      | Ast.Set | Ast.Add_assign -> () (* Add_assign folded into the MAC *)
      | Ast.Sub_assign | Ast.Mul_assign -> issue st Sim.Cpu.Fp_add);
      issue_at st addr Sim.Cpu.Store;
      Sim.Memory.write_f32 st.memory addr (apply_op op old rhs_value)
  | Rset_f { slot; op; rhs } ->
      eval_f st rhs;
      let rhs = getf st in
      if op <> Ast.Set then issue st Sim.Cpu.Fp_add;
      st.floats.(slot) <- apply_op op st.floats.(slot) rhs
  | Rset_i { slot; op; rhs } ->
      let rhs = eval_i st rhs in
      issue st Sim.Cpu.Int_alu;
      (match op with
      | Ast.Set -> st.ints.(slot) <- rhs
      | Ast.Add_assign -> st.ints.(slot) <- st.ints.(slot) + rhs
      | Ast.Sub_assign -> st.ints.(slot) <- st.ints.(slot) - rhs
      | Ast.Mul_assign -> st.ints.(slot) <- st.ints.(slot) * rhs)
  | Rdecl_i { slot; init } ->
      st.ints.(slot) <- (match init with Some e -> eval_i st e | None -> 0)
  | Rdecl_f { slot; init } ->
      st.floats.(slot) <-
        (match init with
        | Some e ->
            eval_f st e;
            getf st
        | None -> 0.0)
  | Rdecl_arr { slot; adims } -> st.arrays.(slot) <- alloc_array st adims
  | Rcall call -> exec_call st call
  | Rroi_begin -> Sim.Cpu.roi_begin st.cpu
  | Rroi_end -> Sim.Cpu.roi_end st.cpu

and exec_body st (body : rstmt array) =
  for i = 0 to Array.length body - 1 do
    exec_stmt st (Array.unsafe_get body i)
  done

(* ---------- staging arguments in and out of simulated memory ---------- *)

let stage_in st (arr : Interp.arr) info =
  Array.iteri
    (fun i v -> Sim.Memory.write_f32 st.memory (info.base + (4 * i)) v)
    arr.Interp.data

let stage_out st info (arr : Interp.arr) =
  let data = arr.Interp.data in
  for i = 0 to Array.length data - 1 do
    data.(i) <- Sim.Memory.read_f32 st.memory (info.base + (4 * i))
  done

let run ?scratch (f : Ir.func) ~platform ~args =
  (* Slot types follow the argument values (as before): scalar params
     take the kind of the value passed for them. *)
  let c = { n_int = 0; n_float = 0; n_arr = 0 } in
  let bind_param (p : Ast.param) =
    match List.assoc_opt p.Ast.pname args with
    | None -> fail "missing argument '%s'" p.Ast.pname
    | Some (Interp.Vint n) ->
        if p.Ast.dims <> [] then fail "argument '%s' should be an array" p.Ast.pname;
        ((p.Ast.pname, Bint (new_int c)), `Int n)
    | Some (Interp.Vfloat v) ->
        if p.Ast.dims <> [] then fail "argument '%s' should be an array" p.Ast.pname;
        ((p.Ast.pname, Bfloat (new_float c)), `Float v)
    | Some (Interp.Varray arr) ->
        if arr.Interp.dims <> p.Ast.dims then
          fail "argument '%s' has mismatched dimensions" p.Ast.pname;
        ((p.Ast.pname, Barr (new_arr c, p.Ast.dims)), `Array arr)
  in
  let bound = List.map bind_param f.Ir.params in
  let env = List.map fst bound in
  let program = compile_body env c f.Ir.body in
  (* Slot tables come from the per-domain arena when the caller passes
     one — every slot is written (by binding or its [Rdecl_*]) before it
     is read, but zero-fill anyway so a miscompiled program reads
     deterministic garbage rather than a previous run's values. *)
  let ints =
    match scratch with
    | None -> Array.make (max 1 c.n_int) 0
    | Some a ->
        let t = Tdo_util.Arena.int_array a (max 1 c.n_int) in
        Array.fill t 0 (Array.length t) 0;
        t
  in
  let floats =
    match scratch with
    | None -> Array.make (max 1 c.n_float) 0.0
    | Some a ->
        let t = Tdo_util.Arena.float_array a (max 1 c.n_float) in
        Array.fill t 0 (Array.length t) 0.0;
        t
  in
  let st =
    {
      platform;
      cpu = Platform.cpu platform;
      memory = platform.Platform.memory;
      ints;
      floats;
      arrays = Array.make (max 1 c.n_arr) no_array;
      facc = Float.Array.create 1;
      heap = heap_base;
      api = None;
      dev = Hashtbl.create 8;
    }
  in
  let staged = ref [] in
  List.iter
    (fun ((_, bind), value) ->
      match (bind, value) with
      | Bint slot, `Int n -> st.ints.(slot) <- n
      | Bfloat slot, `Float v -> st.floats.(slot) <- v
      | Barr (slot, dims), `Array arr ->
          let info = alloc_array st dims in
          st.arrays.(slot) <- info;
          stage_in st arr info;
          staged := (info, arr) :: !staged
      | _ -> assert false)
    bound;
  exec_body st (Array.of_list program);
  List.iter (fun (info, arr) -> stage_out st info arr) !staged;
  let roi = Sim.Cpu.roi st.cpu in
  let launches =
    match st.api with None -> 0 | Some api -> (Api.counters api).Api.launches
  in
  {
    roi_instructions = roi.Sim.Cpu.roi_instructions;
    roi_cycles = roi.Sim.Cpu.roi_cycles;
    roi_time_ps = roi.Sim.Cpu.roi_time_ps;
    used_cim = st.api <> None;
    cim_launches = launches;
  }
