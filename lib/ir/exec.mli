(** Timed IR executor — the "back-end + gem5" of the flow.

    Runs an IR function on the emulated platform: every dynamic
    instruction (address arithmetic, loads, stores, floating point,
    loop control) is issued to the host core's timing model with its
    real address, so run time reflects the cache hierarchy; runtime
    calls go through the user-space CIM API, the kernel driver and the
    accelerator. Functional results are bit-exact with the reference
    interpreter (binary32 array stores).

    Array arguments are staged into simulated main memory before the
    run and copied back afterwards (uncharged — PolyBench
    initialisation sits outside the ROI markers). *)

module Interp = Tdo_lang.Interp
module Platform = Tdo_runtime.Platform

type metrics = {
  roi_instructions : int;  (** dynamic instructions inside ROI *)
  roi_cycles : int;
  roi_time_ps : int;
  used_cim : bool;  (** at least one runtime call executed *)
  cim_launches : int;
}

exception Exec_error of string

val run :
  ?scratch:Tdo_util.Arena.t ->
  Ir.func ->
  platform:Platform.t ->
  args:(string * Interp.value) list ->
  metrics
(** Mutates [Varray] arguments in place with the final memory contents.
    Raises {!Exec_error} on argument mismatch, out-of-bounds accesses,
    runtime-call misuse, or a device error. [scratch] backs the
    executor's scalar slot tables with pooled blocks valid for the
    duration of the run. *)
