module Sim = Tdo_sim
module Cimacc = Tdo_cimacc

type config = {
  cpu : Sim.Cpu.config;
  l1d : Sim.Cache.config;
  l2 : Sim.Cache.config;
  memory : Sim.Memory.config;
  bus : Sim.Bus.config;
  engine : Cimacc.Micro_engine.config;
  register_base : int;
  cma : Cma.config;
  virt_offset : int;
}

let default_config =
  {
    cpu = Sim.Cpu.arm_a7;
    l1d = Sim.Cache.l1d_arm_a7;
    l2 = Sim.Cache.l2_arm_a7;
    memory = Sim.Memory.default_config;
    bus = Sim.Bus.default_config;
    engine = Cimacc.Micro_engine.default_config;
    register_base = Cimacc.Accel.default_register_base;
    cma = Cma.default_config;
    virt_offset = 0x4000_0000;
  }

type t = {
  config : config;
  queue : Sim.Event_queue.t;
  memory : Sim.Memory.t;
  bus : Sim.Bus.t;
  mmio : Sim.Mmio.t;
  cores : Sim.Cpu.t array;
  l1d : Sim.Cache.t;
  l2 : Sim.Cache.t;
  accel : Cimacc.Accel.t;
  cma : Cma.t;
}

let create ?(config = default_config) ?(seed = 0) ?scratch () =
  let queue = Sim.Event_queue.create () in
  let memory = Sim.Memory.create ~config:config.memory ?scratch () in
  let bus = Sim.Bus.create ~config:config.bus () in
  let mmio = Sim.Mmio.create () in
  let l2_next op ~addr:_ ~bytes =
    ignore op;
    Sim.Bus.transfer bus ~master:"cpu" ~bytes + Sim.Memory.burst_latency memory ~bytes
  in
  let l2 = Sim.Cache.create ~config:config.l2 ~next:l2_next () in
  let l1d =
    Sim.Cache.create ~config:config.l1d
      ~next:(fun op ~addr ~bytes:_ -> Sim.Cache.access l2 op ~addr)
      ()
  in
  let cores = Array.init 2 (fun _ -> Sim.Cpu.create ~config:config.cpu ~l1d ()) in
  let accel = Cimacc.Accel.create ~engine_config:config.engine ~seed ?scratch ~queue ~bus ~memory () in
  Cimacc.Accel.map_registers accel mmio ~base:config.register_base;
  let cma = Cma.create ~config:config.cma () in
  { config; queue; memory; bus; mmio; cores; l1d; l2; accel; cma }

let cpu t = t.cores.(0)

let is_device_virtual t addr =
  let base = t.config.cma.Cma.base + t.config.virt_offset in
  addr >= base && addr < base + t.config.cma.Cma.size

let resolve t addr = if is_device_virtual t addr then addr - t.config.virt_offset else addr

let sync_queue_to_cpu t =
  Sim.Event_queue.advance_to t.queue ~time:(Sim.Cpu.time_ps (cpu t))
