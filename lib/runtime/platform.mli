(** The emulated full system of Fig. 2(a): a dual-core Arm-A7-class
    host with L1/L2 caches, 2 GB of shared main memory, a system bus,
    the PMIO space, and the CIM accelerator.

    Only core 0 runs the (single-threaded) PolyBench kernels, as in the
    paper; core 1 exists to match the configuration of Table I and is
    available to applications that want it. *)

module Sim = Tdo_sim
module Cimacc = Tdo_cimacc

type config = {
  cpu : Sim.Cpu.config;
  l1d : Sim.Cache.config;
  l2 : Sim.Cache.config;
  memory : Sim.Memory.config;
  bus : Sim.Bus.config;
  engine : Cimacc.Micro_engine.config;
  register_base : int;
  cma : Cma.config;
  virt_offset : int;
      (** device buffers are exposed to user space at
          [phys + virt_offset]; the driver translates back *)
}

val default_config : config
(** Table I: 2x Arm-A7 @ 1.2 GHz, 32 KB L1-D, 2 MB shared L2, 2 GB
    LPDDR3, 256x256 8-bit PCM crossbar. *)

type t = {
  config : config;
  queue : Sim.Event_queue.t;
  memory : Sim.Memory.t;
  bus : Sim.Bus.t;
  mmio : Sim.Mmio.t;
  cores : Sim.Cpu.t array;
  l1d : Sim.Cache.t;
  l2 : Sim.Cache.t;
  accel : Cimacc.Accel.t;
  cma : Cma.t;
}

val create : ?config:config -> ?seed:int -> ?scratch:Tdo_util.Arena.t -> unit -> t
(** [seed] (default 0) gives the accelerator's crossbar tiles distinct,
    reproducible PRNG streams — multi-device pools pass a per-device
    seed so campaigns are replayable.

    [scratch] backs the platform's memory chunks and the engine's
    launch buffers with pooled blocks from a per-domain arena. Pass it
    only for a platform that is discarded before the arena's next reset
    — the per-run platforms of {!Tdo_cim.Flow.run} — never for a
    long-lived device (a serving pool). *)

val cpu : t -> Sim.Cpu.t
(** Core 0, the one running the application. *)

val resolve : t -> int -> int
(** MMU view used by host loads/stores: maps a device-buffer virtual
    address back to its physical address, and leaves other addresses
    (identity-mapped application memory) unchanged. *)

val is_device_virtual : t -> int -> bool

val sync_queue_to_cpu : t -> unit
(** Advance the event queue's clock to core 0's current time; call
    before interacting with the accelerator so device events are
    ordered after the host actions that caused them. *)
