module Offload = Tdo_tactics.Offload
module Ast = Tdo_lang.Ast
module Json = Tdo_util.Json

type point = Offload.config

type axes = {
  geometries : (int * int) list;
  fusion : bool list;
  tiling : bool list;
  naive_pin : bool list;
  min_intensities : float option list;
}

let default_axes =
  {
    geometries = [ (64, 64); (128, 128); (256, 256) ];
    fusion = [ true; false ];
    tiling = [ true; false ];
    naive_pin = [ false; true ];
    min_intensities = [ None; Some 8.0; Some 32.0; Some 128.0 ];
  }

let smoke_axes =
  {
    geometries = [ (256, 256) ];
    fusion = [ true; false ];
    tiling = [ true ];
    naive_pin = [ false ];
    min_intensities = [ None; Some 32.0 ];
  }

let axes_for = function
  | Tdo_backend.Backend.Pcm_crossbar -> default_axes
  | Tdo_backend.Backend.Digital_tile ->
      (* SRAM-priced writes shift the interesting selective-offload
         thresholds down (reprogramming is nearly free) and make the
         naive always-stream pin strategy worth sweeping *)
      { default_axes with min_intensities = [ None; Some 2.0; Some 8.0; Some 32.0 ] }
  | Tdo_backend.Backend.Host_blas ->
      (* no crossbar: the only point that matters is the default *)
      {
        geometries = [ (256, 256) ];
        fusion = [ true ];
        tiling = [ true ];
        naive_pin = [ false ];
        min_intensities = [ None ];
      }

let enumerate axes =
  let points =
    List.concat_map
      (fun (xbar_rows, xbar_cols) ->
        List.concat_map
          (fun enable_fusion ->
            List.concat_map
              (fun enable_tiling ->
                List.concat_map
                  (fun naive_pin ->
                    List.map
                      (fun min_intensity ->
                        {
                          Offload.xbar_rows;
                          xbar_cols;
                          enable_fusion;
                          enable_tiling;
                          naive_pin;
                          min_intensity;
                        })
                      axes.min_intensities)
                  axes.naive_pin)
              axes.tiling)
          axes.fusion)
      axes.geometries
    |> List.sort_uniq compare
  in
  if List.mem Offload.default_config points then
    Offload.default_config
    :: List.filter (fun p -> p <> Offload.default_config) points
  else points

let max_extent (f : Ast.func) =
  let best = ref 1 in
  let dims ds = List.iter (fun d -> if d > !best then best := d) ds in
  List.iter (fun (p : Ast.param) -> dims p.Ast.dims) f.Ast.params;
  let rec stmt = function
    | Ast.Decl_array { dims = ds; _ } -> dims ds
    | Ast.For { body; _ } | Ast.Block body -> List.iter stmt body
    | Ast.Assign _ | Ast.Decl_scalar _ -> ()
  in
  List.iter stmt f.Ast.body;
  !best

(* Count top-level statements as a cheap upper bound on how many
   kernels a fused batch can pool. *)
let segment_count (f : Ast.func) = max 1 (List.length f.Ast.body)

let prune ~kernel points =
  let d = max_extent kernel in
  (* intensity = pooled MACs / pinned writes <= streamed extent x batch
     size, so any threshold above this bound skips everything *)
  let intensity_bound = float_of_int (d * segment_count kernel) in
  let is_default p = p = Offload.default_config in
  let covering (p : point) = p.Offload.xbar_rows >= d && p.Offload.xbar_cols >= d in
  let sans_geometry (p : point) = { p with Offload.xbar_rows = 0; xbar_cols = 0 } in
  let sans_threshold (p : point) = { p with Offload.min_intensity = None } in
  let keep_geometry p =
    (not (covering p))
    || not
         (List.exists
            (fun q ->
              covering q
              && sans_geometry q = sans_geometry p
              && (q.Offload.xbar_rows, q.Offload.xbar_cols)
                 < (p.Offload.xbar_rows, p.Offload.xbar_cols))
            points)
  in
  let saturating (p : point) =
    match p.Offload.min_intensity with Some t -> t > intensity_bound | None -> false
  in
  let keep_threshold p =
    (not (saturating p))
    || not
         (List.exists
            (fun q ->
              saturating q
              && sans_threshold q = sans_threshold p
              && q.Offload.min_intensity < p.Offload.min_intensity)
            points)
  in
  List.filter (fun p -> is_default p || (keep_geometry p && keep_threshold p)) points

let platform_config ?(base = Tdo_runtime.Platform.default_config) (p : point) =
  let engine = base.Tdo_runtime.Platform.engine in
  let xbar =
    {
      engine.Tdo_cimacc.Micro_engine.xbar with
      Tdo_pcm.Crossbar.rows = p.Offload.xbar_rows;
      cols = p.Offload.xbar_cols;
      size_bytes = p.Offload.xbar_rows * p.Offload.xbar_cols * 8;
    }
  in
  {
    base with
    Tdo_runtime.Platform.engine = { engine with Tdo_cimacc.Micro_engine.xbar };
  }

let to_json (p : point) =
  Json.Obj
    [
      ("xbar_rows", Json.Num (float_of_int p.Offload.xbar_rows));
      ("xbar_cols", Json.Num (float_of_int p.Offload.xbar_cols));
      ("enable_fusion", Json.Bool p.Offload.enable_fusion);
      ("enable_tiling", Json.Bool p.Offload.enable_tiling);
      ("naive_pin", Json.Bool p.Offload.naive_pin);
      ( "min_intensity",
        match p.Offload.min_intensity with Some t -> Json.Num t | None -> Json.Null );
    ]

let of_json json =
  let int_field name =
    match Option.bind (Json.member name json) Json.to_float with
    | Some v -> Ok (int_of_float v)
    | None -> Error (Printf.sprintf "tune config: missing %s" name)
  in
  let bool_field name =
    match Json.member name json with
    | Some (Json.Bool b) -> Ok b
    | _ -> Error (Printf.sprintf "tune config: missing %s" name)
  in
  let ( let* ) = Result.bind in
  let* xbar_rows = int_field "xbar_rows" in
  let* xbar_cols = int_field "xbar_cols" in
  let* enable_fusion = bool_field "enable_fusion" in
  let* enable_tiling = bool_field "enable_tiling" in
  let* naive_pin = bool_field "naive_pin" in
  let min_intensity =
    match Json.member "min_intensity" json with
    | Some (Json.Num t) -> Some t
    | _ -> None
  in
  Ok
    {
      Offload.xbar_rows;
      xbar_cols;
      enable_fusion;
      enable_tiling;
      naive_pin;
      min_intensity;
    }

let describe (p : point) =
  Printf.sprintf "%dx%d %s %s %s%s" p.Offload.xbar_rows p.Offload.xbar_cols
    (if p.Offload.enable_fusion then "fuse" else "nofuse")
    (if p.Offload.enable_tiling then "tile" else "notile")
    (if p.Offload.naive_pin then "naive" else "smart")
    (match p.Offload.min_intensity with
    | Some t -> Printf.sprintf " int>=%g" t
    | None -> "")
