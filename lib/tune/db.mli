(** Persisted tuning database.

    Maps a kernel's structural digest
    ({!Tdo_lang.Ast.structural_digest} — the same key space the serving
    layer's compiled-kernel cache uses) to the configuration the search
    settled on, together with the measured evidence. The on-disk form
    is a single JSON document ([tdo-cim-tunedb/1]) written atomically
    (temp file + rename), so a database can be produced by [bin/tune],
    checked in, and consumed by [tdoc --tune-db], the serving
    scheduler, or a later tuning run that extends it. *)

module Ast = Tdo_lang.Ast

type entry = {
  digest : string;
  kernel : string;  (** function name, informational *)
  n : int;  (** problem size the entry was tuned at; [0] when unknown *)
  device_class : Tdo_backend.Backend.device_class;
      (** class the configuration was measured on; entries are keyed by
          (digest, class), so one kernel can carry one tuned
          configuration per class. Schema-1 databases load as
          [Pcm_crossbar]. *)
  objective : string;
  config : Space.point;
  tuned_cycles : int;
  default_cycles : int;
  tuned_write_bytes : int;
  default_write_bytes : int;
  calibration_error : float;
}

type t

val empty : t
val size : t -> int
val entries : t -> entry list
(** Sorted by kernel name, then digest, then device class. *)

val add : t -> entry -> t
(** Replaces any previous entry with the same (digest, device class). *)

val find : ?cls:Tdo_backend.Backend.device_class -> t -> string -> entry option
(** The entry tuned for [cls] (default [Pcm_crossbar]) under this
    digest, if any. *)

val lookup : ?cls:Tdo_backend.Backend.device_class -> t -> Ast.func -> entry option
(** {!find} on the function's structural digest. *)

val entry_of_result : n:int -> Search.result -> entry
(** Package a search result for the database (the result's device
    class is stamped into the entry). *)

val config_for :
  ?device:int * int ->
  ?cls:Tdo_backend.Backend.device_class ->
  t ->
  Ast.func ->
  Space.point option
(** The configuration tuned {e for this device class} (default
    [Pcm_crossbar]), if any. A configuration measured on a different
    class is refused — [None], never a clamped cross-class transfer —
    so the caller compiles with the class-appropriate default instead.
    With [device:(rows, cols)] — the geometry of the crossbars that
    will actually run the kernel — a tuned geometry larger than the
    device is clamped to it; the remaining knobs (fusion, tiling,
    pinning, threshold) always transfer. *)

val load : string -> (t, string) result
(** A missing file loads as {!empty}; a malformed one is an [Error]. *)

val save : t -> string -> unit
val to_json : t -> Tdo_util.Json.t
val of_json : Tdo_util.Json.t -> (t, string) result
