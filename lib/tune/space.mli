(** The autotuner's design space: enumerable offload configurations.

    A point is exactly an {!Tdo_tactics.Offload.config} — the knobs the
    compiler's offload pass exposes (crossbar geometry, fusion, tiling,
    pin strategy, selective-offload threshold). The space is the
    cartesian product of per-axis value lists, pruned per kernel:
    geometries that behave identically on the kernel's extents collapse
    to one representative, and intensity thresholds no kernel of that
    size can distinguish are deduplicated. *)

module Offload = Tdo_tactics.Offload
module Ast = Tdo_lang.Ast

type point = Offload.config

type axes = {
  geometries : (int * int) list;  (** candidate [(xbar_rows, xbar_cols)] *)
  fusion : bool list;
  tiling : bool list;
  naive_pin : bool list;
  min_intensities : float option list;
}

val default_axes : axes
(** The full sweep: 64/128/256-square geometries, both pin strategies,
    fusion and tiling on/off, thresholds [None; 8; 32; 128]. *)

val smoke_axes : axes
(** A few points for the strict [dune runtest] smoke tune. *)

val axes_for : Tdo_backend.Backend.device_class -> axes
(** Class-appropriate sweep: {!default_axes} for the analog crossbar,
    lower selective-offload thresholds for digital tiles (writes are
    SRAM-priced, so offloading pays off much earlier), and the single
    default point for the host fallback (no crossbar to shape). *)

val enumerate : axes -> point list
(** Cartesian product, deduplicated, {!Offload.default_config} first
    when the axes contain it. *)

val max_extent : Ast.func -> int
(** Largest array extent among the kernel's parameters and local
    declarations — the scale pruning reasons about. *)

val prune : kernel:Ast.func -> point list -> point list
(** Kernel-aware reduction, semantics-preserving on [kernel]:

    - of several points that differ only in geometry and whose crossbars
      all cover every kernel extent, only the smallest geometry remains
      (the pass emits identical code for all of them);
    - of several points whose threshold exceeds any intensity the kernel
      can reach (so everything is skipped), only the smallest threshold
      remains.

    The default configuration is never pruned away if present. *)

val platform_config :
  ?base:Tdo_runtime.Platform.config -> point -> Tdo_runtime.Platform.config
(** [base] (default {!Tdo_runtime.Platform.default_config}) with the
    accelerator's crossbar resized to the point's geometry; the Eq.-1
    capacity scales with it (256x256 corresponds to 512 KB). *)

val to_json : point -> Tdo_util.Json.t
val of_json : Tdo_util.Json.t -> (point, string) result

val describe : point -> string
(** One-line human-readable rendering, e.g.
    ["256x256 fuse tile smart int>=8"]. *)
