(** Cost-model-guided search over the offload design space.

    The strategy is model-first with exact re-ranking:

    + enumerate and prune the space for the kernel ({!Space.prune}),
      keeping the compiler default in play;
    + compile every surviving point (cheap — no simulation) and take its
      {!Tdo_tactics.Offload.plan} census;
    + simulate a small calibration subset exactly, spread across the
      uncalibrated model's cost range, and fit the model to it
      ({!Cost_model.calibrate});
    + score every point with the fitted model, then re-rank the beam —
      the predicted top [beam] plus the default — by cycle-accurate
      simulation ({!Tdo_cim.Flow.run}), fanned out over domains with
      {!Tdo_util.Pool};
    + return the measured winner, tie-broken toward the default so a
      tuned configuration is never adopted on a tie.

    All simulations are deterministic in the caller's argument seeds, so
    a tuning run is replayable. *)

module Offload = Tdo_tactics.Offload
module Flow = Tdo_cim.Flow
module Interp = Tdo_lang.Interp

type objective = Cycles | Writes | Edp

val objective_to_string : objective -> string
val objective_of_string : string -> (objective, string) result

type evaluation = {
  point : Space.point;
  plan : Offload.plan;
  predicted_cycles : float;
  measurement : Flow.measurement option;  (** [Some] once exactly simulated *)
}

type result = {
  kernel : string;  (** function name *)
  digest : string;  (** {!Tdo_lang.Ast.structural_digest} of the kernel *)
  cls : Tdo_backend.Backend.device_class;
      (** device class the search simulated against — stamped into the
          database entry so configurations never cross classes *)
  objective : objective;
  reuse : int;
      (** expected executions per weight programming the search
          amortised over ([1] = per-request, the classic mode) *)
  best : evaluation;  (** measured winner; [measurement] is [Some] *)
  default : evaluation;  (** the compiler default, also measured *)
  evaluations : evaluation list;  (** every point, model-scored *)
  model : Cost_model.t;
  calibration_error : float;  (** mean relative error on the calibration runs *)
  space_size : int;  (** enumerated, before pruning *)
  simulated : int;  (** exact simulations spent *)
}

val improvement : result -> float
(** Measured objective ratio [default / best] ([>= 1.] means the tuned
    point is no worse; cycles for [Cycles]/[Edp], write bytes — falling
    back to cycles at zero writes — for [Writes]). *)

val tune :
  ?axes:Space.axes ->
  ?beam:int ->
  ?calibration_points:int ->
  ?objective:objective ->
  ?cls:Tdo_backend.Backend.device_class ->
  ?platform_base:Tdo_runtime.Platform.config ->
  ?reuse:int ->
  source:string ->
  args:(unit -> (string * Interp.value) list) ->
  unit ->
  (result, string) Stdlib.result
(** [beam] (default 4) exact re-rank width; [calibration_points]
    (default 5) exact runs spent on fitting. [cls] (default
    [Pcm_crossbar]) selects the device class tuned for: it fixes the
    calibration prior ({!Cost_model.uncalibrated_for}) and, unless
    [platform_base] overrides it, the timing model of every exact
    simulation ({!Tdo_backend.Backend.platform_config}). [reuse]
    (default 1, clamped to [>= 1]) is the expected executions per
    weight programming — graph serving with weight residency pays the
    crossbar write once per [reuse] requests, so points are ranked by
    {!Cost_model.predict_amortized_cycles} and each measured (cold)
    run is discounted by the model's estimate of the amortisable
    programming share before the winner is chosen; write objectives
    divide write bytes by [reuse]. [args] must return fresh argument
    bindings on every call (each simulation mutates them) and be
    deterministic. [Error] reports an unparsable kernel. *)
