(** Analytic cost model over {!Tdo_tactics.Offload.plan} censuses.

    Predicted cycles are a non-negative linear combination of the plan's
    counters (launch count, crossbar rows programmed, GEMV passes and
    their active wordlines, device MACs, DMA traffic, host expression
    work, plus a constant). Every counter is monotone in the problem
    size and {!calibrate} clamps coefficients at zero, so predictions
    are monotone in the problem size by construction — the property the
    search relies on and the test suite checks.

    Crossbar write pressure and energy need no fitting: writes are the
    plan's programmed cells, and energy prices the counters with the
    Table-I rates the simulator itself uses. *)

module Offload = Tdo_tactics.Offload

type t = { coeffs : float array  (** one per feature, all [>= 0] *) }

val feature_names : string array
val features : Offload.plan -> float array

val uncalibrated : t
(** Rough hand-priced coefficients (Table-I latencies at 1.2 GHz) —
    usable before any simulation has run. *)

val uncalibrated_for : Tdo_backend.Backend.device_class -> t
(** Per-class coefficient set over the same features: the analog
    crossbar prior ({!uncalibrated}) for [Pcm_crossbar], SRAM-priced
    row writes with a slower adder-tree GEMV for [Digital_tile], and a
    MAC-rate-dominated set for [Host_blas] (every would-be device MAC
    priced at ~3 host cycles, no launch/programming/DMA terms). The
    mixed-fleet scheduler ranks placement candidates with these. *)

val predict_cycles : t -> Offload.plan -> float

val resident_plan : Offload.plan -> Offload.plan
(** The plan with its programming counters ([rows_programmed],
    [cells_programmed]) zeroed: the census of re-running the same
    kernel on a device whose pinned weight tiles are already resident
    (graph-scope residency in the serving layer skips the write). *)

val predict_resident_cycles : t -> Offload.plan -> float
(** [predict_cycles model (resident_plan plan)] — the warm-device
    service estimate. *)

val predict_amortized_cycles : t -> reuse:int -> Offload.plan -> float
(** Expected per-run cycles when the kernel executes [reuse] times
    against the same resident weights: one cold run plus [reuse - 1]
    warm runs, averaged. [reuse <= 1] degenerates to
    {!predict_cycles} — the per-request model. Inter-kernel reuse is
    what makes write-heavy geometries competitive for graph serving:
    programming cost amortises, GEMV cost does not. *)

val predict_write_bytes : Offload.plan -> int
(** Crossbar bytes programmed — exact for compiler-shaped plans. *)

val write_bytes : Offload.config -> Tdo_ir.Ir.func -> int
(** Crossbar bytes the whole function programs under [config]: the
    {!Offload.plan} census, which prices each (re)program off the
    pinned operand's {!Tdo_analysis.Regions.mat_ref_cells} region. The
    W008 redundant-reprogram lint counts generations with the same
    region keys, so a program flagged by W008 shows strictly larger
    [write_bytes] than its hoisted/reordered variant. *)

val predict_energy_j : ?table:Tdo_energy.Table1.t -> Offload.plan -> float
(** Table-I pricing of the plan's device counters plus the host term
    (host ops standing in for instructions). *)

type sample = { plan : Offload.plan; cycles : float }

val calibrate : sample list -> t * float
(** Fit coefficients by non-negative least squares (projected cyclic
    coordinate descent on scaled features) and report the mean relative
    error of the fitted model on the samples themselves. Falls back to
    {!uncalibrated} (with its error) when the samples are degenerate. *)

val mean_relative_error : t -> sample list -> float
(** [mean |predicted - measured| / measured] over samples with
    [measured > 0]; [0.] for an empty list. *)

val to_json : t -> Tdo_util.Json.t
val of_json : Tdo_util.Json.t -> (t, string) result
