module Ast = Tdo_lang.Ast
module Json = Tdo_util.Json
module Offload = Tdo_tactics.Offload
module Flow = Tdo_cim.Flow

module Backend = Tdo_backend.Backend

type entry = {
  digest : string;
  kernel : string;
  n : int;
  device_class : Backend.device_class;
  objective : string;
  config : Space.point;
  tuned_cycles : int;
  default_cycles : int;
  tuned_write_bytes : int;
  default_write_bytes : int;
  calibration_error : float;
}

module Smap = Map.Make (String)

type t = entry Smap.t

let empty = Smap.empty
let size = Smap.cardinal

(* One kernel can hold a tuned configuration per device class; the map
   key is the digest qualified by the class name. *)
let key ~cls digest = digest ^ "/" ^ Backend.class_name cls

let entries db =
  Smap.bindings db |> List.map snd
  |> List.sort (fun a b ->
         match String.compare a.kernel b.kernel with
         | 0 -> (
             match String.compare a.digest b.digest with
             | 0 ->
                 String.compare
                   (Backend.class_name a.device_class)
                   (Backend.class_name b.device_class)
             | c -> c)
         | c -> c)

let add db e = Smap.add (key ~cls:e.device_class e.digest) e db

let find ?(cls = Backend.Pcm_crossbar) db digest = Smap.find_opt (key ~cls digest) db
let lookup ?cls db f = find ?cls db (Ast.structural_digest f)

let entry_of_result ~n (r : Search.result) =
  let cycles e =
    match e.Search.measurement with Some m -> m.Flow.roi_cycles | None -> 0
  in
  let writes e =
    match e.Search.measurement with Some m -> m.Flow.cim_write_bytes | None -> 0
  in
  {
    digest = r.Search.digest;
    kernel = r.Search.kernel;
    n;
    device_class = r.Search.cls;
    objective = Search.objective_to_string r.Search.objective;
    config = r.Search.best.Search.point;
    tuned_cycles = cycles r.Search.best;
    default_cycles = cycles r.Search.default;
    tuned_write_bytes = writes r.Search.best;
    default_write_bytes = writes r.Search.default;
    calibration_error = r.Search.calibration_error;
  }

let config_for ?device ?(cls = Backend.Pcm_crossbar) db f =
  (* Class-qualified lookup, then a belt-and-braces check: a tuned
     configuration measured on one device class is refused — not
     clamped — for any other class, so the caller falls back to the
     class-appropriate default instead of replaying, say, a PCM
     geometry on a digital tile. *)
  match lookup ~cls db f with
  | Some e when e.device_class = cls ->
      Some
        (match device with
        | None -> e.config
        | Some (rows, cols) ->
            {
              e.config with
              Offload.xbar_rows = min e.config.Offload.xbar_rows rows;
              xbar_cols = min e.config.Offload.xbar_cols cols;
            })
  | Some _ | None -> None

(* ---------- JSON ---------- *)

let entry_to_json e =
  Json.Obj
    [
      ("digest", Json.Str e.digest);
      ("kernel", Json.Str e.kernel);
      ("n", Json.Num (float_of_int e.n));
      ("device_class", Json.Str (Backend.class_name e.device_class));
      ("objective", Json.Str e.objective);
      ("config", Space.to_json e.config);
      ("tuned_cycles", Json.Num (float_of_int e.tuned_cycles));
      ("default_cycles", Json.Num (float_of_int e.default_cycles));
      ("tuned_write_bytes", Json.Num (float_of_int e.tuned_write_bytes));
      ("default_write_bytes", Json.Num (float_of_int e.default_write_bytes));
      ("calibration_error", Json.Num e.calibration_error);
    ]

let to_json db =
  Json.Obj
    [
      ("schema", Json.Str "tdo-cim-tunedb/2");
      ("entries", Json.Arr (List.map entry_to_json (entries db)));
    ]

let entry_of_json json =
  let ( let* ) = Result.bind in
  let str name =
    match Option.bind (Json.member name json) Json.to_string_opt with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "tune db: entry missing %s" name)
  in
  let num name =
    Option.bind (Json.member name json) Json.to_float |> Option.value ~default:0.0
  in
  let* digest = str "digest" in
  let* kernel = str "kernel" in
  let* device_class =
    (* absent in schema 1 databases: every pre-fleet entry was tuned on
       the analog crossbar *)
    match Option.bind (Json.member "device_class" json) Json.to_string_opt with
    | None -> Ok Backend.Pcm_crossbar
    | Some s -> Backend.class_of_name s
  in
  let* objective = str "objective" in
  let* config =
    match Json.member "config" json with
    | Some c -> Space.of_json c
    | None -> Error "tune db: entry missing config"
  in
  Ok
    {
      digest;
      kernel;
      n = int_of_float (num "n");
      device_class;
      objective;
      config;
      tuned_cycles = int_of_float (num "tuned_cycles");
      default_cycles = int_of_float (num "default_cycles");
      tuned_write_bytes = int_of_float (num "tuned_write_bytes");
      default_write_bytes = int_of_float (num "default_write_bytes");
      calibration_error = num "calibration_error";
    }

let of_json json =
  match Option.bind (Json.member "schema" json) Json.to_string_opt with
  | Some ("tdo-cim-tunedb/1" | "tdo-cim-tunedb/2") ->
      let rec collect db = function
        | [] -> Ok db
        | e :: rest -> (
            match entry_of_json e with
            | Ok entry -> collect (add db entry) rest
            | Error _ as err -> err)
      in
      collect empty
        (Json.member "entries" json |> Option.value ~default:(Json.Arr []) |> Json.to_list)
  | Some other -> Error (Printf.sprintf "tune db: unknown schema %S" other)
  | None -> Error "tune db: missing schema"

let load path =
  if not (Sys.file_exists path) then Ok empty
  else Result.bind (Json.of_file path) of_json

let save db path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (Json.to_string (to_json db));
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp path
