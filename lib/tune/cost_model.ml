module Offload = Tdo_tactics.Offload
module Json = Tdo_util.Json
module Table1 = Tdo_energy.Table1

type t = { coeffs : float array }

let feature_names =
  [|
    "const";
    "launches";
    "rows_programmed";
    "gemv_passes";
    "gemv_row_passes";
    "device_macs";
    "dma_bytes";
    "host_ops";
  |]

let features (p : Offload.plan) =
  [|
    1.0;
    float_of_int p.Offload.launches;
    float_of_int p.Offload.rows_programmed;
    float_of_int p.Offload.gemv_passes;
    float_of_int p.Offload.gemv_row_passes;
    float_of_int p.Offload.device_macs;
    float_of_int p.Offload.dma_bytes;
    float_of_int p.Offload.host_ops;
  |]

(* Table-I latencies priced in 1.2 GHz host cycles: 2.5 us per
   programmed row, 1 us for a full 256-row GEMV (so ~4.7 cycles per
   active wordline), plus guesses for launch overhead, bus traffic and
   host expression evaluation. *)
let uncalibrated =
  { coeffs = [| 0.0; 1000.0; 3000.0; 100.0; 4.7; 0.0; 2.0; 5.0 |] }

(* Per-class coefficient sets over the same feature census. The
   serving scheduler ranks a mixed fleet's free devices with these, so
   the relative shape matters more than absolute accuracy:

   - digital tiles write rows at SRAM speed (20 ns = 24 cycles instead
     of 3000) but integrate a GEMV ~4x slower through the adder tree
     (18.8 cycles per active wordline instead of 4.7);
   - the host BLAS fallback executes every would-be device MAC itself
     (~3 cycles per MAC, the scheduler's 2.5 ns interpreter rate) and
     pays neither launches, programming nor DMA. *)
let uncalibrated_digital =
  { coeffs = [| 0.0; 1000.0; 24.0; 100.0; 18.8; 0.0; 2.0; 5.0 |] }

let uncalibrated_host = { coeffs = [| 0.0; 0.0; 0.0; 0.0; 0.0; 3.0; 0.0; 5.0 |] }

let uncalibrated_for = function
  | Tdo_backend.Backend.Pcm_crossbar -> uncalibrated
  | Tdo_backend.Backend.Digital_tile -> uncalibrated_digital
  | Tdo_backend.Backend.Host_blas -> uncalibrated_host

let predict_cycles model plan =
  let x = features plan in
  let acc = ref 0.0 in
  Array.iteri (fun i c -> acc := !acc +. (c *. x.(i))) model.coeffs;
  !acc

(* The same execution with the crossbar weights already resident: every
   counter survives except the programming traffic, which graph-scope
   residency (serving layer) skips entirely on a warm device. *)
let resident_plan (p : Offload.plan) =
  { p with Offload.rows_programmed = 0; Offload.cells_programmed = 0 }

let predict_resident_cycles model plan = predict_cycles model (resident_plan plan)

let predict_amortized_cycles model ~reuse plan =
  if reuse <= 1 then predict_cycles model plan
  else
    let cold = predict_cycles model plan in
    let warm = predict_resident_cycles model plan in
    (cold +. (float_of_int (reuse - 1) *. warm)) /. float_of_int reuse

let predict_write_bytes (p : Offload.plan) = p.Offload.cells_programmed

let write_bytes config f = (Offload.plan config f).Offload.cells_programmed

let predict_energy_j ?(table = Table1.ibm_pcm_a7) (p : Offload.plan) =
  (float_of_int p.Offload.device_macs *. table.Table1.crossbar_compute_j_per_mac)
  +. (float_of_int p.Offload.cells_programmed *. table.Table1.crossbar_write_j_per_byte)
  +. float_of_int p.Offload.gemv_passes
     *. (table.Table1.mixed_signal_j_per_full_gemv
        +. table.Table1.weighted_sum_j_per_gemv
        +. table.Table1.dma_engine_j_per_full_gemv)
  +. (float_of_int p.Offload.dma_bytes *. table.Table1.buffer_j_per_byte)
  +. (float_of_int p.Offload.host_ops *. table.Table1.host_j_per_instruction)

type sample = { plan : Offload.plan; cycles : float }

let mean_relative_error model samples =
  let total, count =
    List.fold_left
      (fun (total, count) s ->
        if s.cycles > 0.0 then
          (total +. (Float.abs (predict_cycles model s.plan -. s.cycles) /. s.cycles),
           count + 1)
        else (total, count))
      (0.0, 0) samples
  in
  if count = 0 then 0.0 else total /. float_of_int count

(* Non-negative least squares by projected cyclic coordinate descent.
   Features are scaled to a unit maximum per column first so the
   stopping point does not depend on their wildly different ranges. *)
let calibrate samples =
  match samples with
  | [] -> (uncalibrated, 0.0)
  | _ ->
      let xs = List.map (fun s -> features s.plan) samples in
      let y = Array.of_list (List.map (fun s -> s.cycles) samples) in
      let rows = Array.of_list xs in
      let m = Array.length rows and d = Array.length feature_names in
      let scale =
        Array.init d (fun j ->
            let mx = Array.fold_left (fun acc r -> Float.max acc (Float.abs r.(j))) 0.0 rows in
            if mx > 0.0 then mx else 1.0)
      in
      let x = Array.map (fun r -> Array.mapi (fun j v -> v /. scale.(j)) r) rows in
      let w = Array.make d 0.0 in
      let residual = Array.copy y in
      (* residual = y - X w, maintained incrementally *)
      let col_sq =
        Array.init d (fun j ->
            let acc = ref 0.0 in
            for i = 0 to m - 1 do
              acc := !acc +. (x.(i).(j) *. x.(i).(j))
            done;
            !acc)
      in
      for _iter = 1 to 300 do
        for j = 0 to d - 1 do
          if col_sq.(j) > 0.0 then begin
            let dot = ref 0.0 in
            for i = 0 to m - 1 do
              dot := !dot +. (x.(i).(j) *. residual.(i))
            done;
            let updated = Float.max 0.0 (w.(j) +. (!dot /. col_sq.(j))) in
            let step = updated -. w.(j) in
            if step <> 0.0 then begin
              w.(j) <- updated;
              for i = 0 to m - 1 do
                residual.(i) <- residual.(i) -. (step *. x.(i).(j))
              done
            end
          end
        done
      done;
      let model = { coeffs = Array.mapi (fun j v -> v /. scale.(j)) w } in
      if Array.for_all (fun c -> c = 0.0) model.coeffs then
        (uncalibrated, mean_relative_error uncalibrated samples)
      else (model, mean_relative_error model samples)

let to_json model =
  Json.Obj
    (Array.to_list
       (Array.mapi (fun i c -> (feature_names.(i), Json.Num c)) model.coeffs))

let of_json json =
  let coeffs =
    Array.map
      (fun name ->
        Option.bind (Json.member name json) Json.to_float |> Option.value ~default:0.0)
      feature_names
  in
  if Array.exists (fun c -> c < 0.0) coeffs then Error "cost model: negative coefficient"
  else Ok { coeffs }
