module Offload = Tdo_tactics.Offload
module Flow = Tdo_cim.Flow
module Interp = Tdo_lang.Interp
module Ast = Tdo_lang.Ast
module Pool = Tdo_util.Pool

type objective = Cycles | Writes | Edp

let objective_to_string = function
  | Cycles -> "cycles"
  | Writes -> "writes"
  | Edp -> "edp"

let objective_of_string = function
  | "cycles" -> Ok Cycles
  | "writes" -> Ok Writes
  | "edp" -> Ok Edp
  | s -> Error (Printf.sprintf "unknown objective %S (cycles|writes|edp)" s)

type evaluation = {
  point : Space.point;
  plan : Offload.plan;
  predicted_cycles : float;
  measurement : Flow.measurement option;
}

type result = {
  kernel : string;
  digest : string;
  cls : Tdo_backend.Backend.device_class;
  objective : objective;
  reuse : int;
  best : evaluation;
  default : evaluation;
  evaluations : evaluation list;
  model : Cost_model.t;
  calibration_error : float;
  space_size : int;
  simulated : int;
}

let predicted_score objective (e : evaluation) =
  match objective with
  | Cycles -> (e.predicted_cycles, 0.0)
  | Writes -> (float_of_int (Cost_model.predict_write_bytes e.plan), e.predicted_cycles)
  | Edp ->
      (Cost_model.predict_energy_j e.plan *. e.predicted_cycles, e.predicted_cycles)

let improvement r =
  match (r.default.measurement, r.best.measurement) with
  | Some d, Some b -> (
      let ratio num den =
        if den > 0 then float_of_int num /. float_of_int den
        else if num > 0 then Float.infinity
        else 1.0
      in
      match r.objective with
      | Cycles | Edp -> ratio d.Flow.roi_cycles b.Flow.roi_cycles
      | Writes ->
          if d.Flow.cim_write_bytes = 0 && b.Flow.cim_write_bytes = 0 then
            ratio d.Flow.roi_cycles b.Flow.roi_cycles
          else ratio d.Flow.cim_write_bytes b.Flow.cim_write_bytes)
  | _ -> 1.0

(* Evenly spread [k] indices over [0, n), endpoints included. *)
let spread_indices n k =
  if n <= k then List.init n Fun.id
  else
    List.init k (fun i -> i * (n - 1) / (max 1 (k - 1)))
    |> List.sort_uniq Stdlib.compare

let tune ?(axes = Space.default_axes) ?(beam = 4) ?(calibration_points = 5)
    ?(objective = Cycles) ?(cls = Tdo_backend.Backend.Pcm_crossbar) ?platform_base
    ?(reuse = 1) ~source ~args () =
  let reuse = max 1 reuse in
  (* The class fixes the timing model every exact simulation runs
     under (and the prior the calibration subset is spread across), so
     a digital-tile entry is tuned against digital-tile latencies. *)
  let platform_base =
    match platform_base with
    | Some _ as b -> b
    | None -> (
        match cls with
        | Tdo_backend.Backend.Pcm_crossbar | Tdo_backend.Backend.Host_blas -> None
        | Tdo_backend.Backend.Digital_tile ->
            Some (Tdo_backend.Backend.platform_config Tdo_backend.Backend.digital))
  in
  match Tdo_lang.Parser.parse_func source with
  | exception Tdo_lang.Parser.Parse_error { line; message } ->
      Error (Printf.sprintf "parse error at line %d: %s" line message)
  | ast ->
      let digest = Ast.structural_digest ast in
      let enumerated = Space.enumerate axes in
      let space_size = List.length enumerated in
      let points =
        let pruned = Space.prune ~kernel:ast enumerated in
        if List.mem Offload.default_config pruned then pruned
        else Offload.default_config :: pruned
      in
      let compiled =
        List.map
          (fun point ->
            let options = { Flow.enable_loop_tactics = true; tactics = point } in
            let func, _report = Flow.compile ~options source in
            (point, func, Offload.plan point func))
          points
      in
      let simulate (point, func) =
        let platform_config = Space.platform_config ?base:platform_base point in
        let measurement, _platform = Flow.run ~platform_config func ~args:(args ()) in
        measurement
      in
      let prior = Cost_model.uncalibrated_for cls in
      let by_prior =
        List.sort
          (fun (_, _, p) (_, _, q) ->
            Float.compare (Cost_model.predict_cycles prior p)
              (Cost_model.predict_cycles prior q))
          compiled
      in
      let calib_set =
        let picked =
          List.filteri
            (fun i _ ->
              List.mem i (spread_indices (List.length by_prior) calibration_points))
            by_prior
        in
        let has_default =
          List.exists (fun (p, _, _) -> p = Offload.default_config) picked
        in
        if has_default then picked
        else
          picked
          @ List.filter (fun (p, _, _) -> p = Offload.default_config) compiled
      in
      let calib_measures =
        Pool.parallel_map (fun (p, f, _) -> simulate (p, f)) calib_set
      in
      let samples =
        List.map2
          (fun (_, _, plan) (m : Flow.measurement) ->
            { Cost_model.plan; cycles = float_of_int m.Flow.roi_cycles })
          calib_set calib_measures
      in
      let model, calibration_error = Cost_model.calibrate samples in
      (* Under inter-kernel reuse the programming traffic is paid once
         per [reuse] runs: score every point by its amortised predicted
         cycles, and discount each measured (cold) run by the model's
         estimate of the amortisable programming share — the simulator
         only ever measures cold runs, so the warm fraction has to come
         from the fitted model. *)
      let warm_saving_cycles plan =
        if reuse <= 1 then 0.0
        else
          float_of_int (reuse - 1) /. float_of_int reuse
          *. Float.max 0.0
               (Cost_model.predict_cycles model plan
               -. Cost_model.predict_resident_cycles model plan)
      in
      let measured_amortized plan (m : Flow.measurement) =
        Float.max 0.0 (float_of_int m.Flow.roi_cycles -. warm_saving_cycles plan)
      in
      let measured_score plan (m : Flow.measurement) =
        match objective with
        | Cycles -> (measured_amortized plan m, 0.0)
        | Writes ->
            ( float_of_int m.Flow.cim_write_bytes /. float_of_int reuse,
              measured_amortized plan m )
        | Edp -> (m.Flow.edp_js, measured_amortized plan m)
      in
      let measured_so_far =
        List.map2 (fun (p, _, _) m -> (p, m)) calib_set calib_measures
      in
      let evaluations =
        List.map
          (fun (point, _, plan) ->
            {
              point;
              plan;
              predicted_cycles = Cost_model.predict_amortized_cycles model ~reuse plan;
              measurement = List.assoc_opt point measured_so_far;
            })
          compiled
      in
      let ranked =
        List.sort
          (fun a b ->
            Stdlib.compare (predicted_score objective a) (predicted_score objective b))
          evaluations
      in
      let beam_points =
        (List.filteri (fun i _ -> i < beam) ranked
        |> List.map (fun e -> e.point))
        @ [ Offload.default_config ]
        |> List.sort_uniq Stdlib.compare
      in
      let to_simulate =
        List.filter
          (fun (p, _, _) ->
            List.mem p beam_points && not (List.mem_assoc p measured_so_far))
          compiled
      in
      let beam_measures =
        Pool.parallel_map (fun (p, f, _) -> simulate (p, f)) to_simulate
      in
      let measured =
        measured_so_far @ List.map2 (fun (p, _, _) m -> (p, m)) to_simulate beam_measures
      in
      let evaluations =
        List.map
          (fun e -> { e with measurement = List.assoc_opt e.point measured })
          evaluations
      in
      let eval_of point = List.find (fun e -> e.point = point) evaluations in
      let default = eval_of Offload.default_config in
      let best =
        (* start from the default and only move on a strictly better
           measured score: ties never adopt a tuned point *)
        List.fold_left
          (fun best e ->
            match (best.measurement, e.measurement) with
            | Some bm, Some em
              when measured_score e.plan em < measured_score best.plan bm ->
                e
            | _ -> best)
          default evaluations
      in
      Ok
        {
          kernel = ast.Ast.fname;
          digest;
          cls;
          objective;
          reuse;
          best;
          default;
          evaluations;
          model;
          calibration_error;
          space_size;
          simulated = List.length measured;
        }
