module Dataset = Tdo_polybench.Dataset
module Kernels = Tdo_polybench.Kernels
module Offload = Tdo_tactics.Offload
module Platform = Tdo_runtime.Platform
module Endurance = Tdo_pcm.Endurance
module Pool = Tdo_util.Pool
module Pretty = Tdo_util.Pretty
module Stats = Tdo_util.Stats
module Mat = Tdo_linalg.Mat
module Sim = Tdo_sim

let options_with tactics = { Flow.enable_loop_tactics = true; tactics }

(* ---------- operand pinning ---------- *)

type pinning_row = {
  mapping : string;
  crossbar_write_bytes : int;
  energy_j : float;
  lifetime_years_at_25m : float;
}

let pinning ?(n = 64) ?(seed = 13) () =
  let measure naive_pin =
    let args, _ = Workloads.listing2_args ~n ~seed in
    let m, _ =
      Flow.run_source
        ~options:(options_with { Offload.default_config with Offload.naive_pin })
        (Workloads.listing2_source ~n) ~args
    in
    m
  in
  let row mapping (m : Flow.measurement) =
    {
      mapping;
      crossbar_write_bytes = m.Flow.cim_write_bytes;
      energy_j = m.Flow.energy_j;
      lifetime_years_at_25m =
        Endurance.lifetime_years ~cell_endurance:25e6 ~crossbar_bytes:(512 * 1024)
          ~write_bytes_per_second:
            (Endurance.write_traffic_bytes_per_second ~bytes_written:m.Flow.cim_write_bytes
               ~elapsed_seconds:m.Flow.time_s);
    }
  in
  match Pool.parallel_map measure [ false; true ] with
  | [ smart; naive ] -> [ row "smart (pin shared A)" smart; row "naive (stream A)" naive ]
  | _ -> assert false

let print_pinning ?(n = 64) () =
  Printf.printf "Ablation: operand pinning (Listing-2 workload, %dx%d)\n" n n;
  Pretty.print
    ~columns:
      [
        Pretty.column "mapping";
        Pretty.column ~align:Pretty.Right "crossbar writes";
        Pretty.column ~align:Pretty.Right "energy";
        Pretty.column ~align:Pretty.Right "lifetime @25M";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.mapping;
             string_of_int r.crossbar_write_bytes ^ " B";
             Pretty.si_float r.energy_j ^ "J";
             Pretty.fixed ~digits:3 r.lifetime_years_at_25m ^ " y";
           ])
         (pinning ~n ()))

(* ---------- fusion ---------- *)

type fusion_row = {
  fusion : bool;
  launches : int;
  cache_flushes : int;
  energy_j : float;
  time_s : float;
}

let fusion ?(n = 32) ?(seed = 13) () =
  let measure enable_fusion =
    let args, _ = Workloads.listing2_args ~n ~seed in
    let m, platform =
      Flow.run_source
        ~options:(options_with { Offload.default_config with Offload.enable_fusion })
        (Workloads.listing2_source ~n) ~args
    in
    {
      fusion = enable_fusion;
      launches = m.Flow.launches;
      cache_flushes = (Sim.Cache.stats platform.Platform.l2).Sim.Cache.flushes;
      energy_j = m.Flow.energy_j;
      time_s = m.Flow.time_s;
    }
  in
  Pool.parallel_map measure [ true; false ]

let print_fusion ?(n = 32) () =
  Printf.printf "Ablation: kernel fusion to batched calls (Listing-2 workload, %dx%d)\n" n n;
  Pretty.print
    ~columns:
      [
        Pretty.column "fusion";
        Pretty.column ~align:Pretty.Right "launches";
        Pretty.column ~align:Pretty.Right "cache flushes";
        Pretty.column ~align:Pretty.Right "energy";
        Pretty.column ~align:Pretty.Right "time";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             (if r.fusion then "on" else "off");
             string_of_int r.launches;
             string_of_int r.cache_flushes;
             Pretty.si_float r.energy_j ^ "J";
             Pretty.si_float r.time_s ^ "s";
           ])
         (fusion ~n ()))

(* ---------- double buffering ---------- *)

type double_buffering_row = { double_buffering : bool; device_time_s : float }

let double_buffering ?(n = 64) ?(seed = 13) () =
  let measure enabled =
    let engine =
      {
        Tdo_cimacc.Micro_engine.default_config with
        Tdo_cimacc.Micro_engine.double_buffering = enabled;
      }
    in
    let platform_config = { Platform.default_config with Platform.engine } in
    let args, _ = Workloads.gemm_args ~n ~seed in
    let f, _ = Flow.compile ~options:Flow.o3_loop_tactics (Workloads.gemm_source ~n) in
    let _, platform = Flow.run ~platform_config f ~args in
    let busy =
      (Tdo_cimacc.Micro_engine.counters (Tdo_cimacc.Accel.engine platform.Platform.accel))
        .Tdo_cimacc.Micro_engine.busy_ps
    in
    { double_buffering = enabled; device_time_s = Sim.Time_base.seconds_of_ps busy }
  in
  Pool.parallel_map measure [ true; false ]

let print_double_buffering ?(n = 64) () =
  Printf.printf "Ablation: micro-engine double buffering (%dx%dx%d GEMM)\n" n n n;
  Pretty.print
    ~columns:
      [
        Pretty.column "double buffering";
        Pretty.column ~align:Pretty.Right "device busy time";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             (if r.double_buffering then "on" else "off");
             Pretty.si_float r.device_time_s ^ "s";
           ])
         (double_buffering ~n ()))

(* ---------- selective offload ---------- *)

type selective_row = {
  min_intensity : float option;
  offloaded : int;
  kept_on_host : int;
  geomean_energy_improvement : float;
}

let selective ?(dataset = Dataset.Small) ?(seed = 17) () =
  let n = Dataset.n dataset in
  let run_kernel options (b : Kernels.benchmark) =
    let args, _ = b.Kernels.make_args ~n ~seed in
    let f, report = Flow.compile ~options (b.Kernels.source ~n) in
    let m, _ = Flow.run f ~args in
    (m, report)
  in
  let hosts = Pool.parallel_map (fun b -> fst (run_kernel Flow.o3 b)) Kernels.all in
  let threshold min_intensity =
    let options = options_with { Offload.default_config with Offload.min_intensity } in
    let results = Pool.parallel_map (run_kernel options) Kernels.all in
    let offloaded =
      List.fold_left
        (fun acc (_, report) ->
          match report with
          | Some r -> acc + r.Offload.kernels_offloaded
          | None -> acc)
        0 results
    in
    let skipped =
      List.fold_left
        (fun acc (_, report) ->
          match report with
          | Some r -> acc + r.Offload.skipped_low_intensity
          | None -> acc)
        0 results
    in
    let improvements =
      List.map2
        (fun (host : Flow.measurement) ((m : Flow.measurement), _) ->
          host.Flow.energy_j /. m.Flow.energy_j)
        hosts results
    in
    {
      min_intensity;
      offloaded;
      kept_on_host = skipped;
      geomean_energy_improvement = Stats.geomean improvements;
    }
  in
  (* thresholds fan out in parallel; the per-kernel maps inside each
     threshold then run sequentially on their worker *)
  Pool.parallel_map threshold [ None; Some 2.0; Some 16.0; Some 256.0; Some 1e6 ]

let print_selective ?(dataset = Dataset.Small) () =
  Printf.printf "Ablation: selective offload threshold (PolyBench, n=%d)\n" (Dataset.n dataset);
  Pretty.print
    ~columns:
      [
        Pretty.column ~align:Pretty.Right "min MACs/write";
        Pretty.column ~align:Pretty.Right "kernels offloaded";
        Pretty.column ~align:Pretty.Right "kept on host";
        Pretty.column ~align:Pretty.Right "geomean E gain";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             (match r.min_intensity with
             | None -> "offload all"
             | Some t -> Pretty.fixed ~digits:0 t);
             string_of_int r.offloaded;
             string_of_int r.kept_on_host;
             Pretty.fixed ~digits:2 r.geomean_energy_improvement ^ "x";
           ])
         (selective ~dataset ()))

(* ---------- crossbar geometry ---------- *)

type geometry_row = {
  xbar_size : int;
  launches : int;
  crossbar_write_bytes : int;
  energy_improvement : float;
}

let geometry ?(n = 128) ?(seed = 13) () =
  let host =
    let args, _ = Workloads.gemm_args ~n ~seed in
    fst (Flow.run_source ~options:Flow.o3 (Workloads.gemm_source ~n) ~args)
  in
  let measure size =
    let engine =
      {
        Tdo_cimacc.Micro_engine.default_config with
        Tdo_cimacc.Micro_engine.xbar =
          { Tdo_pcm.Crossbar.default_config with Tdo_pcm.Crossbar.rows = size; cols = size };
      }
    in
    let platform_config = { Platform.default_config with Platform.engine } in
    let options =
      options_with { Offload.default_config with Offload.xbar_rows = size; xbar_cols = size }
    in
    let args, _ = Workloads.gemm_args ~n ~seed in
    let f, _ = Flow.compile ~options (Workloads.gemm_source ~n) in
    let m, _ = Flow.run ~platform_config f ~args in
    {
      xbar_size = size;
      launches = m.Flow.launches;
      crossbar_write_bytes = m.Flow.cim_write_bytes;
      energy_improvement = host.Flow.energy_j /. m.Flow.energy_j;
    }
  in
  Pool.parallel_map measure [ 32; 64; 128; 256 ]

let print_geometry ?(n = 128) () =
  Printf.printf "Ablation: crossbar geometry (%dx%dx%d GEMM)\n" n n n;
  Pretty.print
    ~columns:
      [
        Pretty.column ~align:Pretty.Right "crossbar";
        Pretty.column ~align:Pretty.Right "launches";
        Pretty.column ~align:Pretty.Right "crossbar writes";
        Pretty.column ~align:Pretty.Right "E gain vs host";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             Printf.sprintf "%dx%d" r.xbar_size r.xbar_size;
             string_of_int r.launches;
             string_of_int r.crossbar_write_bytes ^ " B";
             Pretty.fixed ~digits:2 r.energy_improvement ^ "x";
           ])
         (geometry ~n ()))

(* ---------- analog noise vs accuracy ---------- *)

type noise_row = { noise_sigma : float option; max_abs_error : float }

let noise ?(n = 32) ?(seed = 13) () =
  let host =
    let args, readback = Workloads.gemm_args ~n ~seed in
    let _ = Flow.run_source ~options:Flow.o3 (Workloads.gemm_source ~n) ~args in
    readback ()
  in
  let measure noise_sigma =
    let engine =
      {
        Tdo_cimacc.Micro_engine.default_config with
        Tdo_cimacc.Micro_engine.xbar =
          { Tdo_pcm.Crossbar.default_config with Tdo_pcm.Crossbar.noise_sigma };
      }
    in
    let platform_config = { Platform.default_config with Platform.engine } in
    let args, readback = Workloads.gemm_args ~n ~seed in
    let f, _ = Flow.compile ~options:Flow.o3_loop_tactics (Workloads.gemm_source ~n) in
    let _ = Flow.run ~platform_config f ~args in
    { noise_sigma; max_abs_error = Mat.max_abs_diff host (readback ()) }
  in
  Pool.parallel_map measure [ None; Some 0.5; Some 2.0; Some 8.0; Some 32.0 ]

let print_noise ?(n = 32) () =
  Printf.printf "Ablation: analog noise vs accuracy (%dx%dx%d GEMM)\n" n n n;
  Pretty.print
    ~columns:
      [
        Pretty.column ~align:Pretty.Right "noise sigma (LSB)";
        Pretty.column ~align:Pretty.Right "max |error| vs host";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             (match r.noise_sigma with None -> "ideal" | Some s -> Pretty.fixed ~digits:1 s);
             Pretty.fixed ~digits:4 r.max_abs_error;
           ])
         (noise ~n ()))

(* ---------- architectural wear leveling ---------- *)

type wear_leveling_row = {
  scheme : string;
  max_wear : int;
  ideal_max_wear : int;
  overhead_writes : int;
}

let wear_leveling ?(lines = 64) ?(writes = 100_000) ?(seed = 13) () =
  let module Wl = Tdo_pcm.Wear_leveling in
  let module Prng = Tdo_util.Prng in
  (* Zipf-ish skew: line l gets weight 1/(l+1) *)
  let weights = Array.init lines (fun l -> 1.0 /. float_of_int (l + 1)) in
  let total_weight = Array.fold_left ( +. ) 0.0 weights in
  (* iterative with local (uncaptured, hence unboxed) accumulators:
     this draw runs once per modelled write, so a boxed float per
     recursion level would dominate the ablation's allocation *)
  let draw g =
    let x = Prng.float g ~bound:total_weight in
    let l = ref 0 and acc = ref 0.0 in
    while !l < lines - 1 && not (!acc +. weights.(!l) > x) do
      acc := !acc +. weights.(!l);
      incr l
    done;
    !l
  in
  let unlevelled =
    let g = Prng.create ~seed in
    let wear = Array.make lines 0 in
    for _ = 1 to writes do
      let l = draw g in
      wear.(l) <- wear.(l) + 1
    done;
    {
      scheme = "none";
      max_wear = Array.fold_left max 0 wear;
      ideal_max_wear = (writes + lines - 1) / lines;
      overhead_writes = 0;
    }
  in
  let start_gap =
    let g = Prng.create ~seed in
    let wl = Wl.create ~lines ~gap_interval:16 in
    for _ = 1 to writes do
      Wl.write wl (draw g)
    done;
    {
      scheme = "start-gap (psi=16)";
      max_wear = Wl.max_wear wl;
      ideal_max_wear = Wl.ideal_max_wear wl;
      overhead_writes = Wl.gap_movements wl;
    }
  in
  [ unlevelled; start_gap ]

let print_wear_leveling () =
  let rows = wear_leveling () in
  print_endline "Ablation: architectural wear-leveling under Zipf-skewed row writes";
  Pretty.print
    ~columns:
      [
        Pretty.column "scheme";
        Pretty.column ~align:Pretty.Right "max wear";
        Pretty.column ~align:Pretty.Right "ideal bound";
        Pretty.column ~align:Pretty.Right "copy overhead";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.scheme;
             string_of_int r.max_wear;
             string_of_int r.ideal_max_wear;
             string_of_int r.overhead_writes;
           ])
         rows)

(* ---------- tile count ---------- *)

type tiles_row = { tiles : int; time_s : float; energy_j : float; edp_js : float }

let tiles ?(n = 64) ?(seed = 17) () =
  let b = Result.get_ok (Kernels.find "3mm") in
  let source = b.Kernels.source ~n in
  let f, _ = Flow.compile ~options:Flow.o3_loop_tactics source in
  let measure count =
    let engine =
      { Tdo_cimacc.Micro_engine.default_config with Tdo_cimacc.Micro_engine.tiles = count }
    in
    let platform_config = { Platform.default_config with Platform.engine } in
    let args, _ = b.Kernels.make_args ~n ~seed in
    let m, _ = Flow.run ~platform_config f ~args in
    { tiles = count; time_s = m.Flow.time_s; energy_j = m.Flow.energy_j; edp_js = m.Flow.edp_js }
  in
  Pool.parallel_map measure [ 1; 2; 4 ]

let print_tiles ?(n = 64) () =
  Printf.printf "Ablation: CIM tile count (3mm at n=%d; independent products run in parallel)\n"
    n;
  Pretty.print
    ~columns:
      [
        Pretty.column ~align:Pretty.Right "tiles";
        Pretty.column ~align:Pretty.Right "time";
        Pretty.column ~align:Pretty.Right "energy";
        Pretty.column ~align:Pretty.Right "EDP";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             string_of_int r.tiles;
             Pretty.si_float r.time_s ^ "s";
             Pretty.si_float r.energy_j ^ "J";
             Pretty.si_float r.edp_js ^ "Js";
           ])
         (tiles ~n ()))

let print_all () =
  print_pinning ();
  print_newline ();
  print_fusion ();
  print_newline ();
  print_double_buffering ();
  print_newline ();
  print_selective ();
  print_newline ();
  print_geometry ();
  print_newline ();
  print_noise ();
  print_newline ();
  print_wear_leveling ();
  print_newline ();
  print_tiles ()
