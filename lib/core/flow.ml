module Ir = Tdo_ir.Ir
module Interp = Tdo_lang.Interp
module Platform = Tdo_runtime.Platform
module Offload = Tdo_tactics.Offload
module Ledger = Tdo_energy.Ledger

module Pipeline = Tdo_tactics.Pipeline
module Diag = Tdo_analysis.Diag

type options = { enable_loop_tactics : bool; tactics : Offload.config }

let o3 = { enable_loop_tactics = false; tactics = Offload.default_config }
let o3_loop_tactics = { enable_loop_tactics = true; tactics = Offload.default_config }

exception Verification_failure of Diag.t list

type compiled = {
  func : Ir.func;
  outcome : Pipeline.outcome option;
  diagnostics : Diag.t list;
}

let compile_checked ?(options = o3_loop_tactics) ?resolve_config ?(verify = false)
    source =
  let ast = Tdo_lang.Parser.parse_func source in
  let options =
    match Option.bind resolve_config (fun resolve -> resolve ast) with
    | Some tactics -> { options with tactics }
    | None -> options
  in
  let f = Tdo_ir.Lower.func ast in
  if options.enable_loop_tactics then
    let checked = Pipeline.run_checked ~config:options.tactics ~verify f in
    {
      func = checked.Pipeline.func;
      outcome = Some checked.Pipeline.outcome;
      diagnostics = checked.Pipeline.diagnostics;
    }
  else
    let diagnostics = if verify then Tdo_analysis.Verify.func f @ Tdo_analysis.Bounds.func f else [] in
    { func = f; outcome = None; diagnostics }

let compile ?options ?resolve_config ?(verify = false) source =
  let c = compile_checked ?options ?resolve_config ~verify source in
  if verify && Diag.has_errors c.diagnostics then
    raise (Verification_failure (Diag.errors c.diagnostics));
  let report =
    match c.outcome with Some (Pipeline.Offloaded r) -> Some r | Some _ | None -> None
  in
  (c.func, report)

type measurement = {
  roi_instructions : int;
  roi_cycles : int;
  time_s : float;
  energy : Ledger.breakdown;
  energy_j : float;
  edp_js : float;
  used_cim : bool;
  launches : int;
  cim_macs : int;
  cim_write_bytes : int;
  macs_per_cim_write : float;
}

(* Scratch-arena lifecycle: each [run] resets the calling domain's
   arena and hands it to the per-run platform and executor, so repeated
   runs on one domain (sweeps, [Pool.parallel_map] workers) recycle the
   same memory chunks, engine buffers and slot tables instead of
   re-allocating them. The reset happens at the START of the run — the
   returned platform's counters stay readable afterwards, but blocks
   handed out during a run (memory contents included) are recycled by
   the next [run] on the same domain. [TDO_ARENA=0] disables the arena
   (re-read per run, so tests can flip it). *)
let arena_enabled () = Sys.getenv_opt "TDO_ARENA" <> Some "0"

let run ?(platform_config = Platform.default_config) f ~args =
  let scratch =
    if arena_enabled () then begin
      let a = Tdo_util.Pool.scratch () in
      Tdo_util.Arena.reset a;
      Some a
    end
    else None
  in
  let platform = Platform.create ~config:platform_config ?scratch () in
  let metrics = Tdo_ir.Exec.run ?scratch f ~platform ~args in
  let energy =
    Ledger.collect platform ~host_instructions:metrics.Tdo_ir.Exec.roi_instructions
  in
  let energy_j = Ledger.total_j energy in
  let time_s = Tdo_sim.Time_base.seconds_of_ps metrics.Tdo_ir.Exec.roi_time_ps in
  let xbar =
    Tdo_cimacc.Micro_engine.total_crossbar_counters
      (Tdo_cimacc.Accel.engine platform.Platform.accel)
  in
  let macs = xbar.Tdo_pcm.Crossbar.macs in
  let writes = xbar.Tdo_pcm.Crossbar.write_bytes in
  ( {
      roi_instructions = metrics.Tdo_ir.Exec.roi_instructions;
      roi_cycles = metrics.Tdo_ir.Exec.roi_cycles;
      time_s;
      energy;
      energy_j;
      edp_js = Ledger.edp ~energy_j ~time_s;
      used_cim = metrics.Tdo_ir.Exec.used_cim;
      launches = metrics.Tdo_ir.Exec.cim_launches;
      cim_macs = macs;
      cim_write_bytes = writes;
      macs_per_cim_write =
        (if writes = 0 then 0.0 else float_of_int macs /. float_of_int writes);
    },
    platform )

let run_source ?options ?resolve_config ?platform_config source ~args =
  let f, _report = compile ?options ?resolve_config source in
  run ?platform_config f ~args
