module Dataset = Tdo_polybench.Dataset
module Kernels = Tdo_polybench.Kernels
module Timeline = Tdo_cimacc.Timeline
module Pool = Tdo_util.Pool
module Pretty = Tdo_util.Pretty
module Stats = Tdo_util.Stats
module Mat = Tdo_linalg.Mat
module Cell = Tdo_pcm.Cell
module Endurance = Tdo_pcm.Endurance
module Platform = Tdo_runtime.Platform
module Offload = Tdo_tactics.Offload

(* ---------- Table I ---------- *)

let table1 () = Tdo_energy.Table1.rows Tdo_energy.Table1.ibm_pcm_a7

let print_table1 () =
  print_endline "Table I: CIM and host system configuration";
  Pretty.print
    ~columns:[ Pretty.column "Parameter"; Pretty.column "Value" ]
    ~rows:(List.map (fun (k, v) -> [ k; v ]) (table1 ()))

(* ---------- Fig. 1 ---------- *)

let fig1 () =
  [
    ("reset", Cell.pulse_profile Cell.Reset);
    ("set", Cell.pulse_profile Cell.Set);
    ("read", Cell.pulse_profile Cell.Read);
  ]

let print_fig1 () =
  print_endline "Fig. 1(b): PCM programming pulses (time ns, temperature K)";
  Printf.printf "  T_melt = %.0f K, T_crys = %.0f K, T_room = %.0f K\n"
    Cell.melt_temperature_k Cell.crystallisation_temperature_k Cell.room_temperature_k;
  List.iter
    (fun (name, trace) ->
      Printf.printf "  %-5s:" name;
      List.iter (fun (t, temp) -> Printf.printf " (%.0fns, %.0fK)" t temp) trace;
      print_newline ())
    (fig1 ())

(* ---------- Fig. 2(d) ---------- *)

let fig2d ?(n = 16) () =
  let args, _ = Workloads.gemm_args ~n ~seed:7 in
  let _measurement, platform = Flow.run_source (Workloads.gemm_source ~n) ~args in
  Timeline.events
    (Tdo_cimacc.Micro_engine.timeline (Tdo_cimacc.Accel.engine platform.Platform.accel))

let print_fig2d ?(n = 16) () =
  Printf.printf "Fig. 2(d): timeline of one transparent %dx%dx%d GEMM offload\n" n n n;
  let events = fig2d ~n () in
  let shown, rest =
    if List.length events <= 24 then (events, 0)
    else
      ( List.filteri (fun i _ -> i < 12) events
        @ List.filteri (fun i _ -> i >= List.length events - 6) events,
        List.length events - 18 )
  in
  List.iter (fun e -> Format.printf "  %a@." Timeline.pp_event e) shown;
  if rest > 0 then Printf.printf "  ... (%d events elided)\n" rest;
  print_newline ();
  print_string (Timeline.render_gantt events)

(* ---------- Fig. 5 ---------- *)

type fig5_row = {
  endurance_millions : float;
  naive_years : float;
  smart_years : float;
}

type fig5_meta = {
  naive_write_bytes : int;
  smart_write_bytes : int;
  naive_traffic_bytes_per_s : float;
  smart_traffic_bytes_per_s : float;
  crossbar_bytes : int;
}

let default_endurances = [ 10.0; 15.0; 20.0; 25.0; 30.0; 35.0; 40.0 ]

let fig5 ?(endurances_millions = default_endurances) ?(n = 64) ?(seed = 13) () =
  let measure naive_pin =
    let options =
      {
        Flow.enable_loop_tactics = true;
        tactics = { Offload.default_config with Offload.naive_pin };
      }
    in
    let args, _ = Workloads.listing2_args ~n ~seed in
    let m, _platform = Flow.run_source ~options (Workloads.listing2_source ~n) ~args in
    m
  in
  (* the two configurations are independent full runs *)
  let smart, naive =
    match Pool.parallel_map measure [ false; true ] with
    | [ smart; naive ] -> (smart, naive)
    | _ -> assert false
  in
  let crossbar_bytes = 512 * 1024 in
  let traffic (m : Flow.measurement) =
    Endurance.write_traffic_bytes_per_second ~bytes_written:m.Flow.cim_write_bytes
      ~elapsed_seconds:m.Flow.time_s
  in
  let naive_traffic = traffic naive and smart_traffic = traffic smart in
  let rows =
    List.map
      (fun millions ->
        let years traffic =
          Endurance.lifetime_years ~cell_endurance:(millions *. 1e6) ~crossbar_bytes
            ~write_bytes_per_second:traffic
        in
        {
          endurance_millions = millions;
          naive_years = years naive_traffic;
          smart_years = years smart_traffic;
        })
      endurances_millions
  in
  ( rows,
    {
      naive_write_bytes = naive.Flow.cim_write_bytes;
      smart_write_bytes = smart.Flow.cim_write_bytes;
      naive_traffic_bytes_per_s = naive_traffic;
      smart_traffic_bytes_per_s = smart_traffic;
      crossbar_bytes;
    } )

let print_fig5 ?(n = 64) () =
  let rows, meta = fig5 ~n () in
  Printf.printf
    "Fig. 5: system lifetime for the Listing-2 workload (%dx%d matrices, %d KB crossbar)\n" n n
    (meta.crossbar_bytes / 1024);
  Printf.printf "  crossbar writes: naive %d B, smart %d B (%.2fx reduction)\n"
    meta.naive_write_bytes meta.smart_write_bytes
    (float_of_int meta.naive_write_bytes /. float_of_int meta.smart_write_bytes);
  Pretty.print
    ~columns:
      [
        Pretty.column ~align:Pretty.Right "endurance (Mwrites)";
        Pretty.column ~align:Pretty.Right "naive (years)";
        Pretty.column ~align:Pretty.Right "smart (years)";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             Pretty.fixed ~digits:0 r.endurance_millions;
             Pretty.fixed ~digits:3 r.naive_years;
             Pretty.fixed ~digits:3 r.smart_years;
           ])
         rows)

(* ---------- Fig. 6 ---------- *)

type fig6_row = {
  kernel : string;
  kind : Kernels.kind;
  host : Flow.measurement;
  cim : Flow.measurement;
  energy_improvement : float;
  edp_improvement : float;
  perf_improvement : float;
  macs_per_cim_write : float;
  max_abs_error : float;
}

type fig6_summary = {
  geomean_energy_improvement : float;
  selective_geomean_energy_improvement : float;
  geomean_edp_improvement : float;
  max_edp_improvement : float;
}

let fig6_kernel ~n ~seed (b : Kernels.benchmark) =
  let source = b.Kernels.source ~n in
  let run options =
    let args, readback = b.Kernels.make_args ~n ~seed in
    let m, _platform = Flow.run_source ~options source ~args in
    (m, readback ())
  in
  let host, host_out = run Flow.o3 in
  let cim, cim_out = run Flow.o3_loop_tactics in
  let max_abs_error =
    List.fold_left2
      (fun acc a b -> Float.max acc (Mat.max_abs_diff a b))
      0.0 host_out cim_out
  in
  {
    kernel = b.Kernels.name;
    kind = b.Kernels.kind;
    host;
    cim;
    energy_improvement = host.Flow.energy_j /. cim.Flow.energy_j;
    edp_improvement = host.Flow.edp_js /. cim.Flow.edp_js;
    perf_improvement = host.Flow.time_s /. cim.Flow.time_s;
    macs_per_cim_write = cim.Flow.macs_per_cim_write;
    max_abs_error;
  }

let fig6 ?(dataset = Dataset.Medium) ?(seed = 17) () =
  let n = Dataset.n dataset in
  (* one task per kernel; each builds its own platforms and takes its
     PRNG seed explicitly, so the fan-out is bit-deterministic *)
  let rows = Pool.parallel_map (fig6_kernel ~n ~seed) Kernels.all in
  let energies = List.map (fun r -> r.energy_improvement) rows in
  let selective =
    List.map
      (fun r ->
        match r.kind with
        | Kernels.Gemm_like -> Float.max 1.0 r.energy_improvement
        | Kernels.Gemv_like -> 1.0)
      rows
  in
  let edps = List.map (fun r -> r.edp_improvement) rows in
  ( rows,
    {
      geomean_energy_improvement = Stats.geomean energies;
      selective_geomean_energy_improvement = Stats.geomean selective;
      geomean_edp_improvement = Stats.geomean edps;
      max_edp_improvement = Stats.maximum edps;
    } )

let print_fig6_breakdown rows =
  print_endline "Energy breakdown of the host+CIM runs (Table-I components):";
  let module L = Tdo_energy.Ledger in
  let columns =
    [
      Pretty.column "kernel";
      Pretty.column ~align:Pretty.Right "host side";
      Pretty.column ~align:Pretty.Right "xbar compute";
      Pretty.column ~align:Pretty.Right "xbar write";
      Pretty.column ~align:Pretty.Right "mixed signal";
      Pretty.column ~align:Pretty.Right "buffers";
      Pretty.column ~align:Pretty.Right "digital";
      Pretty.column ~align:Pretty.Right "dma+engine";
    ]
  in
  let si v = Pretty.si_float v ^ "J" in
  Pretty.print ~columns
    ~rows:
      (List.map
         (fun r ->
           let e = r.cim.Flow.energy in
           [
             r.kernel;
             si e.L.host_j;
             si e.L.crossbar_compute_j;
             si e.L.crossbar_write_j;
             si e.L.mixed_signal_j;
             si e.L.buffers_j;
             si e.L.digital_j;
             si e.L.dma_engine_j;
           ])
         rows)

let print_fig6_results ~n ?(breakdown = false) (rows, summary) =
  Printf.printf "Fig. 6: energy and EDP, host (Arm-A7) vs host+CIM, PolyBench at n=%d\n" n;
  let columns =
    [
      Pretty.column "kernel";
      Pretty.column "kind";
      Pretty.column ~align:Pretty.Right "host E";
      Pretty.column ~align:Pretty.Right "cim E";
      Pretty.column ~align:Pretty.Right "E gain";
      Pretty.column ~align:Pretty.Right "EDP gain";
      Pretty.column ~align:Pretty.Right "perf gain";
      Pretty.column ~align:Pretty.Right "MACs/write";
      Pretty.column ~align:Pretty.Right "max err";
    ]
  in
  let body =
    List.map
      (fun r ->
        [
          r.kernel;
          (match r.kind with Kernels.Gemm_like -> "gemm-like" | Kernels.Gemv_like -> "gemv-like");
          Pretty.si_float r.host.Flow.energy_j ^ "J";
          Pretty.si_float r.cim.Flow.energy_j ^ "J";
          Pretty.fixed ~digits:2 r.energy_improvement ^ "x";
          Pretty.fixed ~digits:2 r.edp_improvement ^ "x";
          Pretty.fixed ~digits:2 r.perf_improvement ^ "x";
          Pretty.fixed ~digits:0 r.macs_per_cim_write;
          Pretty.si_float r.max_abs_error;
        ])
      rows
  in
  Pretty.print ~columns ~rows:body;
  Printf.printf "Geomean energy improvement:           %.2fx (paper: 32.6x)\n"
    summary.geomean_energy_improvement;
  Printf.printf "Selective geomean energy improvement: %.2fx (paper: 3.2x selective plot)\n"
    summary.selective_geomean_energy_improvement;
  Printf.printf "Geomean EDP improvement:              %.2fx\n" summary.geomean_edp_improvement;
  Printf.printf "Max EDP improvement:                  %.2fx (paper: 612x)\n"
    summary.max_edp_improvement;
  if breakdown then begin
    print_newline ();
    print_fig6_breakdown rows
  end

let print_fig6 ?(dataset = Dataset.Medium) ?breakdown () =
  print_fig6_results ~n:(Dataset.n dataset) ?breakdown (fig6 ~dataset ())
