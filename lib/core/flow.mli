(** The end-to-end TDO-CIM compilation flow (paper Fig. 4): mini-C
    front end -> IR -> Polly-style SCoP detection -> Loop Tactics
    matching, fusion, tiling and offload -> IR with runtime calls ->
    timed execution on the emulated full system.

    [o3] corresponds to the paper's host compile string
    ["clang -O3 -march-native"], [o3_loop_tactics] to
    ["clang -O3 -march-native -enable-loop-tactics"]. *)

module Ir = Tdo_ir.Ir
module Interp = Tdo_lang.Interp
module Platform = Tdo_runtime.Platform
module Offload = Tdo_tactics.Offload
module Ledger = Tdo_energy.Ledger

module Pipeline = Tdo_tactics.Pipeline
module Diag = Tdo_analysis.Diag

type options = { enable_loop_tactics : bool; tactics : Offload.config }

val o3 : options
val o3_loop_tactics : options

exception Verification_failure of Diag.t list
(** Raised by {!compile} with [~verify:true] when the analysis layer
    found errors. *)

type compiled = {
  func : Ir.func;
  outcome : Pipeline.outcome option;  (** [None] when loop tactics were disabled *)
  diagnostics : Diag.t list;
}

val compile_checked :
  ?options:options ->
  ?resolve_config:(Tdo_lang.Ast.func -> Offload.config option) ->
  ?verify:bool ->
  string ->
  compiled
(** Like {!compile} but surfacing the pipeline outcome and every
    diagnostic instead of raising. With tactics disabled and
    [~verify:true] the input IR is still verified.

    [resolve_config] is consulted once the source is parsed and may
    replace [options.tactics] for this kernel — the hook the autotuning
    database ({!Tdo_tune.Db}) hangs per-kernel configurations off
    without this layer depending on the tuner. *)

val compile :
  ?options:options ->
  ?resolve_config:(Tdo_lang.Ast.func -> Offload.config option) ->
  ?verify:bool ->
  string ->
  Ir.func * Offload.report option
(** Parse, type-check, lower and (optionally) run the tactics
    pipeline on a single-function translation unit. Raises the
    front-end exceptions on malformed source, and
    {!Verification_failure} when [~verify:true] (default off) and
    verification rejects the compile. *)

type measurement = {
  roi_instructions : int;
  roi_cycles : int;
  time_s : float;  (** ROI wall-clock in simulated seconds *)
  energy : Ledger.breakdown;
  energy_j : float;
  edp_js : float;
  used_cim : bool;
  launches : int;
  cim_macs : int;
  cim_write_bytes : int;
  macs_per_cim_write : float;  (** 0 when nothing was offloaded *)
}

val run :
  ?platform_config:Platform.config ->
  Ir.func ->
  args:(string * Interp.value) list ->
  measurement * Platform.t
(** Execute on a fresh platform; [Varray] arguments are mutated with
    the results.

    Each call resets the calling domain's scratch arena
    ({!Tdo_util.Pool.scratch}) and backs the platform's memory chunks,
    crossbar planes, engine buffers and executor slot tables with it,
    so repeated runs on one domain reuse the same blocks. Consequently
    the returned platform's {e counters} remain valid indefinitely, but
    its memory {e contents} are only safe to read until the next [run]
    on the same domain — or, for a run inside a
    {!Tdo_util.Pool.parallel_map} worker, until the map's next fan-out
    (worker arenas circulate through a shared registry). Set
    [TDO_ARENA=0] to disable the reuse (fresh allocations, the
    pre-arena behaviour); the variable is re-read on every call. *)

val run_source :
  ?options:options ->
  ?resolve_config:(Tdo_lang.Ast.func -> Offload.config option) ->
  ?platform_config:Platform.config ->
  string ->
  args:(string * Interp.value) list ->
  measurement * Platform.t
(** [compile] followed by [run]. *)
