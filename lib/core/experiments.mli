(** Regeneration of every table and figure of the paper's evaluation.
    Each function returns plain data; [print_*] renders the paper-style
    text table. The experiment index lives in DESIGN.md; measured
    values vs paper values are recorded in EXPERIMENTS.md. *)

module Dataset = Tdo_polybench.Dataset
module Kernels = Tdo_polybench.Kernels
module Timeline = Tdo_cimacc.Timeline

(** {1 Table I — system configuration} *)

val table1 : unit -> (string * string) list
val print_table1 : unit -> unit

(** {1 Fig. 1 — PCM programming pulses} *)

val fig1 : unit -> (string * (float * float) list) list
(** [(pulse name, (time ns, temperature K) trace)] for reset, set and
    read pulses. *)

val print_fig1 : unit -> unit

(** {1 Fig. 2(d) — offload timeline} *)

val fig2d : ?n:int -> unit -> Timeline.event list
(** Timeline of one transparent GEMM offload (default 16x16x16). *)

val print_fig2d : ?n:int -> unit -> unit

(** {1 Fig. 5 — lifetime vs cell endurance} *)

type fig5_row = {
  endurance_millions : float;
  naive_years : float;
  smart_years : float;
}

type fig5_meta = {
  naive_write_bytes : int;
  smart_write_bytes : int;
  naive_traffic_bytes_per_s : float;
  smart_traffic_bytes_per_s : float;
  crossbar_bytes : int;
}

val fig5 :
  ?endurances_millions:float list -> ?n:int -> ?seed:int -> unit -> fig5_row list * fig5_meta
(** Listing-2 workload (two GEMMs sharing A, [n x n] matrices of 4096
    elements by default): measured crossbar write traffic under the
    naive and smart mappings, fed through Eq. 1 with the 512 KB
    crossbar. *)

val print_fig5 : ?n:int -> unit -> unit

(** {1 Fig. 6 — energy and EDP across PolyBench} *)

type fig6_row = {
  kernel : string;
  kind : Kernels.kind;
  host : Flow.measurement;
  cim : Flow.measurement;
  energy_improvement : float;  (** host / host+CIM; > 1 means CIM wins *)
  edp_improvement : float;
  perf_improvement : float;
  macs_per_cim_write : float;
  max_abs_error : float;  (** offloaded vs host results *)
}

type fig6_summary = {
  geomean_energy_improvement : float;
  selective_geomean_energy_improvement : float;
      (** GEMV-like kernels kept on the host (improvement 1x), as in
          the paper's "Selective Geomean" column *)
  geomean_edp_improvement : float;
  max_edp_improvement : float;
}

val fig6 : ?dataset:Dataset.t -> ?seed:int -> unit -> fig6_row list * fig6_summary
(** Runs every kernel twice (host-only and TDO-CIM) on fresh
    platforms. Default dataset: [Medium]. *)

val print_fig6 : ?dataset:Dataset.t -> ?breakdown:bool -> unit -> unit
(** [breakdown] additionally prints each host+CIM run's energy split
    into the Table-I components (host side, crossbar compute/write,
    mixed signal, buffers, digital, DMA/engine). *)

val print_fig6_results : n:int -> ?breakdown:bool -> fig6_row list * fig6_summary -> unit
(** Render already-computed {!fig6} results — lets a sweep compute
    several datasets in parallel and print them in order. *)
