(** One pooled fleet device behind a {!Tdo_backend.Backend.profile}.

    For the CIM classes (analog PCM crossbar, digital SRAM tile) a
    device is a full emulated platform (its own event queue, memory,
    bus, caches and CIM accelerator) that is {e reused} across requests
    instead of being rebuilt per run. Reuse is what makes a device a
    device: crossbar wear accumulates over its lifetime exactly as it
    would in a physical tile, which is the signal the pool's
    endurance-aware dispatch spreads writes with. Two pieces of state
    must not leak between tenants, and [run] clears or compensates for
    both: the engine's pinned-operand latch is invalidated (a fresh
    runtime instance restarts its generation counter, so a stale latch
    could alias a new tenant's buffer at a recycled CMA address), and
    ROI/crossbar counters are read as deltas around each run.

    A host-class device builds no emulated machine — it {e is} the
    host: {!run_host} executes the type-checked AST through the
    reference interpreter under the profile's per-MAC cost curve. A
    dual-mode device additionally carries a {!Tdo_backend.Backend.mode}
    the scheduler flips as load demands, with every flip counted.

    Every run is priced against the profile's Table-I-style energy
    table; {!energy_j} is the device's lifetime total. *)

module Platform = Tdo_runtime.Platform
module Flow = Tdo_cim.Flow
module Interp = Tdo_lang.Interp
module Ast = Tdo_lang.Ast
module Backend = Tdo_backend.Backend

type exec_stats = {
  service_ps : int;  (** simulated ROI time of this request *)
  roi_instructions : int;
  used_cim : bool;
  launches : int;
  write_bytes : int;  (** matrix bytes programmed into this device's crossbars *)
  cell_writes : int;  (** physical write pulses, summed over tiles *)
  macs : int;
  energy_j : float;  (** this run's energy under the profile's table *)
  abft_checks : int;  (** GEMV checksum verifications during this run *)
  abft_mismatches : int;  (** detected corruptions during this run *)
  abft_fault : (int * (int * int * int * int)) option;
      (** [(tile, (row_off, col_off, rows, cols))] localisation of the
          last mismatch, [None] if the run was clean *)
}

type wear = {
  total_cell_writes : int;  (** lifetime write pulses, summed over tiles *)
  max_per_cell : int;  (** hottest cell across tiles *)
  per_tile_cell_writes : int array;
  per_tile_write_bytes : int array;
  worn_out_fraction : float;
  leveling : Tdo_pcm.Wear_leveling.stats;
      (** the device's Start-Gap remap view of its row-write stream *)
  budget_consumed : float;  (** Eq. 1 write-budget fraction, uniform-wear assumption *)
}

type t

val create :
  ?platform_config:Platform.config ->
  ?cell_endurance:float ->
  ?seed:int ->
  ?backend:Backend.profile ->
  id:int ->
  unit ->
  t
(** Fresh device of class [backend] (default {!Backend.pcm}, the
    paper's analog crossbar). The profile reshapes [platform_config]
    (class latencies; digital tiles are noise-immune) before the
    emulated machine is built; host-class devices build none.
    [cell_endurance] (default: the profile's) parameterises the Eq. 1
    budget model. [seed] (default [id]) selects the device's
    reproducible PRNG stream — distinct per pooled device out of the
    box. Dual-mode devices start in [Memory_mode]. *)

val id : t -> int

val profile : t -> Backend.profile
val device_class : t -> Backend.device_class

val platform : t -> Platform.t
(** The emulated machine. Raises [Invalid_argument] on a host-class
    device, which has none. *)

val available_ps : t -> int
(** Virtual time at which the device is free; maintained by the
    scheduler via {!set_available_ps}. *)

val set_available_ps : t -> int -> unit

val requests_served : t -> int

val is_quarantined : t -> bool
(** Pulled from dispatch after repeated detected corruptions. *)

val quarantine : t -> rows:int * int -> unit
(** Take the device out of rotation and mark the
    [(row_off, nrows)] region's current physical lines dead in its
    Start-Gap remapper, so any residual traffic is routed away from the
    faulty rows. *)

val write_pressure : t -> int
(** Matrix bytes written to this device's crossbars so far — the O(1)
    {!Tdo_pcm.Endurance.Tracker} counter the scheduler breaks placement
    ties with. (The full {!wear} snapshot walks every cell and is for
    end-of-run reporting, not the dispatch hot path.) *)

val energy_j : t -> float
(** Lifetime energy this device has consumed, priced per run against
    its profile's energy table. *)

val mode : t -> Backend.mode
(** Current dual-mode role; non-dual devices are always
    [Compute_mode]. *)

val convert : ?at_ps:int -> t -> to_compute:bool -> float
(** Flip a dual-mode device's role and count the conversion. The
    scheduler charges the profile's conversion latency and emits the
    telemetry event. Any pinned-weight residency is dropped — the role
    switch rebuilds the tile's peripheral state. When [at_ps] is given,
    the drafted interval is tracked: a revert returns the memory-role
    bytes the tile displaced while in the compute role (priced at the
    profile's [memory_bw_bytes_per_us]); a draft returns [0.]. *)

val conversions : t -> int * int
(** [(to_compute, to_memory)] lifetime conversion counts. *)

val resident : t -> string option
(** Residency key of the graph program whose weight tiles are still
    pinned from the previous run, [None] when the latches are invalid.
    Set by {!run} on clean completion, dropped by {!convert},
    {!quarantine}, {!clear_resident} and any non-matching run. *)

val clear_resident : t -> unit
(** Invalidate the residency claim (the scheduler calls this when the
    backing cache entry is evicted). The engine latches themselves are
    invalidated lazily by the next {!run}. *)

val displaced_mem_bytes : t -> float
(** Lifetime memory-role traffic this dual tile gave up while drafted
    for compute; [0.] for non-dual profiles. *)

val finalize_displacement : t -> at_ps:int -> float
(** Charge any still-open drafted interval up to [at_ps] (end of
    replay) and return the newly charged bytes; idempotent per
    instant. *)

val run :
  ?residency:string -> t -> Flow.compiled -> args:(string * Interp.value) list -> exec_stats
(** Execute one compiled request on this CIM device, mutating [Varray]
    arguments with the results. [residency] names the (model, tenant)
    program this run replays: when it matches the device's current
    {!resident} key the pinned-operand latches are kept — the run
    re-derives identical (address, generation) pin keys and would
    re-program identical model-seeded weight bytes, so programming is
    skipped with bit-identical results ([exec_stats.write_bytes] = 0).
    Any other run (no key, different key) invalidates the latches
    first, exactly as before. On clean completion the key (if any) is
    latched for the next run. Raises {!Tdo_ir.Exec.Exec_error} on a
    device rejection; the device stays usable. Raises
    [Invalid_argument] on a host-class device — use {!run_host}. *)

val run_host :
  t -> ast:Ast.func -> args:(string * Interp.value) list -> macs:int -> exec_stats
(** Execute one request on a host-class device: the reference
    interpreter runs [ast], service time is the profile's
    [cpu_ps_per_mac] x [macs], and energy is priced at the Table I host
    instruction rate. Interpreter failures surface as
    {!Tdo_ir.Exec.Exec_error}. *)

val wear : t -> wear
(** Read-only wear snapshot. Zero cell counters for classes that do not
    wear (digital SRAM, host). *)

val lifetime_years : t -> elapsed_s:float -> float option
(** Eq. 1 lifetime extrapolated from this device's accumulated write
    traffic over [elapsed_s] of simulated serving time; [None] for
    classes that do not wear. *)
