module Time_base = Tdo_sim.Time_base
module Stats = Tdo_util.Stats

type outcome =
  | Completed
  | Cpu_fallback
  | Recovered_host
  | Rejected_overloaded
  | Failed of string

type record = {
  request : Trace.request;
  outcome : outcome;
  device : int option;
  profile : string option;
  batch : int option;
  cache_hit : bool;
  queue_depth : int;
  start_ps : int;
  finish_ps : int;
  service_ps : int;
  retries : int;
  tuned : bool;
  checksum : string option;
}

let latency_ps r = r.finish_ps - r.request.Trace.arrival_ps

(* Bucket a record lands in for per-class accounting: the fleet
   profile that produced it, "host" for interpreter degradations, and
   "unplaced" for outcomes that never reached a device. *)
let profile_bucket r =
  match (r.profile, r.outcome) with
  | Some p, _ -> p
  | None, (Cpu_fallback | Recovered_host) -> "host"
  | None, _ -> "unplaced"

type conversion = {
  at_ps : int;
  conv_device : int;
  conv_profile : string;
  to_compute : bool;  (** [false] = reverted to the plain-memory role *)
}

type t = {
  mutable records : record list;  (** reverse order of recording *)
  mutable depth_samples : (int * int) list;  (** (at_ps, depth), reverse *)
  mutable conversions : conversion list;  (** reverse order *)
}

let create () = { records = []; depth_samples = []; conversions = [] }
let record t r = t.records <- r :: t.records

let sample_queue_depth t ~at_ps ~depth =
  t.depth_samples <- (at_ps, depth) :: t.depth_samples

let record_conversion t ~at_ps ~device ~profile ~to_compute =
  t.conversions <-
    { at_ps; conv_device = device; conv_profile = profile; to_compute } :: t.conversions

let conversions t = List.rev t.conversions

let records t =
  List.sort (fun a b -> compare a.request.Trace.id b.request.Trace.id) t.records

let count t outcome =
  List.length
    (List.filter
       (fun r ->
         match (r.outcome, outcome) with
         | Completed, Completed | Cpu_fallback, Cpu_fallback -> true
         | Recovered_host, Recovered_host -> true
         | Rejected_overloaded, Rejected_overloaded -> true
         | Failed _, Failed _ -> true
         | _ -> false)
       t.records)

type summary = {
  requests : int;
  completed : int;
  completed_after_retry : int;
  cpu_fallbacks : int;
  recovered_host : int;
  rejected : int;
  failed : int;
  detected_corruptions : int;
  served_tuned : int;
  conversions_to_compute : int;
  conversions_to_memory : int;
}

let summary t =
  let to_compute, to_memory =
    List.fold_left
      (fun (c, m) conv -> if conv.to_compute then (c + 1, m) else (c, m + 1))
      (0, 0) t.conversions
  in
  List.fold_left
    (fun s r ->
      let s = { s with requests = s.requests + 1; detected_corruptions = s.detected_corruptions + r.retries } in
      match r.outcome with
      | Completed ->
          {
            s with
            completed = s.completed + 1;
            completed_after_retry = (s.completed_after_retry + if r.retries > 0 then 1 else 0);
            served_tuned = (s.served_tuned + if r.tuned then 1 else 0);
          }
      | Cpu_fallback -> { s with cpu_fallbacks = s.cpu_fallbacks + 1 }
      | Recovered_host -> { s with recovered_host = s.recovered_host + 1 }
      | Rejected_overloaded -> { s with rejected = s.rejected + 1 }
      | Failed _ -> { s with failed = s.failed + 1 })
    {
      requests = 0;
      completed = 0;
      completed_after_retry = 0;
      cpu_fallbacks = 0;
      recovered_host = 0;
      rejected = 0;
      failed = 0;
      detected_corruptions = 0;
      served_tuned = 0;
      conversions_to_compute = to_compute;
      conversions_to_memory = to_memory;
    }
    t.records

(* ---------- per-device-class breakdown ---------- *)

type class_counts = {
  served : int;  (** [Completed] on a device of this profile *)
  recovered : int;
  fallbacks : int;
  rejected : int;
  failed : int;
  retries_against : int;  (** corrupt attempts charged to this profile's devices *)
  to_compute : int;  (** dual-mode conversions into the compute role *)
  to_memory : int;
}

let empty_class_counts =
  {
    served = 0;
    recovered = 0;
    fallbacks = 0;
    rejected = 0;
    failed = 0;
    retries_against = 0;
    to_compute = 0;
    to_memory = 0;
  }

let class_summary t =
  let table : (string, class_counts) Hashtbl.t = Hashtbl.create 8 in
  let bump bucket f =
    let cur = Option.value ~default:empty_class_counts (Hashtbl.find_opt table bucket) in
    Hashtbl.replace table bucket (f cur)
  in
  List.iter
    (fun r ->
      let bucket = profile_bucket r in
      let bump' f = bump bucket f in
      match r.outcome with
      | Completed ->
          bump' (fun c ->
              { c with served = c.served + 1; retries_against = c.retries_against + r.retries })
      | Cpu_fallback -> bump' (fun c -> { c with fallbacks = c.fallbacks + 1 })
      | Recovered_host ->
          bump' (fun c ->
              { c with recovered = c.recovered + 1; retries_against = c.retries_against + r.retries })
      | Rejected_overloaded -> bump' (fun c -> { c with rejected = c.rejected + 1 })
      | Failed _ -> bump' (fun c -> { c with failed = c.failed + 1 }))
    t.records;
  List.iter
    (fun conv ->
      bump conv.conv_profile (fun c ->
          if conv.to_compute then { c with to_compute = c.to_compute + 1 }
          else { c with to_memory = c.to_memory + 1 }))
    t.conversions;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let served_latencies_us ?profile t =
  List.filter_map
    (fun r ->
      let keep =
        match profile with None -> true | Some p -> profile_bucket r = p
      in
      match r.outcome with
      | (Completed | Cpu_fallback | Recovered_host) when keep ->
          Some (float_of_int (latency_ps r) /. float_of_int Time_base.ps_per_us)
      | _ -> None)
    t.records

let latency_percentile ?profile t ~p =
  match served_latencies_us ?profile t with [] -> None | xs -> Some (Stats.percentile xs ~p)

let mean_latency_us ?profile t =
  match served_latencies_us ?profile t with [] -> None | xs -> Some (Stats.mean xs)

let max_queue_depth t = List.fold_left (fun acc (_, d) -> max acc d) 0 t.depth_samples

(* ---------- Chrome trace events ---------- *)

let us_of_ps ps = float_of_int ps /. float_of_int Time_base.ps_per_us

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let chrome_trace t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "[";
  let first = ref true in
  let event fmt =
    Printf.ksprintf
      (fun s ->
        if not !first then Buffer.add_string b ",\n";
        first := false;
        Buffer.add_string b s)
      fmt
  in
  List.iter
    (fun r ->
      let name =
        escape (Printf.sprintf "%s/%d#%d" r.request.Trace.kernel r.request.Trace.n r.request.Trace.id)
      in
      match r.outcome with
      | Completed ->
          event
            {|{"name":"%s","ph":"X","ts":%.3f,"dur":%.3f,"pid":1,"tid":%d,"args":{"class":"%s","cache_hit":%b,"queue_depth":%d}}|}
            name (us_of_ps r.start_ps)
            (us_of_ps (r.finish_ps - r.start_ps))
            (match r.device with Some d -> d | None -> -1)
            (escape (profile_bucket r)) r.cache_hit r.queue_depth
      | Cpu_fallback ->
          event {|{"name":"%s (cpu)","ph":"X","ts":%.3f,"dur":%.3f,"pid":2,"tid":0}|} name
            (us_of_ps r.start_ps)
            (us_of_ps (r.finish_ps - r.start_ps))
      | Recovered_host ->
          event
            {|{"name":"%s (recovered, %d retries)","ph":"X","ts":%.3f,"dur":%.3f,"pid":2,"tid":0}|}
            name r.retries (us_of_ps r.start_ps)
            (us_of_ps (r.finish_ps - r.start_ps))
      | Rejected_overloaded ->
          event {|{"name":"%s rejected","ph":"i","ts":%.3f,"pid":2,"tid":1,"s":"g"}|} name
            (us_of_ps r.finish_ps)
      | Failed msg ->
          event {|{"name":"%s failed: %s","ph":"i","ts":%.3f,"pid":2,"tid":1,"s":"g"}|} name
            (escape msg) (us_of_ps r.finish_ps))
    (records t);
  (* dual-mode role switches land on their device's track, so a trace
     viewer shows exactly when a tile joined or left the compute pool *)
  List.iter
    (fun conv ->
      event
        {|{"name":"%s: convert to %s","ph":"i","ts":%.3f,"pid":1,"tid":%d,"s":"t"}|}
        (escape conv.conv_profile)
        (if conv.to_compute then "compute" else "memory")
        (us_of_ps conv.at_ps) conv.conv_device)
    (List.rev t.conversions);
  List.iter
    (fun (at_ps, depth) ->
      event {|{"name":"queue","ph":"C","ts":%.3f,"pid":1,"tid":0,"args":{"depth":%d}}|}
        (us_of_ps at_ps) depth)
    (List.rev t.depth_samples);
  (* one closing instant event carrying the per-outcome counters, so a
     trace viewer shows the run's totals without the JSON report *)
  let s = summary t in
  let last_finish = List.fold_left (fun acc r -> max acc r.finish_ps) 0 t.records in
  event
    {|{"name":"outcome-summary","ph":"i","ts":%.3f,"pid":1,"tid":0,"s":"g","args":{"requests":%d,"completed":%d,"completed_after_retry":%d,"cpu_fallbacks":%d,"recovered_host":%d,"rejected":%d,"failed":%d,"detected_corruptions":%d,"served_tuned":%d,"conversions_to_compute":%d,"conversions_to_memory":%d}}|}
    (us_of_ps last_finish) s.requests s.completed s.completed_after_retry s.cpu_fallbacks
    s.recovered_host s.rejected s.failed s.detected_corruptions s.served_tuned
    s.conversions_to_compute s.conversions_to_memory;
  (* and one per device class, so mixed-fleet runs are debuggable from
     the trace alone *)
  List.iter
    (fun (profile, (c : class_counts)) ->
      event
        {|{"name":"class-summary %s","ph":"i","ts":%.3f,"pid":1,"tid":0,"s":"g","args":{"served":%d,"recovered":%d,"cpu_fallbacks":%d,"rejected":%d,"failed":%d,"retries_against":%d,"conversions_to_compute":%d,"conversions_to_memory":%d}}|}
        (escape profile) (us_of_ps last_finish) c.served c.recovered c.fallbacks c.rejected
        c.failed c.retries_against c.to_compute c.to_memory)
    (class_summary t);
  Buffer.add_string b "]\n";
  Buffer.contents b

let write_chrome_trace t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (chrome_trace t))
