module Time_base = Tdo_sim.Time_base
module Stats = Tdo_util.Stats

type shed_reason = Rate_limited | Load_shed

let shed_reason_name = function
  | Rate_limited -> "rate_limited"
  | Load_shed -> "load_shed"

type outcome =
  | Completed
  | Cpu_fallback
  | Recovered_host
  | Rejected_overloaded
  | Shed of shed_reason
  | Failed of string

type record = {
  request : Trace.request;
  outcome : outcome;
  device : int option;
  profile : string option;
  batch : int option;
  cache_hit : bool;
  queue_depth : int;
  start_ps : int;
  finish_ps : int;
  service_ps : int;
  retries : int;
  tuned : bool;
  write_bytes : int;
  checksum : string option;
}

let latency_ps r = r.finish_ps - r.request.Trace.arrival_ps

(* Bucket a record lands in for per-class accounting: the fleet
   profile that produced it, "host" for interpreter degradations, and
   "unplaced" for outcomes that never reached a device. *)
let profile_bucket r =
  match (r.profile, r.outcome) with
  | Some p, _ -> p
  | None, (Cpu_fallback | Recovered_host) -> "host"
  | None, _ -> "unplaced"

let served r =
  match r.outcome with Completed | Cpu_fallback | Recovered_host -> true | _ -> false

let shed r = match r.outcome with Shed _ | Rejected_overloaded -> true | _ -> false

type conversion = {
  at_ps : int;
  conv_device : int;
  conv_profile : string;
  to_compute : bool;  (** [false] = reverted to the plain-memory role *)
  displaced_bytes : float;
      (** memory-role traffic forgone over the drafted interval a
          revert closes; [0.] on drafts *)
}

type t = {
  mutable records : record list;  (** reverse order of recording *)
  mutable depth_samples : (int * int) list;  (** (at_ps, depth), reverse *)
  mutable conversions : conversion list;  (** reverse order *)
  mutable observer : (record -> unit) option;
}

let create ?observer () =
  { records = []; depth_samples = []; conversions = []; observer }

let set_observer t obs = t.observer <- obs

let record t r =
  t.records <- r :: t.records;
  match t.observer with Some f -> f r | None -> ()

let sample_queue_depth t ~at_ps ~depth =
  t.depth_samples <- (at_ps, depth) :: t.depth_samples

let record_conversion ?(displaced_bytes = 0.0) t ~at_ps ~device ~profile ~to_compute =
  t.conversions <-
    { at_ps; conv_device = device; conv_profile = profile; to_compute; displaced_bytes }
    :: t.conversions

let conversions t = List.rev t.conversions

let records t =
  List.sort (fun a b -> compare a.request.Trace.id b.request.Trace.id) t.records

let count t outcome =
  List.length
    (List.filter
       (fun r ->
         match (r.outcome, outcome) with
         | Completed, Completed | Cpu_fallback, Cpu_fallback -> true
         | Recovered_host, Recovered_host -> true
         | Rejected_overloaded, Rejected_overloaded -> true
         | Shed _, Shed _ -> true
         | Failed _, Failed _ -> true
         | _ -> false)
       t.records)

type summary = {
  requests : int;
  completed : int;
  completed_after_retry : int;
  cpu_fallbacks : int;
  recovered_host : int;
  rejected : int;
  shed_rate_limited : int;
  shed_load : int;
  failed : int;
  detected_corruptions : int;
  served_tuned : int;
  conversions_to_compute : int;
  conversions_to_memory : int;
}

let summary t =
  let to_compute, to_memory =
    List.fold_left
      (fun (c, m) conv -> if conv.to_compute then (c + 1, m) else (c, m + 1))
      (0, 0) t.conversions
  in
  List.fold_left
    (fun s r ->
      let s = { s with requests = s.requests + 1; detected_corruptions = s.detected_corruptions + r.retries } in
      match r.outcome with
      | Completed ->
          {
            s with
            completed = s.completed + 1;
            completed_after_retry = (s.completed_after_retry + if r.retries > 0 then 1 else 0);
            served_tuned = (s.served_tuned + if r.tuned then 1 else 0);
          }
      | Cpu_fallback -> { s with cpu_fallbacks = s.cpu_fallbacks + 1 }
      | Recovered_host -> { s with recovered_host = s.recovered_host + 1 }
      | Rejected_overloaded -> { s with rejected = s.rejected + 1 }
      | Shed Rate_limited -> { s with shed_rate_limited = s.shed_rate_limited + 1 }
      | Shed Load_shed -> { s with shed_load = s.shed_load + 1 }
      | Failed _ -> { s with failed = s.failed + 1 })
    {
      requests = 0;
      completed = 0;
      completed_after_retry = 0;
      cpu_fallbacks = 0;
      recovered_host = 0;
      rejected = 0;
      shed_rate_limited = 0;
      shed_load = 0;
      failed = 0;
      detected_corruptions = 0;
      served_tuned = 0;
      conversions_to_compute = to_compute;
      conversions_to_memory = to_memory;
    }
    t.records

(* ---------- per-device-class breakdown ---------- *)

type class_counts = {
  served : int;  (** [Completed] on a device of this profile *)
  recovered : int;
  fallbacks : int;
  rejected : int;
  shed : int;  (** admission sheds (always in the ["unplaced"] bucket) *)
  failed : int;
  retries_against : int;  (** corrupt attempts charged to this profile's devices *)
  to_compute : int;  (** dual-mode conversions into the compute role *)
  to_memory : int;
  class_write_bytes : int;  (** crossbar programming traffic of completed requests *)
  class_displaced_bytes : float;
      (** memory-role bandwidth this profile's dual tiles gave up while
          drafted (charged on reverts) *)
}

let empty_class_counts =
  {
    served = 0;
    recovered = 0;
    fallbacks = 0;
    rejected = 0;
    shed = 0;
    failed = 0;
    retries_against = 0;
    to_compute = 0;
    to_memory = 0;
    class_write_bytes = 0;
    class_displaced_bytes = 0.0;
  }

let class_summary t =
  let table : (string, class_counts) Hashtbl.t = Hashtbl.create 8 in
  let bump bucket f =
    let cur = Option.value ~default:empty_class_counts (Hashtbl.find_opt table bucket) in
    Hashtbl.replace table bucket (f cur)
  in
  List.iter
    (fun r ->
      let bucket = profile_bucket r in
      let bump' f = bump bucket f in
      match r.outcome with
      | Completed ->
          bump' (fun c ->
              {
                c with
                served = c.served + 1;
                retries_against = c.retries_against + r.retries;
                class_write_bytes = c.class_write_bytes + r.write_bytes;
              })
      | Cpu_fallback -> bump' (fun c -> { c with fallbacks = c.fallbacks + 1 })
      | Recovered_host ->
          bump' (fun c ->
              { c with recovered = c.recovered + 1; retries_against = c.retries_against + r.retries })
      | Rejected_overloaded -> bump' (fun c -> { c with rejected = c.rejected + 1 })
      | Shed _ -> bump' (fun c -> { c with shed = c.shed + 1 })
      | Failed _ -> bump' (fun c -> { c with failed = c.failed + 1 }))
    t.records;
  List.iter
    (fun conv ->
      bump conv.conv_profile (fun c ->
          let c =
            { c with class_displaced_bytes = c.class_displaced_bytes +. conv.displaced_bytes }
          in
          if conv.to_compute then { c with to_compute = c.to_compute + 1 }
          else { c with to_memory = c.to_memory + 1 }))
    t.conversions;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ---------- per-SLO-class / per-tenant breakdown ---------- *)

type slo_counts = {
  slo_requests : int;
  slo_served : int;  (** completed + degraded-but-answered *)
  slo_shed : int;  (** admission sheds + queue-overflow rejections *)
  slo_failed : int;
  slo_p50_us : float;  (** latency over this class's served requests; 0 if none *)
  slo_p99_us : float;
}

let us_of_ps ps = float_of_int ps /. float_of_int Time_base.ps_per_us

let group_counts key_of t =
  let table = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let key = key_of r in
      let reqs, srv, shd, fld, lats =
        Option.value ~default:(0, 0, 0, 0, []) (Hashtbl.find_opt table key)
      in
      let srv, lats =
        if served r then (srv + 1, us_of_ps (latency_ps r) :: lats) else (srv, lats)
      in
      let shd = if shed r then shd + 1 else shd in
      let fld = match r.outcome with Failed _ -> fld + 1 | _ -> fld in
      Hashtbl.replace table key (reqs + 1, srv, shd, fld, lats))
    t.records;
  Hashtbl.fold
    (fun key (reqs, srv, shd, fld, lats) acc ->
      ( key,
        {
          slo_requests = reqs;
          slo_served = srv;
          slo_shed = shd;
          slo_failed = fld;
          slo_p50_us = (if lats = [] then 0.0 else Stats.percentile lats ~p:50.0);
          slo_p99_us = (if lats = [] then 0.0 else Stats.percentile lats ~p:99.0);
        } )
      :: acc)
    table []

let slo_summary t =
  group_counts (fun r -> r.request.Trace.slo) t
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let tenant_summary t =
  group_counts (fun r -> r.request.Trace.tenant) t
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ---------- time-windowed views ---------- *)

type window = {
  w_index : int;
  w_start_us : float;
  w_arrivals : int;  (** requests whose arrival falls in the window *)
  w_served : int;  (** requests answered (finish) in the window *)
  w_shed : int;  (** admission sheds + rejections in the window *)
  w_p50_us : float;  (** latency of requests finishing in the window *)
  w_p99_us : float;
  w_throughput_rps : float;  (** served per second of window time *)
  w_max_depth : int;  (** deepest queue sample in the window *)
  w_slo_served : (Trace.slo * int) list;
  w_slo_shed : (Trace.slo * int) list;
}

(* Accumulator for one window; records land by finish time, arrivals
   by arrival time, so a long-latency request counts as an arrival in
   an earlier window than its service. *)
type window_acc = {
  mutable a_arrivals : int;
  mutable a_served : int;
  mutable a_shed : int;
  mutable a_lats : float list;
  mutable a_max_depth : int;
  a_slo_served : (Trace.slo, int) Hashtbl.t;
  a_slo_shed : (Trace.slo, int) Hashtbl.t;
}

let new_acc () =
  {
    a_arrivals = 0;
    a_served = 0;
    a_shed = 0;
    a_lats = [];
    a_max_depth = 0;
    a_slo_served = Hashtbl.create 4;
    a_slo_shed = Hashtbl.create 4;
  }

let acc_window accs window_ps at_ps =
  let idx = if at_ps < 0 then 0 else at_ps / window_ps in
  match Hashtbl.find_opt accs idx with
  | Some a -> a
  | None ->
      let a = new_acc () in
      Hashtbl.add accs idx a;
      a

let bump_slo table slo =
  Hashtbl.replace table slo (1 + Option.value ~default:0 (Hashtbl.find_opt table slo))

let window_of_acc ~window_ps idx (a : window_acc) =
  let slo_list table =
    List.filter_map
      (fun slo ->
        match Hashtbl.find_opt table slo with Some n -> Some (slo, n) | None -> None)
      Trace.all_slos
  in
  {
    w_index = idx;
    w_start_us = us_of_ps (idx * window_ps);
    w_arrivals = a.a_arrivals;
    w_served = a.a_served;
    w_shed = a.a_shed;
    w_p50_us = (if a.a_lats = [] then 0.0 else Stats.percentile a.a_lats ~p:50.0);
    w_p99_us = (if a.a_lats = [] then 0.0 else Stats.percentile a.a_lats ~p:99.0);
    w_throughput_rps =
      float_of_int a.a_served /. (float_of_int window_ps /. 1e12);
    w_max_depth = a.a_max_depth;
    w_slo_served = slo_list a.a_slo_served;
    w_slo_shed = slo_list a.a_slo_shed;
  }

let windows ?(window_us = 10_000.0) t =
  if window_us <= 0.0 then invalid_arg "Telemetry.windows: window_us must be positive";
  let window_ps = max 1 (int_of_float (window_us *. float_of_int Time_base.ps_per_us)) in
  let accs : (int, window_acc) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let arr = acc_window accs window_ps r.request.Trace.arrival_ps in
      arr.a_arrivals <- arr.a_arrivals + 1;
      arr.a_max_depth <- max arr.a_max_depth r.queue_depth;
      let fin = acc_window accs window_ps r.finish_ps in
      if served r then begin
        fin.a_served <- fin.a_served + 1;
        fin.a_lats <- us_of_ps (latency_ps r) :: fin.a_lats;
        bump_slo fin.a_slo_served r.request.Trace.slo
      end
      else if shed r then begin
        fin.a_shed <- fin.a_shed + 1;
        bump_slo fin.a_slo_shed r.request.Trace.slo
      end)
    t.records;
  List.iter
    (fun (at_ps, depth) ->
      let a = acc_window accs window_ps at_ps in
      a.a_max_depth <- max a.a_max_depth depth)
    t.depth_samples;
  Hashtbl.fold (fun idx a acc -> window_of_acc ~window_ps idx a :: acc) accs []
  |> List.sort (fun a b -> compare a.w_index b.w_index)

let format_window w =
  let slo_part name xs =
    match xs with
    | [] -> ""
    | xs ->
        Printf.sprintf " %s[%s]" name
          (String.concat ","
             (List.map (fun (slo, n) -> Printf.sprintf "%s:%d" (Trace.slo_name slo) n) xs))
  in
  Printf.sprintf
    "[w%04d t=%8.1fms] arrivals %5d served %5d shed %5d | p50 %8.1fus p99 %8.1fus | %8.0f \
     rps depth %3d%s%s"
    w.w_index (w.w_start_us /. 1000.0) w.w_arrivals w.w_served w.w_shed w.w_p50_us
    w.w_p99_us w.w_throughput_rps w.w_max_depth
    (slo_part "served" w.w_slo_served)
    (slo_part "shed" w.w_slo_shed)

(* Live observer: fold records into the current window's accumulator
   and emit the formatted line as soon as a record lands past the
   window's end. Records arrive in dispatch-wave order, which is only
   approximately time order, so stragglers for an already-emitted
   window are folded into the live one instead of reopening the past. *)
let live_view ?(window_us = 10_000.0) ~emit () =
  if window_us <= 0.0 then invalid_arg "Telemetry.live_view: window_us must be positive";
  let window_ps = max 1 (int_of_float (window_us *. float_of_int Time_base.ps_per_us)) in
  let current = ref 0 in
  let acc = ref (new_acc ()) in
  let flush upto =
    while !current < upto do
      if !acc.a_arrivals + !acc.a_served + !acc.a_shed > 0 then
        emit (format_window (window_of_acc ~window_ps !current !acc));
      acc := new_acc ();
      incr current
    done
  in
  fun (r : record) ->
    flush (max 0 r.finish_ps / window_ps);
    let a = !acc in
    a.a_arrivals <- a.a_arrivals + 1;
    a.a_max_depth <- max a.a_max_depth r.queue_depth;
    if served r then begin
      a.a_served <- a.a_served + 1;
      a.a_lats <- us_of_ps (latency_ps r) :: a.a_lats;
      bump_slo a.a_slo_served r.request.Trace.slo
    end
    else if shed r then begin
      a.a_shed <- a.a_shed + 1;
      bump_slo a.a_slo_shed r.request.Trace.slo
    end

let served_latencies_us ?profile t =
  List.filter_map
    (fun r ->
      let keep =
        match profile with None -> true | Some p -> profile_bucket r = p
      in
      match r.outcome with
      | (Completed | Cpu_fallback | Recovered_host) when keep ->
          Some (float_of_int (latency_ps r) /. float_of_int Time_base.ps_per_us)
      | _ -> None)
    t.records

let latency_percentile ?profile t ~p =
  match served_latencies_us ?profile t with [] -> None | xs -> Some (Stats.percentile xs ~p)

let mean_latency_us ?profile t =
  match served_latencies_us ?profile t with [] -> None | xs -> Some (Stats.mean xs)

let max_queue_depth t = List.fold_left (fun acc (_, d) -> max acc d) 0 t.depth_samples

(* ---------- Chrome trace events ---------- *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let chrome_trace t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "[";
  let first = ref true in
  let event fmt =
    Printf.ksprintf
      (fun s ->
        if not !first then Buffer.add_string b ",\n";
        first := false;
        Buffer.add_string b s)
      fmt
  in
  List.iter
    (fun r ->
      let name =
        escape (Printf.sprintf "%s/%d#%d" r.request.Trace.kernel r.request.Trace.n r.request.Trace.id)
      in
      match r.outcome with
      | Completed ->
          event
            {|{"name":"%s","ph":"X","ts":%.3f,"dur":%.3f,"pid":1,"tid":%d,"args":{"class":"%s","slo":"%s","tenant":%d,"cache_hit":%b,"queue_depth":%d}}|}
            name (us_of_ps r.start_ps)
            (us_of_ps (r.finish_ps - r.start_ps))
            (match r.device with Some d -> d | None -> -1)
            (escape (profile_bucket r))
            (Trace.slo_name r.request.Trace.slo)
            r.request.Trace.tenant r.cache_hit r.queue_depth
      | Cpu_fallback ->
          event {|{"name":"%s (cpu)","ph":"X","ts":%.3f,"dur":%.3f,"pid":2,"tid":0}|} name
            (us_of_ps r.start_ps)
            (us_of_ps (r.finish_ps - r.start_ps))
      | Recovered_host ->
          event
            {|{"name":"%s (recovered, %d retries)","ph":"X","ts":%.3f,"dur":%.3f,"pid":2,"tid":0}|}
            name r.retries (us_of_ps r.start_ps)
            (us_of_ps (r.finish_ps - r.start_ps))
      | Rejected_overloaded ->
          event {|{"name":"%s rejected","ph":"i","ts":%.3f,"pid":2,"tid":1,"s":"g"}|} name
            (us_of_ps r.finish_ps)
      | Shed reason ->
          event
            {|{"name":"%s shed (%s)","ph":"i","ts":%.3f,"pid":2,"tid":1,"s":"g","args":{"slo":"%s","tenant":%d}}|}
            name
            (shed_reason_name reason)
            (us_of_ps r.finish_ps)
            (Trace.slo_name r.request.Trace.slo)
            r.request.Trace.tenant
      | Failed msg ->
          event {|{"name":"%s failed: %s","ph":"i","ts":%.3f,"pid":2,"tid":1,"s":"g"}|} name
            (escape msg) (us_of_ps r.finish_ps))
    (records t);
  (* dual-mode role switches land on their device's track, so a trace
     viewer shows exactly when a tile joined or left the compute pool *)
  List.iter
    (fun conv ->
      event
        {|{"name":"%s: convert to %s","ph":"i","ts":%.3f,"pid":1,"tid":%d,"s":"t","args":{"displaced_bytes":%.0f}}|}
        (escape conv.conv_profile)
        (if conv.to_compute then "compute" else "memory")
        (us_of_ps conv.at_ps) conv.conv_device conv.displaced_bytes)
    (List.rev t.conversions);
  List.iter
    (fun (at_ps, depth) ->
      event {|{"name":"queue","ph":"C","ts":%.3f,"pid":1,"tid":0,"args":{"depth":%d}}|}
        (us_of_ps at_ps) depth)
    (List.rev t.depth_samples);
  (* one closing instant event carrying the per-outcome counters, so a
     trace viewer shows the run's totals without the JSON report *)
  let s = summary t in
  let last_finish = List.fold_left (fun acc r -> max acc r.finish_ps) 0 t.records in
  event
    {|{"name":"outcome-summary","ph":"i","ts":%.3f,"pid":1,"tid":0,"s":"g","args":{"requests":%d,"completed":%d,"completed_after_retry":%d,"cpu_fallbacks":%d,"recovered_host":%d,"rejected":%d,"shed_rate_limited":%d,"shed_load":%d,"failed":%d,"detected_corruptions":%d,"served_tuned":%d,"conversions_to_compute":%d,"conversions_to_memory":%d}}|}
    (us_of_ps last_finish) s.requests s.completed s.completed_after_retry s.cpu_fallbacks
    s.recovered_host s.rejected s.shed_rate_limited s.shed_load s.failed
    s.detected_corruptions s.served_tuned s.conversions_to_compute s.conversions_to_memory;
  (* and one per device class, so mixed-fleet runs are debuggable from
     the trace alone *)
  List.iter
    (fun (profile, (c : class_counts)) ->
      event
        {|{"name":"class-summary %s","ph":"i","ts":%.3f,"pid":1,"tid":0,"s":"g","args":{"served":%d,"recovered":%d,"cpu_fallbacks":%d,"rejected":%d,"shed":%d,"failed":%d,"retries_against":%d,"conversions_to_compute":%d,"conversions_to_memory":%d,"write_bytes":%d,"displaced_mem_bytes":%.0f}}|}
        (escape profile) (us_of_ps last_finish) c.served c.recovered c.fallbacks c.rejected
        c.shed c.failed c.retries_against c.to_compute c.to_memory c.class_write_bytes
        c.class_displaced_bytes)
    (class_summary t);
  (* and one per SLO class, mirroring the per-class shed/served
     accounting the admission layer is judged by *)
  List.iter
    (fun (slo, (c : slo_counts)) ->
      event
        {|{"name":"slo-summary %s","ph":"i","ts":%.3f,"pid":1,"tid":0,"s":"g","args":{"requests":%d,"served":%d,"shed":%d,"failed":%d,"p50_us":%.3f,"p99_us":%.3f}}|}
        (Trace.slo_name slo) (us_of_ps last_finish) c.slo_requests c.slo_served c.slo_shed
        c.slo_failed c.slo_p50_us c.slo_p99_us)
    (slo_summary t);
  Buffer.add_string b "]\n";
  Buffer.contents b

let write_chrome_trace t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (chrome_trace t))
