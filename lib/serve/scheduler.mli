(** The multi-tenant offload scheduler: bounded admission, batch
    coalescing, cost-based placement across a heterogeneous device
    fleet, deadlines with CPU-interpreter degradation.

    [replay] drives a {!Trace.t} through a virtual-time event loop.
    Requests are admitted into a bounded submission queue (overflow is
    {e backpressure}: the request is rejected with
    {!Telemetry.Rejected_overloaded}, never silently dropped). When
    devices are free, the dispatcher works head-of-queue first: it
    coalesces queued requests that share a (kernel, size) — they reuse
    one compiled-cache entry and pay the launch overhead once — and
    places each batch on the eligible free device with the lowest
    predicted cost. The prediction comes from the per-class cost-model
    coefficient sets ({!Tdo_tune.Cost_model.uncalibrated_for}) applied
    to the offload plan of the entry that class would actually run, so
    an analog crossbar, a digital SRAM tile and the host BLAS path each
    quote their own price; devices of classes that wear additionally
    pay a write-pressure bias ([wear_bias_ps_per_byte]), which is what
    spreads write traffic across the analog pool while leaving
    wear-free classes unpenalised. Ties break to the least-written,
    lowest-id device.

    {b Dual-mode tiles.} A fleet profile with
    {!Tdo_backend.Backend.profile.dual_mode} set serves as plain memory
    until the scheduler drafts it: when the queue is deeper than
    [convert_queue_threshold] (or the fleet has no always-compute
    device left), a memory-mode tile becomes eligible for placement,
    its conversion latency is added to its placement score and charged
    to the batch's start time, and the flip is counted in telemetry.
    Once the queue drains and the tile has idled for [revert_idle_ps],
    it reverts to the memory role (also counted).

    A request whose deadline has already passed when it reaches the
    head of the queue is not sent to a device at all: it degrades to
    the host reference interpreter (functionally exact, charged with a
    calibrated MAC-rate latency model).

    {b Recovery.} When a device's ABFT guard detects a corrupted
    offload (see {!Tdo_cimacc.Micro_engine} and {!Tdo_linalg.Abft}),
    the attempt's outputs are discarded but its virtual time is still
    charged. The scheduler then applies a three-stage policy: retry the
    request on a device that has not yet corrupted it (up to
    [recovery.max_attempts] attempts, each recorded in the request's
    [retries]); quarantine a device after [recovery.quarantine_after]
    detected corruptions — it leaves the dispatch rotation and its
    faulty rows are marked dead in its Start-Gap remapper; and finally
    degrade the request to the host interpreter
    ({!Telemetry.Recovered_host}) when attempts or devices run out.
    All of it happens in virtual time, so the golden oracle and the
    parallel==sequential determinism property keep holding.

    All scheduling decisions for a dispatch wave are taken {e before}
    the wave executes, so executing the wave's batches on worker
    domains ({!Tdo_util.Pool}) or sequentially produces bit-identical
    results and telemetry — the property the golden check and the
    qcheck determinism suite pin down. *)

module Platform = Tdo_runtime.Platform
module Flow = Tdo_cim.Flow
module Backend = Tdo_backend.Backend

type recovery = {
  max_attempts : int;  (** device attempts per request before host degradation; >= 1 *)
  quarantine_after : int;  (** detected corruptions before a device is pulled *)
}

val default_recovery : recovery
(** 3 attempts, quarantine after 2 corruptions. *)

type config = {
  devices : int;  (** pool size when [fleet] is [None]; >= 1 *)
  fleet : Backend.profile list option;
      (** device [i] gets profile [i] of the list; [None] = [devices]
          analog crossbars (the pre-fleet behaviour). Parse a
          command-line spec with {!Backend.parse_fleet}. *)
  platform_config : Platform.config;
      (** per-device platform base; each profile reshapes it
          (latencies, noise immunity) via {!Backend.platform_config} *)
  options : Flow.options;  (** compile options for the kernel cache *)
  cache_capacity : int;
  queue_capacity : int;  (** submission-queue bound; [<= 0] = unbounded *)
  batching : bool;
  max_batch : int;  (** requests coalesced per dispatch; >= 1 *)
  parallel : bool;  (** execute dispatch waves on the domain pool *)
  dispatch_overhead_ps : int;  (** per-batch launch cost (driver + syscall path) *)
  cpu_ps_per_mac : int;  (** latency model of the interpreter fallback *)
  convert_queue_threshold : int;
      (** queue depth beyond which memory-mode dual tiles are drafted *)
  revert_idle_ps : int;
      (** idle hysteresis before a drafted dual tile reverts to memory *)
  wear_bias_ps_per_byte : float;
      (** placement penalty per byte already written, charged only to
          classes that wear *)
  ignore_deadlines : bool;  (** golden mode: never degrade *)
  recovery : recovery;
  device_seed : int;  (** device [i] gets PRNG seed [device_seed + i] *)
  on_device_create : (Device.t -> unit) option;
      (** called once per device at pool construction — the hook
          reliability campaigns use to plant faults
          ({!Tdo_reliab.Inject}); [None] = pristine pool *)
  tuning : Tdo_tune.Db.t option;
      (** per-(kernel, class) tuned configurations for the kernel
          cache, keyed by structural digest and device class
          (cross-class entries are refused); geometry is clamped to the
          pool's crossbar shape. [golden_config] keeps it, so the
          oracle compiles identically and checksums stay comparable. *)
  admission : Admission.policy option;
      (** per-tenant token buckets and SLO-class load shedding, judged
          at each request's arrival timestamp {e before} the hard queue
          bound; shed requests are recorded as {!Telemetry.Shed} and
          never queue. [None] = every arrival admitted (the pre-SLO
          behaviour). *)
  calibrate_after : int option;
      (** [Some n]: refit the per-class cost-model coefficients from
          measured service cycles once a class has completed [n]
          requests ({!Tdo_tune.Cost_model.calibrate}); adopted only
          when the fit beats the hand-priced prior on its own samples,
          so placement never gets worse. Each adoption is listed in the
          report's [calibrations]. [None] = priors throughout. *)
  on_record : (Telemetry.record -> unit) option;
      (** live observer installed on the run's telemetry — sees every
          record as it lands (e.g. {!Telemetry.live_view}); [None] for
          post-hoc-only analysis *)
  graphs : (string * Tdo_polybench.Kernels.benchmark) list;
      (** extra kernels resolvable by request name — the graph
          workloads ({!Tdo_graph.Graph.benchmark}) a trace may carry,
          looked up before the {!Tdo_polybench.Kernels} registry.
          [[]] = polybench kernels only (the pre-graph behaviour). *)
  graph_residency : bool;
      (** keep a graph's weight tiles pinned on the serving device
          across requests of the same (model, tenant): a repeat request
          landing on the device that last served it skips crossbar
          programming entirely ([write_bytes = 0] in its record), and
          placement quotes the warm estimate
          ({!Tdo_tune.Cost_model.predict_resident_cycles}) so repeat
          traffic sticks to the device holding its weights. Residency
          is invalidated by dual-mode role flips, quarantine,
          compiled-cache eviction and any non-matching run on the
          device; it is keyed by compiled-entry digest {e and} tenant,
          so one tenant's pinned weights are never served to another.
          [false] = reprogram on every request. *)
}

val default_config : config
(** 4 analog-crossbar devices, default platform, 64-entry cache,
    256-deep queue, batching up to 8, parallel waves, 5 us launch
    overhead, 2.5 ns per MAC fallback rate, draft duals beyond queue
    depth 2, 200 us revert hysteresis, {!default_recovery}, no fault
    hook, no tuning database, no admission policy, no online
    calibration, no live observer. *)

val golden_config : ?profile:Backend.profile -> config -> config
(** The sequential oracle for a given serving configuration: one
    device of [profile]'s class (default {!Backend.pcm}; dual-mode is
    pinned off so the oracle always computes), no batching, no
    parallelism, unbounded queue, deadlines ignored, {e no
    fault-injection hook}, no admission policy, no online calibration,
    no live observer — same compile options and platform. Run one
    golden per compute class in a mixed fleet: {!divergence} only
    compares records of the same class. *)

type device_report = {
  dev_id : int;
  dev_profile : string;  (** fleet profile name, e.g. ["pcm"], ["dual"] *)
  dev_class : string;  (** device-class name, e.g. ["pcm"], ["digital"] *)
  dev_wear : Device.wear;  (** final wear snapshot *)
  dev_served : int;  (** requests served *)
  dev_energy_j : float;  (** lifetime energy under the class's table *)
  dev_conversions : int * int;  (** (to compute, to memory) *)
  dev_displaced_bytes : float;
      (** memory-role bandwidth this tile's clients lost while it was
          drafted for compute (dual-mode tiles only; 0 elsewhere) *)
}

type report = {
  trace : Trace.t;
  config : config;
  telemetry : Telemetry.t;
  cache : Kernel_cache.stats;
  devices : device_report list;
  quarantined : int list;  (** devices pulled from rotation during the run *)
  makespan_ps : int;  (** finish time of the last request *)
  wall_s : float;  (** host wall-clock spent replaying *)
  calibrations : (string * int * float) list;
      (** one entry per adopted online cost-model fit: class name,
          number of samples fitted over, mean relative error of the
          fitted model on those samples. Empty when [calibrate_after]
          is [None] or no fit beat its prior. *)
}

val replay : ?config:config -> Trace.t -> report

val output_checksum : Tdo_linalg.Mat.t list -> string
(** The digest [replay] stores in {!Telemetry.record.checksum} —
    exposed so external oracles (the reliability campaign's
    host-interpreter reference) can compare bit-for-bit. *)

val completed : report -> int
val fallbacks : report -> int
val recovered : report -> int
val rejections : report -> int
val failures : report -> int

val detected_corruptions : report -> int
(** Device attempts discarded after an ABFT mismatch (sum of
    per-request [retries]). *)

val cache_hit_rate : report -> float
(** Hits over (hits + misses); 0 on an empty run. *)

val record_class : Telemetry.record -> Backend.device_class option
(** The compute class behind a record's checksum — what decides
    comparability in {!divergence}. *)

val divergence : report -> report -> int
(** Number of requests that completed on devices of the {e same
    compute class} in both reports and produced different output
    checksums — the cross-device golden check. 0 means every comparable
    request is bit-identical. (Cross-class checksums are not compared:
    class-keyed tuned geometries may tile the 8-bit quantisation
    differently, and the host computes in full precision.) *)
