(** The multi-tenant offload scheduler: bounded admission, batch
    coalescing, endurance-aware placement, deadlines with
    CPU-interpreter degradation.

    [replay] drives a {!Trace.t} through a virtual-time event loop.
    Requests are admitted into a bounded submission queue (overflow is
    {e backpressure}: the request is rejected with
    {!Telemetry.Rejected_overloaded}, never silently dropped). When
    devices are free, the dispatcher forms one batch per free device by
    coalescing queued requests that share a (kernel, size) — they reuse
    one compiled-cache entry and pay the launch overhead once — and
    places each batch on the free device with the least accumulated
    crossbar wear, which is what spreads write traffic across the pool.
    A request whose deadline has already passed when it reaches the
    head of the queue is not sent to a device at all: it degrades to
    the host reference interpreter (functionally exact, charged with a
    calibrated MAC-rate latency model).

    {b Recovery.} When a device's ABFT guard detects a corrupted
    offload (see {!Tdo_cimacc.Micro_engine} and {!Tdo_linalg.Abft}),
    the attempt's outputs are discarded but its virtual time is still
    charged. The scheduler then applies a three-stage policy: retry the
    request on a device that has not yet corrupted it (up to
    [recovery.max_attempts] attempts, each recorded in the request's
    [retries]); quarantine a device after [recovery.quarantine_after]
    detected corruptions — it leaves the dispatch rotation and its
    faulty rows are marked dead in its Start-Gap remapper; and finally
    degrade the request to the host interpreter
    ({!Telemetry.Recovered_host}) when attempts or devices run out.
    All of it happens in virtual time, so the golden oracle and the
    parallel==sequential determinism property keep holding.

    All scheduling decisions for a dispatch wave are taken {e before}
    the wave executes, so executing the wave's batches on worker
    domains ({!Tdo_util.Pool}) or sequentially produces bit-identical
    results and telemetry — the property the golden check and the
    qcheck determinism suite pin down. *)

module Platform = Tdo_runtime.Platform
module Flow = Tdo_cim.Flow

type recovery = {
  max_attempts : int;  (** device attempts per request before host degradation; >= 1 *)
  quarantine_after : int;  (** detected corruptions before a device is pulled *)
}

val default_recovery : recovery
(** 3 attempts, quarantine after 2 corruptions. *)

type config = {
  devices : int;  (** pool size; >= 1 *)
  platform_config : Platform.config;  (** per-device platform *)
  options : Flow.options;  (** compile options for the kernel cache *)
  cache_capacity : int;
  queue_capacity : int;  (** submission-queue bound; [<= 0] = unbounded *)
  batching : bool;
  max_batch : int;  (** requests coalesced per dispatch; >= 1 *)
  parallel : bool;  (** execute dispatch waves on the domain pool *)
  dispatch_overhead_ps : int;  (** per-batch launch cost (driver + syscall path) *)
  cpu_ps_per_mac : int;  (** latency model of the interpreter fallback *)
  ignore_deadlines : bool;  (** golden mode: never degrade *)
  recovery : recovery;
  device_seed : int;  (** device [i] gets PRNG seed [device_seed + i] *)
  on_device_create : (Device.t -> unit) option;
      (** called once per device at pool construction — the hook
          reliability campaigns use to plant faults
          ({!Tdo_reliab.Inject}); [None] = pristine pool *)
  tuning : Tdo_tune.Db.t option;
      (** per-kernel tuned configurations for the kernel cache, keyed
          by structural digest; geometry is clamped to the pool's
          crossbar shape. [golden_config] keeps it, so the oracle
          compiles identically and checksums stay comparable. *)
}

val default_config : config
(** 4 devices, default platform, 64-entry cache, 256-deep queue,
    batching up to 8, parallel waves, 5 us launch overhead, 2.5 ns per
    MAC fallback rate, {!default_recovery}, no fault hook, no tuning
    database. *)

val golden_config : config -> config
(** The sequential oracle for a given serving configuration: one
    device, no batching, no parallelism, unbounded queue, deadlines
    ignored, {e no fault-injection hook} — same compile options and
    platform. *)

type report = {
  trace : Trace.t;
  config : config;
  telemetry : Telemetry.t;
  cache : Kernel_cache.stats;
  devices : (int * Device.wear * int) list;
      (** per device: id, final wear snapshot, requests served *)
  quarantined : int list;  (** devices pulled from rotation during the run *)
  makespan_ps : int;  (** finish time of the last request *)
  wall_s : float;  (** host wall-clock spent replaying *)
}

val replay : ?config:config -> Trace.t -> report

val output_checksum : Tdo_linalg.Mat.t list -> string
(** The digest [replay] stores in {!Telemetry.record.checksum} —
    exposed so external oracles (the reliability campaign's
    host-interpreter reference) can compare bit-for-bit. *)

val completed : report -> int
val fallbacks : report -> int
val recovered : report -> int
val rejections : report -> int
val failures : report -> int

val detected_corruptions : report -> int
(** Device attempts discarded after an ABFT mismatch (sum of
    per-request [retries]). *)

val cache_hit_rate : report -> float
(** Hits over (hits + misses); 0 on an empty run. *)

val divergence : report -> report -> int
(** Number of requests that ran on CIM devices in {e both} reports and
    produced different output checksums — the cross-device golden
    check. 0 means every comparable request is bit-identical. *)
