(** Synthetic request traces for the serving layer.

    A trace is a list of timed kernel invocations over the PolyBench
    suite: each request names a kernel, a problem size and a data seed,
    and arrives at a virtual timestamp (picoseconds, the simulator's
    tick). Generation is fully deterministic in the trace seed, so a
    replay — and its golden single-device counterpart — can be
    reproduced bit-for-bit.

    The built-in profiles draw kernels from a skewed popularity mix
    over a small set of (kernel, size) combinations, which is what
    production inference traffic looks like and what gives the kernel
    cache its hit rate. *)

type request = {
  id : int;
  kernel : string;  (** PolyBench kernel name, see {!Tdo_polybench.Kernels} *)
  n : int;  (** problem size *)
  seed : int;  (** data seed; unique per request *)
  arrival_ps : int;
  deadline_ps : int option;  (** relative to arrival; [None] = no deadline *)
}

type t = {
  name : string;
  seed : int;
  requests : request list;  (** sorted by [arrival_ps], ids dense from 0 *)
}

val profiles : string list
(** Names accepted by {!synthetic}: ["synthetic-smoke"] (40 requests,
    2 kernels), ["synthetic-small"] (200), ["synthetic-medium"] (1000),
    ["synthetic-large"] (4000), ["synthetic-tight"] (200, with
    deadlines tight enough to force CPU fallback under load). *)

val synthetic :
  ?seed:int -> ?deadline_us:int -> string -> (t, string) result
(** Build a named profile. [deadline_us] overrides the profile's
    deadline (applied to every request); [seed] defaults to 42.
    [Error] names the unknown profile and lists the valid ones. *)

val distinct_kernels : t -> (string * int) list
(** The (kernel, n) combinations present, deduplicated — the number of
    compiles a cold cache will perform. *)
