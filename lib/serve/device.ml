module Platform = Tdo_runtime.Platform
module Flow = Tdo_cim.Flow
module Interp = Tdo_lang.Interp
module Ast = Tdo_lang.Ast
module Sim = Tdo_sim
module Cimacc = Tdo_cimacc
module Crossbar = Tdo_pcm.Crossbar
module Wear_leveling = Tdo_pcm.Wear_leveling
module Endurance = Tdo_pcm.Endurance
module Backend = Tdo_backend.Backend
module Table1 = Tdo_energy.Table1

type exec_stats = {
  service_ps : int;
  roi_instructions : int;
  used_cim : bool;
  launches : int;
  write_bytes : int;
  cell_writes : int;
  macs : int;
  energy_j : float;
  abft_checks : int;
  abft_mismatches : int;
  abft_fault : (int * (int * int * int * int)) option;
}

type wear = {
  total_cell_writes : int;
  max_per_cell : int;
  per_tile_cell_writes : int array;
  per_tile_write_bytes : int array;
  worn_out_fraction : float;
  leveling : Wear_leveling.stats;
  budget_consumed : float;
}

type t = {
  dev_id : int;
  backend : Backend.profile;
  platform : Platform.t option;  (** [None] for the host-BLAS class *)
  leveler : Wear_leveling.t;
  tracker : Endurance.Tracker.t;
  mutable mode : Backend.mode;
  mutable to_compute : int;
  mutable to_memory : int;
  mutable energy : float;
  mutable available_ps : int;
  mutable served : int;
  mutable quarantined : bool;
  mutable resident : string option;
      (** residency key of the graph program whose weight tiles are
          still pinned from the previous run; [None] = latches invalid *)
  mutable drafted_at_ps : int;
      (** virtual time a dual tile was last drafted to compute; [-1]
          when serving its memory role *)
  mutable displaced_bytes : float;
      (** lifetime memory-role traffic forgone while drafted *)
}

let platform_exn t =
  match t.platform with
  | Some p -> p
  | None ->
      invalid_arg
        (Printf.sprintf "Device.platform: device %d is host-class (no emulated platform)"
           t.dev_id)

let engine t = Cimacc.Accel.engine (platform_exn t).Platform.accel

let create ?(platform_config = Platform.default_config) ?cell_endurance ?seed
    ?(backend = Backend.pcm) ~id () =
  (* Default each device's PRNG stream to its pool id: distinct and
     reproducible without any campaign configuration. *)
  let seed = match seed with Some s -> s | None -> id in
  let cell_endurance =
    match cell_endurance with Some e -> e | None -> backend.Backend.cell_endurance
  in
  (* The class profile reshapes the base platform (latencies, noise)
     before the emulated machine is built; host-class devices build no
     machine at all — they are the host. *)
  let platform_config = Backend.platform_config ~base:platform_config backend in
  match backend.Backend.cls with
  | Backend.Host_blas ->
      {
        dev_id = id;
        backend;
        platform = None;
        leveler = Wear_leveling.create ~lines:1 ~gap_interval:1;
        tracker = Endurance.Tracker.create ~cell_endurance ~crossbar_bytes:1;
        mode = Backend.Compute_mode;
        to_compute = 0;
        to_memory = 0;
        energy = 0.0;
        available_ps = 0;
        served = 0;
        quarantined = false;
        resident = None;
        drafted_at_ps = -1;
        displaced_bytes = 0.0;
      }
  | Backend.Pcm_crossbar | Backend.Digital_tile ->
      let platform = Platform.create ~config:platform_config ~seed () in
      let xbar = platform_config.Platform.engine.Cimacc.Micro_engine.xbar in
      let tiles = platform_config.Platform.engine.Cimacc.Micro_engine.tiles in
      {
        dev_id = id;
        backend;
        platform = Some platform;
        (* Start-Gap over the crossbar's wordlines: the row-write stream of
           every programmed operand is pushed through the remapper, so the
           pool can report levelled wear next to the raw per-cell counters. *)
        leveler =
          Wear_leveling.create ~lines:xbar.Crossbar.rows
            ~gap_interval:(max 1 (xbar.Crossbar.rows / 2));
        tracker =
          Endurance.Tracker.create ~cell_endurance
            ~crossbar_bytes:(xbar.Crossbar.size_bytes * max 1 tiles);
        mode =
          (if backend.Backend.dual_mode then Backend.Memory_mode else Backend.Compute_mode);
        to_compute = 0;
        to_memory = 0;
        energy = 0.0;
        available_ps = 0;
        served = 0;
        quarantined = false;
        resident = None;
        drafted_at_ps = -1;
        displaced_bytes = 0.0;
      }

let id t = t.dev_id
let profile t = t.backend
let device_class t = t.backend.Backend.cls
let platform t = platform_exn t
let available_ps t = t.available_ps
let set_available_ps t ps = t.available_ps <- ps
let requests_served t = t.served
let write_pressure t = Endurance.Tracker.bytes_written t.tracker
let is_quarantined t = t.quarantined
let energy_j t = t.energy
let mode t = t.mode
let resident t = t.resident
let clear_resident t = t.resident <- None
let displaced_mem_bytes t = t.displaced_bytes

(* Charge the memory-role traffic the tile has forgone since it was
   drafted (or last charged) up to [at_ps], and advance the charge
   cursor so the interval is never double-billed. *)
let accrue_displacement t ~at_ps =
  if t.drafted_at_ps >= 0 && at_ps > t.drafted_at_ps then begin
    let us =
      float_of_int (at_ps - t.drafted_at_ps) /. float_of_int Tdo_sim.Time_base.ps_per_us
    in
    let bytes = us *. t.backend.Backend.memory_bw_bytes_per_us in
    t.displaced_bytes <- t.displaced_bytes +. bytes;
    t.drafted_at_ps <- at_ps;
    bytes
  end
  else 0.0

let finalize_displacement t ~at_ps = accrue_displacement t ~at_ps

let convert ?at_ps t ~to_compute =
  (* A role flip rebuilds the tile's peripheral state; any pinned
     weights are gone either way. *)
  t.resident <- None;
  if to_compute then begin
    t.mode <- Backend.Compute_mode;
    t.to_compute <- t.to_compute + 1;
    (match at_ps with
    | Some ps when t.backend.Backend.dual_mode -> t.drafted_at_ps <- ps
    | _ -> ());
    0.0
  end
  else begin
    t.mode <- Backend.Memory_mode;
    t.to_memory <- t.to_memory + 1;
    let displaced =
      match at_ps with Some ps -> accrue_displacement t ~at_ps:ps | None -> 0.0
    in
    t.drafted_at_ps <- -1;
    displaced
  end

let conversions t = (t.to_compute, t.to_memory)

let quarantine t ~rows:(row_off, nrows) =
  t.quarantined <- true;
  t.resident <- None;
  (* Feed the localisation into the Start-Gap remap: the faulty rows'
     current physical lines stop taking traffic. A line that cannot be
     quarantined (it would kill the device's last healthy line) is left
     alone — the device-level flag already keeps work away. *)
  let lines = Wear_leveling.lines t.leveler in
  for r = row_off to min (row_off + nrows - 1) (lines - 1) do
    try Wear_leveling.quarantine t.leveler (Wear_leveling.physical_of_logical t.leveler r)
    with Invalid_argument _ -> ()
  done

(* Price one run against the class's Table-I-style energy table. The
   launch term bundles the per-GEMV mixed-signal, combine and DMA
   control costs; host instructions are priced at the Table I host
   rate. *)
let device_energy_j (table : Table1.t) ~macs ~write_bytes ~launches ~roi_instructions =
  (float_of_int macs *. table.Table1.crossbar_compute_j_per_mac)
  +. (float_of_int write_bytes *. table.Table1.crossbar_write_j_per_byte)
  +. float_of_int launches
     *. (table.Table1.mixed_signal_j_per_full_gemv
        +. table.Table1.weighted_sum_j_per_gemv
        +. table.Table1.dma_engine_j_per_full_gemv)
  +. (float_of_int roi_instructions *. table.Table1.host_j_per_instruction)

let run ?residency t (compiled : Flow.compiled) ~args =
  (* A fresh user-space runtime is created inside [Exec.run], so its
     generation counter restarts; a stale pinned operand could alias a
     new tenant's buffer at a recycled CMA address and must not survive
     into this run — UNLESS the run replays the exact program the
     latches were set by. [residency] names that program: the compiled
     entry (digest + options + class) plus the tenant, and the weights
     it programs are model-seeded, so an identical key means the same
     (address, generation, data) programming sequence is about to be
     replayed verbatim. Only then is skipping the invalidation sound. *)
  (match residency with
  | Some key when t.resident = Some key -> ()
  | _ -> Cimacc.Micro_engine.invalidate_pinned (engine t));
  t.resident <- None;
  Cimacc.Micro_engine.clear_abft_fault (engine t);
  let platform = platform_exn t in
  let cpu = Platform.cpu platform in
  let roi0 = Sim.Cpu.roi cpu in
  let xc0 = Cimacc.Micro_engine.total_crossbar_counters (engine t) in
  let ec0 = Cimacc.Micro_engine.counters (engine t) in
  let metrics = Tdo_ir.Exec.run compiled.Flow.func ~platform ~args in
  let roi1 = Sim.Cpu.roi cpu in
  let xc1 = Cimacc.Micro_engine.total_crossbar_counters (engine t) in
  let ec1 = Cimacc.Micro_engine.counters (engine t) in
  let write_bytes = xc1.Crossbar.write_bytes - xc0.Crossbar.write_bytes in
  let cell_writes = xc1.Crossbar.cell_writes - xc0.Crossbar.cell_writes in
  let logical_writes = xc1.Crossbar.logical_writes - xc0.Crossbar.logical_writes in
  Endurance.Tracker.record t.tracker ~bytes:write_bytes;
  (* Approximate the operand row-write stream for the Start-Gap view:
     programming is row-parallel, so [logical_writes / cols] wordlines
     took a pulse. *)
  let cols =
    (Crossbar.config (Cimacc.Micro_engine.crossbar (engine t))).Crossbar.cols
  in
  let rows_written = logical_writes / max 1 cols in
  let lines = Wear_leveling.lines t.leveler in
  for i = 0 to rows_written - 1 do
    Wear_leveling.write t.leveler (i mod lines)
  done;
  t.served <- t.served + 1;
  let roi_instructions = roi1.Sim.Cpu.roi_instructions - roi0.Sim.Cpu.roi_instructions in
  let macs = xc1.Crossbar.macs - xc0.Crossbar.macs in
  let launches = metrics.Tdo_ir.Exec.cim_launches in
  let energy_j =
    device_energy_j t.backend.Backend.energy ~macs ~write_bytes ~launches ~roi_instructions
  in
  t.energy <- t.energy +. energy_j;
  let abft_mismatches =
    ec1.Cimacc.Micro_engine.abft_mismatches - ec0.Cimacc.Micro_engine.abft_mismatches
  in
  (* Latch the residency key only on a clean completion: a corrupt or
     faulted run's pinned state is not trusted for reuse. *)
  if abft_mismatches = 0 then t.resident <- residency;
  {
    service_ps = roi1.Sim.Cpu.roi_time_ps - roi0.Sim.Cpu.roi_time_ps;
    roi_instructions;
    used_cim = metrics.Tdo_ir.Exec.used_cim;
    launches;
    write_bytes;
    cell_writes;
    macs;
    energy_j;
    abft_checks = ec1.Cimacc.Micro_engine.abft_checks - ec0.Cimacc.Micro_engine.abft_checks;
    abft_mismatches;
    abft_fault = Cimacc.Micro_engine.last_abft_fault (engine t);
  }

let run_host t ~(ast : Ast.func) ~args ~macs =
  (match t.backend.Backend.cls with
  | Backend.Host_blas -> ()
  | _ -> invalid_arg "Device.run_host: not a host-class device");
  (try Interp.run ast ~args
   with
   | Tdo_ir.Exec.Exec_error _ as e -> raise e
   | e -> raise (Tdo_ir.Exec.Exec_error ("host BLAS execution: " ^ Printexc.to_string e)));
  t.served <- t.served + 1;
  let service_ps = t.backend.Backend.cpu_ps_per_mac * macs in
  (* ~3 host instructions per scalar MAC (load, FMA, store/update) at
     the Table I per-instruction energy *)
  let roi_instructions = 3 * macs in
  let energy_j =
    float_of_int roi_instructions *. t.backend.Backend.energy.Table1.host_j_per_instruction
  in
  t.energy <- t.energy +. energy_j;
  {
    service_ps;
    roi_instructions;
    used_cim = false;
    launches = 0;
    write_bytes = 0;
    cell_writes = 0;
    macs;
    energy_j;
    abft_checks = 0;
    abft_mismatches = 0;
    abft_fault = None;
  }

let zero_wear t =
  {
    total_cell_writes = 0;
    max_per_cell = 0;
    per_tile_cell_writes = [||];
    per_tile_write_bytes = [||];
    worn_out_fraction = 0.0;
    leveling = Wear_leveling.stats t.leveler;
    budget_consumed = Endurance.Tracker.budget_consumed t.tracker;
  }

let wear t =
  match t.platform with
  | None -> zero_wear t
  | Some _ when not t.backend.Backend.wears ->
      (* digital tiles accumulate crossbar counters in the engine, but
         SRAM does not wear: report a clean budget *)
      { (zero_wear t) with budget_consumed = 0.0 }
  | Some _ ->
      let xbars = Cimacc.Micro_engine.crossbars (engine t) in
      {
        total_cell_writes =
          Array.fold_left (fun acc xb -> acc + Crossbar.wear_total xb) 0 xbars;
        max_per_cell = Array.fold_left (fun acc xb -> max acc (Crossbar.wear_max xb)) 0 xbars;
        per_tile_cell_writes = Array.map Crossbar.wear_total xbars;
        per_tile_write_bytes =
          Array.map (fun xb -> (Crossbar.counters xb).Crossbar.write_bytes) xbars;
        worn_out_fraction =
          Array.fold_left
            (fun acc xb -> Float.max acc (Crossbar.worn_out_fraction xb))
            0.0 xbars;
        leveling = Wear_leveling.stats t.leveler;
        budget_consumed = Endurance.Tracker.budget_consumed t.tracker;
      }

let lifetime_years t ~elapsed_s =
  if elapsed_s <= 0.0 || not t.backend.Backend.wears then None
  else Endurance.Tracker.lifetime_years t.tracker ~elapsed_seconds:elapsed_s
