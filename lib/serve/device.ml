module Platform = Tdo_runtime.Platform
module Flow = Tdo_cim.Flow
module Interp = Tdo_lang.Interp
module Sim = Tdo_sim
module Cimacc = Tdo_cimacc
module Crossbar = Tdo_pcm.Crossbar
module Wear_leveling = Tdo_pcm.Wear_leveling
module Endurance = Tdo_pcm.Endurance

type exec_stats = {
  service_ps : int;
  roi_instructions : int;
  used_cim : bool;
  launches : int;
  write_bytes : int;
  cell_writes : int;
  macs : int;
  abft_checks : int;
  abft_mismatches : int;
  abft_fault : (int * (int * int * int * int)) option;
}

type wear = {
  total_cell_writes : int;
  max_per_cell : int;
  per_tile_cell_writes : int array;
  per_tile_write_bytes : int array;
  worn_out_fraction : float;
  leveling : Wear_leveling.stats;
  budget_consumed : float;
}

type t = {
  dev_id : int;
  platform : Platform.t;
  leveler : Wear_leveling.t;
  tracker : Endurance.Tracker.t;
  mutable available_ps : int;
  mutable served : int;
  mutable quarantined : bool;
}

let engine t = Cimacc.Accel.engine t.platform.Platform.accel

let create ?(platform_config = Platform.default_config) ?(cell_endurance = 1e7) ?seed ~id () =
  (* Default each device's PRNG stream to its pool id: distinct and
     reproducible without any campaign configuration. *)
  let seed = match seed with Some s -> s | None -> id in
  let platform = Platform.create ~config:platform_config ~seed () in
  let xbar = platform_config.Platform.engine.Cimacc.Micro_engine.xbar in
  let tiles = platform_config.Platform.engine.Cimacc.Micro_engine.tiles in
  {
    dev_id = id;
    platform;
    (* Start-Gap over the crossbar's wordlines: the row-write stream of
       every programmed operand is pushed through the remapper, so the
       pool can report levelled wear next to the raw per-cell counters. *)
    leveler =
      Wear_leveling.create ~lines:xbar.Crossbar.rows
        ~gap_interval:(max 1 (xbar.Crossbar.rows / 2));
    tracker =
      Endurance.Tracker.create ~cell_endurance
        ~crossbar_bytes:(xbar.Crossbar.size_bytes * max 1 tiles);
    available_ps = 0;
    served = 0;
    quarantined = false;
  }

let id t = t.dev_id
let platform t = t.platform
let available_ps t = t.available_ps
let set_available_ps t ps = t.available_ps <- ps
let requests_served t = t.served
let write_pressure t = Endurance.Tracker.bytes_written t.tracker
let is_quarantined t = t.quarantined

let quarantine t ~rows:(row_off, nrows) =
  t.quarantined <- true;
  (* Feed the localisation into the Start-Gap remap: the faulty rows'
     current physical lines stop taking traffic. A line that cannot be
     quarantined (it would kill the device's last healthy line) is left
     alone — the device-level flag already keeps work away. *)
  let lines = Wear_leveling.lines t.leveler in
  for r = row_off to min (row_off + nrows - 1) (lines - 1) do
    try Wear_leveling.quarantine t.leveler (Wear_leveling.physical_of_logical t.leveler r)
    with Invalid_argument _ -> ()
  done

let run t (compiled : Flow.compiled) ~args =
  (* A fresh user-space runtime is created inside [Exec.run], so its
     generation counter restarts; the previous tenant's pinned operand
     must not survive into this run. *)
  Cimacc.Micro_engine.invalidate_pinned (engine t);
  Cimacc.Micro_engine.clear_abft_fault (engine t);
  let cpu = Platform.cpu t.platform in
  let roi0 = Sim.Cpu.roi cpu in
  let xc0 = Cimacc.Micro_engine.total_crossbar_counters (engine t) in
  let ec0 = Cimacc.Micro_engine.counters (engine t) in
  let metrics = Tdo_ir.Exec.run compiled.Flow.func ~platform:t.platform ~args in
  let roi1 = Sim.Cpu.roi cpu in
  let xc1 = Cimacc.Micro_engine.total_crossbar_counters (engine t) in
  let ec1 = Cimacc.Micro_engine.counters (engine t) in
  let write_bytes = xc1.Crossbar.write_bytes - xc0.Crossbar.write_bytes in
  let cell_writes = xc1.Crossbar.cell_writes - xc0.Crossbar.cell_writes in
  let logical_writes = xc1.Crossbar.logical_writes - xc0.Crossbar.logical_writes in
  Endurance.Tracker.record t.tracker ~bytes:write_bytes;
  (* Approximate the operand row-write stream for the Start-Gap view:
     programming is row-parallel, so [logical_writes / cols] wordlines
     took a pulse. *)
  let cols =
    (Crossbar.config (Cimacc.Micro_engine.crossbar (engine t))).Crossbar.cols
  in
  let rows_written = logical_writes / max 1 cols in
  let lines = Wear_leveling.lines t.leveler in
  for i = 0 to rows_written - 1 do
    Wear_leveling.write t.leveler (i mod lines)
  done;
  t.served <- t.served + 1;
  {
    service_ps = roi1.Sim.Cpu.roi_time_ps - roi0.Sim.Cpu.roi_time_ps;
    roi_instructions = roi1.Sim.Cpu.roi_instructions - roi0.Sim.Cpu.roi_instructions;
    used_cim = metrics.Tdo_ir.Exec.used_cim;
    launches = metrics.Tdo_ir.Exec.cim_launches;
    write_bytes;
    cell_writes;
    macs = xc1.Crossbar.macs - xc0.Crossbar.macs;
    abft_checks = ec1.Cimacc.Micro_engine.abft_checks - ec0.Cimacc.Micro_engine.abft_checks;
    abft_mismatches =
      ec1.Cimacc.Micro_engine.abft_mismatches - ec0.Cimacc.Micro_engine.abft_mismatches;
    abft_fault = Cimacc.Micro_engine.last_abft_fault (engine t);
  }

let wear t =
  let xbars = Cimacc.Micro_engine.crossbars (engine t) in
  {
    total_cell_writes = Array.fold_left (fun acc xb -> acc + Crossbar.wear_total xb) 0 xbars;
    max_per_cell = Array.fold_left (fun acc xb -> max acc (Crossbar.wear_max xb)) 0 xbars;
    per_tile_cell_writes = Array.map Crossbar.wear_total xbars;
    per_tile_write_bytes =
      Array.map (fun xb -> (Crossbar.counters xb).Crossbar.write_bytes) xbars;
    worn_out_fraction =
      Array.fold_left (fun acc xb -> Float.max acc (Crossbar.worn_out_fraction xb)) 0.0 xbars;
    leveling = Wear_leveling.stats t.leveler;
    budget_consumed = Endurance.Tracker.budget_consumed t.tracker;
  }

let lifetime_years t ~elapsed_s =
  if elapsed_s <= 0.0 then None
  else Endurance.Tracker.lifetime_years t.tracker ~elapsed_seconds:elapsed_s
