(** Per-request telemetry of the serving layer.

    The scheduler records one {!record} per request — outcome, timing,
    placement, cache behaviour and a checksum of the produced outputs —
    plus a queue-depth sample per scheduling step. Aggregations
    (latency percentiles, hit rates) are computed on demand from the
    raw records, and the whole run can be dumped as a Chrome
    trace-event JSON file ([chrome://tracing], Perfetto) with one
    track per device. *)

type outcome =
  | Completed  (** served on a CIM device *)
  | Cpu_fallback  (** deadline missed; degraded to the host interpreter *)
  | Recovered_host
      (** corruption detected on every attempted device; final
          degradation to the host interpreter produced the result *)
  | Rejected_overloaded  (** bounced at admission: submission queue full *)
  | Failed of string  (** device or front-end error *)

type record = {
  request : Trace.request;
  outcome : outcome;
  device : int option;  (** [None] unless [Completed] *)
  batch : int option;  (** dispatch batch id, [None] for unbatched outcomes *)
  cache_hit : bool;
  queue_depth : int;  (** submission-queue depth seen at admission *)
  start_ps : int;  (** when service began (= finish for rejections) *)
  finish_ps : int;
  service_ps : int;
  retries : int;  (** device attempts discarded after a detected corruption *)
  tuned : bool;
      (** compiled under a configuration the tuning database supplied
          rather than the scheduler-wide default *)
  checksum : string option;  (** digest of the output arrays, comparison key of the golden check *)
}

val latency_ps : record -> int
(** [finish - arrival]: what the client observed. *)

type t

val create : unit -> t

val record : t -> record -> unit
val sample_queue_depth : t -> at_ps:int -> depth:int -> unit

val records : t -> record list
(** In request-id order. *)

val count : t -> outcome -> int

type summary = {
  requests : int;
  completed : int;
  completed_after_retry : int;  (** completed on a device after >=1 retry *)
  cpu_fallbacks : int;
  recovered_host : int;
  rejected : int;
  failed : int;
  detected_corruptions : int;
      (** device attempts whose ABFT check failed (sum of [retries]) *)
  served_tuned : int;  (** completed requests that ran a tuned configuration *)
}

val summary : t -> summary
(** Per-outcome counters over all records. *)

val latency_percentile : t -> p:float -> float option
(** Percentile (in simulated microseconds) over requests that were
    actually served ([Completed] or [Cpu_fallback]); [None] when none
    were. *)

val mean_latency_us : t -> float option
val max_queue_depth : t -> int

val chrome_trace : t -> string
(** The run as a JSON array of Chrome trace events: one complete
    ("ph":"X") event per served request on its device's track, one
    instant event per rejection, and a queue-depth counter track.
    Timestamps are simulated microseconds. *)

val write_chrome_trace : t -> path:string -> unit
