(** Per-request telemetry of the serving layer.

    The scheduler records one {!record} per request — outcome, timing,
    placement (device {e and} fleet profile), cache behaviour and a
    checksum of the produced outputs — plus a queue-depth sample per
    scheduling step and one event per dual-mode role conversion.
    Aggregations (latency percentiles, hit rates, per-device-class
    outcome counts) are computed on demand from the raw records, and
    the whole run can be dumped as a Chrome trace-event JSON file
    ([chrome://tracing], Perfetto) with one track per device. *)

type outcome =
  | Completed  (** served on a fleet device *)
  | Cpu_fallback  (** deadline missed; degraded to the host interpreter *)
  | Recovered_host
      (** corruption detected on every attempted device; final
          degradation to the host interpreter produced the result *)
  | Rejected_overloaded  (** bounced at admission: submission queue full *)
  | Failed of string  (** device or front-end error *)

type record = {
  request : Trace.request;
  outcome : outcome;
  device : int option;  (** [None] unless [Completed] *)
  profile : string option;
      (** fleet-profile name of the serving device ({!Tdo_backend.Backend.profile});
          [None] for outcomes that never reached a device *)
  batch : int option;  (** dispatch batch id, [None] for unbatched outcomes *)
  cache_hit : bool;
  queue_depth : int;  (** submission-queue depth seen at admission *)
  start_ps : int;  (** when service began (= finish for rejections) *)
  finish_ps : int;
  service_ps : int;
  retries : int;  (** device attempts discarded after a detected corruption *)
  tuned : bool;
      (** compiled under a configuration the tuning database supplied
          rather than the scheduler-wide default *)
  checksum : string option;  (** digest of the output arrays, comparison key of the golden check *)
}

val latency_ps : record -> int
(** [finish - arrival]: what the client observed. *)

val profile_bucket : record -> string
(** The per-class accounting bucket: the record's profile name, ["host"]
    for interpreter degradations that never touched a device, and
    ["unplaced"] otherwise. *)

type t

val create : unit -> t

val record : t -> record -> unit
val sample_queue_depth : t -> at_ps:int -> depth:int -> unit

val record_conversion :
  t -> at_ps:int -> device:int -> profile:string -> to_compute:bool -> unit
(** A dual-mode tile switched roles at [at_ps]: [to_compute = true]
    when it was converted into the compute pool, [false] when it
    reverted to plain memory. *)

type conversion = {
  at_ps : int;
  conv_device : int;
  conv_profile : string;
  to_compute : bool;  (** [false] = reverted to the plain-memory role *)
}

val conversions : t -> conversion list
(** In recording order. *)

val records : t -> record list
(** In request-id order. *)

val count : t -> outcome -> int

type summary = {
  requests : int;
  completed : int;
  completed_after_retry : int;  (** completed on a device after >=1 retry *)
  cpu_fallbacks : int;
  recovered_host : int;
  rejected : int;
  failed : int;
  detected_corruptions : int;
      (** device attempts whose ABFT check failed (sum of [retries]) *)
  served_tuned : int;  (** completed requests that ran a tuned configuration *)
  conversions_to_compute : int;  (** dual-mode tiles drafted into the compute pool *)
  conversions_to_memory : int;  (** dual-mode tiles released back to plain memory *)
}

val summary : t -> summary
(** Per-outcome counters over all records. *)

type class_counts = {
  served : int;  (** [Completed] on a device of this profile *)
  recovered : int;
  fallbacks : int;
  rejected : int;
  failed : int;
  retries_against : int;  (** corrupt attempts charged to this profile's devices *)
  to_compute : int;  (** dual-mode conversions into the compute role *)
  to_memory : int;
}

val class_summary : t -> (string * class_counts) list
(** Outcome counters split by {!profile_bucket}, sorted by bucket name.
    Mixed-fleet runs read per-class served/recovered/rejected counts
    and dual-mode conversion totals from here. *)

val latency_percentile : ?profile:string -> t -> p:float -> float option
(** Percentile (in simulated microseconds) over requests that were
    actually served ([Completed], [Cpu_fallback] or [Recovered_host]);
    [None] when none were. [profile] restricts to one
    {!profile_bucket}. *)

val mean_latency_us : ?profile:string -> t -> float option
val max_queue_depth : t -> int

val chrome_trace : t -> string
(** The run as a JSON array of Chrome trace events: one complete
    ("ph":"X") event per served request on its device's track (tagged
    with its device class), one instant event per rejection and per
    dual-mode conversion, a queue-depth counter track, and closing
    instant events carrying the run-level and per-class summaries.
    Timestamps are simulated microseconds. *)

val write_chrome_trace : t -> path:string -> unit
