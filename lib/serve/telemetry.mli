(** Per-request telemetry of the serving layer.

    The scheduler records one {!record} per request — outcome, timing,
    placement (device {e and} fleet profile), cache behaviour and a
    checksum of the produced outputs — plus a queue-depth sample per
    scheduling step and one event per dual-mode role conversion.
    Aggregations (latency percentiles, hit rates, per-device-class and
    per-SLO-class outcome counts, rolling time windows) are computed on
    demand from the raw records, and the whole run can be dumped as a
    Chrome trace-event JSON file ([chrome://tracing], Perfetto) with
    one track per device.

    For live runs ({!Frontend}, [--load]), an observer can be attached:
    it sees every record as it lands, and {!live_view} builds a
    windowed observer that emits one formatted roll-up line per elapsed
    time window while the run is still going. *)

type shed_reason =
  | Rate_limited  (** tenant token bucket empty ({!Admission.Shed_rate}) *)
  | Load_shed  (** queue fill beyond the SLO class's limit ({!Admission.Shed_load}) *)

val shed_reason_name : shed_reason -> string
(** ["rate_limited"], ["load_shed"]. *)

type outcome =
  | Completed  (** served on a fleet device *)
  | Cpu_fallback  (** deadline missed; degraded to the host interpreter *)
  | Recovered_host
      (** corruption detected on every attempted device; final
          degradation to the host interpreter produced the result *)
  | Rejected_overloaded  (** bounced at admission: submission queue full *)
  | Shed of shed_reason  (** dropped by {!Admission} before queueing *)
  | Failed of string  (** device or front-end error *)

type record = {
  request : Trace.request;
  outcome : outcome;
  device : int option;  (** [None] unless [Completed] *)
  profile : string option;
      (** fleet-profile name of the serving device ({!Tdo_backend.Backend.profile});
          [None] for outcomes that never reached a device *)
  batch : int option;  (** dispatch batch id, [None] for unbatched outcomes *)
  cache_hit : bool;
  queue_depth : int;  (** submission-queue depth seen at admission *)
  start_ps : int;  (** when service began (= finish for rejections) *)
  finish_ps : int;
  service_ps : int;
  retries : int;  (** device attempts discarded after a detected corruption *)
  tuned : bool;
      (** compiled under a configuration the tuning database supplied
          rather than the scheduler-wide default *)
  write_bytes : int;
      (** crossbar bytes programmed serving this request — [0] when the
          device's pinned weight tiles were resident (graph-scope
          residency) or the request never touched a crossbar *)
  checksum : string option;  (** digest of the output arrays, comparison key of the golden check *)
}

val latency_ps : record -> int
(** [finish - arrival]: what the client observed. *)

val profile_bucket : record -> string
(** The per-class accounting bucket: the record's profile name, ["host"]
    for interpreter degradations that never touched a device, and
    ["unplaced"] otherwise. *)

val served : record -> bool
(** The client got an answer: [Completed], [Cpu_fallback] or
    [Recovered_host]. *)

val shed : record -> bool
(** The client got a drop: [Shed _] or [Rejected_overloaded]. *)

type t

val create : ?observer:(record -> unit) -> unit -> t
(** [observer] (if any) is called synchronously with every record as it
    is recorded — the hook live views hang off. *)

val set_observer : t -> (record -> unit) option -> unit

val record : t -> record -> unit
val sample_queue_depth : t -> at_ps:int -> depth:int -> unit

val record_conversion :
  ?displaced_bytes:float ->
  t ->
  at_ps:int ->
  device:int ->
  profile:string ->
  to_compute:bool ->
  unit
(** A dual-mode tile switched roles at [at_ps]: [to_compute = true]
    when it was converted into the compute pool, [false] when it
    reverted to plain memory. [displaced_bytes] (default [0.]) is the
    memory-role traffic the tile gave up over the drafted interval a
    revert closes. *)

type conversion = {
  at_ps : int;
  conv_device : int;
  conv_profile : string;
  to_compute : bool;  (** [false] = reverted to the plain-memory role *)
  displaced_bytes : float;
      (** memory-role traffic forgone over the drafted interval a
          revert closes; [0.] on drafts *)
}

val conversions : t -> conversion list
(** In recording order. *)

val records : t -> record list
(** In request-id order. *)

val count : t -> outcome -> int

type summary = {
  requests : int;
  completed : int;
  completed_after_retry : int;  (** completed on a device after >=1 retry *)
  cpu_fallbacks : int;
  recovered_host : int;
  rejected : int;
  shed_rate_limited : int;  (** dropped by a tenant token bucket *)
  shed_load : int;  (** dropped by SLO-class queue-fill shedding *)
  failed : int;
  detected_corruptions : int;
      (** device attempts whose ABFT check failed (sum of [retries]) *)
  served_tuned : int;  (** completed requests that ran a tuned configuration *)
  conversions_to_compute : int;  (** dual-mode tiles drafted into the compute pool *)
  conversions_to_memory : int;  (** dual-mode tiles released back to plain memory *)
}

val summary : t -> summary
(** Per-outcome counters over all records. *)

type class_counts = {
  served : int;  (** [Completed] on a device of this profile *)
  recovered : int;
  fallbacks : int;
  rejected : int;
  shed : int;  (** admission sheds (always in the ["unplaced"] bucket) *)
  failed : int;
  retries_against : int;  (** corrupt attempts charged to this profile's devices *)
  to_compute : int;  (** dual-mode conversions into the compute role *)
  to_memory : int;
  class_write_bytes : int;  (** crossbar programming traffic of completed requests *)
  class_displaced_bytes : float;
      (** memory-role bandwidth this profile's dual tiles gave up while
          drafted (charged on reverts) *)
}

val class_summary : t -> (string * class_counts) list
(** Outcome counters split by {!profile_bucket}, sorted by bucket name.
    Mixed-fleet runs read per-class served/recovered/rejected counts
    and dual-mode conversion totals from here. *)

type slo_counts = {
  slo_requests : int;
  slo_served : int;  (** completed + degraded-but-answered *)
  slo_shed : int;  (** admission sheds + queue-overflow rejections *)
  slo_failed : int;
  slo_p50_us : float;  (** latency over this class's served requests; 0 if none *)
  slo_p99_us : float;
}

val slo_summary : t -> (Trace.slo * slo_counts) list
(** Outcome counters split by SLO class, sorted [Interactive] first.
    The shed-ordering claim — overload drops best-effort before batch
    before interactive — is checked against these counters. *)

val tenant_summary : t -> (int * slo_counts) list
(** Same counters split by tenant id, ascending. *)

type window = {
  w_index : int;
  w_start_us : float;
  w_arrivals : int;  (** requests whose arrival falls in the window *)
  w_served : int;  (** requests answered (finish) in the window *)
  w_shed : int;  (** admission sheds + rejections in the window *)
  w_p50_us : float;  (** latency of requests finishing in the window *)
  w_p99_us : float;
  w_throughput_rps : float;  (** served per second of window time *)
  w_max_depth : int;  (** deepest queue sample in the window *)
  w_slo_served : (Trace.slo * int) list;
  w_slo_shed : (Trace.slo * int) list;
}

val windows : ?window_us:float -> t -> window list
(** Post-hoc rolling view: bucket the run into fixed windows of
    [window_us] (default 10ms) simulated/wall time, ascending, gaps
    omitted. Arrivals are bucketed by arrival time, served/shed counts
    and latency percentiles by finish time — so a burst shows up as an
    arrival spike first and a served/latency bump in later windows.
    Raises [Invalid_argument] if [window_us <= 0]. *)

val format_window : window -> string
(** One fixed-width human-readable roll-up line. *)

val live_view : ?window_us:float -> emit:(string -> unit) -> unit -> record -> unit
(** Build a stateful observer (pass it to {!create} or {!set_observer})
    that folds records into the current time window and calls [emit]
    with one {!format_window} line each time a record lands past the
    window's end. Empty windows are skipped. Records are seen in
    dispatch order, which is only approximately time order; stragglers
    for an already-emitted window are folded into the live window
    rather than reopening the past. *)

val latency_percentile : ?profile:string -> t -> p:float -> float option
(** Percentile (in simulated microseconds) over requests that were
    actually served ([Completed], [Cpu_fallback] or [Recovered_host]);
    [None] when none were. [profile] restricts to one
    {!profile_bucket}. *)

val mean_latency_us : ?profile:string -> t -> float option
val max_queue_depth : t -> int

val chrome_trace : t -> string
(** The run as a JSON array of Chrome trace events: one complete
    ("ph":"X") event per served request on its device's track (tagged
    with its device class, SLO class and tenant), one instant event per
    rejection, shed and dual-mode conversion, a queue-depth counter
    track, and closing instant events carrying the run-level, per-class
    and per-SLO summaries. Timestamps are simulated microseconds. *)

val write_chrome_trace : t -> path:string -> unit
