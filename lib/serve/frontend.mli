(** Wall-clock serving front-end.

    Where {!Scheduler.replay} drives a pre-recorded trace through
    virtual time, the front-end accepts live requests over a file
    descriptor — a pipe, a socket, anything [Unix.select] can watch —
    and serves them against a real device fleet in {e wall-clock} time:
    arrival stamps, admission-bucket refills and telemetry windows all
    read the host clock (as picoseconds since the front-end came up).

    {b Protocol.} One request per line, either the {!Trace} line codec
    ([req kernel=gemm n=16 ...] — only [kernel] and [n] are required)
    or a JSON object ([{"kernel":"gemm","n":16,"tenant":1,
    "class":"batch","seed":7,"deadline_us":500}]). Two control verbs:
    [stats] answers with a one-line run summary, [quit] ends the
    session. Responses are one line per request:

    - [ok id=.. device=.. class=.. latency_us=.. service_us=.. checksum=..]
    - [shed id=.. reason=rate_limited|load_shed] (admission drop)
    - [rejected id=..] (hard queue bound)
    - [err id=.. msg=..] (unknown kernel, compile or device error)

    [latency_us] is wall time from arrival to response; [service_us]
    is the device's {e simulated} service time — the front-end runs on
    an emulated fleet, so the two deliberately differ.

    {b Admission.} Input is drained eagerly, so a burst of lines forms
    a visible backlog; each arrival is judged by the {!Admission}
    policy against that backlog (best-effort shed first, then batch)
    and its tenant's token bucket before it may queue, and the hard
    [queue_capacity] bound rejects what admission let through when the
    backlog is full. Execution is synchronous, one request at a time,
    on the cheapest device by the same per-class cost-model estimate
    the replay scheduler uses (memory-mode dual tiles are drafted on
    first use and the conversion is counted).

    {b Live telemetry.} With [window_us] set, a {!Telemetry.live_view}
    observer emits one roll-up line per elapsed wall-time window to
    [emit] (default [stderr]) while the session runs. *)

module Platform = Tdo_runtime.Platform
module Flow = Tdo_cim.Flow
module Backend = Tdo_backend.Backend

type config = {
  fleet : Backend.profile list;  (** device [i] gets profile [i]; non-empty *)
  platform_config : Platform.config;
  options : Flow.options;
  cache_capacity : int;
  queue_capacity : int;  (** backlog bound; [<= 0] = unbounded *)
  admission : Admission.policy option;  (** [None] = admit everything *)
  tuning : Tdo_tune.Db.t option;
  device_seed : int;
  window_us : float option;
      (** live roll-up window (wall microseconds); [None] = no live lines *)
}

val default_config : config
(** Two analog crossbars, a digital tile and a dual-mode tile; default
    platform and compile options; 256-deep backlog;
    {!Admission.default_policy}; live roll-ups every 100 ms. *)

type stop =
  | Eof  (** the client closed its end *)
  | Quit  (** the client sent [quit] *)

val serve :
  ?emit:(string -> unit) ->
  ?config:config ->
  input:Unix.file_descr ->
  output:Unix.file_descr ->
  unit ->
  Telemetry.t * stop
(** Serve one session: read requests from [input] until EOF or [quit],
    answer on [output], return the session's telemetry. Requests still
    queued at session end are executed and answered before returning.
    Raises [Invalid_argument] on an empty fleet. *)

val serve_unix_socket :
  ?emit:(string -> unit) -> ?config:config -> path:string -> unit -> Telemetry.t list
(** Bind a Unix-domain socket at [path] (replacing any stale file) and
    serve clients one at a time — each connection is a fresh {!serve}
    session over a shared fleet configuration — until a client sends
    [quit]. Returns the per-session telemetry, oldest first. The socket
    file is removed on exit. *)
