(** Per-tenant admission control and SLO-class load shedding.

    Layered in front of the scheduler's bounded submission queue: every
    arrival is first charged against its tenant's token bucket (rate
    plus burst allowance, refilled lazily from the arrival timestamps —
    virtual picoseconds during replay, wall-clock picoseconds in the
    {!Frontend}), then checked against its SLO class's fill limit on
    the shared queue. Best-effort traffic loses queue eligibility at
    [best_effort_above] fill, batch at [batch_above], and interactive
    traffic rides the queue to the hard bound, where the scheduler's
    existing {!Telemetry.Rejected_overloaded} backpressure takes over —
    so overload sheds the cheapest promise first and the hard bound is
    only ever felt by the top class.

    Admission state is mutable but only touched on the scheduler
    thread, in arrival order, which keeps replays deterministic. *)

type bucket = {
  rate_per_s : float;  (** sustained admissions per second *)
  burst : float;  (** token capacity; also the initial level; >= 1 *)
}

type policy = {
  per_tenant : (int * bucket) list;  (** explicit budgets by tenant id *)
  default_bucket : bucket option;
      (** budget for tenants not listed; [None] = unmetered *)
  batch_above : float;
      (** queue-fill fraction at which [Batch] arrivals are shed *)
  best_effort_above : float;
      (** queue-fill fraction at which [Best_effort] arrivals are shed;
          must be [<= batch_above] *)
}

val default_policy : policy
(** No buckets (every tenant unmetered), shed best-effort at 0.5 fill
    and batch at 0.8. *)

type t

val create : policy -> t
(** Validates the policy (thresholds in [0,1], ordered; bucket rates
    non-negative, bursts >= 1) — raises [Invalid_argument] otherwise. *)

type verdict =
  | Admit
  | Shed_rate  (** tenant token bucket empty *)
  | Shed_load  (** queue fill beyond the request's class limit *)

val admit : t -> now_ps:int -> queue_len:int -> capacity:int -> Trace.request -> verdict
(** Judge one arrival at time [now_ps] against the current queue fill
    and the tenant budgets ([capacity <= 0] disables class shedding —
    an unbounded queue has no fill fraction). The class check runs
    first and consumes nothing; a token is consumed only on [Admit].
    Timestamps must be non-decreasing per tenant for the refill to be
    meaningful. *)

val tokens_left : t -> int -> float option
(** Current token level of a tenant ([None] = unmetered); burst level
    for tenants that have not sent yet. Exposed for tests. *)
