(** Compiled-kernel cache of the serving layer.

    The offload compiler ({!Tdo_cim.Flow}) is deterministic, so two
    requests carrying the same mini-C program under the same tactics
    configuration compile to the same IR — the cache makes the second
    request free. Entries are keyed by a {e structural} hash: the
    source is parsed and the AST digested together with the offload
    configuration {e and the device class the entry was compiled for},
    so whitespace, comments and formatting differences hit the same
    entry while any semantic change (a bound, a loop body, a config
    knob, a different target class) misses. The class lives in the key
    because tuned configurations are class-specific: replaying a
    crossbar geometry tuned for the analog array on a digital tile
    would change the quantisation tiling and hence the results.

    The cache is an LRU bounded by [capacity] entries. It is {b not}
    thread-safe: the scheduler performs all lookups on the dispatcher
    domain before fanning execution out to workers, which only read the
    immutable compiled IR. *)

module Flow = Tdo_cim.Flow
module Ast = Tdo_lang.Ast
module Backend = Tdo_backend.Backend

type entry = {
  key : string;  (** structural digest, hex *)
  cls : Backend.device_class;  (** device class this entry was compiled for *)
  ast : Ast.func;  (** parsed and type-checked — ready for the CPU-fallback interpreter *)
  compiled : Flow.compiled;
  options : Flow.options;  (** effective options the entry compiled under *)
  compile_s : float;  (** wall-clock spent compiling this entry *)
  tuned : bool;  (** compiled under a tuning-database configuration *)
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;  (** currently resident *)
  compile_s_total : float;  (** wall-clock spent on all misses *)
}

type t

val create :
  ?capacity:int ->
  ?options:Flow.options ->
  ?tuning:Tdo_tune.Db.t ->
  ?geometries:(Backend.device_class * (int * int)) list ->
  ?on_evict:(string -> unit) ->
  unit ->
  t
(** LRU cache holding at most [capacity] (default 64, clamped to >= 1)
    compiled programs, compiled under [options] (default
    {!Flow.o3_loop_tactics}). A [tuning] database overrides the
    tactics configuration per (kernel, class) — looked up by the same
    structural digest the database was built with; cross-class entries
    are refused by {!Tdo_tune.Db.config_for}. [geometries] gives the
    crossbar shape [(rows, cols)] of each class's devices in the fleet,
    used to clamp tuned geometries; entries compiled from the database
    carry [tuned = true]. [on_evict] is called with the key of every
    LRU-evicted entry — the invalidation hook graph-scope weight
    residency hangs off (a pinned claim must not outlive the compiled
    entry that backs it). *)

val options : t -> Flow.options

val structural_key :
  ?cls:Backend.device_class -> options:Flow.options -> Ast.func -> string
(** Digest of the AST structure plus the tactics configuration plus the
    device class (default [Pcm_crossbar]) — the cache key, exposed for
    tests and cache-aware clients. *)

val find_or_compile : t -> ?cls:Backend.device_class -> string -> entry
(** Parse [source], look its structural key up for [cls] (default
    [Pcm_crossbar]), and compile on a miss. Front-end errors (parse,
    type-check) propagate to the caller; failed compiles are not
    cached. An entry compiled for one class is never returned for
    another — the class is part of the key. *)

val stats : t -> stats
