(** Compiled-kernel cache of the serving layer.

    The offload compiler ({!Tdo_cim.Flow}) is deterministic, so two
    requests carrying the same mini-C program under the same tactics
    configuration compile to the same IR — the cache makes the second
    request free. Entries are keyed by a {e structural} hash: the
    source is parsed and the AST digested together with the offload
    configuration, so whitespace, comments and formatting differences
    hit the same entry while any semantic change (a bound, a loop body,
    a config knob) misses.

    The cache is an LRU bounded by [capacity] entries. It is {b not}
    thread-safe: the scheduler performs all lookups on the dispatcher
    domain before fanning execution out to workers, which only read the
    immutable compiled IR. *)

module Flow = Tdo_cim.Flow
module Ast = Tdo_lang.Ast

type entry = {
  key : string;  (** structural digest, hex *)
  ast : Ast.func;  (** parsed and type-checked — ready for the CPU-fallback interpreter *)
  compiled : Flow.compiled;
  compile_s : float;  (** wall-clock spent compiling this entry *)
  tuned : bool;  (** compiled under a tuning-database configuration *)
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;  (** currently resident *)
  compile_s_total : float;  (** wall-clock spent on all misses *)
}

type t

val create :
  ?capacity:int ->
  ?options:Flow.options ->
  ?tuning:Tdo_tune.Db.t ->
  ?device:int * int ->
  unit ->
  t
(** LRU cache holding at most [capacity] (default 64, clamped to >= 1)
    compiled programs, compiled under [options] (default
    {!Flow.o3_loop_tactics}). A [tuning] database overrides the
    tactics configuration per kernel — looked up by the same structural
    digest the database was built with, its geometry clamped to
    [device] (the crossbar shape of the pool's devices, [(rows,
    cols)]); entries compiled that way carry [tuned = true]. *)

val options : t -> Flow.options

val structural_key : options:Flow.options -> Ast.func -> string
(** Digest of the AST structure plus the tactics configuration — the
    cache key, exposed for tests and cache-aware clients. *)

val find_or_compile : t -> string -> entry
(** Parse [source], look its structural key up, and compile on a miss.
    Front-end errors (parse, type-check) propagate to the caller;
    failed compiles are not cached. *)

val stats : t -> stats
