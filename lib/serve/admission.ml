type bucket = { rate_per_s : float; burst : float }

type policy = {
  per_tenant : (int * bucket) list;
  default_bucket : bucket option;
  batch_above : float;
  best_effort_above : float;
}

let default_policy =
  { per_tenant = []; default_bucket = None; batch_above = 0.8; best_effort_above = 0.5 }

let validate p =
  if not (p.best_effort_above >= 0.0 && p.best_effort_above <= 1.0) then
    invalid_arg "Admission: best_effort_above must be in [0,1]";
  if not (p.batch_above >= 0.0 && p.batch_above <= 1.0) then
    invalid_arg "Admission: batch_above must be in [0,1]";
  if p.batch_above < p.best_effort_above then
    invalid_arg "Admission: batch_above must be >= best_effort_above (shed best-effort first)";
  let check_bucket (b : bucket) =
    if b.rate_per_s < 0.0 || b.burst < 1.0 then
      invalid_arg "Admission: bucket needs rate_per_s >= 0 and burst >= 1"
  in
  Option.iter check_bucket p.default_bucket;
  List.iter (fun (_, b) -> check_bucket b) p.per_tenant

(* Token level per tenant, refilled lazily from the timestamp stream.
   Levels start at the full burst: a tenant's first requests are its
   burst allowance. *)
type state = { bucket : bucket; mutable tokens : float; mutable last_ps : int }

type t = { policy : policy; tenants : (int, state) Hashtbl.t }

let create policy =
  validate policy;
  { policy; tenants = Hashtbl.create 16 }

type verdict = Admit | Shed_rate | Shed_load

let bucket_for t tenant =
  match List.assoc_opt tenant t.policy.per_tenant with
  | Some b -> Some b
  | None -> t.policy.default_bucket

let state_for t tenant =
  match Hashtbl.find_opt t.tenants tenant with
  | Some s -> Some s
  | None -> (
      match bucket_for t tenant with
      | None -> None
      | Some bucket ->
          let s = { bucket; tokens = bucket.burst; last_ps = 0 } in
          Hashtbl.add t.tenants tenant s;
          Some s)

let ps_per_s = 1e12

let refill s ~now_ps =
  if now_ps > s.last_ps then begin
    let dt_s = float_of_int (now_ps - s.last_ps) /. ps_per_s in
    s.tokens <- Float.min s.bucket.burst (s.tokens +. (dt_s *. s.bucket.rate_per_s));
    s.last_ps <- now_ps
  end

let class_fill_limit p = function
  | Trace.Interactive -> 1.0
  | Trace.Batch -> p.batch_above
  | Trace.Best_effort -> p.best_effort_above

let admit t ~now_ps ~queue_len ~capacity (r : Trace.request) =
  (* class-tiered load shedding on the shared bounded queue first (it
     consumes no budget, so a load-shed request does not burn the
     tenant's tokens): best-effort loses eligibility at half fill,
     batch near full, interactive rides the queue to the hard bound
     (where the scheduler's existing overflow rejection takes over) *)
  let load_ok =
    capacity <= 0
    || float_of_int queue_len /. float_of_int capacity < class_fill_limit t.policy r.Trace.slo
  in
  if not load_ok then Shed_load
  else
    match state_for t r.Trace.tenant with
    | None -> Admit
    | Some s ->
        refill s ~now_ps;
        if s.tokens >= 1.0 then begin
          s.tokens <- s.tokens -. 1.0;
          Admit
        end
        else Shed_rate

let tokens_left t tenant =
  match Hashtbl.find_opt t.tenants tenant with
  | Some s -> Some s.tokens
  | None -> Option.map (fun (b : bucket) -> b.burst) (bucket_for t tenant)
